package cstuner

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

// The engine refactor must not move a single measurement: these values were
// captured from the pre-engine pipeline (inline caches + harness meter) at
// fixed seeds. A diff here means the evaluation order or cache/budget
// semantics changed — which is a correctness bug, not a tuning difference.
const (
	goldenTune = "TBx=64 TBy=8 TBz=1 useShared=2 useConstant=1 useStreaming=2 " +
		"SD=3 SB=32 UFx=1 UFy=2 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=2 BMz=1 " +
		"useRetiming=2 usePrefetching=2 bestms=1.3795474914"
)

// goldenComparator pins every baseline tuner at three seeds each (budget 40,
// j3d7pt/a100). Seed 3 is the original pre-engine capture; seeds 5 and 9
// were captured from the same pipeline and pin the seed-sensitivity of each
// method, so a drift limited to one seed (an RNG-consumption change) is
// distinguishable from a global measurement drift.
var goldenComparator = map[string]map[int64]string{
	MethodCsTuner: {
		3: "TBx=64 TBy=4 TBz=1 useShared=1 useConstant=1 useStreaming=1 " +
			"SD=1 SB=1 UFx=1 UFy=1 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=1 " +
			"useRetiming=1 usePrefetching=1 bestms=1.8931377432",
		5: "TBx=64 TBy=4 TBz=1 useShared=1 useConstant=1 useStreaming=1 " +
			"SD=1 SB=1 UFx=1 UFy=1 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=1 " +
			"useRetiming=1 usePrefetching=1 bestms=1.8931377432",
		9: "TBx=16 TBy=8 TBz=4 useShared=2 useConstant=1 useStreaming=2 " +
			"SD=1 SB=1 UFx=1 UFy=1 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=1 " +
			"useRetiming=1 usePrefetching=2 bestms=1.4466394496",
	},
	MethodGarvey: {
		3: "TBx=64 TBy=4 TBz=1 useShared=1 useConstant=1 useStreaming=1 " +
			"SD=1 SB=1 UFx=1 UFy=1 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=1 " +
			"useRetiming=1 usePrefetching=1 bestms=1.8931377432",
		5: "TBx=64 TBy=4 TBz=1 useShared=1 useConstant=2 useStreaming=1 " +
			"SD=1 SB=1 UFx=1 UFy=1 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=1 " +
			"useRetiming=1 usePrefetching=1 bestms=1.9609613939",
		9: "TBx=128 TBy=4 TBz=1 useShared=1 useConstant=2 useStreaming=1 " +
			"SD=1 SB=1 UFx=1 UFy=1 UFz=1 CMx=2 CMy=1 CMz=1 BMx=1 BMy=1 BMz=1 " +
			"useRetiming=1 usePrefetching=1 bestms=1.9312112396",
	},
	MethodOpenTuner: {
		3: "TBx=32 TBy=1 TBz=1 useShared=2 useConstant=2 useStreaming=1 " +
			"SD=1 SB=1 UFx=2 UFy=2 UFz=2 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=2 " +
			"useRetiming=2 usePrefetching=1 bestms=1.5684872239",
		5: "TBx=16 TBy=16 TBz=4 useShared=2 useConstant=2 useStreaming=2 " +
			"SD=1 SB=8 UFx=1 UFy=1 UFz=2 CMx=1 CMy=1 CMz=2 BMx=1 BMy=2 BMz=1 " +
			"useRetiming=1 usePrefetching=1 bestms=1.4029488380",
		9: "TBx=16 TBy=4 TBz=16 useShared=2 useConstant=2 useStreaming=1 " +
			"SD=1 SB=1 UFx=2 UFy=1 UFz=2 CMx=1 CMy=4 CMz=2 BMx=1 BMy=1 BMz=1 " +
			"useRetiming=1 usePrefetching=1 bestms=1.5459962411",
	},
	MethodArtemis: {
		3: "TBx=32 TBy=2 TBz=1 useShared=1 useConstant=1 useStreaming=2 " +
			"SD=3 SB=32 UFx=1 UFy=1 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=1 " +
			"useRetiming=1 usePrefetching=1 bestms=1.6727884550",
		5: "TBx=32 TBy=2 TBz=1 useShared=1 useConstant=1 useStreaming=2 " +
			"SD=3 SB=32 UFx=1 UFy=1 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=1 " +
			"useRetiming=1 usePrefetching=1 bestms=1.6727884550",
		9: "TBx=32 TBy=2 TBz=1 useShared=1 useConstant=1 useStreaming=2 " +
			"SD=3 SB=32 UFx=1 UFy=1 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=1 " +
			"useRetiming=1 usePrefetching=1 bestms=1.6727884550",
	},
}

func goldenFmt(set Setting, ms float64) string {
	return fmt.Sprintf("%v bestms=%.10f", set, ms)
}

func TestGoldenSessionTune(t *testing.T) {
	run := func() string {
		s, err := NewSessionFor("j3d7pt", "a100")
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.DatasetSize = 64
		cfg.Seed = 7
		cfg.EmitKernels = false
		rep, err := s.Tune(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Engine.Evaluations == 0 || len(rep.Spans) == 0 {
			t.Fatal("report missing engine stats")
		}
		return goldenFmt(rep.Best, rep.BestMS)
	}
	got := run()
	if got != goldenTune {
		t.Fatalf("Session.Tune drifted from golden:\n got %s\nwant %s", got, goldenTune)
	}
	if again := run(); again != got {
		t.Fatalf("Session.Tune nondeterministic:\n  1st %s\n  2nd %s", got, again)
	}
}

// TestGoldenTuneClockInvariant proves the engine's clock seam carries no
// result weight: the same fixed-seed tune, run through a fake clock that has
// nothing to do with wall time, reproduces the golden report byte-for-byte.
// If any stage ever let a wall-clock read feed a measurement, a seed, or an
// ordering decision, this run would diverge from the default-clock golden.
func TestGoldenTuneClockInvariant(t *testing.T) {
	st := stencil.ByName("j3d7pt")
	if st == nil {
		t.Fatal("unknown stencil j3d7pt")
	}
	arch, err := gpu.ByName("a100")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := space.New(st)
	if err != nil {
		t.Fatal(err)
	}
	clk, reads := engine.FakeClock(time.Millisecond)
	eng := engine.New(sim.New(sp, arch), engine.WithClock(clk))

	cfg := DefaultConfig()
	cfg.DatasetSize = 64
	cfg.Seed = 7
	cfg.EmitKernels = false
	rep, err := core.Tune(eng, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenFmt(rep.Best, rep.BestMS); got != goldenTune {
		t.Fatalf("fake-clock tune drifted from golden:\n got %s\nwant %s", got, goldenTune)
	}
	if reads() == 0 {
		t.Fatal("fake clock never read: timing spans bypassed the seam")
	}
	if len(rep.Spans) == 0 || rep.Overhead.Sampling <= 0 {
		t.Fatalf("overhead accounting lost under fake clock: spans=%v overhead=%+v", rep.Spans, rep.Overhead)
	}
}

func TestGoldenRunComparator(t *testing.T) {
	s, err := NewSessionFor("j3d7pt", "a100")
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{MethodCsTuner, MethodGarvey, MethodOpenTuner, MethodArtemis} {
		for _, seed := range []int64{3, 5, 9} {
			set, ms, err := s.RunComparator(method, 40, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", method, seed, err)
			}
			want := goldenComparator[method][seed]
			if got := goldenFmt(set, ms); got != want {
				t.Fatalf("%s seed %d drifted from golden:\n got %s\nwant %s", method, seed, got, want)
			}
		}
	}
}
