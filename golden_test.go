package cstuner

import (
	"fmt"
	"testing"
)

// The engine refactor must not move a single measurement: these values were
// captured from the pre-engine pipeline (inline caches + harness meter) at
// fixed seeds. A diff here means the evaluation order or cache/budget
// semantics changed — which is a correctness bug, not a tuning difference.
const (
	goldenTune = "TBx=64 TBy=8 TBz=1 useShared=2 useConstant=1 useStreaming=2 " +
		"SD=3 SB=32 UFx=1 UFy=2 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=2 BMz=1 " +
		"useRetiming=2 usePrefetching=2 bestms=1.3795474914"
	goldenCsTuner = "TBx=64 TBy=4 TBz=1 useShared=1 useConstant=1 useStreaming=1 " +
		"SD=1 SB=1 UFx=1 UFy=1 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=1 " +
		"useRetiming=1 usePrefetching=1 bestms=1.8931377432"
	goldenGarvey = "TBx=64 TBy=4 TBz=1 useShared=1 useConstant=1 useStreaming=1 " +
		"SD=1 SB=1 UFx=1 UFy=1 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=1 " +
		"useRetiming=1 usePrefetching=1 bestms=1.8931377432"
	goldenOpenTuner = "TBx=32 TBy=1 TBz=1 useShared=2 useConstant=2 useStreaming=1 " +
		"SD=1 SB=1 UFx=2 UFy=2 UFz=2 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=2 " +
		"useRetiming=2 usePrefetching=1 bestms=1.5684872239"
	goldenArtemis = "TBx=32 TBy=2 TBz=1 useShared=1 useConstant=1 useStreaming=2 " +
		"SD=3 SB=32 UFx=1 UFy=1 UFz=1 CMx=1 CMy=1 CMz=1 BMx=1 BMy=1 BMz=1 " +
		"useRetiming=1 usePrefetching=1 bestms=1.6727884550"
)

func goldenFmt(set Setting, ms float64) string {
	return fmt.Sprintf("%v bestms=%.10f", set, ms)
}

func TestGoldenSessionTune(t *testing.T) {
	run := func() string {
		s, err := NewSessionFor("j3d7pt", "a100")
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.DatasetSize = 64
		cfg.Seed = 7
		cfg.EmitKernels = false
		rep, err := s.Tune(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Engine.Evaluations == 0 || len(rep.Spans) == 0 {
			t.Fatal("report missing engine stats")
		}
		return goldenFmt(rep.Best, rep.BestMS)
	}
	got := run()
	if got != goldenTune {
		t.Fatalf("Session.Tune drifted from golden:\n got %s\nwant %s", got, goldenTune)
	}
	if again := run(); again != got {
		t.Fatalf("Session.Tune nondeterministic:\n  1st %s\n  2nd %s", got, again)
	}
}

func TestGoldenRunComparator(t *testing.T) {
	want := map[string]string{
		MethodCsTuner:   goldenCsTuner,
		MethodGarvey:    goldenGarvey,
		MethodOpenTuner: goldenOpenTuner,
		MethodArtemis:   goldenArtemis,
	}
	s, err := NewSessionFor("j3d7pt", "a100")
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{MethodCsTuner, MethodGarvey, MethodOpenTuner, MethodArtemis} {
		set, ms, err := s.RunComparator(method, 40, 3)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if got := goldenFmt(set, ms); got != want[method] {
			t.Fatalf("%s drifted from golden:\n got %s\nwant %s", method, got, want[method])
		}
	}
}
