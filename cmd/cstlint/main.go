// Command cstlint runs the repo's static-analysis suite (internal/analysis)
// over the module containing the working directory and prints findings as
// "file:line: [analyzer] message". Exit status: 0 clean (or all findings
// baselined), 1 new findings, 2 when the tree fails to load or type-check.
//
// Usage:
//
//	cstlint [flags] [./...]
//
// Flags:
//
//	-json                 emit findings as a JSON array instead of text
//	-baseline file        suppress findings listed in file; fail only on new ones
//	-write-baseline file  write the current findings to file in baseline format
//	-workers n            bound the analysis worker pool (0 = auto)
//
// The package-pattern argument is accepted for familiarity but the suite
// always lints the whole module: its invariants (determinism, accounting,
// lock discipline) are module-wide properties.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cstlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run() (int, error) {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	baselinePath := flag.String("baseline", "", "suppress findings listed in `file`; fail only on new ones")
	writeBaseline := flag.String("write-baseline", "", "write current findings to `file` in baseline format and exit 0")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = auto)")
	flag.Parse()

	wd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	root, modPath, err := findModule(wd)
	if err != nil {
		return 0, err
	}
	res, err := analysis.Run(analysis.Config{Root: root, ModulePath: modPath, Workers: *workers})
	if err != nil {
		return 0, err
	}

	// Baseline keys are root-relative so the committed file is portable
	// across checkouts regardless of the invocation directory.
	if *writeBaseline != "" {
		var sb strings.Builder
		sb.WriteString("# cstlint baseline: one accepted finding per line, matched without line numbers.\n")
		for _, line := range res.BaselineLines(root) {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
		if err := os.WriteFile(*writeBaseline, []byte(sb.String()), 0o644); err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "cstlint: wrote %d finding(s) to %s\n", len(res.Diags), *writeBaseline)
		return 0, nil
	}

	suppressed := 0
	if *baselinePath != "" {
		base, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			return 0, err
		}
		res, suppressed = res.ApplyBaseline(base, root)
	}

	w := bufio.NewWriter(os.Stdout)
	if *jsonOut {
		data, err := res.FormatJSON(wd)
		if err != nil {
			return 0, err
		}
		w.Write(data)
		w.WriteByte('\n')
	} else {
		for _, line := range res.Format(wd) {
			fmt.Fprintln(w, line)
		}
		if len(res.Diags) > 0 {
			fmt.Fprintf(w, "cstlint: %d finding(s)", len(res.Diags))
			if suppressed > 0 {
				fmt.Fprintf(w, " (%d baselined)", suppressed)
			}
			fmt.Fprintln(w)
		}
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	if len(res.Diags) > 0 {
		return 1, nil
	}
	return 0, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns the
// module root and its module path.
func findModule(dir string) (root, modPath string, err error) {
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
