// Command cstlint runs the repo's static-analysis suite (internal/analysis)
// over the module containing the working directory and prints findings as
// "file:line: [analyzer] message". Exit status: 0 clean, 1 findings, 2 when
// the tree fails to load or type-check.
//
// Usage:
//
//	cstlint [./...]
//
// The package-pattern argument is accepted for familiarity but the suite
// always lints the whole module: its invariants (determinism, accounting,
// lock discipline) are module-wide properties.
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cstlint:", err)
		os.Exit(2)
	}
}

func run() error {
	wd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, modPath, err := findModule(wd)
	if err != nil {
		return err
	}
	res, err := analysis.Run(analysis.Config{Root: root, ModulePath: modPath})
	if err != nil {
		return err
	}
	if len(res.Diags) == 0 {
		return nil
	}
	w := bufio.NewWriter(os.Stdout)
	for _, line := range res.Format(wd) {
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "cstlint: %d finding(s)\n", len(res.Diags))
	if err := w.Flush(); err != nil {
		return err
	}
	os.Exit(1)
	return nil
}

// findModule walks upward from dir to the enclosing go.mod and returns the
// module root and its module path.
func findModule(dir string) (root, modPath string, err error) {
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
