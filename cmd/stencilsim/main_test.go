package main

import (
	"testing"

	"repro/internal/space"
	"repro/internal/stencil"
)

func TestApplyOverrides(t *testing.T) {
	sp, err := space.New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	s := sp.Default()
	if err := applyOverrides(s, "TBx=32, useShared=2 ,SB=1"); err != nil {
		t.Fatal(err)
	}
	if s[space.TBX] != 32 || s[space.UseShared] != space.On {
		t.Fatalf("overrides not applied: %v", s)
	}
}

func TestApplyOverridesErrors(t *testing.T) {
	sp, _ := space.New(stencil.J3D7PT())
	s := sp.Default()
	cases := []string{
		"TBx",          // no '='
		"NoSuch=4",     // unknown parameter
		"TBy=notanint", // bad number
	}
	for _, c := range cases {
		if err := applyOverrides(s.Clone(), c); err == nil {
			t.Errorf("%q: expected error", c)
		}
	}
}
