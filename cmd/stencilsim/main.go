// Command stencilsim inspects the GPU simulator directly: it builds one
// parameter setting for a stencil, prints the kernel's resource/geometry
// analysis and the full Nsight-style metric report, and optionally the
// generated CUDA source — the same view `ncu` plus `ptxas -v` would give on
// the paper's testbed.
//
// Usage:
//
//	stencilsim -stencil j3d7pt                         # default setting
//	stencilsim -stencil cheby -set "TBx=64,TBy=8,useShared=2" -emit
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func main() {
	var (
		name    = flag.String("stencil", "j3d7pt", "stencil name (see Table III)")
		archStr = flag.String("arch", "a100", "GPU architecture: a100 or v100")
		setStr  = flag.String("set", "", "comma-separated overrides, e.g. \"TBx=64,useShared=2\"")
		emit    = flag.Bool("emit", false, "print generated CUDA source")
	)
	flag.Parse()

	st := stencil.ByName(*name)
	if st == nil {
		fail(fmt.Errorf("unknown stencil %q", *name))
	}
	arch, err := gpu.ByName(*archStr)
	if err != nil {
		fail(err)
	}
	sp, err := space.New(st)
	if err != nil {
		fail(err)
	}
	setting := sp.Default()
	if *setStr != "" {
		if err := applyOverrides(setting, *setStr); err != nil {
			fail(err)
		}
	}
	if err := sp.Validate(setting); err != nil {
		fail(fmt.Errorf("setting rejected by explicit constraints: %w", err))
	}

	simulator := sim.New(sp, arch)
	res, err := simulator.Run(setting)
	if err != nil {
		fail(fmt.Errorf("setting rejected by resource constraints: %w", err))
	}
	k := res.Kernel

	fmt.Printf("stencil   %s on %s\n", st, arch.Name)
	fmt.Printf("setting   %s\n", setting)
	fmt.Printf("geometry  %d blocks x %d threads, %d streaming iter/block, guard %.3f\n",
		k.GridBlocks, k.ThreadsPerBlock, k.IterationsPerBlock, k.GuardFrac)
	fmt.Printf("resources %d regs/thread, %d B smem/block, occupancy %.2f (%s-limited, %d blocks/SM)\n",
		k.RegsPerThread, k.SharedPerBlock, k.Occ.Achieved, k.Occ.Limiter, k.Occ.BlocksPerSM)
	fmt.Printf("accesses  %.2f global loads/point (naive %d)\n", k.LoadsPerPoint, st.UniqueOffsets())
	fmt.Printf("time      %.4f ms\n\n", res.TimeMS)

	names := make([]string, 0, len(res.Metrics))
	for n := range res.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-30s %14.4f\n", n, res.Metrics[n])
	}

	if *emit {
		fmt.Println("\n---- generated CUDA ----")
		fmt.Println(k.EmitCUDA())
	}
}

// applyOverrides parses "Name=value" pairs against the canonical parameter
// names.
func applyOverrides(s space.Setting, str string) error {
	names := space.ParamNames()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	for _, pair := range strings.Split(str, ",") {
		kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("malformed override %q", pair)
		}
		i, ok := idx[kv[0]]
		if !ok {
			return fmt.Errorf("unknown parameter %q (want one of %v)", kv[0], names)
		}
		v, err := strconv.Atoi(kv[1])
		if err != nil {
			return fmt.Errorf("parameter %s: %w", kv[0], err)
		}
		s[i] = v
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stencilsim:", err)
	os.Exit(1)
}
