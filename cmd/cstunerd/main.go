// Command cstunerd serves the multi-tenant campaign service over HTTP:
// tenants submit tuning campaigns, poll their progress, cancel, pause and
// resume them, while the registry interleaves measurement work fairly
// across tenants and write-ahead journals every campaign so a killed server
// resumes all of them deterministically on restart.
//
// Usage:
//
//	cstunerd -root /var/lib/cstuner -addr :8080
//	cstunerd -root ./campaigns -addr 127.0.0.1:8080 -slots 8 -tenant-budget 600
//
// Endpoints (see DESIGN.md §10 and the README quickstart):
//
//	POST /v1/campaigns               submit a campaign spec
//	GET  /v1/campaigns[?tenant=t]    list campaigns
//	GET  /v1/campaigns/{id}          poll one campaign
//	POST /v1/campaigns/{id}/cancel   cancel (terminal)
//	POST /v1/campaigns/{id}/pause    pause, keeping all journaled work
//	POST /v1/campaigns/{id}/resume   resume a paused campaign via replay
//	GET  /v1/tenants                 per-tenant budget ledgers
//	GET  /v1/store                   shared result-store counters
//	GET  /v1/healthz                 liveness + per-subsystem health
//
// /v1/healthz always answers 200 while the process lives; the body carries
// per-subsystem detail (store ok/degraded/disabled, campaign states,
// directory-fsync failure counts). The daemon rides out disk trouble
// instead of crashing: a store write failure flips the store to read-only
// (hits keep serving, misses keep measuring), a journal failure fails only
// its campaign, and an ENOSPC-refused submit answers 507 while every other
// tenant keeps running.
//
// On SIGINT/SIGTERM the server stops accepting requests, drains in-flight
// HTTP handlers, then closes the registry: running campaigns' contexts are
// cancelled (cancelled measurements are never journaled, so the journal
// holds exactly the paid-for prefix), runner goroutines drain, and every
// journal append was already fsync'd. The next start re-scans the root and
// resumes every interrupted campaign.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cstunerd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		root         = flag.String("root", "campaigns", "registry root directory (one subdirectory per campaign)")
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		slots        = flag.Int("slots", 8, "concurrent measurement slots shared by all campaigns")
		tenantBudget = flag.Float64("tenant-budget", 0, "default per-tenant virtual budget in seconds (0 = unmetered)")
		enableStore  = flag.Bool("store", false, "share measured results across campaigns via <root>/store (warm starts, zero-cost store hits)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight HTTP requests")
	)
	flag.Parse()

	reg, err := campaign.Open(*root, campaign.Options{
		Slots:         *slots,
		TenantBudgetS: *tenantBudget,
		EnableStore:   *enableStore,
	})
	if err != nil {
		return err
	}
	if h := reg.Health(); h.Degraded {
		// Startup found the storage already limping (e.g. a store segment
		// could not be created). Serve anyway — degradation is visible in
		// /v1/healthz — but say so where an operator tailing logs will look.
		fmt.Fprintf(os.Stderr, "cstunerd: warning: starting degraded (store=%s dir_sync_errs=%d)\n", h.Store, h.DirSyncErrs)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.New(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cstunerd: serving %s from %s\n", *addr, *root)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "cstunerd: %v; draining\n", sig)
	case err := <-errc:
		_ = reg.Close()
		return err
	}

	// HTTP first (no request may observe a closed registry), registry second
	// (cancel runners, drain goroutines; journals are already durable).
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "cstunerd: http shutdown: %v\n", err)
	}
	if err := reg.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "cstunerd: stopped; campaigns resume on next start")
	return nil
}
