// Command cstuner auto-tunes one stencil on a simulated GPU with the full
// csTuner pipeline and prints the chosen parameter setting, the pipeline
// diagnostics, and (optionally) the generated CUDA kernel.
//
// Usage:
//
//	cstuner -stencil helmholtz -arch a100
//	cstuner -stencil rhs4center -arch v100 -ratio 0.2 -budget 60 -emit
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/grouping"
	"repro/internal/harness"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func main() {
	var (
		name    = flag.String("stencil", "j3d7pt", "stencil to tune (see Table III)")
		archStr = flag.String("arch", "a100", "GPU architecture: a100 or v100")
		ratio   = flag.Float64("ratio", 0.10, "search-space sampling ratio")
		dsSize  = flag.Int("dataset", 128, "offline dataset size")
		budget  = flag.Float64("budget", 0, "virtual tuning budget in seconds (0 = unlimited)")
		seed    = flag.Int64("seed", 1, "random seed")
		emit    = flag.Bool("emit", false, "print the tuned kernel's CUDA source")
		dsOut   = flag.String("dataset-out", "", "write the collected stencil dataset to this JSON file")
		dsIn    = flag.String("dataset-in", "", "reuse an offline stencil dataset instead of collecting one")
	)
	flag.Parse()

	st := stencil.ByName(*name)
	if st == nil {
		fail(fmt.Errorf("unknown stencil %q; available: %v", *name, names()))
	}
	arch, err := gpu.ByName(*archStr)
	if err != nil {
		fail(err)
	}
	sp, err := space.New(st)
	if err != nil {
		fail(err)
	}
	simulator := sim.New(sp, arch)

	cfg := core.DefaultConfig()
	cfg.DatasetSize = *dsSize
	cfg.Sampling.Ratio = *ratio
	cfg.Seed = *seed

	// Offline stencil dataset: collected fresh, loaded from disk, or both
	// (collect + persist for later reuse; paper Sec. V-F treats metric
	// collection as a one-time offline step).
	var ds *dataset.Dataset
	if *dsIn != "" {
		f, err := os.Open(*dsIn)
		if err != nil {
			fail(err)
		}
		ds, err = dataset.Load(f)
		_ = f.Close() // read-only handle; Load's error is the one that matters
		if err != nil {
			fail(err)
		}
		if ds.Stencil != st.Name {
			fail(fmt.Errorf("dataset is for stencil %q, tuning %q", ds.Stencil, st.Name))
		}
	} else {
		ds, err = dataset.Collect(simulator, rand.New(rand.NewSource(*seed)), *dsSize, 0)
		if err != nil {
			fail(err)
		}
	}
	if *dsOut != "" {
		f, err := os.Create(*dsOut)
		if err != nil {
			fail(err)
		}
		if err := ds.Save(f); err != nil {
			_ = f.Close() // already failing; Save's error wins
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	var obj sim.Objective = simulator
	stop := func() bool { return false }
	var meter *harness.Meter
	if *budget > 0 {
		meter = harness.NewMeter(simulator, harness.DefaultCostModel(), *budget)
		obj = meter
		stop = meter.Exhausted
	}

	rep, err := core.Tune(obj, ds, cfg, stop)
	if err != nil {
		fail(err)
	}

	fmt.Printf("stencil       %s on %s\n", st, arch.Name)
	fmt.Printf("groups        %s\n", grouping.Format(rep.Groups))
	fmt.Printf("metrics       ")
	for i, m := range rep.SelectedMetrics {
		if i > 0 {
			fmt.Printf(", ")
		}
		fmt.Printf("%s (r=%.2f)", m.Name, m.TimePCC)
	}
	fmt.Println()
	fmt.Printf("sampled space %d settings, %d kernels generated\n", rep.SampledSize, rep.GeneratedCUDA)
	fmt.Printf("overhead      grouping=%v sampling=%v codegen=%v\n",
		rep.Overhead.Grouping, rep.Overhead.Sampling, rep.Overhead.Codegen)
	fmt.Printf("evaluations   %d\n", rep.Evaluations)
	if meter != nil {
		fmt.Printf("virtual time  %.1fs of %.1fs budget\n", meter.SpentS(), *budget)
	}
	fmt.Printf("best setting  %s\n", rep.Best)
	fmt.Printf("best time     %.4f ms\n", rep.BestMS)

	if *emit {
		k, err := kernel.Build(sp, rep.Best, arch)
		if err != nil {
			fail(err)
		}
		fmt.Println("\n---- generated CUDA ----")
		fmt.Println(k.EmitCUDA())
	}
}

func names() []string {
	var out []string
	for _, s := range stencil.Suite() {
		out = append(out, s.Name)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cstuner:", err)
	os.Exit(1)
}
