package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snapOf(benches map[string]benchResult) *snapshot {
	return &snapshot{Package: "repro/internal/engine", Commit: "test", Go: "gotest", Benchmarks: benches}
}

func TestCompareWithinThresholdsPasses(t *testing.T) {
	oldSnap := snapOf(map[string]benchResult{
		"BenchmarkHit":  {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkMiss": {NsPerOp: 2000, AllocsPerOp: 10},
	})
	newSnap := snapOf(map[string]benchResult{
		"BenchmarkHit":  {NsPerOp: 118, AllocsPerOp: 0}, // +18% < +20%
		"BenchmarkMiss": {NsPerOp: 1500, AllocsPerOp: 12},
	})
	lines, failures := compareSnapshots(oldSnap, newSnap, 0.20, 0.20)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %v", len(lines), lines)
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	oldSnap := snapOf(map[string]benchResult{"BenchmarkHit": {NsPerOp: 100, AllocsPerOp: 0}})
	newSnap := snapOf(map[string]benchResult{"BenchmarkHit": {NsPerOp: 125, AllocsPerOp: 0}})
	_, failures := compareSnapshots(oldSnap, newSnap, 0.20, 0.20)
	if len(failures) != 1 || !strings.Contains(failures[0], "ns/op") {
		t.Fatalf("ns/op regression not flagged: %v", failures)
	}
	// A looser threshold accepts the same delta.
	if _, f := compareSnapshots(oldSnap, newSnap, 0.30, 0.20); len(f) != 0 {
		t.Fatalf("loose threshold still failed: %v", f)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	oldSnap := snapOf(map[string]benchResult{"BenchmarkHit": {NsPerOp: 100, AllocsPerOp: 0}})
	newSnap := snapOf(map[string]benchResult{"BenchmarkHit": {NsPerOp: 100, AllocsPerOp: 1}})
	_, failures := compareSnapshots(oldSnap, newSnap, 0.20, 0.20)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("zero-alloc path growing an alloc must fail: %v", failures)
	}
}

func TestCompareFlagsMissingBenchmark(t *testing.T) {
	oldSnap := snapOf(map[string]benchResult{
		"BenchmarkHit":  {NsPerOp: 100},
		"BenchmarkGone": {NsPerOp: 50},
	})
	newSnap := snapOf(map[string]benchResult{"BenchmarkHit": {NsPerOp: 100}})
	_, failures := compareSnapshots(oldSnap, newSnap, 0.20, 0.20)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkGone") {
		t.Fatalf("dropped benchmark not flagged: %v", failures)
	}
}

func TestCompareReportsNewBenchmarksWithoutGating(t *testing.T) {
	oldSnap := snapOf(map[string]benchResult{"BenchmarkHit": {NsPerOp: 100}})
	newSnap := snapOf(map[string]benchResult{
		"BenchmarkHit":   {NsPerOp: 100},
		"BenchmarkFresh": {NsPerOp: 9999, AllocsPerOp: 50},
	})
	lines, failures := compareSnapshots(oldSnap, newSnap, 0.20, 0.20)
	if len(failures) != 0 {
		t.Fatalf("new benchmark must not gate: %v", failures)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "BenchmarkFresh") && strings.Contains(l, "not gated") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new benchmark not reported: %v", lines)
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeJSON := func(path, body string) {
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeJSON(oldPath, `{"package":"p","commit":"a","go":"g","benchmarks":{"BenchmarkX":{"ns_per_op":100,"allocs_per_op":2,"bytes_per_op":64,"iterations":1000}}}`)
	writeJSON(newPath, `{"package":"p","commit":"b","go":"g","benchmarks":{"BenchmarkX":{"ns_per_op":90,"allocs_per_op":2,"bytes_per_op":64,"iterations":1000}}}`)
	if err := runCompare(oldPath, newPath, 0.20, 0.20); err != nil {
		t.Fatalf("improvement flagged as regression: %v", err)
	}
	writeJSON(newPath, `{"package":"p","commit":"b","go":"g","benchmarks":{"BenchmarkX":{"ns_per_op":200,"allocs_per_op":2,"bytes_per_op":64,"iterations":1000}}}`)
	if err := runCompare(oldPath, newPath, 0.20, 0.20); err == nil {
		t.Fatal("2x ns/op regression passed the gate")
	}
	if err := runCompare(oldPath, filepath.Join(dir, "absent.json"), 0.20, 0.20); err == nil {
		t.Fatal("missing snapshot file did not error")
	}
}
