package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// compareSnapshots gates a new snapshot against a committed baseline. A
// benchmark regresses when its new ns/op or allocs/op exceeds the old value
// by more than the corresponding threshold (a fraction: 0.20 means +20%).
// A benchmark present in the baseline but missing from the new snapshot is
// a failure too — silently dropping a benchmark is how a regression hides.
// Benchmarks only present in the new snapshot are reported, not gated.
//
// Returns a human-readable line per benchmark and the subset that failed.
func compareSnapshots(oldSnap, newSnap *snapshot, nsThresh, allocThresh float64) (lines, failures []string) {
	names := make([]string, 0, len(oldSnap.Benchmarks))
	for name := range oldSnap.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		ob := oldSnap.Benchmarks[name]
		nb, ok := newSnap.Benchmarks[name]
		if !ok {
			l := fmt.Sprintf("FAIL %s: missing from new snapshot", name)
			lines = append(lines, l)
			failures = append(failures, l)
			continue
		}
		nsDelta := relDelta(ob.NsPerOp, nb.NsPerOp)
		var bad []string
		if nb.NsPerOp > ob.NsPerOp*(1+nsThresh) {
			bad = append(bad, fmt.Sprintf("ns/op %.1f -> %.1f (%+.1f%%, limit %+.0f%%)",
				ob.NsPerOp, nb.NsPerOp, 100*nsDelta, 100*nsThresh))
		}
		if float64(nb.AllocsPerOp) > float64(ob.AllocsPerOp)*(1+allocThresh) {
			bad = append(bad, fmt.Sprintf("allocs/op %d -> %d (limit %+.0f%%)",
				ob.AllocsPerOp, nb.AllocsPerOp, 100*allocThresh))
		}
		if len(bad) > 0 {
			l := fmt.Sprintf("FAIL %s: %s", name, join(bad))
			lines = append(lines, l)
			failures = append(failures, l)
			continue
		}
		lines = append(lines, fmt.Sprintf("ok   %s: ns/op %.1f -> %.1f (%+.1f%%), allocs/op %d -> %d",
			name, ob.NsPerOp, nb.NsPerOp, 100*nsDelta, ob.AllocsPerOp, nb.AllocsPerOp))
	}

	extra := make([]string, 0)
	for name := range newSnap.Benchmarks {
		if _, ok := oldSnap.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		nb := newSnap.Benchmarks[name]
		lines = append(lines, fmt.Sprintf("new  %s: ns/op %.1f, allocs/op %d (no baseline, not gated)",
			name, nb.NsPerOp, nb.AllocsPerOp))
	}
	return lines, failures
}

func relDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return 1
	}
	return (newV - oldV) / oldV
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "; "
		}
		out += p
	}
	return out
}

func loadSnapshot(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: snapshot holds no benchmarks", path)
	}
	return &s, nil
}

// runCompare implements `benchsnap -compare old.json new.json`: print one
// line per benchmark and return an error when any regressed past the
// thresholds.
func runCompare(oldPath, newPath string, nsThresh, allocThresh float64) error {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	lines, failures := compareSnapshots(oldSnap, newSnap, nsThresh, allocThresh)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed past thresholds (ns %+.0f%%, allocs %+.0f%%)",
			len(failures), len(oldSnap.Benchmarks), 100*nsThresh, 100*allocThresh)
	}
	fmt.Printf("benchsnap: %d benchmarks within thresholds (ns %+.0f%%, allocs %+.0f%%) vs %s @ %s\n",
		len(oldSnap.Benchmarks), 100*nsThresh, 100*allocThresh, oldPath, oldSnap.Commit)
	return nil
}
