// Command benchsnap runs the engine microbenchmarks and serializes them to
// a JSON snapshot (BENCH_engine.json by default) so the repo carries a
// perf trajectory: each committed snapshot records ns/op and allocs/op per
// benchmark at a specific commit, and regressions show up as diffs.
//
// Usage:
//
//	go run ./cmd/benchsnap                  # snapshot ./internal/engine
//	go run ./cmd/benchsnap -benchtime 2s    # steadier numbers
//	go run ./cmd/benchsnap -out /tmp/b.json -pkg ./internal/sim
//
// Compare mode gates a fresh snapshot against a committed baseline instead
// of writing one; it exits non-zero when any benchmark regresses past the
// thresholds (defaults: +20% ns/op, +20% allocs/op) or disappears:
//
//	go run ./cmd/benchsnap -compare BENCH_engine.json /tmp/new.json
//	go run ./cmd/benchsnap -compare -ns-threshold 3.0 old.json new.json
//
// Snapshot schema (stable; cmd/benchsnap is its only writer):
//
//	{
//	  "package":  "repro/internal/engine",   // Go import path benchmarked
//	  "commit":   "49244e9",                 // short HEAD at snapshot time
//	  "go":       "go1.24.2",                // toolchain that produced it
//	  "benchmarks": {
//	    "BenchmarkMeasureCacheHit": {        // name minus -GOMAXPROCS suffix
//	      "ns_per_op":     316.0,
//	      "allocs_per_op": 4,
//	      "bytes_per_op":  120,
//	      "iterations":    773302
//	    }
//	  }
//	}
//
// Numbers are machine-dependent; compare snapshots taken on the same class
// of machine, and read allocs/op (which is stable) before ns/op.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int64   `json:"iterations"`
}

type snapshot struct {
	Package    string                 `json:"package"`
	Commit     string                 `json:"commit"`
	Go         string                 `json:"go"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// benchLine matches `go test -bench -benchmem` result rows, e.g.
// BenchmarkMeasureMiss-8   122196   2448 ns/op   868 B/op   12 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+(\d+) allocs/op)?`)

var pkgLine = regexp.MustCompile(`^pkg: (\S+)`)

func main() {
	pkg := flag.String("pkg", "./internal/engine", "package to benchmark")
	bench := flag.String("bench", ".", "benchmark name pattern (go test -bench)")
	benchtime := flag.String("benchtime", "", "per-benchmark time or iteration count (go test -benchtime)")
	out := flag.String("out", "BENCH_engine.json", "snapshot output path")
	compare := flag.Bool("compare", false, "compare two snapshots (old.json new.json) instead of benchmarking")
	nsThresh := flag.Float64("ns-threshold", 0.20, "max allowed relative ns/op regression in compare mode (0.20 = +20%)")
	allocThresh := flag.Float64("alloc-threshold", 0.20, "max allowed relative allocs/op regression in compare mode")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchsnap: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *nsThresh, *allocThresh); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		return
	}

	snap, err := run(*pkg, *bench, *benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Printf("benchsnap: wrote %d benchmarks for %s @ %s to %s\n",
		len(snap.Benchmarks), snap.Package, snap.Commit, *out)
}

func run(pkg, bench, benchtime string) (*snapshot, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, outBytes)
	}

	snap := &snapshot{
		Commit:     headCommit(),
		Go:         runtime.Version(),
		Benchmarks: map[string]benchResult{},
	}
	sc := bufio.NewScanner(bytes.NewReader(outBytes))
	for sc.Scan() {
		line := sc.Text()
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			snap.Package = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r, perr := parseResult(m)
		if perr != nil {
			return nil, fmt.Errorf("parse %q: %w", line, perr)
		}
		snap.Benchmarks[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results in output of go %s", strings.Join(args, " "))
	}
	return snap, nil
}

func parseResult(m []string) (benchResult, error) {
	var r benchResult
	var err error
	if r.Iterations, err = strconv.ParseInt(m[2], 10, 64); err != nil {
		return r, err
	}
	if r.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
		return r, err
	}
	if m[4] != "" {
		b, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return r, err
		}
		r.BytesPerOp = int64(b)
		if r.AllocsPerOp, err = strconv.ParseInt(m[5], 10, 64); err != nil {
			return r, err
		}
	}
	return r, nil
}

// headCommit is best-effort provenance: a snapshot from a non-git checkout
// still records its numbers, just with an unknown commit.
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
