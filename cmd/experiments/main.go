// Command experiments regenerates every table and figure of the paper's
// evaluation section against the simulated GPUs.
//
// Usage:
//
//	experiments -table 1          # Table I (parameter space)
//	experiments -table 3          # Table III (stencil suite)
//	experiments -fig 2            # Figs. 2–4 share one motivation sample
//	experiments -fig 8 -quick     # iso-iteration comparison, smoke scale
//	experiments -fig 9            # iso-time comparison
//	experiments -fig 10           # V100 portability, normalized to Garvey
//	experiments -fig 11           # sampling-ratio sensitivity
//	experiments -fig 12           # pre-processing overhead breakdown
//	experiments -all -quick       # everything at smoke scale
//
// Crash-safe campaigns journal every measurement episode so a killed run
// resumes where it stopped (DESIGN.md §6):
//
//	experiments -campaign cstuner -journal run.wal -budget 40   # start
//	experiments -campaign cstuner -journal run.wal -budget 40 -resume
//
// Warm-started tuning from a shared result store (DESIGN.md §13):
//
//	experiments -warmstart 8 -budget 40 -quick
//
// Full-protocol runs (-repeats 10, all eight stencils, 20k motivation
// samples) reproduce the paper's setup but take correspondingly long on one
// core; -quick keeps every experiment's structure at reduced scale.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/stencil"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure to regenerate (2, 3, 4, 8, 9, 10, 11, 12)")
		table     = flag.Int("table", 0, "table to regenerate (1 or 3)")
		all       = flag.Bool("all", false, "regenerate everything")
		ablation  = flag.Bool("ablation", false, "run the design-choice ablation study")
		quick     = flag.Bool("quick", false, "smoke scale: fewer stencils, repeats and samples")
		arch      = flag.String("arch", "a100", "GPU architecture: a100 or v100")
		stencils  = flag.String("stencils", "", "comma-separated stencil subset (default: per protocol)")
		repeats   = flag.Int("repeats", 0, "runs averaged per method (default: protocol)")
		samples   = flag.Int("samples", 0, "motivation sample size for figs 2-4 (default 20000, quick 2000)")
		budget    = flag.Float64("budget", 0, "iso-time virtual budget seconds (default 100)")
		seed      = flag.Int64("seed", 1, "base random seed")
		artifacts = flag.String("artifacts", "", "directory for SVG/CSV figure artifacts")
		campaign  = flag.String("campaign", "", "run one crash-safe campaign: cstuner, opentuner, garvey or artemis")
		jpath     = flag.String("journal", "", "write-ahead journal path for -campaign (enables crash-safe resume)")
		resume    = flag.Bool("resume", false, "require the -journal file to exist and resume it")
		warmstart = flag.Int("warmstart", 0, "cold-vs-warm comparison: run a cold campaign into a fresh store, then a warm campaign seeded with that many of its bests")
		storeDir  = flag.String("store", "", "result-store directory for -warmstart (default: a temp dir)")
	)
	flag.Parse()

	o := harness.DefaultOptions()
	if *quick {
		o = harness.QuickOptions()
	}
	a, err := gpu.ByName(*arch)
	if err != nil {
		fail(err)
	}
	o.Arch = a
	o.Seed = *seed
	if *repeats > 0 {
		o.Repeats = *repeats
	}
	if *budget > 0 {
		o.BudgetS = *budget
	}
	o.ArtifactDir = *artifacts
	if *stencils != "" {
		o.Stencils = nil
		for _, name := range strings.Split(*stencils, ",") {
			st := stencil.ByName(strings.TrimSpace(name))
			if st == nil {
				fail(fmt.Errorf("unknown stencil %q", name))
			}
			o.Stencils = append(o.Stencils, st)
		}
	}
	motivN := *samples
	if motivN == 0 {
		motivN = 20000
		if *quick {
			motivN = 2000
		}
	}

	w := os.Stdout
	ran := false
	run := func(name string, f func() error) {
		ran = true
		fmt.Fprintf(w, "\n==== %s ====\n", name)
		if err := f(); err != nil {
			fail(fmt.Errorf("%s: %w", name, err))
		}
	}

	if *all || *table == 1 {
		run("Table I", func() error { return harness.Table1(w, o.Stencils[0]) })
	}
	if *all || *table == 3 {
		run("Table III", func() error { harness.Table3(w); return nil })
	}
	if *all || *fig == 2 || *fig == 3 || *fig == 4 {
		run("Figures 2-4 (motivation)", func() error { return harness.MotivationFigures(w, o, motivN) })
	}
	if *all || *fig == 8 {
		run("Figure 8 (iso-iteration)", func() error { return harness.Fig8(w, o) })
	}
	if *all || *fig == 9 {
		run("Figure 9 (iso-time)", func() error { return harness.Fig9(w, o) })
	}
	if *all || *fig == 10 {
		run("Figure 10 (V100, normalized to Garvey)", func() error {
			_, err := harness.Fig10(w, o)
			return err
		})
	}
	if *all || *fig == 11 {
		run("Figure 11 (sampling-ratio sensitivity)", func() error {
			ratios := []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}
			if *quick {
				ratios = []float64{0.05, 0.10, 0.25, 0.50}
			}
			_, err := harness.Fig11(w, o, ratios)
			return err
		})
	}
	if *all || *fig == 12 {
		run("Figure 12 (pre-processing overhead)", func() error {
			_, err := harness.Fig12(w, o)
			return err
		})
	}
	if *all || *ablation {
		run("Ablation (design choices, DESIGN.md §8)", func() error {
			_, err := harness.Ablation(w, o)
			return err
		})
	}
	if *campaign != "" {
		run("Campaign "+*campaign, func() error {
			if *resume {
				if *jpath == "" {
					return fmt.Errorf("-resume requires -journal")
				}
				if _, err := os.Stat(*jpath); err != nil {
					return fmt.Errorf("-resume: no journal at %s: %w", *jpath, err)
				}
			}
			fx, err := harness.NewFixture(o.Stencils[0], o.Arch, o.DatasetSize, o.Seed)
			if err != nil {
				return err
			}
			res, err := harness.RunCampaign(context.Background(), fx, harness.CampaignConfig{
				Method:      *campaign,
				BudgetS:     o.BudgetS,
				Seed:        o.Seed,
				JournalPath: *jpath,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "stencil=%s method=%s budget=%gs\n", o.Stencils[0].Name, *campaign, o.BudgetS)
			if res.Replayed > 0 {
				fmt.Fprintf(w, "resumed: %d episodes replayed from %s\n", res.Replayed, *jpath)
			}
			fmt.Fprintf(w, "best=%v bestms=%.6f evals=%d spent=%.1fs\n",
				res.Best, res.BestMS, res.Stats.Evaluations, res.Stats.SpentS)
			return nil
		})
	}

	if *warmstart > 0 {
		run("Warm start (cold vs warm campaign)", func() error {
			dir := *storeDir
			if dir == "" {
				tmp, err := os.MkdirTemp("", "cstuner-store-")
				if err != nil {
					return err
				}
				defer func() { _ = os.RemoveAll(tmp) }()
				dir = tmp
			}
			fx, err := harness.NewFixture(o.Stencils[0], o.Arch, o.DatasetSize, o.Seed)
			if err != nil {
				return err
			}
			rep, err := harness.WarmStartCompare(context.Background(), fx, harness.CampaignConfig{
				Method:  "cstuner",
				BudgetS: o.BudgetS,
				Seed:    o.Seed,
			}, dir, *warmstart)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "stencil=%s budget=%gs seeds=%d\n", o.Stencils[0].Name, o.BudgetS, len(rep.WarmKeys))
			fmt.Fprintf(w, "cold: best=%.6fms evals-to-best=%d evals=%d\n", rep.ColdBestMS, rep.ColdEvalsToBest, rep.ColdEvals)
			fmt.Fprintf(w, "warm: best=%.6fms evals-to-cold-best=%d evals=%d\n", rep.WarmBestMS, rep.WarmEvalsToBest, rep.WarmEvals)
			if rep.ColdEvalsToBest > 0 && rep.WarmEvalsToBest >= 0 {
				fmt.Fprintf(w, "warm reached the cold best with %.0f%% of the cold run's measurements\n",
					100*float64(rep.WarmEvalsToBest)/float64(rep.ColdEvalsToBest))
			}
			return nil
		})
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
