package cstuner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func resumeConfig() Config {
	cfg := DefaultConfig()
	cfg.DatasetSize = 64
	cfg.Sampling.PoolSize = 512
	cfg.GA.MaxGenerations = 8
	cfg.EmitKernels = false
	return cfg
}

// TestResumeTuneCrashLoopConvergesToUninterruptedReport crash-restarts
// ResumeTune with aggressive deadlines until one attempt runs to
// completion, then checks the stitched-together run against a single
// uninterrupted one: same best setting, same kernel time, same engine
// accounting. Where each deadline lands is scheduling-dependent — the
// journal must make the outcome independent of it.
func TestResumeTuneCrashLoopConvergesToUninterruptedReport(t *testing.T) {
	s, err := NewSessionFor("helmholtz", "a100")
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeConfig()
	const budgetS = 25

	golden, err := s.ResumeTune(context.Background(), filepath.Join(t.TempDir(), "golden.wal"), cfg, budgetS)
	if err != nil {
		t.Fatal(err)
	}
	if golden.Best == nil || golden.BestMS <= 0 {
		t.Fatalf("uninterrupted run degenerate: %+v", golden)
	}

	path := filepath.Join(t.TempDir(), "crashy.wal")
	var rep *Report
	deadline := 30 * time.Millisecond
	crashes := 0
	for attempt := 0; ; attempt++ {
		if attempt > 200 {
			t.Fatal("crash loop did not converge in 200 restarts")
		}
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		rep, err = s.ResumeTune(ctx, path, cfg, budgetS)
		cancel()
		if err == nil {
			break
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("restart %d: unexpected failure: %v", attempt, err)
		}
		crashes++
		deadline += 10 * time.Millisecond // guarantee forward progress eventually
	}
	if crashes == 0 {
		t.Skip("first attempt finished inside the deadline; nothing was interrupted")
	}
	if rep.Best.Key() != golden.Best.Key() || rep.BestMS != golden.BestMS {
		t.Fatalf("resumed best %v/%.6f != uninterrupted %v/%.6f",
			rep.Best, rep.BestMS, golden.Best, golden.BestMS)
	}
	if !reflect.DeepEqual(rep.Engine, golden.Engine) {
		t.Fatalf("engine accounting diverged after %d crashes\n got: %+v\nwant: %+v",
			crashes, rep.Engine, golden.Engine)
	}
	if rep.Evaluations != golden.Evaluations {
		t.Fatalf("evaluations %d != %d", rep.Evaluations, golden.Evaluations)
	}
}

// TestResumeTuneFingerprintMismatch: a journal written under one budget must
// refuse to resume under another.
func TestResumeTuneFingerprintMismatch(t *testing.T) {
	s, err := NewSessionFor("j3d7pt", "a100")
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeConfig()
	path := filepath.Join(t.TempDir(), "run.wal")
	if _, err := s.ResumeTune(context.Background(), path, cfg, 10); err != nil {
		t.Fatal(err)
	}
	_, err = s.ResumeTune(context.Background(), path, cfg, 15)
	if !errors.Is(err, ErrJournalFingerprint) {
		t.Fatalf("err = %v, want ErrJournalFingerprint", err)
	}
}

// TestResumeTuneCorruptHeaderRefused: a file that is not a journal fails
// cleanly with ErrJournalCorrupt.
func TestResumeTuneCorruptHeaderRefused(t *testing.T) {
	s, err := NewSessionFor("j3d7pt", "a100")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "garbage.wal")
	if err := os.WriteFile(path, []byte("this is not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.ResumeTune(context.Background(), path, resumeConfig(), 10)
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("err = %v, want ErrJournalCorrupt", err)
	}
}
