package cstuner

import "testing"

func TestGEMMFacade(t *testing.T) {
	w, err := NewGEMM(2048, 2048, 2048, A100())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DatasetSize = 64
	cfg.Sampling.PoolSize = 256
	cfg.GA.MaxGenerations = 6
	rep, err := TuneGEMM(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	def, err := w.Measure(w.Space().Default())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestMS >= def {
		t.Fatalf("GEMM facade: tuned %.2f not better than default %.2f", rep.BestMS, def)
	}
	if _, err := NewGEMM(0, 1, 1, A100()); err == nil {
		t.Fatal("invalid GEMM should error")
	}
}

func TestCPUFacade(t *testing.T) {
	w, err := NewCPUStencil(StencilByName("j3d27pt"), XeonE52680v4())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DatasetSize = 64
	cfg.Sampling.PoolSize = 256
	cfg.GA.MaxGenerations = 6
	rep, err := TuneCPU(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Space().Validate(rep.Best); err != nil {
		t.Fatalf("CPU facade returned invalid setting: %v", err)
	}
	if rep.BestMS <= 0 {
		t.Fatal("no CPU result")
	}
	if _, err := NewCPUStencil(nil, XeonE52680v4()); err == nil {
		t.Fatal("nil stencil should error")
	}
}

func TestCustomStencilThroughFacade(t *testing.T) {
	// User-defined stencil built from the exported tap constructors.
	taps := append(StarTaps(1, 0), CenterTap(1, 0.5)...)
	st := &Stencil{
		Name: "facade-test", NX: 64, NY: 64, NZ: 64,
		Order: 1, FLOPs: 12, Inputs: 2, Outputs: 1,
		Taps: taps, Coeffs: 3,
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(st, V100())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := s.Measure(s.DefaultSetting())
	if err != nil || ms <= 0 {
		t.Fatalf("custom stencil not measurable: %v %v", ms, err)
	}
	if len(BoxTaps(1, 0)) != 27 {
		t.Fatal("BoxTaps facade broken")
	}
}
