package cstuner

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"

	"repro/internal/baselines"
	"repro/internal/baselines/artemis"
	"repro/internal/baselines/cstuner"
	"repro/internal/baselines/garvey"
	"repro/internal/baselines/opentuner"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/gpu"
	"repro/internal/grouping"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/kernel"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
	"repro/internal/store"
	"repro/internal/temporal"
)

// Stencil describes one stencil computation; see internal/stencil for the
// full type. The suite constructors below return the paper's Table III set.
type Stencil = stencil.Stencil

// Setting is one concrete assignment of the 19 optimization parameters.
type Setting = space.Setting

// Arch is a modelled GPU architecture (A100 or V100).
type Arch = gpu.Arch

// Config is the csTuner pipeline configuration; DefaultConfig mirrors the
// paper's evaluation setup.
type Config = core.Config

// Report is the outcome of one csTuner run: the winning setting, its kernel
// time, and pipeline diagnostics (groups, models, overhead breakdown).
type Report = core.Report

// Tap is one stencil access: read input array Array at an offset from the
// centre point, scaled by Coeff.
type Tap = stencil.Tap

// StarTaps returns an axis-aligned star access pattern of the given order on
// input array a — the building block for user-defined stencils.
func StarTaps(order, a int) []Tap { return stencil.StarTaps(order, a) }

// BoxTaps returns the dense (2·order+1)³ box pattern on input array a.
func BoxTaps(order, a int) []Tap { return stencil.BoxTaps(order, a) }

// CenterTap returns a single centre-point read of input array a with
// coefficient c.
func CenterTap(a int, c float64) []Tap { return stencil.CenterTap(a, c) }

// Suite returns the eight Table III benchmark stencils.
func Suite() []*Stencil { return stencil.Suite() }

// StencilByName returns a Table III stencil by name, or nil.
func StencilByName(name string) *Stencil { return stencil.ByName(name) }

// A100 and V100 return the two modelled GPU architectures.
func A100() *Arch { return gpu.A100() }

// V100 returns the Volta model used in the paper's portability study.
func V100() *Arch { return gpu.V100() }

// DefaultConfig returns the paper's csTuner configuration (128-sample
// dataset, 10% sampling ratio, 2×16 GA, crossover 0.8, mutation 0.005).
func DefaultConfig() Config { return core.DefaultConfig() }

// Session is a tuning session for one stencil on one simulated GPU. It
// exposes measurement, csTuner, the comparators, and kernel inspection.
type Session struct {
	stencil *Stencil
	space   *space.Space
	sim     *sim.Simulator
}

// NewSession validates the stencil and builds its parameter space and
// simulator.
func NewSession(st *Stencil, arch *Arch) (*Session, error) {
	if st == nil {
		return nil, fmt.Errorf("cstuner: nil stencil")
	}
	if arch == nil {
		return nil, fmt.Errorf("cstuner: nil architecture")
	}
	sp, err := space.New(st)
	if err != nil {
		return nil, err
	}
	return &Session{stencil: st, space: sp, sim: sim.New(sp, arch)}, nil
}

// NewSessionFor is the one-line constructor: stencil and arch by name.
func NewSessionFor(stencilName, archName string) (*Session, error) {
	st := stencil.ByName(stencilName)
	if st == nil {
		return nil, fmt.Errorf("cstuner: unknown stencil %q", stencilName)
	}
	arch, err := gpu.ByName(archName)
	if err != nil {
		return nil, err
	}
	return NewSession(st, arch)
}

// Stencil returns the session's stencil.
func (s *Session) Stencil() *Stencil { return s.stencil }

// DefaultSetting returns the canonical untuned setting.
func (s *Session) DefaultSetting() Setting { return s.space.Default() }

// Validate checks a setting against the explicit Table I constraints.
func (s *Session) Validate(set Setting) error { return s.space.Validate(set) }

// Measure runs one setting on the simulated GPU and returns milliseconds.
func (s *Session) Measure(set Setting) (float64, error) { return s.sim.Measure(set) }

// Metrics runs one setting and returns its Nsight-style metric report.
func (s *Session) Metrics(set Setting) (float64, map[string]float64, error) {
	res, err := s.sim.Run(set)
	if err != nil {
		return 0, nil, err
	}
	return res.TimeMS, res.Metrics, nil
}

// EmitCUDA generates the CUDA source a GPU toolchain would compile for the
// setting.
func (s *Session) EmitCUDA(set Setting) (string, error) {
	k, err := kernel.Build(s.space, set, s.sim.Arch)
	if err != nil {
		return "", err
	}
	return k.EmitCUDA(), nil
}

// Tune runs the full csTuner pipeline with the given configuration and no
// time budget.
func (s *Session) Tune(cfg Config) (*Report, error) {
	return core.Tune(s.sim, nil, cfg, nil)
}

// TuneCtx is Tune under a caller context: cancelling ctx (or letting its
// deadline pass) stops the tuning session promptly. A cancelled run returns
// its partial Report — the best setting measured before the cut plus the
// engine's counters — alongside ctx's error.
func (s *Session) TuneCtx(ctx context.Context, cfg Config) (*Report, error) {
	return core.TuneCtx(ctx, s.sim, nil, cfg, nil)
}

// TuneWithBudget runs csTuner under a virtual auto-tuning budget (seconds of
// compile+run time, as metered by the engine cost model). The offline
// stencil dataset is collected unmetered through a throwaway engine,
// matching the paper's accounting (metric collection is a one-time offline
// step, Sec. V-F) and keeping the collection cache out of the budgeted run.
func (s *Session) TuneWithBudget(cfg Config, budgetS float64) (*Report, error) {
	return s.TuneWithBudgetCtx(context.Background(), cfg, budgetS)
}

// TuneWithBudgetCtx is TuneWithBudget under a caller context; the virtual
// budget and the context deadline race, and whichever trips first ends the
// run.
func (s *Session) TuneWithBudgetCtx(ctx context.Context, cfg Config, budgetS float64) (*Report, error) {
	ds, err := dataset.CollectBatch(engine.New(s.sim), rand.New(rand.NewSource(cfg.Seed)), cfg.DatasetSize, 0)
	if err != nil {
		return nil, err
	}
	eng := engine.New(s.sim, engine.WithCost(engine.DefaultCostModel()), engine.WithBudget(budgetS))
	return core.TuneCtx(ctx, eng, ds, cfg, eng.Exhausted)
}

// ErrJournalCorrupt and ErrJournalFingerprint re-export the journal's
// resume failures: a journal whose header cannot be trusted, and a journal
// written by a differently-configured campaign. Both are clean errors —
// torn tails from a crash mid-append are not errors at all; they are
// truncated and the intact prefix resumed.
var (
	ErrJournalCorrupt     = journal.ErrCorrupt
	ErrJournalFingerprint = journal.ErrFingerprint
)

// ResumeTune is the crash-safe TuneWithBudgetCtx: every measurement episode
// is write-ahead logged to the journal at path before it is accounted, so a
// run killed at any instant — preemption, OOM, Ctrl-C — can be re-run with
// the same arguments and continue where it stopped. When path does not
// exist a fresh campaign starts; when it holds a previous run's journal the
// pipeline re-executes deterministically while the engine replays every
// journaled episode instead of re-measuring it, producing a final Report
// identical to the uninterrupted run's and only then measuring new
// settings. A journal from a differently-configured campaign is refused
// with ErrJournalFingerprint.
//
// Crash-safety requires a deterministic measurement order, so ResumeTune
// folds the GA's sub-populations into one sequential population of the same
// total size (the island model measures from concurrent goroutines, whose
// interleaving no journal can reproduce).
func (s *Session) ResumeTune(ctx context.Context, path string, cfg Config, budgetS float64) (*Report, error) {
	if cfg.GA.SubPopulations > 1 {
		cfg.GA.PopSize *= cfg.GA.SubPopulations
		cfg.GA.SubPopulations = 1
	}
	ds, err := dataset.CollectBatch(engine.New(s.sim), rand.New(rand.NewSource(cfg.Seed)), cfg.DatasetSize, 0)
	if err != nil {
		return nil, err
	}
	jr, err := journal.OpenOrCreate(path, s.tuneFingerprint(cfg, budgetS))
	if err != nil {
		return nil, err
	}
	//cstlint:allow errdrop(teardown close after the last fsynced frame; no caller can act on the error)
	defer jr.Close()
	eng := engine.New(s.sim,
		engine.WithCost(engine.DefaultCostModel()),
		engine.WithBudget(budgetS),
		engine.WithSeed(uint64(cfg.Seed)),
		engine.WithJournal(jr))
	rep, err := core.TuneCtx(ctx, eng, ds, cfg, eng.Exhausted)
	if jerr := eng.JournalErr(); jerr != nil {
		return rep, jerr
	}
	return rep, err
}

// tuneFingerprint identifies a resumable tuning campaign: every explicit
// scalar knob that changes the measurement sequence. Built field by field —
// never by reflective struct formatting, which would print the Prefilter
// function pointer and change between processes.
func (s *Session) tuneFingerprint(cfg Config, budgetS float64) string {
	return fmt.Sprintf(
		"cstuner-tune|v1|stencil=%s|arch=%s|seed=%d|budget=%g|ds=%d|nmc=%d|mgs=%d|is=%v|js=%v|ratio=%g|pool=%d|prefilter=%v|ga=%d,%d,%g,%g,%d,%g,%d|emit=%v",
		s.stencil.Name, s.sim.Arch.Name, cfg.Seed, budgetS, cfg.DatasetSize,
		cfg.NumMetricCollections, cfg.MaxGroupSize, cfg.IS, cfg.JS,
		cfg.Sampling.Ratio, cfg.Sampling.PoolSize, cfg.Sampling.Prefilter != nil,
		cfg.GA.SubPopulations, cfg.GA.PopSize, cfg.GA.CrossoverRate, cfg.GA.MutationRate,
		cfg.GA.TopN, cfg.GA.CVThreshold, cfg.GA.MaxGenerations, cfg.EmitKernels)
}

// Comparator names accepted by RunComparator.
const (
	MethodCsTuner   = "cstuner"
	MethodOpenTuner = "opentuner"
	MethodGarvey    = "garvey"
	MethodArtemis   = "artemis"
)

// RunComparator races one auto-tuning method against a virtual budget and
// returns its best setting and kernel time. Garvey and csTuner collect their
// offline dataset internally (seeded deterministically).
func (s *Session) RunComparator(method string, budgetS float64, seed int64) (Setting, float64, error) {
	return s.RunComparatorCtx(context.Background(), method, budgetS, seed)
}

// RunComparatorCtx is RunComparator under a caller context: cancellation
// stops the comparator promptly, and the best setting it measured before
// the cut is returned.
func (s *Session) RunComparatorCtx(ctx context.Context, method string, budgetS float64, seed int64) (Setting, float64, error) {
	var t baselines.Tuner
	switch method {
	case MethodCsTuner:
		t = cstuner.New()
	case MethodOpenTuner:
		t = opentuner.New()
	case MethodGarvey:
		t = garvey.New()
	case MethodArtemis:
		t = artemis.New()
	default:
		return nil, 0, fmt.Errorf("cstuner: unknown method %q", method)
	}
	fx, err := harness.NewFixture(s.stencil, s.sim.Arch, 128, seed)
	if err != nil {
		return nil, 0, err
	}
	eng := engine.New(fx.Sim, engine.WithCost(engine.DefaultCostModel()), engine.WithBudget(budgetS))
	_, _, tuneErr := t.Tune(ctx, eng, fx.DS, seed, eng.Exhausted)
	set, ms, ok := eng.Best()
	if !ok {
		if tuneErr != nil {
			return nil, 0, tuneErr
		}
		return nil, 0, fmt.Errorf("cstuner: %s measured nothing within the budget", method)
	}
	return set, ms, nil
}

// GEMM is a tiled matrix-multiplication workload over a custom optimization
// space — the paper's future-work extension to tensor programs (Sec. VII).
// csTuner tunes it through the same Objective surface as stencils.
type GEMM = gemm.Workload

// NewGEMM builds a GEMM workload C[M×N] += A[M×K]·B[K×N] on the given
// simulated architecture.
func NewGEMM(m, n, k int, arch *Arch) (*GEMM, error) { return gemm.New(m, n, k, arch) }

// TuneGEMM runs the unmodified csTuner pipeline on a GEMM workload: the
// pipeline collects the offline dataset from the workload's own model (any
// objective that can produce metric reports self-collects), then grouping,
// metric combination, PMNF sampling and the per-group genetic search run
// exactly as they do for stencils.
func TuneGEMM(w *GEMM, cfg Config) (*Report, error) {
	cfg.EmitKernels = false // no CUDA emitter for the GEMM family
	return core.Tune(w, nil, cfg, nil)
}

// CPUWorkload is an OpenMP-style stencil kernel on a multicore CPU — the
// paper's future-work hardware extension (Sec. VII). The default CPU model
// is the paper's own host, a Xeon E5-2680 v4 (Table II).
type CPUWorkload = cpu.Workload

// XeonE52680v4 returns the modelled host CPU from the paper's Table II.
func XeonE52680v4() *cpu.Arch { return cpu.XeonE52680v4() }

// NewCPUStencil builds a CPU tuning workload for the stencil.
func NewCPUStencil(st *Stencil, arch *cpu.Arch) (*CPUWorkload, error) { return cpu.New(st, arch) }

// TuneCPU runs the unmodified csTuner pipeline on a CPU stencil workload,
// self-collecting the offline dataset from the workload's model.
func TuneCPU(w *CPUWorkload, cfg Config) (*Report, error) {
	cfg.EmitKernels = false // the CPU family has no CUDA emitter
	return core.Tune(w, nil, cfg, nil)
}

// TemporalWorkload is a time-iterated stencil with AN5D-style temporal
// blocking in its optimization space — the paper's "more optimization
// techniques" future-work claim (Sec. VII).
type TemporalWorkload = temporal.Workload

// NewTemporal builds a temporal-blocking workload: the stencil is advanced
// totalSteps time steps, and the tuner chooses how many of them each kernel
// launch fuses.
func NewTemporal(st *Stencil, arch *Arch, totalSteps int) (*TemporalWorkload, error) {
	return temporal.New(st, arch, totalSteps)
}

// TuneTemporal runs the unmodified csTuner pipeline on a temporal-blocking
// workload, self-collecting the offline dataset from the workload's model.
func TuneTemporal(w *TemporalWorkload, cfg Config) (*Report, error) {
	cfg.EmitKernels = false
	return core.Tune(w, nil, cfg, nil)
}

// CampaignSpec describes one tuning campaign submitted to the multi-tenant
// campaign service: tenant, method, workload, budget and seed. Every field
// is deterministic, which is what lets a crashed campaign re-run to a
// byte-identical result.
type CampaignSpec = campaign.Spec

// CampaignState is a campaign's lifecycle position (pending, running,
// paused, completed, failed, canceled).
type CampaignState = campaign.State

// CampaignStatus is a campaign's externally-visible snapshot: lifecycle
// position, live progress, and the canonical result once completed.
type CampaignStatus = campaign.Status

// CampaignRegistry owns a directory of journaled campaigns: submission,
// per-tenant budget ledgers, weighted-fair measurement scheduling, and
// deterministic resume of every campaign interrupted by a crash.
type CampaignRegistry = campaign.Registry

// RegistryOptions configures OpenCampaignRegistry (measurement slots,
// default tenant budget, clock injection for tests).
type RegistryOptions = campaign.Options

// OpenCampaignRegistry opens (or reopens) a campaign registry rooted at
// dir: existing campaign directories are scanned, corrupt journals are
// quarantined per-campaign, and interrupted campaigns resume through the
// journal replay path.
func OpenCampaignRegistry(dir string, opts RegistryOptions) (*CampaignRegistry, error) {
	return campaign.Open(dir, opts)
}

// NewCampaignHandler returns the HTTP API over a registry — the same
// handler cstunerd serves. See DESIGN.md §10 for the endpoint contract.
func NewCampaignHandler(reg *CampaignRegistry) http.Handler { return service.New(reg) }

// ResultStore is the persistent cross-campaign measurement store: an
// append-only, crash-safe database of (architecture, stencil shape, setting)
// → best measured milliseconds, shared by every campaign under one registry
// root. Campaigns consult it before measuring (a hit costs zero budget) and
// publish every completed measurement back; see DESIGN.md §13.
type ResultStore = store.Store

// ResultStoreStats is a store's counter snapshot (keys, segments, loaded and
// appended records, quarantined files).
type ResultStoreStats = store.Stats

// ResultStoreEntry is one decomposed store record, as returned by
// ResultStore.Best.
type ResultStoreEntry = store.Entry

// OpenResultStore opens (creating if needed) a shared result store rooted at
// dir. Multiple processes may hold the same directory open concurrently;
// each appends to its own segment file. The registry manages its own store
// when RegistryOptions.EnableStore is set — open one directly only for
// engine-level wiring via engine.WithStore or offline inspection.
func OpenResultStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// FormatGroups renders a grouping (from Report.Groups) with parameter names.
func FormatGroups(groups [][]int) string { return grouping.Format(groups) }

// WriteTableIII writes the benchmark-suite table to w.
func WriteTableIII(w io.Writer) { harness.Table3(w) }
