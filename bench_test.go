package cstuner

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark runs the corresponding
// experiment at a bounded scale (the cmd/experiments tool runs the full
// protocol) and reports the headline number the paper's artifact would —
// best-found kernel time, distribution mass, or overhead ratio — via
// b.ReportMetric, so `go test -bench=.` regenerates every result series.

import (
	"context"
	"io"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/stencil"
)

// benchOptions is the bounded scale used by the benchmarks.
func benchOptions() harness.Options {
	o := harness.QuickOptions()
	o.Stencils = []*stencil.Stencil{stencil.Helmholtz()}
	o.Repeats = 1
	o.DatasetSize = 64
	o.BudgetS = 30
	return o
}

func benchFixture(b *testing.B, o harness.Options) *harness.Fixture {
	b.Helper()
	fx, err := harness.NewFixture(o.Stencils[0], o.Arch, o.DatasetSize, o.Seed)
	if err != nil {
		b.Fatal(err)
	}
	return fx
}

func BenchmarkTable1ParameterSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := harness.Table1(io.Discard, stencil.J3D7PT()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3StencilSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Table3(io.Discard)
	}
}

func BenchmarkFig2SpeedupDistribution(b *testing.B) {
	o := benchOptions()
	fx := benchFixture(b, o)
	var worst, bestBin float64
	for i := 0; i < b.N; i++ {
		ms, err := harness.CollectMotivation(fx, 400, o.Seed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		bins, err := harness.Fig2Bins(ms)
		if err != nil {
			b.Fatal(err)
		}
		worst, bestBin = bins[0], bins[4]
	}
	b.ReportMetric(100*worst, "%worst-bin")
	b.ReportMetric(100*bestBin, "%within-20pct")
}

func BenchmarkFig3PairCorrelation(b *testing.B) {
	o := benchOptions()
	fx := benchFixture(b, o)
	ms, err := harness.CollectMotivation(fx, 400, o.Seed)
	if err != nil {
		b.Fatal(err)
	}
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, m, err := harness.Fig3Bins(ms)
		if err != nil {
			b.Fatal(err)
		}
		mean = m
	}
	b.ReportMetric(100*mean, "%pair-disagreement")
}

func BenchmarkFig4TopN(b *testing.B) {
	o := benchOptions()
	fx := benchFixture(b, o)
	ms, err := harness.CollectMotivation(fx, 400, o.Seed)
	if err != nil {
		b.Fatal(err)
	}
	var top10 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tops, err := harness.Fig4TopN(ms, []int{10, 50, 100})
		if err != nil {
			b.Fatal(err)
		}
		top10 = tops[0]
	}
	b.ReportMetric(100*top10, "%top10-speedup")
}

func BenchmarkFig8IsoIteration(b *testing.B) {
	o := benchOptions()
	fx := benchFixture(b, o)
	methods := harness.Methods()
	var last float64
	for i := 0; i < b.N; i++ {
		curve, err := harness.IsoIterationCurve(context.Background(), methods[0], fx, 5, o.PopSize, o.Seed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = curve[len(curve)-1]
	}
	b.ReportMetric(last, "best-ms@5iter")
}

func BenchmarkFig9IsoTime(b *testing.B) {
	o := benchOptions()
	fx := benchFixture(b, o)
	methods := harness.Methods()
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := harness.IsoTimeRun(context.Background(), methods[0], fx, o.BudgetS, 0, o.Seed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		best = res.BestMS
	}
	b.ReportMetric(best, "best-ms@budget")
}

func BenchmarkFig10V100(b *testing.B) {
	o := benchOptions()
	o.Stencils = []*stencil.Stencil{stencil.J3D7PT()}
	var norm float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig10(io.Discard, o)
		if err != nil {
			b.Fatal(err)
		}
		norm = rows[0].Norm["cstuner"]
	}
	b.ReportMetric(norm, "cstuner-vs-garvey-x")
}

func BenchmarkFig11SamplingRatio(b *testing.B) {
	o := benchOptions()
	var bestAt10 float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig11(io.Discard, o, []float64{0.10, 0.30})
		if err != nil {
			b.Fatal(err)
		}
		bestAt10 = rows[o.Stencils[0].Name][0]
	}
	b.ReportMetric(bestAt10, "best-ms@ratio10")
}

func BenchmarkFig12Overhead(b *testing.B) {
	o := benchOptions()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig12(io.Discard, o)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].Ratio
	}
	b.ReportMetric(100*ratio, "%preproc-vs-search")
}

// ---- Ablation benches (DESIGN.md §8): quantify each design choice ---------

// ablationTune runs csTuner with a modified config and reports the best
// time under a fixed budget.
func ablationTune(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	o := benchOptions()
	fx := benchFixture(b, o)
	var best float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.DatasetSize = o.DatasetSize
		cfg.Seed = o.Seed + int64(i)
		cfg.EmitKernels = false
		mutate(&cfg)
		meter := harness.NewMeter(fx.Sim, harness.DefaultCostModel(), o.BudgetS)
		rep, err := core.TuneCtx(context.Background(), meter, fx.DS, cfg, meter.Exhausted)
		if err != nil {
			b.Fatal(err)
		}
		best = rep.BestMS
	}
	if math.IsNaN(best) {
		b.Fatal("no result")
	}
	b.ReportMetric(best, "best-ms")
}

func BenchmarkAblationFull(b *testing.B) {
	ablationTune(b, func(cfg *core.Config) {})
}

// BenchmarkAblationNoGrouping degrades Algorithm 1 to singleton groups,
// removing the correlation structure from both PMNF and the group search.
func BenchmarkAblationNoGrouping(b *testing.B) {
	ablationTune(b, func(cfg *core.Config) { cfg.MaxGroupSize = 1 })
}

// BenchmarkAblationNoApproximation disables the CV(top-n) stop rule, forcing
// every group's GA to its generation cap.
func BenchmarkAblationNoApproximation(b *testing.B) {
	ablationTune(b, func(cfg *core.Config) { cfg.GA.CVThreshold = 0 })
}

// BenchmarkAblationWideSampling keeps half the candidate pool instead of
// 10%, diluting the PMNF guidance.
func BenchmarkAblationWideSampling(b *testing.B) {
	ablationTune(b, func(cfg *core.Config) { cfg.Sampling.Ratio = 0.5 })
}

// ---- Evaluation-engine microbenchmarks ------------------------------------
// The engine is the single measurement path of every tuner, so its per-call
// overhead (cache hit, cache miss, batch dispatch) bounds how fast any
// search can iterate on the simulated testbed.

func engineBench(b *testing.B) (*engine.Engine, []Setting) {
	b.Helper()
	fx := benchFixture(b, benchOptions())
	rng := rand.New(rand.NewSource(17))
	sets := make([]Setting, 64)
	for i := range sets {
		sets[i] = fx.Space.Random(rng)
	}
	return engine.New(fx.Sim), sets
}

func BenchmarkEngineMeasureUncached(b *testing.B) {
	eng, sets := engineBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh := engine.New(eng.Unwrap())
		b.StartTimer()
		for _, s := range sets {
			fresh.Measure(s)
		}
	}
	b.ReportMetric(float64(len(sets)), "settings/op")
}

func BenchmarkEngineMeasureCached(b *testing.B) {
	eng, sets := engineBench(b)
	for _, s := range sets {
		eng.Measure(s) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sets {
			eng.Measure(s)
		}
	}
	b.ReportMetric(float64(len(sets)), "settings/op")
}

func benchmarkEngineBatch(b *testing.B, size int) {
	eng, sets := engineBench(b)
	batch := make([]Setting, size)
	for i := range batch {
		batch[i] = sets[i%len(sets)]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh := engine.New(eng.Unwrap())
		b.StartTimer()
		fresh.MeasureBatch(batch)
	}
	b.ReportMetric(float64(size), "settings/op")
}

func BenchmarkEngineBatch1(b *testing.B)  { benchmarkEngineBatch(b, 1) }
func BenchmarkEngineBatch8(b *testing.B)  { benchmarkEngineBatch(b, 8) }
func BenchmarkEngineBatch64(b *testing.B) { benchmarkEngineBatch(b, 64) }
