package cstuner_test

import (
	"fmt"

	cstuner "repro"
)

// ExampleSuite lists the paper's Table III benchmark stencils.
func ExampleSuite() {
	for _, st := range cstuner.Suite() {
		fmt.Println(st.Name)
	}
	// Output:
	// j3d7pt
	// j3d27pt
	// helmholtz
	// cheby
	// hypterm
	// addsgd4
	// addsgd6
	// rhs4center
}

// ExampleNewSessionFor measures the canonical untuned setting of a stencil
// on the simulated A100.
func ExampleNewSessionFor() {
	session, err := cstuner.NewSessionFor("j3d7pt", "a100")
	if err != nil {
		panic(err)
	}
	set := session.DefaultSetting()
	if err := session.Validate(set); err != nil {
		panic(err)
	}
	ms, err := session.Measure(set)
	if err != nil {
		panic(err)
	}
	fmt.Printf("naive j3d7pt runs in %.1f–%.1f ms territory: %v\n", 1.0, 3.0, ms > 1 && ms < 3)
	// Output:
	// naive j3d7pt runs in 1.0–3.0 ms territory: true
}

// ExampleSession_EmitCUDA shows the generated kernel header for a setting.
func ExampleSession_EmitCUDA() {
	session, err := cstuner.NewSessionFor("helmholtz", "a100")
	if err != nil {
		panic(err)
	}
	src, err := session.EmitCUDA(session.DefaultSetting())
	if err != nil {
		panic(err)
	}
	// Print just the first line.
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			fmt.Println(src[:i])
			break
		}
	}
	// Output:
	// // helmholtz: auto-generated stencil kernel
}
