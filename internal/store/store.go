// Package store is the persistent cross-campaign result store: an
// append-only measurement database shared by every campaign under one
// registry root. csTuner's premise is that measurements are expensive;
// today's campaigns nevertheless start cold even when another campaign
// already paid for the same (architecture, stencil shape, setting) point.
// The store makes those points durable and shareable: an engine consults it
// on a memo-cache miss before measuring, and publishes every successful
// episode back, so overlapping campaigns converge to measuring each distinct
// point once per fleet instead of once per run.
//
// On-disk format. The store is a directory of segment files (*.seg), each a
// sequence of CRC-framed records exactly like the campaign journal:
//
//	[u32le payload length][u32le CRC32C of payload][JSON payload]
//
// The first frame is a header {magic "csstore", version}; every further
// frame is one measurement record {composite key, scored ms}. Each process
// appends only to its own segment (created O_EXCL, named by pid), so
// concurrent campaigns sharing one directory never interleave writes into
// one file. Readers load every segment at Open and merge records by minimum
// ms per key — a commutative merge, so segment load order cannot matter.
//
// Unlike the journal the store is a cache, not a ledger: appends are
// buffered and not fsync'd (a crash loses at most the unflushed tail of
// *this process's* records — they are re-measurable), torn tails are
// skipped without truncation (the tail may be a live writer's in-flight
// frame), and a segment whose header frame cannot be trusted is quarantined
// to <name>.bad and skipped rather than failing Open.
//
// The in-memory index reuses the engine cache's lock-free read-path design
// (internal/engine/cache.go, DESIGN.md §12): 64 shards, each publishing an
// immutable read map through an atomic pointer with a mutex-guarded dirty
// overlay and geometric promotion. Get/Contains on the hot path take zero
// locks, so a cross-campaign hit costs about what an engine cache hit costs
// (pinned by BenchmarkStoreLookupHit).
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/vfs"
)

const (
	// Magic identifies a csTuner result-store segment.
	Magic = "csstore"
	// Version is the current record-format version.
	Version = 1

	// maxPayload bounds a single frame; records are tiny, so anything large
	// is a torn or flipped length prefix.
	maxPayload = 1 << 20

	frameHeaderLen = 8

	// flushEvery bounds how many buffered records may sit in the bufio
	// writer before a flush makes them visible to concurrent readers.
	flushEvery = 32

	// storeShards is the index stripe count, matching the engine cache.
	storeShards = 64
)

// ErrClosed is returned by writes on a closed store.
var ErrClosed = errors.New("store: closed")

// Header identifies a segment file.
type Header struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
}

// Record is one durable measurement: the composite key (arch fingerprint,
// shape fingerprint and setting key joined by '|' — see Key) and the scored
// kernel time.
type Record struct {
	Key string  `json:"key"`
	MS  float64 `json:"ms"`
}

// record is the tagged union every frame payload decodes into.
type record struct {
	T   string  `json:"t"` // "hdr" or "rec"
	Hdr *Header `json:"hdr,omitempty"`
	Rec *Record `json:"rec,omitempty"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// readMap is one index shard's immutable published snapshot.
type readMap struct {
	m map[string]float64
	// amended reports that the dirty overlay may hold keys absent from m.
	amended bool
}

type shard struct {
	read  atomic.Pointer[readMap]
	mu    sync.Mutex
	dirty map[string]float64
}

// get returns the stored minimum for key. The fast path — key present, or a
// definitive miss on an unamended snapshot — takes no locks.
func (sh *shard) get(key string) (float64, bool) {
	r := sh.read.Load()
	if ms, ok := r.m[key]; ok {
		return ms, true
	}
	if !r.amended {
		return 0, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r = sh.read.Load()
	if ms, ok := r.m[key]; ok {
		return ms, true
	}
	ms, ok := sh.dirty[key]
	return ms, ok
}

// getBytes is get for a stack-rendered key; the string conversions sit in
// map index expressions, which the compiler serves without allocating.
func (sh *shard) getBytes(key []byte) (float64, bool) {
	r := sh.read.Load()
	if ms, ok := r.m[string(key)]; ok {
		return ms, true
	}
	if !r.amended {
		return 0, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r = sh.read.Load()
	if ms, ok := r.m[string(key)]; ok {
		return ms, true
	}
	ms, ok := sh.dirty[string(key)]
	return ms, ok
}

// insertMin merges (key, ms) into the shard keeping the minimum, and
// reports whether the shard changed (new key or improvement). The merge is
// commutative and idempotent, which is what makes multi-segment loads
// order-independent.
func (sh *shard) insertMin(key string, ms float64) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r := sh.read.Load()
	if old, ok := sh.dirty[key]; ok {
		if old <= ms {
			return false
		}
	} else if old, ok := r.m[key]; ok && old <= ms {
		return false
	}
	if sh.dirty == nil {
		sh.dirty = make(map[string]float64)
	}
	sh.dirty[key] = ms
	if len(sh.dirty) >= 1+len(r.m)/2 {
		// Promote: merge read+dirty into a fresh immutable snapshot; the
		// geometric threshold keeps total copy work O(n) amortized.
		nm := make(map[string]float64, len(r.m)+len(sh.dirty))
		for k, v := range r.m {
			nm[k] = v
		}
		for k, v := range sh.dirty {
			nm[k] = v
		}
		sh.read.Store(&readMap{m: nm})
		sh.dirty = nil
		return true
	}
	if !r.amended {
		sh.read.Store(&readMap{m: r.m, amended: true})
	}
	return true
}

// snapshotInto appends every (key, ms) the shard holds into dst.
func (sh *shard) snapshotInto(dst map[string]float64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r := sh.read.Load()
	for k, v := range r.m {
		if d, ok := sh.dirty[k]; ok {
			dst[k] = d
			continue
		}
		dst[k] = v
	}
	for k, v := range sh.dirty {
		dst[k] = v
	}
}

// Stats is the store's observability snapshot (the /v1/store endpoint body).
type Stats struct {
	// Keys is the number of distinct composite keys indexed.
	Keys int `json:"keys"`
	// Segments is the number of segment files loaded or created.
	Segments int `json:"segments"`
	// LoadedRecords counts records read from disk at Open.
	LoadedRecords int `json:"loaded_records"`
	// AppendedRecords counts records this process wrote to its own segment.
	AppendedRecords int `json:"appended_records"`
	// SkippedRecords counts records dropped at Open from torn or corrupt
	// segment tails (a live writer's in-flight frame, or real damage).
	SkippedRecords int `json:"skipped_records,omitempty"`
	// Quarantined lists segment files renamed to .bad at Open.
	Quarantined []string `json:"quarantined,omitempty"`
	// WriteErr is the sticky append failure, if any; the in-memory index
	// keeps serving hits after a write failure.
	WriteErr string `json:"write_err,omitempty"`
	// PutDrops counts Puts whose record reached the in-memory index but was
	// not persisted because the writer was already degraded (sticky
	// WriteErr) — the size of the durability gap a degraded store accrues.
	PutDrops int `json:"put_drops,omitempty"`
	// DirSyncErrs counts directory-fsync failures after quarantine or
	// compaction renames: the rename happened, but its directory entry may
	// not survive a power loss.
	DirSyncErrs int `json:"dir_sync_errs,omitempty"`
}

// Store is one shared result database. All methods are safe for concurrent
// use; Get/GetBytes/Contains are lock-free on the hot path.
type Store struct {
	fs     vfs.FS
	dir    string
	shards [storeShards]shard

	mu       sync.Mutex
	f        vfs.File
	w        *bufio.Writer
	segPath  string
	pending  int
	appended int
	ownMin   map[string]float64 // this process's published minima (compaction source)
	writeErr error
	closed   bool

	segments    int
	loaded      int
	skipped     int
	putDrops    int
	dirSyncErrs int
	quarantined []string
}

// Open loads (creating if needed) the store directory: every *.seg segment
// is scanned, records min-merge into the index, and untrustable segments
// are quarantined to .bad. Open never fails on segment content — only on
// filesystem errors for the directory itself.
func Open(dir string) (*Store, error) {
	return OpenFS(vfs.OS, dir)
}

// OpenFS is Open through an explicit filesystem seam.
func OpenFS(fsys vfs.FS, dir string) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{fs: fsys, dir: dir, ownMin: map[string]float64{}}
	empty := &readMap{m: map[string]float64{}}
	for i := range s.shards {
		// Shards may share one empty snapshot: readMaps are immutable.
		s.shards[i].read.Store(empty)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		s.loadSegment(filepath.Join(dir, e.Name()))
	}
	return s, nil
}

// loadSegment merges one segment file into the index. An empty file is a
// concurrent writer's just-created segment and is skipped silently; a
// non-empty file whose header frame cannot be trusted is quarantined; a
// torn or corrupt tail ends the scan without truncating the file (it may be
// a live writer's partially-flushed frame).
func (s *Store) loadSegment(path string) {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		s.quarantine(path, fmt.Sprintf("unreadable: %v", err))
		return
	}
	if len(data) == 0 {
		return
	}
	payload, next, err := readFrame(data, 0)
	if err != nil {
		s.quarantine(path, fmt.Sprintf("unreadable header frame: %v", err))
		return
	}
	var hr record
	if err := json.Unmarshal(payload, &hr); err != nil || hr.T != "hdr" || hr.Hdr == nil ||
		hr.Hdr.Magic != Magic || hr.Hdr.Version > Version || hr.Hdr.Version < 1 {
		s.quarantine(path, "first frame is not a trusted store header")
		return
	}
	s.segments++
	for next < len(data) {
		payload, n, err := readFrame(data, next)
		if err != nil {
			s.skipped++
			return
		}
		var r record
		if err := json.Unmarshal(payload, &r); err != nil || r.T != "rec" || r.Rec == nil || r.Rec.Key == "" {
			s.skipped++
			return
		}
		s.shardFor(r.Rec.Key).insertMin(r.Rec.Key, r.Rec.MS)
		s.loaded++
		next = n
	}
}

// quarantine renames a damaged segment to <name>.bad so Open keeps working
// and the bytes survive for post-mortem — mirroring the registry's journal
// quarantine. A rename failure just leaves the file in place; it will be
// re-quarantined on the next Open.
func (s *Store) quarantine(path, reason string) {
	bad := path + ".bad"
	if err := s.fs.Rename(path, bad); err != nil {
		s.quarantined = append(s.quarantined, fmt.Sprintf("%s (rename failed: %v; %s)", filepath.Base(path), err, reason))
		return
	}
	s.syncDirLocked(path)
	s.quarantined = append(s.quarantined, fmt.Sprintf("%s: %s", filepath.Base(bad), reason))
}

// syncDirLocked fsyncs path's directory so a rename is durable. Best-effort
// — the renamed bytes are already in the file — but no longer silent: a
// failure is counted in Stats.DirSyncErrs. Called from Open (before the
// store is shared) and from Compact (under s.mu).
func (s *Store) syncDirLocked(path string) {
	if err := vfs.SyncDirOf(s.fs, path); err != nil {
		s.dirSyncErrs++
	}
}

func (s *Store) shardFor(key string) *shard {
	return &s.shards[keyHash(key)&(storeShards-1)]
}

// Get returns the stored minimum ms for the composite key.
func (s *Store) Get(key string) (float64, bool) {
	return s.shardFor(key).get(key)
}

// GetBytes is Get for a stack-rendered key: the allocation-free probe the
// engine's measurement path uses.
func (s *Store) GetBytes(key []byte) (float64, bool) {
	return s.shards[keyHashBytes(key)&(storeShards-1)].getBytes(key)
}

// Contains reports whether the composite key is stored.
func (s *Store) Contains(key string) bool {
	_, ok := s.shardFor(key).get(key)
	return ok
}

// Put publishes one successful measurement. The index updates first (so the
// running process keeps its hit even if the disk misbehaves); a record is
// appended to this process's own segment only when (key, ms) improved on
// everything already stored, which keeps segments min-converging. Disk
// failures are sticky and surface in Stats, never as a Put error: the store
// is a cache, and losing its durability must not fail a campaign.
func (s *Store) Put(key string, ms float64) {
	if key == "" || !s.shardFor(key).insertMin(key, ms) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if s.writeErr != nil {
		// Read-only-degraded: the index above already took the record (hits
		// keep serving), but the durability gap grows — count it.
		s.putDrops++
		return
	}
	if old, ok := s.ownMin[key]; ok && old <= ms {
		return
	}
	s.ownMin[key] = ms
	if err := s.ensureWriterLocked(); err != nil {
		s.putDrops++
		return
	}
	if err := writeFrame(s.w, record{T: "rec", Rec: &Record{Key: key, MS: ms}}); err != nil {
		s.writeErr = err
		s.putDrops++
		return
	}
	s.appended++
	s.pending++
	if s.pending >= flushEvery {
		s.flushLocked()
	}
}

// ensureWriterLocked lazily creates this process's own segment. Naming is
// pid + a retry ordinal — no wall clock, no randomness — and O_EXCL makes
// collisions (pid reuse against a stale directory) skip to the next
// ordinal. Callers hold s.mu.
func (s *Store) ensureWriterLocked() error {
	if s.f != nil {
		return nil
	}
	for n := 0; ; n++ {
		path := filepath.Join(s.dir, fmt.Sprintf("seg-%d-%04d.seg", os.Getpid(), n))
		f, err := s.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if errors.Is(err, os.ErrExist) {
			continue
		}
		if err != nil {
			s.writeErr = fmt.Errorf("store: create segment: %w", err)
			return s.writeErr
		}
		w := bufio.NewWriter(f)
		if err := writeFrame(w, record{T: "hdr", Hdr: &Header{Magic: Magic, Version: Version}}); err == nil {
			err = w.Flush()
		}
		if err != nil {
			_ = f.Close()
			// Best-effort: an empty or headerless leftover is skipped (or
			// quarantined) by the next Open, never trusted.
			_ = s.fs.Remove(path)
			s.writeErr = fmt.Errorf("store: segment header: %w", err)
			return s.writeErr
		}
		s.f, s.w, s.segPath = f, w, path
		s.segments++
		return nil
	}
}

// flushLocked pushes buffered records to the OS so concurrent readers (and
// crashes) see them. No fsync: the store is a cache, and every record is
// re-measurable. Callers hold s.mu.
func (s *Store) flushLocked() {
	if s.w == nil {
		return
	}
	if err := s.w.Flush(); err != nil && s.writeErr == nil {
		s.writeErr = fmt.Errorf("store: flush: %w", err)
	}
	s.pending = 0
}

// Flush makes every appended record visible to other processes.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.flushLocked()
	return s.writeErr
}

// Compact rewrites this process's own segment from its current per-key
// minima, dropping superseded records, via the temp-file + rename +
// dir-fsync dance — atomic, and safe under concurrent campaigns because no
// other process ever writes this segment. A store that never wrote is a
// no-op.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.f == nil || s.writeErr != nil {
		return s.writeErr
	}
	keys := make([]string, 0, len(s.ownMin))
	for k := range s.ownMin {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic segment bytes for a given history
	tmpPath := s.segPath + ".tmp"
	tmp, err := s.fs.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact temp: %w", err)
	}
	w := bufio.NewWriter(tmp)
	err = writeFrame(w, record{T: "hdr", Hdr: &Header{Magic: Magic, Version: Version}})
	for _, k := range keys {
		if err != nil {
			break
		}
		err = writeFrame(w, record{T: "rec", Rec: &Record{Key: k, MS: s.ownMin[k]}})
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		_ = tmp.Close()
		// Best-effort; a leftover tmp is invisible to Open (no .seg suffix).
		_ = s.fs.Remove(tmpPath)
		return fmt.Errorf("store: compact write: %w", err)
	}
	if err := s.fs.Rename(tmpPath, s.segPath); err != nil {
		_ = tmp.Close()
		_ = s.fs.Remove(tmpPath)
		return fmt.Errorf("store: compact rename: %w", err)
	}
	s.syncDirLocked(s.segPath)
	_ = s.f.Close() // old pre-compaction handle; the rename made tmp authoritative
	s.f, s.w, s.pending = tmp, w, 0
	return nil
}

// Close flushes and releases this process's segment. The index stays
// readable (lock-free probes never touch the writer state), but further
// Puts are refused.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.flushLocked()
	if s.f != nil {
		if err := s.f.Close(); err != nil && s.writeErr == nil {
			s.writeErr = err
		}
	}
	return s.writeErr
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Degraded reports whether the store has fallen back to read-only-degraded
// mode: a sticky write failure stopped persistence, while the in-memory
// index keeps serving hits and taking Put records. The engine counts
// publishes dropped this way; the service reports the mode in healthz.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeErr != nil
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Segments:        s.segments,
		LoadedRecords:   s.loaded,
		AppendedRecords: s.appended,
		SkippedRecords:  s.skipped,
		PutDrops:        s.putDrops,
		DirSyncErrs:     s.dirSyncErrs,
		Quarantined:     append([]string(nil), s.quarantined...),
	}
	if s.writeErr != nil {
		st.WriteErr = s.writeErr.Error()
	}
	s.mu.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		r := sh.read.Load()
		n := len(r.m)
		for k := range sh.dirty {
			if _, ok := r.m[k]; !ok {
				n++
			}
		}
		sh.mu.Unlock()
		st.Keys += n
	}
	return st
}

// Entry is one stored best, with the composite key split into its parts.
type Entry struct {
	Arch    string
	Shape   string
	Setting string // the space.Setting key
	MS      float64
}

// Best returns up to n stored entries for the given shape fingerprint,
// lowest ms first, restricted to one arch fingerprint when arch != "".
// Deterministic: ties break by (arch, setting key). This is the warm-start
// query — rare, so it walks the shards under their locks.
func (s *Store) Best(shape, arch string, n int) []Entry {
	if n <= 0 {
		return nil
	}
	all := map[string]float64{}
	for i := range s.shards {
		s.shards[i].snapshotInto(all)
	}
	out := make([]Entry, 0, n)
	// Map order is laundered out by the full sort below (the sanctioned
	// append-then-sort idiom).
	for k, ms := range all {
		a, sh, set, ok := SplitKey(k)
		if !ok || sh != shape || (arch != "" && a != arch) {
			continue
		}
		out = append(out, Entry{Arch: a, Shape: sh, Setting: set, MS: ms})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MS != out[j].MS {
			return out[i].MS < out[j].MS
		}
		if out[i].Arch != out[j].Arch {
			return out[i].Arch < out[j].Arch
		}
		return out[i].Setting < out[j].Setting
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// readFrame decodes the frame starting at off and returns its payload and
// the offset of the next frame.
func readFrame(data []byte, off int) ([]byte, int, error) {
	if off+frameHeaderLen > len(data) {
		return nil, 0, fmt.Errorf("short frame header at %d", off)
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n == 0 || n > maxPayload {
		return nil, 0, fmt.Errorf("implausible frame length %d at %d", n, off)
	}
	start := off + frameHeaderLen
	if start+n > len(data) {
		return nil, 0, fmt.Errorf("short frame payload at %d", off)
	}
	payload := data[start : start+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, fmt.Errorf("crc mismatch at %d", off)
	}
	return payload, start + n, nil
}

// writeFrame marshals and writes one frame.
func writeFrame(w *bufio.Writer, r record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: marshal: %w", err)
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	return nil
}

// keyHash is a stateless FNV-1a; keyHashBytes must agree byte-for-byte so
// stack-rendered probes select the same shard.
func keyHash(key string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func keyHashBytes(key []byte) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}
