package store

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/vfs"
)

// chaosKeys is the fixed key set the compact sweep publishes.
func chaosKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("arch0|shape0|s%02d", i)
	}
	return keys
}

// TestCompactFaultSweep proves Compact's temp-file + rename replacement is
// atomic under every single-op disk fault: whatever op the fault hits,
// every published record must survive a clean reopen — served either by the
// old append-log segment or by the fully-landed compacted one, never lost
// to a half-applied rewrite — and a failed compaction must leave the store
// writable (not degraded) with no quarantined segments.
func TestCompactFaultSweep(t *testing.T) {
	keys := chaosKeys(10)

	// Enumeration pass: count the ops one compaction costs. The workload is
	// deterministic, so indices are stable across runs.
	counter := vfs.NewFaultFS(vfs.OS, 0)
	s, err := OpenFS(counter, filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		s.Put(k, float64(i)+1)
	}
	pre := counter.Ops()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	compactOps := counter.Ops() - pre
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if compactOps < 4 {
		t.Fatalf("compaction cost only %d ops; the sweep would prove nothing", compactOps)
	}

	flavors := []struct {
		name  string
		fault vfs.Fault
	}{
		{"eio", vfs.Fault{Err: vfs.EIO()}},
		{"enospc", vfs.Fault{Err: vfs.ENoSpace()}},
		{"short", vfs.Fault{Op: vfs.OpWrite, Err: vfs.EIO(), Short: true}},
	}
	const extraKey = "arch0|shape0|post-compact"
	for _, fl := range flavors {
		for i := int64(0); i < compactOps; i++ {
			ctx := fmt.Sprintf("flavor=%s op=%d", fl.name, i)
			f := fl.fault
			f.AtIndex = pre + i
			ff := vfs.NewFaultFS(vfs.OS, 0, f)
			dir := filepath.Join(t.TempDir(), "store")
			s, err := OpenFS(ff, dir)
			if err != nil {
				t.Fatalf("%s: open: %v", ctx, err)
			}
			for i, k := range keys {
				s.Put(k, float64(i)+1)
			}
			cerr := s.Compact()
			// Compaction failure must not flip the store read-only: the old
			// segment is still valid and appends still land.
			if s.Degraded() {
				t.Fatalf("%s: compact fault (err=%v) degraded the store", ctx, cerr)
			}
			s.Put(extraKey, 42)
			if err := s.Close(); err != nil {
				t.Fatalf("%s: close after compact fault (err=%v): %v", ctx, cerr, err)
			}

			re, err := OpenFS(vfs.OS, dir)
			if err != nil {
				t.Fatalf("%s: reopen: %v", ctx, err)
			}
			for i, k := range keys {
				if ms, ok := re.Get(k); !ok || ms != float64(i)+1 {
					t.Fatalf("%s: key %s lost to a half-applied compact (ok=%v ms=%g, compact err=%v)", ctx, k, ok, ms, cerr)
				}
			}
			if ms, ok := re.Get(extraKey); !ok || ms != 42 {
				t.Fatalf("%s: post-compact append lost (ok=%v ms=%g)", ctx, ok, ms)
			}
			if q := re.Stats().Quarantined; len(q) != 0 {
				t.Fatalf("%s: compact fault poisoned a segment: %v", ctx, q)
			}
			_ = re.Close()
		}
	}
}

// TestStoreDegradedReadOnly drives the store into read-only-degraded mode
// (segment creation refused with ENOSPC) and proves the degradation
// contract: Puts keep landing in the in-memory index (hits keep serving),
// drops are counted, Degraded()/Stats expose the mode, and the sticky write
// error surfaces from Close as the ENOSPC it was.
func TestStoreDegradedReadOnly(t *testing.T) {
	ff := vfs.NewFaultFS(vfs.OS, 0,
		vfs.Fault{Op: vfs.OpCreate, Path: ".seg", Err: vfs.ENoSpace(), Rate: 1})
	s, err := OpenFS(ff, filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Fatal("store degraded before any write")
	}

	s.Put("arch0|shape0|a", 3)
	if !s.Degraded() {
		t.Fatal("segment-create ENOSPC did not degrade the store")
	}
	if ms, ok := s.Get("arch0|shape0|a"); !ok || ms != 3 {
		t.Fatalf("degraded store stopped serving its index: ok=%v ms=%g", ok, ms)
	}
	s.Put("arch0|shape0|b", 4)
	if ms, ok := s.Get("arch0|shape0|b"); !ok || ms != 4 {
		t.Fatalf("degraded store refused a post-degradation Put into the index: ok=%v ms=%g", ok, ms)
	}

	st := s.Stats()
	if st.WriteErr == "" || st.PutDrops != 2 {
		t.Fatalf("degradation not visible in stats: %+v", st)
	}
	if err := s.Close(); !vfs.IsNoSpace(err) {
		t.Fatalf("close surfaced %v, want the sticky ENOSPC", err)
	}
}
