package store

import (
	"fmt"
	"strings"

	"repro/internal/gpu"
	"repro/internal/stencil"
)

// Composite keys. A stored measurement is addressed by
//
//	<arch fingerprint>|<shape fingerprint>|<setting key>
//
// where the first two parts are content fingerprints — not just names — so
// two differently-parameterized models that happen to share a name never
// alias, and '|' is reserved as the separator (names are sanitized). The
// setting key is space.Setting.Key(), which is already canonical: sorted
// parameter names joined by commas.

// sanitize replaces the reserved separator and whitespace in a free-form
// name so fingerprints stay splittable.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '|', ' ', '\n', '\t', '\r':
			return '_'
		}
		return r
	}, name)
}

// ArchFingerprint identifies a GPU model by the parameters that shape
// measured times: the occupancy-calculator limits, memory sizes and
// throughput/latency constants. Two arch values agreeing on all of these
// produce identical simulated measurements, so sharing their results is
// sound by construction.
func ArchFingerprint(a *gpu.Arch) string {
	if a == nil {
		return "arch:nil"
	}
	return fmt.Sprintf(
		"arch:%s;sm=%d,%d;lim=%d,%d,%d,%d,%d,%d;mem=%d,%d,%d,%d;thr=%g,%d,%g,%g,%g;lat=%g,%g,%g",
		sanitize(a.Name),
		a.SMs, a.WarpSize,
		a.MaxThreadsPerSM, a.MaxBlocksPerSM, a.MaxWarpsPerSM,
		a.RegistersPerSM, a.MaxRegsPerThread, a.SpillRegsPerThread,
		a.SharedMemPerSM, a.SharedMemPerBlock, a.L2Bytes, a.ConstantBytes,
		a.ClockGHz, a.FP64PerSM, a.DRAMBandwidthGB, a.L2BandwidthGB, a.SharedBWPerSMGB,
		a.DRAMLatencyNS, a.BarrierCostNS, a.LaunchOverheadUS,
	)
}

// ShapeFingerprint identifies a stencil computation by everything that
// shapes its data movement and arithmetic: grid extents, order, FLOPs,
// array counts, coefficient count and a digest of the full tap pattern.
func ShapeFingerprint(st *stencil.Stencil) string {
	if st == nil {
		return "shape:nil"
	}
	h := uint64(1469598103934665603)
	mix := func(v int) {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= 1099511628211
		}
	}
	for _, t := range st.Taps {
		mix(t.Array)
		mix(t.DX)
		mix(t.DY)
		mix(t.DZ)
		// Coefficients scale arithmetic, not time-shaping structure, but
		// fold their bits in anyway: cheaper than arguing they never matter.
		mix(int(int64(t.Coeff * 1e9)))
	}
	return fmt.Sprintf(
		"shape:%s;grid=%dx%dx%d;ord=%d;flops=%d;io=%d+%d;coef=%d;taps=%d,%016x",
		sanitize(st.Name),
		st.NX, st.NY, st.NZ, st.Order, st.FLOPs,
		st.Inputs, st.Outputs, st.Coeffs, len(st.Taps), h,
	)
}

// Prefix joins arch and shape fingerprints into the engine's per-campaign
// key prefix; the engine appends "|" + setting key to form the composite.
func Prefix(archFP, shapeFP string) string {
	return archFP + "|" + shapeFP + "|"
}

// Key forms a full composite key.
func Key(archFP, shapeFP, settingKey string) string {
	return archFP + "|" + shapeFP + "|" + settingKey
}

// SplitKey splits a composite key back into its parts.
func SplitKey(key string) (archFP, shapeFP, settingKey string, ok bool) {
	i := strings.Index(key, "|")
	if i < 0 {
		return "", "", "", false
	}
	j := strings.Index(key[i+1:], "|")
	if j < 0 {
		return "", "", "", false
	}
	return key[:i], key[i+1 : i+1+j], key[i+1+j+1:], true
}
