package store

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The two-process test re-execs this test binary with childDirEnv set; the
// child body lives in TestMain so it shares zero test state with the parent.
const (
	childDirEnv = "CSTORE_TEST_CHILD_DIR"
	childIDEnv  = "CSTORE_TEST_CHILD_ID"
)

func TestMain(m *testing.M) {
	if dir := os.Getenv(childDirEnv); dir != "" {
		runChildWriter(dir, os.Getenv(childIDEnv))
		return
	}
	os.Exit(m.Run())
}

// runChildWriter is the child-process body: open the shared store, publish a
// deterministic record set (some keys unique to this child, some contended
// with every other writer), flush and exit.
func runChildWriter(dir, id string) {
	s, err := Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: open:", err)
		os.Exit(2)
	}
	for i := 0; i < 200; i++ {
		s.Put(Key("archA", "shapeA", fmt.Sprintf("own-%s-%d", id, i)), float64(i)+1)
		s.Put(Key("archA", "shapeA", fmt.Sprintf("shared-%d", i%20)), float64(i%7)+1)
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "child: close:", err)
		os.Exit(2)
	}
	os.Exit(0)
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := Key("archA", "shapeA", "bx=32")
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store reported a hit")
	}
	s.Put(k, 3.5)
	if ms, ok := s.Get(k); !ok || ms != 3.5 {
		t.Fatalf("Get = %v,%v want 3.5,true", ms, ok)
	}
	if ms, ok := s.GetBytes([]byte(k)); !ok || ms != 3.5 {
		t.Fatalf("GetBytes = %v,%v want 3.5,true", ms, ok)
	}
	if !s.Contains(k) {
		t.Fatal("Contains = false after Put")
	}

	// Min-merge: a worse time never overwrites, a better one does.
	s.Put(k, 9.0)
	if ms, _ := s.Get(k); ms != 3.5 {
		t.Fatalf("worse Put overwrote: got %v", ms)
	}
	s.Put(k, 1.25)
	if ms, _ := s.Get(k); ms != 1.25 {
		t.Fatalf("better Put ignored: got %v", ms)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Persistence: a fresh Open sees the minimum.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ms, ok := s2.Get(k); !ok || ms != 1.25 {
		t.Fatalf("reopened Get = %v,%v want 1.25,true", ms, ok)
	}
	st := s2.Stats()
	if st.Keys != 1 || st.Quarantined != nil || st.SkippedRecords != 0 {
		t.Fatalf("reopened stats = %+v", st)
	}
	_ = s2.Close()
}

func TestStorePutAfterCloseRefused(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Put("a|b|c", 1) // must not panic or write
	if err := s.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close = %v want ErrClosed", err)
	}
	// The index still updated: closed stores keep serving the running process.
	if ms, ok := s.Get("a|b|c"); !ok || ms != 1 {
		t.Fatalf("post-close Get = %v,%v", ms, ok)
	}
}

// TestStoreTwoInstancesOneDir covers the same-directory concurrency contract
// in-process: each Store appends to its own O_EXCL segment (the retry
// ordinal separates same-pid instances), and a fresh Open min-merges both.
func TestStoreTwoInstancesOneDir(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := Key("archA", "shapeA", "contended")
	a.Put(k, 5)
	b.Put(k, 3) // b never saw a's unflushed record; its own min is 3
	a.Put(Key("archA", "shapeA", "only-a"), 7)
	b.Put(Key("archA", "shapeA", "only-b"), 8)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 2 {
		t.Fatalf("want 2 segments (one per instance), got %v", segs)
	}
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if ms, _ := m.Get(k); ms != 3 {
		t.Fatalf("merged contended key = %v want 3", ms)
	}
	if ms, _ := m.Get(Key("archA", "shapeA", "only-a")); ms != 7 {
		t.Fatalf("only-a = %v", ms)
	}
	if ms, _ := m.Get(Key("archA", "shapeA", "only-b")); ms != 8 {
		t.Fatalf("only-b = %v", ms)
	}
}

// TestStoreTwoProcessSharedDir is the cross-process version: two real child
// processes and the parent all write the same directory concurrently, and a
// final Open must see every record, the correct contended minima, and zero
// corruption.
func TestStoreTwoProcessSharedDir(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()

	var kids []*exec.Cmd
	for _, id := range []string{"c1", "c2"} {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(), childDirEnv+"="+dir, childIDEnv+"="+id)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		kids = append(kids, cmd)
	}

	// The parent writes concurrently with both children.
	p, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p.Put(Key("archA", "shapeA", fmt.Sprintf("own-parent-%d", i)), float64(i)+1)
		p.Put(Key("archA", "shapeA", fmt.Sprintf("shared-%d", i%20)), float64(i%7)+1)
	}
	for _, cmd := range kids {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("child writer failed: %v", err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st := m.Stats()
	if st.Quarantined != nil || st.SkippedRecords != 0 {
		t.Fatalf("shared dir corrupted: %+v", st)
	}
	// 3 writers × 200 own keys + 20 contended keys.
	if want := 3*200 + 20; st.Keys != want {
		t.Fatalf("Keys = %d want %d", st.Keys, want)
	}
	for _, id := range []string{"c1", "c2", "parent"} {
		for i := 0; i < 200; i++ {
			k := Key("archA", "shapeA", fmt.Sprintf("own-%s-%d", id, i))
			if ms, ok := m.Get(k); !ok || ms != float64(i)+1 {
				t.Fatalf("%s = %v,%v want %v", k, ms, ok, float64(i)+1)
			}
		}
	}
	// Every contended key's minimum over i%7+1 for the i hitting it is 1..7;
	// shared-j is written by i ∈ {j, j+20, ...}; min over those of i%7+1.
	for j := 0; j < 20; j++ {
		min := 8.0
		for i := j; i < 200; i += 20 {
			if v := float64(i%7) + 1; v < min {
				min = v
			}
		}
		k := Key("archA", "shapeA", fmt.Sprintf("shared-%d", j))
		if ms, ok := m.Get(k); !ok || ms != min {
			t.Fatalf("%s = %v,%v want %v", k, ms, ok, min)
		}
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A strictly improving sequence appends every step — worst case bloat.
	for i := 0; i < 100; i++ {
		s.Put(Key("archA", "shapeA", "hot"), float64(100-i))
		s.Put(Key("archA", "shapeA", fmt.Sprintf("k%03d", i)), float64(i)+1)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	before, _ := os.Stat(segs[0])
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(segs[0])
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink: %d -> %d", before.Size(), after.Size())
	}
	// The store keeps writing through the compacted segment.
	s.Put(Key("archA", "shapeA", "post-compact"), 0.5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if ms, _ := m.Get(Key("archA", "shapeA", "hot")); ms != 1 {
		t.Fatalf("hot after compact+reopen = %v want 1", ms)
	}
	if ms, _ := m.Get(Key("archA", "shapeA", "post-compact")); ms != 0.5 {
		t.Fatalf("post-compact record lost: %v", ms)
	}
	if st := m.Stats(); st.Keys != 102 || st.SkippedRecords != 0 {
		t.Fatalf("stats after compact = %+v", st)
	}
}

func TestStoreBest(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(Key("archA", "shapeA", "s1"), 3)
	s.Put(Key("archA", "shapeA", "s2"), 1)
	s.Put(Key("archB", "shapeA", "s3"), 2)
	s.Put(Key("archB", "shapeA", "s2"), 2) // tie with s3 on MS; arch+setting breaks it
	s.Put(Key("archA", "shapeB", "s4"), 0.1)

	got := s.Best("shapeA", "", 10)
	want := []string{"s2", "s2", "s3", "s1"} // 1, 2(archB,s2), 2(archB,s3), 3
	if len(got) != len(want) {
		t.Fatalf("Best all-arch = %+v", got)
	}
	for i, e := range got {
		if e.Setting != want[i] {
			t.Fatalf("Best[%d] = %+v want setting %s (all %+v)", i, e, want[i], got)
		}
	}
	if got[1].MS != 2 || got[2].MS != 2 || got[1].Setting > got[2].Setting {
		t.Fatalf("tie-break not by setting key: %+v", got)
	}

	onlyA := s.Best("shapeA", "archA", 10)
	if len(onlyA) != 2 || onlyA[0].Setting != "s2" || onlyA[1].Setting != "s1" {
		t.Fatalf("Best archA = %+v", onlyA)
	}
	if top := s.Best("shapeA", "", 1); len(top) != 1 || top[0].Setting != "s2" || top[0].MS != 1 {
		t.Fatalf("Best n=1 = %+v", top)
	}
	if s.Best("shapeA", "", 0) != nil {
		t.Fatal("Best n=0 should be nil")
	}
}

// buildSegment renders a valid segment file's bytes: header plus records.
func buildSegment(t *testing.T, recs ...Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, record{T: "hdr", Hdr: &Header{Magic: Magic, Version: Version}}); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := writeFrame(w, record{T: "rec", Rec: &recs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStoreCorruption is the damage table: every way a segment can rot must
// leave Open working, never panic, and never poison the index with bogus
// records. Quarantines rename to .bad; torn tails stop the scan in place.
func TestStoreCorruption(t *testing.T) {
	recs := []Record{
		{Key: Key("archA", "shapeA", "k1"), MS: 1.5},
		{Key: Key("archA", "shapeA", "k2"), MS: 2.5},
		{Key: Key("archA", "shapeA", "k3"), MS: 3.5},
	}
	valid := buildSegment(t, recs...)
	hdrLen := len(buildSegment(t)) // header frame only

	cases := []struct {
		name       string
		mutate     func([]byte) []byte
		wantKeys   int
		wantSkip   bool
		wantQuar   bool
		wantGone   bool // original .seg renamed away
		wantLoaded int
	}{
		{
			name:       "intact",
			mutate:     func(b []byte) []byte { return b },
			wantKeys:   3,
			wantLoaded: 3,
		},
		{
			name:     "empty file",
			mutate:   func(b []byte) []byte { return nil },
			wantKeys: 0,
		},
		{
			name:     "garbage header",
			mutate:   func(b []byte) []byte { return []byte("not a store segment at all") },
			wantKeys: 0, wantQuar: true, wantGone: true,
		},
		{
			name: "bit flip in header payload",
			mutate: func(b []byte) []byte {
				b[frameHeaderLen+2] ^= 0x40
				return b
			},
			wantKeys: 0, wantQuar: true, wantGone: true,
		},
		{
			name: "truncated mid-record",
			mutate: func(b []byte) []byte {
				return b[:hdrLen+(len(valid)-hdrLen)/2]
			},
			wantKeys: 1, wantSkip: true, wantLoaded: 1,
		},
		{
			name: "torn tail: dangling frame header",
			mutate: func(b []byte) []byte {
				return append(b, 0x10, 0x00, 0x00, 0x00)
			},
			wantKeys: 3, wantSkip: true, wantLoaded: 3,
		},
		{
			name: "bit flip in last record payload",
			mutate: func(b []byte) []byte {
				b[len(b)-3] ^= 0x01
				return b
			},
			wantKeys: 2, wantSkip: true, wantLoaded: 2,
		},
		{
			name: "length prefix blown up",
			mutate: func(b []byte) []byte {
				copy(b[hdrLen:], []byte{0xff, 0xff, 0xff, 0x7f})
				return b
			},
			wantKeys: 0, wantSkip: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			seg := filepath.Join(dir, "seg-1-0000.seg")
			data := tc.mutate(append([]byte(nil), valid...))
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir)
			if err != nil {
				t.Fatalf("Open must survive damage: %v", err)
			}
			defer s.Close()
			st := s.Stats()
			if st.Keys != tc.wantKeys {
				t.Fatalf("Keys = %d want %d (stats %+v)", st.Keys, tc.wantKeys, st)
			}
			if tc.wantLoaded != 0 && st.LoadedRecords != tc.wantLoaded {
				t.Fatalf("LoadedRecords = %d want %d", st.LoadedRecords, tc.wantLoaded)
			}
			if (st.SkippedRecords > 0) != tc.wantSkip {
				t.Fatalf("SkippedRecords = %d, wantSkip=%v", st.SkippedRecords, tc.wantSkip)
			}
			if (len(st.Quarantined) > 0) != tc.wantQuar {
				t.Fatalf("Quarantined = %v, wantQuar=%v", st.Quarantined, tc.wantQuar)
			}
			if _, err := os.Stat(seg); tc.wantGone != os.IsNotExist(err) {
				t.Fatalf("segment present=%v, wantGone=%v", err == nil, tc.wantGone)
			}
			if tc.wantQuar {
				if _, err := os.Stat(seg + ".bad"); err != nil {
					t.Fatalf("no .bad quarantine file: %v", err)
				}
			}
			// Never poisoned: whatever loaded must be an exact valid record.
			for _, r := range recs {
				if ms, ok := s.Get(r.Key); ok && ms != r.MS {
					t.Fatalf("poisoned: %s = %v want %v", r.Key, ms, r.MS)
				}
			}
			// And the store must still accept writes after any damage.
			s.Put(Key("archA", "shapeA", "fresh"), 0.25)
			if ms, ok := s.Get(Key("archA", "shapeA", "fresh")); !ok || ms != 0.25 {
				t.Fatalf("Put after damage = %v,%v", ms, ok)
			}
			if werr := s.Stats().WriteErr; werr != "" {
				t.Fatalf("write error after damage: %s", werr)
			}
		})
	}
}

// TestStoreReopenAfterQuarantine: a quarantined segment stays out of the way
// on the next Open (it is .bad now), and the store keeps accumulating.
func TestStoreReopenAfterQuarantine(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-9-0000.seg"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if q := s.Stats().Quarantined; len(q) != 1 || !strings.Contains(q[0], ".bad") {
		t.Fatalf("Quarantined = %v", q)
	}
	s.Put(Key("archA", "shapeA", "x"), 1)
	_ = s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if len(st.Quarantined) != 0 {
		t.Fatalf("second Open re-quarantined: %v", st.Quarantined)
	}
	if ms, ok := s2.Get(Key("archA", "shapeA", "x")); !ok || ms != 1 {
		t.Fatalf("record lost across quarantine reopen: %v,%v", ms, ok)
	}
}

// FuzzStoreRecord feeds arbitrary bytes to the segment loader: Open must
// never panic, never invent records that were not framed with a valid CRC,
// and must leave the store writable.
func FuzzStoreRecord(f *testing.F) {
	valid := buildSegmentFuzz(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("csstore"))
	f.Add(valid[:len(valid)-3])
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x80
	f.Add(flip)
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-1-0000.seg"), data, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("Open returned error on arbitrary bytes: %v", err)
		}
		defer s.Close()
		// Whatever loaded, the store must still work.
		s.Put("a|b|probe", 0.125)
		if ms, ok := s.Get("a|b|probe"); !ok || ms != 0.125 {
			t.Fatalf("store poisoned: probe = %v,%v", ms, ok)
		}
		st := s.Stats()
		if st.Keys < 1 {
			t.Fatalf("index lost the probe key: %+v", st)
		}
	})
}

// buildSegmentFuzz is buildSegment for the fuzz seed corpus (testing.F is
// not a testing.T).
func buildSegmentFuzz(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	_ = writeFrame(w, record{T: "hdr", Hdr: &Header{Magic: Magic, Version: Version}})
	_ = writeFrame(w, record{T: "rec", Rec: &Record{Key: "a|b|c", MS: 1}})
	_ = writeFrame(w, record{T: "rec", Rec: &Record{Key: "a|b|d", MS: 2}})
	_ = w.Flush()
	return buf.Bytes()
}
