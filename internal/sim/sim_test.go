package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gpu"
	"repro/internal/space"
	"repro/internal/stencil"
)

func simFor(t testing.TB, st *stencil.Stencil, arch *gpu.Arch) *Simulator {
	t.Helper()
	sp, err := space.New(st)
	if err != nil {
		t.Fatal(err)
	}
	return New(sp, arch)
}

func TestDefaultSettingTimescale(t *testing.T) {
	// j3d7pt is memory bound: 512³ x 2 arrays x 8B = 2.1 GB at ~1.5 TB/s
	// should land in the low milliseconds, within an order of magnitude.
	s := simFor(t, stencil.J3D7PT(), gpu.A100())
	ms, err := s.Measure(s.Space().Default())
	if err != nil {
		t.Fatal(err)
	}
	if ms < 0.3 || ms > 30 {
		t.Fatalf("j3d7pt default = %.3f ms, expected low-millisecond scale", ms)
	}
	// rhs4center is compute heavy: 320³ x 666 FLOPs ≈ 2.2e10 FLOPs at
	// ~9.7 TFLOPS ≥ 2.25 ms.
	s2 := simFor(t, stencil.RHS4Center(), gpu.A100())
	ms2, err := s2.Measure(s2.Space().Default())
	if err != nil {
		t.Fatal(err)
	}
	if ms2 < 1 || ms2 > 100 {
		t.Fatalf("rhs4center default = %.3f ms, expected several ms", ms2)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	s := simFor(t, stencil.Helmholtz(), gpu.A100())
	set := s.Space().Default()
	a, err := s.Measure(set)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Measure(set)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same setting measured differently: %v vs %v", a, b)
	}
}

func TestMeasureInvalidSetting(t *testing.T) {
	s := simFor(t, stencil.J3D7PT(), gpu.A100())
	bad := s.Space().Default()
	bad[space.SD] = 2 // explicit violation
	if _, err := s.Measure(bad); err == nil {
		t.Fatal("invalid setting should error")
	}
}

func TestNoiseWithinBounds(t *testing.T) {
	s := simFor(t, stencil.J3D27PT(), gpu.A100())
	noiseless := *s
	noiseless.NoiseAmp = 0
	set := s.Space().Default()
	clean, err := noiseless.Measure(set)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := s.Measure(set)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(noisy-clean) / clean; rel > s.NoiseAmp+1e-9 {
		t.Fatalf("noise %.4f exceeds amplitude %.4f", rel, s.NoiseAmp)
	}
}

func TestSeedChangesNoise(t *testing.T) {
	s1 := simFor(t, stencil.Cheby(), gpu.A100())
	s2 := simFor(t, stencil.Cheby(), gpu.A100())
	s2.Seed = 0xbeef
	set := s1.Space().Default()
	a, _ := s1.Measure(set)
	b, _ := s2.Measure(set)
	if a == b {
		t.Fatal("different seeds should perturb measurements differently")
	}
}

func TestV100SlowerThanA100(t *testing.T) {
	for _, st := range []*stencil.Stencil{stencil.J3D7PT(), stencil.RHS4Center()} {
		sa := simFor(t, st, gpu.A100())
		sv := simFor(t, st, gpu.V100())
		sa.NoiseAmp, sv.NoiseAmp = 0, 0
		set := sa.Space().Default()
		a, err := sa.Measure(set)
		if err != nil {
			t.Fatal(err)
		}
		v, err := sv.Measure(set)
		if err != nil {
			t.Fatal(err)
		}
		if v <= a {
			t.Fatalf("%s: V100 (%.3f ms) should be slower than A100 (%.3f ms)", st.Name, v, a)
		}
	}
}

// TestTunedBeatsNaive: classic good settings must beat pathological ones by
// a wide margin — this is the precondition for the paper's whole premise.
func TestTunedBeatsNaive(t *testing.T) {
	s := simFor(t, stencil.Helmholtz(), gpu.A100())
	s.NoiseAmp = 0
	good := s.Space().Default()
	good[space.TBX] = 64
	good[space.TBY] = 8
	good[space.UseShared] = space.On
	good[space.UFX] = 2

	bad := s.Space().Default()
	bad[space.TBX] = 1 // fully uncoalesced, 4-thread blocks
	bad[space.TBY] = 4

	g, err := s.Measure(good)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Measure(bad)
	if err != nil {
		t.Fatal(err)
	}
	if b < 3*g {
		t.Fatalf("pathological setting (%.3f ms) should be >=3x slower than a good one (%.3f ms)", b, g)
	}
}

func TestCoalescingMatters(t *testing.T) {
	s := simFor(t, stencil.J3D7PT(), gpu.A100())
	s.NoiseAmp = 0
	wide := s.Space().Default() // TBx=64
	narrow := wide.Clone()
	narrow[space.TBX] = 4
	narrow[space.TBY] = 64
	w, err := s.Measure(wide)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Measure(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if n <= w {
		t.Fatalf("narrow TBx (%.3f ms) should lose to wide TBx (%.3f ms) on a memory-bound stencil", n, w)
	}
}

func TestBlockMergeInnermostHurts(t *testing.T) {
	s := simFor(t, stencil.J3D7PT(), gpu.A100())
	s.NoiseAmp = 0
	base := s.Space().Default()
	bmx := base.Clone()
	bmx[space.BMX] = 8
	bmy := base.Clone()
	bmy[space.BMY] = 8
	tb, _ := s.Measure(base)
	tx, err := s.Measure(bmx)
	if err != nil {
		t.Fatal(err)
	}
	ty, err := s.Measure(bmy)
	if err != nil {
		t.Fatal(err)
	}
	// Innermost block merging disrupts coalescing (paper II-B2): merging in
	// x must be clearly worse than the same merge in y.
	if tx <= ty {
		t.Fatalf("BMx=8 (%.3f ms) should be slower than BMy=8 (%.3f ms), base %.3f ms", tx, ty, tb)
	}
}

func TestStreamingHelpsMemoryBoundHighOrder(t *testing.T) {
	s := simFor(t, stencil.Helmholtz(), gpu.A100())
	s.NoiseAmp = 0
	base := s.Space().Default()
	stream := base.Clone()
	stream[space.UseStreaming] = space.On
	stream[space.SD] = 3
	stream[space.SB] = 64
	stream[space.TBZ] = 1
	b, _ := s.Measure(base)
	st, err := s.Measure(stream)
	if err != nil {
		t.Fatal(err)
	}
	if st >= b {
		t.Fatalf("2.5-D streaming (%.3f ms) should beat naive (%.3f ms) on helmholtz", st, b)
	}
}

func TestSerialStreamingLimitsParallelism(t *testing.T) {
	s := simFor(t, stencil.J3D7PT(), gpu.A100())
	s.NoiseAmp = 0
	one := s.Space().Default()
	one[space.UseStreaming] = space.On
	one[space.SD] = 3
	one[space.SB] = 1 // a single tile: blocks only tile x/y
	one[space.TBZ] = 1
	many := one.Clone()
	many[space.SB] = 64
	t1, err := s.Measure(one)
	if err != nil {
		t.Fatal(err)
	}
	t64, err := s.Measure(many)
	if err != nil {
		t.Fatal(err)
	}
	if t64 >= t1 {
		t.Fatalf("concurrent streaming SB=64 (%.3f ms) should beat SB=1 (%.3f ms)", t64, t1)
	}
}

func TestConstantMemoryTradeoff(t *testing.T) {
	// Many-coefficient stencil benefits from constant memory...
	s := simFor(t, stencil.RHS4Center(), gpu.A100())
	s.NoiseAmp = 0
	off := s.Space().Default()
	on := off.Clone()
	on[space.UseConstant] = space.On
	toff, _ := s.Measure(off)
	ton, _ := s.Measure(on)
	if ton >= toff {
		t.Fatalf("constant memory should help rhs4center: on=%.3f off=%.3f", ton, toff)
	}
	// ...while a 2-coefficient stencil sees no gain.
	s2 := simFor(t, stencil.J3D7PT(), gpu.A100())
	s2.NoiseAmp = 0
	off2 := s2.Space().Default()
	on2 := off2.Clone()
	on2[space.UseConstant] = space.On
	toff2, _ := s2.Measure(off2)
	ton2, _ := s2.Measure(on2)
	if ton2 < toff2 {
		t.Fatalf("constant memory should not help j3d7pt: on=%.3f off=%.3f", ton2, toff2)
	}
}

func TestMetricsReport(t *testing.T) {
	s := simFor(t, stencil.Helmholtz(), gpu.A100())
	set := s.Space().Default()
	set[space.UseShared] = space.On
	r, err := s.Run(set)
	if err != nil {
		t.Fatal(err)
	}
	names := MetricNames()
	if len(names) < 15 {
		t.Fatalf("only %d metrics reported", len(names))
	}
	for _, n := range names {
		v, ok := r.Metrics[n]
		if !ok {
			t.Errorf("metric %s missing from report", n)
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("metric %s is %v", n, v)
		}
	}
	// Percentage metrics stay in [0,100].
	for _, n := range []string{"sm__throughput_pct", "dram__throughput_pct", "lts__hit_rate_pct",
		"l1tex__hit_rate_pct", "l1tex__coalescing_pct", "smsp__branch_efficiency",
		"smsp__barrier_stall_pct", "flop__dp_efficiency_pct"} {
		if v := r.Metrics[n]; v < 0 || v > 100 {
			t.Errorf("metric %s = %v outside [0,100]", n, v)
		}
	}
	if r.Metrics["launch__registers_per_thread"] != float64(r.Kernel.RegsPerThread) {
		t.Error("register metric disagrees with kernel")
	}
	if r.Metrics["gpu__time_duration"] <= 0 {
		t.Error("non-positive duration")
	}
}

func TestMetricsCorrelateWithTime(t *testing.T) {
	// Across random settings, duration must equal TimeMS (unit conversion)
	// and occupancy must vary — otherwise the PMNF stage has nothing to model.
	s := simFor(t, stencil.Cheby(), gpu.A100())
	rng := rand.New(rand.NewSource(9))
	occs := map[float64]bool{}
	n := 0
	for n < 40 {
		set := s.Space().Random(rng)
		r, err := s.Run(set)
		if err != nil {
			continue
		}
		n++
		if math.Abs(r.Metrics["gpu__time_duration"]/1e6-r.TimeMS) > 1e-9 {
			t.Fatal("duration metric disagrees with TimeMS")
		}
		occs[r.Metrics["sm__occupancy_achieved"]] = true
	}
	if len(occs) < 5 {
		t.Fatalf("occupancy shows only %d distinct values over 40 settings", len(occs))
	}
}

func BenchmarkSimulatorRun(b *testing.B) {
	sp, err := space.New(stencil.RHS4Center())
	if err != nil {
		b.Fatal(err)
	}
	s := New(sp, gpu.A100())
	rng := rand.New(rand.NewSource(1))
	settings := make([]space.Setting, 128)
	for i := range settings {
		settings[i] = sp.Random(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Run(settings[i%len(settings)])
	}
}
