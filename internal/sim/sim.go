// Package sim is the GPU execution-time simulator standing in for the real
// A100/V100 testbed (see DESIGN.md §1). Given a built kernel it produces a
// deterministic kernel time and a Nsight-Compute-like metric report.
//
// The model composes occupancy, a compute-throughput term (FP64 pipes, ILP,
// constant-memory broadcast), a memory term (coalescing, L1/L2 reuse, DRAM
// bandwidth, a Little's-law latency cap), streaming synchronization cost,
// wave quantization, and hash-seeded per-setting noise. The absolute numbers
// are not the reproduction target; the parameter→performance couplings are,
// and the motivation experiments (Figs. 2–4) verify their shape.
package sim

import (
	"errors"
	"math"

	"repro/internal/gpu"
	"repro/internal/kernel"
	"repro/internal/space"
	"repro/internal/stats"
)

// ErrBudget is returned by budget-enforcing Objective wrappers (the harness
// meter) once their evaluation budget is exhausted. It lives here so tuners
// and caches can distinguish "setting invalid" (cacheable) from "out of
// budget" (transient) without import cycles.
var ErrBudget = errors.New("sim: evaluation budget exhausted")

// ArchProvider is the optional interface an Objective (or a wrapper such as
// the evaluation engine) implements when a modelled GPU backs it. The
// codegen stage reaches the target architecture through it, so wrapping an
// objective never severs code generation.
type ArchProvider interface {
	Architecture() *gpu.Arch
}

// ArchOf returns the architecture behind obj, unwrapping through any
// ArchProvider, or nil when none is exposed.
func ArchOf(obj Objective) *gpu.Arch {
	if ap, ok := obj.(ArchProvider); ok {
		return ap.Architecture()
	}
	return nil
}

// Objective is the measurement interface every auto-tuner in this repository
// searches against: a parameter space plus a black-box measure function.
// The simulator implements it; tests substitute synthetic objectives.
type Objective interface {
	// Space returns the parameter space being tuned.
	Space() *space.Space
	// Measure returns the kernel execution time in milliseconds for the
	// setting, or an error when the setting is invalid (explicit or
	// implicit constraints).
	Measure(s space.Setting) (float64, error)
}

// Result is one simulated kernel execution.
type Result struct {
	TimeMS  float64
	Kernel  *kernel.Kernel
	Metrics map[string]float64
}

// Simulator measures stencil kernel settings on a modelled GPU.
type Simulator struct {
	Arch *gpu.Arch
	Sp   *space.Space

	// NoiseAmp is the relative amplitude of per-setting measurement noise
	// (default 2% when constructed via New).
	NoiseAmp float64
	// Seed perturbs the noise hash so "re-collecting the dataset on new
	// hardware" (paper Sec. V-D) also reshuffles measurement noise.
	Seed uint64
}

// New returns a simulator for the given space and architecture.
func New(sp *space.Space, arch *gpu.Arch) *Simulator {
	return &Simulator{Arch: arch, Sp: sp, NoiseAmp: 0.02, Seed: 0x5eed}
}

// Space implements Objective.
func (sim *Simulator) Space() *space.Space { return sim.Sp }

// Architecture exposes the modelled GPU. Wrappers (e.g. the harness meter)
// forward it so code generation can reach the target arch through any
// objective that ultimately measures on a simulator.
func (sim *Simulator) Architecture() *gpu.Arch { return sim.Arch }

// Measure implements Objective.
func (sim *Simulator) Measure(s space.Setting) (float64, error) {
	r, err := sim.Run(s)
	if err != nil {
		return 0, err
	}
	return r.TimeMS, nil
}

// Run builds the kernel for the setting and simulates one launch.
func (sim *Simulator) Run(s space.Setting) (*Result, error) {
	k, err := kernel.Build(sim.Sp, s, sim.Arch)
	if err != nil {
		return nil, err
	}
	return sim.RunKernel(k), nil
}

// RunKernel simulates a launch of an already-built kernel.
func (sim *Simulator) RunKernel(k *kernel.Kernel) *Result {
	a := sim.Arch
	st := k.Stencil

	// ---- Parallel shape -------------------------------------------------
	occ := k.Occ
	waves := float64(k.GridBlocks) / float64(occ.BlocksPerSM*a.SMs)
	tail := math.Ceil(waves) / waves // underfill and wave quantization

	// Padded work: guard-failing threads still occupy issue slots.
	points := float64(st.Points()) / k.GuardFrac

	// ---- Compute term ---------------------------------------------------
	// FP64 instruction service rate per nanosecond across the GPU.
	instRate := float64(a.SMs) * float64(a.FP64PerSM) * a.ClockGHz
	occCompute := math.Min(1, float64(occ.WarpsPerSM)/8.0) // latency hiding for the FP64 pipe
	ilp := 1 + 0.12*math.Log2(math.Min(float64(k.AdjX*k.AdjY*k.AdjZ), 16))
	if ilp > 1.5 {
		ilp = 1.5
	}
	constFactor := 1.0
	switch {
	case k.UsesConstant && st.Coeffs >= 16:
		constFactor = 1.04 // broadcast hits replace repeated global coefficient loads
	case k.UsesConstant && st.Coeffs < 8:
		constFactor = 0.99 // setup cost with nothing to amortize it
	case !k.UsesConstant && st.Coeffs >= 24:
		constFactor = 0.97 // large coefficient sets pressure the immediate path
	}
	computeNS := points * k.InstrPerPoint / (instRate * occCompute * ilp)

	// ---- Memory term ----------------------------------------------------
	loadBytes := points * k.LoadsPerPoint * 8
	storeBytes := float64(st.Points()) * float64(st.Outputs) * 8
	coalEff := coalescingEfficiency(k)

	compulsory := float64(st.Points()) * float64(st.Inputs+st.Outputs) * 8
	extra := loadBytes + storeBytes - compulsory
	if extra < 0 {
		extra = 0
	}
	l2Hit := sim.l2HitRate(k)
	dramBytes := compulsory + extra*(1-l2Hit)

	// Little's law: limited MLP caps achievable DRAM bandwidth when few
	// warps are resident.
	mlp := 2 + 0.5*math.Log2(math.Max(1, math.Min(float64(k.AdjX*k.AdjY*k.AdjZ), 16)))
	inFlight := float64(occ.WarpsPerSM) * float64(a.SMs) * 128 * mlp // bytes
	latBW := inFlight / a.DRAMLatencyNS                              // bytes/ns == GB/s
	dramBW := math.Min(a.DRAMBandwidthGB*coalEff, latBW)
	dramNS := dramBytes / dramBW
	l2NS := (loadBytes + storeBytes) / (a.L2BandwidthGB * coalEff)
	memNS := math.Max(dramNS, l2NS)

	// Shared-memory service time can bound smem-staged kernels.
	var smemNS float64
	if k.UsesShared {
		smemBytes := points * k.LoadsPerPoint * 8 * 2 // stage in + read out
		smemNS = smemBytes / (a.SharedBWPerSMGB * float64(a.SMs))
	}

	// ---- Synchronization term -------------------------------------------
	var syncNS float64
	if k.Streaming {
		per := float64(k.IterationsPerBlock) * a.BarrierCostNS
		if k.Prefetch {
			per *= 0.4 // overlap next-plane loads with current FMAs
		}
		syncNS = per * math.Ceil(waves)
	} else if k.UsesShared {
		syncNS = a.BarrierCostNS * math.Ceil(waves)
	}

	// Coefficient handling scales whichever path dominates: constant-cache
	// broadcasts relieve both the instruction stream and the load path.
	busyNS := math.Max(computeNS, math.Max(memNS, smemNS)) * tail / constFactor
	totalNS := a.LaunchOverheadUS*1000 + busyNS + syncNS

	// ---- Deterministic measurement noise --------------------------------
	h := stats.Mix64(k.Setting.Hash() ^ sim.Seed)
	u := float64(h>>11) / float64(1<<53)
	totalNS *= 1 + sim.NoiseAmp*(2*u-1)

	timeMS := totalNS / 1e6
	res := &Result{TimeMS: timeMS, Kernel: k}
	res.Metrics = sim.metrics(k, timeMS, metricsInput{
		computeNS: computeNS, memNS: memNS, smemNS: smemNS, syncNS: syncNS,
		totalNS: totalNS, dramBytes: dramBytes, l2Hit: l2Hit,
		coalEff: coalEff, waves: waves, ilp: ilp,
		loadBytes: loadBytes, storeBytes: storeBytes, points: points,
	})
	return res
}

// coalescingEfficiency models the fraction of fetched DRAM sectors that
// carry useful data for one warp-wide access: full-width unit-stride rows
// are perfect; narrow TBx wastes 128B L1 lines across rows, and block
// merging in the innermost dimension strides the warp (paper Sec. II-B2).
func coalescingEfficiency(k *kernel.Kernel) float64 {
	tbx := k.Setting[space.TBX]
	bmx := k.Setting[space.BMX]

	threadsPerRow := tbx
	if threadsPerRow > 32 {
		threadsPerRow = 32
	}
	rows := (32 + threadsPerRow - 1) / threadsPerRow
	const line = 128.0
	useful := 32 * 8.0 // bytes a warp actually consumes per access
	linesBase := math.Ceil(float64(threadsPerRow) * 8 / line)
	rowSpan := float64(threadsPerRow) * float64(bmx) * 8
	linesRow := math.Ceil(rowSpan / line)
	// Half of the over-fetch from block merging is recovered from L1 by
	// the later accesses of the same warp.
	touched := float64(rows) * (linesBase + 0.5*(linesRow-linesBase)) * line
	eff := useful / touched
	if eff > 1 {
		eff = 1
	}
	// Floor: L2 sector buffering recovers part of even fully-strided
	// access patterns, so efficiency never collapses below 20%.
	if eff < 0.2 {
		eff = 0.2
	}
	return eff
}

// l2HitRate estimates how much of the *extra* (non-compulsory) traffic —
// halo re-reads between neighbouring blocks — is served by the L2, which
// depends on whether a wave's combined footprint fits.
func (sim *Simulator) l2HitRate(k *kernel.Kernel) float64 {
	a := sim.Arch
	blockPoints := float64(k.ThreadsPerBlock * k.PointsPerThread)
	blockBytes := blockPoints * float64(k.Stencil.Inputs+k.Stencil.Outputs) * 8
	waveBytes := blockBytes * float64(k.Occ.BlocksPerSM*a.SMs)
	ratio := waveBytes / float64(a.L2Bytes)
	// 0.9 when the wave fits in half the L2, decaying to 0.15 at 8x.
	hit := 0.9 - 0.1*math.Log2(math.Max(ratio*2, 1))
	return clamp(hit, 0.15, 0.9)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
