package sim

import (
	"math"
	"sort"

	"repro/internal/kernel"
)

// metricsInput carries the model's internal state into the metric report.
type metricsInput struct {
	computeNS, memNS, smemNS, syncNS, totalNS float64
	dramBytes, loadBytes, storeBytes          float64
	l2Hit, coalEff, waves, ilp                float64
	points                                    float64
}

// MetricNames returns the Nsight-Compute-style metric identifiers the
// simulator reports, in stable sorted order. The csTuner pipeline's metric
// combination stage (Algorithm 2) consumes these exactly as it would consume
// `ncu --csv` output.
func MetricNames() []string {
	names := make([]string, 0, len(metricDoc))
	for n := range metricDoc {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// metricDoc maps metric name to a short description (kept for docs/tools).
var metricDoc = map[string]string{
	"gpu__time_duration":           "kernel time (ns)",
	"sm__throughput_pct":           "SM busy fraction, % of peak",
	"sm__occupancy_achieved":       "achieved occupancy [0,1]",
	"sm__warps_active":             "resident warps per SM",
	"sm__inst_issued_ipc":          "instructions issued per cycle per SM",
	"sm__pipe_fp64_active_pct":     "FP64 pipe utilization, %",
	"dram__throughput_pct":         "DRAM bandwidth utilization, %",
	"dram__bytes":                  "total DRAM traffic (bytes)",
	"lts__hit_rate_pct":            "L2 hit rate for reusable traffic, %",
	"l1tex__hit_rate_pct":          "L1/tex hit rate implied by register/smem reuse, %",
	"l1tex__coalescing_pct":        "global load efficiency (useful/fetched), %",
	"smsp__branch_efficiency":      "non-divergent thread fraction, %",
	"smsp__barrier_stall_pct":      "issue stalls at barriers, %",
	"launch__registers_per_thread": "registers per thread",
	"launch__shared_mem_per_block": "static+dynamic shared memory per block (bytes)",
	"launch__waves_per_sm":         "waves of blocks per SM",
	"launch__grid_blocks":          "blocks launched",
	"shared__utilization_pct":      "shared-memory bandwidth utilization, %",
	"flop__dp_efficiency_pct":      "achieved FP64 FLOPs vs peak, %",
	"memory__ilp":                  "memory-level parallelism factor",
}

// metrics builds the per-run metric report.
func (sim *Simulator) metrics(k *kernel.Kernel, timeMS float64, in metricsInput) map[string]float64 {
	a := sim.Arch
	st := k.Stencil

	busy := math.Max(in.computeNS, math.Max(in.memNS, in.smemNS))
	smPct := 100 * in.computeNS / in.totalNS
	dramPct := 100 * (in.dramBytes / in.totalNS) / a.DRAMBandwidthGB

	// L1 hit rate: the naive kernel would issue UniqueOffsets loads per
	// point; register/shared reuse removes (1 - Loads/naive) of them, which
	// Nsight observes as L1/tex hits.
	naive := float64(st.UniqueOffsets())
	l1 := 100 * (1 - k.LoadsPerPoint/naive)
	if l1 < 0 {
		l1 = 0
	}

	totalFLOPs := float64(st.Points()) * float64(st.FLOPs)
	flopEff := 100 * (totalFLOPs / in.totalNS) / a.PeakFP64GFLOPS()

	ipc := (in.points * k.InstrPerPoint) / (in.totalNS * a.ClockGHz * float64(a.SMs))

	sharedPct := 0.0
	if in.smemNS > 0 {
		sharedPct = 100 * in.smemNS / in.totalNS
	}

	return map[string]float64{
		"gpu__time_duration":           in.totalNS,
		"sm__throughput_pct":           clamp(smPct, 0, 100),
		"sm__occupancy_achieved":       k.Occ.Achieved,
		"sm__warps_active":             float64(k.Occ.WarpsPerSM),
		"sm__inst_issued_ipc":          ipc,
		"sm__pipe_fp64_active_pct":     clamp(100*in.computeNS/busy, 0, 100),
		"dram__throughput_pct":         clamp(dramPct, 0, 100),
		"dram__bytes":                  in.dramBytes,
		"lts__hit_rate_pct":            100 * in.l2Hit,
		"l1tex__hit_rate_pct":          clamp(l1, 0, 100),
		"l1tex__coalescing_pct":        100 * in.coalEff,
		"smsp__branch_efficiency":      100 * k.GuardFrac,
		"smsp__barrier_stall_pct":      clamp(100*in.syncNS/in.totalNS, 0, 100),
		"launch__registers_per_thread": float64(k.RegsPerThread),
		"launch__shared_mem_per_block": float64(k.SharedPerBlock),
		"launch__waves_per_sm":         in.waves,
		"launch__grid_blocks":          float64(k.GridBlocks),
		"shared__utilization_pct":      clamp(sharedPct, 0, 100),
		"flop__dp_efficiency_pct":      clamp(flopEff, 0, 100),
		"memory__ilp":                  in.ilp,
	}
}
