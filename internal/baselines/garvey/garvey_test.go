package garvey

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func fixture(t testing.TB) (*sim.Simulator, *dataset.Dataset) {
	t.Helper()
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(31)), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s, ds
}

func TestDimensionGroupsCoverSearchedParams(t *testing.T) {
	groups := dimensionGroups()
	if len(groups) != 4 {
		t.Fatalf("expected 4 expert groups, got %d", len(groups))
	}
	seen := map[int]bool{}
	for _, g := range groups {
		for _, p := range g {
			if seen[p] {
				t.Fatalf("parameter %d in two groups", p)
			}
			seen[p] = true
		}
	}
	// Memory flags are intentionally absent (fixed by the forest).
	if seen[space.UseShared] || seen[space.UseConstant] {
		t.Fatal("memory flags must not be re-searched")
	}
	// Every x/y/z geometry parameter is covered.
	for _, p := range []int{space.TBX, space.UFY, space.CMZ, space.BMX, space.SD, space.SB} {
		if !seen[p] {
			t.Fatalf("parameter %d missing from groups", p)
		}
	}
}

func TestPredictMemoryType(t *testing.T) {
	_, ds := fixture(t)
	g := New()
	sh, co, err := g.predictMemoryType(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{sh, co} {
		if v != space.Off && v != space.On {
			t.Fatalf("prediction outside {Off,On}: %d/%d", sh, co)
		}
	}
	// Deterministic: the forest is seeded.
	sh2, co2, err := g.predictMemoryType(ds)
	if err != nil || sh != sh2 || co != co2 {
		t.Fatal("memory prediction not deterministic")
	}
}

func TestEnumerateSize(t *testing.T) {
	s, _ := fixture(t)
	sp := s.Space()
	combos := enumerate(sp, []int{space.UseStreaming, space.SD})
	if len(combos) != 2*3 {
		t.Fatalf("enumerate = %d combos, want 6", len(combos))
	}
	for _, c := range combos {
		if len(c) != 2 {
			t.Fatalf("combo width %d", len(c))
		}
	}
}

func TestSampleRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	combos := make([][]int, 100)
	for i := range combos {
		combos[i] = []int{i}
	}
	out := sample(combos, 0.1, rng)
	if len(out) != 10 {
		t.Fatalf("sampled %d of 100 at 10%%", len(out))
	}
	// No duplicates.
	seen := map[int]bool{}
	for _, c := range out {
		if seen[c[0]] {
			t.Fatal("duplicate sample")
		}
		seen[c[0]] = true
	}
	if got := sample(combos, 1.0, rng); len(got) != 100 {
		t.Fatal("ratio 1 should keep everything")
	}
	if got := sample(combos, 0.0001, rng); len(got) != 1 {
		t.Fatal("tiny ratio keeps at least one")
	}
}

func TestTuneImprovesOnDefault(t *testing.T) {
	s, ds := fixture(t)
	g := New()
	best, ms, err := g.Tune(context.Background(), s, ds, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	def, err := s.Measure(s.Space().Default())
	if err != nil {
		t.Fatal(err)
	}
	if ms >= def {
		t.Fatalf("garvey best %.3f no better than default %.3f", ms, def)
	}
	if err := s.Space().Validate(best); err != nil {
		t.Fatal(err)
	}
}
