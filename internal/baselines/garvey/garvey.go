// Package garvey re-implements the Garvey & Abdelrahman comparator (ICPP'15)
// as the paper describes and configures it (Sec. V-A2): a random forest
// predicts the optimal memory-type configuration from measured experience,
// the remaining parameters are grouped *by dimension* using expert
// knowledge, and each group is searched exhaustively over a random sample of
// its settings (the paper sets the sampling ratio to 10%).
//
// Its two structural weaknesses — expert grouping that ignores measured
// correlation, and unguided random sampling that can drop the optimum — are
// what csTuner's evaluation contrasts against.
package garvey

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/forest"
	"repro/internal/sim"
	"repro/internal/space"
)

// Tuner is the Garvey comparator.
type Tuner struct {
	// SamplingRatio is the fraction of each group's cartesian product that
	// is evaluated (paper: 10%).
	SamplingRatio float64
	// Forest options for the memory-type predictor.
	Forest forest.Options
}

// New returns the paper's configuration.
func New() *Tuner {
	return &Tuner{SamplingRatio: 0.10, Forest: forest.DefaultOptions()}
}

// Name implements baselines.Tuner.
func (t *Tuner) Name() string { return "garvey" }

// dimension groups: expert "grouping by dimension" (paper Sec. V-A2).
func dimensionGroups() [][]int {
	return [][]int{
		{space.TBX, space.UFX, space.CMX, space.BMX},
		{space.TBY, space.UFY, space.CMY, space.BMY},
		{space.TBZ, space.UFZ, space.CMZ, space.BMZ},
		{space.UseStreaming, space.SD, space.SB, space.UseRetiming, space.UsePrefetching},
	}
}

// Tune implements baselines.Tuner.
func (t *Tuner) Tune(ctx context.Context, obj sim.Objective, ds *dataset.Dataset, seed int64, stop func() bool) (space.Setting, float64, error) {
	if ds == nil || len(ds.Samples) == 0 {
		return nil, 0, errors.New("garvey: requires an offline experience dataset")
	}
	if stop == nil {
		stop = func() bool { return false }
	}
	userStop := stop
	stop = func() bool { return userStop() || ctx.Err() != nil }
	eng := engine.From(obj) // memoized: re-probing a known setting is free
	sp := eng.Space()
	rng := rand.New(rand.NewSource(seed))
	var track baselines.Tracker

	measure := func(s space.Setting) float64 {
		if stop() {
			return math.Inf(1)
		}
		ms, err := eng.MeasureCtx(ctx, s)
		if err != nil {
			return math.Inf(1)
		}
		track.Observe(s, ms)
		return ms
	}

	// ---- Memory-type prediction with a random forest --------------------
	useShared, useConstant, err := t.predictMemoryType(ds)
	if err != nil {
		return nil, 0, err
	}
	current := sp.Default()
	current[space.UseShared] = useShared
	current[space.UseConstant] = useConstant
	measure(current)

	// ---- Per-dimension exhaustive search with random sampling -----------
	for _, group := range dimensionGroups() {
		if stop() {
			break
		}
		combos := enumerate(sp, group)
		sampled := sample(combos, t.SamplingRatio, rng)
		bestMS := math.Inf(1)
		var bestCombo []int
		for _, combo := range sampled {
			cand := current.Clone()
			for i, p := range group {
				cand[p] = combo[i]
			}
			sp.Repair(cand, rng)
			if sp.Validate(cand) != nil {
				continue
			}
			if ms := measure(cand); ms < bestMS {
				bestMS = ms
				bestCombo = combo
			}
		}
		if bestCombo != nil {
			for i, p := range group {
				current[p] = bestCombo[i]
			}
			sp.Repair(current, rng)
		}
	}

	if !track.Found() {
		return nil, 0, errors.New("garvey: no valid setting found")
	}
	return track.BestSet, track.BestMS, nil
}

// predictMemoryType trains the forest on the experience dataset (features:
// the full setting; target: time) and returns the memory-flag pair with the
// lowest predicted time averaged over the dataset's settings.
func (t *Tuner) predictMemoryType(ds *dataset.Dataset) (useShared, useConstant int, err error) {
	x := make([][]float64, len(ds.Samples))
	y := make([]float64, len(ds.Samples))
	for i, s := range ds.Samples {
		row := make([]float64, len(s.Setting))
		for p, v := range s.Setting {
			row[p] = float64(v)
		}
		x[i] = row
		y[i] = s.TimeMS
	}
	f, err := forest.Train(x, y, t.Forest)
	if err != nil {
		return 0, 0, err
	}
	bestShared, bestConstant := space.Off, space.Off
	bestScore := math.Inf(1)
	for _, sh := range []int{space.Off, space.On} {
		for _, co := range []int{space.Off, space.On} {
			score := 0.0
			for i := range x {
				row := append([]float64(nil), x[i]...)
				row[space.UseShared] = float64(sh)
				row[space.UseConstant] = float64(co)
				p, err := f.Predict(row)
				if err != nil {
					return 0, 0, err
				}
				score += p
			}
			if score < bestScore {
				bestScore, bestShared, bestConstant = score, sh, co
			}
		}
	}
	return bestShared, bestConstant, nil
}

// enumerate lists the cartesian product of the group's raw value ranges.
func enumerate(sp *space.Space, group []int) [][]int {
	combos := [][]int{{}}
	for _, p := range group {
		vals := sp.Params[p].Values
		next := make([][]int, 0, len(combos)*len(vals))
		for _, c := range combos {
			for _, v := range vals {
				nc := append(append([]int{}, c...), v)
				next = append(next, nc)
			}
		}
		combos = next
	}
	return combos
}

// sample keeps a uniformly random ratio fraction (at least one combo).
func sample(combos [][]int, ratio float64, rng *rand.Rand) [][]int {
	if ratio >= 1 {
		return combos
	}
	n := int(math.Ceil(ratio * float64(len(combos))))
	if n < 1 {
		n = 1
	}
	idx := rng.Perm(len(combos))[:n]
	out := make([][]int, n)
	for i, j := range idx {
		out[i] = combos[j]
	}
	return out
}
