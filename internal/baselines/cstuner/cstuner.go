// Package cstuner adapts the csTuner pipeline (internal/core) to the common
// baselines.Tuner interface so the experiment harness can race all four
// auto-tuning methods through identical protocols.
package cstuner

import (
	"context"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sim"
	"repro/internal/space"
)

// Tuner wraps core.Tune.
type Tuner struct {
	Cfg core.Config
	// LastReport keeps the most recent pipeline report for overhead and
	// diagnostics inspection (Fig. 12).
	LastReport *core.Report
}

// New returns csTuner with the paper's default configuration.
func New() *Tuner { return &Tuner{Cfg: core.DefaultConfig()} }

// Name implements baselines.Tuner.
func (t *Tuner) Name() string { return "cstuner" }

// Tune implements baselines.Tuner.
func (t *Tuner) Tune(ctx context.Context, obj sim.Objective, ds *dataset.Dataset, seed int64, stop func() bool) (space.Setting, float64, error) {
	cfg := t.Cfg
	cfg.Seed = seed
	// core.Tune routes every measurement through the evaluation engine
	// (internal/engine), which memoizes — no extra cache layer needed here.
	rep, err := core.TuneCtx(ctx, obj, ds, cfg, stop)
	if err != nil {
		// A cancelled run with a usable partial best behaves like a
		// budget-stop: the tuner reports what it found before the cut.
		if ctx.Err() != nil && rep != nil && rep.Best != nil {
			t.LastReport = rep
			return rep.Best, rep.BestMS, nil
		}
		return nil, 0, err
	}
	t.LastReport = rep
	return rep.Best, rep.BestMS, nil
}

var _ baselines.Tuner = (*Tuner)(nil)
