package cstuner

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func fixture(t testing.TB) (*sim.Simulator, *dataset.Dataset) {
	t.Helper()
	sp, err := space.New(stencil.J3D27PT())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(51)), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s, ds
}

func TestAdapterName(t *testing.T) {
	if New().Name() != "cstuner" {
		t.Fatal("wrong name")
	}
}

func TestAdapterSeedsConfig(t *testing.T) {
	s, ds := fixture(t)
	a := New()
	a.Cfg.Sampling.PoolSize = 256
	a.Cfg.GA.MaxGenerations = 6
	a.Cfg.EmitKernels = false
	b1, ms1, err := a.Tune(context.Background(), s, ds, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, ms2, err := a.Tune(context.Background(), s, ds, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !b1.Equal(b2) || ms1 != ms2 {
		t.Fatal("adapter not deterministic for a fixed seed")
	}
	if a.LastReport == nil || a.LastReport.BestMS != ms2 {
		t.Fatal("LastReport not retained")
	}
	// The adapter must pass the seed through: different seeds explore
	// differently (same result value is possible, identical eval counts
	// across many seeds are not).
	evals := map[int]bool{}
	for seed := int64(0); seed < 4; seed++ {
		if _, _, err := a.Tune(context.Background(), s, ds, seed, nil); err != nil {
			t.Fatal(err)
		}
		evals[a.LastReport.Evaluations] = true
	}
	if len(evals) == 1 {
		t.Log("all seeds evaluated identically (possible but suspicious)")
	}
}

func TestAdapterEmitsThroughSimulator(t *testing.T) {
	s, ds := fixture(t)
	a := New()
	a.Cfg.Sampling.PoolSize = 256
	a.Cfg.GA.MaxGenerations = 4
	a.Cfg.EmitKernels = true
	// Resource-prefilter the candidate pool so every sampled setting is
	// buildable; this both exercises the sampling hook and guarantees the
	// codegen stage emits kernels.
	sp := s.Space()
	arch := s.Arch
	a.Cfg.Sampling.Prefilter = func(set space.Setting) bool {
		_, err := kernel.Build(sp, set, arch)
		return err == nil
	}
	if _, _, err := a.Tune(context.Background(), s, ds, 1, nil); err != nil {
		t.Fatal(err)
	}
	if a.LastReport.GeneratedCUDA == 0 || a.LastReport.GeneratedCUDA != a.LastReport.SampledSize {
		t.Fatalf("codegen emitted %d of %d sampled (prefiltered) settings",
			a.LastReport.GeneratedCUDA, a.LastReport.SampledSize)
	}
}
