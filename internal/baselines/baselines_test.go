package baselines_test

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/baselines"
	"repro/internal/baselines/artemis"
	"repro/internal/baselines/cstuner"
	"repro/internal/baselines/garvey"
	"repro/internal/baselines/opentuner"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func fixture(t testing.TB) (*sim.Simulator, *dataset.Dataset) {
	t.Helper()
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(101)), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s, ds
}

func allTuners() []baselines.Tuner {
	cs := cstuner.New()
	cs.Cfg.DatasetSize = 64
	cs.Cfg.Sampling.PoolSize = 512
	cs.Cfg.GA.MaxGenerations = 10
	cs.Cfg.EmitKernels = false
	ot := opentuner.New()
	ot.MaxRounds = 12
	return []baselines.Tuner{cs, ot, garvey.New(), artemis.New()}
}

// TestAllTunersBeatRandom: every method must find something clearly better
// than the median random setting — the minimum bar for calling it a tuner.
func TestAllTunersBeatRandom(t *testing.T) {
	s, ds := fixture(t)
	// Median of the dataset as the random reference.
	idx := ds.SortedByTime()
	median := ds.Samples[idx[len(idx)/2]].TimeMS

	for _, tn := range allTuners() {
		best, ms, err := tn.Tune(context.Background(), s, ds, 7, nil)
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		if best == nil || ms <= 0 {
			t.Fatalf("%s: degenerate result", tn.Name())
		}
		if err := s.Space().Validate(best); err != nil {
			t.Fatalf("%s: invalid best setting: %v", tn.Name(), err)
		}
		got, err := s.Measure(best)
		if err != nil || got != ms {
			t.Fatalf("%s: reported %.4f but re-measured %.4f (%v)", tn.Name(), ms, got, err)
		}
		if ms > median*0.8 {
			t.Fatalf("%s: best %.3f ms not clearly better than random median %.3f ms",
				tn.Name(), ms, median)
		}
	}
}

func TestTunersHonourStop(t *testing.T) {
	s, ds := fixture(t)
	for _, tn := range allTuners() {
		var polls int64
		stop := func() bool { return atomic.AddInt64(&polls, 1) > 25 }
		_, _, err := tn.Tune(context.Background(), s, ds, 3, stop)
		// Stopping early may leave no valid measurement for some methods;
		// both a best-so-far result and a clean error are acceptable, but
		// the search must not run unbounded.
		if polls > 2000 {
			t.Fatalf("%s: %d stop polls — budget ignored (err=%v)", tn.Name(), polls, err)
		}
	}
}

func TestTunersDeterministic(t *testing.T) {
	s, ds := fixture(t)
	for _, tn := range allTuners() {
		b1, ms1, err1 := tn.Tune(context.Background(), s, ds, 42, nil)
		b2, ms2, err2 := tn.Tune(context.Background(), s, ds, 42, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: nondeterministic error", tn.Name())
		}
		if err1 != nil {
			continue
		}
		if !b1.Equal(b2) || ms1 != ms2 {
			t.Fatalf("%s: same seed diverged (%.4f vs %.4f)", tn.Name(), ms1, ms2)
		}
	}
}

func TestGarveyRequiresDataset(t *testing.T) {
	s, _ := fixture(t)
	if _, _, err := garvey.New().Tune(context.Background(), s, nil, 1, nil); err == nil {
		t.Fatal("garvey without dataset should error")
	}
}

func TestOpenTunerEnsemble(t *testing.T) {
	s, ds := fixture(t)
	ot := opentuner.NewEnsemble()
	ot.MaxRounds = 15
	best, ms, err := ot.Tune(context.Background(), s, ds, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || ms <= 0 {
		t.Fatal("ensemble found nothing")
	}
}

func TestOpenTunerUnknownTechnique(t *testing.T) {
	s, _ := fixture(t)
	ot := opentuner.New()
	ot.Techniques = []string{"simulated-annealing"}
	if _, _, err := ot.Tune(context.Background(), s, nil, 1, nil); err == nil {
		t.Fatal("unknown technique should error")
	}
}

func TestTrackerSemantics(t *testing.T) {
	var tr baselines.Tracker
	if tr.Found() {
		t.Fatal("fresh tracker should be empty")
	}
	sp, _ := space.New(stencil.J3D7PT())
	a := sp.Default()
	tr.Observe(a, 5)
	tr.Observe(a, 7) // worse: ignored
	if !tr.Found() || tr.BestMS != 5 || tr.Evals != 2 {
		t.Fatalf("tracker state: %+v", tr)
	}
	b := sp.Default()
	b[space.TBX] = 32
	tr.Observe(b, 3)
	if tr.BestMS != 3 || !tr.BestSet.Equal(b) {
		t.Fatal("tracker did not adopt improvement")
	}
	// BestSet must be a copy.
	b[space.TBX] = 1
	if tr.BestSet[space.TBX] == 1 {
		t.Fatal("tracker aliases the observed setting")
	}
}

func TestCsTunerAdapterKeepsReport(t *testing.T) {
	s, ds := fixture(t)
	cs := cstuner.New()
	cs.Cfg.Sampling.PoolSize = 256
	cs.Cfg.GA.MaxGenerations = 6
	cs.Cfg.EmitKernels = false
	if _, _, err := cs.Tune(context.Background(), s, ds, 1, nil); err != nil {
		t.Fatal(err)
	}
	if cs.LastReport == nil || len(cs.LastReport.Groups) == 0 {
		t.Fatal("adapter did not retain the pipeline report")
	}
}
