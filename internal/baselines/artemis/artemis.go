// Package artemis re-implements the Artemis comparator (Rawat et al.,
// IPDPS'19, "On optimizing complex stencils on GPUs") as the paper uses it:
// hierarchical auto-tuning driven by expert knowledge — the computation is
// tuned for the high-impact optimizations first (thread-block geometry and
// streaming), a few high-performance candidates are carried forward, and the
// remaining optimizations are refined on those candidates in impact order.
package artemis

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/space"
)

// Tuner is the Artemis comparator.
type Tuner struct {
	// TopK candidates survive each hierarchy level (Artemis keeps "a few
	// high-performance candidates").
	TopK int
}

// New returns the paper's configuration.
func New() *Tuner { return &Tuner{TopK: 5} }

// Name implements baselines.Tuner.
func (t *Tuner) Name() string { return "artemis" }

type candidate struct {
	set space.Setting
	ms  float64
}

// Tune implements baselines.Tuner.
func (t *Tuner) Tune(ctx context.Context, obj sim.Objective, _ *dataset.Dataset, seed int64, stop func() bool) (space.Setting, float64, error) {
	if stop == nil {
		stop = func() bool { return false }
	}
	userStop := stop
	stop = func() bool { return userStop() || ctx.Err() != nil }
	eng := engine.From(obj) // memoized: re-probing a known setting is free
	sp := eng.Space()
	rng := rand.New(rand.NewSource(seed))
	var track baselines.Tracker

	measure := func(s space.Setting) float64 {
		if stop() {
			return math.Inf(1)
		}
		ms, err := eng.MeasureCtx(ctx, s)
		if err != nil {
			return math.Inf(1)
		}
		track.Observe(s, ms)
		return ms
	}

	// ---- Level 1: high impact — thread-block geometry × streaming -------
	level1 := t.tbStreamingCandidates(sp)
	var pool []candidate
	for _, set := range level1 {
		if stop() {
			break
		}
		sp.Repair(set, rng)
		if sp.Validate(set) != nil {
			continue
		}
		if ms := measure(set); !math.IsInf(ms, 1) {
			pool = append(pool, candidate{set: set, ms: ms})
		}
	}
	pool = top(pool, t.TopK)
	if len(pool) == 0 {
		return nil, 0, errors.New("artemis: no valid level-1 candidate")
	}

	// ---- Level 2: medium impact — shared memory × unrolling -------------
	var pool2 []candidate
	for _, c := range pool {
		for _, sh := range []int{space.Off, space.On} {
			for _, uf := range [][3]int{{1, 1, 1}, {2, 1, 1}, {4, 1, 1}, {1, 2, 1}, {2, 2, 1}, {1, 1, 2}, {4, 2, 1}} {
				if stop() {
					break
				}
				cand := c.set.Clone()
				cand[space.UseShared] = sh
				cand[space.UFX], cand[space.UFY], cand[space.UFZ] = uf[0], uf[1], uf[2]
				sp.Repair(cand, rng)
				if sp.Validate(cand) != nil {
					continue
				}
				if ms := measure(cand); !math.IsInf(ms, 1) {
					pool2 = append(pool2, candidate{set: cand, ms: ms})
				}
			}
		}
	}
	if len(pool2) > 0 {
		pool = top(pool2, t.TopK)
	}

	// ---- Level 3: low impact — greedy refinement of the remainder -------
	lowImpact := []int{
		space.UseConstant, space.UseRetiming, space.UsePrefetching,
		space.BMX, space.BMY, space.BMZ, space.CMX, space.CMY, space.CMZ,
	}
	best := pool[0]
	for _, p := range lowImpact {
		if stop() {
			break
		}
		vals := sp.Params[p].Values
		limit := len(vals)
		if limit > 4 {
			limit = 4 // expert knowledge: large merge factors never win
		}
		for _, v := range vals[:limit] {
			cand := best.set.Clone()
			cand[p] = v
			sp.Repair(cand, rng)
			if sp.Validate(cand) != nil {
				continue
			}
			if ms := measure(cand); ms < best.ms {
				best = candidate{set: cand, ms: ms}
			}
		}
	}

	if !track.Found() {
		return nil, 0, errors.New("artemis: no valid setting found")
	}
	return track.BestSet, track.BestMS, nil
}

// tbStreamingCandidates enumerates the expert-curated high-impact level:
// warp-friendly thread-block shapes crossed with streaming configurations.
func (t *Tuner) tbStreamingCandidates(sp *space.Space) []space.Setting {
	tbShapes := [][3]int{
		{32, 2, 1}, {32, 4, 1}, {32, 8, 1}, {64, 2, 1}, {64, 4, 1},
		{64, 8, 1}, {128, 1, 1}, {128, 2, 1}, {128, 4, 1}, {256, 1, 1},
		{256, 2, 1}, {256, 4, 1}, {512, 1, 1}, {512, 2, 1}, {1024, 1, 1},
		{32, 4, 2}, {32, 8, 4}, {16, 16, 1}, {16, 8, 4}, {8, 8, 8},
	}
	streams := []struct {
		on, sd, sb int
	}{
		{space.Off, 1, 1},
		{space.On, 3, 1}, {space.On, 3, 8}, {space.On, 3, 32},
		{space.On, 2, 8},
	}
	var out []space.Setting
	for _, tb := range tbShapes {
		for _, st := range streams {
			s := sp.Default()
			s[space.TBX], s[space.TBY], s[space.TBZ] = tb[0], tb[1], tb[2]
			s[space.UseStreaming] = st.on
			if st.on == space.On {
				s[space.SD], s[space.SB] = st.sd, st.sb
				// Streamed kernels walk the streaming dimension serially.
				switch st.sd {
				case 1:
					s[space.TBX] = 1
				case 2:
					s[space.TBY] = 1
				case 3:
					s[space.TBZ] = 1
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// top returns the k fastest candidates.
func top(pool []candidate, k int) []candidate {
	sort.Slice(pool, func(a, b int) bool { return pool[a].ms < pool[b].ms })
	if len(pool) > k {
		pool = pool[:k]
	}
	return pool
}
