package artemis

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func objective(t testing.TB, st *stencil.Stencil) *sim.Simulator {
	t.Helper()
	sp, err := space.New(st)
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(sp, gpu.A100())
}

func TestLevel1CandidatesAreExpertCurated(t *testing.T) {
	obj := objective(t, stencil.J3D7PT())
	sp := obj.Space()
	a := New()
	cands := a.tbStreamingCandidates(sp)
	if len(cands) != 20*5 {
		t.Fatalf("level-1 candidates = %d, want 100", len(cands))
	}
	rng := rand.New(rand.NewSource(2))
	valid := 0
	for _, c := range cands {
		sp.Repair(c, rng)
		if sp.Validate(c) == nil {
			valid++
		}
	}
	// Expert-curated shapes are nearly all explicitly legal.
	if valid < len(cands)*3/4 {
		t.Fatalf("only %d/%d curated candidates valid", valid, len(cands))
	}
	// Streamed candidates collapse the walked TB dimension.
	for _, c := range cands {
		if c[space.UseStreaming] == space.On && c[space.SD] == 3 && c[space.TBZ] != 1 {
			t.Fatal("streamed candidate keeps TBz > 1")
		}
	}
}

func TestTopOrdering(t *testing.T) {
	pool := []candidate{{ms: 3}, {ms: 1}, {ms: 2}}
	got := top(pool, 2)
	if len(got) != 2 || got[0].ms != 1 || got[1].ms != 2 {
		t.Fatalf("top = %v", got)
	}
	if got := top(nil, 3); len(got) != 0 {
		t.Fatal("top of empty should be empty")
	}
}

func TestTuneHierarchyImproves(t *testing.T) {
	obj := objective(t, stencil.AddSGD6())
	a := New()
	best, ms, err := a.Tune(context.Background(), obj, nil, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	def, err := obj.Measure(obj.Space().Default())
	if err != nil {
		t.Fatal(err)
	}
	if ms >= def {
		t.Fatalf("artemis best %.3f no better than default %.3f", ms, def)
	}
	if err := obj.Space().Validate(best); err != nil {
		t.Fatal(err)
	}
}

func TestTuneStopsImmediately(t *testing.T) {
	obj := objective(t, stencil.J3D7PT())
	a := New()
	_, _, err := a.Tune(context.Background(), obj, nil, 1, func() bool { return true })
	// With stop always true, nothing gets measured: must error, not hang
	// or return garbage.
	if err == nil {
		t.Fatal("expected an error when stopped before any measurement")
	}
}
