// Package opentuner re-implements the OpenTuner comparator (Ansel et al.,
// PACT'14) at the fidelity the paper uses it: an ensemble of search
// techniques over the *raw* parameter space — a global genetic algorithm
// (the technique the paper pins for its comparison), differential evolution,
// and a greedy hill climber — coordinated by an AUC-bandit meta-technique
// that shifts the evaluation budget towards whichever technique has recently
// produced improvements.
//
// Being general-purpose, it has no notion of parameter grouping, GPU metrics
// or sampled sub-spaces: every technique manipulates full settings, which is
// exactly the disadvantage the paper's evaluation exposes.
package opentuner

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/space"
)

// Technique names.
const (
	TechGA   = "ga"
	TechDE   = "de"
	TechHill = "hill"
)

// Tuner is the OpenTuner comparator.
type Tuner struct {
	// PopSize is the population per technique (paper: matched to csTuner's
	// GA, 2×16=32 global individuals).
	PopSize int
	// MaxRounds caps the number of bandit rounds; the harness usually
	// stops the search by budget instead.
	MaxRounds int
	// Techniques to enable; empty means GA only (the paper's setup).
	Techniques []string
	// CrossoverRate / MutationRate mirror csTuner's GA options.
	CrossoverRate float64
	MutationRate  float64
}

// New returns the paper's configuration: global GA with options matching
// csTuner's genetic algorithm.
func New() *Tuner {
	return &Tuner{
		PopSize:       32,
		MaxRounds:     400,
		Techniques:    []string{TechGA},
		CrossoverRate: 0.8,
		MutationRate:  0.005,
	}
}

// NewEnsemble returns the full multi-technique configuration.
func NewEnsemble() *Tuner {
	t := New()
	t.Techniques = []string{TechGA, TechDE, TechHill}
	return t
}

// Name implements baselines.Tuner.
func (t *Tuner) Name() string { return "opentuner" }

// Tune implements baselines.Tuner.
func (t *Tuner) Tune(ctx context.Context, obj sim.Objective, _ *dataset.Dataset, seed int64, stop func() bool) (space.Setting, float64, error) {
	if stop == nil {
		stop = func() bool { return false }
	}
	userStop := stop
	stop = func() bool { return userStop() || ctx.Err() != nil }
	eng := engine.From(obj) // memoized: re-probing a known setting is free
	sp := eng.Space()
	rng := rand.New(rand.NewSource(seed))
	var track baselines.Tracker

	measure := func(s space.Setting) float64 {
		if stop() {
			return math.Inf(1)
		}
		ms, err := eng.MeasureCtx(ctx, s)
		if err != nil {
			return math.Inf(1)
		}
		track.Observe(s, ms)
		return ms
	}

	techs := t.Techniques
	if len(techs) == 0 {
		techs = []string{TechGA}
	}
	states := make([]searcher, 0, len(techs))
	for _, name := range techs {
		switch name {
		case TechGA:
			states = append(states, newGlobalGA(sp, rng, t))
		case TechDE:
			states = append(states, newDE(sp, rng, t))
		case TechHill:
			states = append(states, newHill(sp, rng))
		default:
			return nil, 0, errors.New("opentuner: unknown technique " + name)
		}
	}

	// AUC bandit: exponentially-decayed credit per technique; each round
	// picks the technique with the best upper-confidence score.
	credit := make([]float64, len(states))
	uses := make([]float64, len(states))
	for round := 0; round < t.MaxRounds && !stop(); round++ {
		pick := 0
		if len(states) > 1 {
			bestScore := math.Inf(-1)
			for i := range states {
				score := credit[i] + math.Sqrt(2*math.Log(float64(round+2))/(uses[i]+1))
				if score > bestScore {
					bestScore, pick = score, i
				}
			}
		}
		improved := states[pick].step(measure)
		uses[pick]++
		for i := range credit {
			credit[i] *= 0.9
		}
		if improved {
			credit[pick] += 1
		}
	}

	if !track.Found() {
		return nil, 0, errors.New("opentuner: no valid setting found")
	}
	return track.BestSet, track.BestMS, nil
}

// searcher is one technique; step runs one generation/round of evaluations
// and reports whether the technique improved its own best.
type searcher interface {
	step(measure func(space.Setting) float64) bool
}
