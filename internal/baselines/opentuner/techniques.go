package opentuner

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/space"
)

// ---- shared helpers --------------------------------------------------------

type scored struct {
	set space.Setting
	ms  float64
}

// mutate redraws each parameter with probability rate, then repairs.
func mutate(sp *space.Space, s space.Setting, rate float64, rng *rand.Rand) space.Setting {
	out := s.Clone()
	for i := range out {
		if rng.Float64() < rate {
			vals := sp.Params[i].Values
			out[i] = vals[rng.Intn(len(vals))]
		}
	}
	sp.Repair(out, rng)
	return out
}

// uniformCross mixes two settings parameter-wise, then repairs.
func uniformCross(sp *space.Space, a, b space.Setting, rng *rand.Rand) space.Setting {
	child := a.Clone()
	for i := range child {
		if rng.Intn(2) == 1 {
			child[i] = b[i]
		}
	}
	sp.Repair(child, rng)
	return child
}

// ---- global genetic algorithm ----------------------------------------------

type globalGA struct {
	sp   *space.Space
	rng  *rand.Rand
	pop  []scored
	t    *Tuner
	best float64
	init bool
}

func newGlobalGA(sp *space.Space, rng *rand.Rand, t *Tuner) *globalGA {
	g := &globalGA{sp: sp, rng: rng, t: t, best: math.Inf(1)}
	for i := 0; i < t.PopSize; i++ {
		g.pop = append(g.pop, scored{set: sp.Random(rng), ms: math.NaN()})
	}
	return g
}

func (g *globalGA) step(measure func(space.Setting) float64) bool {
	if !g.init {
		for i := range g.pop {
			g.pop[i].ms = measure(g.pop[i].set)
		}
		g.init = true
	}
	// Tournament selection + uniform crossover + per-parameter mutation.
	next := make([]scored, len(g.pop))
	for i := range next {
		if g.rng.Float64() > g.t.CrossoverRate {
			next[i] = g.pop[i]
			continue
		}
		p1 := g.tournament()
		p2 := g.tournament()
		child := uniformCross(g.sp, p1.set, p2.set, g.rng)
		child = mutate(g.sp, child, math.Max(g.t.MutationRate, 1.0/float64(space.NumParams)), g.rng)
		next[i] = scored{set: child, ms: measure(child)}
	}
	// Elitism.
	sort.Slice(g.pop, func(a, b int) bool { return less(g.pop[a].ms, g.pop[b].ms) })
	next[0] = g.pop[0]
	g.pop = next

	improved := false
	for i := range g.pop {
		if g.pop[i].ms < g.best {
			g.best = g.pop[i].ms
			improved = true
		}
	}
	return improved
}

func (g *globalGA) tournament() scored {
	a := g.pop[g.rng.Intn(len(g.pop))]
	b := g.pop[g.rng.Intn(len(g.pop))]
	if less(a.ms, b.ms) {
		return a
	}
	return b
}

func less(a, b float64) bool {
	if math.IsNaN(a) {
		return false
	}
	if math.IsNaN(b) {
		return true
	}
	return a < b
}

// ---- differential evolution --------------------------------------------------

type de struct {
	sp   *space.Space
	rng  *rand.Rand
	pop  []scored
	best float64
	init bool
}

func newDE(sp *space.Space, rng *rand.Rand, t *Tuner) *de {
	d := &de{sp: sp, rng: rng, best: math.Inf(1)}
	for i := 0; i < t.PopSize; i++ {
		d.pop = append(d.pop, scored{set: sp.Random(rng), ms: math.NaN()})
	}
	return d
}

func (d *de) step(measure func(space.Setting) float64) bool {
	if !d.init {
		for i := range d.pop {
			d.pop[i].ms = measure(d.pop[i].set)
		}
		d.init = true
	}
	improved := false
	for i := range d.pop {
		// DE/rand/1 adapted to categorical value indices: for each
		// parameter, child takes a ± the index difference of two others.
		a := d.pop[d.rng.Intn(len(d.pop))]
		b := d.pop[d.rng.Intn(len(d.pop))]
		c := d.pop[d.rng.Intn(len(d.pop))]
		child := d.pop[i].set.Clone()
		for p := range child {
			if d.rng.Float64() > 0.5 {
				continue
			}
			vals := d.sp.Params[p].Values
			ia := d.sp.Params[p].Index(a.set[p])
			ib := d.sp.Params[p].Index(b.set[p])
			ic := d.sp.Params[p].Index(c.set[p])
			ni := ia + (ib - ic)
			if ni < 0 {
				ni = 0
			}
			if ni >= len(vals) {
				ni = len(vals) - 1
			}
			child[p] = vals[ni]
		}
		d.sp.Repair(child, d.rng)
		ms := measure(child)
		if less(ms, d.pop[i].ms) {
			d.pop[i] = scored{set: child, ms: ms}
		}
		if ms < d.best {
			d.best = ms
			improved = true
		}
	}
	return improved
}

// ---- greedy hill climber ------------------------------------------------------

type hill struct {
	sp   *space.Space
	rng  *rand.Rand
	cur  scored
	best float64
	init bool
}

func newHill(sp *space.Space, rng *rand.Rand) *hill {
	return &hill{sp: sp, rng: rng, best: math.Inf(1)}
}

func (h *hill) step(measure func(space.Setting) float64) bool {
	if !h.init {
		h.cur = scored{set: h.sp.Random(h.rng)}
		h.cur.ms = measure(h.cur.set)
		h.best = h.cur.ms
		h.init = true
	}
	improved := false
	// Try a handful of single-parameter neighbour moves.
	for trial := 0; trial < 8; trial++ {
		p := h.rng.Intn(space.NumParams)
		vals := h.sp.Params[p].Values
		idx := h.sp.Params[p].Index(h.cur.set[p])
		delta := 1
		if h.rng.Intn(2) == 0 {
			delta = -1
		}
		ni := idx + delta
		if ni < 0 || ni >= len(vals) {
			continue
		}
		cand := h.cur.set.Clone()
		cand[p] = vals[ni]
		h.sp.Repair(cand, h.rng)
		ms := measure(cand)
		if less(ms, h.cur.ms) {
			h.cur = scored{set: cand, ms: ms}
			if ms < h.best {
				h.best = ms
				improved = true
			}
		}
	}
	// Random restart when stuck at an invalid point.
	if math.IsInf(h.cur.ms, 1) || math.IsNaN(h.cur.ms) {
		h.cur = scored{set: h.sp.Random(h.rng)}
		h.cur.ms = measure(h.cur.set)
	}
	return improved
}
