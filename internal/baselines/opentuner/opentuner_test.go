package opentuner

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func objective(t testing.TB) *sim.Simulator {
	t.Helper()
	sp, err := space.New(stencil.J3D27PT())
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(sp, gpu.A100())
}

func TestGlobalGAStepImproves(t *testing.T) {
	obj := objective(t)
	sp := obj.Space()
	rng := rand.New(rand.NewSource(3))
	g := newGlobalGA(sp, rng, New())
	best := math.Inf(1)
	measure := func(s space.Setting) float64 {
		ms, err := obj.Measure(s)
		if err != nil {
			return math.Inf(1)
		}
		if ms < best {
			best = ms
		}
		return ms
	}
	first := math.Inf(1)
	for i := 0; i < 6; i++ {
		g.step(measure)
		if i == 0 {
			first = best
		}
	}
	if math.IsInf(best, 1) {
		t.Fatal("GA never measured a valid setting")
	}
	if best > first {
		t.Fatal("best-so-far regressed")
	}
}

func TestDEStep(t *testing.T) {
	obj := objective(t)
	rng := rand.New(rand.NewSource(5))
	d := newDE(obj.Space(), rng, New())
	best := math.Inf(1)
	measure := func(s space.Setting) float64 {
		ms, err := obj.Measure(s)
		if err != nil {
			return math.Inf(1)
		}
		if ms < best {
			best = ms
		}
		return ms
	}
	for i := 0; i < 4; i++ {
		d.step(measure)
	}
	if math.IsInf(best, 1) {
		t.Fatal("DE never measured a valid setting")
	}
	// DE population entries must hold measured values (greedy replacement
	// never adopts a worse candidate).
	for _, ind := range d.pop {
		if math.IsNaN(ind.ms) {
			t.Fatal("unevaluated individual after stepping")
		}
	}
}

func TestHillClimberMovesDownhill(t *testing.T) {
	obj := objective(t)
	rng := rand.New(rand.NewSource(7))
	h := newHill(obj.Space(), rng)
	measure := func(s space.Setting) float64 {
		ms, err := obj.Measure(s)
		if err != nil {
			return math.Inf(1)
		}
		return ms
	}
	h.step(measure)
	start := h.cur.ms
	for i := 0; i < 10; i++ {
		h.step(measure)
	}
	if h.cur.ms > start {
		t.Fatalf("hill climber went uphill: %.3f -> %.3f", start, h.cur.ms)
	}
}

func TestLessNaNOrdering(t *testing.T) {
	if less(math.NaN(), 1) {
		t.Fatal("NaN must sort after numbers")
	}
	if !less(1, math.NaN()) {
		t.Fatal("numbers must sort before NaN")
	}
	if !less(1, 2) || less(2, 1) {
		t.Fatal("basic ordering broken")
	}
}

func TestMutateAndCrossProduceInRange(t *testing.T) {
	obj := objective(t)
	sp := obj.Space()
	rng := rand.New(rand.NewSource(11))
	a := sp.Random(rng)
	b := sp.Random(rng)
	for i := 0; i < 50; i++ {
		c := uniformCross(sp, a, b, rng)
		m := mutate(sp, c, 0.3, rng)
		for p := range m {
			if sp.Params[p].Index(m[p]) < 0 {
				t.Fatalf("mutation produced out-of-range %s=%d", sp.Params[p].Name, m[p])
			}
		}
	}
}

func TestBanditPrefersImprovingTechnique(t *testing.T) {
	// With the ensemble enabled, Tune must still find something decent —
	// the bandit can shift budget but never starve everything.
	obj := objective(t)
	ot := NewEnsemble()
	ot.MaxRounds = 10
	best, ms, err := ot.Tune(context.Background(), obj, nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || ms <= 0 {
		t.Fatal("ensemble found nothing")
	}
}
