// Package baselines defines the common interface of the comparator
// auto-tuners the paper evaluates csTuner against (Sec. V-A2): OpenTuner,
// Garvey, and Artemis, each re-implemented from its publication in the
// sub-packages.
package baselines

import (
	"errors"
	"sync"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
)

// Tuner is one auto-tuning method. Implementations must honour stop() —
// polled at least once per measurement — so the harness can enforce
// iso-time budgets, and must be deterministic for a given seed.
type Tuner interface {
	Name() string
	// Tune searches for the fastest setting. ds is the offline stencil
	// dataset; methods that do not use one (OpenTuner, Artemis) ignore it.
	Tune(obj sim.Objective, ds *dataset.Dataset, seed int64, stop func() bool) (space.Setting, float64, error)
}

// Tracker accumulates the best observation across measurements; shared by
// the tuner implementations.
type Tracker struct {
	BestSet space.Setting
	BestMS  float64
	Evals   int
	found   bool
}

// Observe records one measurement result.
func (t *Tracker) Observe(s space.Setting, ms float64) {
	t.Evals++
	if !t.found || ms < t.BestMS {
		t.found = true
		t.BestMS = ms
		t.BestSet = s.Clone()
	}
}

// Found reports whether any valid measurement was observed.
func (t *Tracker) Found() bool { return t.found }

// Cached wraps an objective with a measurement cache: re-probing a setting
// an auto-tuner has already compiled and timed is free, which every real
// tuner implements (OpenTuner's results database, csTuner's memoized GA).
// It is safe for concurrent use.
type Cached struct {
	obj   sim.Objective
	mu    sync.Mutex
	times map[string]float64
	errs  map[string]error
}

// WithCache wraps obj; a nil obj is rejected by the first Measure call.
func WithCache(obj sim.Objective) *Cached {
	return &Cached{obj: obj, times: map[string]float64{}, errs: map[string]error{}}
}

// Space implements sim.Objective.
func (c *Cached) Space() *space.Space { return c.obj.Space() }

// Architecture forwards the wrapped objective's GPU model when present.
func (c *Cached) Architecture() *gpu.Arch {
	if ap, ok := c.obj.(interface{ Architecture() *gpu.Arch }); ok {
		return ap.Architecture()
	}
	return nil
}

// Measure implements sim.Objective with memoization.
func (c *Cached) Measure(s space.Setting) (float64, error) {
	key := s.Key()
	c.mu.Lock()
	if ms, ok := c.times[key]; ok {
		c.mu.Unlock()
		return ms, nil
	}
	if err, ok := c.errs[key]; ok {
		c.mu.Unlock()
		return 0, err
	}
	c.mu.Unlock()

	ms, err := c.obj.Measure(s)

	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		// Budget exhaustion must not be cached: the same setting could be
		// measured by a later unbudgeted run of the shared cache.
		if !errors.Is(err, sim.ErrBudget) {
			c.errs[key] = err
		}
		return 0, err
	}
	c.times[key] = ms
	return ms, nil
}
