// Package baselines defines the common interface of the comparator
// auto-tuners the paper evaluates csTuner against (Sec. V-A2): OpenTuner,
// Garvey, and Artemis, each re-implemented from its publication in the
// sub-packages.
package baselines

import (
	"context"

	"repro/internal/dataset"
	"repro/internal/sim"
	"repro/internal/space"
)

// Tuner is one auto-tuning method. Implementations must honour stop() —
// polled at least once per measurement — so the harness can enforce
// iso-time budgets, must observe ctx between measurements so a caller can
// cancel or deadline a whole tuning session, and must be deterministic for
// a given seed (ctx permitting).
type Tuner interface {
	Name() string
	// Tune searches for the fastest setting. ds is the offline stencil
	// dataset; methods that do not use one (OpenTuner, Artemis) ignore it.
	// A cancelled ctx stops the search promptly; the best setting measured
	// before cancellation is returned.
	Tune(ctx context.Context, obj sim.Objective, ds *dataset.Dataset, seed int64, stop func() bool) (space.Setting, float64, error)
}

// Tracker accumulates the best observation across measurements; shared by
// the tuner implementations.
type Tracker struct {
	BestSet space.Setting
	BestMS  float64
	Evals   int
	found   bool
}

// Observe records one measurement result.
func (t *Tracker) Observe(s space.Setting, ms float64) {
	t.Evals++
	if !t.found || ms < t.BestMS {
		t.found = true
		t.BestMS = ms
		t.BestSet = s.Clone()
	}
}

// Found reports whether any valid measurement was observed.
func (t *Tracker) Found() bool { return t.found }
