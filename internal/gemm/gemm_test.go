package gemm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/space"
)

func workload(t testing.TB) *Workload {
	t.Helper()
	w, err := New(4096, 4096, 4096, gpu.A100())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 1, gpu.A100()); err == nil {
		t.Fatal("zero M should error")
	}
	if _, err := New(128, 128, 128, nil); err == nil {
		t.Fatal("nil arch should error")
	}
}

func TestDefaultSettingMeasurable(t *testing.T) {
	w := workload(t)
	set := w.Space().Default()
	if err := w.Space().Validate(set); err != nil {
		t.Fatal(err)
	}
	ms, err := w.Measure(set)
	if err != nil {
		t.Fatal(err)
	}
	// 2*4096³ = 137 GFLOP at ~9.7 TFLOPS: at least ~14 ms even at peak.
	if ms < 10 || ms > 500 {
		t.Fatalf("default GEMM time %.2f ms implausible", ms)
	}
}

func TestExplicitConstraints(t *testing.T) {
	w := workload(t)
	sp := w.Space()
	base := sp.Default()

	// TM == BM is the boundary of the tile-containment rule and is legal
	// (one thread row covering the whole block tile).
	edge := base.Clone()
	edge[BM], edge[TM], edge[BN], edge[TN] = 16, 16, 64, 1
	if err := sp.Validate(edge); err != nil {
		t.Errorf("TM==BM should be legal: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(space.Setting)
	}{
		{"too many threads", func(s space.Setting) { s[BM], s[BN], s[TM], s[TN] = 256, 256, 2, 2 }},
		{"below one warp", func(s space.Setting) { s[BM], s[BN], s[TM], s[TN] = 16, 16, 16, 16 }},
		{"vector exceeds BK", func(s space.Setting) { s[BK] = 4; s[VecWidth] = 8 }},
	}
	for _, c := range cases {
		s := base.Clone()
		c.mutate(s)
		if err := sp.Validate(s); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// splitK too deep: K/BK = 4096/64 = 64, SplitK 16 ok; shrink K.
	small, err := New(256, 256, 64, gpu.A100())
	if err != nil {
		t.Fatal(err)
	}
	s := small.Space().Default()
	s[BK] = 64
	s[SplitK] = 2
	if err := small.Space().Validate(s); err == nil {
		t.Error("splitK beyond K/BK accepted")
	}
}

func TestRandomValid(t *testing.T) {
	w := workload(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		s := w.Space().Random(rng)
		if err := w.Space().Validate(s); err != nil {
			t.Fatalf("Random produced invalid setting: %v", err)
		}
	}
}

func TestResourceRejects(t *testing.T) {
	w := workload(t)
	s := w.Space().Default()
	s[TM], s[TN] = 16, 16 // 512-reg accumulator tile: must spill
	s[BM], s[BN] = 256, 256
	if err := w.Space().Validate(s); err != nil {
		t.Skip("already explicitly invalid")
	}
	if _, err := w.Measure(s); err == nil {
		t.Fatal("expected register spill rejection")
	}
}

func TestModelCouplings(t *testing.T) {
	w := workload(t)
	w.NoiseAmp = 0
	base := w.Space().Default()
	bms, err := w.Measure(base)
	if err != nil {
		t.Fatal(err)
	}
	// Double buffering must help (hides staging barriers).
	db := base.Clone()
	db[DoubleBuf] = space.On
	dms, err := w.Measure(db)
	if err != nil {
		t.Fatal(err)
	}
	if dms >= bms {
		t.Fatalf("double buffering should help: %.3f vs %.3f", dms, bms)
	}
	// A degenerate 16x16 block tile with 1x1 threads wastes the machine.
	tiny := space.Setting{16, 16, 4, 1, 1, 1, space.Off, 1}
	tms, err := w.Measure(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if tms <= bms {
		t.Fatalf("tiny tiles should be much slower: %.3f vs %.3f", tms, bms)
	}
}

func TestV100Slower(t *testing.T) {
	a, err := New(2048, 2048, 2048, gpu.A100())
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(2048, 2048, 2048, gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	a.NoiseAmp, v.NoiseAmp = 0, 0
	ams, _ := a.Measure(a.Space().Default())
	vms, _ := v.Measure(v.Space().Default())
	if vms <= ams {
		t.Fatalf("V100 (%.2f) should trail A100 (%.2f)", vms, ams)
	}
}

// TestCsTunerTunesGEMM is the headline: the unmodified pipeline tunes a
// non-stencil workload through the same Objective surface.
func TestCsTunerTunesGEMM(t *testing.T) {
	w := workload(t)
	ds, err := dataset.Collect(w, rand.New(rand.NewSource(8)), 96, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Sampling.PoolSize = 512
	cfg.GA.MaxGenerations = 10
	cfg.EmitKernels = false // no CUDA emitter for GEMM
	rep, err := core.Tune(w, ds, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Space().Validate(rep.Best); err != nil {
		t.Fatalf("best GEMM setting invalid: %v", err)
	}
	def, err := w.Measure(w.Space().Default())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestMS >= def {
		t.Fatalf("csTuner did not beat the default GEMM: %.3f vs %.3f", rep.BestMS, def)
	}
	// Groups must partition the 8 GEMM parameters, not the 19 stencil ones.
	seen := map[int]bool{}
	for _, g := range rep.Groups {
		for _, p := range g {
			if p < 0 || p >= NumParams {
				t.Fatalf("group index %d outside GEMM space", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != NumParams {
		t.Fatalf("groups cover %d/%d GEMM parameters", len(seen), NumParams)
	}
}

func TestMetricsFinite(t *testing.T) {
	w := workload(t)
	r, err := w.Run(w.Space().Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Metrics) < 8 {
		t.Fatalf("only %d metrics", len(r.Metrics))
	}
	for k, v := range r.Metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("metric %s = %v", k, v)
		}
	}
}

func BenchmarkGEMMMeasure(b *testing.B) {
	w, err := New(4096, 4096, 4096, gpu.A100())
	if err != nil {
		b.Fatal(err)
	}
	set := w.Space().Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Measure(set); err != nil {
			b.Fatal(err)
		}
	}
}
