// Package gemm demonstrates csTuner's generality beyond stencils — the
// paper's stated future work ("we would like to apply csTuner to other
// domains with even larger search space, e.g. tensor optimizations in deep
// learning", Sec. VII). It defines a tiled double-precision GEMM kernel
// family over a custom optimization space (block tiles, thread tiles,
// split-K, vectorized loads, shared-memory double buffering) with an
// analytical performance model on the same GPU architectures, and exposes it
// through the identical sim.Objective surface, so the unmodified csTuner
// pipeline tunes it end-to-end.
package gemm

import (
	"fmt"
	"math"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stats"
)

// Parameter indices of the GEMM optimization space.
const (
	BM        = iota // block tile rows of C
	BN               // block tile cols of C
	BK               // K-slab depth staged per iteration
	TM               // thread tile rows
	TN               // thread tile cols
	VecWidth         // vectorized global load width (doubles per instruction)
	DoubleBuf        // {1,2}: shared-memory double buffering
	SplitK           // K split across concurrent blocks with reduction
	NumParams
)

// Workload is a GEMM problem C[M×N] += A[M×K]·B[K×N] on one architecture.
type Workload struct {
	M, N, K int
	Arch    *gpu.Arch
	sp      *space.Space

	// NoiseAmp matches the stencil simulator's measurement noise.
	NoiseAmp float64
	Seed     uint64
}

// New builds the workload and its custom optimization space.
func New(m, n, k int, arch *gpu.Arch) (*Workload, error) {
	if m <= 0 || n <= 0 || k <= 0 {
		return nil, fmt.Errorf("gemm: non-positive problem %dx%dx%d", m, n, k)
	}
	if arch == nil {
		return nil, fmt.Errorf("gemm: nil architecture")
	}
	w := &Workload{M: m, N: n, K: k, Arch: arch, NoiseAmp: 0.02, Seed: 0x9e44}

	pow2 := func(lo, hi int) []int {
		var out []int
		for v := lo; v <= hi; v <<= 1 {
			out = append(out, v)
		}
		return out
	}
	params := []space.Param{
		{Name: "BM", Kind: space.KindPow2, Values: pow2(16, 256)},
		{Name: "BN", Kind: space.KindPow2, Values: pow2(16, 256)},
		{Name: "BK", Kind: space.KindPow2, Values: pow2(4, 64)},
		{Name: "TM", Kind: space.KindPow2, Values: pow2(1, 16), Biased: true},
		{Name: "TN", Kind: space.KindPow2, Values: pow2(1, 16), Biased: true},
		{Name: "Vec", Kind: space.KindPow2, Values: pow2(1, 4)},
		{Name: "DoubleBuf", Kind: space.KindBool, Values: []int{space.Off, space.On}},
		{Name: "SplitK", Kind: space.KindPow2, Values: pow2(1, 16), Biased: true},
	}
	sp, err := space.NewCustom(params, w.validate, w.repair, w.defaultSetting)
	if err != nil {
		return nil, err
	}
	w.sp = sp
	return w, nil
}

// Space implements sim.Objective.
func (w *Workload) Space() *space.Space { return w.sp }

// defaultSetting is the canonical untuned configuration: 64×64 block tile,
// 4×4 thread tile, no extras — 256 threads.
func (w *Workload) defaultSetting() space.Setting {
	return space.Setting{64, 64, 8, 4, 4, 1, space.Off, 1}
}

// validate enforces the explicit cross-parameter constraints.
func (w *Workload) validate(s space.Setting) error {
	threads := s[BM] / s[TM] * (s[BN] / s[TN])
	if s[TM] > s[BM] || s[TN] > s[BN] {
		return fmt.Errorf("%w: thread tile exceeds block tile", space.ErrInvalid)
	}
	if threads > 1024 {
		return fmt.Errorf("%w: %d threads exceed 1024", space.ErrInvalid, threads)
	}
	if threads < w.Arch.WarpSize {
		return fmt.Errorf("%w: %d threads below one warp", space.ErrInvalid, threads)
	}
	// A vectorized load must divide the K slab.
	if s[VecWidth] > s[BK] {
		return fmt.Errorf("%w: vector width exceeds BK", space.ErrInvalid)
	}
	if s[SplitK] > w.K/s[BK] {
		return fmt.Errorf("%w: SplitK %d exceeds K/BK", space.ErrInvalid, s[SplitK])
	}
	return nil
}

// repair canonicalizes a raw draw: clamp the thread-tile and SplitK factors
// down until the structural rules hold.
func (w *Workload) repair(s space.Setting, rng space.RNG) {
	for s[TM] > s[BM] {
		s[TM] >>= 1
	}
	for s[TN] > s[BN] {
		s[TN] >>= 1
	}
	for s[BM]/s[TM]*(s[BN]/s[TN]) > 1024 {
		if s[TM] < s[TN] {
			s[TM] <<= 1
		} else {
			s[TN] <<= 1
		}
	}
	for s[BM]/s[TM]*(s[BN]/s[TN]) < w.Arch.WarpSize && (s[TM] > 1 || s[TN] > 1) {
		if s[TM] > 1 {
			s[TM] >>= 1
		} else {
			s[TN] >>= 1
		}
	}
	for s[VecWidth] > s[BK] {
		s[VecWidth] >>= 1
	}
	for s[SplitK] > 1 && s[SplitK] > w.K/s[BK] {
		s[SplitK] >>= 1
	}
}

// Measure implements sim.Objective.
func (w *Workload) Measure(s space.Setting) (float64, error) {
	r, err := w.Run(s)
	if err != nil {
		return 0, err
	}
	return r.TimeMS, nil
}

// Run implements dataset.Runner: kernel time plus a metric report (the
// Result's Kernel field is nil — there is no stencil kernel here).
func (w *Workload) Run(s space.Setting) (*sim.Result, error) {
	if err := w.sp.Validate(s); err != nil {
		return nil, err
	}
	a := w.Arch

	threads := s[BM] / s[TM] * (s[BN] / s[TN])
	// Registers: the TM×TN accumulator tile dominates (2 regs per double),
	// plus A/B fragments and indexing.
	regs := 24 + 2*s[TM]*s[TN] + 2*(s[TM]+s[TN])
	if s[DoubleBuf] == space.On {
		regs += s[TM] + s[TN]
	}
	if regs > a.SpillRegsPerThread {
		return nil, fmt.Errorf("gemm: %d registers/thread would spill", regs)
	}
	// Shared memory: A and B slabs, doubled when double buffering.
	smem := (s[BM]*s[BK] + s[BK]*s[BN]) * 8
	if s[DoubleBuf] == space.On {
		smem *= 2
	}
	if smem > a.SharedMemPerBlock {
		return nil, fmt.Errorf("gemm: %dB shared memory exceeds block max", smem)
	}
	occ, err := a.ComputeOccupancy(threads, regs, smem)
	if err != nil {
		return nil, fmt.Errorf("gemm: %w", err)
	}

	blocks := ceil(w.M, s[BM]) * ceil(w.N, s[BN]) * s[SplitK]
	waves := float64(blocks) / float64(occ.BlocksPerSM*a.SMs)
	tail := math.Ceil(waves) / waves

	// Compute: 2MNK FLOPs; FMA throughput discounted by occupancy and
	// boosted by the ILP of larger thread tiles.
	flops := 2 * float64(w.M) * float64(w.N) * float64(w.K)
	ilp := 1 + 0.1*math.Log2(float64(s[TM]*s[TN]))
	if ilp > 1.6 {
		ilp = 1.6
	}
	// ILP recovers issue slots lost to low occupancy; it can approach but
	// never exceed the architectural peak.
	occFactor := math.Min(1, float64(occ.WarpsPerSM)/8)
	eff := math.Min(0.93, occFactor*ilp) // 93%: LD/ST and index instructions steal issue slots
	computeNS := flops / (a.PeakFP64GFLOPS() * eff)

	// Memory: every block reads BM×K of A and K×BN of B once per split
	// slab; tiling reuse divides compulsory traffic by the tile extents.
	bytesA := float64(w.M) * float64(w.K) * 8 * float64(ceil(w.N, s[BN]))
	bytesB := float64(w.K) * float64(w.N) * 8 * float64(ceil(w.M, s[BM]))
	bytesC := float64(w.M) * float64(w.N) * 8 * float64(s[SplitK]) // split-K reduces through memory
	vecEff := 0.7 + 0.1*float64(s[VecWidth])                       // wider loads use more of each sector
	if vecEff > 1 {
		vecEff = 1
	}
	memNS := (bytesA + bytesB + bytesC) / (a.DRAMBandwidthGB * vecEff)

	// Double buffering overlaps the staging latency with compute;
	// without it every BK slab pays a barrier plus load latency.
	kIters := float64(ceil(w.K/s[SplitK], s[BK]))
	syncNS := kIters * a.BarrierCostNS * math.Ceil(waves)
	if s[DoubleBuf] == space.On {
		syncNS *= 0.35
	}

	totalNS := a.LaunchOverheadUS*1000 + math.Max(computeNS, memNS)*tail + syncNS

	h := stats.Mix64(s.Hash() ^ w.Seed)
	u := float64(h>>11) / float64(1<<53)
	totalNS *= 1 + w.NoiseAmp*(2*u-1)

	timeMS := totalNS / 1e6
	return &sim.Result{
		TimeMS: timeMS,
		Metrics: map[string]float64{
			"gpu__time_duration":           totalNS,
			"sm__occupancy_achieved":       occ.Achieved,
			"sm__warps_active":             float64(occ.WarpsPerSM),
			"launch__registers_per_thread": float64(regs),
			"launch__shared_mem_per_block": float64(smem),
			"launch__grid_blocks":          float64(blocks),
			"launch__waves_per_sm":         waves,
			"flop__dp_efficiency_pct":      clampPct(100 * flops / totalNS / a.PeakFP64GFLOPS()),
			"dram__throughput_pct":         clampPct(100 * (bytesA + bytesB + bytesC) / totalNS / a.DRAMBandwidthGB),
			"smsp__barrier_stall_pct":      clampPct(100 * syncNS / totalNS),
			"memory__ilp":                  ilp,
		},
	}, nil
}

func ceil(a, b int) int { return (a + b - 1) / b }

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}
