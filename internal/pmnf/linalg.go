package pmnf

import (
	"errors"
	"math"
)

// lstsq solves min ‖Xβ−y‖₂ via the regularized normal equations
// (XᵀX + λI)β = Xᵀy with Gaussian elimination and partial pivoting. The tiny
// ridge λ keeps rank-deficient designs (e.g. a constant feature column when
// every sampled value of a group is identical) solvable without special
// casing; its bias is far below measurement noise.
func lstsq(x [][]float64, y []float64, ridge float64) ([]float64, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, errors.New("pmnf: empty or mismatched design matrix")
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("pmnf: zero features")
	}
	for _, row := range x {
		if len(row) != p {
			return nil, errors.New("pmnf: ragged design matrix")
		}
	}

	// A = XᵀX + λI (p×p), b = Xᵀy.
	a := make([][]float64, p)
	b := make([]float64, p)
	for i := 0; i < p; i++ {
		a[i] = make([]float64, p)
	}
	for r := 0; r < n; r++ {
		row := x[r]
		for i := 0; i < p; i++ {
			b[i] += row[i] * y[r]
			for j := i; j < p; j++ {
				a[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		a[i][i] += ridge
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}

	// Gaussian elimination with partial pivoting.
	for col := 0; col < p; col++ {
		piv := col
		for r := col + 1; r < p; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-300 {
			return nil, errors.New("pmnf: singular normal equations")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < p; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < p; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	beta := make([]float64, p)
	for i := p - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < p; j++ {
			s -= a[i][j] * beta[j]
		}
		beta[i] = s / a[i][i]
	}
	return beta, nil
}
