// Package pmnf implements the performance-model-normal-form regression of
// csTuner's search-space sampling stage (paper Sec. IV-D, Eq. 3):
//
//	f(P) = Σ_k c_k · Π_{l∈group k} P_l^i · log2^j(P_l)
//
// Parameters inside a group (strong correlation) multiply into one term;
// groups (weak correlation) accumulate. A single global exponent pair (i, j)
// is drawn from I×J — the paper sets I={0,1,2}, J={0,1} — so the function
// search space is |I|·|J| candidates regardless of parameter count, instead
// of the exponential PMNF space that limits tools like Extra-P to four
// parameters. Each candidate is fitted by linear least squares (the model is
// linear in the c_k) and the winner is chosen by residual standard error,
// since R² is invalid for nonlinear response surfaces.
package pmnf

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/space"
	"repro/internal/stats"
)

// DefaultI and DefaultJ are the paper's exponent ranges (Sec. V-A2).
var (
	DefaultI = []int{0, 1, 2}
	DefaultJ = []int{0, 1}
)

// Model is one fitted PMNF function for a single target (a GPU metric or
// execution time).
type Model struct {
	Groups [][]int // parameter groups, as produced by package grouping
	I, J   int     // selected exponents
	Coef   []float64
	// Feature standardization (fitted on the training set): the raw group
	// products span many orders of magnitude, so each feature column is
	// z-scored before solving.
	Mean, Std []float64
	RSE       float64
}

// Fit enumerates the (i, j) candidates, fits each by least squares on the
// dataset, and returns the model with the smallest RSE. target must align
// with ds.Samples.
func Fit(ds *dataset.Dataset, groups [][]int, target []float64, is, js []int) (*Model, error) {
	if len(target) != len(ds.Samples) {
		return nil, errors.New("pmnf: target length mismatch")
	}
	if len(ds.Samples) == 0 {
		return nil, errors.New("pmnf: empty dataset")
	}
	if len(is) == 0 {
		is = DefaultI
	}
	if len(js) == 0 {
		js = DefaultJ
	}

	var best *Model
	for _, i := range is {
		for _, j := range js {
			if i == 0 && j == 0 {
				// Every term degenerates to a constant; nothing to fit.
				continue
			}
			m, err := fitOne(ds, groups, target, i, j)
			if err != nil {
				continue // singular candidates simply lose the selection
			}
			if best == nil || m.RSE < best.RSE {
				best = m
			}
		}
	}
	if best == nil {
		return nil, errors.New("pmnf: no candidate function could be fitted")
	}
	return best, nil
}

func fitOne(ds *dataset.Dataset, groups [][]int, target []float64, i, j int) (*Model, error) {
	n := len(ds.Samples)
	p := len(groups) + 1 // intercept
	feats := make([][]float64, n)
	for r := 0; r < n; r++ {
		feats[r] = featureRow(ds.Samples[r].Setting, groups, i, j)
	}

	// Standardize columns (except the intercept).
	mean := make([]float64, p)
	std := make([]float64, p)
	mean[0], std[0] = 0, 1
	for c := 1; c < p; c++ {
		col := make([]float64, n)
		for r := 0; r < n; r++ {
			col[r] = feats[r][c]
		}
		mu, _ := stats.Mean(col)
		sd, _ := stats.StdDev(col)
		if sd == 0 {
			sd = 1
		}
		mean[c], std[c] = mu, sd
		for r := 0; r < n; r++ {
			feats[r][c] = (feats[r][c] - mu) / sd
		}
	}

	coef, err := lstsq(feats, target, 1e-8)
	if err != nil {
		return nil, err
	}
	m := &Model{Groups: groups, I: i, J: j, Coef: coef, Mean: mean, Std: std}
	pred := make([]float64, n)
	for r := 0; r < n; r++ {
		pred[r] = dot(coef, feats[r])
	}
	rse, err := stats.RSE(target, pred, p)
	if err != nil {
		return nil, err
	}
	if math.IsNaN(rse) || math.IsInf(rse, 0) {
		return nil, errors.New("pmnf: non-finite RSE")
	}
	m.RSE = rse
	return m, nil
}

// featureRow builds [1, term_1, ..., term_n] for a setting.
func featureRow(s space.Setting, groups [][]int, i, j int) []float64 {
	row := make([]float64, len(groups)+1)
	row[0] = 1
	for gi, g := range groups {
		term := 1.0
		for _, p := range g {
			v := float64(s[p])
			f := math.Pow(v, float64(i))
			if j > 0 {
				// log2(1) = 0 would annihilate the term for the smallest
				// parameter value; the +1 offset keeps it positive, the
				// same convention the grouping stage uses.
				f *= math.Pow(stats.Log2(v)+1, float64(j))
			}
			term *= f
		}
		row[gi+1] = term
	}
	return row
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Predict evaluates the fitted function on a setting.
func (m *Model) Predict(s space.Setting) float64 {
	row := featureRow(s, m.Groups, m.I, m.J)
	for c := 1; c < len(row); c++ {
		row[c] = (row[c] - m.Mean[c]) / m.Std[c]
	}
	return dot(m.Coef, row)
}

// String summarizes the selected function.
func (m *Model) String() string {
	return fmt.Sprintf("PMNF(i=%d,j=%d,groups=%d,rse=%.4g)", m.I, m.J, len(m.Groups), m.RSE)
}
