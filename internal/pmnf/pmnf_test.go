package pmnf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func TestLstsqExact(t *testing.T) {
	// y = 3 + 2a - b, solvable exactly.
	x := [][]float64{
		{1, 1, 0}, {1, 2, 1}, {1, 3, 2}, {1, 0, 5}, {1, 4, 4},
	}
	y := make([]float64, len(x))
	for i, r := range x {
		y[i] = 3 + 2*r[1] - r[2]
	}
	beta, err := lstsq(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i := range want {
		if math.Abs(beta[i]-want[i]) > 1e-9 {
			t.Fatalf("beta = %v, want %v", beta, want)
		}
	}
}

func TestLstsqOverdetermined(t *testing.T) {
	// Noisy line: slope must come out close.
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := rng.Float64() * 10
		x = append(x, []float64{1, v})
		y = append(y, 1.5+0.7*v+0.01*(rng.Float64()-0.5))
	}
	beta, err := lstsq(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-1.5) > 0.05 || math.Abs(beta[1]-0.7) > 0.01 {
		t.Fatalf("beta = %v", beta)
	}
}

func TestLstsqDegenerate(t *testing.T) {
	if _, err := lstsq(nil, nil, 0); err == nil {
		t.Fatal("empty design should error")
	}
	if _, err := lstsq([][]float64{{}}, []float64{1}, 0); err == nil {
		t.Fatal("zero features should error")
	}
	if _, err := lstsq([][]float64{{1, 2}, {1}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("ragged matrix should error")
	}
	// Perfectly collinear columns: ridge rescues the solve.
	x := [][]float64{{1, 2, 4}, {1, 3, 6}, {1, 4, 8}}
	if _, err := lstsq(x, []float64{1, 2, 3}, 1e-8); err != nil {
		t.Fatalf("ridge should handle collinearity: %v", err)
	}
	// Without ridge, all-zero columns are singular.
	z := [][]float64{{0, 0}, {0, 0}}
	if _, err := lstsq(z, []float64{1, 2}, 0); err == nil {
		t.Fatal("singular system without ridge should error")
	}
}

// synthDataset builds a dataset whose target is an exact PMNF function, so
// Fit must recover it with near-zero RSE and the right exponents.
func synthDataset(t *testing.T, groups [][]int, i, j int, rng *rand.Rand) (*dataset.Dataset, []float64) {
	t.Helper()
	sp, err := space.New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	ds := &dataset.Dataset{Stencil: "synthetic"}
	var target []float64
	coefs := []float64{5, 2.0, -1.0, 0.5, 3, 1, 1, 1, 1, 1}
	for n := 0; n < 96; n++ {
		set := sp.Random(rng)
		row := featureRow(set, groups, i, j)
		y := 0.0
		for k, f := range row {
			y += coefs[k%len(coefs)] * f
		}
		ds.Samples = append(ds.Samples, dataset.Sample{Setting: set, TimeMS: 1})
		target = append(target, y)
	}
	return ds, target
}

func TestFitRecoversSyntheticFunction(t *testing.T) {
	groups := [][]int{{space.TBX, space.TBY}, {space.UFX}, {space.UseShared}}
	// Cover the remaining parameters as singletons so groups partition the
	// space is not required by Fit — it only reads the listed groups.
	rng := rand.New(rand.NewSource(77))
	for _, exp := range []struct{ i, j int }{{1, 0}, {2, 0}, {1, 1}, {0, 1}} {
		ds, target := synthDataset(t, groups, exp.i, exp.j, rng)
		m, err := Fit(ds, groups, target, nil, nil)
		if err != nil {
			t.Fatalf("(i=%d,j=%d): %v", exp.i, exp.j, err)
		}
		if m.I != exp.i || m.J != exp.j {
			t.Errorf("recovered (i=%d,j=%d), want (%d,%d); RSE=%g", m.I, m.J, exp.i, exp.j, m.RSE)
		}
		if m.RSE > 1e-6*math.Max(1, math.Abs(target[0])) {
			t.Errorf("(i=%d,j=%d): RSE %g not near zero", exp.i, exp.j, m.RSE)
		}
	}
}

func TestPredictMatchesTraining(t *testing.T) {
	groups := [][]int{{space.TBX}, {space.UFY, space.BMY}}
	rng := rand.New(rand.NewSource(13))
	ds, target := synthDataset(t, groups, 1, 1, rng)
	m, err := Fit(ds, groups, target, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		got := m.Predict(ds.Samples[k].Setting)
		if math.Abs(got-target[k]) > 1e-6*(1+math.Abs(target[k])) {
			t.Fatalf("Predict[%d] = %v, want %v", k, got, target[k])
		}
	}
}

func TestFitOnSimulatorMetrics(t *testing.T) {
	// End-to-end: fit occupancy from a real simulated dataset; the model
	// must beat the trivial constant predictor.
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(31)), 96, 0)
	if err != nil {
		t.Fatal(err)
	}
	groups := [][]int{
		{space.TBX, space.TBY, space.TBZ},
		{space.UFX, space.BMX},
		{space.UFY, space.BMY},
		{space.UFZ, space.BMZ},
		{space.UseShared, space.UseStreaming},
		{space.SB, space.SD},
		{space.CMX, space.CMY, space.CMZ},
		{space.UseConstant}, {space.UseRetiming}, {space.UsePrefetching},
	}
	col, err := ds.MetricColumn("sm__occupancy_achieved")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(ds, groups, col, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Constant-predictor RSE = stddev-ish; the fit must improve on it.
	mean := 0.0
	for _, v := range col {
		mean += v
	}
	mean /= float64(len(col))
	rss := 0.0
	for _, v := range col {
		rss += (v - mean) * (v - mean)
	}
	constRSE := math.Sqrt(rss / float64(len(col)-1))
	if m.RSE >= constRSE {
		t.Fatalf("PMNF RSE %g no better than constant predictor %g", m.RSE, constRSE)
	}
}

func TestFitErrors(t *testing.T) {
	sp, _ := space.New(stencil.J3D7PT())
	ds := &dataset.Dataset{}
	if _, err := Fit(ds, [][]int{{0}}, nil, nil, nil); err == nil {
		t.Fatal("empty dataset should error")
	}
	rng := rand.New(rand.NewSource(1))
	ds.Samples = append(ds.Samples, dataset.Sample{Setting: sp.Random(rng), TimeMS: 1})
	if _, err := Fit(ds, [][]int{{0}}, []float64{1, 2}, nil, nil); err == nil {
		t.Fatal("target length mismatch should error")
	}
}

func TestModelString(t *testing.T) {
	m := &Model{I: 2, J: 1, Groups: [][]int{{0}}, RSE: 0.5}
	if s := m.String(); s == "" {
		t.Fatal("empty String")
	}
}

func BenchmarkFit(b *testing.B) {
	sp, err := space.New(stencil.Cheby())
	if err != nil {
		b.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(1)), 128, 0)
	if err != nil {
		b.Fatal(err)
	}
	groups := [][]int{
		{space.TBX, space.TBY}, {space.UFX, space.BMX}, {space.UseShared, space.UseStreaming},
	}
	times := ds.Times()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(ds, groups, times, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
