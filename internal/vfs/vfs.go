// Package vfs is the filesystem seam under every durable subsystem: the
// campaign journal (internal/journal), the shared result store
// (internal/store) and the campaign registry (internal/campaign) perform
// every filesystem operation through the FS interface here instead of
// calling os.* directly (a discipline enforced statically by cstlint's
// rawfs analyzer).
//
// Two implementations ship:
//
//   - OS, the pass-through production implementation over the real
//     filesystem, and
//   - FaultFS (faultfs.go), a deterministic, seeded fault injector that
//     turns "what happens when the disk misbehaves" from folklore into a
//     sweepable test axis: EIO, ENOSPC, short writes, fsync failures,
//     rename failures — each a pure function of (seed, op, path, op index)
//     — plus a power-loss model that drops or truncates buffered-but-
//     unsynced bytes at a chosen cut point.
//
// The interface is deliberately narrow: exactly the operations the three
// durable subsystems use (open/create-exclusive/read/write/sync/rename/
// remove/readdir/stat/mkdir plus directory fsync as a first-class op), not
// a general filesystem abstraction. Narrowness is what makes the fault
// matrix enumerable: a fault-point walker can count every operation a
// campaign performs and re-run the campaign with a fault injected at each
// one (see internal/campaign's chaos tests).
package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// Op names one filesystem operation class for fault matching and op
// accounting. Every FS and File method maps to exactly one Op.
type Op string

// The operation classes. OpCreate is OpenFile with os.O_CREATE set —
// creation is the interesting failure class (ENOSPC on a full disk, EEXIST
// races), so it is matchable separately from plain opens.
const (
	OpOpen     Op = "open"
	OpCreate   Op = "create"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSeek     Op = "seek"
	OpTruncate Op = "truncate"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpReadFile Op = "readfile"
	OpReadDir  Op = "readdir"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpMkdirAll Op = "mkdirall"
	OpStat     Op = "stat"
	OpSyncDir  Op = "syncdir"
)

// File is the open-file surface the durable subsystems use. *os.File
// implements it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	// Truncate cuts the file to size bytes (journal torn-tail recovery).
	Truncate(size int64) error
	// Sync fsyncs file contents and metadata.
	Sync() error
	// Close releases the handle.
	Close() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem seam. Implementations must be safe for concurrent
// use; the journal, store and registry all call in under their own locks
// from several goroutines.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile is os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename is os.Rename — the atomic-replace primitive every checkpoint
	// and compaction relies on.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// Stat is os.Stat.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs the directory itself, making a rename or create inside
	// it durable. A first-class operation — not a convenience helper — so
	// fault injection can target it and callers can count its failures
	// instead of silently dropping them.
	SyncDir(dir string) error
}

// OS is the production FS: a stateless pass-through to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		// Some filesystems refuse directory fsync (EINVAL); that is the
		// platform's durability ceiling, not a fault worth degrading over.
		if errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP) {
			return nil
		}
		return serr
	}
	return cerr
}

// SyncDirOf fsyncs the directory containing path — the usual call shape
// after an atomic rename of path into place.
func SyncDirOf(fsys FS, path string) error {
	return fsys.SyncDir(filepath.Dir(path))
}

// Or returns fsys, or OS when fsys is nil — the default-filling idiom every
// FS-carrying options struct uses.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

// IsNoSpace reports whether err is ENOSPC-class: a real disk-full error or
// an injected one (both wrap syscall.ENOSPC). The service layer maps these
// submit failures to 507 Insufficient Storage.
func IsNoSpace(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}
