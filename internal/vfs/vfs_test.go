package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSPassThrough exercises every FS method of the production
// implementation against a real temp dir.
func TestOSPassThrough(t *testing.T) {
	dir := t.TempDir()
	if err := OS.MkdirAll(filepath.Join(dir, "a", "b"), 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	p := filepath.Join(dir, "a", "b", "f.txt")
	f, err := OS.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	buf := make([]byte, 16)
	n, _ := f.Read(buf)
	if string(buf[:n]) != "hello" {
		t.Fatalf("Read after truncate = %q, want %q", buf[:n], "hello")
	}
	if f.Name() != p {
		t.Fatalf("Name = %q, want %q", f.Name(), p)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if b, err := OS.ReadFile(p); err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if fi, err := OS.Stat(p); err != nil || fi.Size() != 5 {
		t.Fatalf("Stat = %v, %v", fi, err)
	}
	p2 := filepath.Join(dir, "a", "b", "g.txt")
	if err := OS.Rename(p, p2); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := SyncDirOf(OS, p2); err != nil {
		t.Fatalf("SyncDirOf: %v", err)
	}
	ents, err := OS.ReadDir(filepath.Join(dir, "a", "b"))
	if err != nil || len(ents) != 1 || ents[0].Name() != "g.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.Remove(p2); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := OS.Stat(p2); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Stat after Remove: %v, want not-exist", err)
	}
}

func TestOr(t *testing.T) {
	if Or(nil) != OS {
		t.Fatal("Or(nil) != OS")
	}
	ff := NewFaultFS(OS, 1)
	if Or(ff) != FS(ff) {
		t.Fatal("Or(ff) != ff")
	}
}

func TestIsNoSpace(t *testing.T) {
	if !IsNoSpace(ENoSpace()) {
		t.Fatal("ENoSpace not classified")
	}
	if !IsNoSpace(syscall.ENOSPC) {
		t.Fatal("raw ENOSPC not classified")
	}
	if IsNoSpace(EIO()) {
		t.Fatal("EIO misclassified as no-space")
	}
	if !errors.Is(EIO(), syscall.EIO) || !errors.Is(EIO(), ErrInjected) {
		t.Fatal("EIO should wrap both syscall.EIO and ErrInjected")
	}
}

// TestFaultAtIndex proves positional mode fires exactly once, at the named
// global op index, and nowhere else.
func TestFaultAtIndex(t *testing.T) {
	dir := t.TempDir()
	// Count the ops of the reference workload first.
	count := NewFaultFS(OS, 7)
	workload := func(fsys FS, root string) error {
		f, err := fsys.OpenFile(filepath.Join(root, "x"), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("abc")); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return fsys.Rename(filepath.Join(root, "x"), filepath.Join(root, "y"))
	}
	if err := workload(count, dir); err != nil {
		t.Fatalf("clean workload: %v", err)
	}
	n := count.Ops()
	if n != 5 {
		t.Fatalf("Ops = %d, want 5 (create, write, sync, close, rename)", n)
	}
	for i := int64(0); i < n; i++ {
		sub := filepath.Join(dir, "run")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		ff := NewFaultFS(OS, 7, Fault{Err: EIO(), AtIndex: i})
		if err := workload(ff, sub); !errors.Is(err, ErrInjected) {
			t.Fatalf("index %d: err = %v, want injected", i, err)
		}
		if ff.Injected() != 1 {
			t.Fatalf("index %d: injected = %d, want 1", i, ff.Injected())
		}
		if err := os.RemoveAll(sub); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFaultRateDeterministic proves rate-mode decisions are a pure function
// of (seed, op, path, index): two identical runs inject identically, a
// different seed injects differently.
func TestFaultRateDeterministic(t *testing.T) {
	decisions := func(seed uint64) []bool {
		var out []bool
		for i := int64(0); i < 200; i++ {
			out = append(out, faultU(seed, OpWrite, "journal.wal", i) < 0.25)
		}
		return out
	}
	a, b, c := decisions(1), decisions(1), decisions(2)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different decisions")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical decisions (astronomically unlikely)")
	}
	fired := 0
	for _, d := range a {
		if d {
			fired++
		}
	}
	if fired < 20 || fired > 90 {
		t.Fatalf("rate 0.25 fired %d/200 — hash badly skewed", fired)
	}
}

// TestFaultMatching checks Op and Path filters restrict where a rule fires.
func TestFaultMatching(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS, 3,
		Fault{Op: OpSync, Err: EIO(), Rate: 1},
		Fault{Op: OpWrite, Path: "store", Err: ENoSpace(), Rate: 1},
	)
	f, err := ff.OpenFile(filepath.Join(dir, "journal.wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write to non-store path should pass: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync should inject EIO, got %v", err)
	}
	_ = f.Close()
	g, err := ff.OpenFile(filepath.Join(dir, "store.seg"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	if _, err := g.Write([]byte("x")); !IsNoSpace(err) {
		t.Fatalf("store write should inject ENOSPC, got %v", err)
	}
	_ = g.Close()
}

// TestShortWrite proves a Short fault lands half the payload before failing.
func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	ff := NewFaultFS(OS, 5, Fault{Op: OpWrite, Err: EIO(), AtIndex: 1, Short: true})
	f, err := ff.OpenFile(p, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("12345678"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if n != 4 {
		t.Fatalf("n = %d, want 4 (half of 8)", n)
	}
	_ = f.Close()
	b, rerr := os.ReadFile(p)
	if rerr != nil || string(b) != "1234" {
		t.Fatalf("on-disk = %q, %v; want %q", b, rerr, "1234")
	}
}

// TestPowerCut proves the power-loss model: bytes synced before the cut
// survive, buffered-but-unsynced bytes vanish (keep=0) or tear (0<keep<1),
// and every operation after the cut fails with ErrPowerCut.
func TestPowerCut(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "wal")
	ff := NewFaultFS(OS, 9)
	f, err := ff.OpenFile(p, os.O_WRONLY|os.O_CREATE, 0o644) // op 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable|")); err != nil { // op 1
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("buffered")); err != nil { // op 3
		t.Fatal(err)
	}
	ff.CutAt(4, 0)
	if err := f.Sync(); !errors.Is(err, ErrPowerCut) { // op 4: too late
		t.Fatalf("sync after cut = %v, want ErrPowerCut", err)
	}
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after cut = %v, want ErrPowerCut", err)
	}
	if _, err := ff.OpenFile(p, os.O_RDONLY, 0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("open after cut should fail with ErrPowerCut")
	}
	// The "machine restarts": read with a fresh FS. Unsynced bytes are gone.
	b, rerr := os.ReadFile(p)
	if rerr != nil || string(b) != "durable|" {
		t.Fatalf("after cut on-disk = %q, %v; want %q", b, rerr, "durable|")
	}
}

// TestPowerCutKeepFraction checks the torn-tail variant: keep=0.5 leaves
// half the unsynced bytes — a partially persisted frame.
func TestPowerCutKeepFraction(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "wal")
	ff := NewFaultFS(OS, 9)
	f, err := ff.OpenFile(p, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("SYNCED")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("unsynced")); err != nil {
		t.Fatal(err)
	}
	ff.CutAt(4, 0.5)
	if err := f.Close(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("close after cut = %v, want ErrPowerCut", err)
	}
	b, rerr := os.ReadFile(p)
	if rerr != nil || string(b) != "SYNCEDunsy" {
		t.Fatalf("after keep=0.5 cut = %q, %v; want %q (6 synced + 4 of 8 unsynced)", b, rerr, "SYNCEDunsy")
	}
}

// TestPowerCutFollowsRename proves the durability track follows a file
// across rename: unsynced bytes written to the tmp name are dropped from
// the final name.
func TestPowerCutFollowsRename(t *testing.T) {
	dir := t.TempDir()
	tmp, final := filepath.Join(dir, "f.tmp"), filepath.Join(dir, "f")
	ff := NewFaultFS(OS, 11)
	f, err := ff.OpenFile(tmp, os.O_WRONLY|os.O_CREATE, 0o644) // op 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("synced")); err != nil { // op 1
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("lost")); err != nil { // op 3
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // op 4
		t.Fatal(err)
	}
	if err := ff.Rename(tmp, final); err != nil { // op 5
		t.Fatal(err)
	}
	ff.CutAt(6, 0)
	if err := ff.SyncDir(dir); !errors.Is(err, ErrPowerCut) { // op 6
		t.Fatalf("syncdir after cut = %v, want ErrPowerCut", err)
	}
	b, rerr := os.ReadFile(final)
	if rerr != nil || string(b) != "synced" {
		t.Fatalf("renamed file after cut = %q, %v; want %q", b, rerr, "synced")
	}
}

// TestPowerCutExistingBytesDurable: bytes already on disk when a file is
// opened for append count as durable — only bytes written through the FS
// and never synced are at risk.
func TestPowerCutExistingBytesDurable(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	if err := os.WriteFile(p, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	ff := NewFaultFS(OS, 13)
	f, err := ff.OpenFile(p, os.O_RDWR, 0) // op 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 2); err != nil { // op 1: seek to end
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("new")); err != nil { // op 2
		t.Fatal(err)
	}
	ff.CutAt(3, 0)
	if err := f.Sync(); !errors.Is(err, ErrPowerCut) { // op 3
		t.Fatal("expected cut")
	}
	b, rerr := os.ReadFile(p)
	if rerr != nil || string(b) != "old" {
		t.Fatalf("after cut = %q, %v; want %q", b, rerr, "old")
	}
}
