package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
)

// ErrInjected tags every fault FaultFS injects, so tests can tell an
// injected failure from a real one.
var ErrInjected = errors.New("vfs: injected fault")

// ErrPowerCut is returned by every operation after the power-loss cut
// point: the machine is "off", and the only way forward is to re-open the
// directory with a fresh FS — exactly like a real restart.
var ErrPowerCut = errors.New("vfs: power lost")

// EIO returns an injected I/O error (wraps syscall.EIO, so errors.Is
// matches real disk errors of the same class).
func EIO() error { return fmt.Errorf("%w: %w", ErrInjected, syscall.EIO) }

// ENoSpace returns an injected disk-full error (wraps syscall.ENOSPC;
// IsNoSpace matches it, and the service layer maps it to 507).
func ENoSpace() error { return fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC) }

// Fault is one injection rule. Matching is by operation class and path
// substring; firing is either probabilistic (Rate > 0: a pure function of
// (seed, op, path base name, op index) — re-running the same deterministic
// workload re-injects the same faults) or positional (Rate == 0: fire
// exactly at global op index AtIndex — the fault-point walker's mode).
type Fault struct {
	// Op restricts the rule to one operation class ("" = any).
	Op Op
	// Path restricts the rule to paths containing this substring ("" = any).
	Path string
	// Err is the injected error. Use EIO()/ENoSpace() for errno-class
	// faults; any non-nil error works.
	Err error
	// Rate is the per-matching-operation firing probability in [0, 1].
	// Rate == 0 selects positional mode: the rule fires exactly once, at
	// global op index AtIndex.
	Rate float64
	// AtIndex is the global op index to fire at in positional mode.
	AtIndex int64
	// Short turns a firing write fault into a short write: half the payload
	// reaches the file, then Err is returned — the torn-frame generator.
	Short bool
}

// wtrack follows one write-opened file's durability state for the
// power-loss model: size is the file's current length, synced the length
// known durable (last successful Sync, or the length at open for
// pre-existing bytes). Tracks outlive Close — closing without syncing does
// not make bytes durable — and follow the file across Rename.
type wtrack struct {
	path   string
	size   int64
	synced int64
}

// FaultFS wraps an inner FS with deterministic fault injection and a
// power-loss model. Every operation (FS methods and File methods on files
// it opened) consumes one global op index; Ops() after a clean run is the
// enumerable fault-point count the walker sweeps.
//
// Op indices are deterministic exactly when the workload issues its
// filesystem operations in a deterministic order — true for a single
// campaign (journal appends and store publishes happen in accounting
// order), not across concurrently-running campaigns. Concurrent workloads
// should use Rate/Path rules, which don't depend on global ordering.
type FaultFS struct {
	inner  FS
	seed   uint64
	faults []Fault

	ops      atomic.Int64
	injected atomic.Int64

	mu      sync.Mutex
	track   map[string]*wtrack
	cutAt   int64 // power-loss op index; < 0 = disarmed
	cutKeep float64
	cutDone bool
}

// NewFaultFS wraps inner. With no fault rules it is a pure op counter —
// the walker's enumeration pass.
func NewFaultFS(inner FS, seed uint64, faults ...Fault) *FaultFS {
	return &FaultFS{inner: inner, seed: seed, faults: faults, track: map[string]*wtrack{}, cutAt: -1}
}

// Ops returns the number of operations performed so far.
func (f *FaultFS) Ops() int64 { return f.ops.Load() }

// Injected returns the number of faults injected so far (power-cut
// refusals excluded).
func (f *FaultFS) Injected() int64 { return f.injected.Load() }

// CutAt arms the power-loss model: at global op index at, every file's
// buffered-but-unsynced bytes are dropped — each tracked file is truncated
// back to synced + keep·(size-synced), so keep 0 models a clean cut at the
// last fsync and 0 < keep < 1 models a torn in-flight frame — and that
// operation and every later one fail with ErrPowerCut.
func (f *FaultFS) CutAt(at int64, keep float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if keep < 0 {
		keep = 0
	}
	if keep > 1 {
		keep = 1
	}
	f.cutAt, f.cutKeep = at, keep
}

// step assigns the next op index and applies the power-cut and fault rules
// for one operation. It returns the fired fault (nil for a clean op) and
// the error to inject.
func (f *FaultFS) step(op Op, path string) (*Fault, error) {
	idx := f.ops.Add(1) - 1
	f.mu.Lock()
	if f.cutAt >= 0 && idx >= f.cutAt {
		if !f.cutDone {
			f.cutDone = true
			f.powerCutLocked()
		}
		f.mu.Unlock()
		return nil, ErrPowerCut
	}
	f.mu.Unlock()
	for i := range f.faults {
		fl := &f.faults[i]
		if fl.Op != "" && fl.Op != op {
			continue
		}
		if fl.Path != "" && !contains(path, fl.Path) {
			continue
		}
		if fl.Rate > 0 {
			if faultU(f.seed, op, filepath.Base(path), idx) >= fl.Rate {
				continue
			}
		} else if idx != fl.AtIndex {
			continue
		}
		f.injected.Add(1)
		return fl, fl.Err
	}
	return nil, nil
}

// powerCutLocked drops unsynced bytes: every tracked file is truncated to
// its durable length plus the kept fraction of its unsynced tail. Callers
// hold f.mu.
func (f *FaultFS) powerCutLocked() {
	for _, w := range f.track {
		target := w.synced + int64(f.cutKeep*float64(w.size-w.synced))
		if target >= w.size {
			continue
		}
		fh, err := f.inner.OpenFile(w.path, os.O_RDWR, 0o644)
		if err != nil {
			continue // renamed away or already gone; nothing to lose
		}
		_ = fh.Truncate(target)
		_ = fh.Close()
	}
}

// trackOpenLocked registers (or refreshes) the durability track for a file
// opened writable. Callers hold f.mu.
func (f *FaultFS) trackOpenLocked(path string, flag int) *wtrack {
	w := f.track[path]
	if w == nil {
		w = &wtrack{path: path}
		f.track[path] = w
	}
	switch {
	case flag&os.O_TRUNC != 0:
		w.size, w.synced = 0, 0
	default:
		if fi, err := f.inner.Stat(path); err == nil {
			// Pre-existing bytes count as durable: the model charges only
			// bytes written through this FS and never synced.
			w.size, w.synced = fi.Size(), fi.Size()
		} else {
			w.size, w.synced = 0, 0
		}
	}
	return w
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// faultU hashes (seed, op, path base, index) to [0, 1) — the pure decision
// function behind Rate rules. FNV-1a over the op and base name, mixed with
// the seed and index splitmix64-style.
func faultU(seed uint64, op Op, base string, idx int64) float64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(op); i++ {
		h ^= uint64(op[i])
		h *= 1099511628211
	}
	h ^= '|'
	h *= 1099511628211
	for i := 0; i < len(base); i++ {
		h ^= uint64(base[i])
		h *= 1099511628211
	}
	x := h ^ seed ^ uint64(idx)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// OpenFile opens through the seam, classifying creation separately and
// registering writable files with the power-loss tracker.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	op := OpOpen
	if flag&os.O_CREATE != 0 {
		op = OpCreate
	}
	if _, err := f.step(op, name); err != nil {
		return nil, opErr(op, name, err)
	}
	fh, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	ff := &faultFile{fs: f, f: fh, name: name}
	if flag&(os.O_WRONLY|os.O_RDWR) != 0 {
		f.mu.Lock()
		ff.w = f.trackOpenLocked(name, flag)
		f.mu.Unlock()
	}
	return ff, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if _, err := f.step(OpReadFile, name); err != nil {
		return nil, opErr(OpReadFile, name, err)
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if _, err := f.step(OpReadDir, name); err != nil {
		return nil, opErr(OpReadDir, name, err)
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.step(OpRename, oldpath); err != nil {
		return opErr(OpRename, oldpath, err)
	}
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if w := f.track[oldpath]; w != nil {
		delete(f.track, oldpath)
		w.path = newpath
		f.track[newpath] = w // replaces the overwritten file's track, like the rename itself
	}
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) Remove(name string) error {
	if _, err := f.step(OpRemove, name); err != nil {
		return opErr(OpRemove, name, err)
	}
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.track, name)
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.step(OpMkdirAll, path); err != nil {
		return opErr(OpMkdirAll, path, err)
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	if _, err := f.step(OpStat, name); err != nil {
		return nil, opErr(OpStat, name, err)
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if _, err := f.step(OpSyncDir, dir); err != nil {
		return opErr(OpSyncDir, dir, err)
	}
	return f.inner.SyncDir(dir)
}

// opErr stamps an injected error with its operation and path so walker
// failures read like a syscall trace.
func opErr(op Op, path string, err error) error {
	return fmt.Errorf("%s %s: %w", op, filepath.Base(path), err)
}

// faultFile threads File operations back through the fault matrix and
// keeps the power-loss track current.
type faultFile struct {
	fs   *FaultFS
	f    File
	name string
	w    *wtrack // nil for read-only opens
	off  int64
}

func (ff *faultFile) Name() string { return ff.name }

func (ff *faultFile) Read(p []byte) (int, error) {
	if _, err := ff.fs.step(OpRead, ff.name); err != nil {
		return 0, opErr(OpRead, ff.name, err)
	}
	n, err := ff.f.Read(p)
	ff.off += int64(n)
	return n, err
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fl, err := ff.fs.step(OpWrite, ff.name)
	if err != nil && (fl == nil || !fl.Short) {
		return 0, opErr(OpWrite, ff.name, err)
	}
	if fl != nil && fl.Short {
		// Short write: half the payload lands, then the error surfaces —
		// the frame-tearing fault CRC framing exists to survive.
		n, werr := ff.f.Write(p[:len(p)/2])
		ff.advance(n)
		if werr != nil {
			return n, werr
		}
		return n, opErr(OpWrite, ff.name, err)
	}
	n, werr := ff.f.Write(p)
	ff.advance(n)
	return n, werr
}

// advance moves the handle offset and grows the tracked file size.
func (ff *faultFile) advance(n int) {
	ff.off += int64(n)
	if ff.w == nil {
		return
	}
	ff.fs.mu.Lock()
	if ff.off > ff.w.size {
		ff.w.size = ff.off
	}
	ff.fs.mu.Unlock()
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if _, err := ff.fs.step(OpSeek, ff.name); err != nil {
		return 0, opErr(OpSeek, ff.name, err)
	}
	pos, err := ff.f.Seek(offset, whence)
	if err == nil {
		ff.off = pos
	}
	return pos, err
}

func (ff *faultFile) Truncate(size int64) error {
	if _, err := ff.fs.step(OpTruncate, ff.name); err != nil {
		return opErr(OpTruncate, ff.name, err)
	}
	if err := ff.f.Truncate(size); err != nil {
		return err
	}
	if ff.w != nil {
		ff.fs.mu.Lock()
		ff.w.size = size
		if ff.w.synced > size {
			ff.w.synced = size
		}
		ff.fs.mu.Unlock()
	}
	return nil
}

func (ff *faultFile) Sync() error {
	if _, err := ff.fs.step(OpSync, ff.name); err != nil {
		return opErr(OpSync, ff.name, err)
	}
	if err := ff.f.Sync(); err != nil {
		return err
	}
	if ff.w != nil {
		ff.fs.mu.Lock()
		ff.w.synced = ff.w.size
		ff.fs.mu.Unlock()
	}
	return nil
}

func (ff *faultFile) Close() error {
	if _, err := ff.fs.step(OpClose, ff.name); err != nil {
		// The handle still closes underneath: an injected close failure
		// models fsync-on-close trouble, not a leaked descriptor.
		_ = ff.f.Close()
		return opErr(OpClose, ff.name, err)
	}
	// The track stays registered: closing without syncing does not make
	// bytes durable, and a later power cut must still drop them.
	return ff.f.Close()
}

var _ io.ReadWriteSeeker = (*faultFile)(nil)
