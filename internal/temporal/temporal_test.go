package temporal

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/stencil"
)

func workload(t testing.TB) *Workload {
	t.Helper()
	w, err := New(stencil.J3D7PT(), gpu.A100(), 128)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, gpu.A100(), 10); err == nil {
		t.Fatal("nil stencil should error")
	}
	if _, err := New(stencil.J3D7PT(), nil, 10); err == nil {
		t.Fatal("nil arch should error")
	}
	if _, err := New(stencil.J3D7PT(), gpu.A100(), 0); err == nil {
		t.Fatal("zero steps should error")
	}
	bad := stencil.J3D7PT()
	bad.FLOPs = 0
	if _, err := New(bad, gpu.A100(), 10); err == nil {
		t.Fatal("invalid stencil should error")
	}
}

func TestDefaultMeasurable(t *testing.T) {
	w := workload(t)
	set := w.Space().Default()
	if err := w.Space().Validate(set); err != nil {
		t.Fatal(err)
	}
	ms, err := w.Measure(set)
	if err != nil {
		t.Fatal(err)
	}
	// 128 launches of a ~1.4 ms memory-bound sweep: O(200 ms).
	if ms < 50 || ms > 2000 {
		t.Fatalf("default time %.1f ms implausible", ms)
	}
}

func TestExplicitConstraints(t *testing.T) {
	w := workload(t)
	sp := w.Space()
	s := sp.Default()
	s[TBX], s[TBY] = 256, 32 // 8192 threads
	if err := sp.Validate(s); err == nil {
		t.Fatal("oversized block accepted")
	}
	s = sp.Default()
	s[TBX], s[TBY] = 4, 2
	if err := sp.Validate(s); err == nil {
		t.Fatal("sub-warp block accepted")
	}
	s = sp.Default()
	s[Degree] = 8
	s[TileZ] = 16 // needs > 2*1*8 = 16
	if err := sp.Validate(s); err == nil {
		t.Fatal("trapezoid deeper than tile accepted")
	}
}

func TestRandomValid(t *testing.T) {
	w := workload(t)
	rng := rand.New(rand.NewSource(5))
	degreesSeen := map[int]bool{}
	for i := 0; i < 300; i++ {
		s := w.Space().Random(rng)
		if err := w.Space().Validate(s); err != nil {
			t.Fatalf("invalid random setting: %v", err)
		}
		degreesSeen[s[Degree]] = true
	}
	if len(degreesSeen) < 3 {
		t.Fatalf("sampling covers only degrees %v", degreesSeen)
	}
}

// TestTemporalBlockingPaysOnMemoryBound is the physics of the extension: a
// memory-bound order-1 stencil must gain from temporal blocking, because
// DRAM traffic divides by the degree while the trapezoid overhead stays
// modest at low order.
func TestTemporalBlockingPaysOnMemoryBound(t *testing.T) {
	w := workload(t)
	w.NoiseAmp = 0
	sp := w.Space()
	base := sp.Default() // degree 1
	blocked := base.Clone()
	blocked[Degree] = 4
	blocked[TileZ] = 64
	tb1, err := w.Measure(base)
	if err != nil {
		t.Fatal(err)
	}
	tb4, err := w.Measure(blocked)
	if err != nil {
		t.Fatal(err)
	}
	if tb4 >= tb1 {
		t.Fatalf("degree 4 (%.1f ms) should beat degree 1 (%.1f ms) on j3d7pt", tb4, tb1)
	}
}

// TestHighOrderLimitsDegree: hypterm's order-4 trapezoid makes deep temporal
// blocking unprofitable — the redundancy term must eventually win.
func TestHighOrderLimitsDegree(t *testing.T) {
	w, err := New(stencil.Hypterm(), gpu.A100(), 128)
	if err != nil {
		t.Fatal(err)
	}
	w.NoiseAmp = 0
	sp := w.Space()
	times := map[int]float64{}
	for _, deg := range []int{1, 2, 8} {
		s := sp.Default()
		s[Degree] = deg
		s[TileZ] = 128
		sp.Repair(s, nil)
		if s[Degree] != deg {
			continue // repaired away: the tile cannot host it
		}
		ms, err := w.Measure(s)
		if err != nil {
			continue
		}
		times[deg] = ms
	}
	if len(times) < 2 {
		t.Skip("not enough valid degrees")
	}
	if t8, ok := times[8]; ok {
		if t8 < times[1] {
			t.Fatalf("degree 8 (%.1f) should NOT beat degree 1 (%.1f) at order 4", t8, times[1])
		}
	}
}

func TestCsTunerTunesTemporal(t *testing.T) {
	w := workload(t)
	ds, err := dataset.Collect(w, rand.New(rand.NewSource(23)), 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Sampling.PoolSize = 512
	cfg.GA.MaxGenerations = 10
	cfg.EmitKernels = false
	rep, err := core.Tune(w, ds, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	def, err := w.Measure(w.Space().Default())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestMS >= def {
		t.Fatalf("csTuner did not beat the non-temporal baseline: %.1f vs %.1f ms", rep.BestMS, def)
	}
	// On a memory-bound order-1 stencil, the tuned setting should adopt
	// some temporal blocking.
	if rep.Best[Degree] < 2 {
		t.Fatalf("tuned degree %d — expected temporal blocking to win on j3d7pt (setting %s)",
			rep.Best[Degree], w.Space().Format(rep.Best))
	}
}

func TestTrapezoidOverhead(t *testing.T) {
	if got := trapezoidOverhead(32, 1, 1); got != 1 {
		t.Fatalf("degree 1 overhead = %v", got)
	}
	// 32-wide tile, order 1, degree 4: (32+2*3)/32 = 1.1875.
	if got := trapezoidOverhead(32, 1, 4); math.Abs(got-1.1875) > 1e-12 {
		t.Fatalf("overhead = %v", got)
	}
	// Higher order grows faster.
	if trapezoidOverhead(32, 4, 4) <= trapezoidOverhead(32, 1, 4) {
		t.Fatal("order must amplify the trapezoid")
	}
}

func TestMetricsFinite(t *testing.T) {
	w := workload(t)
	s := w.Space().Default()
	s[Degree] = 2
	s[TileZ] = 64
	r, err := w.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range r.Metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("metric %s = %v", k, v)
		}
	}
	if r.Metrics["temporal__degree"] != 2 {
		t.Fatal("degree metric wrong")
	}
	if r.Metrics["temporal__launches"] != 64 { // 128 steps / degree 2
		t.Fatalf("launches = %v", r.Metrics["temporal__launches"])
	}
}

func TestSpaceFormatUsesNames(t *testing.T) {
	w := workload(t)
	out := w.Space().Format(w.Space().Default())
	for _, want := range []string{"TBx=", "Degree=", "Storage="} {
		if !contains(out, want) {
			t.Fatalf("Format missing %q: %s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func BenchmarkTemporalMeasure(b *testing.B) {
	w, err := New(stencil.J3D7PT(), gpu.A100(), 128)
	if err != nil {
		b.Fatal(err)
	}
	set := w.Space().Default()
	set[Degree] = 4
	set[TileZ] = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Measure(set); err != nil {
			b.Fatal(err)
		}
	}
}
