// Package temporal extends the optimization space with high-degree temporal
// blocking — the headline technique of AN5D (Matsumura et al., CGO'20), the
// stencil framework the paper benchmarks its ideas against — realizing the
// future-work claim "extend csTuner to support auto-tuning of more
// optimization techniques for complex stencils" (Sec. VII).
//
// A temporally-blocked kernel advances the stencil T time steps per kernel
// launch instead of one: DRAM traffic drops by ~T because intermediate
// steps live in on-chip storage, at the price of redundant halo computation
// (the famous trapezoid/overlapped-tiling overhead), extra registers and
// shared memory per in-flight step, and reduced parallel slack. Whether a
// degree pays off depends on the stencil's order, arithmetic intensity and
// tile shape — precisely the kind of coupled tradeoff csTuner exists to
// search. The package wraps the existing GPU simulator with a custom space
// of {thread-block shape, spatial tile, temporal degree, storage choice}.
package temporal

import (
	"fmt"
	"math"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/stencil"
)

// Parameter indices of the temporal-blocking optimization space.
const (
	TBX     = iota // thread-block extent X
	TBY            // thread-block extent Y
	TileZ          // spatial streaming tile depth
	Degree         // temporal blocking degree T (time steps per launch)
	Storage        // {1,2}: intermediate steps in registers (1) or shared memory (2)
	NumParams
)

// Workload is a time-iterated stencil (TotalSteps sweeps) on a GPU.
type Workload struct {
	Stencil *stencil.Stencil
	Arch    *gpu.Arch
	// TotalSteps is the number of time steps the application needs; the
	// paper's motivating simulations run hundreds.
	TotalSteps int

	sp       *space.Space
	NoiseAmp float64
	Seed     uint64
}

// New builds the workload and its optimization space.
func New(st *stencil.Stencil, arch *gpu.Arch, totalSteps int) (*Workload, error) {
	if st == nil {
		return nil, fmt.Errorf("temporal: nil stencil")
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	if arch == nil {
		return nil, fmt.Errorf("temporal: nil architecture")
	}
	if totalSteps < 1 {
		return nil, fmt.Errorf("temporal: non-positive step count %d", totalSteps)
	}
	w := &Workload{Stencil: st, Arch: arch, TotalSteps: totalSteps, NoiseAmp: 0.02, Seed: 0x7e3b}

	params := []space.Param{
		{Name: "TBx", Kind: space.KindPow2, Values: stats.Pow2sUpTo(min(256, st.NX))},
		{Name: "TBy", Kind: space.KindPow2, Values: stats.Pow2sUpTo(min(32, st.NY))},
		{Name: "TileZ", Kind: space.KindPow2, Values: stats.Pow2sUpTo(st.NZ)},
		{Name: "Degree", Kind: space.KindPow2, Values: stats.Pow2sUpTo(8), Biased: true},
		{Name: "Storage", Kind: space.KindBool, Values: []int{space.Off, space.On}},
	}
	sp, err := space.NewCustom(params, w.validate, w.repair, w.defaultSetting)
	if err != nil {
		return nil, err
	}
	w.sp = sp
	return w, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Space implements sim.Objective.
func (w *Workload) Space() *space.Space { return w.sp }

// defaultSetting: a classic 32×8 block streaming 64-deep, no temporal
// blocking — the strongest non-temporal baseline.
func (w *Workload) defaultSetting() space.Setting {
	return space.Setting{32, 8, min(64, w.Stencil.NZ), 1, space.Off}
}

// validate: warp-width blocks, degree bounded by the tile (the trapezoid
// must fit), and a degree above 1 needs somewhere to keep intermediates.
func (w *Workload) validate(s space.Setting) error {
	threads := s[TBX] * s[TBY]
	if threads > 1024 {
		return fmt.Errorf("%w: %d threads exceed 1024", space.ErrInvalid, threads)
	}
	if threads < w.Arch.WarpSize {
		return fmt.Errorf("%w: %d threads below one warp", space.ErrInvalid, threads)
	}
	// The shrinking trapezoid consumes 2·order cells of tile depth per
	// time step; the tile must survive all Degree steps.
	if need := 2 * w.Stencil.Order * s[Degree]; s[TileZ] <= need && s[Degree] > 1 {
		return fmt.Errorf("%w: TileZ %d cannot host degree %d (needs > %d)",
			space.ErrInvalid, s[TileZ], s[Degree], need)
	}
	return nil
}

func (w *Workload) repair(s space.Setting, rng space.RNG) {
	for s[TBX]*s[TBY] > 1024 {
		if s[TBX] >= s[TBY] {
			s[TBX] >>= 1
		} else {
			s[TBY] >>= 1
		}
	}
	for s[TBX]*s[TBY] < w.Arch.WarpSize {
		s[TBX] <<= 1
	}
	for s[Degree] > 1 && s[TileZ] <= 2*w.Stencil.Order*s[Degree] {
		s[Degree] >>= 1
	}
}

// Measure implements sim.Objective: the time for all TotalSteps sweeps, in
// milliseconds.
func (w *Workload) Measure(s space.Setting) (float64, error) {
	r, err := w.Run(s)
	if err != nil {
		return 0, err
	}
	return r.TimeMS, nil
}

// Run implements dataset.Runner.
func (w *Workload) Run(s space.Setting) (*sim.Result, error) {
	if err := w.sp.Validate(s); err != nil {
		return nil, err
	}
	a := w.Arch
	st := w.Stencil
	deg := float64(s[Degree])

	// ---- Resources per in-flight time step -------------------------------
	// Each live step keeps a working plane set; registers and shared memory
	// scale with the degree and the storage choice.
	regs := 28 + 2*st.Inputs
	smem := 0
	h := 2 * st.Order
	planeCells := (s[TBX] + h) * (s[TBY] + h)
	if s[Storage] == space.On {
		// Shared-memory intermediates: (2·order+1) planes per live step.
		smem = planeCells * (h + 1) * int(deg) * 8
		regs += 8
	} else {
		// Register intermediates: the per-thread column of live values.
		regs += 2 * (h + 1) * int(deg) * starFrac(st)
	}
	if regs > a.SpillRegsPerThread {
		return nil, fmt.Errorf("temporal: %d registers/thread would spill", regs)
	}
	if smem > a.SharedMemPerBlock {
		return nil, fmt.Errorf("temporal: %dB shared memory exceeds block max", smem)
	}
	threads := s[TBX] * s[TBY]
	occ, err := a.ComputeOccupancy(threads, regs, smem)
	if err != nil {
		return nil, fmt.Errorf("temporal: %w", err)
	}

	// ---- Work amplification: the overlapped-tiling trapezoid -------------
	// Every time step shrinks the valid tile by 2·order along x and y, so
	// blocks recompute a halo collar that grows with the degree.
	redo := trapezoidOverhead(float64(s[TBX]), float64(st.Order), deg) *
		trapezoidOverhead(float64(s[TBY]), float64(st.Order), deg)

	points := float64(st.Points())
	launches := math.Ceil(float64(w.TotalSteps) / deg)

	// ---- Compute term -----------------------------------------------------
	flopsPerLaunch := points * float64(st.FLOPs) * deg * redo
	instRate := float64(a.SMs) * float64(a.FP64PerSM) * a.ClockGHz
	occCompute := math.Min(1, float64(occ.WarpsPerSM)/8)
	computeNS := flopsPerLaunch / (instRate * occCompute)

	// ---- Memory term ------------------------------------------------------
	// The whole point: DRAM sees the grid once per launch instead of once
	// per step.
	bytesPerLaunch := points * float64(st.Inputs+st.Outputs) * 8 * 1.1 // halo re-reads
	coal := math.Min(1, float64(min(s[TBX], 32))/32)
	if coal < 0.25 {
		coal = 0.25
	}
	memNS := bytesPerLaunch / (a.DRAMBandwidthGB * coal)

	// Streaming synchronization along the z walk.
	iters := math.Ceil(float64(st.NZ) / float64(s[TileZ]))
	syncNS := iters * deg * a.BarrierCostNS * 4

	launchNS := a.LaunchOverheadUS * 1000
	perLaunch := math.Max(computeNS, memNS) + syncNS + launchNS
	totalNS := perLaunch * launches

	hsh := stats.Mix64(s.Hash() ^ w.Seed)
	u := float64(hsh>>11) / float64(1<<53)
	totalNS *= 1 + w.NoiseAmp*(2*u-1)

	timeMS := totalNS / 1e6
	return &sim.Result{
		TimeMS: timeMS,
		Metrics: map[string]float64{
			"gpu__time_duration":           totalNS,
			"sm__occupancy_achieved":       occ.Achieved,
			"launch__registers_per_thread": float64(regs),
			"launch__shared_mem_per_block": float64(smem),
			"temporal__degree":             deg,
			"temporal__launches":           launches,
			"temporal__redundancy":         redo,
			"dram__bytes":                  bytesPerLaunch * launches,
			"flop__dp_efficiency_pct": clampPct(100 * points * float64(st.FLOPs) *
				float64(w.TotalSteps) / totalNS / a.PeakFP64GFLOPS()),
		},
	}, nil
}

// trapezoidOverhead returns the redundant-compute factor of overlapped
// tiling along one dimension: a tile of extent e computing T steps of an
// order-r stencil expands its read/compute footprint by r·(T−1) cells on
// each side.
func trapezoidOverhead(extent, order, deg float64) float64 {
	if deg <= 1 {
		return 1
	}
	return (extent + 2*order*(deg-1)) / extent
}

// starFrac scales register cost by how many arrays carry neighbour taps.
func starFrac(st *stencil.Stencil) int {
	n := 0
	seen := map[int]map[[3]int]struct{}{}
	for _, t := range st.Taps {
		m := seen[t.Array]
		if m == nil {
			m = map[[3]int]struct{}{}
			seen[t.Array] = m
		}
		m[[3]int{t.DX, t.DY, t.DZ}] = struct{}{}
	}
	for _, m := range seen {
		if len(m) > 1 {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}
