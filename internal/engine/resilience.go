package engine

import (
	"context"
	"errors"
	"math"
	"sort"

	"repro/internal/space"
	"repro/internal/stats"
)

// ErrQuarantined is returned for settings the engine has permanently given
// up on: they failed QuarantineAfter measurement episodes and will not be
// handed to the objective again for the lifetime of this engine.
var ErrQuarantined = errors.New("engine: setting quarantined after repeated failures")

// ErrTimeout is returned when a single measurement exceeded the engine's
// per-measurement deadline (WithMeasureTimeout). It is classified transient:
// a timeout on a real testbed is usually a hung compile or a wedged device,
// and a retry frequently succeeds.
var ErrTimeout = errors.New("engine: measurement deadline exceeded")

// TransientError is the marker interface objectives (and fault injectors)
// use to flag an error as retryable. Errors without the marker are treated
// as permanent — the historical behaviour, under which an invalid setting
// deterministically fails every time.
type TransientError interface {
	error
	Transient() bool
}

type transientErr struct{ err error }

func (t transientErr) Error() string   { return t.err.Error() }
func (t transientErr) Unwrap() error   { return t.err }
func (t transientErr) Transient() bool { return true }

// Transient wraps err so the engine classifies it as retryable.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientErr{err: err}
}

// Class is the engine's error taxonomy; every measurement error falls into
// exactly one class, and the class alone decides retry/cache/quarantine
// behaviour (DESIGN.md §5).
type Class int

const (
	// ClassPermanent: the setting itself is bad (constraint violation,
	// resource overflow, deterministic compile error). Cached, counted
	// toward quarantine, never retried.
	ClassPermanent Class = iota
	// ClassTransient: the measurement failed but the setting may be fine
	// (injected fault, flaky timer, per-measurement timeout). Retried with
	// backoff, never cached.
	ClassTransient
	// ClassBudget: the virtual evaluation budget is exhausted (sim.ErrBudget
	// from this or a stacked engine). Never retried, never cached, never
	// counted toward quarantine.
	ClassBudget
	// ClassCanceled: the run-level context was cancelled or its deadline
	// passed. The episode aborts immediately and nothing is charged.
	ClassCanceled
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case ClassPermanent:
		return "permanent"
	case ClassTransient:
		return "transient"
	case ClassBudget:
		return "budget"
	case ClassCanceled:
		return "canceled"
	}
	return "unknown"
}

// Classify maps a measurement error into the engine's taxonomy.
func Classify(err error) Class {
	switch {
	case errors.Is(err, ErrBudget):
		return ClassBudget
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ClassCanceled
	case errors.Is(err, ErrTimeout):
		return ClassTransient
	}
	var te TransientError
	if errors.As(err, &te) && te.Transient() {
		return ClassTransient
	}
	return ClassPermanent
}

// RetryPolicy bounds how the engine re-attempts transiently-failed
// measurements. Backoff time is charged to the virtual clock — a retried
// measurement is not free — and the jitter is deterministic, derived from
// the engine seed and the setting key, so retry schedules are identical
// across worker counts and reruns.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per measurement episode
	// (1 = no retries). Values below 1 behave as 1.
	MaxAttempts int
	// BackoffS is the virtual seconds charged before the first retry.
	BackoffS float64
	// Multiplier grows the backoff per further retry (<=0 defaults to 2).
	Multiplier float64
	// Jitter is the ± relative jitter applied to each backoff (0..1).
	Jitter float64
}

// DefaultRetryPolicy mirrors common testbed practice: three attempts with
// 0.5 s initial backoff doubling per retry, ±50% deterministic jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BackoffS: 0.5, Multiplier: 2, Jitter: 0.5}
}

// CtxObjective is the optional context-aware measurement surface. Objectives
// that implement it (e.g. the fault injector's simulated hangs) observe the
// engine's per-measurement deadline and the run context directly; plain
// objectives are bounded by a watchdog goroutine instead.
type CtxObjective interface {
	MeasureCtx(ctx context.Context, s space.Setting) (float64, error)
}

// episode is the outcome of one measurement episode: up to MaxAttempts
// attempts at a single setting, with deterministic backoff between
// transient failures. Episodes touch no engine state — accounting happens
// separately and sequentially, which is what keeps batched runs
// deterministic across worker counts.
type episode struct {
	ms        float64 // scored time: the median across repeats
	msSum     float64 // summed repeat time, what the cost model charges
	err       error
	attempts  int
	calls     int // objective invocations (attempts × repeats on success)
	transient int
	timeouts  int
	backoffS  float64
	replayed  bool // served from the campaign journal, not the objective
	fromStore bool // served from the cross-campaign result store
}

// measureEpisode runs the retry loop for one setting. On a resumed engine
// the key's journaled episodes replay first — per-key FIFO, through this
// same return path — so accounting downstream cannot tell a replayed
// episode from a live one.
func (e *Engine) measureEpisode(ctx context.Context, s space.Setting, key string) episode {
	if ep, ok := e.replayPop(key); ok {
		return ep
	}
	// Cross-campaign store probe: a prior campaign already measured this
	// setting on this (arch, shape), so serve its scored time instead of
	// measuring. The probe sits after journal replay — a resumed run replays
	// its recorded ClassStore hits and never reaches here for them — and
	// after every sequential gate, so gate outcomes are independent of store
	// content. Lock-free and pure: safe from the parallel batch phase.
	if ms, ok := e.storeProbe(key); ok {
		return episode{ms: ms, msSum: ms, fromStore: true}
	}
	max := e.retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	var ep episode
	for a := 0; ; a++ {
		ms, msSum, calls, err := e.measureAttempt(ctx, s)
		ep.attempts++
		ep.calls += calls
		if err == nil {
			ep.ms, ep.msSum, ep.err = ms, msSum, nil // a late success clears earlier failures
			return ep
		}
		ep.err = err
		switch Classify(err) {
		case ClassTransient:
			ep.transient++
			if errors.Is(err, ErrTimeout) {
				ep.timeouts++
			}
			if ep.attempts >= max {
				return ep
			}
			ep.backoffS += e.backoffFor(key, a)
		default: // permanent, budget, canceled: never retried
			return ep
		}
	}
}

// measureAttempt performs one retry-loop attempt: WithRepeats(n) calls the
// objective n times and scores the median (noise-robust), while the summed
// time is what the cost model charges — every repeat runs on the clock. Any
// failed repeat fails the attempt with that error. With the default single
// repeat the median and the sum are both the one measurement, preserving
// the historical arithmetic bit-for-bit.
func (e *Engine) measureAttempt(ctx context.Context, s space.Setting) (ms, msSum float64, calls int, err error) {
	n := e.repeats
	if n < 1 {
		n = 1
	}
	if n == 1 {
		v, err := e.measureOnce(ctx, s)
		return v, v, 1, err
	}
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v, err := e.measureOnce(ctx, s)
		calls++
		if err != nil {
			return 0, 0, calls, err
		}
		vals = append(vals, v)
		msSum += v
	}
	sort.Float64s(vals)
	if n%2 == 1 {
		ms = vals[n/2]
	} else {
		ms = (vals[n/2-1] + vals[n/2]) / 2
	}
	return ms, msSum, calls, nil
}

// measureOnce performs a single attempt, bounded by the per-measurement
// deadline when one is configured. A deadline that fires while the run
// context is still live is reported as the transient ErrTimeout; run-level
// cancellation surfaces as the context's own error.
func (e *Engine) measureOnce(ctx context.Context, s space.Setting) (float64, error) {
	mctx := ctx
	if e.measureTimeout > 0 {
		var cancel context.CancelFunc
		mctx, cancel = context.WithTimeout(ctx, e.measureTimeout)
		defer cancel()
	}
	var ms float64
	var err error
	if co, ok := e.obj.(CtxObjective); ok {
		ms, err = co.MeasureCtx(mctx, s)
	} else if mctx.Done() == nil {
		// No deadline and an uncancellable context: the historical direct
		// call, with zero per-measurement overhead.
		return e.obj.Measure(s)
	} else {
		type outcome struct {
			ms  float64
			err error
		}
		ch := make(chan outcome, 1)
		go func() {
			m, er := e.obj.Measure(s)
			ch <- outcome{ms: m, err: er}
		}()
		select {
		case o := <-ch:
			ms, err = o.ms, o.err
		case <-mctx.Done():
			// The measurement goroutine is abandoned; its late result is
			// discarded via the buffered channel. Simulated objectives are
			// cheap, so the leak window is short.
			ms, err = 0, mctx.Err()
		}
	}
	if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		// The per-measurement deadline fired, not the run context.
		return 0, ErrTimeout
	}
	return ms, err
}

// backoffFor returns the virtual backoff charged before retry number
// attempt (0-based) of the given setting, with deterministic jitter from
// (engine seed, setting key, attempt) — independent of scheduling.
func (e *Engine) backoffFor(key string, attempt int) float64 {
	p := e.retry
	if p.BackoffS <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	d := p.BackoffS * math.Pow(mult, float64(attempt))
	if p.Jitter > 0 {
		h := stats.Mix64(e.seed ^ keyHash(key) ^ stats.Mix64(uint64(attempt)+1))
		u := float64(h>>11) / float64(1<<53)
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		d *= 1 + j*(2*u-1)
	}
	return d
}

// keyHash is a stateless FNV-1a over the setting key.
func keyHash(key string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// quarantined reports whether the key is quarantined, optionally counting
// the refusal.
func (e *Engine) quarantined(key string, count bool) bool {
	if e.quarAfter <= 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.quar[key]; !ok {
		return false
	}
	if count {
		e.stats.QuarantineSkips++
	}
	return true
}

// noteFailureLocked records one definitively-failed episode (permanent
// error or retries exhausted) and quarantines the key once it reaches the
// threshold. Budget refusals and cancellations never count. Callers hold
// e.mu.
func (e *Engine) noteFailureLocked(key string) {
	if e.quarAfter <= 0 {
		return
	}
	e.permFails[key]++
	if e.permFails[key] < e.quarAfter {
		return
	}
	if _, ok := e.quar[key]; !ok {
		e.quar[key] = struct{}{}
		e.stats.Quarantined++
	}
}

// Quarantined returns the sorted keys of the quarantine set.
func (e *Engine) Quarantined() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.quar))
	for k := range e.quar {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// accountEpisode applies virtual cost, counters, caching, best tracking and
// quarantine bookkeeping for one finished episode, in one critical section.
// On the fault-free path (one successful or one permanently-failed attempt,
// no backoff) it charges and caches exactly what the pre-fault engine did.
func (e *Engine) accountEpisode(s space.Setting, key string, ep episode) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Write-ahead: the episode is durable in the campaign journal before any
	// accounting state changes, so a crash between here and return loses at
	// most an episode the engine never charged. Replay re-serves the journal
	// through this same function, which is why it never re-appends.
	if err := e.journalEpisodeLocked(key, ep); err != nil {
		return 0, err
	}
	defer e.maybeCheckpointLocked()
	if ep.fromStore {
		// A cross-campaign store hit: the measurement was paid for by a
		// previous campaign, so the virtual clock, the evaluation count and
		// the failure bookkeeping all stand still. The result still competes
		// for best (with a trajectory point only on improvement — free hits
		// advance neither axis) and lands in the memo cache so re-probes stay
		// on the lock-free fast path.
		e.storeHits.Add(1)
		e.stats.SpentS = e.spentS
		if e.best < 0 || ep.ms < e.best {
			e.best = ep.ms
			e.bestSet = s.Clone()
			e.traj = append(e.traj, Point{CostS: e.spentS, Evals: e.evals, BestMS: e.best})
		}
		if !e.noCache {
			e.cache.storeTime(key, ep.ms)
		}
		if e.quarAfter > 0 {
			delete(e.permFails, key) // a served success clears the streak
		}
		return ep.ms, nil
	}
	if e.store != nil && !(ep.err != nil && Classify(ep.err) == ClassCanceled) {
		// The episode consulted the store and measured (or failed) live.
		// Cancelled aborts are excluded: like everywhere else in the
		// accounting they are the shutdown itself, not an outcome.
		e.storeMisses.Add(1)
	}
	e.stats.Retries += ep.attempts - 1
	e.stats.Transient += ep.transient
	e.stats.Timeouts += ep.timeouts
	e.spentS += ep.backoffS
	if ep.err != nil {
		switch Classify(ep.err) {
		case ClassCanceled:
			// Aborted, not failed: nothing charged, nothing cached, and the
			// setting's quarantine record is untouched.
			e.stats.Canceled++
			e.stats.SpentS = e.spentS
			return 0, ep.err
		case ClassBudget:
			// A stacked engine refused the measurement: charged like a
			// rejected setting (historical behaviour) but never cached and
			// never counted toward quarantine.
			e.spentS += e.cost.CheckS
			e.stats.Invalid++
			e.stats.SpentS = e.spentS
			return 0, ep.err
		case ClassTransient:
			// Retries exhausted: charged, not cached (a later probe may
			// succeed), but the failed episode counts toward quarantine.
			e.spentS += e.cost.CheckS
			e.stats.SpentS = e.spentS
			e.noteFailureLocked(key)
			return 0, ep.err
		default: // permanent
			e.spentS += e.cost.CheckS
			e.stats.Invalid++
			e.stats.SpentS = e.spentS
			if !e.noCache {
				e.cache.storeErr(key, ep.err)
			}
			e.noteFailureLocked(key)
			return 0, ep.err
		}
	}
	e.spentS += e.cost.CompileS + float64(e.cost.Reps)*ep.msSum/1000
	e.evals++
	e.stats.Evaluations++
	e.stats.SpentS = e.spentS
	if e.best < 0 || ep.ms < e.best {
		e.best = ep.ms
		e.bestSet = s.Clone()
	}
	e.traj = append(e.traj, Point{CostS: e.spentS, Evals: e.evals, BestMS: e.best})
	if !e.noCache {
		e.cache.storeTime(key, ep.ms)
	}
	// Publish the paid-for measurement to the shared store (sequentially —
	// see storePublishLocked). Replayed episodes publish too: the min-merge
	// is idempotent, and resume should backfill a store attached later.
	e.storePublishLocked(key, ep.ms)
	if e.quarAfter > 0 {
		delete(e.permFails, key) // a success clears the failure streak
	}
	return ep.ms, nil
}

// keyScratch sizes MeasureCtx's stack buffer for rendered setting keys. The
// stencil spaces here render to ~60 bytes; longer keys simply spill the
// append to the heap, costing an allocation but nothing else.
const keyScratch = 128

// MeasureCtx is the context-aware Measure: the cache is consulted first
// (cached results stay free even after cancellation), then quarantine, the
// run context, and the budget, and finally one retrying measurement episode
// runs against the inner objective.
//
// The cache probe is the hot path — tuning traffic is dominated by re-probes
// of already-measured settings — and takes zero locks and zero allocations:
// the key is rendered into a stack buffer and looked up in the striped
// store's published read map; only a miss materializes the key string and
// enters the slow path.
//
// Concurrent requests for the same uncached key collapse onto one episode:
// the first caller measures, the rest wait and re-check the cache. Without
// this, two goroutines racing on one key could each measure and charge it —
// a schedule-dependent history no journal replay could reproduce.
func (e *Engine) MeasureCtx(ctx context.Context, s space.Setting) (float64, error) {
	if !e.noCache {
		var kb [keyScratch]byte
		key := s.AppendKey(kb[:0])
		if ms, err, ok := e.cache.measureLookupBytes(key); ok {
			e.cacheHits.Add(1)
			return ms, err
		}
		return e.measureCtxSlow(ctx, s, string(key))
	}
	return e.measureCtxSlow(ctx, s, s.Key())
}

// measureCtxSlow is the uncached gauntlet: quarantine, run context, budget,
// then the singleflight-collapsed measurement episode. A waiter loops back
// through the (lock-free) cache lookup, so a cached success or permanent
// error published while it slept is served exactly as a sequential second
// call would see it.
func (e *Engine) measureCtxSlow(ctx context.Context, s space.Setting, key string) (float64, error) {
	for {
		if ms, err, ok := e.lookup(key); ok {
			return ms, err
		}
		if e.quarantined(key, true) {
			return 0, ErrQuarantined
		}
		if err := ctx.Err(); err != nil {
			e.mu.Lock()
			e.stats.Canceled++
			e.mu.Unlock()
			return 0, err
		}
		if e.exhausted(true) {
			return 0, ErrBudget
		}
		if e.noCache {
			// Uncached engines measure every request by design; collapsing
			// duplicates would change their semantics.
			ep := e.measureEpisode(ctx, s, key)
			return e.accountEpisode(s, key, ep)
		}
		e.sfMu.Lock()
		wait, inflight := e.inflight[key]
		if !inflight {
			done := make(chan struct{})
			e.inflight[key] = done
			e.sfMu.Unlock()
			ep := e.measureEpisode(ctx, s, key)
			ms, err := e.accountEpisode(s, key, ep)
			e.sfMu.Lock()
			delete(e.inflight, key)
			close(done)
			e.sfMu.Unlock()
			return ms, err
		}
		e.sfMu.Unlock()
		select {
		case <-wait:
			// Loop: a cached success or permanent error is now served from
			// the cache; an uncached outcome (transient exhaustion, budget)
			// re-runs the gauntlet exactly as a sequential second call would.
		case <-ctx.Done():
			e.mu.Lock()
			e.stats.Canceled++
			e.mu.Unlock()
			return 0, ctx.Err()
		}
	}
}
