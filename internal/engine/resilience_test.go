package engine

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/space"
	"repro/internal/stencil"
)

// flakyObj is a per-key programmable objective: it fails the first failN
// attempts at a key with failErr, then succeeds with time TBx.
type flakyObj struct {
	sp      *space.Space
	failN   int
	failErr error

	mu       sync.Mutex
	attempts map[string]int
	block    chan struct{} // when non-nil, Measure blocks on it
}

func newFlaky(t testing.TB, failN int, failErr error) *flakyObj {
	t.Helper()
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	return &flakyObj{sp: sp, failN: failN, failErr: failErr, attempts: map[string]int{}}
}

func (f *flakyObj) Space() *space.Space { return f.sp }

func (f *flakyObj) Measure(s space.Setting) (float64, error) {
	f.mu.Lock()
	f.attempts[s.Key()]++
	n := f.attempts[s.Key()]
	block := f.block
	f.mu.Unlock()
	if block != nil {
		<-block
	}
	if n <= f.failN {
		return 0, f.failErr
	}
	return float64(s[space.TBX]), nil
}

func (f *flakyObj) attemptsFor(s space.Setting) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts[s.Key()]
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"plain error is permanent", errors.New("boom"), ClassPermanent},
		{"wrapped transient", Transient(errors.New("flaky")), ClassTransient},
		{"deeply wrapped transient", errors.Join(errors.New("ctx"), Transient(errors.New("flaky"))), ClassTransient},
		{"measurement timeout", ErrTimeout, ClassTransient},
		{"budget", ErrBudget, ClassBudget},
		{"context canceled", context.Canceled, ClassCanceled},
		{"context deadline", context.DeadlineExceeded, ClassCanceled},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
	if ClassTransient.String() != "transient" || ClassPermanent.String() != "permanent" {
		t.Fatal("Class.String names diverged")
	}
}

func TestTransientErrorIsRetriedAndResultCached(t *testing.T) {
	f := newFlaky(t, 2, Transient(errors.New("flaky timer")))
	e := New(f, WithCost(CostModel{CompileS: 1, Reps: 0}), WithRetry(RetryPolicy{MaxAttempts: 3, BackoffS: 0.25, Multiplier: 2, Jitter: 0}))
	s := variant(f.sp, 64, 1)
	ms, err := e.Measure(s)
	if err != nil || ms != 64 {
		t.Fatalf("Measure = %v/%v, want 64", ms, err)
	}
	if n := f.attemptsFor(s); n != 3 {
		t.Fatalf("inner attempts = %d, want 3", n)
	}
	st := e.Stats()
	if st.Transient != 2 || st.Retries != 2 || st.Evaluations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Backoff (0.25 + 0.5) plus one compile is charged to the virtual clock.
	if want := 0.25 + 0.5 + 1.0; math.Abs(st.SpentS-want) > 1e-12 {
		t.Fatalf("SpentS = %v, want %v", st.SpentS, want)
	}
	// The eventual success is cached like any other.
	if _, err := e.Measure(s); err != nil || e.Stats().CacheHits != 1 {
		t.Fatalf("retried success was not cached: %v, %+v", err, e.Stats())
	}
}

func TestTransientExhaustionIsNotCached(t *testing.T) {
	f := newFlaky(t, 3, Transient(errors.New("flaky")))
	e := New(f, WithRetry(RetryPolicy{MaxAttempts: 2, BackoffS: 0, Jitter: 0}), WithQuarantine(0))
	s := variant(f.sp, 32, 1)
	if _, err := e.Measure(s); Classify(err) != ClassTransient {
		t.Fatalf("exhausted retries returned %v", err)
	}
	// The next probe reaches the objective again (attempt 3 still fails,
	// attempt 4 succeeds).
	if ms, err := e.Measure(s); err != nil || ms != 32 {
		t.Fatalf("re-probe after exhaustion = %v/%v", ms, err)
	}
	st := e.Stats()
	if st.CacheHits != 0 || st.Transient != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPermanentErrorIsNeverRetried(t *testing.T) {
	f := newFake(t)
	e := New(f, WithRetry(RetryPolicy{MaxAttempts: 5, BackoffS: 1, Jitter: 0}))
	bad := variant(f.sp, 999, 1)
	if _, err := e.Measure(bad); !errors.Is(err, errFakeInvalid) {
		t.Fatalf("err = %v", err)
	}
	if n := f.callCount(bad); n != 1 {
		t.Fatalf("permanent error retried: %d inner calls", n)
	}
	if st := e.Stats(); st.Retries != 0 || st.SpentS != DefaultCostModel().CheckS {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQuarantineAfterRepeatedFailures(t *testing.T) {
	f := newFlaky(t, 1<<30, Transient(errors.New("always flaky")))
	e := New(f, WithRetry(RetryPolicy{MaxAttempts: 1}), WithQuarantine(2))
	s := variant(f.sp, 48, 1)
	for i := 0; i < 2; i++ {
		if _, err := e.Measure(s); Classify(err) != ClassTransient {
			t.Fatalf("episode %d: %v", i, err)
		}
	}
	// Third probe is refused without touching the objective.
	if _, err := e.Measure(s); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("after threshold: %v", err)
	}
	if n := f.attemptsFor(s); n != 2 {
		t.Fatalf("quarantined setting reached objective: %d attempts", n)
	}
	st := e.Stats()
	if st.Quarantined != 1 || st.QuarantineSkips != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if q := e.Quarantined(); len(q) != 1 || q[0] != s.Key() {
		t.Fatalf("Quarantined() = %v", q)
	}
	// Other settings are unaffected: a fresh key still reaches the objective
	// (and fails transiently, not with ErrQuarantined).
	if _, err := e.Measure(variant(f.sp, 16, 1)); errors.Is(err, ErrQuarantined) {
		t.Fatal("quarantine leaked to an unrelated setting")
	}
}

func TestSuccessClearsQuarantineStreak(t *testing.T) {
	f := newFlaky(t, 2, Transient(errors.New("flaky")))
	e := New(f, WithRetry(RetryPolicy{MaxAttempts: 1}), WithQuarantine(3))
	s := variant(f.sp, 40, 1)
	// Two failed episodes, then a success: the streak must reset.
	e.Measure(s)
	e.Measure(s)
	if ms, err := e.Measure(s); err != nil || ms != 40 {
		t.Fatalf("third episode = %v/%v, want success", ms, err)
	}
	if len(e.Quarantined()) != 0 {
		t.Fatal("quarantined despite a success before the threshold")
	}
}

func TestMeasureTimeoutIsTransient(t *testing.T) {
	f := newFlaky(t, 0, nil)
	f.block = make(chan struct{}) // every Measure hangs until released
	e := New(f, WithMeasureTimeout(5*time.Millisecond), WithRetry(RetryPolicy{MaxAttempts: 2, BackoffS: 0, Jitter: 0}), WithQuarantine(0))
	s := variant(f.sp, 24, 1)
	_, err := e.Measure(s)
	close(f.block)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("hung measurement returned %v, want ErrTimeout", err)
	}
	st := e.Stats()
	if st.Timeouts != 2 || st.Transient != 2 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Canceled != 0 {
		t.Fatal("a per-measurement timeout must not count as run cancellation")
	}
}

func TestRunCancellationChargesNothing(t *testing.T) {
	f := newFlaky(t, 0, nil)
	f.block = make(chan struct{})
	defer close(f.block)
	e := New(f, WithRetry(DefaultRetryPolicy()))
	ctx, cancel := context.WithCancel(context.Background())
	s := variant(f.sp, 24, 1)
	done := make(chan error, 1)
	go func() {
		_, err := e.MeasureCtx(ctx, s)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := e.Stats()
	if st.SpentS != 0 || st.Evaluations != 0 || st.Invalid != 0 {
		t.Fatalf("cancelled measurement was charged: %+v", st)
	}
	if st.Canceled != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// A pre-cancelled context is refused before the objective is consulted.
	if _, err := e.MeasureCtx(ctx, variant(f.sp, 8, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled probe: %v", err)
	}
	if len(e.Quarantined()) != 0 {
		t.Fatal("cancellation counted toward quarantine")
	}
}

func TestCachedResultsSurviveCancellation(t *testing.T) {
	f := newFake(t)
	e := New(f)
	s := variant(f.sp, 64, 2)
	want, err := e.Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if ms, err := e.MeasureCtx(ctx, s); err != nil || ms != want {
		t.Fatalf("cached probe under cancelled ctx = %v/%v, want %v", ms, err, want)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	f := newFake(t)
	a := New(f, WithSeed(7))
	b := New(f, WithSeed(7))
	c := New(f, WithSeed(8))
	var diff bool
	for attempt := 0; attempt < 4; attempt++ {
		x := a.backoffFor("k1", attempt)
		if y := b.backoffFor("k1", attempt); x != y {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", attempt, x, y)
		}
		if x <= 0 {
			t.Fatalf("backoff attempt %d = %v, want > 0", attempt, x)
		}
		if c.backoffFor("k1", attempt) != x {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical backoff schedules")
	}
	// Jitter stays within ±Jitter of the nominal schedule.
	p := a.retry
	for attempt := 0; attempt < 4; attempt++ {
		nominal := p.BackoffS * math.Pow(p.Multiplier, float64(attempt))
		got := a.backoffFor("k1", attempt)
		if got < nominal*(1-p.Jitter)-1e-12 || got > nominal*(1+p.Jitter)+1e-12 {
			t.Fatalf("attempt %d backoff %v outside ±%v of %v", attempt, got, p.Jitter, nominal)
		}
	}
}

func TestBestAtEvalsBoundaries(t *testing.T) {
	e := New(newFake(t))
	// Empty trajectory.
	if _, ok := e.BestAtEvals(1); ok {
		t.Fatal("empty trajectory must report ok=false")
	}
	e.traj = []Point{
		{CostS: 1.5, Evals: 1, BestMS: 10},
		{CostS: 3.0, Evals: 2, BestMS: 8},
		{CostS: 4.5, Evals: 3, BestMS: 8},
	}
	cases := []struct {
		n    int
		want float64
		ok   bool
	}{
		{-1, 0, false},
		{0, 0, false}, // before any measurement
		{1, 10, true}, // exact first boundary
		{2, 8, true},
		{3, 8, true},  // exact last boundary
		{99, 8, true}, // past the end clamps to the final best
	}
	for _, tc := range cases {
		got, ok := e.BestAtEvals(tc.n)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("BestAtEvals(%d) = %v/%v, want %v/%v", tc.n, got, ok, tc.want, tc.ok)
		}
	}
}

func TestBestAtCostBoundaries(t *testing.T) {
	e := New(newFake(t))
	if _, ok := e.BestAtCost(10); ok {
		t.Fatal("empty trajectory must report ok=false")
	}
	e.traj = []Point{
		{CostS: 1.5, Evals: 1, BestMS: 10},
		{CostS: 3.0, Evals: 2, BestMS: 8},
	}
	cases := []struct {
		s    float64
		want float64
		ok   bool
	}{
		{0, 0, false},   // nothing finished at t=0
		{1.4, 0, false}, // just before the first point
		{1.5, 10, true}, // exact boundary is inclusive
		{2.9, 10, true},
		{3.0, 8, true},
		{100, 8, true},
	}
	for _, tc := range cases {
		got, ok := e.BestAtCost(tc.s)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("BestAtCost(%v) = %v/%v, want %v/%v", tc.s, got, ok, tc.want, tc.ok)
		}
	}
}

func TestBatchSkipsQuarantinedAndCancels(t *testing.T) {
	f := newFlaky(t, 1<<30, Transient(errors.New("always flaky")))
	e := New(f, WithRetry(RetryPolicy{MaxAttempts: 1}), WithQuarantine(1))
	bad := variant(f.sp, 56, 1)
	if _, err := e.Measure(bad); Classify(err) != ClassTransient {
		t.Fatalf("seed failure: %v", err)
	}
	if len(e.Quarantined()) != 1 {
		t.Fatal("threshold 1 should quarantine after one failed episode")
	}
	out := e.MeasureBatch([]space.Setting{bad, bad})
	for i, o := range out {
		if !errors.Is(o.Err, ErrQuarantined) {
			t.Fatalf("batch item %d: %v", i, o.Err)
		}
	}
	if n := f.attemptsFor(bad); n != 1 {
		t.Fatalf("quarantined batch item reached objective: %d attempts", n)
	}
	// A cancelled context refuses every uncached batch item.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out = e.MeasureBatchCtx(ctx, []space.Setting{variant(f.sp, 16, 1), variant(f.sp, 17, 1)})
	for i, o := range out {
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("cancelled batch item %d: %v", i, o.Err)
		}
	}
}
