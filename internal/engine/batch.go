package engine

import (
	"context"
	"errors"
	"sync"

	"repro/internal/deque"
	"repro/internal/sim"
	"repro/internal/space"
)

// ErrNoRunner is returned by Run/RunBatch when the inner objective offers
// only Measure — it cannot produce the metric reports dataset collection
// needs.
var ErrNoRunner = errors.New("engine: objective cannot produce metric reports")

// Runner is the optional metric-producing surface an objective can
// implement (the simulator and the GEMM/CPU/temporal workloads all do):
// Run returns the full simulated result — time plus Nsight-style metrics —
// that offline dataset collection stores.
type Runner interface {
	Run(s space.Setting) (*sim.Result, error)
	Space() *space.Space
}

// BatchResult is one MeasureBatch outcome; Err is nil exactly when the
// setting was measured (or served from cache) successfully.
type BatchResult struct {
	MS  float64
	Err error
}

// MeasureBatch measures many settings through the bounded worker pool and
// returns results in input order. Accounting (budget, counters, best
// tracking, trajectory) is applied sequentially in input order after the
// parallel phase, so a batched run is byte-identical to measuring the
// settings one by one — regardless of worker count or scheduling. Settings
// whose sequential position falls past the budget return ErrBudget (their
// speculative measurement is discarded; the simulated objective is cheap).
func (e *Engine) MeasureBatch(settings []space.Setting) []BatchResult {
	return e.MeasureBatchCtx(context.Background(), settings)
}

// MeasureBatchCtx is the context-aware MeasureBatch. Measurement episodes
// (including their retry loops) run in the parallel phase and touch no
// accounting state; every fault, retry and backoff decision is a pure
// function of (engine seed, setting key, attempt), so the batch outcome —
// results, stats, trajectory and quarantine set — is identical at any
// worker count. On cancellation the settings not yet accounted return the
// context's error.
func (e *Engine) MeasureBatchCtx(ctx context.Context, settings []space.Setting) []BatchResult {
	out := make([]BatchResult, len(settings))
	if len(settings) == 0 {
		return out
	}

	// Phase 1: resolve a full measurement episode for every key not already
	// cached or quarantined, in parallel, without touching accounting state.
	keys := make([]string, len(settings))
	need := make([]int, 0, len(settings)) // first input index per missing key
	seen := map[string]struct{}{}
	for i, s := range settings {
		keys[i] = s.Key()
		if _, dup := seen[keys[i]]; dup {
			continue
		}
		seen[keys[i]] = struct{}{}
		// Lock-free cache probe first: the common duplicate-heavy batch never
		// touches a mutex for its already-measured keys. Hits are not counted
		// here — phase 2 serves (and counts) them in input order.
		if !e.noCache && e.cache.containsMeasure(keys[i]) {
			continue
		}
		if e.quarantined(keys[i], false) {
			continue // refusal is served (and counted) in phase 2
		}
		need = append(need, i)
	}
	eps := make(map[string]episode, len(need))
	var epMu sync.Mutex
	e.forEach(len(need), func(k int) {
		i := need[k]
		ep := e.measureEpisode(ctx, settings[i], keys[i])
		epMu.Lock()
		eps[keys[i]] = ep
		epMu.Unlock()
	})

	// Phase 2: sequential accounting in input order. Duplicate settings in
	// one batch hit the cache entry their first occurrence stored.
	for i, s := range settings {
		if ms, err, ok := e.lookup(keys[i]); ok {
			out[i] = BatchResult{MS: ms, Err: err}
			continue
		}
		if e.quarantined(keys[i], true) {
			out[i] = BatchResult{Err: ErrQuarantined}
			continue
		}
		if err := ctx.Err(); err != nil {
			e.mu.Lock()
			e.stats.Canceled++
			e.mu.Unlock()
			out[i] = BatchResult{Err: err}
			continue
		}
		if e.exhausted(true) {
			out[i] = BatchResult{Err: ErrBudget}
			continue
		}
		ep, ok := eps[keys[i]]
		if !ok { // noCache or uncached-error duplicate: run a fresh episode
			ep = e.measureEpisode(ctx, s, keys[i])
		}
		ms, err := e.accountEpisode(s, keys[i], ep)
		out[i] = BatchResult{MS: ms, Err: err}
	}
	return out
}

// CanCollect reports whether the inner objective can produce the metric
// reports offline dataset collection needs.
func (e *Engine) CanCollect() bool {
	_, ok := e.obj.(Runner)
	return ok
}

// Run implements Runner by forwarding to the inner objective. Collection is
// an offline step (paper Sec. V-F): it is neither charged to the virtual
// budget nor counted as an evaluation, but successful results pre-warm the
// measurement cache so the search re-probes dataset settings for free.
func (e *Engine) Run(s space.Setting) (*sim.Result, error) {
	r, ok := e.obj.(Runner)
	if !ok {
		return nil, ErrNoRunner
	}
	key := s.Key()
	if !e.noCache {
		if res, err, ok := e.cache.runLookup(key); ok {
			e.cacheHits.Add(1)
			return res, err
		}
	}
	res, err := r.Run(s)
	if e.noCache {
		return res, err
	}
	if err != nil {
		if !errors.Is(err, ErrBudget) {
			e.cache.storeErr(key, err)
		}
		return nil, err
	}
	e.cache.storeRun(key, res)
	return res, nil
}

// RunBatch runs many settings through the worker pool, preserving input
// order. Like Run it is unmetered: dataset collection is offline work.
func (e *Engine) RunBatch(settings []space.Setting) ([]*sim.Result, []error) {
	res := make([]*sim.Result, len(settings))
	errs := make([]error, len(settings))
	e.forEach(len(settings), func(i int) {
		res[i], errs[i] = e.Run(settings[i])
	})
	return res, errs
}

// forEach runs f(0..n-1) on the bounded worker pool with work stealing:
// every worker is seeded with a contiguous chunk of indices in its own
// deque, drains it front-to-back, and when empty steals single items from
// the back of its neighbours' queues. Compared to the former shared-channel
// dispatch this removes the one-item-at-a-time rendezvous on the hot path
// (a worker's own pops contend only with occasional thieves) while still
// balancing skewed batches — a worker stuck on a slow measurement episode
// has its remaining chunk drained by the others.
//
// Scheduling freedom is safe here by construction: f must touch no
// accounting state (episodes are pure functions of seed, key and attempt),
// so which worker runs which index can never affect results.
func (e *Engine) forEach(n int, f func(i int)) {
	if n == 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	queues := make([]*deque.Stealable[int], workers)
	for w := range queues {
		lo, hi := w*n/workers, (w+1)*n/workers
		q := deque.NewStealable[int](hi - lo)
		for i := lo; i < hi; i++ {
			q.Push(i)
		}
		queues[w] = q
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(self int) {
			defer wg.Done()
			for {
				i, ok := queues[self].PopFront()
				if !ok {
					for off := 1; off < len(queues) && !ok; off++ {
						i, ok = queues[(self+off)%len(queues)].StealBack()
					}
					if !ok {
						// No work is ever queued after seeding, so one empty
						// sweep over every queue means the pool is drained.
						return
					}
				}
				f(i)
			}
		}(w)
	}
	wg.Wait()
}
