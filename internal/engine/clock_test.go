package engine

import (
	"testing"
	"time"

	"repro/internal/space"
)

type clockObj struct{ sp *space.Space }

func (o *clockObj) Measure(s space.Setting) (float64, error) { return 1.0, nil }
func (o *clockObj) Space() *space.Space                      { return o.sp }

func clockSpace(t *testing.T) *space.Space {
	t.Helper()
	sp, err := space.NewCustom([]space.Param{
		{Name: "a", Kind: space.KindEnum, Values: []int{1, 2, 3}},
	}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestFakeClockDrivesSpans pins span arithmetic exactly: with a fake clock
// stepping 1ms per read, a Time span costs two reads and observes exactly
// one step.
func TestFakeClockDrivesSpans(t *testing.T) {
	clk, reads := FakeClock(time.Millisecond)
	e := New(&clockObj{sp: clockSpace(t)}, WithClock(clk))

	stop := e.Time("stage")
	stop()
	stop = e.Time("stage")
	stop()

	spans := e.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %v, want exactly one", spans)
	}
	sp := spans[0]
	if sp.Name != "stage" || sp.Count != 2 {
		t.Fatalf("span = %+v, want stage/count=2", sp)
	}
	// Each Time bracket reads the clock twice, one step apart.
	if want := 2 * time.Millisecond; sp.Total != want {
		t.Fatalf("span total = %v, want %v", sp.Total, want)
	}
	if got := reads(); got != 4 {
		t.Fatalf("clock reads = %d, want 4", got)
	}
}

// TestFakeClockRereadsAreMonotonic guards the FakeClock contract the span
// tests rely on: strictly increasing readings, Now() included.
func TestFakeClockRereadsAreMonotonic(t *testing.T) {
	clk, _ := FakeClock(time.Second)
	e := New(&clockObj{sp: clockSpace(t)}, WithClock(clk))
	prev := e.Now()
	for i := 0; i < 5; i++ {
		cur := e.Now()
		if !cur.After(prev) {
			t.Fatalf("clock went backwards: %v then %v", prev, cur)
		}
		prev = cur
	}
}

// TestDefaultClockIsWall ensures the default engine still reads real time:
// Now() values bracket the test's own wall clock reads.
func TestDefaultClockIsWall(t *testing.T) {
	e := New(&clockObj{sp: clockSpace(t)})
	before := time.Now()
	got := e.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("default clock read %v outside [%v, %v]", got, before, after)
	}
}
