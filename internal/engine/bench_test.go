package engine

import (
	"path/filepath"
	"testing"

	"repro/internal/journal"
	"repro/internal/space"
	"repro/internal/store"
)

// The engine microbenchmarks below are the inputs to cmd/benchsnap, which
// serializes their ns/op and allocs/op into BENCH_engine.json so perf
// regressions in the measurement hot path show up as diffs in review.
// Keep names stable: the snapshot schema is keyed by benchmark name.

// benchVariant returns a distinct valid setting for iteration i. TBx stays
// in [1, 998] (999 is fakeObj's invalid marker).
func benchVariant(sp *space.Space, i int) space.Setting {
	return variant(sp, 1+i%998, i/998)
}

// BenchmarkMeasureCacheHit is the memoized re-probe path: one map lookup
// under the engine lock, no objective call, no accounting.
func BenchmarkMeasureCacheHit(b *testing.B) {
	f := newFake(b)
	e := New(f)
	s := variant(f.sp, 64, 4)
	if _, err := e.Measure(s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Measure(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureCacheHitParallel hammers the same cached key from every
// GOMAXPROCS worker at once. On the striped cache a hit takes zero locks
// (one atomic read-map load per probe), so this should scale flat instead
// of serializing on the accounting mutex.
func BenchmarkMeasureCacheHitParallel(b *testing.B) {
	f := newFake(b)
	e := New(f)
	s := variant(f.sp, 64, 4)
	if _, err := e.Measure(s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Measure(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMeasureMiss is the full first-probe path: objective dispatch,
// trajectory append, budget accounting, cache insert. Every iteration uses
// a distinct setting so nothing is served from cache.
func BenchmarkMeasureMiss(b *testing.B) {
	f := newFake(b)
	e := New(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Measure(benchVariant(f.sp, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureBatch64 drives the worker-pool batch path with 64
// distinct settings per iteration.
func BenchmarkMeasureBatch64(b *testing.B) {
	f := newFake(b)
	e := New(f, WithWorkers(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make([]space.Setting, 64)
		for j := range batch {
			batch[j] = benchVariant(f.sp, i*64+j)
		}
		for _, r := range e.MeasureBatch(batch) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkBatchCachedProbe64 re-submits the same fully-cached 64-setting
// batch every iteration: phase 1 serves everything from the lock-free cache
// probe, so this pins the cost of the probe-and-skip path that previously
// took the engine mutex once per setting.
func BenchmarkBatchCachedProbe64(b *testing.B) {
	f := newFake(b)
	e := New(f, WithWorkers(4))
	batch := make([]space.Setting, 64)
	for j := range batch {
		batch[j] = benchVariant(f.sp, j)
	}
	for _, r := range e.MeasureBatch(batch) {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range e.MeasureBatch(batch) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkJournalAppend is the durable episode path: each miss is framed,
// CRC'd, appended and fsync'd to the write-ahead log before Measure
// returns. This is the price of crash safety per evaluation.
func BenchmarkJournalAppend(b *testing.B) {
	f := newFake(b)
	j, err := journal.Create(filepath.Join(b.TempDir(), "bench.wal"), "bench-fp")
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	e := New(f, WithJournal(j))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Measure(benchVariant(f.sp, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalReplay256 is the resume path: open a WAL holding 256
// episodes, build an engine on it, and re-measure every setting — all 256
// must be served by replay, with zero objective calls.
func BenchmarkJournalReplay256(b *testing.B) {
	const episodes = 256
	path := filepath.Join(b.TempDir(), "replay.wal")
	{
		f := newFake(b)
		j, err := journal.Create(path, "bench-fp")
		if err != nil {
			b.Fatal(err)
		}
		e := New(f, WithJournal(j))
		for i := 0; i < episodes; i++ {
			if _, err := e.Measure(benchVariant(f.sp, i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
	}
	f := newFake(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := journal.Open(path, "bench-fp")
		if err != nil {
			b.Fatal(err)
		}
		e := New(f, WithJournal(j))
		if e.ReplayPending() != episodes {
			b.Fatalf("ReplayPending = %d, want %d", e.ReplayPending(), episodes)
		}
		for k := 0; k < episodes; k++ {
			if _, err := e.Measure(benchVariant(f.sp, k)); err != nil {
				b.Fatal(err)
			}
		}
		if e.Replayed() != episodes {
			b.Fatalf("Replayed = %d, want %d", e.Replayed(), episodes)
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// storeBenchEngine builds an engine attached to a store pre-loaded with n
// composite keys (benchVariant 0..n-1), returning the engine, the store and
// the raw setting keys.
func storeBenchEngine(b *testing.B, n int) (*Engine, *store.Store, []string) {
	b.Helper()
	st, err := store.Open(filepath.Join(b.TempDir(), "store"))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = st.Close() })
	f := newFake(b)
	e := New(f, WithStore(st, testPrefix))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = benchVariant(f.sp, i).Key()
		st.Put(testPrefix+keys[i], 0.25+float64(i)/float64(n))
	}
	return e, st, keys
}

// BenchmarkStoreLookupHit is the cross-campaign hit primitive: render the
// composite key into stack scratch and probe the store's lock-free striped
// index. The acceptance bar is ~2x BenchmarkMeasureCacheHit — a shared-store
// hit should cost about as much as a memo-cache hit.
func BenchmarkStoreLookupHit(b *testing.B) {
	e, _, keys := storeBenchEngine(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.storeProbe(keys[i%len(keys)]); !ok {
			b.Fatal("seeded key missed")
		}
	}
}

// BenchmarkStoreLookupMiss probes keys the store does not hold — the cost
// every store-attached measurement pays before falling through to the
// objective.
func BenchmarkStoreLookupMiss(b *testing.B) {
	e, _, _ := storeBenchEngine(b, 4096)
	f := newFake(b)
	miss := make([]string, 1024)
	for i := range miss {
		miss[i] = benchVariant(f.sp, 100000+i).Key()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.storeProbe(miss[i%len(miss)]); ok {
			b.Fatal("unseeded key hit")
		}
	}
}

// BenchmarkStoreAppend is the publish path: each iteration records a new
// best under a fresh composite key — index insert plus one buffered,
// CRC-framed segment write (no fsync).
func BenchmarkStoreAppend(b *testing.B) {
	_, st, _ := storeBenchEngine(b, 1)
	f := newFake(b)
	keys := make([]string, b.N)
	for i := range keys {
		keys[i] = testPrefix + benchVariant(f.sp, 200000+i).Key()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Put(keys[i], 0.5)
	}
}
