package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/journal"
	"repro/internal/space"
)

func journalAt(t *testing.T, fp string) (*journal.Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "engine.wal")
	j, err := journal.Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	return j, path
}

// runSequence measures a fixed mixed sequence — successes, an invalid
// setting, a repeated key — and returns the engine for inspection.
func runSequence(t *testing.T, eng *Engine, sp *space.Space) {
	t.Helper()
	seq := []space.Setting{
		variant(sp, 2, 4),
		variant(sp, 1, 8),
		variant(sp, 999, 0), // permanently invalid in fakeObj
		variant(sp, 2, 4),   // cache hit
		variant(sp, 4, 2),
	}
	for _, s := range seq {
		eng.Measure(s) //nolint:errcheck — invalid settings error by design
	}
}

// snapshot is the canonical engine outcome replay must reproduce exactly.
type snapshot struct {
	stats Stats
	traj  []Point
	quar  []string
	best  string
	ms    float64
}

func snap(e *Engine) snapshot {
	s := snapshot{stats: e.Stats(), traj: e.Trajectory(), quar: e.Quarantined()}
	if set, ms, ok := e.Best(); ok {
		s.best, s.ms = set.Key(), ms
	}
	return s
}

func TestJournalReplayReproducesRunWithoutObjectiveCalls(t *testing.T) {
	j, path := journalAt(t, "fp")
	obj := newFake(t)
	sp := obj.Space()
	eng := New(obj, WithJournal(j))
	runSequence(t, eng, sp)
	want := snap(eng)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := journal.Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	obj2 := newFake(t)
	eng2 := New(obj2, WithJournal(j2))
	if eng2.ReplayPending() != 4 { // 5 measurements, one a cache hit
		t.Fatalf("ReplayPending = %d, want 4", eng2.ReplayPending())
	}
	runSequence(t, eng2, sp)
	if got := snap(eng2); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed run diverged:\n got %+v\nwant %+v", got, want)
	}
	if eng2.Replayed() != 4 {
		t.Fatalf("Replayed = %d, want 4", eng2.Replayed())
	}
	if eng2.ReplayPending() != 0 {
		t.Fatalf("ReplayPending after replay = %d, want 0", eng2.ReplayPending())
	}
	// The whole point: the resumed run re-measured nothing.
	for _, s := range []space.Setting{variant(sp, 2, 4), variant(sp, 1, 8), variant(sp, 999, 0), variant(sp, 4, 2)} {
		if n := obj2.callCount(s); n != 0 {
			t.Errorf("objective re-measured %v %d times during replay", s, n)
		}
	}
	// After the replay set drains, live measurement continues seamlessly.
	extra := variant(sp, 8, 16)
	if _, err := eng2.Measure(extra); err != nil {
		t.Fatal(err)
	}
	if n := obj2.callCount(extra); n != 1 {
		t.Fatalf("post-replay measurement hit the objective %d times, want 1", n)
	}
}

func TestJournalReplayTransientExhaustionAndQuarantine(t *testing.T) {
	j, path := journalAt(t, "fp")
	inner := newFlaky(t, 1000, Transient(errors.New("always flaky")))
	sp := inner.Space()
	s := variant(sp, 3, 3)
	eng := New(inner, WithJournal(j),
		WithRetry(RetryPolicy{MaxAttempts: 2, BackoffS: 0.25, Multiplier: 2, Jitter: 0.5}),
		WithQuarantine(2), WithSeed(11))
	for i := 0; i < 3; i++ {
		eng.Measure(s) //nolint:errcheck — failures are the point
	}
	want := snap(eng)
	if len(want.quar) != 1 {
		t.Fatalf("setting not quarantined in original run: %+v", want)
	}
	j.Close()

	j2, err := journal.Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	// Two journaled episodes (the third request was refused by quarantine,
	// which is not an episode).
	if eng2 := New(newFlaky(t, 1000, Transient(errors.New("always flaky"))), WithJournal(j2),
		WithRetry(RetryPolicy{MaxAttempts: 2, BackoffS: 0.25, Multiplier: 2, Jitter: 0.5}),
		WithQuarantine(2), WithSeed(11)); true {
		for i := 0; i < 3; i++ {
			eng2.Measure(s) //nolint:errcheck
		}
		if got := snap(eng2); !reflect.DeepEqual(got, want) {
			t.Fatalf("resumed run diverged:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestJournalReplayBudgetClass(t *testing.T) {
	j, path := journalAt(t, "fp")
	obj := newFake(t)
	sp := obj.Space()
	// Budget admits the first measurement, refuses at the stacked layer for
	// the second via an inner engine returning ErrBudget.
	inner := New(obj, WithCost(CostModel{CompileS: 5, Reps: 1}), WithBudget(5))
	eng := New(inner, WithJournal(j), WithCost(CostModel{CompileS: 1, Reps: 1, CheckS: 0.5}))
	eng.Measure(variant(sp, 2, 4)) //nolint:errcheck
	eng.Measure(variant(sp, 4, 2)) //nolint:errcheck — inner budget refuses
	want := snap(eng)
	if want.stats.Invalid != 1 {
		t.Fatalf("expected one budget-classed refusal, stats %+v", want.stats)
	}
	j.Close()

	j2, err := journal.Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	obj2 := newFake(t)
	inner2 := New(obj2, WithCost(CostModel{CompileS: 5, Reps: 1}), WithBudget(5))
	eng2 := New(inner2, WithJournal(j2), WithCost(CostModel{CompileS: 1, Reps: 1, CheckS: 0.5}))
	eng2.Measure(variant(sp, 2, 4)) //nolint:errcheck
	eng2.Measure(variant(sp, 4, 2)) //nolint:errcheck
	if got := snap(eng2); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed run diverged:\n got %+v\nwant %+v", got, want)
	}
	if obj2.callCount(variant(sp, 2, 4)) != 0 {
		t.Fatal("replay re-measured a journaled success")
	}
}

func TestJournalCanceledEpisodesAreNotJournaled(t *testing.T) {
	j, path := journalAt(t, "fp")
	obj := newFake(t)
	sp := obj.Space()
	eng := New(obj, WithJournal(j))
	if _, err := eng.Measure(variant(sp, 2, 4)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.MeasureCtx(ctx, variant(sp, 4, 2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	j.Close()
	j2, err := journal.Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := len(j2.Recovered()); n != 1 {
		t.Fatalf("journal holds %d episodes, want 1 (cancelled episode must not be recorded)", n)
	}
}

func TestJournalWriteFailureIsStickyAndFailsFast(t *testing.T) {
	j, _ := journalAt(t, "fp")
	obj := newFake(t)
	sp := obj.Space()
	eng := New(obj, WithJournal(j))
	if _, err := eng.Measure(variant(sp, 2, 4)); err != nil {
		t.Fatal(err)
	}
	// Close the journal underneath the engine: the next append fails, and
	// the engine must refuse the measurement rather than run unjournaled.
	j.Close()
	if _, err := eng.Measure(variant(sp, 4, 2)); !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("err = %v, want journal.ErrClosed", err)
	}
	if eng.JournalErr() == nil {
		t.Fatal("JournalErr not sticky")
	}
	if _, err := eng.Measure(variant(sp, 8, 8)); !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("second err = %v, want sticky journal.ErrClosed", err)
	}
	// Cached results stay readable: the journal already holds them.
	if ms, err := eng.Measure(variant(sp, 2, 4)); err != nil || ms == 0 {
		t.Fatalf("cached read after journal failure: %v, %v", ms, err)
	}
	stats := eng.Stats()
	if stats.Evaluations != 1 {
		t.Fatalf("unjournaled measurement leaked into accounting: %+v", stats)
	}
}

func TestJournalCheckpointCompactionPreservesReplay(t *testing.T) {
	j, path := journalAt(t, "fp")
	j.SetCheckpointEvery(3)
	obj := newFake(t)
	sp := obj.Space()
	eng := New(obj, WithJournal(j))
	var seq []space.Setting
	for i := 1; i <= 8; i++ {
		s := variant(sp, i, i)
		seq = append(seq, s)
		if _, err := eng.Measure(s); err != nil {
			t.Fatal(err)
		}
	}
	want := snap(eng)
	j.Close()

	j2, err := journal.Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := len(j2.Recovered()); n != 8 {
		t.Fatalf("recovered %d episodes through checkpoints, want 8", n)
	}
	obj2 := newFake(t)
	eng2 := New(obj2, WithJournal(j2))
	for _, s := range seq {
		if _, err := eng2.Measure(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := snap(eng2); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed run diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestSingleflightCollapsesConcurrentSameKey(t *testing.T) {
	obj := newFake(t)
	sp := obj.Space()
	eng := New(obj)
	s := variant(sp, 2, 4)
	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = eng.Measure(s)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if n := obj.callCount(s); n != 1 {
		t.Fatalf("objective measured %d times for one key under concurrency, want 1", n)
	}
	stats := eng.Stats()
	if stats.Evaluations != 1 || stats.CacheHits != callers-1 {
		t.Fatalf("stats = %+v, want 1 evaluation and %d cache hits", stats, callers-1)
	}
}

// TestEngineKillAtEveryRecordBoundary snapshots the journal file at every
// durable point of a mixed run and resumes each snapshot: every prefix must
// replay to a state consistent with the original run's history (and the
// full snapshot must reproduce it exactly).
func TestEngineKillAtEveryRecordBoundary(t *testing.T) {
	j, path := journalAt(t, "fp")
	var snaps [][]byte
	j.OnDurable = func(int) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("snapshot: %v", err)
			return
		}
		snaps = append(snaps, data)
	}
	obj := newFake(t)
	sp := obj.Space()
	eng := New(obj, WithJournal(j))
	runSequence(t, eng, sp)
	want := snap(eng)
	j.Close()

	if len(snaps) == 0 {
		t.Fatal("no durable points captured")
	}
	for i, data := range snaps {
		p := filepath.Join(t.TempDir(), fmt.Sprintf("kill-%d.wal", i))
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, err := journal.Open(p, "fp")
		if err != nil {
			t.Fatalf("kill point %d: %v", i, err)
		}
		obj2 := newFake(t)
		eng2 := New(obj2, WithJournal(j2))
		runSequence(t, eng2, sp)
		got := snap(eng2)
		j2.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("kill point %d diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}
