package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// This file is the engine's memo store: a sharded, read-mostly cache that
// serves hits without taking any lock (DESIGN.md §12). The design splits the
// former times/errs/results maps — which lived under the accounting mutex —
// into cacheShards independent shards selected by a hash of the setting key.
//
// Each shard publishes an immutable read map through an atomic pointer. A
// probe loads the pointer and indexes the map: zero locks, zero allocations
// (byte-slice probes use the compiler's map[string(b)] optimization). Writes
// go to a small mutex-guarded dirty overlay; the published snapshot's
// amended flag tells lock-free missers whether the overlay could hold the
// key. Once the overlay reaches half the read map's size it is promoted —
// merged into a fresh immutable map and published — so insertion cost stays
// amortized O(1) and the read path never observes a map being mutated.
//
// Entries are write-once-per-field and merged, never mutated in place: a
// published *cacheEntry is immutable. The same key may carry a measured time
// (Measure), a cached permanent error, and a full metric result (Run); the
// two views below preserve the historical lookup precedence of the separate
// maps (Measure: time before error; Run: result before error, a bare time
// is not a Run hit).
//
// The cache carries no accounting state. Budget, counters, trajectory and
// quarantine stay sequential under Engine.mu, which is what keeps batched
// runs byte-identical at any worker count; the cache only memoizes outcomes
// those sequential decisions already produced.

// The engine's accounting mutex always nests outside the shard locks:
// storePublishLocked and friends write through to shards while holding
// Engine.mu, and no shard method ever calls back into the engine.
//
//cstlint:lockorder engine.mu < cacheShard.mu

// cacheShards is the stripe count. 64 shards keep shard-lock contention
// negligible at the engine's worker-count ceiling while the per-shard maps
// stay large enough to amortize promotion copies.
const cacheShards = 64

// cacheEntry is one immutable published outcome for a setting key.
type cacheEntry struct {
	ms      float64
	hasTime bool
	err     error
	res     *sim.Result
}

// readMap is one shard's immutable published snapshot.
type readMap struct {
	m map[string]*cacheEntry
	// amended reports that the shard's dirty overlay may hold keys absent
	// from m, so a lock-free miss is not definitive.
	amended bool
}

type cacheShard struct {
	read  atomic.Pointer[readMap]
	mu    sync.Mutex
	dirty map[string]*cacheEntry
}

type stripedCache struct {
	shards [cacheShards]cacheShard
}

func newStripedCache() *stripedCache {
	c := &stripedCache{}
	empty := &readMap{m: map[string]*cacheEntry{}}
	for i := range c.shards {
		// Shards may share one empty snapshot: readMaps are immutable.
		c.shards[i].read.Store(empty)
	}
	return c
}

func (c *stripedCache) shardFor(h uint64) *cacheShard {
	return &c.shards[h&(cacheShards-1)]
}

// load returns the published entry for key, if any. The fast path — key in
// the read map, or a definitive miss on an unamended snapshot — takes no
// locks; only a miss racing pending writes consults the overlay under the
// shard lock.
func (sh *cacheShard) load(key string) (*cacheEntry, bool) {
	r := sh.read.Load()
	if e, ok := r.m[key]; ok {
		return e, true
	}
	if !r.amended {
		return nil, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Re-load under the lock: a promotion may have raced the probe.
	r = sh.read.Load()
	if e, ok := r.m[key]; ok {
		return e, true
	}
	e, ok := sh.dirty[key]
	return e, ok
}

// loadBytes is load for a key rendered into a byte slice; the string
// conversions below sit directly in map index expressions, which the
// compiler serves without allocating.
func (sh *cacheShard) loadBytes(key []byte) (*cacheEntry, bool) {
	r := sh.read.Load()
	if e, ok := r.m[string(key)]; ok {
		return e, true
	}
	if !r.amended {
		return nil, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r = sh.read.Load()
	if e, ok := r.m[string(key)]; ok {
		return e, true
	}
	e, ok := sh.dirty[string(key)]
	return e, ok
}

// store merges upd into the entry for key and publishes it. Fields are
// merged — a Run result lands beside an already-cached time — and the merged
// entry is a fresh allocation, so previously returned entries stay immutable.
func (sh *cacheShard) store(key string, upd func(*cacheEntry)) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r := sh.read.Load()
	var merged cacheEntry
	if e, ok := sh.dirty[key]; ok {
		merged = *e
	} else if e, ok := r.m[key]; ok {
		merged = *e
	}
	// The upd callbacks are the package-internal field-setters in
	// storeTime/storeErr/storeRun — three-line closures that never block,
	// never re-enter the cache, and must run under the shard lock so the
	// read-merge-publish of an entry is atomic.
	upd(&merged) //cstlint:allow lockcall(internal non-blocking field-setter; must merge atomically under shard lock)
	if sh.dirty == nil {
		sh.dirty = make(map[string]*cacheEntry)
	}
	sh.dirty[key] = &merged
	if len(sh.dirty) >= 1+len(r.m)/2 {
		// Promote: merge read+dirty into a fresh immutable snapshot. The
		// threshold grows with the read map, so total copy work over n
		// inserts is O(n) amortized (geometric growth, like append).
		nm := make(map[string]*cacheEntry, len(r.m)+len(sh.dirty))
		for k, v := range r.m {
			nm[k] = v
		}
		for k, v := range sh.dirty {
			nm[k] = v
		}
		sh.read.Store(&readMap{m: nm})
		sh.dirty = nil
		return
	}
	if !r.amended {
		// First pending write since the last promotion: warn lock-free
		// missers that the overlay is live.
		sh.read.Store(&readMap{m: r.m, amended: true})
	}
}

// measureView projects an entry onto the Measure result surface, preserving
// the historical map precedence: a cached time wins over a cached error.
func measureView(e *cacheEntry) (float64, error, bool) {
	switch {
	case e.hasTime:
		return e.ms, nil, true
	case e.err != nil:
		return 0, e.err, true
	}
	return 0, nil, false
}

// measureLookup serves the Measure cache view for a string key.
func (c *stripedCache) measureLookup(key string) (float64, error, bool) {
	if e, ok := c.shardFor(keyHash(key)).load(key); ok {
		return measureView(e)
	}
	return 0, nil, false
}

// measureLookupBytes is measureLookup for a stack-rendered key: the
// allocation-free fast path of MeasureCtx.
func (c *stripedCache) measureLookupBytes(key []byte) (float64, error, bool) {
	if e, ok := c.shardFor(keyHashBytes(key)).loadBytes(key); ok {
		return measureView(e)
	}
	return 0, nil, false
}

// containsMeasure reports whether a Measure probe for key would be served
// from cache, without counting a hit — the batch phase-1 pre-filter.
func (c *stripedCache) containsMeasure(key string) bool {
	e, ok := c.shardFor(keyHash(key)).load(key)
	return ok && (e.hasTime || e.err != nil)
}

// runLookup serves the Run cache view: a stored metric result, else a cached
// error. A bare measured time is not a Run hit (Run needs the full metrics).
func (c *stripedCache) runLookup(key string) (*sim.Result, error, bool) {
	e, ok := c.shardFor(keyHash(key)).load(key)
	if !ok {
		return nil, nil, false
	}
	switch {
	case e.res != nil:
		return e.res, nil, true
	case e.err != nil:
		return nil, e.err, true
	}
	return nil, nil, false
}

// storeTime publishes a successful measurement.
func (c *stripedCache) storeTime(key string, ms float64) {
	c.shardFor(keyHash(key)).store(key, func(e *cacheEntry) {
		e.ms, e.hasTime = ms, true
	})
}

// storeErr publishes a cached (permanent) measurement error.
func (c *stripedCache) storeErr(key string, err error) {
	c.shardFor(keyHash(key)).store(key, func(e *cacheEntry) {
		e.err = err
	})
}

// storeRun publishes an offline collection result, pre-warming the Measure
// view with its time (historical Run behaviour).
func (c *stripedCache) storeRun(key string, res *sim.Result) {
	c.shardFor(keyHash(key)).store(key, func(e *cacheEntry) {
		e.res = res
		e.ms, e.hasTime = res.TimeMS, true
	})
}

// keyHashBytes is keyHash over an unmaterialized key; the two must agree
// byte-for-byte so stack-rendered probes select the same shard.
func keyHashBytes(key []byte) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}
