package engine

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/journal"
	"repro/internal/space"
	"repro/internal/store"
)

const testPrefix = "arch:test|shape:test|"

func storeAt(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

func TestStoreHitServesWithoutMeasuringOrCharging(t *testing.T) {
	st := storeAt(t)

	// Campaign A pays for two measurements and publishes them.
	fa := newFake(t)
	ea := New(fa, WithCost(CostModel{CompileS: 2}), WithStore(st, testPrefix))
	s1, s2 := variant(fa.sp, 16, 1), variant(fa.sp, 64, 4)
	ms1, err := ea.Measure(s1)
	if err != nil {
		t.Fatal(err)
	}
	ms2, err := ea.Measure(s2)
	if err != nil {
		t.Fatal(err)
	}
	if sa := ea.Stats(); sa.StoreHits != 0 || sa.StoreMisses != 2 {
		t.Fatalf("publisher stats = %+v", sa)
	}

	// Campaign B shares the store: both settings are free hits.
	fb := newFake(t)
	eb := New(fb, WithCost(CostModel{CompileS: 2}), WithStore(st, testPrefix))
	got2, err := eb.Measure(s2)
	if err != nil || got2 != ms2 {
		t.Fatalf("hit = %v/%v want %v", got2, err, ms2)
	}
	got1, err := eb.Measure(s1)
	if err != nil || got1 != ms1 {
		t.Fatalf("hit = %v/%v want %v", got1, err, ms1)
	}
	if n := fb.callCount(s1) + fb.callCount(s2); n != 0 {
		t.Fatalf("store hits reached the objective %d times", n)
	}
	sb := eb.Stats()
	if sb.StoreHits != 2 || sb.StoreMisses != 0 {
		t.Fatalf("consumer stats = %+v", sb)
	}
	if sb.SpentS != 0 || sb.Evaluations != 0 {
		t.Fatalf("store hits were charged: %+v", sb)
	}
	// s2 is slower than s1 (TBx dominates): first hit set best, second
	// improved it — two trajectory points, both at zero cost.
	traj := eb.Trajectory()
	if len(traj) != 2 || traj[0].BestMS != ms2 || traj[1].BestMS != ms1 {
		t.Fatalf("trajectory = %+v", traj)
	}
	for _, p := range traj {
		if p.CostS != 0 || p.Evals != 0 {
			t.Fatalf("store-hit trajectory point advanced an axis: %+v", p)
		}
	}
	if set, ms, ok := eb.Best(); !ok || ms != ms1 || set.Key() != s1.Key() {
		t.Fatalf("best = %v/%v/%v", set, ms, ok)
	}
	// The hit landed in the memo cache: a re-probe is a cache hit, not a
	// second store hit.
	if _, err := eb.Measure(s1); err != nil {
		t.Fatal(err)
	}
	if sb2 := eb.Stats(); sb2.CacheHits != 1 || sb2.StoreHits != 2 {
		t.Fatalf("re-probe stats = %+v", sb2)
	}
}

// TestStoreDisabledIsByteIdentical pins the integration's zero-cost-off
// property: an engine with no store (or an explicitly nil one) produces
// exactly the baseline's stats, trajectory and results.
func TestStoreDisabledIsByteIdentical(t *testing.T) {
	fa := newFake(t)
	base := New(fa)
	runSequence(t, base, fa.sp)

	fb := newFake(t)
	nilStore := New(fb, WithStore(nil, "ignored"))
	runSequence(t, nilStore, fb.sp)

	if got, want := snap(nilStore), snap(base); !reflect.DeepEqual(got, want) {
		t.Fatalf("nil store diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestWithoutCacheDisablesStore(t *testing.T) {
	st := storeAt(t)
	f := newFake(t)
	s := variant(f.sp, 32, 2)
	st.Put(testPrefix+s.Key(), 0.125) // would hit if the store were consulted

	e := New(f, WithStore(st, testPrefix), WithoutCache())
	ms, err := e.Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	if ms == 0.125 {
		t.Fatal("uncached engine served a store hit")
	}
	if n := f.callCount(s); n != 1 {
		t.Fatalf("objective calls = %d", n)
	}
	if est := e.Stats(); est.StoreHits != 0 || est.StoreMisses != 0 {
		t.Fatalf("uncached engine touched the store: %+v", est)
	}
	// And it must not publish either: raw measurement counts are the point.
	if _, ok := st.Get(testPrefix + variant(f.sp, 48, 3).Key()); ok {
		t.Fatal("unexpected key in store")
	}
	if _, err := e.Measure(variant(f.sp, 48, 3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(testPrefix + variant(f.sp, 48, 3).Key()); ok {
		t.Fatal("uncached engine published to the store")
	}
}

// seedStore pre-loads a fresh store with the same deterministic content for
// every determinism leg: every third valid batch input, at times cheaper
// than the objective would report.
func seedStore(t *testing.T, in []space.Setting) *store.Store {
	t.Helper()
	st := storeAt(t)
	for i, s := range in {
		if i%3 == 0 && s[space.TBX] != 999 {
			st.Put(testPrefix+s.Key(), 0.25+float64(i)/100)
		}
	}
	return st
}

// TestStoreBatchDeterministicAcrossWorkers is the integration's determinism
// pin: identical store content + identical inputs must produce byte-identical
// results, stats (store counters included) and trajectories at any worker
// count.
func TestStoreBatchDeterministicAcrossWorkers(t *testing.T) {
	fRef := newFake(t)
	in := batchInputs(fRef.sp)
	ref := New(fRef, WithWorkers(1), WithStore(seedStore(t, in), testPrefix))
	want := ref.MeasureBatch(in)
	wantSnap := snap(ref)
	if wantSnap.stats.StoreHits == 0 {
		t.Fatalf("seeding produced no store hits: %+v", wantSnap.stats)
	}

	for _, workers := range []int{1, 4, 16, 64} {
		f := newFake(t)
		e := New(f, WithWorkers(workers), WithStore(seedStore(t, in), testPrefix))
		out := e.MeasureBatch(in)
		for i := range in {
			if out[i].MS != want[i].MS || (out[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("workers=%d item %d: %v/%v want %v/%v",
					workers, i, out[i].MS, out[i].Err, want[i].MS, want[i].Err)
			}
		}
		if got := snap(e); !reflect.DeepEqual(got, wantSnap) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", workers, got, wantSnap)
		}
	}
}

// TestStoreHitsJournalAndReplayWithoutStore pins resume independence: a
// store hit is journaled as its own episode class, so a resumed run replays
// it — identical stats, zero objective calls — even when the store is gone
// or has since changed.
func TestStoreHitsJournalAndReplayWithoutStore(t *testing.T) {
	st := storeAt(t)
	f := newFake(t)
	sp := f.sp
	hit, live := variant(sp, 8, 1), variant(sp, 24, 2)
	st.Put(testPrefix+hit.Key(), 0.5)

	j, path := journalAt(t, "fp")
	e := New(f, WithJournal(j), WithStore(st, testPrefix), WithCost(CostModel{CompileS: 1}))
	if ms, err := e.Measure(hit); err != nil || ms != 0.5 {
		t.Fatalf("store hit = %v/%v", ms, err)
	}
	if _, err := e.Measure(live); err != nil {
		t.Fatal(err)
	}
	want := snap(e)
	if want.stats.StoreHits != 1 || want.stats.StoreMisses != 1 {
		t.Fatalf("original stats = %+v", want.stats)
	}
	j.Close()

	// Resume WITHOUT any store: the replayed ClassStore episode serves the
	// recorded time; the replayed live episode still counts no store miss
	// (no store attached).
	j2, err := journal.Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	f2 := newFake(t)
	e2 := New(f2, WithJournal(j2), WithCost(CostModel{CompileS: 1}))
	if ms, err := e2.Measure(hit); err != nil || ms != 0.5 {
		t.Fatalf("replayed store hit = %v/%v", ms, err)
	}
	if _, err := e2.Measure(live); err != nil {
		t.Fatal(err)
	}
	got := snap(e2)
	// The miss counter tracks store consultations, which this storeless
	// resume never makes; everything else must replay exactly.
	want.stats.StoreMisses = 0
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("storeless resume diverged:\n got %+v\nwant %+v", got, want)
	}
	if n := f2.callCount(hit) + f2.callCount(live); n != 0 {
		t.Fatalf("resume re-measured %d times", n)
	}

	// Resume WITH a store whose content has since improved: the journal wins
	// — replay must never re-probe, or resumed runs would depend on store
	// growth.
	st.Put(testPrefix+hit.Key(), 0.0625)
	j3, err := journal.Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	f3 := newFake(t)
	e3 := New(f3, WithJournal(j3), WithStore(st, testPrefix), WithCost(CostModel{CompileS: 1}))
	if ms, err := e3.Measure(hit); err != nil || ms != 0.5 {
		t.Fatalf("replay re-probed a grown store: %v/%v want the journaled 0.5", ms, err)
	}
}

// TestStorePublishBackfillsOnReplay: a replayed success publishes to a store
// attached after the original run, so resume backfills shared state.
func TestStorePublishBackfillsOnReplay(t *testing.T) {
	j, path := journalAt(t, "fp")
	f := newFake(t)
	sp := f.sp
	s := variant(sp, 12, 3)
	e := New(f, WithJournal(j))
	ms, err := e.Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	st := storeAt(t)
	j2, err := journal.Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	e2 := New(newFake(t), WithJournal(j2), WithStore(st, testPrefix))
	if _, err := e2.Measure(s); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(testPrefix + s.Key()); !ok || got != ms {
		t.Fatalf("replayed success not published: %v/%v want %v", got, ok, ms)
	}
}
