package engine

import (
	"errors"
	"sort"

	"repro/internal/journal"
	"repro/internal/sim"
)

// WithJournal attaches a campaign journal to the engine. Every finished
// measurement episode (success, permanent failure, transient exhaustion,
// budget refusal — everything except a context-cancelled abort, which is
// the shutdown itself) is appended to the journal and fsync'd *before* its
// effects reach the engine's accounting state, so a crash at any instant
// loses at most work the engine never accounted.
//
// When the journal was opened on an existing file, its recovered episodes
// become the engine's replay set: the first measurement request for each
// journaled key is served from the journal — through the normal accounting
// path, so cost, stats, trajectory, cache, and quarantine evolve exactly as
// in the original run — instead of reaching the objective. Replay is
// per-key FIFO, so duplicate episodes (transient failures later retried)
// re-play in their original order; once a key's queue drains, further
// requests measure live. Resume therefore requires the campaign itself to
// be deterministic: the resumed run re-executes the same search and asks
// for the same keys, and the journal answers for the prefix already paid
// for (DESIGN.md §6).
func WithJournal(j *journal.Journal) Option {
	return func(e *Engine) { e.jr = j }
}

// WithRepeats makes every measurement attempt call the objective n times,
// scoring the setting by the median (noise-robust, the standard benchmark
// practice) while charging the virtual clock for every repeat. n <= 1 is a
// single call per attempt — the historical behaviour, bit-for-bit.
func WithRepeats(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.repeats = n
	}
}

// AttemptRestorer is implemented by stateful objectives (the fault
// injector) whose behaviour depends on how often each setting was measured.
// On resume the engine restores the per-key objective-call counts recorded
// in the journal, so a wrapped objective's per-attempt decisions continue
// exactly where the crashed run stopped.
type AttemptRestorer interface {
	RestoreAttempts(calls map[string]int)
}

// initReplay turns the journal's recovered episodes into per-key FIFO
// replay queues and restores attempt counters down the objective chain.
// Called once from New after options are applied.
func (e *Engine) initReplay() {
	rec := e.jr.Recovered()
	if len(rec) == 0 {
		return
	}
	e.replay = make(map[string][]journal.Episode, len(rec))
	calls := make(map[string]int, len(rec))
	for _, r := range rec {
		e.replay[r.Key] = append(e.replay[r.Key], r)
		calls[r.Key] += r.Calls
	}
	e.replayPending = len(rec)
	for obj := e.obj; obj != nil; {
		if ar, ok := obj.(AttemptRestorer); ok {
			ar.RestoreAttempts(calls)
			break
		}
		u, ok := obj.(interface{ Unwrap() sim.Objective })
		if !ok {
			break
		}
		obj = u.Unwrap()
	}
}

// replayPop serves the next journaled episode for key, if any.
func (e *Engine) replayPop(key string) (episode, bool) {
	if e.replay == nil {
		return episode{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	q := e.replay[key]
	if len(q) == 0 {
		return episode{}, false
	}
	r := q[0]
	if len(q) == 1 {
		delete(e.replay, key)
	} else {
		e.replay[key] = q[1:]
	}
	e.replayPending--
	e.replayed++
	return episodeFromRecord(r), true
}

// ReplayPending returns how many journaled episodes are still waiting to be
// replayed; a resumed campaign that re-executes deterministically drains
// this to zero before its first live measurement of a journaled key.
func (e *Engine) ReplayPending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replayPending
}

// Replayed returns how many measurement episodes were served from the
// journal instead of the objective.
func (e *Engine) Replayed() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replayed
}

// JournalErr returns the sticky journal-write error, if any: once an append
// or checkpoint fails, the engine refuses further measurements rather than
// silently running an unjournaled (unresumable) campaign.
func (e *Engine) JournalErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.journalErr
}

// episodeFromRecord reconstructs the in-memory episode a journal record was
// written from. The error is rebuilt by class — Classify drives every
// accounting decision, so class fidelity (plus the message) is all replay
// needs.
func episodeFromRecord(r journal.Episode) episode {
	ep := episode{
		attempts:  r.Attempts,
		calls:     r.Calls,
		transient: r.Transient,
		timeouts:  r.Timeouts,
		backoffS:  r.BackoffS,
		replayed:  true,
	}
	switch r.Class {
	case journal.ClassOK:
		ep.ms, ep.msSum = r.MS, r.MSSum
	case journal.ClassStore:
		ep.ms, ep.msSum = r.MS, r.MSSum
		ep.fromStore = true
	case journal.ClassBudget:
		ep.err = ErrBudget
	case journal.ClassTransient:
		ep.err = Transient(errors.New(r.Err))
	default:
		ep.err = errors.New(r.Err)
	}
	return ep
}

// recordFromEpisode converts one finished episode into its durable record.
// costS is the total virtual cost the episode is about to be charged.
func recordFromEpisode(key string, ep episode, costS float64) journal.Episode {
	r := journal.Episode{
		Key:       key,
		Attempts:  ep.attempts,
		Calls:     ep.calls,
		Transient: ep.transient,
		Timeouts:  ep.timeouts,
		BackoffS:  ep.backoffS,
		CostS:     costS,
	}
	if ep.err == nil {
		if ep.fromStore {
			// A store hit is durable as its own class so a resumed run
			// replays the hit instead of re-probing a store that may have
			// grown since — resume must not depend on store content.
			r.Class = journal.ClassStore
		} else {
			r.Class = journal.ClassOK
		}
		r.MS, r.MSSum = ep.ms, ep.msSum
		return r
	}
	r.Err = ep.err.Error()
	switch Classify(ep.err) {
	case ClassBudget:
		r.Class = journal.ClassBudget
	case ClassTransient:
		r.Class = journal.ClassTransient
	default:
		r.Class = journal.ClassPermanent
	}
	return r
}

// episodeCostS prices one finished episode exactly as accountEpisode will
// charge it, so the journal record carries the true cost.
func (e *Engine) episodeCostS(ep episode) float64 {
	if ep.fromStore {
		return 0 // the measurement was paid for by a previous campaign
	}
	if ep.err == nil {
		return ep.backoffS + e.cost.CompileS + float64(e.cost.Reps)*ep.msSum/1000
	}
	if Classify(ep.err) == ClassCanceled {
		return 0
	}
	return ep.backoffS + e.cost.CheckS
}

// summaryLocked snapshots the engine state for a checkpoint. Callers hold
// e.mu.
func (e *Engine) summaryLocked() journal.Summary {
	st := e.statsLocked()
	s := journal.Summary{
		SpentS:          e.spentS,
		BudgetS:         e.budgetS,
		Evaluations:     st.Evaluations,
		CacheHits:       st.CacheHits,
		Invalid:         st.Invalid,
		BudgetTrips:     st.BudgetTrips,
		Transient:       st.Transient,
		Retries:         st.Retries,
		Timeouts:        st.Timeouts,
		Quarantined:     st.Quarantined,
		QuarantineSkips: st.QuarantineSkips,
		Canceled:        st.Canceled,
		StoreHits:       st.StoreHits,
		StoreMisses:     st.StoreMisses,
		WarmStartSeeds:  st.WarmStartSeeds,
		//cstlint:allow lockcall(the injected clock is a sub-microsecond read that never re-enters the engine)
		WallUnixNano: e.clock().UnixNano(),
	}
	if e.best >= 0 {
		s.BestKey = e.bestSet.Key()
		s.BestMS = e.best
	}
	for k := range e.quar {
		s.Quarantine = append(s.Quarantine, k)
	}
	sort.Strings(s.Quarantine)
	return s
}

// journalEpisodeLocked write-ahead logs one live finished episode: the
// record is durable before accountEpisode mutates any state. A journal
// write failure is sticky — the engine fails fast rather than silently
// continuing a campaign whose journal no longer matches its state. Callers
// hold e.mu; returns false when the caller must abort accounting.
func (e *Engine) journalEpisodeLocked(key string, ep episode) error {
	if e.jr == nil || ep.replayed {
		return nil
	}
	if ep.err != nil && Classify(ep.err) == ClassCanceled {
		// A cancelled episode is the shutdown itself: it charges nothing,
		// mutates nothing durable, and the resumed run re-measures the key.
		return nil
	}
	if e.journalErr != nil {
		return e.journalErr
	}
	if err := e.jr.Append(recordFromEpisode(key, ep, e.episodeCostS(ep))); err != nil {
		e.journalErr = err
		return err
	}
	return nil
}

// maybeCheckpointLocked compacts the journal on its configured period, with
// the engine's post-accounting state as the checkpoint summary. Callers
// hold e.mu.
func (e *Engine) maybeCheckpointLocked() {
	if e.jr == nil || e.journalErr != nil {
		return
	}
	if err := e.jr.MaybeCheckpoint(e.summaryLocked()); err != nil {
		e.journalErr = err
	}
}
