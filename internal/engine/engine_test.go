package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

// fakeObj is a deterministic objective double: time = TBx + TBy/100, with
// TBx == 999 marking an invalid setting. It counts inner calls per key.
type fakeObj struct {
	sp *space.Space

	mu    sync.Mutex
	calls map[string]int
	// next, when non-nil, overrides the next Measure outcome once.
	next error
}

var errFakeInvalid = errors.New("fake: invalid setting")

func newFake(t testing.TB) *fakeObj {
	t.Helper()
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	return &fakeObj{sp: sp, calls: map[string]int{}}
}

func (f *fakeObj) Space() *space.Space { return f.sp }

func (f *fakeObj) Measure(s space.Setting) (float64, error) {
	f.mu.Lock()
	f.calls[s.Key()]++
	next := f.next
	f.next = nil
	f.mu.Unlock()
	if next != nil {
		return 0, next
	}
	if s[space.TBX] == 999 {
		return 0, errFakeInvalid
	}
	return float64(s[space.TBX]) + float64(s[space.TBY])/100, nil
}

func (f *fakeObj) callCount(s space.Setting) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[s.Key()]
}

// variant returns the default setting with TBx/TBy overridden.
func variant(sp *space.Space, tbx, tby int) space.Setting {
	s := sp.Default()
	s[space.TBX] = tbx
	s[space.TBY] = tby
	return s
}

func TestMeasureMemoizes(t *testing.T) {
	f := newFake(t)
	e := New(f)
	s := variant(f.sp, 64, 4)
	ms1, err := e.Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	ms2, err := e.Measure(s)
	if err != nil || ms2 != ms1 {
		t.Fatalf("cached re-probe = %v/%v, want %v", ms2, err, ms1)
	}
	if n := f.callCount(s); n != 1 {
		t.Fatalf("inner measured %d times, want 1", n)
	}
	st := e.Stats()
	if st.Evaluations != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidErrorsAreCached(t *testing.T) {
	f := newFake(t)
	e := New(f, WithCost(CostModel{CompileS: 1, CheckS: 0.25}))
	bad := variant(f.sp, 999, 1)
	_, err1 := e.Measure(bad)
	_, err2 := e.Measure(bad)
	if !errors.Is(err1, errFakeInvalid) || !errors.Is(err2, errFakeInvalid) {
		t.Fatalf("errors = %v / %v", err1, err2)
	}
	if n := f.callCount(bad); n != 1 {
		t.Fatalf("invalid setting re-measured: %d inner calls", n)
	}
	st := e.Stats()
	if st.Invalid != 1 || st.CacheHits != 1 || st.Evaluations != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SpentS != 0.25 {
		t.Fatalf("invalid setting charged %v, want one CheckS", st.SpentS)
	}
}

func TestErrBudgetIsNotCached(t *testing.T) {
	f := newFake(t)
	e := New(f)
	s := variant(f.sp, 32, 2)
	f.next = ErrBudget // inner (stacked) objective out of budget once
	if _, err := e.Measure(s); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v", err)
	}
	ms, err := e.Measure(s)
	if err != nil || ms <= 0 {
		t.Fatalf("transient ErrBudget was cached: %v/%v", ms, err)
	}
	if n := f.callCount(s); n != 2 {
		t.Fatalf("inner calls = %d, want 2", n)
	}
}

func TestBudgetEnforcement(t *testing.T) {
	f := newFake(t)
	e := New(f, WithCost(CostModel{CompileS: 10}), WithBudget(15))
	a := variant(f.sp, 64, 4)
	if _, err := e.Measure(a); err != nil {
		t.Fatal(err)
	}
	if e.Exhausted() {
		t.Fatal("budget should survive one eval")
	}
	if _, err := e.Measure(variant(f.sp, 32, 2)); err != nil {
		t.Fatal(err)
	}
	if !e.Exhausted() {
		t.Fatalf("spent %v of 15, should be exhausted", e.SpentS())
	}
	if _, err := e.Measure(variant(f.sp, 16, 1)); !errors.Is(err, ErrBudget) {
		t.Fatalf("fresh setting after exhaustion: %v", err)
	}
	if ms, err := e.Measure(a); err != nil || ms <= 0 {
		t.Fatalf("cached setting must stay free after exhaustion: %v/%v", ms, err)
	}
	st := e.Stats()
	if st.BudgetTrips != 1 {
		t.Fatalf("BudgetTrips = %d, want 1", st.BudgetTrips)
	}
}

// batchInputs builds a batch mixing fresh, duplicate and invalid settings.
func batchInputs(sp *space.Space) []space.Setting {
	var in []space.Setting
	for i := 0; i < 24; i++ {
		switch i % 4 {
		case 0:
			in = append(in, variant(sp, 32+i, 1))
		case 1:
			in = append(in, variant(sp, 999, i)) // invalid
		case 2:
			in = append(in, variant(sp, 32, 7)) // duplicate of one key
		default:
			in = append(in, variant(sp, 64, i))
		}
	}
	return in
}

func TestMeasureBatchMatchesSequential(t *testing.T) {
	fSeq := newFake(t)
	in := batchInputs(fSeq.sp)

	// Reference: one-by-one Measure on a sequential engine.
	seq := New(fSeq, WithWorkers(1))
	wantMS := make([]float64, len(in))
	wantErr := make([]error, len(in))
	for i, s := range in {
		wantMS[i], wantErr[i] = seq.Measure(s)
	}

	for _, workers := range []int{1, 4, 16} {
		f := newFake(t)
		e := New(f, WithWorkers(workers))
		out := e.MeasureBatch(in)
		for i := range in {
			if out[i].MS != wantMS[i] || (out[i].Err == nil) != (wantErr[i] == nil) {
				t.Fatalf("workers=%d item %d: got %v/%v want %v/%v",
					workers, i, out[i].MS, out[i].Err, wantMS[i], wantErr[i])
			}
		}
		if got, want := e.Stats(), seq.Stats(); got != want {
			t.Fatalf("workers=%d stats diverge: %+v vs %+v", workers, got, want)
		}
		gt, st := e.Trajectory(), seq.Trajectory()
		if len(gt) != len(st) {
			t.Fatalf("workers=%d trajectory length %d vs %d", workers, len(gt), len(st))
		}
		for i := range gt {
			if gt[i] != st[i] {
				t.Fatalf("workers=%d trajectory[%d] = %+v vs %+v", workers, i, gt[i], st[i])
			}
		}
	}
}

func TestMeasureBatchBudgetCutoffInInputOrder(t *testing.T) {
	f := newFake(t)
	// Budget admits exactly two compilations.
	e := New(f, WithCost(CostModel{CompileS: 10}), WithBudget(20), WithWorkers(8))
	in := []space.Setting{
		variant(f.sp, 32, 1), variant(f.sp, 64, 1),
		variant(f.sp, 128, 1), variant(f.sp, 256, 1),
	}
	out := e.MeasureBatch(in)
	for i := 0; i < 2; i++ {
		if out[i].Err != nil {
			t.Fatalf("item %d within budget errored: %v", i, out[i].Err)
		}
	}
	for i := 2; i < 4; i++ {
		if !errors.Is(out[i].Err, ErrBudget) {
			t.Fatalf("item %d past budget: %v", i, out[i].Err)
		}
	}
	if st := e.Stats(); st.Evaluations != 2 || st.BudgetTrips != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentMeasureIsSafeAndConverges(t *testing.T) {
	f := newFake(t)
	e := New(f)
	sets := make([]space.Setting, 50)
	for i := range sets {
		sets[i] = variant(f.sp, 16+i, i%8)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for k := 0; k < 200; k++ {
				s := sets[rng.Intn(len(sets))]
				if ms, err := e.Measure(s); err != nil || ms <= 0 {
					t.Errorf("measure: %v/%v", ms, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	_, best, ok := e.Best()
	if !ok || best != 16 { // variant(16, 0) is the fastest by construction
		t.Fatalf("best = %v/%v, want 16", best, ok)
	}
	// Every key measured at most... the engine has no singleflight, so a
	// concurrent first probe may double-measure; but the cache must bound it
	// far below the 1600 total probes.
	if st := e.Stats(); st.Evaluations > 2*len(sets) || st.CacheHits == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunIsUnmeteredAndPrewarmsCache(t *testing.T) {
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	e := New(s, WithBudget(5), WithCost(CostModel{CompileS: 10}))
	if !e.CanCollect() {
		t.Fatal("simulator-backed engine must collect")
	}
	set := sp.Default()
	res, err := e.Run(set)
	if err != nil || res == nil || res.TimeMS <= 0 {
		t.Fatalf("Run = %v/%v", res, err)
	}
	if st := e.Stats(); st.SpentS != 0 || st.Evaluations != 0 {
		t.Fatalf("offline Run was metered: %+v", st)
	}
	// Second Run serves the cached result.
	if _, err := e.Run(set); err != nil {
		t.Fatal(err)
	}
	if e.Stats().CacheHits != 1 {
		t.Fatalf("CacheHits = %d", e.Stats().CacheHits)
	}
	// Run pre-warms the Measure cache: no budget charge, same time.
	ms, err := e.Measure(set)
	if err != nil || ms != res.TimeMS {
		t.Fatalf("Measure after Run = %v/%v, want %v", ms, err, res.TimeMS)
	}
	if e.SpentS() != 0 {
		t.Fatal("pre-warmed Measure consumed budget")
	}
}

func TestRunBatchOrdered(t *testing.T) {
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	e := New(s, WithWorkers(8))
	rng := rand.New(rand.NewSource(11))
	in := make([]space.Setting, 32)
	for i := range in {
		in[i] = sp.Random(rng)
	}
	res, errs := e.RunBatch(in)
	for i := range in {
		if errs[i] != nil {
			continue
		}
		want, err := s.Run(in[i])
		if err != nil || res[i].TimeMS != want.TimeMS {
			t.Fatalf("item %d: %v vs %v (%v)", i, res[i].TimeMS, want, err)
		}
	}
}

func TestRunWithoutRunner(t *testing.T) {
	f := newFake(t)
	e := New(f)
	if e.CanCollect() {
		t.Fatal("fake objective cannot collect")
	}
	if _, err := e.Run(f.sp.Default()); !errors.Is(err, ErrNoRunner) {
		t.Fatalf("err = %v", err)
	}
}

func TestFromReusesEngine(t *testing.T) {
	f := newFake(t)
	e := New(f)
	if From(e) != e {
		t.Fatal("From must return an existing engine unchanged")
	}
	if From(f) == nil || From(f) == e {
		t.Fatal("From must wrap a plain objective in a fresh engine")
	}
}

func TestSpansAggregate(t *testing.T) {
	f := newFake(t)
	e := New(f)
	e.Time("grouping")()
	e.Time("search")()
	e.Time("search")()
	spans := e.Spans()
	if len(spans) != 2 || spans[0].Name != "grouping" || spans[1].Name != "search" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[1].Count != 2 {
		t.Fatalf("search span count = %d", spans[1].Count)
	}
}

func TestWithoutCache(t *testing.T) {
	f := newFake(t)
	e := New(f, WithoutCache())
	s := variant(f.sp, 64, 1)
	e.Measure(s)
	e.Measure(s)
	if n := f.callCount(s); n != 2 {
		t.Fatalf("WithoutCache inner calls = %d, want 2", n)
	}
	if e.Stats().CacheHits != 0 {
		t.Fatal("cache hit counted with cache disabled")
	}
}

func TestArchitectureForwarding(t *testing.T) {
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	if arch := New(s).Architecture(); arch == nil || arch.Name != "A100" {
		t.Fatalf("arch = %v", arch)
	}
	if New(newFake(t)).Architecture() != nil {
		t.Fatal("fake objective has no architecture")
	}
	if sim.ArchOf(New(s)) == nil {
		t.Fatal("ArchOf must see through the engine")
	}
}
