package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/space"
	"repro/internal/stencil"
)

// seqObj returns a scripted sequence of times for one key, cycling.
type seqObj struct {
	sp *space.Space

	mu    sync.Mutex
	times []float64
	errAt int // 1-based call index that fails (0 = never)
	calls int
}

func newSeq(t testing.TB, times []float64) *seqObj {
	t.Helper()
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	return &seqObj{sp: sp, times: times}
}

func (o *seqObj) Space() *space.Space { return o.sp }

func (o *seqObj) Measure(s space.Setting) (float64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.calls++
	if o.errAt > 0 && o.calls == o.errAt {
		return 0, Transient(errors.New("scripted failure"))
	}
	return o.times[(o.calls-1)%len(o.times)], nil
}

func (o *seqObj) callCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.calls
}

func TestWithRepeatsMedianScoredSumCharged(t *testing.T) {
	obj := newSeq(t, []float64{30, 10, 20}) // median 20, sum 60
	sp := obj.Space()
	eng := New(obj, WithRepeats(3), WithCost(CostModel{CompileS: 1, Reps: 2}))
	ms, err := eng.Measure(variant(sp, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if ms != 20 {
		t.Fatalf("median = %v, want 20", ms)
	}
	if obj.callCount() != 3 {
		t.Fatalf("objective called %d times, want 3", obj.callCount())
	}
	// Charge: CompileS + Reps × (sum of repeats)/1000 = 1 + 2×60/1000.
	if want := 1 + 2*60.0/1000; eng.SpentS() != want {
		t.Fatalf("SpentS = %v, want %v", eng.SpentS(), want)
	}
}

func TestWithRepeatsEvenCountAveragesMiddlePair(t *testing.T) {
	obj := newSeq(t, []float64{40, 10, 30, 20}) // sorted 10,20,30,40 → median 25
	sp := obj.Space()
	eng := New(obj, WithRepeats(4))
	ms, err := eng.Measure(variant(sp, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if ms != 25 {
		t.Fatalf("median = %v, want 25", ms)
	}
}

func TestWithRepeatsFailedRepeatFailsAttemptAndRetries(t *testing.T) {
	obj := newSeq(t, []float64{10, 10, 10})
	obj.errAt = 2 // second objective call fails transiently
	sp := obj.Space()
	eng := New(obj, WithRepeats(3), WithRetry(RetryPolicy{MaxAttempts: 2, BackoffS: 0}))
	ms, err := eng.Measure(variant(sp, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if ms != 10 {
		t.Fatalf("ms = %v, want 10", ms)
	}
	// Attempt 1: calls 1, 2 (fails). Attempt 2: calls 3, 4, 5.
	if obj.callCount() != 5 {
		t.Fatalf("objective called %d times, want 5", obj.callCount())
	}
	if s := eng.Stats(); s.Retries != 1 || s.Transient != 1 {
		t.Fatalf("stats = %+v, want 1 retry, 1 transient", s)
	}
}

func TestWithRepeatsOneIsIdentityArithmetic(t *testing.T) {
	// n=1 must preserve the historical charge bit-for-bit: one measurement,
	// msSum == ms.
	sp := newFake(t).Space()
	a := New(newFake(t), WithCost(DefaultCostModel()))
	b := New(newFake(t), WithCost(DefaultCostModel()), WithRepeats(1))
	s := variant(sp, 3, 7)
	msA, errA := a.Measure(s)
	msB, errB := b.Measure(s)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if msA != msB || a.SpentS() != b.SpentS() {
		t.Fatalf("WithRepeats(1) diverged: ms %v vs %v, spent %v vs %v", msA, msB, a.SpentS(), b.SpentS())
	}
}
