// Package engine is the unified evaluation engine: the single measurement
// path every auto-tuner in this repository goes through. It wraps any
// sim.Objective with
//
//   - a concurrency-safe memoizing cache keyed on the setting, which caches
//     invalid-setting errors (deterministic: the same setting always fails)
//     but never sim.ErrBudget (transient: a later run of the same engine
//     family may still measure the setting);
//   - unified virtual-budget enforcement — the harness cost model charges a
//     compilation cost per distinct measured setting and a check cost per
//     rejected one, and the engine refuses further measurements once the
//     budget is spent;
//   - best-so-far tracking with a full trajectory (best time after k
//     evaluations / after s virtual seconds), which the iso-iteration and
//     iso-time protocols query;
//   - an observability surface: per-run counters (evaluations, cache hits,
//     invalid settings, budget trips) and named timing spans that flow into
//     core.Report.
//
// Parallel evaluation goes through MeasureBatch/RunBatch (engine_batch): a
// bounded worker pool with deterministic, input-ordered results and
// sequential accounting, so a parallel run is byte-identical to a serial one.
package engine

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gpu"
	"repro/internal/journal"
	"repro/internal/sim"
	"repro/internal/space"
)

// ErrBudget re-exports the transient budget error tuners test for.
var ErrBudget = sim.ErrBudget

// CostModel prices one evaluation on the virtual clock (folded in from the
// harness meter; see DESIGN.md — compilation dominates real auto-tuning).
type CostModel struct {
	// CompileS is charged per distinct measured setting (nvcc + load).
	CompileS float64
	// Reps is how many times the kernel runs per measurement; the run time
	// itself is the simulated kernel time.
	Reps int
	// CheckS is charged per rejected setting (constraint check only).
	CheckS float64
}

// DefaultCostModel approximates the paper's testbed: a few seconds of nvcc
// per variant dominates, with kernels re-run a handful of times.
func DefaultCostModel() CostModel {
	return CostModel{CompileS: 1.5, Reps: 3, CheckS: 0.005}
}

// Point is one trajectory sample: after spending CostS virtual seconds and
// Evals measurements, the best time seen so far was BestMS.
type Point struct {
	CostS  float64
	Evals  int
	BestMS float64
}

// Stats is the engine's per-run counter snapshot.
type Stats struct {
	// Evaluations counts successful objective measurements (cache misses
	// that produced a time).
	Evaluations int
	// CacheHits counts measurements served from the memoizing cache,
	// including cached invalid-setting errors.
	CacheHits int
	// Invalid counts invalid-setting errors observed from the objective
	// (each is cached, so it is charged at most once).
	Invalid int
	// BudgetTrips counts measurements refused because the virtual budget
	// was already spent.
	BudgetTrips int
	// Transient counts transient measurement errors observed from the
	// objective (injected faults, flaky timers, per-measurement timeouts).
	Transient int
	// Retries counts re-attempts after transient failures (attempts beyond
	// the first, across all measurement episodes).
	Retries int
	// Timeouts counts single attempts that exceeded the per-measurement
	// deadline (a subset of Transient).
	Timeouts int
	// Quarantined counts settings the engine has permanently given up on.
	Quarantined int
	// QuarantineSkips counts measurements refused because the setting was
	// already quarantined.
	QuarantineSkips int
	// Canceled counts measurements aborted or refused by run-level context
	// cancellation.
	Canceled int
	// StoreHits counts measurement episodes served from the cross-campaign
	// result store (WithStore) instead of the objective. Store hits charge
	// zero budget and do not count as Evaluations.
	StoreHits int
	// StoreMisses counts measurement episodes that consulted the store and
	// had to measure (or fail) live.
	StoreMisses int
	// WarmStartSeeds counts prior-best settings injected into this run's
	// search from the store (sampling set + GA initial population).
	WarmStartSeeds int
	// DirSyncErrs counts the journal's directory-fsync failures: appends
	// and checkpoints durable in the file whose directory entry may not
	// survive a power loss. Environment weather, not run semantics — it is
	// excluded from the campaign canonical string (a run on a flaky disk
	// still computes the same result).
	DirSyncErrs int
	// StorePutDrops counts publishes to a degraded (read-only) result
	// store: the in-memory index took them, but nothing persisted.
	// Environment weather like DirSyncErrs, excluded from canonical.
	StorePutDrops int
	// SpentS is the virtual seconds consumed so far.
	SpentS float64
}

// Span is one aggregated named timing span (e.g. a pipeline stage).
type Span struct {
	Name  string
	Count int
	Total time.Duration
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithCost sets the virtual cost model (defaults to DefaultCostModel).
func WithCost(c CostModel) Option { return func(e *Engine) { e.cost = c } }

// WithBudget stops the engine once the virtual clock passes budgetS seconds;
// 0 means unlimited (iso-iteration runs use evaluation counts instead).
func WithBudget(budgetS float64) Option { return func(e *Engine) { e.budgetS = budgetS } }

// WithWorkers bounds the batch worker pool (defaults to GOMAXPROCS, capped
// at 16); n < 1 resets to the default.
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// WithoutCache disables memoization — every Measure reaches the objective.
// Used by studies that want raw measurement counts.
func WithoutCache() Option { return func(e *Engine) { e.noCache = true } }

// WithRetry sets the transient-failure retry policy (defaults to
// DefaultRetryPolicy; MaxAttempts 1 disables retries).
func WithRetry(p RetryPolicy) Option { return func(e *Engine) { e.retry = p } }

// WithSeed seeds the deterministic backoff jitter (defaults to 0; retry
// schedules are a pure function of seed, setting key and attempt number).
func WithSeed(seed uint64) Option { return func(e *Engine) { e.seed = seed } }

// WithMeasureTimeout bounds every single measurement attempt by a wall-clock
// deadline; a timed-out attempt is classified transient and retried. 0 (the
// default) disables the watchdog.
func WithMeasureTimeout(d time.Duration) Option { return func(e *Engine) { e.measureTimeout = d } }

// WithQuarantine quarantines a setting after n definitively-failed
// measurement episodes (permanent errors or exhausted retries); n <= 0
// disables quarantine. Defaults to DefaultQuarantineAfter.
func WithQuarantine(n int) Option { return func(e *Engine) { e.quarAfter = n } }

// DefaultQuarantineAfter is the default episode-failure threshold. With the
// cache enabled a permanent error is memoized after its first episode, so
// quarantine matters mainly for settings that keep failing transiently.
const DefaultQuarantineAfter = 3

// Engine implements sim.Objective over an inner objective. It is safe for
// concurrent use: csTuner's GA measures from several goroutines, and the
// batch APIs run a worker pool.
type Engine struct {
	obj            sim.Objective
	cost           CostModel
	budgetS        float64
	workers        int
	noCache        bool
	retry          RetryPolicy
	seed           uint64
	measureTimeout time.Duration
	quarAfter      int
	repeats        int
	jr             *journal.Journal
	clock          Clock

	// cache is the sharded memo store (cache.go): hits are lock-free reads
	// of atomically-published immutable entries and never touch mu. The hit
	// counter rides beside it as an atomic so the hot path stays lock-free;
	// Stats() folds it back into the snapshot.
	cache     *stripedCache
	cacheHits atomic.Int64

	// store is the optional cross-campaign result store (store.go):
	// consulted on a memo-cache miss before measuring, published back on
	// every successful episode. Probes are lock-free; the counters are
	// atomics folded in by statsLocked, like cacheHits.
	store       resultStore
	storePrefix string
	storeHits   atomic.Int64
	storeMisses atomic.Int64
	warmSeeds   atomic.Int64
	storeDrops  atomic.Int64

	mu        sync.Mutex
	permFails map[string]int
	quar      map[string]struct{}

	// journal replay/recording state (engine_journal).
	replay        map[string][]journal.Episode
	replayPending int
	replayed      int
	journalErr    error

	// sfMu/inflight give MeasureCtx per-key singleflight: concurrent
	// requests for one uncached key collapse onto a single measurement
	// episode, so the measurement history is independent of goroutine
	// scheduling — the property journal replay depends on.
	sfMu     sync.Mutex
	inflight map[string]chan struct{}

	spentS  float64
	evals   int
	best    float64
	bestSet space.Setting
	traj    []Point

	stats Stats
	spans map[string]*Span
	order []string // span first-use order
}

// New wraps obj in a fresh engine.
func New(obj sim.Objective, opts ...Option) *Engine {
	e := &Engine{
		obj:       obj,
		cost:      DefaultCostModel(),
		best:      -1,
		retry:     DefaultRetryPolicy(),
		quarAfter: DefaultQuarantineAfter,
		cache:     newStripedCache(),
		permFails: map[string]int{},
		quar:      map[string]struct{}{},
		spans:     map[string]*Span{},
		inflight:  map[string]chan struct{}{},
		clock:     time.Now, // value use: the sanctioned wall-clock seam (see Clock)
	}
	for _, o := range opts {
		o(e)
	}
	if e.noCache {
		// Uncached engines exist to count raw measurements; serving some of
		// them from a shared store would change their semantics.
		e.store = nil
	}
	if e.workers < 1 {
		e.workers = runtime.GOMAXPROCS(0)
		if e.workers > 16 {
			e.workers = 16
		}
	}
	if e.jr != nil {
		e.initReplay()
	}
	return e
}

// From returns obj itself when it already is an engine — tuners call it so
// stacked layers (harness budget engine → baseline adapter → core pipeline)
// share one cache, one budget, and one stats surface — and otherwise wraps
// obj in a fresh engine with the given options.
func From(obj sim.Objective, opts ...Option) *Engine {
	if e, ok := obj.(*Engine); ok {
		return e
	}
	return New(obj, opts...)
}

// Space implements sim.Objective.
func (e *Engine) Space() *space.Space { return e.obj.Space() }

// Architecture implements sim.ArchProvider by forwarding the wrapped
// objective's GPU model, so the codegen stage survives engine wrapping.
func (e *Engine) Architecture() *gpu.Arch {
	if ap, ok := e.obj.(sim.ArchProvider); ok {
		return ap.Architecture()
	}
	return nil
}

// Unwrap returns the inner objective.
func (e *Engine) Unwrap() sim.Objective { return e.obj }

// Measure implements sim.Objective: cache lookup, then quarantine and budget
// enforcement, then one retrying measurement episode against the inner
// objective. It is MeasureCtx without a run context.
func (e *Engine) Measure(s space.Setting) (float64, error) {
	return e.MeasureCtx(context.Background(), s)
}

// lookup consults the cache; ok=false means the setting must be measured.
// Hits are lock-free reads of the striped store — the engine mutex guards
// accounting only, never the memo maps (DESIGN.md §12).
func (e *Engine) lookup(key string) (float64, error, bool) {
	if e.noCache {
		return 0, nil, false
	}
	if ms, err, ok := e.cache.measureLookup(key); ok {
		e.cacheHits.Add(1)
		return ms, err, true
	}
	return 0, nil, false
}

// exhausted reports whether the budget is spent, optionally counting the
// refusal as a budget trip.
func (e *Engine) exhausted(trip bool) bool {
	if e.budgetS <= 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.spentS < e.budgetS {
		return false
	}
	if trip {
		e.stats.BudgetTrips++
	}
	return true
}

// Exhausted reports whether the budget has been spent; tuners poll this as
// their stop function.
func (e *Engine) Exhausted() bool { return e.exhausted(false) }

// SpentS returns the virtual seconds consumed so far.
func (e *Engine) SpentS() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.spentS
}

// ChargeS adds out-of-band cost (e.g. csTuner's real pre-processing time)
// to the virtual clock.
func (e *Engine) ChargeS(s float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.spentS += s
	e.stats.SpentS = e.spentS
}

// Evals returns the number of successful measurements.
func (e *Engine) Evals() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evals
}

// Best returns the best observation, or ok=false when nothing measured.
func (e *Engine) Best() (space.Setting, float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.best < 0 {
		return nil, 0, false
	}
	return e.bestSet.Clone(), e.best, true
}

// BestAtEvals returns the best time after the first n measurements, or
// ok=false when fewer than one measurement happened.
func (e *Engine) BestAtEvals(n int) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.traj) == 0 || n < 1 {
		return 0, false
	}
	i := sort.Search(len(e.traj), func(k int) bool { return e.traj[k].Evals > n })
	if i == 0 {
		return 0, false
	}
	return e.traj[i-1].BestMS, true
}

// BestAtCost returns the best time once the virtual clock reached s seconds.
func (e *Engine) BestAtCost(s float64) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.traj) == 0 {
		return 0, false
	}
	i := sort.Search(len(e.traj), func(k int) bool { return e.traj[k].CostS > s })
	if i == 0 {
		return 0, false
	}
	return e.traj[i-1].BestMS, true
}

// Trajectory returns a copy of the recorded points.
func (e *Engine) Trajectory() []Point {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Point(nil), e.traj...)
}

// Stats returns a snapshot of the per-run counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statsLocked()
}

// statsLocked folds the lock-free hit counter into the mutex-guarded
// counters. Callers hold e.mu. Between concurrent operations the fold is a
// consistent point-in-time sum; after a run quiesces it equals the
// sequential count exactly, which is what the determinism goldens compare.
func (e *Engine) statsLocked() Stats {
	st := e.stats
	st.CacheHits = int(e.cacheHits.Load())
	st.StoreHits = int(e.storeHits.Load())
	st.StoreMisses = int(e.storeMisses.Load())
	st.WarmStartSeeds = int(e.warmSeeds.Load())
	st.StorePutDrops = int(e.storeDrops.Load())
	if e.jr != nil {
		// Degradation weather from the journal: counted there (the append
		// path owns the failures), folded here so one Stats snapshot carries
		// the whole per-run degradation picture.
		st.DirSyncErrs = int(e.jr.DirSyncErrs())
	}
	return st
}

// Workers returns the batch worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

// Time starts a named timing span and returns its stop function; repeated
// spans of the same name aggregate. Pipeline stages use it so per-stage
// durations surface on the report:
//
//	defer eng.Time("grouping")()
func (e *Engine) Time(name string) func() {
	start := e.clock()
	return func() { e.ObserveSpan(name, e.clock().Sub(start)) }
}

// ObserveSpan records one already-measured duration under a named span —
// for callers whose interval has no tidy start/stop bracketing, such as the
// pipeline marking the cancellation point of a cut-short run.
func (e *Engine) ObserveSpan(name string, d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sp := e.spans[name]
	if sp == nil {
		sp = &Span{Name: name}
		e.spans[name] = sp
		e.order = append(e.order, name)
	}
	sp.Count++
	sp.Total += d
}

// Spans returns the aggregated timing spans in first-use order.
func (e *Engine) Spans() []Span {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Span, 0, len(e.order))
	for _, name := range e.order {
		out = append(out, *e.spans[name])
	}
	return out
}

var (
	_ sim.Objective    = (*Engine)(nil)
	_ sim.ArchProvider = (*Engine)(nil)
)
