package engine

import (
	"sync"
	"time"
)

// Clock is the engine's injectable wall-clock source: the single sanctioned
// seam through which engine- and pipeline-level code reads real time. Every
// wall-clock read that can reach a report (timing spans, the overhead
// breakdown, journal checkpoint stamps) goes through the engine's clock, so
//
//   - tests drive spans deterministically by installing a fake clock, and
//   - the nodeterm static analyzer can ban raw time.Now/time.Since calls in
//     result-affecting packages outright: referencing time.Now as a *value*
//     (to install it as the default Clock) is the one sanctioned pattern.
//
// The wall clock never feeds accounting — budgets, trajectories and results
// run on the virtual clock (SpentS) — so Clock affects observability only.
type Clock func() time.Time

// WithClock installs clock as the engine's wall-clock source; nil keeps the
// default (the real time.Now).
func WithClock(c Clock) Option {
	return func(e *Engine) {
		if c != nil {
			e.clock = c
		}
	}
}

// Now reads the engine's wall clock. Pipeline stages use it (instead of raw
// time.Now) for the Overhead breakdown, so a fake clock makes the whole
// report — spans included — reproducible byte-for-byte.
func (e *Engine) Now() time.Time { return e.clock() }

// FakeClock returns a deterministic Clock that advances by step on every
// read, starting one step after the zero time, plus a function reporting how
// many reads happened. Tests install it with WithClock to pin spans and
// overhead numbers exactly.
func FakeClock(step time.Duration) (Clock, func() int) {
	var mu sync.Mutex
	reads := 0
	return func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			reads++
			return time.Time{}.Add(time.Duration(reads) * step)
		}, func() int {
			mu.Lock()
			defer mu.Unlock()
			return reads
		}
}
