// Torture matrix for the lock-free measure hot path (DESIGN.md §12): the
// striped cache, work-stealing batch scheduler and atomic hit counter must
// leave the determinism contract untouched. Every leg fingerprints the full
// observable outcome — per-item results, stats, trajectory, quarantine set —
// into one string and requires byte-identical output at workers 1/4/16/64,
// with duplicate-heavy batches, with fault injection on, and across journal
// record/replay. Lives in package engine_test so it can drive the real
// engine through the real fault injector.
package engine_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/journal"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
	"repro/internal/store"
)

// tortureWorkers is the worker matrix every leg must agree across. 64 is
// deliberately far above runtime.NumCPU in CI so most workers start with an
// empty or tiny deque and survive purely by stealing.
var tortureWorkers = []int{1, 4, 16, 64}

func tortureSpace(t testing.TB) (*space.Space, *sim.Simulator) {
	t.Helper()
	sp, err := space.New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	return sp, sim.New(sp, gpu.A100())
}

// duplicateHeavyBatch samples n unique random settings and replicates each
// three times, shuffled, so roughly two thirds of the batch are duplicate
// keys — the worst case for the singleflight table and the striped cache's
// publish path (every shard sees concurrent hits racing the first store).
func duplicateHeavyBatch(sp *space.Space, n int, seed int64) []space.Setting {
	rng := rand.New(rand.NewSource(seed))
	uniq := make([]space.Setting, 0, n)
	for i := 0; i < n; i++ {
		uniq = append(uniq, sp.Random(rng))
	}
	out := make([]space.Setting, 0, 3*n)
	for _, s := range uniq {
		out = append(out, s, s.Clone(), s.Clone())
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// hostileTortureConfig mirrors the faults package's hostile testbed: every
// injected fault kind fires on a 3n-item batch.
func hostileTortureConfig() faults.Config {
	return faults.Config{
		Seed:               11,
		TransientRate:      0.25,
		MaxTransientPerKey: 2,
		PermanentRate:      0.10,
		NoiseFrac:          0.05,
		NoiseAddMS:         0.01,
		SlowRate:           0.10,
		SlowDelay:          100 * time.Microsecond,
		HangRate:           0.03,
	}
}

// fingerprint serializes everything the determinism contract covers into one
// string, so matrix legs compare byte-for-byte rather than field-by-field.
func fingerprint(res []engine.BatchResult, st engine.Stats, traj []engine.Point, quar []string) string {
	var b strings.Builder
	for i, r := range res {
		errs := ""
		if r.Err != nil {
			errs = r.Err.Error()
		}
		fmt.Fprintf(&b, "res[%d] ms=%.9f err=%q\n", i, r.MS, errs)
	}
	fmt.Fprintf(&b, "stats %+v\n", st)
	for i, p := range traj {
		fmt.Fprintf(&b, "traj[%d] %+v\n", i, p)
	}
	for i, q := range quar {
		fmt.Fprintf(&b, "quar[%d] %s\n", i, q)
	}
	return b.String()
}

// TestTortureDeterminismMatrix runs the same duplicate-heavy batch at every
// worker count, with fault injection off and on, and requires the full
// outcome fingerprint to be byte-identical to the workers=1 reference. Under
// -race this simultaneously exercises the lock-free cache probes against the
// accounting mutex and the work-stealing scheduler against itself.
func TestTortureDeterminismMatrix(t *testing.T) {
	sp, s := tortureSpace(t)
	in := duplicateHeavyBatch(sp, 40, 20260808)

	for _, faulty := range []bool{false, true} {
		name := "clean"
		if faulty {
			name = "faults"
		}
		t.Run(name, func(t *testing.T) {
			run := func(workers int) (string, faults.Counts) {
				var obj sim.Objective = s
				var inj *faults.Injector
				if faulty {
					inj = faults.New(s, hostileTortureConfig())
					obj = inj
				}
				eng := engine.New(obj,
					engine.WithWorkers(workers),
					engine.WithSeed(7),
					engine.WithMeasureTimeout(20*time.Millisecond),
					engine.WithQuarantine(2),
				)
				res := eng.MeasureBatch(in)
				var cnt faults.Counts
				if inj != nil {
					cnt = inj.Counts()
				}
				return fingerprint(res, eng.Stats(), eng.Trajectory(), eng.Quarantined()), cnt
			}

			ref, cnt := run(1)
			if faulty && (cnt.Transient == 0 || cnt.Permanent == 0) {
				t.Fatalf("hostile config exercised no faults: %+v", cnt)
			}
			for _, w := range tortureWorkers[1:] {
				got, _ := run(w)
				if got != ref {
					t.Fatalf("workers=%d fingerprint diverged from workers=1:\n--- got ---\n%s\n--- want ---\n%s",
						w, got, ref)
				}
			}
		})
	}
}

// TestTortureJournalReplayMatrix records a faulty duplicate-heavy batch into
// a write-ahead journal, then resumes from a copy of that journal at every
// worker count. Each resumed run must (a) replay every journaled episode
// without touching the objective's fault schedule anew and (b) land on the
// recorded run's exact fingerprint.
func TestTortureJournalReplayMatrix(t *testing.T) {
	sp, s := tortureSpace(t)
	in := duplicateHeavyBatch(sp, 30, 42)
	dir := t.TempDir()

	runBatch := func(eng *engine.Engine) string {
		res := eng.MeasureBatch(in)
		return fingerprint(res, eng.Stats(), eng.Trajectory(), eng.Quarantined())
	}

	// Record the reference run.
	walPath := filepath.Join(dir, "torture.wal")
	j, err := journal.Create(walPath, "torture")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(s, hostileTortureConfig())
	eng := engine.New(inj,
		engine.WithWorkers(4),
		engine.WithSeed(7),
		engine.WithMeasureTimeout(20*time.Millisecond),
		engine.WithQuarantine(2),
		engine.WithJournal(j),
	)
	ref := runBatch(eng)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range tortureWorkers {
		w := w
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			// Resume from a private copy: Open repairs torn tails and the
			// resumed run appends, so legs must not share one file.
			cp := filepath.Join(dir, fmt.Sprintf("resume-%d.wal", w))
			if err := os.WriteFile(cp, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			j2, err := journal.Open(cp, "torture")
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			inj2 := faults.New(s, hostileTortureConfig())
			eng2 := engine.New(inj2,
				engine.WithWorkers(w),
				engine.WithSeed(7),
				engine.WithMeasureTimeout(20*time.Millisecond),
				engine.WithQuarantine(2),
				engine.WithJournal(j2),
			)
			pending := eng2.ReplayPending()
			if pending == 0 {
				t.Fatal("journal recovered no episodes")
			}
			got := runBatch(eng2)
			if got != ref {
				t.Fatalf("workers=%d resumed fingerprint diverged:\n--- got ---\n%s\n--- want ---\n%s", w, got, ref)
			}
			if eng2.Replayed() != pending {
				t.Fatalf("workers=%d replayed %d of %d recovered episodes", w, eng2.Replayed(), pending)
			}
			if eng2.ReplayPending() != 0 {
				t.Fatalf("workers=%d left %d episodes unreplayed", w, eng2.ReplayPending())
			}
		})
	}
}

// seedTortureStore builds a fresh store pre-loaded with the same
// deterministic content for every matrix leg: every fourth unique key from
// the batch, at times faster than the simulator reports, so store hits are
// visible in the fingerprint (best/trajectory) and not just in the counters.
func seedTortureStore(t testing.TB, in []space.Setting, prefix string) *store.Store {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	seen := make(map[string]bool)
	for _, s := range in {
		k := s.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if len(seen)%4 == 0 {
			st.Put(prefix+k, 0.001+float64(len(seen))/1000)
		}
	}
	return st
}

// TestTortureSharedStoreMatrix is the cross-campaign store under the same
// hostility: duplicate-heavy batch, every fault kind firing, a pre-seeded
// shared store on the measurement path, workers 1/4/16/64 — and the full
// outcome fingerprint (store counters included in stats) must stay
// byte-identical to the workers=1 reference. Each leg gets its own
// identically-seeded store: the run publishes back, so sharing one store
// across legs would let earlier legs warm later ones.
func TestTortureSharedStoreMatrix(t *testing.T) {
	sp, s := tortureSpace(t)
	in := duplicateHeavyBatch(sp, 40, 20260808)
	prefix := store.Prefix("arch:torture", "shape:torture")

	for _, faulty := range []bool{false, true} {
		name := "clean"
		if faulty {
			name = "faults"
		}
		t.Run(name, func(t *testing.T) {
			run := func(workers int) (string, int) {
				var obj sim.Objective = s
				if faulty {
					obj = faults.New(s, hostileTortureConfig())
				}
				st := seedTortureStore(t, in, prefix)
				eng := engine.New(obj,
					engine.WithWorkers(workers),
					engine.WithSeed(7),
					engine.WithMeasureTimeout(20*time.Millisecond),
					engine.WithQuarantine(2),
					engine.WithStore(st, prefix),
				)
				res := eng.MeasureBatch(in)
				return fingerprint(res, eng.Stats(), eng.Trajectory(), eng.Quarantined()), eng.Stats().StoreHits
			}

			ref, hits := run(1)
			if hits == 0 {
				t.Fatal("seeded store produced no hits; the leg tests nothing")
			}
			for _, w := range tortureWorkers[1:] {
				got, _ := run(w)
				if got != ref {
					t.Fatalf("workers=%d fingerprint diverged from workers=1:\n--- got ---\n%s\n--- want ---\n%s",
						w, got, ref)
				}
			}
		})
	}
}

// countingObj is a minimal deterministic objective that counts Measure calls
// per key — the probe for singleflight exactness.
type countingObj struct {
	sp    *space.Space
	mu    sync.Mutex
	calls map[string]int
}

func newCountingObj(t testing.TB) *countingObj {
	t.Helper()
	sp, err := space.New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	return &countingObj{sp: sp, calls: make(map[string]int)}
}

func (o *countingObj) Space() *space.Space { return o.sp }

func (o *countingObj) Measure(s space.Setting) (float64, error) {
	key := s.Key()
	o.mu.Lock()
	o.calls[key]++
	o.mu.Unlock()
	// Hold the measurement open long enough that every racing caller
	// arrives while the episode is still in flight.
	time.Sleep(200 * time.Microsecond)
	return 1 + float64(len(key)), nil
}

func (o *countingObj) count(key string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.calls[key]
}

// TestTortureSingleflightStress hammers one uncached key from 64 goroutines:
// exactly one objective episode may run, everyone must observe its result,
// and the hit counter must account for the other 63.
func TestTortureSingleflightStress(t *testing.T) {
	const goroutines = 64
	obj := newCountingObj(t)
	eng := engine.New(obj, engine.WithSeed(1))
	s := obj.sp.Random(rand.New(rand.NewSource(99)))
	key := s.Key()

	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	got := make([]float64, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait()
			got[g], errs[g] = eng.Measure(s)
		}(g)
	}
	start.Done()
	wg.Wait()

	if n := obj.count(key); n != 1 {
		t.Fatalf("objective measured the key %d times, want exactly 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if errs[g] != nil || got[g] != got[0] {
			t.Fatalf("caller %d observed %v/%v, caller 0 observed %v/%v", g, got[g], errs[g], got[0], errs[0])
		}
	}
	st := eng.Stats()
	if st.Evaluations != 1 {
		t.Fatalf("Evaluations = %d, want 1", st.Evaluations)
	}
	if st.CacheHits != goroutines-1 {
		t.Fatalf("CacheHits = %d, want %d", st.CacheHits, goroutines-1)
	}
}

// TestTortureSingleflightManyKeys repeats the stress across 32 distinct
// uncached keys, every goroutine visiting every key in its own random order:
// evaluations must equal the number of unique keys, never more.
func TestTortureSingleflightManyKeys(t *testing.T) {
	const goroutines = 64
	obj := newCountingObj(t)
	eng := engine.New(obj, engine.WithSeed(1))

	rng := rand.New(rand.NewSource(7))
	seen := make(map[string]bool)
	var settings []space.Setting
	for len(settings) < 32 {
		s := obj.sp.Random(rng)
		if k := s.Key(); !seen[k] {
			seen[k] = true
			settings = append(settings, s)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(1000 + g)))
			for _, i := range r.Perm(len(settings)) {
				if _, err := eng.Measure(settings[i]); err != nil {
					t.Errorf("goroutine %d key %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	for _, s := range settings {
		if n := obj.count(s.Key()); n != 1 {
			t.Fatalf("key %s measured %d times, want exactly 1", s.Key(), n)
		}
	}
	st := eng.Stats()
	if st.Evaluations != len(settings) {
		t.Fatalf("Evaluations = %d, want %d (one per unique key)", st.Evaluations, len(settings))
	}
	if want := goroutines*len(settings) - len(settings); st.CacheHits != want {
		t.Fatalf("CacheHits = %d, want %d", st.CacheHits, want)
	}
}
