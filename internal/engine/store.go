package engine

import "sync"

// Cross-campaign result store integration (DESIGN.md §13). The engine's
// memo cache is per-campaign; the result store (internal/store) is shared
// across every campaign under a registry root and persists across
// processes. WithStore slots it in as a second-level read-through cache on
// the measurement path:
//
//	memo cache → journal replay → store probe → retry loop (objective)
//
// The probe lives inside measureEpisode, *after* journal replay and after
// every sequential gate (quarantine, context, budget) has already run. That
// placement is what keeps resume deterministic: gates never condition on
// store content (which grows between runs), and a store hit is journaled as
// its own episode class (journal.ClassStore), so a resumed run replays the
// recorded hit instead of re-probing a store that has since changed.
//
// Store hits charge zero budget and do not count as Evaluations — the
// measurement was paid for by whichever campaign published it — but they do
// update best/trajectory and the memo cache, all inside the normal
// sequential accounting section, so runs stay byte-identical at any worker
// count. During a batch's parallel phase the store content an episode can
// observe is stable: this engine only publishes from the sequential
// accounting phase, and other processes' records are only loaded at Open.
type resultStore interface {
	// GetBytes probes a composite key rendered into a caller-owned buffer;
	// it must be safe for concurrent use and lock-free on the hot path.
	GetBytes(key []byte) (float64, bool)
	// Put publishes a successful measurement under a composite key.
	Put(key string, ms float64)
	// Degraded reports whether the store has fallen back to read-only mode
	// (a sticky write failure): Puts still feed its in-memory index, but
	// nothing persists. The engine counts publishes made in that state
	// (Stats.StorePutDrops) so operators can see the durability gap grow.
	Degraded() bool
}

// ResultStore is the store surface the engine consumes; *store.Store
// implements it.
type ResultStore interface {
	resultStore
}

// WithStore attaches a shared result store. prefix is the campaign's
// composite-key prefix — store.Prefix(archFP, shapeFP) — prepended to every
// setting key, so campaigns on different architectures or stencils never
// alias. A nil store disables the integration; so does WithoutCache (raw
// measurement counts are the point of an uncached engine).
func WithStore(st ResultStore, prefix string) Option {
	return func(e *Engine) {
		if st == nil {
			e.store, e.storePrefix = nil, ""
			return
		}
		e.store, e.storePrefix = st, prefix
	}
}

// storeScratch sizes the pooled buffers for rendered composite keys: the
// arch+shape prefix (~200 bytes for the built-in models) plus the setting
// key. Longer composite keys grow the pooled buffer — an allocation on the
// first probe, not an error.
const storeScratch = 384

// storeKeyScratch pools composite-key buffers: the probe hands its buffer to
// an interface method, which defeats stack allocation, so reuse across
// probes is what keeps the hot path allocation-free. GetBytes's contract is
// that the buffer is caller-owned (never retained), which makes returning it
// to the pool safe.
var storeKeyScratch = sync.Pool{
	New: func() any { b := make([]byte, 0, storeScratch); return &b },
}

// storeProbe consults the result store for a setting key. Lock-free and
// allocation-free on the steady-state hit path: the composite key is
// rendered into pooled scratch and probed via the byte-slice map path.
func (e *Engine) storeProbe(key string) (float64, bool) {
	if e.store == nil {
		return 0, false
	}
	bp := storeKeyScratch.Get().(*[]byte)
	b := append((*bp)[:0], e.storePrefix...)
	b = append(b, key...)
	ms, ok := e.store.GetBytes(b)
	*bp = b[:0]
	storeKeyScratch.Put(bp)
	return ms, ok
}

// storeKey materializes the composite store key for a setting key.
func (e *Engine) storeKey(key string) string {
	return e.storePrefix + key
}

// storePublishLocked pushes one successful episode's scored time to the
// shared store. Called from the sequential accounting section (callers hold
// e.mu): publishing there — never from the parallel measurement phase —
// keeps the store content an in-flight batch can observe frozen, which is
// part of the worker-count determinism argument. Replayed episodes publish
// too: the merge is min-idempotent, and a resumed campaign should backfill
// a store that was attached after the original run.
func (e *Engine) storePublishLocked(key string, ms float64) {
	if e.store == nil {
		return
	}
	// The store's Put never blocks on I/O longer than a buffered write and
	// never calls back into the engine, so holding e.mu across it is safe:
	// lock order is e.mu → store shard lock, and nothing acquires them in
	// the other order.
	e.store.Put(e.storeKey(key), ms)
	if e.store.Degraded() {
		// Read-only-degraded store: the index took the record (this run and
		// its neighbors keep their hits), but nothing reached disk.
		e.storeDrops.Add(1)
	}
}

// AddWarmStartSeeds records that n prior-best settings from the store were
// injected into this run's search (sampling set + GA initial population).
// The pipeline calls it once per tune; it only feeds the stats surface.
func (e *Engine) AddWarmStartSeeds(n int) {
	if n > 0 {
		e.warmSeeds.Add(int64(n))
	}
}
