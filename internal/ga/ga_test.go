package ga

import (
	"math"
	"sync/atomic"
	"testing"
)

// valley is a smooth objective with a single minimum at m.
func valley(m int) func(int) float64 {
	return func(i int) float64 {
		d := float64(i - m)
		return 1 + d*d
	}
}

func TestExhaustiveSmallRange(t *testing.T) {
	opt := DefaultOptions()
	res := Minimize(20, valley(13), opt) // 20 <= 2*16
	if !res.Exhaustive {
		t.Fatal("small range should use exhaustive search")
	}
	if res.BestIndex != 13 || res.Evaluations != 20 {
		t.Fatalf("best=%d evals=%d", res.BestIndex, res.Evaluations)
	}
	if res.Generations != 0 {
		t.Fatal("exhaustive path should report zero generations")
	}
}

func TestGAFindsValley(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxGenerations = 60
	res := Minimize(4096, valley(1234), opt)
	if res.Exhaustive {
		t.Fatal("large range must use the GA")
	}
	// The GA must land close to the optimum (approximation, not exactness).
	if math.Abs(float64(res.BestIndex-1234)) > 200 {
		t.Fatalf("best index %d too far from optimum 1234 (value %g)", res.BestIndex, res.BestValue)
	}
	if res.Evaluations >= 4096/2 {
		t.Fatalf("GA evaluated %d of 4096 — no better than exhaustive", res.Evaluations)
	}
	if res.Generations == 0 {
		t.Fatal("GA should report generations")
	}
}

func TestApproximationStopsEarly(t *testing.T) {
	// A plateau objective: everything equally good. CV of top-n is 0, so
	// the approximation rule must fire on the first possible generation.
	opt := DefaultOptions()
	opt.MaxGenerations = 64
	res := Minimize(4096, func(i int) float64 { return 5 }, opt)
	if res.Generations > 3 {
		t.Fatalf("plateau should stop almost immediately, ran %d generations", res.Generations)
	}
}

func TestApproximationThresholdDisabled(t *testing.T) {
	// CVThreshold 0 never fires; the GA runs to MaxGenerations.
	opt := DefaultOptions()
	opt.CVThreshold = 0
	opt.MaxGenerations = 7
	res := Minimize(4096, valley(99), opt)
	if res.Generations != 7 {
		t.Fatalf("generations = %d, want full 7", res.Generations)
	}
}

func TestInvalidCandidatesSkipped(t *testing.T) {
	// Half the range is invalid (+Inf); the GA must still find the valid
	// minimum.
	eval := func(i int) float64 {
		if i%2 == 1 {
			return math.Inf(1)
		}
		return valley(500)(i)
	}
	opt := DefaultOptions()
	opt.MaxGenerations = 60
	res := Minimize(2048, eval, opt)
	if res.BestIndex%2 == 1 {
		t.Fatal("GA returned an invalid candidate")
	}
	if math.Abs(float64(res.BestIndex-500)) > 250 {
		t.Fatalf("best %d too far from 500", res.BestIndex)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxGenerations = 20
	a := Minimize(4096, valley(777), opt)
	b := Minimize(4096, valley(777), opt)
	if a.BestIndex != b.BestIndex || a.Evaluations != b.Evaluations || a.Generations != b.Generations {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	opt.Seed = 999
	c := Minimize(4096, valley(777), opt)
	if c.Evaluations == a.Evaluations && c.BestIndex == a.BestIndex && c.Generations == a.Generations {
		t.Log("different seed produced identical run (possible but unlikely)")
	}
}

func TestMemoizationCountsDistinct(t *testing.T) {
	var calls int64
	eval := func(i int) float64 {
		atomic.AddInt64(&calls, 1)
		return valley(100)(i)
	}
	opt := DefaultOptions()
	opt.MaxGenerations = 30
	res := Minimize(1024, eval, opt)
	if int64(res.Evaluations) != atomic.LoadInt64(&calls) {
		t.Fatalf("eval called %d times but %d distinct evaluations reported — memoization broken",
			calls, res.Evaluations)
	}
}

func TestZeroAndNegativeCount(t *testing.T) {
	res := Minimize(0, valley(0), DefaultOptions())
	if res.BestIndex != -1 || !math.IsInf(res.BestValue, 1) {
		t.Fatalf("count 0 → %+v", res)
	}
	res = Minimize(-5, valley(0), DefaultOptions())
	if res.BestIndex != -1 {
		t.Fatalf("negative count → %+v", res)
	}
}

func TestSingleCandidate(t *testing.T) {
	res := Minimize(1, func(i int) float64 { return 3.5 }, DefaultOptions())
	if res.BestIndex != 0 || res.BestValue != 3.5 || res.Evaluations != 1 {
		t.Fatalf("%+v", res)
	}
}

func TestDegenerateOptionsFallBack(t *testing.T) {
	opt := DefaultOptions()
	opt.SubPopulations = 0
	res := Minimize(5000, valley(42), opt)
	if !res.Exhaustive || res.BestIndex != 42 {
		t.Fatalf("degenerate options should fall back to exhaustive: %+v", res)
	}
}

func TestRuggedMultimodal(t *testing.T) {
	// Many local minima; global at 3072. The GA with mutation should not
	// get stuck at a terrible local optimum: require landing within the
	// best 5% of values.
	eval := func(i int) float64 {
		x := float64(i)
		return 10 + 5*math.Sin(x/37) + 3*math.Sin(x/101) + math.Abs(x-3072)/512
	}
	opt := DefaultOptions()
	opt.MaxGenerations = 64
	res := Minimize(4096, eval, opt)

	// Compute the exact 5th percentile by scanning.
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = eval(i)
	}
	best := vals[0]
	for _, v := range vals {
		if v < best {
			best = v
		}
	}
	if res.BestValue > best*1.25 {
		t.Fatalf("GA best %.3f vs global %.3f — stuck in a poor local optimum", res.BestValue, best)
	}
}

func BenchmarkMinimize4096(b *testing.B) {
	opt := DefaultOptions()
	opt.MaxGenerations = 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Minimize(4096, valley(1234), opt)
	}
}

// recordingEval wraps an objective and records the exact probe sequence —
// meaningful only with SubPopulations == 1, where evaluation order is
// deterministic.
func recordingEval(f func(int) float64) (func(int) float64, *[]int) {
	var seq []int
	return func(i int) float64 {
		seq = append(seq, i)
		return f(i)
	}, &seq
}

// TestSeedsEmptyIsByteIdentical pins the warm-start no-op contract: no
// seeds, an empty slice and all-out-of-range seeds must leave the classic
// run untouched — same result AND same probe sequence.
func TestSeedsEmptyIsByteIdentical(t *testing.T) {
	base := DefaultOptions()
	base.SubPopulations = 1
	base.PopSize = 32
	base.MaxGenerations = 40

	run := func(seeds []int) (Result, []int) {
		opt := base
		opt.Seeds = seeds
		eval, seq := recordingEval(valley(1234))
		res := Minimize(4096, eval, opt)
		return res, *seq
	}

	wantRes, wantSeq := run(nil)
	for _, seeds := range [][]int{{}, {-1, 4096, 99999}} {
		gotRes, gotSeq := run(seeds)
		if gotRes != wantRes {
			t.Fatalf("seeds %v changed the result: %+v vs %+v", seeds, gotRes, wantRes)
		}
		if len(gotSeq) != len(wantSeq) {
			t.Fatalf("seeds %v changed probe count: %d vs %d", seeds, len(gotSeq), len(wantSeq))
		}
		for i := range gotSeq {
			if gotSeq[i] != wantSeq[i] {
				t.Fatalf("seeds %v changed probe %d: %d vs %d", seeds, i, gotSeq[i], wantSeq[i])
			}
		}
	}
}

// TestSeedsInjectNeedle: on a needle-in-a-haystack objective the random GA
// has no gradient to follow, but a seeded needle must be found — proof the
// seed genes actually enter the initial population.
func TestSeedsInjectNeedle(t *testing.T) {
	const needle = 3333
	eval := func(i int) float64 {
		if i == needle {
			return 0
		}
		return 5
	}
	opt := DefaultOptions()
	opt.MaxGenerations = 30
	opt.Seeds = []int{needle}
	res := Minimize(1<<16, eval, opt)
	if res.Exhaustive {
		t.Fatal("range too small; test needs the GA path")
	}
	if res.BestIndex != needle || res.BestValue != 0 {
		t.Fatalf("seeded needle not found: %+v", res)
	}

	// Determinism with seeds: the same run twice is identical.
	if again := Minimize(1<<16, eval, opt); again != res {
		t.Fatalf("seeded run not deterministic: %+v vs %+v", again, res)
	}
}

// TestSeedsSpreadAcrossIslands: more seeds than sub-populations must land in
// distinct slots, not overwrite one another.
func TestSeedsSpreadAcrossIslands(t *testing.T) {
	needles := []int{111, 2222, 3333, 4444}
	eval := func(i int) float64 {
		for rank, n := range needles {
			if i == n {
				return float64(rank) // needle 111 is the global optimum
			}
		}
		return 50
	}
	opt := DefaultOptions()
	opt.MaxGenerations = 30
	opt.Seeds = needles
	res := Minimize(1<<16, eval, opt)
	if res.BestIndex != needles[0] || res.BestValue != 0 {
		t.Fatalf("best seeded needle lost: %+v", res)
	}
}
