// Package ga implements csTuner's customized multi-process genetic
// algorithm (paper Sec. IV-E, Fig. 6): sub-populations evolve concurrently
// (one goroutine per "process"), migrate their best individuals around a
// single-ring topology through the mpi layer, breed by neighbourhood
// selection + uniform crossover + bit mutation over binary genes, and stop
// automatically when the coefficient of variation of the top-n fitness
// values drops below a threshold (the approximation rule of Sec. III-C).
//
// The search domain is always a dense index range [0, Count) — the sampled
// search space re-indexes every parameter group's value tuples into such a
// range (Fig. 7) — so one Minimize call tunes one parameter group. When the
// range is no larger than the whole population the search degenerates to
// exhaustive evaluation, exactly as the paper prescribes.
package ga

import (
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/mpi"
	"repro/internal/stats"
)

// Options configures Minimize. The zero value is unusable; start from
// DefaultOptions, whose numbers follow the paper's evaluation setup
// (2 sub-populations × 16 individuals, crossover 0.8, mutation 0.005).
type Options struct {
	SubPopulations int
	PopSize        int     // individuals per sub-population
	CrossoverRate  float64 // probability a child is bred rather than cloned
	MutationRate   float64 // per-bit flip probability
	TopN           int     // approximation window over best fitness values
	CVThreshold    float64 // stop when CV(top-n fitness) < threshold
	MaxGenerations int     // hard cap (safety net, not the intended stop)
	Seed           int64
	// Seeds are candidate indices injected into the initial generation
	// (warm-starting from a prior campaign's bests): seed i overwrites the
	// i-th randomly-initialized individual, spread across sub-populations.
	// Out-of-range indices are ignored; an empty slice leaves the classic
	// random initialization byte-identical. Seeds are ignored on the
	// exhaustive path, which evaluates every index anyway.
	Seeds []int
}

// DefaultOptions returns the paper's GA configuration.
func DefaultOptions() Options {
	return Options{
		SubPopulations: 2,
		PopSize:        16,
		CrossoverRate:  0.8,
		MutationRate:   0.005,
		TopN:           8,
		CVThreshold:    0.05,
		MaxGenerations: 64,
		Seed:           1,
	}
}

// Result reports a finished search.
type Result struct {
	BestIndex   int
	BestValue   float64
	Evaluations int  // distinct indices evaluated
	Generations int  // GA generations run (0 for the exhaustive path)
	Exhaustive  bool // true when the range degenerated to full enumeration
}

// Minimize searches the index range [0, count) for the smallest value of
// eval. eval must be safe for concurrent calls from SubPopulations
// goroutines; +Inf marks an invalid candidate. Results are memoized so
// Evaluations counts distinct probes.
func Minimize(count int, eval func(int) float64, opt Options) Result {
	if count <= 0 {
		return Result{BestIndex: -1, BestValue: math.Inf(1)}
	}
	memo := newMemo(eval)

	if count <= opt.SubPopulations*opt.PopSize || opt.SubPopulations < 1 || opt.PopSize < 2 {
		return exhaustive(count, memo)
	}

	comm, err := mpi.New(opt.SubPopulations)
	if err != nil {
		return exhaustive(count, memo)
	}

	gens := evolveIslands(count, memo, comm, opt)
	idx, val := memo.best()
	return Result{
		BestIndex: idx, BestValue: val,
		Evaluations: memo.count(), Generations: gens,
	}
}

func exhaustive(count int, m *memo) Result {
	for i := 0; i < count; i++ {
		m.get(i)
	}
	idx, val := m.best()
	return Result{
		BestIndex: idx, BestValue: val,
		Evaluations: m.count(), Exhaustive: true,
	}
}

// individual is one genome: the candidate index stored as bits.
type individual struct {
	gene uint64
	fit  float64 // evaluated objective (lower is better)
}

// evolveIslands runs the island-model loop and returns generations used.
func evolveIslands(count int, m *memo, comm *mpi.Comm, opt Options) int {
	geneBits := bits.Len64(uint64(count - 1))
	if geneBits == 0 {
		geneBits = 1
	}

	type popState struct {
		pop  []individual
		rng  *rand.Rand
		stop bool
	}
	states := make([]*popState, opt.SubPopulations)
	for r := range states {
		rng := rand.New(rand.NewSource(opt.Seed + int64(r)*7919))
		pop := make([]individual, opt.PopSize)
		for i := range pop {
			pop[i].gene = uint64(rng.Intn(count))
		}
		states[r] = &popState{pop: pop, rng: rng}
	}

	// Warm-start injection: seed i replaces the (i/ranks)-th individual of
	// sub-population i%ranks, after the random draws above — so the RNG
	// stream (and therefore every later breeding decision) is byte-identical
	// whether or not seeds are present.
	for i, s := range opt.Seeds {
		if s < 0 || s >= count {
			continue
		}
		slot := i / len(states)
		if slot >= opt.PopSize {
			break
		}
		states[i%len(states)].pop[slot].gene = uint64(s)
	}

	evalPop := func(st *popState) {
		for i := range st.pop {
			st.pop[i].fit = m.get(int(st.pop[i].gene) % count)
		}
	}

	gen := 0
	for ; gen < opt.MaxGenerations; gen++ {
		var wg sync.WaitGroup
		for r := range states {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				st := states[rank]
				evalPop(st)

				// Migration: best individual travels the ring both ways;
				// immigrants replace the two worst residents.
				best := bestOf(st.pop)
				left, right, err := comm.RingExchange(rank, best)
				if err == nil {
					replaceWorst(st.pop, left.(individual))
					replaceWorst(st.pop, right.(individual))
				}

				st.pop = breed(st.pop, st.rng, opt, geneBits, count, m)
			}(r)
		}
		wg.Wait()

		// Approximation stop: CV of the global top-n fitness values.
		top := m.topValues(opt.TopN)
		if len(top) >= opt.TopN {
			if cv, err := stats.CV(top); err == nil && cv < opt.CVThreshold {
				gen++
				break
			}
		}
	}
	return gen
}

func bestOf(pop []individual) individual {
	b := pop[0]
	for _, ind := range pop[1:] {
		if ind.fit < b.fit {
			b = ind
		}
	}
	return b
}

func replaceWorst(pop []individual, imm individual) {
	w := 0
	for i := range pop {
		if pop[i].fit > pop[w].fit {
			w = i
		}
	}
	if imm.fit < pop[w].fit {
		pop[w] = imm
	}
}

// breed produces the next generation with cellular neighbourhood selection:
// the parents of slot i come from its four ring neighbours (i±1, i±2),
// chosen by rank-weighted roulette (higher fitness → higher chance), genes
// cross over uniformly bit-by-bit, then mutate.
func breed(pop []individual, rng *rand.Rand, opt Options, geneBits, count int, m *memo) []individual {
	n := len(pop)
	next := make([]individual, n)
	for i := 0; i < n; i++ {
		if rng.Float64() > opt.CrossoverRate {
			next[i] = pop[i] // survives unchanged (minus mutation below)
		} else {
			p1 := selectNeighbour(pop, i, rng)
			p2 := selectNeighbour(pop, i, rng)
			var child uint64
			for b := 0; b < geneBits; b++ {
				src := p1
				if rng.Intn(2) == 1 {
					src = p2
				}
				child |= src.gene & (1 << b)
			}
			next[i] = individual{gene: child}
		}
		// Bit mutation keeps the search out of local optima (Sec. IV-E).
		for b := 0; b < geneBits; b++ {
			if rng.Float64() < opt.MutationRate {
				next[i].gene ^= 1 << b
			}
		}
		next[i].gene %= uint64(count)
		next[i].fit = m.get(int(next[i].gene))
	}
	// Elitism: keep the best individual alive.
	eb := bestOf(pop)
	replaceWorst(next, eb)
	return next
}

// selectNeighbour picks one of the four ring neighbours of slot i with
// probability proportional to fitness rank (best neighbour weight 4 … worst
// weight 1).
func selectNeighbour(pop []individual, i int, rng *rand.Rand) individual {
	n := len(pop)
	nbrs := []individual{
		pop[(i-2+n)%n], pop[(i-1+n)%n], pop[(i+1)%n], pop[(i+2)%n],
	}
	sort.Slice(nbrs, func(a, b int) bool { return nbrs[a].fit < nbrs[b].fit })
	// Rank weights 4,3,2,1 over the sorted neighbours.
	r := rng.Intn(10)
	switch {
	case r < 4:
		return nbrs[0]
	case r < 7:
		return nbrs[1]
	case r < 9:
		return nbrs[2]
	default:
		return nbrs[3]
	}
}

// memo caches objective evaluations and tracks global order statistics.
type memo struct {
	mu   sync.Mutex
	eval func(int) float64
	vals map[int]float64
}

func newMemo(eval func(int) float64) *memo {
	return &memo{eval: eval, vals: make(map[int]float64)}
}

func (m *memo) get(i int) float64 {
	m.mu.Lock()
	v, ok := m.vals[i]
	m.mu.Unlock()
	if ok {
		return v
	}
	v = m.eval(i)
	m.mu.Lock()
	m.vals[i] = v
	m.mu.Unlock()
	return v
}

func (m *memo) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.vals)
}

func (m *memo) best() (int, float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	bi, bv := -1, math.Inf(1)
	for i, v := range m.vals {
		if v < bv || (v == bv && (bi < 0 || i < bi)) {
			bi, bv = i, v
		}
	}
	return bi, bv
}

// topValues returns the n smallest finite evaluations seen so far.
func (m *memo) topValues(n int) []float64 {
	m.mu.Lock()
	vals := make([]float64, 0, len(m.vals))
	//cstlint:allow maporder(stats.TopN fully sorts vals, so collection order cannot reach the result)
	for _, v := range m.vals {
		if !math.IsInf(v, 0) && !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	m.mu.Unlock()
	return stats.TopN(vals, n)
}
