// Package plot renders the experiment harness's result series as
// self-contained SVG line charts and CSV tables, so `cmd/experiments` can
// emit paper-style figure artifacts without any dependency. The visual
// style mirrors the paper's plots: one line per auto-tuning method,
// iterations or seconds on the x-axis, best-found kernel time on the y-axis.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line.
type Series struct {
	Name   string
	Values []float64 // NaN values break the line (paper's "missing points")
}

// Chart is one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// X holds the x-coordinates shared by all series; when nil, indices
	// 1..n are used.
	X      []float64
	Series []Series
}

// palette: distinguishable line colors (method order is stable, so csTuner
// is always the first color).
var palette = []string{"#1b6ca8", "#d1495b", "#66a182", "#edae49", "#8d6a9f", "#3d3d3d"}

// WriteSVG renders the chart as a standalone SVG document.
func (c *Chart) WriteSVG(w io.Writer) error {
	const (
		width, height = 640, 400
		left, right   = 70, 150
		top, bottom   = 50, 50
	)
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)

	xs := c.xCoords()
	xmin, xmax := bounds(xs)
	ymin, ymax := c.yBounds()
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range 5% for readability.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	px := func(x float64) float64 { return float64(left) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(top) + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`+"\n", left, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		left, top, left, height-bottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		left, height-bottom, width-right, height-bottom)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n",
		left+int(plotW)/2-30, height-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		top+int(plotH)/2+30, top+int(plotH)/2+30, escape(c.YLabel))

	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		xv := xmin + (xmax-xmin)*float64(i)/4
		yv := ymin + (ymax-ymin)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px(xv), height-bottom, px(xv), height-bottom+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(xv), height-bottom+18, formatTick(xv))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			left-5, py(yv), left, py(yv))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			left-8, py(yv)+4, formatTick(yv))
	}

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var path strings.Builder
		pen := false
		for i, v := range s.Values {
			if i >= len(xs) {
				break
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				pen = false
				continue
			}
			cmd := "L"
			if !pen {
				cmd = "M"
				pen = true
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(xs[i]), py(v))
		}
		if path.Len() > 0 {
			fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.TrimSpace(path.String()), color)
		}
		// Legend entry.
		ly := top + 10 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			width-right+10, ly, width-right+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			width-right+40, ly+4, escape(s.Name))
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the chart data as a CSV table: first column x, one column
// per series.
func (c *Chart) WriteCSV(w io.Writer) error {
	xs := c.xCoords()
	header := []string{csvField(c.XLabel)}
	for _, s := range c.Series {
		header = append(header, csvField(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	n := 0
	for _, s := range c.Series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	for i := 0; i < n && i < len(xs); i++ {
		row := []string{fmt.Sprintf("%g", xs[i])}
		for _, s := range c.Series {
			if i < len(s.Values) && !math.IsNaN(s.Values[i]) {
				row = append(row, fmt.Sprintf("%g", s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func (c *Chart) xCoords() []float64 {
	if len(c.X) > 0 {
		return c.X
	}
	n := 0
	for _, s := range c.Series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return xs
}

func (c *Chart) yBounds() (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	return lo, hi
}

func bounds(xs []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	return lo, hi
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// SortedSeries returns chart series sorted by name — a helper for building
// deterministic charts from maps.
func SortedSeries(m map[string][]float64) []Series {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Series, 0, len(names))
	for _, n := range names {
		out = append(out, Series{Name: n, Values: m[n]})
	}
	return out
}
