package plot

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func chart() *Chart {
	return &Chart{
		Title:  "Fig9 test <stencil>",
		XLabel: "seconds",
		YLabel: "best ms",
		X:      []float64{10, 20, 30, 40},
		Series: []Series{
			{Name: "cstuner", Values: []float64{3, 2, 1.5, 1.4}},
			{Name: "garvey", Values: []float64{4, 3.5, math.NaN(), 3.2}},
		},
	}
}

func TestWriteSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := chart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Must be parseable XML (escaping of the '<' in the title included).
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, out)
		}
	}
	for _, want := range []string{"<svg", "cstuner", "garvey", "best ms", "seconds", "&lt;stencil&gt;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two series → two colored paths.
	if strings.Count(out, `<path`) != 2 {
		t.Fatalf("expected 2 paths, got %d", strings.Count(out, "<path"))
	}
}

func TestSVGBreaksLineAtNaN(t *testing.T) {
	var buf bytes.Buffer
	if err := chart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// The garvey series has a NaN at index 2: its path must contain two
	// M (move) commands — line break at the gap.
	out := buf.String()
	garveyPath := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "<path") && strings.Count(line, "M") == 2 {
			garveyPath = line
		}
	}
	if garveyPath == "" {
		t.Fatalf("no path with a NaN break found:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := chart().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV lines = %d, want header+4", len(lines))
	}
	if lines[0] != "seconds,cstuner,garvey" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "10,3,4" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	// NaN renders as an empty cell.
	if lines[3] != "30,1.5," {
		t.Fatalf("NaN row = %q", lines[3])
	}
}

func TestCSVQuoting(t *testing.T) {
	c := &Chart{
		XLabel: `x,"label"`,
		Series: []Series{{Name: "a", Values: []float64{1}}},
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `"x,""label""",a`) {
		t.Fatalf("quoting wrong: %q", buf.String())
	}
}

func TestDefaultXIndices(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "s", Values: []float64{5, 6, 7}}}}
	xs := c.xCoords()
	if len(xs) != 3 || xs[0] != 1 || xs[2] != 3 {
		t.Fatalf("default xs = %v", xs)
	}
}

func TestEmptyChartStillRenders(t *testing.T) {
	c := &Chart{Title: "empty"}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSortedSeries(t *testing.T) {
	m := map[string][]float64{"b": {2}, "a": {1}}
	s := SortedSeries(m)
	if len(s) != 2 || s[0].Name != "a" || s[1].Name != "b" {
		t.Fatalf("SortedSeries = %v", s)
	}
}
