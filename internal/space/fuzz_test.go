package space

import (
	"strings"
	"testing"

	"repro/internal/stencil"
)

// FuzzParseKey pins the decode invariants of the setting-key codec: a key
// that decodes must re-encode byte-identically (ParseKey is the exact
// inverse of Key), decoded settings have one value per comma-separated part,
// and no input ever panics the parser.
func FuzzParseKey(f *testing.F) {
	sp, err := New(stencil.Helmholtz())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sp.Default().Key())
	f.Add("1,2,3")
	f.Add("64,4,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1")
	f.Add("0")
	f.Add("-3,0,12")
	f.Add("")
	f.Add("01,2")
	f.Add("+1")
	f.Add("1,,2")
	f.Add("1,2,")
	f.Add(" 1,2")
	f.Add("999999999999999999999999")
	f.Fuzz(func(t *testing.T, key string) {
		s, err := ParseKey(key)
		if err != nil {
			if s != nil {
				t.Fatalf("ParseKey(%q) returned both a setting and error %v", key, err)
			}
			return
		}
		if got := s.Key(); got != key {
			t.Fatalf("round trip broke: %q -> %v -> %q", key, s, got)
		}
		if want := strings.Count(key, ",") + 1; len(s) != want {
			t.Fatalf("ParseKey(%q) has %d values, want %d", key, len(s), want)
		}
		// Decoding a clone of the re-encoded key converges (decode is
		// idempotent through the codec).
		s2, err := ParseKey(s.Key())
		if err != nil || !s2.Equal(s) {
			t.Fatalf("second decode diverged: %v/%v vs %v", s2, err, s)
		}
	})
}
