package space

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/stencil"
)

// randomStencil builds a structurally-valid stencil with randomized grid
// extents and order, so the properties below range over many distinct
// constrained spaces, not just the Table III suite.
func randomStencil(rng *rand.Rand, i int) *stencil.Stencil {
	dims := []int{16, 32, 64, 128, 256, 512}
	order := 1 + rng.Intn(3)
	return &stencil.Stencil{
		Name:    fmt.Sprintf("prop-%d", i),
		NX:      dims[rng.Intn(len(dims))],
		NY:      dims[rng.Intn(len(dims))],
		NZ:      dims[rng.Intn(len(dims))],
		Order:   order,
		FLOPs:   4 + rng.Intn(60),
		Inputs:  1,
		Outputs: 1,
		Taps:    stencil.StarTaps(order, 0),
		Coeffs:  1 + order,
	}
}

// propertySpaces returns the Table III spaces plus randomized ones.
func propertySpaces(t *testing.T) []*Space {
	t.Helper()
	var out []*Space
	for _, st := range stencil.Suite() {
		sp, err := New(st)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sp)
	}
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < 12; i++ {
		sp, err := New(randomStencil(rng, i))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sp)
	}
	return out
}

func TestPropertyKeyParseKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sp := range propertySpaces(t) {
		for i := 0; i < 50; i++ {
			s := sp.Random(rng)
			key := s.Key()
			got, err := ParseKey(key)
			if err != nil {
				t.Fatalf("%s: ParseKey(%q) failed: %v", sp.Stencil.Name, key, err)
			}
			if !got.Equal(s) {
				t.Fatalf("%s: round trip %q -> %v != %v", sp.Stencil.Name, key, got, s)
			}
			if got.Key() != key {
				t.Fatalf("%s: re-encode %q -> %q", sp.Stencil.Name, key, got.Key())
			}
		}
	}
}

func TestParseKeyRejectsNonCanonical(t *testing.T) {
	bad := []string{
		"",                           // empty
		",",                          // empty parts
		"1,,2",                       // empty middle part
		"01,2",                       // leading zero
		"+1,2",                       // explicit sign
		"-0,2",                       // negative zero
		" 1,2",                       // whitespace
		"1,2 ",                       // trailing whitespace
		"1;2",                        // wrong separator
		"1,2,three",                  // non-numeric
		"1,2,",                       // trailing separator
		"999999999999999999999999,1", // overflow
	}
	for _, key := range bad {
		if s, err := ParseKey(key); err == nil {
			t.Errorf("ParseKey(%q) = %v, want error", key, s)
		}
	}
	// Canonical keys — including negative values, which Key can render for
	// out-of-space settings — round-trip exactly.
	for _, key := range []string{"0", "7", "-3,0,12", "1,2,3"} {
		s, err := ParseKey(key)
		if err != nil || s.Key() != key {
			t.Errorf("ParseKey(%q) = %v/%v, want exact round trip", key, s, err)
		}
	}
}

func TestPropertyRandomAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, sp := range propertySpaces(t) {
		for i := 0; i < 50; i++ {
			s := sp.Random(rng)
			if err := sp.Validate(s); err != nil {
				t.Fatalf("%s: Random produced invalid setting %v: %v", sp.Stencil.Name, s, err)
			}
		}
	}
}

func TestPropertyNeighborStaysInSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sp := range propertySpaces(t) {
		s := sp.Default()
		for i := 0; i < 60; i++ {
			n := sp.Neighbor(s, rng)
			if err := sp.Validate(n); err != nil {
				t.Fatalf("%s: Neighbor left the space: %v (%v)", sp.Stencil.Name, err, n)
			}
			if n.Equal(s) {
				t.Fatalf("%s: Neighbor returned the input unchanged", sp.Stencil.Name)
			}
			s = n // walk
		}
	}
}

func TestPropertyRepairIdempotentAndCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sp := range propertySpaces(t) {
		for i := 0; i < 50; i++ {
			// Draw a raw (unrepaired, possibly invalid) assignment.
			s := make(Setting, len(sp.Params))
			for j := range s {
				vals := sp.Params[j].Values
				s[j] = vals[rng.Intn(len(vals))]
			}
			sp.Repair(s, rng)
			again := s.Clone()
			sp.Repair(again, rng)
			if !again.Equal(s) {
				t.Fatalf("%s: Repair not idempotent: %v -> %v", sp.Stencil.Name, s, again)
			}
			// Repair must yield the canonical streaming form.
			if s[UseStreaming] != On && (s[SD] != 1 || s[SB] != 1 || s[UsePrefetching] == On) {
				t.Fatalf("%s: non-streaming repair not canonical: %v", sp.Stencil.Name, s)
			}
			// A repaired setting either validates or fails only on residual
			// numeric conflicts — never on the structural rules Repair owns.
			if err := sp.Validate(s); err == nil {
				v := s.Clone()
				sp.Repair(v, rng)
				if !v.Equal(s) {
					t.Fatalf("%s: Repair changed an already-valid setting", sp.Stencil.Name)
				}
			}
		}
	}
}
