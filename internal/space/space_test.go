package space

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stencil"
)

func newSpace(t *testing.T) *Space {
	t.Helper()
	sp, err := New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestNewRejectsInvalidStencil(t *testing.T) {
	bad := stencil.J3D7PT()
	bad.FLOPs = 0
	if _, err := New(bad); err == nil {
		t.Fatal("New should reject an invalid stencil")
	}
}

func TestTableIParameterInventory(t *testing.T) {
	sp := newSpace(t)
	if len(sp.Params) != NumParams || NumParams != 19 {
		t.Fatalf("parameter count = %d, want 19", len(sp.Params))
	}
	names := ParamNames()
	for i, p := range sp.Params {
		if p.Name != names[i] {
			t.Errorf("param %d name = %s, want %s", i, p.Name, names[i])
		}
		if len(p.Values) == 0 {
			t.Errorf("param %s has no values", p.Name)
		}
		if p.Values[0] != 1 {
			t.Errorf("param %s starts at %d, want 1 (log legitimacy)", p.Name, p.Values[0])
		}
	}
	// Bool parameters take exactly {1,2}.
	for _, i := range []int{UseShared, UseConstant, UseStreaming, UseRetiming, UsePrefetching} {
		p := sp.Params[i]
		if p.Kind != KindBool || len(p.Values) != 2 || p.Values[0] != Off || p.Values[1] != On {
			t.Errorf("param %s should be bool {1,2}, got %v", p.Name, p.Values)
		}
	}
	// SD is {1,2,3}.
	if v := sp.Params[SD].Values; len(v) != 3 || v[0] != 1 || v[2] != 3 {
		t.Errorf("SD values = %v, want {1,2,3}", v)
	}
	// TB ranges from Table I.
	if got := sp.Params[TBX].Values[len(sp.Params[TBX].Values)-1]; got != 512 {
		// j3d7pt grid is 512, so TBx caps at min(1024, 512).
		t.Errorf("TBx max = %d, want 512", got)
	}
	if got := sp.Params[TBZ].Values[len(sp.Params[TBZ].Values)-1]; got != 64 {
		t.Errorf("TBz max = %d, want 64", got)
	}
}

func TestPow2ValuesOnly(t *testing.T) {
	sp := newSpace(t)
	for _, p := range sp.Params {
		if p.Kind != KindPow2 {
			continue
		}
		for _, v := range p.Values {
			if v&(v-1) != 0 {
				t.Errorf("param %s value %d is not a power of two", p.Name, v)
			}
		}
	}
}

func TestDefaultIsValid(t *testing.T) {
	for _, st := range stencil.Suite() {
		sp, err := New(st)
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.Validate(sp.Default()); err != nil {
			t.Errorf("%s: default setting invalid: %v", st.Name, err)
		}
	}
}

func TestValidateConstraints(t *testing.T) {
	sp := newSpace(t)
	base := sp.Default()

	cases := []struct {
		name   string
		mutate func(Setting)
		ok     bool
	}{
		{"default", func(s Setting) {}, true},
		{"wrong length", nil, false},
		{"tb too large", func(s Setting) { s[TBX], s[TBY], s[TBZ] = 512, 512, 64 }, false},
		{"tb exactly 1024", func(s Setting) { s[TBX], s[TBY], s[TBZ] = 512, 2, 1 }, true},
		{"sd without streaming", func(s Setting) { s[SD] = 2 }, false},
		{"sb without streaming", func(s Setting) { s[SB] = 4 }, false},
		{"prefetch without streaming", func(s Setting) { s[UsePrefetching] = On }, false},
		{"streaming canonical", func(s Setting) { s[UseStreaming] = On; s[SD] = 3; s[SB] = 8 }, true},
		{"sb exceeds dim", func(s Setting) { s[UseStreaming] = On; s[SD] = 3; s[SB] = 1024 }, false},
		{"uf beyond sb", func(s Setting) {
			s[UseStreaming] = On
			s[SD] = 3
			s[SB] = 2
			s[UFZ] = 8
		}, false},
		{"uf equals sb ok", func(s Setting) {
			s[UseStreaming] = On
			s[SD] = 3
			s[SB] = 8
			s[UFZ] = 8
		}, true},
		{"merge amplification over grid", func(s Setting) { s[UFX], s[CMX], s[BMX] = 64, 64, 64 }, false},
		{"cyclic along streaming dim", func(s Setting) {
			s[UseStreaming] = On
			s[SD] = 3
			s[SB] = 4
			s[CMZ] = 2
		}, false},
		{"cyclic along non-streaming dim ok", func(s Setting) {
			s[UseStreaming] = On
			s[SD] = 3
			s[SB] = 4
			s[CMX] = 2
		}, true},
		{"off-range value", func(s Setting) { s[TBX] = 3 }, false},
		{"negative impossible value", func(s Setting) { s[SB] = -2 }, false},
	}
	for _, c := range cases {
		var s Setting
		if c.mutate == nil {
			s = base[:5].Clone()
		} else {
			s = base.Clone()
			c.mutate(s)
		}
		err := sp.Validate(s)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok {
			if err == nil {
				t.Errorf("%s: expected a constraint violation", c.name)
			} else if !errors.Is(err, ErrInvalid) {
				t.Errorf("%s: error %v does not wrap ErrInvalid", c.name, err)
			}
		}
	}
}

func TestRandomAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, st := range stencil.Suite() {
		sp, err := New(st)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			s := sp.Random(rng)
			if err := sp.Validate(s); err != nil {
				t.Fatalf("%s: Random produced invalid setting %v: %v", st.Name, s, err)
			}
		}
	}
}

func TestRandomCoversSpace(t *testing.T) {
	sp := newSpace(t)
	rng := rand.New(rand.NewSource(11))
	sawStreaming, sawShared, sawBigTB := false, false, false
	for i := 0; i < 500; i++ {
		s := sp.Random(rng)
		if s[UseStreaming] == On {
			sawStreaming = true
		}
		if s[UseShared] == On {
			sawShared = true
		}
		if s[TBX]*s[TBY]*s[TBZ] >= 256 {
			sawBigTB = true
		}
	}
	if !sawStreaming || !sawShared || !sawBigTB {
		t.Fatalf("random sampling misses regions: streaming=%v shared=%v bigTB=%v",
			sawStreaming, sawShared, sawBigTB)
	}
}

func TestRepairProducesCanonicalForm(t *testing.T) {
	sp := newSpace(t)
	rng := rand.New(rand.NewSource(3))
	s := sp.Default()
	s[UseStreaming] = Off
	s[SD] = 3
	s[SB] = 64
	s[UsePrefetching] = On
	sp.Repair(s, rng)
	if s[SD] != 1 || s[SB] != 1 || s[UsePrefetching] != Off {
		t.Fatalf("Repair left non-canonical non-streaming form: %v", s)
	}
	s = sp.Default()
	s[TBX], s[TBY], s[TBZ] = 512, 512, 64
	sp.Repair(s, rng)
	if s[TBX]*s[TBY]*s[TBZ] > 1024 {
		t.Fatalf("Repair left oversized TB: %v", s)
	}
}

func TestSettingCloneEqualKey(t *testing.T) {
	sp := newSpace(t)
	a := sp.Default()
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone should be equal")
	}
	b[TBX] = 1
	if a.Equal(b) {
		t.Fatal("mutated clone should differ")
	}
	if a.Key() == b.Key() {
		t.Fatal("different settings must have different keys")
	}
	if !a.Equal(a.Clone()) || a.Key() != a.Clone().Key() {
		t.Fatal("key/equality must be stable")
	}
	if a.Equal(a[:5]) {
		t.Fatal("length mismatch should not be equal")
	}
}

func TestSettingHashDistinguishes(t *testing.T) {
	sp := newSpace(t)
	rng := rand.New(rand.NewSource(5))
	seen := map[uint64]string{}
	for i := 0; i < 2000; i++ {
		s := sp.Random(rng)
		h := s.Hash()
		if prev, ok := seen[h]; ok && prev != s.Key() {
			t.Fatalf("hash collision between %s and %s", prev, s.Key())
		}
		seen[h] = s.Key()
	}
}

func TestSettingString(t *testing.T) {
	sp := newSpace(t)
	str := sp.Default().String()
	if str == "" || len(str) < 20 {
		t.Fatalf("String too short: %q", str)
	}
	for _, want := range []string{"TBx=", "useShared=", "usePrefetching="} {
		if !contains(str, want) {
			t.Errorf("String missing %q: %s", want, str)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestSizeUpperBoundExceeds100M(t *testing.T) {
	// Paper Sec. IV-B: the total space holds >100 million settings.
	sp := newSpace(t)
	if got := sp.SizeUpperBound(); got < 1e8 {
		t.Fatalf("SizeUpperBound = %g, want >= 1e8", got)
	}
}

func TestUnrollOf(t *testing.T) {
	if UnrollOf(1) != UFX || UnrollOf(2) != UFY || UnrollOf(3) != UFZ {
		t.Fatal("UnrollOf mapping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("UnrollOf(0) should panic")
		}
	}()
	UnrollOf(0)
}

// Property: Repair is idempotent — repairing an arbitrary raw draw twice
// changes nothing the second time.
func TestRepairIdempotent(t *testing.T) {
	sp := newSpace(t)
	rng := rand.New(rand.NewSource(29))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := make(Setting, NumParams)
		for i := range s {
			vals := sp.Params[i].Values
			s[i] = vals[r.Intn(len(vals))]
		}
		sp.Repair(s, rng)
		once := s.Clone()
		sp.Repair(s, rng)
		return s.Equal(once)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Repair never breaks an already-valid setting.
func TestRepairPreservesValidity(t *testing.T) {
	sp := newSpace(t)
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := sp.Random(r)
		before := s.Clone()
		sp.Repair(s, rng)
		return sp.Validate(s) == nil && s.Equal(before)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRandomSetting(b *testing.B) {
	sp, err := New(stencil.RHS4Center())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sp.Random(rng)
	}
}

func BenchmarkValidate(b *testing.B) {
	sp, err := New(stencil.RHS4Center())
	if err != nil {
		b.Fatal(err)
	}
	s := sp.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sp.Validate(s); err != nil {
			b.Fatal(err)
		}
	}
}
