// Package space parameterizes the stencil optimization techniques into the
// search space csTuner explores (paper Table I and Sec. IV-B).
//
// Eighteen parameters cover thread-block shape, shared/constant memory use,
// streaming (with streaming dimension and concurrent-streaming tiles), loop
// unrolling, cyclic and block merging, retiming and prefetching. Boolean and
// enumeration parameters start at 1 with unit stride so the log2 operations
// in parameter grouping and PMNF stay legitimate; numerical parameters are
// restricted to powers of two, consistent with Garvey'15, AN5D and PPoPP'18.
package space

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/stats"
	"repro/internal/stencil"
)

// Parameter indices. The order matches Table I.
const (
	TBX = iota // thread block extent, X (innermost)
	TBY        // thread block extent, Y
	TBZ        // thread block extent, Z
	UseShared
	UseConstant
	UseStreaming
	SD // streaming dimension: 1=X, 2=Y, 3=Z
	SB // concurrent streaming tiles along SD
	UFX
	UFY
	UFZ
	CMX // cyclic merging factors
	CMY
	CMZ
	BMX // block merging factors
	BMY
	BMZ
	UseRetiming
	UsePrefetching
	NumParams // sentinel: number of parameters
)

// Off and On are the paper's {1,2} encodings of boolean optimizations
// (1-based so log2 is defined for every parameter value).
const (
	Off = 1
	On  = 2
)

// Kind classifies a parameter for mutation and modeling purposes.
type Kind int

const (
	KindPow2 Kind = iota // powers of two within [1, Max]
	KindBool             // {Off, On}
	KindEnum             // small dense integer range starting at 1
)

// Param describes a single tunable parameter.
type Param struct {
	Name   string
	Kind   Kind
	Values []int // legal raw values in ascending order
	// Biased marks parameters sampled geometrically towards small values
	// (per-thread work multipliers, where uniform draws land almost surely
	// in register-spill territory).
	Biased bool
}

// Index returns the position of value v in Values, or -1.
func (p *Param) Index(v int) int {
	for i, x := range p.Values {
		if x == v {
			return i
		}
	}
	return -1
}

// Setting is one concrete assignment of all parameters, indexed by the
// parameter constants above.
type Setting []int

// Clone returns a copy of the setting.
func (s Setting) Clone() Setting { return append(Setting(nil), s...) }

// Equal reports whether two settings assign identical values.
func (s Setting) Equal(o Setting) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Key returns a compact unique string key for map indexing.
func (s Setting) Key() string {
	return string(s.AppendKey(make([]byte, 0, 64)))
}

// AppendKey appends the Key representation to dst and returns the extended
// slice. Hot paths (the engine's lock-free cache probe) render the key into
// a stack scratch buffer with it, so a cache hit never allocates. Values of
// one or two digits — the overwhelming bulk of stencil parameters — are
// rendered inline; anything else falls back to strconv.
func (s Setting) AppendKey(dst []byte) []byte {
	for i, v := range s {
		if i > 0 {
			dst = append(dst, ',')
		}
		switch {
		case v >= 0 && v < 10:
			dst = append(dst, byte('0'+v))
		case v >= 10 && v < 100:
			dst = append(dst, byte('0'+v/10), byte('0'+v%10))
		default:
			dst = strconv.AppendInt(dst, int64(v), 10)
		}
	}
	return dst
}

// ParseKey decodes a Setting.Key string back into a setting. It is strict:
// every part must be the canonical base-10 rendering of its value (no signs,
// no leading zeros, no whitespace), so ParseKey is the exact inverse of Key —
// ParseKey(k) succeeds iff k == ParseKey(k).Key(). The decoded setting is
// purely syntactic; callers wanting a legal point of a space must still
// Validate it.
func ParseKey(key string) (Setting, error) {
	if key == "" {
		return nil, fmt.Errorf("space: empty setting key")
	}
	parts := strings.Split(key, ",")
	s := make(Setting, len(parts))
	for i, part := range parts {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("space: bad setting key part %q: %w", part, err)
		}
		if strconv.Itoa(v) != part {
			return nil, fmt.Errorf("space: non-canonical setting key part %q", part)
		}
		s[i] = v
	}
	return s, nil
}

// Hash returns a 64-bit hash of the setting, used to seed deterministic
// per-setting measurement noise in the simulator.
func (s Setting) Hash() uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, v := range s {
		h ^= uint64(uint32(v))
		h *= 1099511628211
		h = stats.Mix64(h)
	}
	return h
}

// String renders the setting with parameter names for diagnostics.
func (s Setting) String() string {
	names := ParamNames()
	parts := make([]string, 0, len(s))
	for i, v := range s {
		if i < len(names) {
			parts = append(parts, fmt.Sprintf("%s=%d", names[i], v))
		} else {
			parts = append(parts, strconv.Itoa(v))
		}
	}
	return strings.Join(parts, " ")
}

// ParamNames returns the canonical parameter names in index order.
func ParamNames() []string {
	return []string{
		"TBx", "TBy", "TBz",
		"useShared", "useConstant", "useStreaming", "SD", "SB",
		"UFx", "UFy", "UFz",
		"CMx", "CMy", "CMz",
		"BMx", "BMy", "BMz",
		"useRetiming", "usePrefetching",
	}
}

// Space is a constrained optimization space: the Table I stencil space when
// built with New, or an arbitrary parameter space when built with NewCustom
// (the paper's Sec. IV-A/VII generality claim: "csTuner can also support
// auto-tuning of more general GPU algorithms ... we only need to adjust the
// optimization space").
type Space struct {
	Stencil *stencil.Stencil // nil for custom spaces
	Params  []Param

	// MaxThreadsPerBlock is the TB-size product cap (1024 on both A100
	// and V100, paper Sec. IV-B). Stencil spaces only.
	MaxThreadsPerBlock int

	// CustomValidate and CustomRepair replace the stencil constraint rules
	// for custom spaces; CustomDefault replaces the canonical baseline.
	CustomValidate func(Setting) error
	CustomRepair   func(Setting, RNG)
	CustomDefault  func() Setting
}

// N returns the number of parameters in this space.
func (sp *Space) N() int { return len(sp.Params) }

// Names returns the parameter names in index order.
func (sp *Space) Names() []string {
	out := make([]string, len(sp.Params))
	for i := range sp.Params {
		out[i] = sp.Params[i].Name
	}
	return out
}

// Format renders a setting of this space with its parameter names.
func (sp *Space) Format(s Setting) string {
	parts := make([]string, 0, len(s))
	for i, v := range s {
		if i < len(sp.Params) {
			parts = append(parts, fmt.Sprintf("%s=%d", sp.Params[i].Name, v))
		} else {
			parts = append(parts, strconv.Itoa(v))
		}
	}
	return strings.Join(parts, " ")
}

// NewCustom builds a space over arbitrary parameters. validate enforces the
// space's explicit cross-parameter constraints (range membership is always
// checked first); repair canonicalizes a raw draw before validation and may
// be nil; def produces the baseline setting and may be nil (first value of
// every parameter).
func NewCustom(params []Param, validate func(Setting) error, repair func(Setting, RNG), def func() Setting) (*Space, error) {
	if len(params) == 0 {
		return nil, errors.New("space: no parameters")
	}
	for i, p := range params {
		if p.Name == "" {
			return nil, fmt.Errorf("space: parameter %d has no name", i)
		}
		if len(p.Values) == 0 {
			return nil, fmt.Errorf("space: parameter %s has no values", p.Name)
		}
		for j := 1; j < len(p.Values); j++ {
			if p.Values[j] <= p.Values[j-1] {
				return nil, fmt.Errorf("space: parameter %s values not ascending", p.Name)
			}
		}
		if p.Values[0] < 1 {
			return nil, fmt.Errorf("space: parameter %s starts below 1 (log legitimacy)", p.Name)
		}
	}
	if validate == nil {
		validate = func(Setting) error { return nil }
	}
	return &Space{
		Params:         append([]Param(nil), params...),
		CustomValidate: validate,
		CustomRepair:   repair,
		CustomDefault:  def,
	}, nil
}

// maxMergePerDim caps per-dimension unroll/merge factors: beyond 64-point
// amplification per thread every real kernel spills, so larger raw values
// only bloat the space with settings the implicit constraints reject anyway.
const maxMergePerDim = 64

// New builds the Table I parameter space for the given stencil.
func New(st *stencil.Stencil) (*Space, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	maxDim := st.NX
	if st.NY > maxDim {
		maxDim = st.NY
	}
	if st.NZ > maxDim {
		maxDim = st.NZ
	}
	pow2 := func(max int) []int { return stats.Pow2sUpTo(max) }
	mergeRange := func(m int) []int { return pow2(minInt(m, maxMergePerDim)) }

	params := make([]Param, NumParams)
	params[TBX] = Param{Name: "TBx", Kind: KindPow2, Values: pow2(minInt(1024, st.NX))}
	params[TBY] = Param{Name: "TBy", Kind: KindPow2, Values: pow2(minInt(1024, st.NY))}
	params[TBZ] = Param{Name: "TBz", Kind: KindPow2, Values: pow2(minInt(64, st.NZ))}
	params[UseShared] = Param{Name: "useShared", Kind: KindBool, Values: []int{Off, On}}
	params[UseConstant] = Param{Name: "useConstant", Kind: KindBool, Values: []int{Off, On}}
	params[UseStreaming] = Param{Name: "useStreaming", Kind: KindBool, Values: []int{Off, On}}
	params[SD] = Param{Name: "SD", Kind: KindEnum, Values: []int{1, 2, 3}}
	params[SB] = Param{Name: "SB", Kind: KindPow2, Values: pow2(maxDim)}
	params[UFX] = Param{Name: "UFx", Kind: KindPow2, Values: mergeRange(st.NX)}
	params[UFY] = Param{Name: "UFy", Kind: KindPow2, Values: mergeRange(st.NY)}
	params[UFZ] = Param{Name: "UFz", Kind: KindPow2, Values: mergeRange(st.NZ)}
	params[CMX] = Param{Name: "CMx", Kind: KindPow2, Values: mergeRange(st.NX)}
	params[CMY] = Param{Name: "CMy", Kind: KindPow2, Values: mergeRange(st.NY)}
	params[CMZ] = Param{Name: "CMz", Kind: KindPow2, Values: mergeRange(st.NZ)}
	params[BMX] = Param{Name: "BMx", Kind: KindPow2, Values: mergeRange(st.NX)}
	params[BMY] = Param{Name: "BMy", Kind: KindPow2, Values: mergeRange(st.NY)}
	params[BMZ] = Param{Name: "BMz", Kind: KindPow2, Values: mergeRange(st.NZ)}
	params[UseRetiming] = Param{Name: "useRetiming", Kind: KindBool, Values: []int{Off, On}}
	params[UsePrefetching] = Param{Name: "usePrefetching", Kind: KindBool, Values: []int{Off, On}}

	for i := UFX; i <= BMZ; i++ {
		params[i].Biased = true
	}
	return &Space{Stencil: st, Params: params, MaxThreadsPerBlock: 1024}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Default returns the canonical untuned setting: a 256-thread 2-D block, no
// optional optimization enabled. It is always valid and serves as the
// baseline individual seeding searches.
func (sp *Space) Default() Setting {
	if sp.CustomDefault != nil {
		return sp.CustomDefault()
	}
	s := make(Setting, len(sp.Params))
	for i := range s {
		s[i] = sp.Params[i].Values[0]
	}
	s[TBX] = minInt(64, lastVal(sp.Params[TBX]))
	s[TBY] = minInt(4, lastVal(sp.Params[TBY]))
	return s
}

func lastVal(p Param) int { return p.Values[len(p.Values)-1] }

// ErrInvalid wraps all explicit-constraint violations.
var ErrInvalid = errors.New("space: invalid setting")

// Validate checks the explicit constraints of Sec. IV-B. It returns nil for
// a legal setting and an error naming the violated rule otherwise. Implicit
// (resource) constraints are the kernel package's responsibility.
func (sp *Space) Validate(s Setting) error {
	if len(s) != len(sp.Params) {
		return fmt.Errorf("%w: has %d values, want %d", ErrInvalid, len(s), len(sp.Params))
	}
	for i, v := range s {
		if sp.Params[i].Index(v) < 0 {
			return fmt.Errorf("%w: %s=%d outside its range", ErrInvalid, sp.Params[i].Name, v)
		}
	}
	if sp.CustomValidate != nil {
		return sp.CustomValidate(s)
	}
	// TB size cap: TBx*TBy*TBz <= 1024.
	tb := s[TBX] * s[TBY] * s[TBZ]
	if tb > sp.MaxThreadsPerBlock {
		return fmt.Errorf("%w: TB size %d exceeds %d", ErrInvalid, tb, sp.MaxThreadsPerBlock)
	}
	// A warp-width block is required for any coalescing at all; blocks
	// narrower than 1 are impossible anyway (values start at 1).
	if tb < 1 {
		return fmt.Errorf("%w: empty thread block", ErrInvalid)
	}

	st := sp.Stencil
	streaming := s[UseStreaming] == On
	if !streaming {
		// SD and SB are only valid under streaming; canonical form pins
		// them to 1 so equivalent kernels have exactly one encoding.
		if s[SD] != 1 {
			return fmt.Errorf("%w: SD=%d without streaming", ErrInvalid, s[SD])
		}
		if s[SB] != 1 {
			return fmt.Errorf("%w: SB=%d without streaming", ErrInvalid, s[SB])
		}
		// Prefetching hides the inter-iteration synchronization of
		// streaming; without streaming there is nothing to prefetch.
		if s[UsePrefetching] == On {
			return fmt.Errorf("%w: prefetching without streaming", ErrInvalid)
		}
	} else {
		sd := s[SD]
		msd := st.Dim(sd)
		if s[SB] > msd {
			return fmt.Errorf("%w: SB=%d exceeds M_SD=%d", ErrInvalid, s[SB], msd)
		}
		// Concurrent streaming: the unroll factor along the streaming
		// dimension must not exceed the tile extent SB.
		if s[SB] > 1 && s[unrollOf(sd)] > s[SB] {
			return fmt.Errorf("%w: UF along SD (%d) exceeds SB (%d)", ErrInvalid, s[unrollOf(sd)], s[SB])
		}
		// Cyclic merging along the serially-walked streaming dimension
		// would interleave iterations of different tiles; no generator
		// supports that combination.
		if s[cyclicOf(sd)] != 1 {
			return fmt.Errorf("%w: cyclic merging (%d) along streaming dimension", ErrInvalid, s[cyclicOf(sd)])
		}
	}

	// Per-dimension amplification: a thread's merged+unrolled footprint
	// cannot exceed the grid extent.
	dims := []struct {
		uf, cm, bm int
		m          int
		name       string
	}{
		{s[UFX], s[CMX], s[BMX], st.NX, "x"},
		{s[UFY], s[CMY], s[BMY], st.NY, "y"},
		{s[UFZ], s[CMZ], s[BMZ], st.NZ, "z"},
	}
	for _, d := range dims {
		if d.uf*d.cm*d.bm > d.m {
			return fmt.Errorf("%w: UF*CM*BM=%d exceeds M_%s=%d", ErrInvalid, d.uf*d.cm*d.bm, d.name, d.m)
		}
	}
	return nil
}

// unrollOf maps a streaming dimension (1..3) to the unroll parameter index.
func unrollOf(sd int) int {
	switch sd {
	case 1:
		return UFX
	case 2:
		return UFY
	case 3:
		return UFZ
	}
	panic(fmt.Sprintf("space: invalid streaming dimension %d", sd))
}

// UnrollOf is exported for the kernel resource model.
func UnrollOf(sd int) int { return unrollOf(sd) }

// cyclicOf maps a streaming dimension (1..3) to the cyclic-merge parameter.
func cyclicOf(sd int) int {
	switch sd {
	case 1:
		return CMX
	case 2:
		return CMY
	case 3:
		return CMZ
	}
	panic(fmt.Sprintf("space: invalid streaming dimension %d", sd))
}

// CyclicOf is exported for the kernel resource model.
func CyclicOf(sd int) int { return cyclicOf(sd) }

// RNG is the subset of math/rand.Rand the space needs, accepted as an
// interface so deterministic test doubles can drive sampling.
type RNG interface {
	Intn(n int) int
	Float64() float64
}

// Random returns a random *valid* setting. Thread-block extents and flags
// are drawn uniformly; the nine per-thread work multipliers (unroll, cyclic
// and block merging) are drawn geometrically towards small factors, because
// a uniform draw over their full Table I ranges lands almost surely in
// register-spill territory — real samplers (Garvey'15, AN5D) bias the same
// way. Structural rules are repaired in place; residual numeric conflicts
// fall back to rejection, which terminates quickly.
func (sp *Space) Random(rng RNG) Setting {
	for {
		s := make(Setting, len(sp.Params))
		for i := range s {
			vals := sp.Params[i].Values
			if sp.Params[i].Biased {
				s[i] = vals[geomIndex(rng, len(vals))]
			} else {
				s[i] = vals[rng.Intn(len(vals))]
			}
		}
		sp.Repair(s, rng)
		if sp.Validate(s) == nil {
			return s
		}
	}
}

// geomIndex draws an index in [0, n) with P(i) ∝ 2^-i (renormalized by
// clamping the tail into the last slot).
func geomIndex(rng RNG, n int) int {
	i := 0
	for i < n-1 && rng.Float64() < 0.5 {
		i++
	}
	return i
}

// Neighbor returns a valid setting one local move away from s: a single
// parameter nudged to an adjacent legal value, followed by canonical repair.
// When no repairable single-step move exists (or s itself is degenerate) it
// falls back to a fresh random draw, so the result is always valid.
func (sp *Space) Neighbor(s Setting, rng RNG) Setting {
	for tries := 0; tries < 64; tries++ {
		n := s.Clone()
		i := rng.Intn(len(sp.Params))
		vals := sp.Params[i].Values
		j := sp.Params[i].Index(n[i])
		if j < 0 || len(vals) < 2 {
			continue
		}
		switch {
		case j == 0:
			j++
		case j == len(vals)-1:
			j--
		case rng.Intn(2) == 0:
			j--
		default:
			j++
		}
		n[i] = vals[j]
		sp.Repair(n, rng)
		if sp.Validate(n) == nil && !n.Equal(s) {
			return n
		}
	}
	return sp.Random(rng)
}

// Repair rewrites s in place into canonical streaming form and clamps the
// easily-repaired numeric constraints, leaving only rare residual conflicts
// to rejection. The result may still be invalid; callers must re-Validate.
func (sp *Space) Repair(s Setting, rng RNG) {
	if sp.CustomValidate != nil {
		if sp.CustomRepair != nil {
			sp.CustomRepair(s, rng)
		}
		return
	}
	// Canonical non-streaming form.
	if s[UseStreaming] != On {
		s[SD], s[SB] = 1, 1
		s[UsePrefetching] = Off
	} else {
		msd := sp.Stencil.Dim(s[SD])
		for s[SB] > msd {
			s[SB] >>= 1
		}
		if s[SB] > 1 {
			uf := unrollOf(s[SD])
			for s[uf] > s[SB] {
				s[uf] >>= 1
			}
		}
		s[cyclicOf(s[SD])] = 1
	}
	// TB product cap: shrink the largest extent until legal.
	for s[TBX]*s[TBY]*s[TBZ] > sp.MaxThreadsPerBlock {
		switch {
		case s[TBY] >= s[TBX] && s[TBY] >= s[TBZ] && s[TBY] > 1:
			s[TBY] >>= 1
		case s[TBX] >= s[TBZ] && s[TBX] > 1:
			s[TBX] >>= 1
		default:
			s[TBZ] >>= 1
		}
	}
	// Per-dimension amplification caps.
	caps := [3][4]int{
		{UFX, CMX, BMX, sp.Stencil.NX},
		{UFY, CMY, BMY, sp.Stencil.NY},
		{UFZ, CMZ, BMZ, sp.Stencil.NZ},
	}
	for _, c := range caps {
		for s[c[0]]*s[c[1]]*s[c[2]] > c[3] {
			// Halve whichever factor is largest.
			i := c[0]
			if s[c[1]] > s[i] {
				i = c[1]
			}
			if s[c[2]] > s[i] {
				i = c[2]
			}
			if s[i] == 1 {
				break
			}
			s[i] >>= 1
		}
	}
}

// SizeUpperBound returns the unconstrained cartesian-product size of the
// space, the paper's ">100 million parameter settings" headline number.
func (sp *Space) SizeUpperBound() float64 {
	size := 1.0
	for i := range sp.Params {
		size *= float64(len(sp.Params[i].Values))
	}
	return size
}
