package space

import (
	"errors"
	"math/rand"
	"testing"
)

func customSpace(t *testing.T) *Space {
	t.Helper()
	params := []Param{
		{Name: "a", Kind: KindPow2, Values: []int{1, 2, 4, 8}},
		{Name: "b", Kind: KindPow2, Values: []int{1, 2, 4}, Biased: true},
		{Name: "flag", Kind: KindBool, Values: []int{Off, On}},
	}
	validate := func(s Setting) error {
		if s[0]*s[1] > 16 {
			return errors.New("a*b too large")
		}
		return nil
	}
	repair := func(s Setting, rng RNG) {
		for s[0]*s[1] > 16 {
			s[0] >>= 1
		}
	}
	sp, err := NewCustom(params, validate, repair, func() Setting { return Setting{2, 1, Off} })
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestNewCustomValidation(t *testing.T) {
	if _, err := NewCustom(nil, nil, nil, nil); err == nil {
		t.Fatal("no params should error")
	}
	if _, err := NewCustom([]Param{{Name: "", Values: []int{1}}}, nil, nil, nil); err == nil {
		t.Fatal("unnamed param should error")
	}
	if _, err := NewCustom([]Param{{Name: "x"}}, nil, nil, nil); err == nil {
		t.Fatal("empty values should error")
	}
	if _, err := NewCustom([]Param{{Name: "x", Values: []int{2, 2}}}, nil, nil, nil); err == nil {
		t.Fatal("non-ascending values should error")
	}
	if _, err := NewCustom([]Param{{Name: "x", Values: []int{0, 1}}}, nil, nil, nil); err == nil {
		t.Fatal("values below 1 should error (log legitimacy)")
	}
	// nil validate is allowed: range membership only.
	sp, err := NewCustom([]Param{{Name: "x", Values: []int{1, 2}}}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(Setting{2}); err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(Setting{3}); err == nil {
		t.Fatal("out-of-range must still fail")
	}
}

func TestCustomSpaceBasics(t *testing.T) {
	sp := customSpace(t)
	if sp.N() != 3 {
		t.Fatalf("N = %d", sp.N())
	}
	names := sp.Names()
	if names[0] != "a" || names[2] != "flag" {
		t.Fatalf("Names = %v", names)
	}
	def := sp.Default()
	if !def.Equal(Setting{2, 1, Off}) {
		t.Fatalf("Default = %v", def)
	}
	if err := sp.Validate(def); err != nil {
		t.Fatal(err)
	}
	if got := sp.Format(def); got != "a=2 b=1 flag=1" {
		t.Fatalf("Format = %q", got)
	}
}

func TestCustomSpaceConstraints(t *testing.T) {
	sp := customSpace(t)
	if err := sp.Validate(Setting{8, 4, Off}); err == nil {
		t.Fatal("custom constraint a*b>16 should reject")
	}
	if err := sp.Validate(Setting{8, 2, Off}); err != nil {
		t.Fatalf("a*b=16 should pass: %v", err)
	}
	if err := sp.Validate(Setting{8, 2}); err == nil {
		t.Fatal("wrong length should reject")
	}
	if err := sp.Validate(Setting{3, 2, Off}); err == nil {
		t.Fatal("out-of-range value should reject before custom rules")
	}
}

func TestCustomSpaceRandomAndRepair(t *testing.T) {
	sp := customSpace(t)
	rng := rand.New(rand.NewSource(17))
	sawBig, sawFlag := false, false
	for i := 0; i < 300; i++ {
		s := sp.Random(rng)
		if err := sp.Validate(s); err != nil {
			t.Fatalf("Random produced invalid setting %v: %v", s, err)
		}
		if s[0] >= 4 {
			sawBig = true
		}
		if s[2] == On {
			sawFlag = true
		}
	}
	if !sawBig || !sawFlag {
		t.Fatal("random sampling misses regions of the custom space")
	}
	// Repair clamps the violating setting in place.
	s := Setting{8, 4, Off}
	sp.Repair(s, rng)
	if err := sp.Validate(s); err != nil {
		t.Fatalf("Repair left invalid setting %v: %v", s, err)
	}
}

func TestCustomSpaceBiasedSampling(t *testing.T) {
	sp := customSpace(t)
	rng := rand.New(rand.NewSource(23))
	ones := 0
	const n = 1000
	for i := 0; i < n; i++ {
		s := sp.Random(rng)
		if s[1] == 1 {
			ones++
		}
	}
	// Geometric bias gives P(b=1) = 0.5 versus 1/3 under uniform draws;
	// 430/1000 separates the two hypotheses with huge margin.
	if ones < 430 {
		t.Fatalf("biased parameter drew 1 only %d/%d times", ones, n)
	}
}

func TestStencilSpaceFormatMatchesSettingString(t *testing.T) {
	sp := newSpace(t)
	s := sp.Default()
	if sp.Format(s) != s.String() {
		t.Fatal("Space.Format should agree with Setting.String for the stencil space")
	}
}
