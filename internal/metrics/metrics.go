// Package metrics implements csTuner's metric-combination stage (paper
// Sec. IV-D, Algorithm 2): GPU metrics collected with the profiler are too
// numerous to model individually, so pair-wise Pearson-correlated metrics
// are combined into collections with a deque, and one representative per
// collection — the metric most correlated with execution time — feeds the
// PMNF performance models.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/deque"
	"repro/internal/stats"
)

// PairPCC records the absolute Pearson correlation of one metric pair.
type PairPCC struct {
	A, B string
	PCC  float64 // |r|, higher = stronger linear correlation
}

// PairPCCs computes |PCC| for every unordered pair of the named metrics
// over the dataset. Metrics missing from any sample cause an error.
func PairPCCs(ds *dataset.Dataset, names []string) ([]PairPCC, error) {
	cols := make(map[string][]float64, len(names))
	for _, n := range names {
		c, err := ds.MetricColumn(n)
		if err != nil {
			return nil, err
		}
		cols[n] = c
	}
	var out []PairPCC
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			r, err := stats.PCC(cols[names[i]], cols[names[j]])
			if err != nil {
				return nil, fmt.Errorf("metrics: PCC(%s,%s): %w", names[i], names[j], err)
			}
			out = append(out, PairPCC{A: names[i], B: names[j], PCC: math.Abs(r)})
		}
	}
	return out, nil
}

// Combine runs Algorithm 2: metric pairs are pushed into a deque in
// ascending |PCC| order and popped from the right (most correlated first).
// A pair with both metrics unseen opens a new collection while fewer than
// numCollections exist; a pair bridging a collection and an unseen metric
// merges the metric into that collection; pairs inside existing collections
// are skipped. Metrics never absorbed (pairs exhausted while collections
// were full) are appended as singleton collections so every metric remains
// addressable downstream.
func Combine(pairs []PairPCC, numCollections int) [][]string {
	if numCollections <= 0 {
		numCollections = 4
	}
	sorted := append([]PairPCC(nil), pairs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].PCC < sorted[j].PCC })

	dq := deque.New[PairPCC](len(sorted))
	all := map[string]bool{}
	for _, p := range sorted {
		dq.PushBack(p)
		all[p.A] = true
		all[p.B] = true
	}

	var collections [][]string
	find := func(m string) int {
		for ci, c := range collections {
			for _, x := range c {
				if x == m {
					return ci
				}
			}
		}
		return -1
	}

	for !dq.Empty() {
		pair, _ := dq.PopBack()
		ca, cb := find(pair.A), find(pair.B)
		switch {
		case ca < 0 && cb < 0:
			if len(collections) < numCollections {
				collections = append(collections, []string{pair.A, pair.B})
			}
		case ca >= 0 && cb >= 0:
			// both placed: skip
		case ca >= 0:
			collections[ca] = append(collections[ca], pair.B)
		default:
			collections[cb] = append(collections[cb], pair.A)
		}
	}

	// Orphans (possible when collections filled before their pairs
	// surfaced) become singletons.
	for m := range all {
		if find(m) < 0 {
			collections = append(collections, []string{m})
		}
	}
	sort.Slice(collections, func(i, j int) bool { return collections[i][0] < collections[j][0] })
	return collections
}

// Selected is one representative metric chosen for performance modeling.
type Selected struct {
	Name    string
	TimePCC float64 // signed correlation with execution time
}

// Select picks, from every collection, the metric with the highest |PCC|
// against execution time, reporting the signed correlation (the sign decides
// which side of the metric's distribution is "good" during sampling).
func Select(ds *dataset.Dataset, collections [][]string) ([]Selected, error) {
	times := ds.Times()
	var out []Selected
	for _, c := range collections {
		best := ""
		bestAbs := -1.0
		bestSigned := 0.0
		for _, name := range c {
			col, err := ds.MetricColumn(name)
			if err != nil {
				return nil, err
			}
			r, err := stats.PCC(col, times)
			if err != nil {
				return nil, err
			}
			if a := math.Abs(r); a > bestAbs {
				best, bestAbs, bestSigned = name, a, r
			}
		}
		if best != "" {
			out = append(out, Selected{Name: best, TimePCC: bestSigned})
		}
	}
	return out, nil
}
