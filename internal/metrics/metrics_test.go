package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	sp, err := space.New(stencil.Cheby())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(21)), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPairPCCs(t *testing.T) {
	ds := testDataset(t)
	names := sim.MetricNames()
	pairs, err := PairPCCs(ds, names)
	if err != nil {
		t.Fatal(err)
	}
	want := len(names) * (len(names) - 1) / 2
	if len(pairs) != want {
		t.Fatalf("pair count = %d, want %d", len(pairs), want)
	}
	for _, p := range pairs {
		if p.PCC < 0 || p.PCC > 1+1e-9 {
			t.Fatalf("|PCC| out of range: %v", p.PCC)
		}
	}
	if _, err := PairPCCs(ds, []string{"nope", "also_nope"}); err == nil {
		t.Fatal("unknown metric should error")
	}
}

func TestCombineCollections(t *testing.T) {
	ds := testDataset(t)
	names := sim.MetricNames()
	pairs, err := PairPCCs(ds, names)
	if err != nil {
		t.Fatal(err)
	}
	cols := Combine(pairs, 4)
	// Every metric appears exactly once.
	seen := map[string]int{}
	for _, c := range cols {
		if len(c) == 0 {
			t.Fatal("empty collection")
		}
		for _, m := range c {
			seen[m]++
		}
	}
	for _, n := range names {
		if seen[n] != 1 {
			t.Fatalf("metric %s appears %d times", n, seen[n])
		}
	}
	// There must be some aggregation: fewer collections than metrics.
	if len(cols) >= len(names) {
		t.Fatalf("no aggregation happened: %d collections for %d metrics", len(cols), len(names))
	}
}

func TestCombineSynthetic(t *testing.T) {
	// a-b strongly correlated, c uncorrelated; 1 collection allowed.
	pairs := []PairPCC{
		{A: "a", B: "b", PCC: 0.99},
		{A: "a", B: "c", PCC: 0.10},
		{A: "b", B: "c", PCC: 0.05},
	}
	cols := Combine(pairs, 1)
	// a-b opens the single allowed collection; the a-c bridge then merges
	// c into it (Algorithm 2 places no size cap on merges).
	if len(cols) != 1 || len(cols[0]) != 3 {
		t.Fatalf("collections = %v, want one collection of three", cols)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		for _, m := range c {
			seen[m] = true
		}
	}
	if !seen["a"] || !seen["b"] || !seen["c"] {
		t.Fatalf("lost a metric: %v", cols)
	}
}

func TestCombineDefaultCollections(t *testing.T) {
	pairs := []PairPCC{{A: "a", B: "b", PCC: 0.5}}
	cols := Combine(pairs, 0)
	if len(cols) != 1 || len(cols[0]) != 2 {
		t.Fatalf("Combine default = %v", cols)
	}
}

func TestSelectPicksTimeCorrelated(t *testing.T) {
	ds := testDataset(t)
	names := sim.MetricNames()
	pairs, err := PairPCCs(ds, names)
	if err != nil {
		t.Fatal(err)
	}
	cols := Combine(pairs, 4)
	sel, err := Select(ds, cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != len(cols) {
		t.Fatalf("selected %d metrics for %d collections", len(sel), len(cols))
	}
	// gpu__time_duration is time itself; whichever collection holds it must
	// select a metric with |PCC| == 1 against time — i.e. duration or a
	// perfect proxy.
	foundStrong := false
	for _, s := range sel {
		if math.Abs(s.TimePCC) > 0.95 {
			foundStrong = true
		}
		if math.Abs(s.TimePCC) > 1+1e-9 {
			t.Fatalf("impossible PCC %v", s.TimePCC)
		}
	}
	if !foundStrong {
		t.Fatal("no selected metric strongly tracks execution time")
	}
}

func TestSelectErrorsOnUnknownMetric(t *testing.T) {
	ds := testDataset(t)
	if _, err := Select(ds, [][]string{{"bogus"}}); err == nil {
		t.Fatal("unknown metric should error")
	}
}
