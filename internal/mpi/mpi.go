// Package mpi is a minimal channel-based message-passing layer standing in
// for the MPI runtime the paper's multi-process genetic algorithm uses
// (Sec. IV-E, Fig. 6). Ranks run as goroutines; point-to-point Send/Recv
// pairs are buffered channels; the single-ring topology helpers mirror the
// migration pattern of Xiao et al. that the paper adopts.
package mpi

import (
	"errors"
	"fmt"
)

// Comm is a communicator over a fixed number of ranks.
type Comm struct {
	size  int
	links [][]chan interface{} // links[from][to]
}

// ErrClosed is returned when communicating on a finalized communicator.
var ErrClosed = errors.New("mpi: communicator finalized")

// New creates a communicator with n ranks and per-link buffering. A buffer
// of a few messages keeps lock-step exchange patterns (everyone sends, then
// everyone receives) deadlock-free.
func New(n int) (*Comm, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: invalid communicator size %d", n)
	}
	c := &Comm{size: n, links: make([][]chan interface{}, n)}
	for i := 0; i < n; i++ {
		c.links[i] = make([]chan interface{}, n)
		for j := 0; j < n; j++ {
			c.links[i][j] = make(chan interface{}, 4)
		}
	}
	return c, nil
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Send delivers msg from rank `from` to rank `to`. It blocks only when the
// link buffer is full.
func (c *Comm) Send(from, to int, msg interface{}) error {
	if err := c.check(from, to); err != nil {
		return err
	}
	c.links[from][to] <- msg
	return nil
}

// Recv blocks until a message from rank `from` arrives at rank `to`.
func (c *Comm) Recv(to, from int) (interface{}, error) {
	if err := c.check(from, to); err != nil {
		return nil, err
	}
	msg, ok := <-c.links[from][to]
	if !ok {
		return nil, ErrClosed
	}
	return msg, nil
}

func (c *Comm) check(a, b int) error {
	if a < 0 || a >= c.size || b < 0 || b >= c.size {
		return fmt.Errorf("mpi: rank out of range (%d,%d) with size %d", a, b, c.size)
	}
	return nil
}

// Left returns the ring-left neighbour of rank r.
func (c *Comm) Left(r int) int { return (r - 1 + c.size) % c.size }

// Right returns the ring-right neighbour of rank r.
func (c *Comm) Right(r int) int { return (r + 1) % c.size }

// RingExchange sends msg to both ring neighbours of rank r and returns the
// two messages received from them (left, right). With size 1 it returns the
// rank's own message twice, mimicking MPI self-sends on a trivial ring.
func (c *Comm) RingExchange(r int, msg interface{}) (left, right interface{}, err error) {
	if c.size == 1 {
		return msg, msg, nil
	}
	if err := c.Send(r, c.Left(r), msg); err != nil {
		return nil, nil, err
	}
	if err := c.Send(r, c.Right(r), msg); err != nil {
		return nil, nil, err
	}
	left, err = c.Recv(r, c.Left(r))
	if err != nil {
		return nil, nil, err
	}
	right, err = c.Recv(r, c.Right(r))
	if err != nil {
		return nil, nil, err
	}
	return left, right, nil
}
