package mpi

import (
	"sync"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("size 0 should error")
	}
	c, err := New(3)
	if err != nil || c.Size() != 3 {
		t.Fatalf("New(3) = %v, %v", c, err)
	}
}

func TestSendRecv(t *testing.T) {
	c, _ := New(2)
	if err := c.Send(0, 1, "hi"); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Recv(1, 0)
	if err != nil || msg.(string) != "hi" {
		t.Fatalf("Recv = %v, %v", msg, err)
	}
}

func TestRankBounds(t *testing.T) {
	c, _ := New(2)
	if err := c.Send(0, 5, nil); err == nil {
		t.Fatal("out-of-range destination should error")
	}
	if err := c.Send(-1, 0, nil); err == nil {
		t.Fatal("out-of-range source should error")
	}
	if _, err := c.Recv(3, 0); err == nil {
		t.Fatal("out-of-range receiver should error")
	}
}

func TestRingNeighbours(t *testing.T) {
	c, _ := New(4)
	if c.Left(0) != 3 || c.Right(3) != 0 || c.Left(2) != 1 || c.Right(1) != 2 {
		t.Fatal("ring arithmetic wrong")
	}
}

func TestRingExchangeSingle(t *testing.T) {
	c, _ := New(1)
	l, r, err := c.RingExchange(0, 42)
	if err != nil || l.(int) != 42 || r.(int) != 42 {
		t.Fatalf("self ring = %v %v %v", l, r, err)
	}
}

func TestRingExchangeConcurrent(t *testing.T) {
	const n = 5
	c, _ := New(n)
	got := make([][2]int, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			l, rt, err := c.RingExchange(rank, rank)
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			got[rank] = [2]int{l.(int), rt.(int)}
		}(r)
	}
	wg.Wait()
	for rank := 0; rank < n; rank++ {
		wantL := (rank - 1 + n) % n
		wantR := (rank + 1) % n
		if got[rank][0] != wantL || got[rank][1] != wantR {
			t.Fatalf("rank %d received %v, want [%d %d]", rank, got[rank], wantL, wantR)
		}
	}
}

func TestRingExchangeTwoRanksRepeated(t *testing.T) {
	// With two ranks, left == right; repeated generations must not deadlock.
	c, _ := New(2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for gen := 0; gen < 50; gen++ {
				l, rt, err := c.RingExchange(rank, rank*100+gen)
				if err != nil {
					t.Errorf("rank %d gen %d: %v", rank, gen, err)
					return
				}
				other := (1 - rank) * 100
				if l.(int)-other != gen || rt.(int)-other != gen {
					t.Errorf("rank %d gen %d: got %v/%v", rank, gen, l, rt)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}
