// Package dataset collects and stores the small-scale performance dataset
// that seeds the csTuner pipeline (paper Sec. IV-A): a random sample of
// parameter settings, each measured once on the target GPU with its full
// Nsight-style metric report. Parameter grouping reads the best setting and
// the pair sweeps from it; PMNF fitting reads the metric columns.
package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
	"repro/internal/space"
)

// Sample is one measured setting.
type Sample struct {
	Setting space.Setting      `json:"setting"`
	TimeMS  float64            `json:"time_ms"`
	Metrics map[string]float64 `json:"metrics"`
}

// Dataset is the performance dataset for one (stencil, architecture) pair.
type Dataset struct {
	Stencil string   `json:"stencil"`
	Arch    string   `json:"arch"`
	Samples []Sample `json:"samples"`
}

// Runner is the measurement surface Collect needs: the simulator implements
// it; tests can substitute doubles.
type Runner interface {
	Run(s space.Setting) (*sim.Result, error)
	Space() *space.Space
}

// Collect randomly samples the constrained space until n valid settings have
// been measured (deduplicated by setting key). maxTries bounds the rejection
// loop; <=0 means 1000·n.
func Collect(r Runner, rng space.RNG, n, maxTries int) (*Dataset, error) {
	if n <= 0 {
		return nil, errors.New("dataset: non-positive sample count")
	}
	if maxTries <= 0 {
		maxTries = 1000 * n
	}
	sp := r.Space()
	ds := &Dataset{}
	if sp.Stencil != nil {
		ds.Stencil = sp.Stencil.Name
	}
	seen := make(map[string]struct{}, n)
	for tries := 0; len(ds.Samples) < n && tries < maxTries; tries++ {
		set := sp.Random(rng)
		key := set.Key()
		if _, dup := seen[key]; dup {
			continue
		}
		res, err := r.Run(set)
		if err != nil {
			continue // implicit-constraint rejects are expected
		}
		seen[key] = struct{}{}
		ds.Samples = append(ds.Samples, Sample{
			Setting: set,
			TimeMS:  res.TimeMS,
			Metrics: res.Metrics,
		})
	}
	if len(ds.Samples) < n {
		return nil, fmt.Errorf("dataset: collected only %d/%d samples within try budget", len(ds.Samples), n)
	}
	labelArch(ds, r)
	return ds, nil
}

// labelArch records the modelled GPU behind the runner, when one is exposed
// (directly by the simulator, or forwarded through a wrapper such as the
// evaluation engine).
func labelArch(ds *Dataset, r Runner) {
	if ap, ok := r.(sim.ArchProvider); ok {
		if arch := ap.Architecture(); arch != nil {
			ds.Arch = arch.Name
		}
	}
}

// BatchRunner is the parallel measurement surface CollectBatch needs; the
// evaluation engine (internal/engine) implements it over any Runner.
type BatchRunner interface {
	Runner
	RunBatch(settings []space.Setting) ([]*sim.Result, []error)
}

// CollectBatch is Collect with the measurements dispatched through the
// runner's worker pool. For a deterministic runner it selects exactly the
// samples sequential Collect would: candidate settings are drawn from rng in
// chunks, measured in parallel, then replayed in draw order against the same
// dedup/try-budget rules. The one observable difference is that rng may be
// drawn past the point where the n-th sample lands, so callers must not
// share rng with a later pipeline stage — core.Tune's internal collection
// stays sequential for precisely that reason.
func CollectBatch(r BatchRunner, rng space.RNG, n, maxTries int) (*Dataset, error) {
	if n <= 0 {
		return nil, errors.New("dataset: non-positive sample count")
	}
	if maxTries <= 0 {
		maxTries = 1000 * n
	}
	sp := r.Space()
	ds := &Dataset{}
	if sp.Stencil != nil {
		ds.Stencil = sp.Stencil.Name
	}
	type outcome struct {
		res *sim.Result
		err error
	}
	seen := make(map[string]struct{}, n)
	tries := 0
	for len(ds.Samples) < n && tries < maxTries {
		chunk := 2 * n
		if chunk > maxTries-tries {
			chunk = maxTries - tries
		}
		draws := make([]space.Setting, chunk)
		keys := make([]string, chunk)
		for i := range draws {
			draws[i] = sp.Random(rng)
			keys[i] = draws[i].Key()
		}
		// Measure each new key once, in parallel.
		var toRun []space.Setting
		pending := make(map[string]struct{}, chunk)
		for i, set := range draws {
			if _, dup := seen[keys[i]]; dup {
				continue
			}
			if _, dup := pending[keys[i]]; dup {
				continue
			}
			pending[keys[i]] = struct{}{}
			toRun = append(toRun, set)
		}
		results, errs := r.RunBatch(toRun)
		byKey := make(map[string]outcome, len(toRun))
		for i, set := range toRun {
			byKey[set.Key()] = outcome{res: results[i], err: errs[i]}
		}
		// Replay in draw order under the sequential rules; draws past the
		// n-th accepted sample are not charged to the try budget, exactly
		// as Collect never makes them.
		for i, set := range draws {
			if len(ds.Samples) == n {
				break
			}
			tries++
			if _, dup := seen[keys[i]]; dup {
				continue
			}
			o := byKey[keys[i]]
			if o.err != nil {
				continue // implicit-constraint rejects are expected
			}
			seen[keys[i]] = struct{}{}
			ds.Samples = append(ds.Samples, Sample{
				Setting: set,
				TimeMS:  o.res.TimeMS,
				Metrics: o.res.Metrics,
			})
		}
	}
	if len(ds.Samples) < n {
		return nil, fmt.Errorf("dataset: collected only %d/%d samples within try budget", len(ds.Samples), n)
	}
	labelArch(ds, r)
	return ds, nil
}

// Best returns the sample with the lowest time. It panics on an empty
// dataset; Collect never returns one.
func (d *Dataset) Best() Sample {
	best := 0
	for i := range d.Samples {
		if d.Samples[i].TimeMS < d.Samples[best].TimeMS {
			best = i
		}
	}
	return d.Samples[best]
}

// SortedByTime returns sample indices ordered fastest-first.
func (d *Dataset) SortedByTime() []int {
	idx := make([]int, len(d.Samples))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return d.Samples[idx[a]].TimeMS < d.Samples[idx[b]].TimeMS
	})
	return idx
}

// MetricColumn extracts one metric across all samples, in sample order.
// Missing entries are reported as an error, because a partially-collected
// metric would silently skew PCC computations.
func (d *Dataset) MetricColumn(name string) ([]float64, error) {
	out := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		v, ok := s.Metrics[name]
		if !ok {
			return nil, fmt.Errorf("dataset: sample %d missing metric %q", i, name)
		}
		out[i] = v
	}
	return out, nil
}

// Times returns the measured times in sample order.
func (d *Dataset) Times() []float64 {
	out := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = s.TimeMS
	}
	return out
}

// ParamColumn extracts one parameter's raw value across all samples.
func (d *Dataset) ParamColumn(p int) ([]float64, error) {
	if p < 0 || len(d.Samples) == 0 || p >= len(d.Samples[0].Setting) {
		return nil, fmt.Errorf("dataset: parameter index %d out of range", p)
	}
	out := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = float64(s.Setting[p])
	}
	return out, nil
}

// Lookup returns the sample with the given setting, if present.
func (d *Dataset) Lookup(s space.Setting) (Sample, bool) {
	key := s.Key()
	for i := range d.Samples {
		if d.Samples[i].Setting.Key() == key {
			return d.Samples[i], true
		}
	}
	return Sample{}, false
}

// Save serializes the dataset as JSON.
func (d *Dataset) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// Load reads a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	if len(d.Samples) == 0 {
		return nil, errors.New("dataset: empty dataset")
	}
	return &d, nil
}
