package dataset

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func collect(t *testing.T, n int) (*Dataset, *sim.Simulator) {
	t.Helper()
	sp, err := space.New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := Collect(s, rand.New(rand.NewSource(3)), n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ds, s
}

func TestCollectBasics(t *testing.T) {
	ds, _ := collect(t, 32)
	if len(ds.Samples) != 32 {
		t.Fatalf("collected %d samples, want 32", len(ds.Samples))
	}
	if ds.Stencil != "j3d7pt" || ds.Arch != "A100" {
		t.Fatalf("labels = %s/%s", ds.Stencil, ds.Arch)
	}
	seen := map[string]bool{}
	for _, s := range ds.Samples {
		if s.TimeMS <= 0 {
			t.Fatal("non-positive time")
		}
		if len(s.Metrics) < 15 {
			t.Fatalf("sample has only %d metrics", len(s.Metrics))
		}
		k := s.Setting.Key()
		if seen[k] {
			t.Fatal("duplicate setting in dataset")
		}
		seen[k] = true
	}
}

func TestCollectRejectsBadArgs(t *testing.T) {
	_, s := collect(t, 4)
	if _, err := Collect(s, rand.New(rand.NewSource(1)), 0, 0); err == nil {
		t.Fatal("n=0 should error")
	}
	// Impossible budget: 8 samples within 3 tries.
	if _, err := Collect(s, rand.New(rand.NewSource(1)), 8, 3); err == nil {
		t.Fatal("tiny try budget should error")
	}
}

func TestBestAndSorted(t *testing.T) {
	ds, _ := collect(t, 24)
	best := ds.Best()
	for _, s := range ds.Samples {
		if s.TimeMS < best.TimeMS {
			t.Fatal("Best is not minimal")
		}
	}
	idx := ds.SortedByTime()
	if len(idx) != 24 {
		t.Fatal("SortedByTime length")
	}
	for i := 1; i < len(idx); i++ {
		if ds.Samples[idx[i-1]].TimeMS > ds.Samples[idx[i]].TimeMS {
			t.Fatal("SortedByTime not ascending")
		}
	}
	if ds.Samples[idx[0]].TimeMS != best.TimeMS {
		t.Fatal("sorted[0] disagrees with Best")
	}
}

func TestColumns(t *testing.T) {
	ds, _ := collect(t, 16)
	col, err := ds.MetricColumn("sm__occupancy_achieved")
	if err != nil || len(col) != 16 {
		t.Fatalf("MetricColumn: %v len %d", err, len(col))
	}
	if _, err := ds.MetricColumn("no_such_metric"); err == nil {
		t.Fatal("missing metric should error")
	}
	times := ds.Times()
	for i := range times {
		if times[i] != ds.Samples[i].TimeMS {
			t.Fatal("Times mismatch")
		}
	}
	pc, err := ds.ParamColumn(space.TBX)
	if err != nil || len(pc) != 16 {
		t.Fatalf("ParamColumn: %v", err)
	}
	if _, err := ds.ParamColumn(-1); err == nil {
		t.Fatal("bad param index should error")
	}
	if _, err := ds.ParamColumn(space.NumParams); err == nil {
		t.Fatal("out-of-range param index should error")
	}
}

func TestLookup(t *testing.T) {
	ds, _ := collect(t, 8)
	s, ok := ds.Lookup(ds.Samples[3].Setting)
	if !ok || s.TimeMS != ds.Samples[3].TimeMS {
		t.Fatal("Lookup failed for a present setting")
	}
	sp, _ := space.New(stencil.J3D7PT())
	other := sp.Default()
	other[space.TBX] = 1
	other[space.TBY] = 1
	if _, ok := ds.Lookup(other); ok {
		t.Fatal("Lookup matched an absent setting")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, _ := collect(t, 8)
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stencil != ds.Stencil || got.Arch != ds.Arch || len(got.Samples) != len(ds.Samples) {
		t.Fatal("round trip changed header")
	}
	for i := range ds.Samples {
		if !got.Samples[i].Setting.Equal(ds.Samples[i].Setting) {
			t.Fatal("round trip changed a setting")
		}
		if got.Samples[i].TimeMS != ds.Samples[i].TimeMS {
			t.Fatal("round trip changed a time")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage should error")
	}
	if _, err := Load(bytes.NewBufferString(`{"stencil":"x","samples":[]}`)); err == nil {
		t.Fatal("empty dataset should error")
	}
}
