// Package kernel is the analytical "compiler" of the reproduction: given a
// stencil, a parameter setting and a target GPU architecture it derives the
// launch geometry, the per-thread register and per-block shared-memory
// footprint, the effective global-memory access pattern after all reuse
// optimizations, and the implicit resource constraints (paper Sec. IV-B:
// "csTuner checks the above constraints before generating the search codes
// so that only non-spilled parameter settings are explored").
//
// It also emits CUDA-C source text for each setting (the code-generation
// stage whose cost Fig. 12 accounts for) and provides a CPU executor that
// walks the *transformed* iteration order so tests can prove every
// blocking/merging/streaming combination still computes the naive sweep.
package kernel

import (
	"errors"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/space"
	"repro/internal/stencil"
)

// ErrResource wraps all implicit-constraint violations: settings that pass
// the explicit Table I rules but cannot be compiled without spilling or
// exceeding shared memory.
var ErrResource = errors.New("kernel: resource constraint violated")

// Kernel is the build product for one (stencil, setting, arch) triple. All
// fields are inputs to the execution-time model in package sim.
type Kernel struct {
	Stencil *stencil.Stencil
	Setting space.Setting
	Arch    *gpu.Arch

	// Launch geometry.
	ThreadsPerBlock    int
	GridBlocks         int
	IterationsPerBlock int // serial streaming steps per block (1 when not streaming)

	// Per-thread work decomposition: Adj* is the contiguous cluster a
	// thread owns (unroll × block merge), Cyc* the cyclic replication.
	AdjX, AdjY, AdjZ int
	CycX, CycY, CycZ int
	PointsPerThread  int // AdjX*AdjY*AdjZ*CycX*CycY*CycZ

	// Streaming configuration.
	Streaming bool
	SDim      int // 1=X 2=Y 3=Z, meaningful when Streaming
	SBTiles   int
	TileLen   int // points along SDim per concurrent tile

	// Resources.
	RegsPerThread  int
	SharedPerBlock int
	Occ            gpu.Occupancy

	// Memory behaviour.
	LoadsPerPoint float64 // global load instructions per output point after reuse
	GuardFrac     float64 // active fraction of the padded iteration space

	// Optimization flags resolved from the setting.
	UsesShared   bool
	UsesConstant bool
	Retiming     bool
	Prefetch     bool

	// InstrPerPoint estimates dynamic instructions per output point
	// including amortized index arithmetic and retiming overhead.
	InstrPerPoint float64
}

// Build compiles the setting. sp must be the space of k.Stencil; the setting
// is validated against both the explicit (space) and implicit (resource)
// constraints. On success the returned kernel is ready for simulation.
func Build(sp *space.Space, s space.Setting, arch *gpu.Arch) (*Kernel, error) {
	if err := sp.Validate(s); err != nil {
		return nil, err
	}
	st := sp.Stencil
	k := &Kernel{Stencil: st, Setting: s.Clone(), Arch: arch}

	k.AdjX = s[space.UFX] * s[space.BMX]
	k.AdjY = s[space.UFY] * s[space.BMY]
	k.AdjZ = s[space.UFZ] * s[space.BMZ]
	k.CycX, k.CycY, k.CycZ = s[space.CMX], s[space.CMY], s[space.CMZ]
	k.PointsPerThread = k.AdjX * k.AdjY * k.AdjZ * k.CycX * k.CycY * k.CycZ

	k.UsesShared = s[space.UseShared] == space.On
	k.UsesConstant = s[space.UseConstant] == space.On
	k.Retiming = s[space.UseRetiming] == space.On
	k.Prefetch = s[space.UsePrefetching] == space.On
	k.Streaming = s[space.UseStreaming] == space.On
	k.ThreadsPerBlock = s[space.TBX] * s[space.TBY] * s[space.TBZ]

	// Cheap early reject: each in-flight output point costs at least one
	// FP64 accumulator (2 registers); past this bound no scheduler avoids
	// a spill, and the exact union computation below would only be slower.
	adjPoints := k.AdjX * k.AdjY * k.AdjZ
	if 2*adjPoints*st.Outputs > 4*arch.MaxRegsPerThread {
		return nil, fmt.Errorf("%w: %d merged points x %d outputs cannot fit the register file",
			ErrResource, adjPoints, st.Outputs)
	}

	if err := k.layoutGeometry(s); err != nil {
		return nil, err
	}
	if err := k.estimateResources(); err != nil {
		return nil, err
	}

	occ, err := arch.ComputeOccupancy(k.ThreadsPerBlock, k.RegsPerThread, k.SharedPerBlock)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrResource, err)
	}
	k.Occ = occ
	k.estimateAccessPattern()
	return k, nil
}

// layoutGeometry derives the grid of thread blocks, the per-block streaming
// iteration count, and the active fraction of the padded iteration space.
func (k *Kernel) layoutGeometry(s space.Setting) error {
	st := k.Stencil
	n := [3]int{st.NX, st.NY, st.NZ}
	tb := [3]int{s[space.TBX], s[space.TBY], s[space.TBZ]}
	adj := [3]int{k.AdjX, k.AdjY, k.AdjZ}
	cyc := [3]int{k.CycX, k.CycY, k.CycZ}

	blocks := 1
	active := 1.0
	k.IterationsPerBlock = 1

	for d := 0; d < 3; d++ {
		if k.Streaming && s[space.SD] == d+1 {
			// Streaming dimension: SB concurrent tiles, each walked
			// serially in steps of TB_d × Adj_d points.
			k.SDim = d + 1
			k.SBTiles = s[space.SB]
			k.TileLen = ceilDiv(n[d], k.SBTiles)
			step := tb[d] * adj[d]
			iters := ceilDiv(k.TileLen, step)
			k.IterationsPerBlock = iters
			blocks *= k.SBTiles
			padded := k.SBTiles * iters * step
			active *= float64(n[d]) / float64(padded)
			continue
		}
		// Regular dimension: cyclic copies stride over the padded thread
		// count, adjacent clusters sit under each thread.
		perThread := adj[d] * cyc[d]
		threads := ceilDiv(n[d], perThread)
		b := ceilDiv(threads, tb[d])
		blocks *= b
		padded := b * tb[d] * perThread
		active *= float64(n[d]) / float64(padded)
	}

	if blocks <= 0 {
		return fmt.Errorf("%w: empty grid", ErrResource)
	}
	k.GridBlocks = blocks
	k.GuardFrac = active
	return nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
