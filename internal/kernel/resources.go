package kernel

import (
	"fmt"
	"math"

	"repro/internal/space"
	"repro/internal/stencil"
)

func pow(x, y float64) float64 { return math.Pow(x, y) }

// Register model constants. The absolute numbers are calibrated against
// ptxas resource reports for the PPoPP'18 stencil kernels; what matters for
// the tuner is the *shape*: pressure grows with merged points, live tap
// unions, and prefetch double-buffering, and shrinks with shared-memory
// staging and retiming.
const (
	baseRegs         = 18   // index arithmetic, loop counters, predicates
	regsPerPointer   = 2    // 64-bit global pointer
	regsPerFP64      = 2    // one double occupies two 32-bit registers
	livenessDiscount = 0.55 // scheduler reuse within the tap union
	livenessExponent = 0.9  // rematerialization saturates liveness sub-linearly
	retimingDiscount = 0.6  // register homogenization for order >= 2
)

// estimateResources fills RegsPerThread and SharedPerBlock and enforces the
// implicit constraints (spill-free registers, shared memory capacity).
func (k *Kernel) estimateResources() error {
	st := k.Stencil
	arch := k.Arch

	regs := baseRegs + regsPerPointer*(st.Inputs+st.Outputs)

	// Accumulators: every in-flight merged point of every output array.
	adjPoints := k.AdjX * k.AdjY * k.AdjZ
	regs += regsPerFP64 * st.Outputs * adjPoints

	// Live input values.
	if k.UsesShared {
		// Neighbours come from shared memory; threads keep only the
		// handful of values in flight between smem loads and FMAs.
		regs += regsPerFP64 * (st.Inputs + 2)
	} else {
		union := unionTaps(st, k.AdjX, k.AdjY, k.AdjZ)
		live := livenessDiscount * pow(float64(union), livenessExponent)
		if k.Retiming && st.Order >= 2 {
			live *= retimingDiscount
		}
		regs += int(float64(regsPerFP64) * live)
	}

	// Prefetching double-buffers the next streaming plane in registers.
	if k.Prefetch {
		planeA, planeB := planeExtent(k)
		regs += regsPerFP64 * starArrays(st) * planeA * planeB
	}

	if regs > arch.SpillRegsPerThread {
		return fmt.Errorf("%w: %d registers/thread would spill (limit %d)",
			ErrResource, regs, arch.SpillRegsPerThread)
	}
	k.RegsPerThread = regs

	// Shared memory: staged block tile plus halo for every array with
	// neighbour taps.
	if k.UsesShared {
		h := 2 * st.Order
		tx := k.Setting[space.TBX]*k.AdjX + h
		ty := k.Setting[space.TBY]*k.AdjY + h
		var tz int
		if k.Streaming {
			// Rolling window: the walked dimension keeps Adj+2*Order
			// planes resident; the two block extents orthogonal to it
			// replace the corresponding tile extents.
			switch k.SDim {
			case 1:
				tx = k.AdjX + h
			case 2:
				ty = k.AdjY + h
			case 3:
				// handled below: tz is the window
			}
			if k.SDim == 3 {
				tz = k.AdjZ + h
			} else {
				tz = k.Setting[space.TBZ]*k.AdjZ + h
			}
		} else {
			tz = k.Setting[space.TBZ]*k.AdjZ + h
		}
		bytes := tx * ty * tz * 8 * starArrays(st)
		if bytes > arch.SharedMemPerBlock {
			return fmt.Errorf("%w: %dB shared memory exceeds per-block max %dB",
				ErrResource, bytes, arch.SharedMemPerBlock)
		}
		k.SharedPerBlock = bytes
	}
	return nil
}

// planeExtent returns the two adjacent-cluster extents orthogonal to the
// streaming dimension (used to size the prefetch double buffer). For
// non-streaming kernels prefetching is forbidden by the explicit
// constraints, so the return value is unused, but it stays well-defined.
func planeExtent(k *Kernel) (int, int) {
	switch k.SDim {
	case 1:
		return k.AdjY, k.AdjZ
	case 2:
		return k.AdjX, k.AdjZ
	default:
		return k.AdjX, k.AdjY
	}
}

// starArrays counts input arrays with more than one distinct tap offset —
// the arrays worth staging in shared memory or streaming registers.
func starArrays(st *stencil.Stencil) int {
	type key struct{ x, y, z int }
	perArray := make(map[int]map[key]struct{})
	for _, t := range st.Taps {
		m := perArray[t.Array]
		if m == nil {
			m = make(map[key]struct{})
			perArray[t.Array] = m
		}
		m[key{t.DX, t.DY, t.DZ}] = struct{}{}
	}
	n := 0
	for _, m := range perArray {
		if len(m) > 1 {
			n++
		}
	}
	return n
}

// unionTaps returns the size of the union of tap footprints over a cluster
// of ax × ay × az adjacent output points, across all input arrays. This is
// exactly the set of distinct values a fully-unrolled thread must load, and
// therefore the driver of both register pressure (no shared memory) and
// intra-thread reuse.
func unionTaps(st *stencil.Stencil, ax, ay, az int) int {
	type key struct{ a, x, y, z int }
	set := make(map[key]struct{}, len(st.Taps)*2)
	for _, t := range st.Taps {
		for z := 0; z < az; z++ {
			for y := 0; y < ay; y++ {
				for x := 0; x < ax; x++ {
					set[key{t.Array, t.DX + x, t.DY + y, t.DZ + z}] = struct{}{}
				}
			}
		}
	}
	return len(set)
}

// estimateAccessPattern computes LoadsPerPoint (global load instructions per
// output point after all reuse) and InstrPerPoint.
func (k *Kernel) estimateAccessPattern() {
	st := k.Stencil

	loads := 0.0
	// Arrays read only at the centre cost exactly one load per point and
	// never benefit from staging.
	centerArrays := st.Inputs - starArrays(st)
	loads += float64(centerArrays)

	starCount := starArrays(st)
	if starCount > 0 {
		switch {
		case k.UsesShared:
			// Block-tile staging: every tile cell is loaded once, halo
			// re-reads amortize over the tile volume. A streamed kernel
			// amortizes the walked dimension over the whole tile length.
			// Cyclic copies are staged one cluster at a time through the
			// same buffer, so each pays the halo of a single cluster tile.
			h := 2 * st.Order
			tx := float64(k.Setting[space.TBX] * k.AdjX)
			ty := float64(k.Setting[space.TBY] * k.AdjY)
			tz := float64(k.Setting[space.TBZ] * k.AdjZ)
			if k.Streaming {
				switch k.SDim {
				case 1:
					tx = float64(k.TileLen)
				case 2:
					ty = float64(k.TileLen)
				case 3:
					tz = float64(k.TileLen)
				}
			}
			halo := (tx + float64(h)) * (ty + float64(h)) * (tz + float64(h)) / (tx * ty * tz)
			loads += float64(starCount) * halo
		case k.Streaming:
			// Register streaming: the walked arm of each star stays in
			// registers across iterations, so the union is computed over
			// a long virtual window along the streaming dimension.
			const window = 8
			ax, ay, az := k.AdjX, k.AdjY, k.AdjZ
			switch k.SDim {
			case 1:
				ax *= window
			case 2:
				ay *= window
			case 3:
				az *= window
			}
			u := unionTaps(st, ax, ay, az)
			vol := float64(ax * ay * az)
			loads += (float64(u) - float64(centerArrays)*vol) / vol
		default:
			// Register-only reuse within the adjacent cluster.
			u := unionTaps(st, k.AdjX, k.AdjY, k.AdjZ)
			adj := float64(k.AdjX * k.AdjY * k.AdjZ)
			loads += (float64(u) - float64(centerArrays)*adj) / adj
		}
	}
	k.LoadsPerPoint = loads

	// Dynamic instruction estimate per output point: the stencil's FLOPs,
	// plus index arithmetic amortized over the merged cluster, plus the
	// accumulate-and-reorder overhead of retiming.
	instr := float64(st.FLOPs)
	instr += 14.0 / float64(k.AdjX*k.AdjY*k.AdjZ)
	if k.Retiming {
		if st.Order >= 2 {
			instr *= 1.05
		} else {
			instr *= 1.04
		}
	}
	if k.UsesShared {
		// smem staging adds one extra instruction per staged value.
		instr += k.LoadsPerPoint
	}
	k.InstrPerPoint = instr
}
