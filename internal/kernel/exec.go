package kernel

import (
	"fmt"

	"repro/internal/space"
	"repro/internal/stencil"
)

// Execute walks the kernel's *transformed* iteration space on the CPU —
// blocks, threads, cyclic copies, adjacent clusters, and serial streaming
// steps in exactly the order the generated CUDA kernel would — and computes
// every interior point with the shared arithmetic kernel
// stencil.PointValue. Comparing the result against the naive stencil.Apply
// sweep proves the geometry of a parameter setting is semantics-preserving.
//
// The grids may be smaller than the stencil's nominal extent (tests shrink
// them); geometry is recomputed for the actual extent. A count grid tracks
// write multiplicity so tests can also assert exactly-once coverage.
func Execute(k *Kernel, inputs, outputs []*stencil.Grid) (*stencil.Grid, error) {
	st := k.Stencil
	if len(inputs) < st.Inputs || len(outputs) < st.Outputs {
		return nil, fmt.Errorf("kernel: need %d inputs and %d outputs, got %d/%d",
			st.Inputs, st.Outputs, len(inputs), len(outputs))
	}
	nx, ny, nz := inputs[0].NX, inputs[0].NY, inputs[0].NZ
	counts := stencil.NewGrid(nx, ny, nz, 0)

	s := k.Setting
	n := [3]int{nx, ny, nz}
	tb := [3]int{s[space.TBX], s[space.TBY], s[space.TBZ]}
	adj := [3]int{k.AdjX, k.AdjY, k.AdjZ}
	cyc := [3]int{k.CycX, k.CycY, k.CycZ}

	// Per-dimension index plans: for every dimension, the list of
	// (thread-coordinate, point-index) coverage entries, precomputed so the
	// triple loop below stays readable.
	type dimPlan struct {
		points [][]int // points[t] = global indices covered by thread-coordinate t
	}
	plans := [3]dimPlan{}
	for d := 0; d < 3; d++ {
		if k.Streaming && k.SDim == d+1 {
			plans[d] = streamPlan(n[d], tb[d], adj[d], s[space.SB])
		} else {
			plans[d] = regularPlan(n[d], tb[d], adj[d], cyc[d])
		}
	}

	for _, pz := range plans[2].points {
		for _, py := range plans[1].points {
			for _, px := range plans[0].points {
				for _, z := range pz {
					for _, y := range py {
						for _, x := range px {
							v := stencil.PointValue(st, inputs, x, y, z)
							for kk := 0; kk < st.Outputs; kk++ {
								outputs[kk].Set(x, y, z, v*stencil.OutputScale(kk))
							}
							counts.Set(x, y, z, counts.At(x, y, z)+1)
						}
					}
				}
			}
		}
	}
	return counts, nil
}

// regularPlan enumerates, for a non-streamed dimension, the points each
// thread coordinate covers: cyclic copies stride over the padded thread
// count, adjacent clusters sit under each thread, out-of-range points are
// guarded away.
//
//	p = (c*paddedThreads + t) * A + a
func regularPlan(n, tbDim, a, c int) (pl struct{ points [][]int }) {
	perThread := a * c
	threads := ceilDiv(n, perThread)
	blocks := ceilDiv(threads, tbDim)
	padded := blocks * tbDim
	pl.points = make([][]int, padded)
	for t := 0; t < padded; t++ {
		var pts []int
		for cc := 0; cc < c; cc++ {
			base := (cc*padded + t) * a
			for aa := 0; aa < a; aa++ {
				if p := base + aa; p < n {
					pts = append(pts, p)
				}
			}
		}
		pl.points[t] = pts
	}
	return pl
}

// streamPlan enumerates, for the streamed dimension, the points covered by
// each thread coordinate across every tile and serial iteration:
//
//	p = tile*L + (i*TB + t)*A + a
//
// The returned plan flattens (tile, thread) into coverage entries; the
// serial iteration order is preserved inside each entry, which is all that
// matters for coverage validation.
func streamPlan(n, tbDim, a, sb int) (pl struct{ points [][]int }) {
	tileLen := ceilDiv(n, sb)
	step := tbDim * a
	iters := ceilDiv(tileLen, step)
	for tile := 0; tile < sb; tile++ {
		lo := tile * tileLen
		hi := lo + tileLen
		if hi > n {
			hi = n
		}
		for t := 0; t < tbDim; t++ {
			var pts []int
			for i := 0; i < iters; i++ {
				base := lo + (i*tbDim+t)*a
				for aa := 0; aa < a; aa++ {
					if p := base + aa; p >= lo && p < hi {
						pts = append(pts, p)
					}
				}
			}
			pl.points = append(pl.points, pts)
		}
	}
	return pl
}
