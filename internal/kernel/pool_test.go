package kernel

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gpu"
	"repro/internal/space"
	"repro/internal/stencil"
)

// buildSweep returns a deterministic set of valid kernels across the whole
// stencil suite: up to perStencil Build-able settings drawn from a seeded
// RNG, spanning shared/plain/streaming/prefetch variants by volume.
func buildSweep(t *testing.T, perStencil int) []*Kernel {
	t.Helper()
	arch := gpu.A100()
	var out []*Kernel
	for _, st := range stencil.Suite() {
		sp, err := space.New(st)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(20260808))
		kept := 0
		for i := 0; i < 400 && kept < perStencil; i++ {
			s := sp.Random(rng)
			k, err := Build(sp, s, arch)
			if err != nil {
				continue
			}
			out = append(out, k)
			kept++
		}
		if kept == 0 {
			t.Fatalf("%s: sweep produced no valid kernels", st.Name)
		}
	}
	return out
}

// freshEmit renders a kernel through a fresh unpooled buffer — the reference
// the pooled path must match byte-for-byte.
func freshEmit(k *Kernel) string {
	var b bytes.Buffer
	k.emitCUDA(&b)
	return b.String()
}

// TestEmitCUDAByteIdenticalUnderPooling pins the pooling contract: EmitCUDA
// through reused pool buffers emits exactly the bytes a fresh buffer does,
// across a seeded sweep, in both iteration directions and over repeated
// passes — so a stale byte from a previous (larger) kernel in a recycled
// buffer can never leak into a later emission.
func TestEmitCUDAByteIdenticalUnderPooling(t *testing.T) {
	kernels := buildSweep(t, 40)
	refs := make([]string, len(kernels))
	for i, k := range kernels {
		refs[i] = freshEmit(k)
	}
	for pass := 0; pass < 3; pass++ {
		for i, k := range kernels {
			if got := k.EmitCUDA(); got != refs[i] {
				t.Fatalf("pass %d forward kernel %d (%s %s): pooled emission diverged from fresh buffer",
					pass, i, k.Stencil.Name, k.Setting)
			}
		}
		for i := len(kernels) - 1; i >= 0; i-- {
			if got := kernels[i].EmitCUDA(); got != refs[i] {
				t.Fatalf("pass %d reverse kernel %d (%s %s): pooled emission diverged from fresh buffer",
					pass, i, kernels[i].Stencil.Name, kernels[i].Setting)
			}
		}
	}
}

// TestEmitCUDAParallelRace hammers pooled emission from many goroutines
// under the race detector. Every kernel is first pinned serially by the
// existing static verifier (verify_test.go) — structure, smem accounting,
// tap offsets, TB defines — then eight goroutines emit random kernels
// concurrently and compare against the serial reference bytes, so a pooled
// buffer shared across goroutines would surface as either a race report or
// a byte diff.
func TestEmitCUDAParallelRace(t *testing.T) {
	kernels := buildSweep(t, 24)
	refs := make([]string, len(kernels))
	for i, k := range kernels {
		verifyEmitted(t, k.Stencil, k.Setting, k)
		refs[i] = freshEmit(k)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for n := 0; n < 200; n++ {
				i := rng.Intn(len(kernels))
				if got := kernels[i].EmitCUDA(); got != refs[i] {
					t.Errorf("goroutine %d: kernel %d emission diverged under concurrency", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
