package kernel

import (
	"math/rand"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/gpu"
	"repro/internal/space"
	"repro/internal/stencil"
)

// The emitted-source verifier: EmitCUDA's text is the human-auditable record
// of what each setting does, so this test treats it as a contract and checks
// it *statically*, by parsing the source, against the resource model that
// priced the setting — over a seeded sweep of every suite stencil's space.
//
// A truly exhaustive sweep is impossible (the 19-parameter cross product is
// astronomically large), so the sweep is a fixed-seed random walk per
// stencil plus coverage assertions that every structural branch of the
// generator — shared staging on/off, streaming on/off with each of the
// three streaming dimensions, prefetch, retiming, constant memory — was
// actually emitted and verified at least once. The seed is fixed, so the
// covered set is identical on every run.
var (
	smemDeclRe   = regexp.MustCompile(`extern __shared__ double smem\[\]; // (\d+)B`)
	smemHeaderRe = regexp.MustCompile(`smem/block (\d+)B`)
	globalTapRe  = regexp.MustCompile(`in\d+\[IDX\(x([+-]\d+), y([+-]\d+), z([+-]\d+)\)\]`)
	sharedTapRe  = regexp.MustCompile(`smem\[SIDX\(([+-]\d+),([+-]\d+),([+-]\d+)\)\]`)
	syncRe       = regexp.MustCompile(`__syncthreads\(\)`)
	defineRe     = regexp.MustCompile(`#define (TBX|TBY|TBZ) (\d+)`)
)

// expectedSharedBytes recomputes the shared-memory model independently of
// resources.go: staged tile extent per axis is TB*UF*BM plus a halo of
// 2*Order, with the streamed axis (if any) keeping only its adjacent cluster
// plus halo resident, times 8 bytes per double, times the number of input
// arrays with more than one distinct tap offset.
func expectedSharedBytes(st *stencil.Stencil, s space.Setting, k *Kernel) int {
	stars := 0
	type off struct{ x, y, z int }
	perArray := map[int]map[off]bool{}
	for _, t := range st.Taps {
		if perArray[t.Array] == nil {
			perArray[t.Array] = map[off]bool{}
		}
		perArray[t.Array][off{t.DX, t.DY, t.DZ}] = true
	}
	for _, m := range perArray {
		if len(m) > 1 {
			stars++
		}
	}

	h := 2 * st.Order
	ext := [3]int{
		s[space.TBX]*s[space.UFX]*s[space.BMX] + h,
		s[space.TBY]*s[space.UFY]*s[space.BMY] + h,
		s[space.TBZ]*s[space.UFZ]*s[space.BMZ] + h,
	}
	if k.Streaming {
		adj := [3]int{
			s[space.UFX] * s[space.BMX],
			s[space.UFY] * s[space.BMY],
			s[space.UFZ] * s[space.BMZ],
		}
		ext[k.SDim-1] = adj[k.SDim-1] + h
	}
	return ext[0] * ext[1] * ext[2] * 8 * stars
}

func atoiMust(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("non-numeric capture %q: %v", s, err)
	}
	return n
}

// verifyEmitted statically checks one kernel's emitted CUDA text against the
// model that built it.
func verifyEmitted(t *testing.T, st *stencil.Stencil, s space.Setting, k *Kernel) {
	t.Helper()
	src := k.EmitCUDA()

	// __syncthreads() iff the kernel stages through shared memory: a barrier
	// without a shared tile is dead serialization; a shared tile without a
	// barrier is a data race.
	if got := len(syncRe.FindAllString(src, -1)) > 0; got != k.UsesShared {
		t.Fatalf("%s %s: __syncthreads present=%v, UsesShared=%v\n%s", st.Name, s, got, k.UsesShared, src)
	}
	decl := smemDeclRe.FindStringSubmatch(src)
	if (decl != nil) != k.UsesShared {
		t.Fatalf("%s %s: smem declaration present=%v, UsesShared=%v", st.Name, s, decl != nil, k.UsesShared)
	}

	// The declared byte count must equal both the priced SharedPerBlock and
	// an independent recomputation of the model from the raw setting.
	if k.UsesShared {
		if got := atoiMust(t, decl[1]); got != k.SharedPerBlock {
			t.Fatalf("%s %s: smem declares %dB, model priced %dB", st.Name, s, got, k.SharedPerBlock)
		}
		if want := expectedSharedBytes(st, s, k); k.SharedPerBlock != want {
			t.Fatalf("%s %s: SharedPerBlock=%dB, independent recomputation %dB", st.Name, s, k.SharedPerBlock, want)
		}
	} else if k.SharedPerBlock != 0 {
		t.Fatalf("%s %s: SharedPerBlock=%d without shared staging", st.Name, s, k.SharedPerBlock)
	}
	if hdr := smemHeaderRe.FindStringSubmatch(src); hdr == nil {
		t.Fatalf("%s %s: header lacks smem/block annotation", st.Name, s)
	} else if got := atoiMust(t, hdr[1]); got != k.SharedPerBlock {
		t.Fatalf("%s %s: header says %dB, model priced %dB", st.Name, s, got, k.SharedPerBlock)
	}

	// Every emitted tap offset — global IDX or shared SIDX — must stay
	// within the stencil's halo: an offset beyond Order indexes outside the
	// padded grid and the staged tile alike.
	for _, m := range append(globalTapRe.FindAllStringSubmatch(src, -1), sharedTapRe.FindAllStringSubmatch(src, -1)...) {
		for _, cap := range m[1:] {
			if d := atoiMust(t, cap); d > st.Order || d < -st.Order {
				t.Fatalf("%s %s: tap offset %d exceeds order %d in %q", st.Name, s, d, st.Order, m[0])
			}
		}
	}

	// The #define'd block extents must restate the setting verbatim.
	wantTB := map[string]int{"TBX": s[space.TBX], "TBY": s[space.TBY], "TBZ": s[space.TBZ]}
	seen := 0
	for _, m := range defineRe.FindAllStringSubmatch(src, -1) {
		if got := atoiMust(t, m[2]); got != wantTB[m[1]] {
			t.Fatalf("%s %s: #define %s %d, setting says %d", st.Name, s, m[1], got, wantTB[m[1]])
		}
		seen++
	}
	if seen != 3 {
		t.Fatalf("%s %s: found %d TB defines, want 3", st.Name, s, seen)
	}
}

func TestEmittedSourceInvariants(t *testing.T) {
	arch := gpu.A100()
	type coverage struct {
		shared, plain, stream, prefetch, retime, constant int
		sdim                                              [4]int
	}
	total := coverage{}
	for _, st := range stencil.Suite() {
		sp, err := space.New(st)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(20260805))
		verified := 0
		for i := 0; i < 600 && verified < 250; i++ {
			s := sp.Random(r)
			k, err := Build(sp, s, arch)
			if err != nil {
				continue // resource-invalid settings are Build's job to reject
			}
			verifyEmitted(t, st, s, k)
			verified++
			if k.UsesShared {
				total.shared++
			} else {
				total.plain++
			}
			if k.Streaming {
				total.stream++
				total.sdim[k.SDim]++
			}
			if k.Prefetch {
				total.prefetch++
			}
			if k.Retiming {
				total.retime++
			}
			if k.UsesConstant {
				total.constant++
			}
		}
		if verified == 0 {
			t.Fatalf("%s: no valid settings verified", st.Name)
		}
	}
	// Every structural branch of the generator must have been verified.
	if total.shared == 0 || total.plain == 0 || total.stream == 0 ||
		total.prefetch == 0 || total.retime == 0 || total.constant == 0 {
		t.Fatalf("sweep missed a structural branch: %+v", total)
	}
	for d := 1; d <= 3; d++ {
		if total.sdim[d] == 0 {
			t.Fatalf("sweep never streamed along dimension %d: %+v", d, total)
		}
	}
}
