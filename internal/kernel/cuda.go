package kernel

import (
	"bytes"
	"fmt"

	"repro/internal/space"
)

// EmitCUDA renders the kernel as CUDA-C source text. This is the
// code-generation stage of the pipeline ("the code generation writes the
// sampled parameter settings into CUDA kernels", paper Sec. V-F): its output
// is what a GPU toolchain would compile, and its cost is charged to the
// pre-processing overhead that Fig. 12 breaks down. The text is also a
// human-auditable record of exactly which transformation each parameter
// performs.
//
// Emission writes through a pooled scratch buffer (pool.go); only the
// returned string is a fresh allocation, so per-candidate codegen does not
// re-grow a builder for every setting.
func (k *Kernel) EmitCUDA() string {
	b := getEmitBuf()
	k.emitCUDA(b)
	s := b.String()
	putEmitBuf(b)
	return s
}

// emitCUDA writes the kernel text into b. It is the whole of the emission —
// EmitCUDA only wraps it in buffer pooling — so tests can run it against a
// fresh unpooled buffer and pin byte-equality with the pooled path.
func (k *Kernel) emitCUDA(b *bytes.Buffer) {
	st := k.Stencil
	s := k.Setting

	fmt.Fprintf(b, "// %s: auto-generated stencil kernel\n", st.Name)
	fmt.Fprintf(b, "// setting: %s\n", s.String())
	fmt.Fprintf(b, "// regs/thread (est) %d, smem/block %dB, grid %d blocks x %d threads\n\n",
		k.RegsPerThread, k.SharedPerBlock, k.GridBlocks, k.ThreadsPerBlock)

	fmt.Fprintf(b, "#define NX %d\n#define NY %d\n#define NZ %d\n", st.NX, st.NY, st.NZ)
	fmt.Fprintf(b, "#define TBX %d\n#define TBY %d\n#define TBZ %d\n",
		s[space.TBX], s[space.TBY], s[space.TBZ])
	fmt.Fprintf(b, "#define IDX(x,y,z) (((z)+%d)*((NY)+%d)*((NX)+%d) + ((y)+%d)*((NX)+%d) + ((x)+%d))\n\n",
		st.Order, 2*st.Order, 2*st.Order, st.Order, 2*st.Order, st.Order)

	if k.UsesConstant {
		fmt.Fprintf(b, "__constant__ double c_coeff[%d];\n\n", st.Coeffs)
	}

	// Kernel signature: one pointer per I/O array, written in place instead
	// of joining a scratch []string.
	fmt.Fprintf(b, "__global__ void __launch_bounds__(%d)\n%s_kernel(", k.ThreadsPerBlock, st.Name)
	for i := 0; i < st.Inputs; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "const double* __restrict__ in%d", i)
	}
	for i := 0; i < st.Outputs; i++ {
		if st.Inputs+i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "double* __restrict__ out%d", i)
	}
	b.WriteString(") {\n")

	if k.UsesShared {
		fmt.Fprintf(b, "  extern __shared__ double smem[]; // %dB staged tile + halo\n", k.SharedPerBlock)
	}

	// Global thread coordinates.
	b.WriteString("  const int tx = blockIdx.x * TBX + threadIdx.x;\n")
	b.WriteString("  const int ty = blockIdx.y * TBY + threadIdx.y;\n")
	if k.Streaming {
		fmt.Fprintf(b, "  // 2.5-D streaming along %s: %d concurrent tiles of %d points\n",
			dimName(k.SDim), k.SBTiles, k.TileLen)
		fmt.Fprintf(b, "  const int tile = blockIdx.z;           // concurrent-streaming tile (SB=%d)\n", k.SBTiles)
		fmt.Fprintf(b, "  const int tile_lo = tile * %d;\n", k.TileLen)
	} else {
		b.WriteString("  const int tz = blockIdx.z * TBZ + threadIdx.z;\n")
	}
	b.WriteString("\n")

	emitMergeLoops(b, k)
	b.WriteString("}\n")
}

func dimName(d int) string {
	switch d {
	case 1:
		return "x"
	case 2:
		return "y"
	case 3:
		return "z"
	}
	return "?"
}

// emitMergeLoops renders the cyclic/adjacent merge structure and the fully
// unrolled tap accumulation.
func emitMergeLoops(b *bytes.Buffer, k *Kernel) {
	st := k.Stencil
	s := k.Setting

	indent := "  "
	if k.Streaming {
		fmt.Fprintf(b, "%sfor (int it = 0; it < %d; ++it) { // serial streaming steps\n",
			indent, k.IterationsPerBlock)
		indent += "  "
		if k.Prefetch {
			fmt.Fprintf(b, "%s// prefetch: next-plane loads issued before the current FMAs retire\n", indent)
			fmt.Fprintf(b, "%sdouble pf[%d];\n", indent, starArrays(st)*2)
		}
	}
	// Cyclic merge loops (unrolled by the generator).
	for d, cm := range []int{k.CycX, k.CycY, k.CycZ} {
		if cm > 1 {
			fmt.Fprintf(b, "%s#pragma unroll\n%sfor (int c%s = 0; c%s < %d; ++c%s) { // cyclic merge\n",
				indent, indent, dimName(d+1), dimName(d+1), cm, dimName(d+1))
			indent += "  "
		}
	}
	// Adjacent (unroll x block-merge) loops.
	adj := []struct {
		n    int
		name string
	}{{k.AdjX, "x"}, {k.AdjY, "y"}, {k.AdjZ, "z"}}
	for _, a := range adj {
		if a.n > 1 {
			fmt.Fprintf(b, "%s#pragma unroll %d\n%sfor (int u%s = 0; u%s < %d; ++u%s) {\n",
				indent, a.n, indent, a.name, a.name, a.n, a.name)
			indent += "  "
		}
	}

	if k.UsesShared {
		fmt.Fprintf(b, "%s// cooperative tile staging\n%s__syncthreads();\n", indent, indent)
	}

	// Tap accumulation (shown per output array; retiming reorders the
	// accumulation into homogenized sub-sums).
	if k.Retiming {
		fmt.Fprintf(b, "%s// retiming: accumulation split into %d homogenized sub-computations\n",
			indent, st.Order+1)
	}
	fmt.Fprintf(b, "%sdouble acc = 0.0;\n", indent)
	limit := len(st.Taps)
	shown := limit
	if shown > 6 {
		shown = 6
	}
	for i := 0; i < shown; i++ {
		t := st.Taps[i]
		src := fmt.Sprintf("in%d[IDX(x%+d, y%+d, z%+d)]", t.Array, t.DX, t.DY, t.DZ)
		if k.UsesShared && i > 0 {
			src = fmt.Sprintf("smem[SIDX(%+d,%+d,%+d)]", t.DX, t.DY, t.DZ)
		}
		coeff := fmt.Sprintf("%g", t.Coeff)
		if k.UsesConstant {
			coeff = fmt.Sprintf("c_coeff[%d]", i%max(1, st.Coeffs))
		}
		fmt.Fprintf(b, "%sacc += %s * %s;\n", indent, coeff, src)
	}
	if limit > shown {
		fmt.Fprintf(b, "%s/* ... %d more taps elided ... */\n", indent, limit-shown)
	}
	for o := 0; o < st.Outputs; o++ {
		fmt.Fprintf(b, "%sout%d[IDX(x, y, z)] = acc * %g;\n", indent, o, 1.0+0.5*float64(o))
	}

	// Close all opened loops.
	opens := 0
	if k.Streaming {
		opens++
	}
	for _, cm := range []int{k.CycX, k.CycY, k.CycZ} {
		if cm > 1 {
			opens++
		}
	}
	for _, a := range []int{k.AdjX, k.AdjY, k.AdjZ} {
		if a > 1 {
			opens++
		}
	}
	for i := 0; i < opens; i++ {
		indent = indent[:len(indent)-2]
		fmt.Fprintf(b, "%s}\n", indent)
	}
	_ = s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
