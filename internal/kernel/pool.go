package kernel

import (
	"bytes"
	"sync"
)

// emitBufs pools the scratch buffers behind EmitCUDA. Code generation runs
// once per candidate setting — a GA campaign emits thousands of kernels —
// and without pooling every emission re-grows a fresh builder through the
// same ~2 KB of doublings. A pooled buffer keeps its high-water capacity, so
// steady-state emission allocates only the final string copy.
//
// Buffers are reset on Get, not trusted from Put: a poisoned (huge) buffer
// is dropped rather than pooled so one pathological kernel cannot pin
// memory for the rest of the process.
var emitBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// emitBufCap is the largest buffer capacity worth pooling. Emitted kernels
// are a few KB; anything past this came from an outlier stencil and is left
// for the GC.
const emitBufCap = 64 << 10

func getEmitBuf() *bytes.Buffer {
	b := emitBufs.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putEmitBuf(b *bytes.Buffer) {
	if b.Cap() <= emitBufCap {
		emitBufs.Put(b)
	}
}
