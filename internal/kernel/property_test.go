package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/space"
	"repro/internal/stencil"
)

// TestGeometryInvariants checks, over random valid settings of every suite
// stencil, the structural invariants any launch geometry must satisfy:
// the padded iteration space covers the grid, the guard fraction is a true
// fraction, and resource numbers respect the architectural envelope.
func TestGeometryInvariants(t *testing.T) {
	arch := gpu.A100()
	for _, st := range stencil.Suite() {
		sp, err := space.New(st)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		checked := 0
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			s := sp.Random(r)
			k, err := Build(sp, s, arch)
			if err != nil {
				return true // resource-invalid settings are fine
			}
			checked++
			// Coverage: padded points >= interior points.
			padded := float64(k.GridBlocks) * float64(k.ThreadsPerBlock) *
				float64(k.PointsPerThread) * float64(k.IterationsPerBlock)
			if padded < float64(st.Points()) {
				t.Logf("%s %s: padded %v < points %v", st.Name, s, padded, st.Points())
				return false
			}
			// GuardFrac is the active fraction of that padding.
			if k.GuardFrac <= 0 || k.GuardFrac > 1+1e-12 {
				return false
			}
			if g := float64(st.Points()) / padded; g > k.GuardFrac+1e-9 {
				// GuardFrac cannot claim more activity than coverage allows.
				return false
			}
			// Resources inside the envelope (Build enforced them).
			if k.RegsPerThread > arch.SpillRegsPerThread || k.SharedPerBlock > arch.SharedMemPerBlock {
				return false
			}
			// Occupancy sane.
			if k.Occ.BlocksPerSM < 1 || k.Occ.Achieved <= 0 || k.Occ.Achieved > 1 {
				return false
			}
			// Loads per point: always positive. Register reuse can only
			// reduce the naive tap count, so without shared staging the
			// naive count is an upper bound; shared staging of degenerate
			// (e.g. one-plane) tiles can legitimately amplify loads through
			// halo re-reads.
			if k.LoadsPerPoint <= 0 {
				return false
			}
			if !k.UsesShared && k.LoadsPerPoint > float64(st.UniqueOffsets())+1e-9 {
				return false
			}
			return true
		}
		cfg := &quick.Config{MaxCount: 60, Rand: rng}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("%s: %v", st.Name, err)
		}
		if checked == 0 {
			t.Fatalf("%s: no valid settings checked", st.Name)
		}
	}
}

// TestStreamingIterationAccounting: the serial steps of a streamed kernel
// must cover each tile exactly.
func TestStreamingIterationAccounting(t *testing.T) {
	st := stencil.J3D7PT()
	sp, err := space.New(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, sb := range []int{1, 2, 8, 64} {
		s := sp.Default()
		s[space.UseStreaming] = space.On
		s[space.SD] = 3
		s[space.SB] = sb
		s[space.TBZ] = 1
		k, err := Build(sp, s, gpu.A100())
		if err != nil {
			t.Fatalf("SB=%d: %v", sb, err)
		}
		covered := k.IterationsPerBlock * s[space.TBZ] * k.AdjZ * k.SBTiles
		if covered < st.NZ {
			t.Fatalf("SB=%d: streaming covers %d of %d planes", sb, covered, st.NZ)
		}
		if k.TileLen*k.SBTiles < st.NZ {
			t.Fatalf("SB=%d: tiles cover %d of %d", sb, k.TileLen*k.SBTiles, st.NZ)
		}
	}
}
