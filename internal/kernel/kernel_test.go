package kernel

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/space"
	"repro/internal/stencil"
)

func buildFor(t *testing.T, st *stencil.Stencil, mutate func(space.Setting)) (*Kernel, error) {
	t.Helper()
	sp, err := space.New(st)
	if err != nil {
		t.Fatal(err)
	}
	s := sp.Default()
	if mutate != nil {
		mutate(s)
	}
	return Build(sp, s, gpu.A100())
}

func mustBuild(t *testing.T, st *stencil.Stencil, mutate func(space.Setting)) *Kernel {
	t.Helper()
	k, err := buildFor(t, st, mutate)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBuildDefaultSetting(t *testing.T) {
	k := mustBuild(t, stencil.J3D7PT(), nil)
	if k.ThreadsPerBlock != 64*4 {
		t.Fatalf("ThreadsPerBlock = %d, want 256", k.ThreadsPerBlock)
	}
	// 512/64 x 512/4 x 512/1 blocks.
	if k.GridBlocks != 8*128*512 {
		t.Fatalf("GridBlocks = %d", k.GridBlocks)
	}
	if k.IterationsPerBlock != 1 || k.Streaming {
		t.Fatal("default setting should not stream")
	}
	if k.PointsPerThread != 1 {
		t.Fatalf("PointsPerThread = %d, want 1", k.PointsPerThread)
	}
	if k.RegsPerThread < 20 || k.RegsPerThread > 80 {
		t.Fatalf("RegsPerThread = %d, outside plausible range", k.RegsPerThread)
	}
	if k.GuardFrac != 1.0 {
		t.Fatalf("GuardFrac = %v, want 1 for divisible geometry", k.GuardFrac)
	}
	if k.SharedPerBlock != 0 {
		t.Fatalf("SharedPerBlock = %d without useShared", k.SharedPerBlock)
	}
}

func TestBuildRejectsExplicitInvalid(t *testing.T) {
	_, err := buildFor(t, stencil.J3D7PT(), func(s space.Setting) {
		s[space.SD] = 2 // SD without streaming
	})
	if err == nil || !errors.Is(err, space.ErrInvalid) {
		t.Fatalf("expected ErrInvalid, got %v", err)
	}
}

func TestBuildRejectsRegisterSpill(t *testing.T) {
	// Massive merged cluster on a many-output stencil must spill.
	_, err := buildFor(t, stencil.AddSGD4(), func(s space.Setting) {
		s[space.BMX] = 16
		s[space.BMY] = 16
	})
	if err == nil || !errors.Is(err, ErrResource) {
		t.Fatalf("expected ErrResource for spilled kernel, got %v", err)
	}
}

func TestBuildRejectsSharedOverflow(t *testing.T) {
	// Huge staged tile: 512-wide block with big merge and order-4 halo.
	_, err := buildFor(t, stencil.Hypterm(), func(s space.Setting) {
		s[space.UseShared] = space.On
		s[space.TBX] = 256
		s[space.TBY] = 4
		s[space.UFY] = 8
		s[space.UFZ] = 4
	})
	if err == nil || !errors.Is(err, ErrResource) {
		t.Fatalf("expected ErrResource for smem overflow, got %v", err)
	}
}

func TestStreamingGeometry(t *testing.T) {
	k := mustBuild(t, stencil.J3D7PT(), func(s space.Setting) {
		s[space.UseStreaming] = space.On
		s[space.SD] = 3
		s[space.SB] = 8
		s[space.TBZ] = 1
	})
	if !k.Streaming || k.SDim != 3 || k.SBTiles != 8 {
		t.Fatalf("streaming fields wrong: %+v", k)
	}
	if k.TileLen != 512/8 {
		t.Fatalf("TileLen = %d, want 64", k.TileLen)
	}
	// Each tile walks TileLen/(TBz*AdjZ) = 64 serial iterations.
	if k.IterationsPerBlock != 64 {
		t.Fatalf("IterationsPerBlock = %d, want 64", k.IterationsPerBlock)
	}
	// Blocks: x,y tiling times SB tiles in z.
	if k.GridBlocks != (512/64)*(512/4)*8 {
		t.Fatalf("GridBlocks = %d", k.GridBlocks)
	}
}

func TestRegisterPressureGrowsWithMerging(t *testing.T) {
	base := mustBuild(t, stencil.Helmholtz(), nil)
	merged := mustBuild(t, stencil.Helmholtz(), func(s space.Setting) {
		s[space.UFX] = 4
		s[space.UFY] = 2
	})
	if merged.RegsPerThread <= base.RegsPerThread {
		t.Fatalf("merging should raise register pressure: %d vs %d",
			merged.RegsPerThread, base.RegsPerThread)
	}
}

func TestSharedMemoryCutsRegistersAndLoads(t *testing.T) {
	noShared := mustBuild(t, stencil.Helmholtz(), func(s space.Setting) {
		s[space.UFX] = 2
	})
	shared := mustBuild(t, stencil.Helmholtz(), func(s space.Setting) {
		s[space.UFX] = 2
		s[space.UseShared] = space.On
	})
	if shared.RegsPerThread >= noShared.RegsPerThread {
		t.Fatalf("shared staging should cut register pressure: %d vs %d",
			shared.RegsPerThread, noShared.RegsPerThread)
	}
	if shared.LoadsPerPoint >= noShared.LoadsPerPoint {
		t.Fatalf("shared staging should cut global loads: %v vs %v",
			shared.LoadsPerPoint, noShared.LoadsPerPoint)
	}
	if shared.SharedPerBlock == 0 {
		t.Fatal("shared kernel reports zero smem")
	}
}

func TestRetimingHelpsHighOrderOnly(t *testing.T) {
	// Order-2 stencil under unrolling pressure: retiming must cut registers.
	plain := mustBuild(t, stencil.Helmholtz(), func(s space.Setting) { s[space.UFX] = 4 })
	retimed := mustBuild(t, stencil.Helmholtz(), func(s space.Setting) {
		s[space.UFX] = 4
		s[space.UseRetiming] = space.On
	})
	if retimed.RegsPerThread >= plain.RegsPerThread {
		t.Fatalf("retiming should cut order-2 registers: %d vs %d",
			retimed.RegsPerThread, plain.RegsPerThread)
	}
	// Order-1 stencil: no register benefit, small instruction overhead.
	p1 := mustBuild(t, stencil.J3D7PT(), nil)
	r1 := mustBuild(t, stencil.J3D7PT(), func(s space.Setting) { s[space.UseRetiming] = space.On })
	if r1.RegsPerThread != p1.RegsPerThread {
		t.Fatalf("retiming changed order-1 registers: %d vs %d", r1.RegsPerThread, p1.RegsPerThread)
	}
	if r1.InstrPerPoint <= p1.InstrPerPoint {
		t.Fatal("retiming should add instruction overhead at order 1")
	}
}

func TestPrefetchAddsRegisters(t *testing.T) {
	stream := func(s space.Setting) {
		s[space.UseStreaming] = space.On
		s[space.SD] = 3
		s[space.SB] = 4
		s[space.TBZ] = 1
	}
	noPf := mustBuild(t, stencil.Helmholtz(), stream)
	pf := mustBuild(t, stencil.Helmholtz(), func(s space.Setting) {
		stream(s)
		s[space.UsePrefetching] = space.On
	})
	if pf.RegsPerThread <= noPf.RegsPerThread {
		t.Fatalf("prefetch should add registers: %d vs %d", pf.RegsPerThread, noPf.RegsPerThread)
	}
}

func TestStreamingReducesLoads(t *testing.T) {
	plain := mustBuild(t, stencil.Helmholtz(), nil)
	streamed := mustBuild(t, stencil.Helmholtz(), func(s space.Setting) {
		s[space.UseStreaming] = space.On
		s[space.SD] = 3
		s[space.SB] = 8
		s[space.TBZ] = 1
	})
	if streamed.LoadsPerPoint >= plain.LoadsPerPoint {
		t.Fatalf("streaming should reuse the walked arm: %v vs %v",
			streamed.LoadsPerPoint, plain.LoadsPerPoint)
	}
}

func TestMergingReducesLoadsPerPoint(t *testing.T) {
	base := mustBuild(t, stencil.J3D27PT(), nil)
	merged := mustBuild(t, stencil.J3D27PT(), func(s space.Setting) {
		s[space.UFX] = 4
	})
	if merged.LoadsPerPoint >= base.LoadsPerPoint {
		t.Fatalf("adjacent merging should reuse overlapping taps: %v vs %v",
			merged.LoadsPerPoint, base.LoadsPerPoint)
	}
	// Cyclic merging has no overlap, so loads stay put.
	cyc := mustBuild(t, stencil.J3D27PT(), func(s space.Setting) {
		s[space.CMX] = 4
	})
	if cyc.LoadsPerPoint != base.LoadsPerPoint {
		t.Fatalf("cyclic merging should not change per-point loads: %v vs %v",
			cyc.LoadsPerPoint, base.LoadsPerPoint)
	}
}

func TestUnionTaps(t *testing.T) {
	st := stencil.J3D7PT() // order-1 star, 7 taps
	if got := unionTaps(st, 1, 1, 1); got != 7 {
		t.Fatalf("unionTaps(1,1,1) = %d, want 7", got)
	}
	// Two adjacent x-points: centres 2, x-arm 2r+... union along x = 4,
	// y-arms 2 per point = 4, z-arms 4 → 12.
	if got := unionTaps(st, 2, 1, 1); got != 12 {
		t.Fatalf("unionTaps(2,1,1) = %d, want 12", got)
	}
}

func TestStarArrays(t *testing.T) {
	if got := starArrays(stencil.Cheby()); got != 1 {
		t.Fatalf("cheby star arrays = %d, want 1", got)
	}
	if got := starArrays(stencil.Hypterm()); got != 4 {
		t.Fatalf("hypterm star arrays = %d, want 4", got)
	}
}

func TestGuardFracPartialBlocks(t *testing.T) {
	// 320-wide dims with TBx=128: 3 blocks pad to 384 → active 320/384.
	k := mustBuild(t, stencil.AddSGD4(), func(s space.Setting) {
		s[space.TBX] = 128
		s[space.TBY] = 2
	})
	want := 320.0 / 384.0
	if diff := k.GuardFrac - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("GuardFrac = %v, want %v", k.GuardFrac, want)
	}
}

// TestExecuteEquivalence is the core correctness property: for many random
// valid settings, the transformed iteration order computes exactly the
// reference sweep and touches every interior point exactly once.
func TestExecuteEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	stencils := []*stencil.Stencil{
		stencil.Shrink(stencil.J3D7PT(), 16, 16, 16),
		stencil.Shrink(stencil.Helmholtz(), 16, 12, 16),
		stencil.Shrink(stencil.Cheby(), 12, 16, 16),
		stencil.Shrink(stencil.AddSGD6(), 16, 16, 12),
	}
	for _, st := range stencils {
		sp, err := space.New(st)
		if err != nil {
			t.Fatal(err)
		}
		in, want := stencil.MakeGrids(st, st.NX, st.NY, st.NZ)
		if err := stencil.Apply(st, in, want, 0); err != nil {
			t.Fatal(err)
		}
		tried := 0
		for tried < 25 {
			s := sp.Random(rng)
			k, err := Build(sp, s, gpu.A100())
			if err != nil {
				continue // resource-invalid settings are expected
			}
			tried++
			_, out := stencil.MakeGrids(st, st.NX, st.NY, st.NZ)
			counts, err := Execute(k, in, out)
			if err != nil {
				t.Fatalf("%s %s: %v", st.Name, s, err)
			}
			for z := 0; z < st.NZ; z++ {
				for y := 0; y < st.NY; y++ {
					for x := 0; x < st.NX; x++ {
						if c := counts.At(x, y, z); c != 1 {
							t.Fatalf("%s %s: point (%d,%d,%d) written %v times", st.Name, s, x, y, z, c)
						}
					}
				}
			}
			for o := 0; o < st.Outputs; o++ {
				d, err := out[o].MaxAbsDiff(want[o])
				if err != nil {
					t.Fatal(err)
				}
				if d > 1e-12 {
					t.Fatalf("%s %s: output %d differs from reference by %v", st.Name, s, o, d)
				}
			}
		}
	}
}

func TestExecuteNeedsGrids(t *testing.T) {
	st := stencil.Shrink(stencil.J3D7PT(), 8, 8, 8)
	sp, _ := space.New(st)
	k, err := Build(sp, sp.Default(), gpu.A100())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(k, nil, nil); err == nil {
		t.Fatal("Execute without grids should error")
	}
}

func TestEmitCUDAContainsTransformMarkers(t *testing.T) {
	k := mustBuild(t, stencil.Helmholtz(), func(s space.Setting) {
		s[space.UseShared] = space.On
		s[space.UseConstant] = space.On
		s[space.UseStreaming] = space.On
		s[space.SD] = 3
		s[space.SB] = 4
		s[space.TBZ] = 1
		s[space.UFX] = 2
		s[space.CMY] = 2
		s[space.UseRetiming] = space.On
		s[space.UsePrefetching] = space.On
	})
	src := k.EmitCUDA()
	for _, want := range []string{
		"__global__", "__launch_bounds__", "helmholtz_kernel",
		"__constant__ double c_coeff", "extern __shared__ double smem",
		"serial streaming steps", "cyclic merge", "#pragma unroll",
		"prefetch", "retiming", "__syncthreads",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted CUDA missing %q", want)
		}
	}
	// Braces must balance.
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Fatalf("unbalanced braces in emitted CUDA:\n%s", src)
	}
}

func TestEmitCUDAPlainKernel(t *testing.T) {
	k := mustBuild(t, stencil.J3D7PT(), nil)
	src := k.EmitCUDA()
	if strings.Contains(src, "__constant__") || strings.Contains(src, "__shared__") {
		t.Fatal("plain kernel should not declare constant/shared memory")
	}
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Fatal("unbalanced braces")
	}
}

func TestBuildDoesNotAliasSetting(t *testing.T) {
	st := stencil.J3D7PT()
	sp, _ := space.New(st)
	s := sp.Default()
	k, err := Build(sp, s, gpu.A100())
	if err != nil {
		t.Fatal(err)
	}
	s[space.TBX] = 1
	if k.Setting[space.TBX] == 1 {
		t.Fatal("Build aliased the caller's setting")
	}
}

func BenchmarkBuild(b *testing.B) {
	st := stencil.RHS4Center()
	sp, err := space.New(st)
	if err != nil {
		b.Fatal(err)
	}
	arch := gpu.A100()
	rng := rand.New(rand.NewSource(1))
	settings := make([]space.Setting, 64)
	for i := range settings {
		settings[i] = sp.Random(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Build(sp, settings[i%len(settings)], arch)
	}
}

func BenchmarkEmitCUDA(b *testing.B) {
	st := stencil.Hypterm()
	sp, err := space.New(st)
	if err != nil {
		b.Fatal(err)
	}
	k, err := Build(sp, sp.Default(), gpu.A100())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = k.EmitCUDA()
	}
}
