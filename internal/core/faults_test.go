package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

// flakyObjective wraps a simulator and fails every k-th measurement with a
// transient error, simulating compile failures / crashed kernels on a real
// testbed. The tuner must degrade gracefully, never crash, and still return
// the best of the measurements that succeeded.
type flakyObjective struct {
	inner *sim.Simulator
	every int
	mu    sync.Mutex
	n     int
}

func (f *flakyObjective) Space() *space.Space { return f.inner.Space() }

func (f *flakyObjective) Measure(s space.Setting) (float64, error) {
	f.mu.Lock()
	f.n++
	fail := f.every > 0 && f.n%f.every == 0
	f.mu.Unlock()
	if fail {
		return 0, errors.New("flaky: injected measurement failure")
	}
	return f.inner.Measure(s)
}

func TestTuneSurvivesFlakyMeasurements(t *testing.T) {
	sp, err := space.New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(61)), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, every := range []int{2, 3, 5} {
		obj := &flakyObjective{inner: s, every: every}
		cfg := DefaultConfig()
		cfg.DatasetSize = 64
		cfg.Sampling.PoolSize = 256
		cfg.GA.MaxGenerations = 6
		cfg.EmitKernels = false
		rep, err := Tune(obj, ds, cfg, nil)
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		if rep.Best == nil || rep.BestMS <= 0 {
			t.Fatalf("every=%d: no result despite partial failures", every)
		}
		// The reported best must re-measure to the same value on the
		// reliable simulator (i.e. it was a real, successful measurement).
		ms, err := s.Measure(rep.Best)
		if err != nil || ms != rep.BestMS {
			t.Fatalf("every=%d: best not reproducible: %v %v", every, ms, err)
		}
	}
}

func TestTuneAllMeasurementsFail(t *testing.T) {
	sp, err := space.New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(62)), 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	obj := &flakyObjective{inner: s, every: 1} // everything fails
	cfg := DefaultConfig()
	cfg.DatasetSize = 32
	cfg.Sampling.PoolSize = 128
	cfg.GA.MaxGenerations = 4
	cfg.EmitKernels = false
	rep, err := Tune(obj, ds, cfg, nil)
	// With zero successful online measurements the pipeline still knows the
	// offline dataset's best; that is the correct fallback answer.
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Best.Equal(ds.Best().Setting) || rep.BestMS != ds.Best().TimeMS {
		t.Fatalf("expected dataset-best fallback, got %v %.4f", rep.Best, rep.BestMS)
	}
	if rep.Evaluations != 0 {
		t.Fatalf("no successful evaluations expected, got %d", rep.Evaluations)
	}
}

func TestTuneRejectsMismatchedDataset(t *testing.T) {
	// A dataset collected for the 19-parameter stencil space must be
	// rejected by a tuner operating on a different-width custom space.
	sp, err := space.New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(71)), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the settings to simulate a foreign space's dataset.
	for i := range ds.Samples {
		ds.Samples[i].Setting = ds.Samples[i].Setting[:5]
	}
	if _, err := Tune(s, ds, DefaultConfig(), nil); err == nil {
		t.Fatal("mismatched dataset width should be rejected")
	}
}
