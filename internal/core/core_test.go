package core

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/grouping"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.DatasetSize = 64
	cfg.Sampling.PoolSize = 512
	cfg.GA.MaxGenerations = 12
	return cfg
}

func TestTuneEndToEnd(t *testing.T) {
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	rep, err := Tune(s, nil, quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best == nil || rep.BestMS <= 0 {
		t.Fatalf("no best setting: %+v", rep)
	}
	if err := sp.Validate(rep.Best); err != nil {
		t.Fatalf("best setting invalid: %v", err)
	}
	if err := grouping.Validate(rep.Groups); err != nil {
		t.Fatalf("bad groups: %v", err)
	}
	if len(rep.SelectedMetrics) == 0 || len(rep.Models) != len(rep.SelectedMetrics) {
		t.Fatalf("metric selection/models inconsistent: %d vs %d",
			len(rep.SelectedMetrics), len(rep.Models))
	}
	if rep.SampledSize == 0 {
		t.Fatal("empty sampled space")
	}
	if rep.Evaluations == 0 {
		t.Fatal("search made no measurements")
	}
	if rep.GeneratedCUDA == 0 {
		t.Fatal("codegen emitted nothing")
	}
	if rep.Overhead.Total() <= 0 {
		t.Fatal("no overhead recorded")
	}
	// The tuned setting must beat the measured best of the random dataset
	// it started from — otherwise the search added nothing. (Compare with
	// a fresh dataset of the same size for an unbiased reference.)
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(123)), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestMS > ds.Best().TimeMS {
		t.Fatalf("tuned %.3f ms worse than a 64-sample random search %.3f ms",
			rep.BestMS, ds.Best().TimeMS)
	}
}

func TestTuneBestConsistency(t *testing.T) {
	sp, err := space.New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	rep, err := Tune(s, nil, quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := s.Measure(rep.Best)
	if err != nil {
		t.Fatalf("reported best not measurable: %v", err)
	}
	if ms != rep.BestMS {
		t.Fatalf("reported %.6f ms but re-measurement gives %.6f ms", rep.BestMS, ms)
	}
}

func TestTuneWithProvidedDataset(t *testing.T) {
	sp, err := space.New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(9)), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.EmitKernels = false
	rep, err := Tune(s, ds, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GeneratedCUDA != 0 {
		t.Fatal("codegen ran despite EmitKernels=false")
	}
	if rep.BestMS > ds.Best().TimeMS {
		t.Fatal("tuner regressed below its own dataset optimum")
	}
}

func TestTuneSmallDatasetRejected(t *testing.T) {
	sp, _ := space.New(stencil.J3D7PT())
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(2)), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tune(s, ds, quickConfig(), nil); err == nil {
		t.Fatal("tiny dataset should be rejected")
	}
}

func TestTuneStopShortCircuits(t *testing.T) {
	sp, _ := space.New(stencil.Cheby())
	s := sim.New(sp, gpu.A100())
	var n int64
	stop := func() bool { return atomic.AddInt64(&n, 1) > 40 }
	rep, err := Tune(s, nil, quickConfig(), stop)
	if err != nil {
		t.Fatal(err)
	}
	// The search polled stop and stopped early; evaluations stay small.
	if rep.Evaluations > 60 {
		t.Fatalf("stop ignored: %d evaluations", rep.Evaluations)
	}
	if rep.Best == nil {
		t.Fatal("even a stopped run must report the best seen so far")
	}
}

func TestTuneDeterministicForSeed(t *testing.T) {
	sp, _ := space.New(stencil.J3D27PT())
	s := sim.New(sp, gpu.A100())
	cfg := quickConfig()
	cfg.EmitKernels = false
	a, err := Tune(s, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(s, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Best.Equal(b.Best) || a.BestMS != b.BestMS || a.Evaluations != b.Evaluations {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.Best, a.BestMS, b.Best, b.BestMS)
	}
}

func TestGroupOrderLargestFirst(t *testing.T) {
	sp, _ := space.New(stencil.Helmholtz())
	s := sim.New(sp, gpu.A100())
	rep, err := Tune(s, nil, quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.GroupOrder) != len(rep.Groups) {
		t.Fatalf("group order covers %d of %d groups", len(rep.GroupOrder), len(rep.Groups))
	}
}
