// Package core is csTuner itself: the scalable auto-tuning pipeline of
// Sec. IV that wires together the performance dataset, statistic-based
// parameter grouping, PCC metric combination, PMNF-guided search-space
// sampling, and the iterative per-group genetic search with approximation.
//
// The pipeline observes the GPU only through sim.Objective, so it tunes the
// simulator here and would tune real hardware identically.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/ga"
	"repro/internal/grouping"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/pmnf"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/space"
)

// Collector is the optional self-collection surface: objectives that can
// produce full metric reports (the simulator and the GEMM/CPU/temporal
// workloads) implement it, letting Tune build its offline dataset when the
// caller passes none. It matches dataset.Runner, so any Collector plugs
// straight into dataset.Collect.
type Collector interface {
	Run(s space.Setting) (*sim.Result, error)
	Space() *space.Space
}

// Config bundles the pipeline's knobs; DefaultConfig mirrors the paper's
// evaluation setup (Sec. V-A2).
type Config struct {
	// DatasetSize is the number of randomly sampled settings measured for
	// the stencil dataset (paper: 128).
	DatasetSize int
	// NumMetricCollections bounds Algorithm 2's collection count.
	NumMetricCollections int
	// MaxGroupSize caps Algorithm 1 group growth (PMNF term width).
	MaxGroupSize int
	// IS and JS are the PMNF exponent ranges (paper: {0,1,2} and {0,1}).
	IS, JS []int
	// Sampling holds the ratio (paper: 10%) and candidate pool size.
	Sampling sampling.Config
	// GA holds the genetic-algorithm options (paper: 2×16, 0.8, 0.005).
	GA ga.Options
	// Seed drives every random choice in the pipeline.
	Seed int64
	// EmitKernels enables CUDA source generation for the sampled settings
	// (the codegen stage of the overhead breakdown). Requires the objective
	// (or a wrapper in its chain) to expose sim.ArchProvider so the target
	// arch is known.
	EmitKernels bool
	// WarmStart lists prior best settings (typically a cross-campaign result
	// store's bests, possibly transferred from another architecture) to seed
	// the search with: each valid entry is injected into the sampled space,
	// measured as an anchor, and fed to the GA's initial population. Invalid
	// or wrong-arity entries are skipped. Empty leaves the pipeline
	// byte-identical to the cold path.
	WarmStart []space.Setting
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		DatasetSize:          128,
		NumMetricCollections: 4,
		MaxGroupSize:         4,
		IS:                   pmnf.DefaultI,
		JS:                   pmnf.DefaultJ,
		Sampling:             sampling.DefaultConfig(),
		GA:                   ga.DefaultOptions(),
		Seed:                 1,
		EmitKernels:          true,
	}
}

// Overhead is the wall-clock breakdown of the pre-processing stages
// (Fig. 12): parameter grouping, search-space sampling (metric combination +
// PMNF fitting + filtering), and code generation.
type Overhead struct {
	Grouping time.Duration
	Sampling time.Duration
	Codegen  time.Duration
}

// Total returns the summed pre-processing time.
func (o Overhead) Total() time.Duration { return o.Grouping + o.Sampling + o.Codegen }

// Report is the outcome of one Tune run.
type Report struct {
	Best   space.Setting
	BestMS float64

	Groups          [][]int
	SelectedMetrics []metrics.Selected
	Models          map[string]*pmnf.Model
	SampledSize     int
	Overhead        Overhead
	Evaluations     int // distinct settings measured during the search
	GroupOrder      []int
	GeneratedCUDA   int // kernels emitted during codegen

	// Engine is the evaluation engine's counter snapshot at the end of the
	// run: evaluations, cache hits, invalid settings, budget trips, virtual
	// seconds spent.
	Engine engine.Stats
	// Spans are the engine's aggregated per-stage timing spans (dataset,
	// grouping, sampling, codegen, search).
	Spans []engine.Span
}

// Tune runs the full csTuner pipeline against the objective.
//
// Every measurement goes through the evaluation engine: when obj already is
// an *engine.Engine (the harness wraps objectives in budgeted engines) it is
// used as-is so cache, budget and stats are shared across layers; otherwise
// obj is wrapped in a fresh engine.
//
// ds is the offline stencil dataset (metric collection is a one-time offline
// step, paper Sec. V-F); pass nil to have Tune collect cfg.DatasetSize
// samples through the objective's Collector surface — the simulator and the
// GEMM/CPU/temporal workloads all self-collect. stop is polled between
// evaluations — the harness uses it to enforce iso-time budgets; pass nil
// for no budget.
func Tune(obj sim.Objective, ds *dataset.Dataset, cfg Config, stop func() bool) (*Report, error) {
	return TuneCtx(context.Background(), obj, ds, cfg, stop)
}

// TuneCtx is Tune under a run-level context: cancelling ctx (or passing one
// with a deadline) stops the tuning session promptly — cancellation is
// observed between measurements and at every stage boundary. A cancelled run
// returns its partial Report (pipeline artefacts built so far, the best
// setting known from the engine or the offline dataset, and the engine's
// counter snapshot) alongside ctx's error; only a run cancelled before any
// usable state exists returns a nil Report.
func TuneCtx(ctx context.Context, obj sim.Objective, ds *dataset.Dataset, cfg Config, stop func() bool) (*Report, error) {
	if stop == nil {
		stop = func() bool { return false }
	}
	userStop := stop
	stop = func() bool { return userStop() || ctx.Err() != nil }
	eng := engine.From(obj)
	sp := eng.Space()
	rng := rand.New(rand.NewSource(cfg.Seed))
	statsBefore := eng.Stats()
	started := eng.Now()

	if ds == nil {
		if !eng.CanCollect() {
			return nil, errors.New("core: no dataset given and objective cannot collect one")
		}
		stopSpan := eng.Time("dataset")
		var err error
		// Sequential collection on purpose: the pipeline rng continues into
		// the sampling stage, so the draw stream must not depend on worker
		// scheduling (batched collection lives in dataset.CollectBatch for
		// callers with a dedicated rng).
		ds, err = dataset.Collect(eng, rng, cfg.DatasetSize, 0)
		stopSpan()
		if err != nil {
			return nil, fmt.Errorf("core: dataset collection: %w", err)
		}
	}
	if len(ds.Samples) < 8 {
		return nil, fmt.Errorf("core: dataset too small (%d samples)", len(ds.Samples))
	}
	for i := range ds.Samples {
		if len(ds.Samples[i].Setting) != sp.N() {
			return nil, fmt.Errorf("core: dataset sample %d has %d parameters, space has %d — wrong dataset for this space?",
				i, len(ds.Samples[i].Setting), sp.N())
		}
	}

	rep := &Report{Models: map[string]*pmnf.Model{}}
	if err := ctx.Err(); err != nil {
		return partial(rep, eng, ds, statsBefore, started), err
	}

	// ---- Pre-processing: parameter grouping (Sec. IV-C) -----------------
	t0 := eng.Now()
	stopSpan := eng.Time("grouping")
	pairs := grouping.PairCVs(ds, sp)
	groups := grouping.Groups(pairs, cfg.MaxGroupSize)
	if err := grouping.ValidateN(groups, sp.N()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rep.Groups = groups
	stopSpan()
	rep.Overhead.Grouping = eng.Now().Sub(t0)
	if err := ctx.Err(); err != nil {
		return partial(rep, eng, ds, statsBefore, started), err
	}

	// ---- Pre-processing: search-space sampling (Sec. IV-D) --------------
	t0 = eng.Now()
	stopSpan = eng.Time("sampling")
	names := metricNames(ds)
	mpairs, err := metrics.PairPCCs(ds, names)
	if err != nil {
		return nil, fmt.Errorf("core: metric PCCs: %w", err)
	}
	collections := metrics.Combine(mpairs, cfg.NumMetricCollections)
	selected, err := metrics.Select(ds, collections)
	if err != nil {
		return nil, fmt.Errorf("core: metric selection: %w", err)
	}
	rep.SelectedMetrics = selected

	for _, sel := range selected {
		col, err := ds.MetricColumn(sel.Name)
		if err != nil {
			return nil, err
		}
		m, err := pmnf.Fit(ds, groups, col, cfg.IS, cfg.JS)
		if err != nil {
			return nil, fmt.Errorf("core: PMNF fit for %s: %w", sel.Name, err)
		}
		rep.Models[sel.Name] = m
	}

	// Note on the implicit-constraint prefilter: Config.Sampling.Prefilter
	// can reject spill/capacity-invalid candidates before scoring, but it
	// is intentionally NOT installed by default. Sampled-but-unbuildable
	// settings still contribute per-group value tuples that recombine into
	// valid, fast compositions during the group search; measured ablations
	// show pool-level filtering costs final quality while saving only
	// constraint checks the search rejects for free anyway (Sec. IV-B's
	// check happens before code generation and measurement, which this
	// pipeline honours at the kernel.Build boundary).
	sampled, err := sampling.Build(ds, sp, groups, selected, rep.Models, rng, cfg.Sampling)
	if err != nil {
		return nil, fmt.Errorf("core: sampling: %w", err)
	}
	if warm := validWarmStart(sp, cfg.WarmStart); len(warm) > 0 {
		// Warm-start injection: a prior campaign's bests join the sampled
		// space so the group search can reach (and recombine) them even when
		// the model filter would have dropped them.
		sampled.Include(warm)
		eng.AddWarmStartSeeds(len(warm))
	}
	rep.SampledSize = len(sampled.Settings)
	stopSpan()
	rep.Overhead.Sampling = eng.Now().Sub(t0)
	if err := ctx.Err(); err != nil {
		return partial(rep, eng, ds, statsBefore, started), err
	}

	// ---- Pre-processing: code generation ---------------------------------
	// The engine forwards sim.ArchProvider from the wrapped objective, so
	// codegen reaches the target arch through any wrapper chain.
	if cfg.EmitKernels && sp.Stencil != nil {
		if arch := sim.ArchOf(eng); arch != nil {
			t0 = eng.Now()
			stopSpan = eng.Time("codegen")
			for _, set := range sampled.Settings {
				k, err := kernel.Build(sp, set, arch)
				if err != nil {
					continue // resource-invalid sampled candidates are dropped at build time
				}
				_ = k.EmitCUDA()
				rep.GeneratedCUDA++
			}
			stopSpan()
			rep.Overhead.Codegen = eng.Now().Sub(t0)
		}
	}

	// ---- Evolutionary search (Sec. IV-E) ---------------------------------
	stopSpan = eng.Time("search")
	best, bestMS, err := search(ctx, eng, sampled, ds, cfg, rep, stop)
	stopSpan()
	if err != nil {
		return nil, err
	}
	rep.Best, rep.BestMS = best, bestMS
	if err := ctx.Err(); err != nil {
		// The run was cut during the search: mark the cancellation point as a
		// span so resumed runs can account the wall-time this partial run
		// actually covered.
		eng.ObserveSpan("canceled", eng.Now().Sub(started))
		rep.Engine = eng.Stats()
		rep.Evaluations = rep.Engine.Evaluations - statsBefore.Evaluations
		rep.Spans = eng.Spans()
		return rep, err
	}
	rep.Engine = eng.Stats()
	rep.Evaluations = rep.Engine.Evaluations - statsBefore.Evaluations
	rep.Spans = eng.Spans()
	return rep, nil
}

// partial finalizes a report for a run cut short by context cancellation:
// the best known result so far (the engine's best measurement, else the
// offline dataset's best sample), the engine counter snapshot, and the
// timing spans — including a "canceled" span marking how far into the run
// the cut landed, so resumed runs account the partial run's wall-time. The
// report is well-formed; only Best may be nil when the run was cancelled
// before anything was measured.
func partial(rep *Report, eng *engine.Engine, ds *dataset.Dataset, statsBefore engine.Stats, started time.Time) *Report {
	if s, ms, ok := eng.Best(); ok {
		rep.Best, rep.BestMS = s, ms
	} else if ds != nil && len(ds.Samples) > 0 {
		b := ds.Best()
		rep.Best, rep.BestMS = b.Setting.Clone(), b.TimeMS
	}
	eng.ObserveSpan("canceled", eng.Now().Sub(started))
	rep.Engine = eng.Stats()
	rep.Evaluations = rep.Engine.Evaluations - statsBefore.Evaluations
	rep.Spans = eng.Spans()
	return rep
}

// metricNames lists the metric keys present in the dataset's first sample,
// sorted for determinism.
func metricNames(ds *dataset.Dataset) []string {
	names := make([]string, 0, len(ds.Samples[0].Metrics))
	for n := range ds.Samples[0].Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// search performs iterative per-group tuning: groups are visited in
// descending re-indexed-range order (bigger ranges carry more performance
// head-room); each group is tuned by the customized GA — degenerating to
// exhaustive search for small ranges — while the remaining parameters stay
// fixed, then frozen at its winner.
//
// The engine carries the measurement cache, budget accounting and global
// best-tracking, so search keeps no concurrent state of its own: the GA
// sub-populations measure straight through the engine.
func search(ctx context.Context, eng *engine.Engine, sampled *sampling.Sampled, ds *dataset.Dataset,
	cfg Config, rep *Report, stop func() bool) (space.Setting, float64, error) {

	sp := eng.Space()

	// Starting point: the sampled space's best-predicted setting, or the
	// dataset's best measured setting if measuring the former fails.
	current, err := sampled.Best()
	if err != nil {
		return nil, 0, err
	}
	dsBest := ds.Best()

	measure := func(s space.Setting) float64 {
		if stop() {
			return math.Inf(1)
		}
		ms, err := eng.MeasureCtx(ctx, s)
		if err != nil {
			return math.Inf(1)
		}
		return ms
	}
	// Best-so-far: the engine tracks every measured setting; the dataset's
	// best sample is the floor (it may never be re-measured by the search).
	best := func() (space.Setting, float64) {
		if s, ms, ok := eng.Best(); ok && ms < dsBest.TimeMS {
			return s, ms
		}
		return dsBest.Setting.Clone(), dsBest.TimeMS
	}

	// Anchor measurements: the canonical untuned baseline (a tuner must
	// never report worse than "do nothing") and the sampler's best
	// prediction, which becomes the search context.
	if def := sp.Default(); sp.Validate(def) == nil {
		measure(def)
	}
	if ms := measure(current); math.IsInf(ms, 1) {
		current, _ = best()
	}
	// Warm anchors: a prior campaign's bests are measured up front — against
	// a shared result store these are free hits — so the search starts from
	// the transferred floor and the GA seeds below compete with live context.
	warm := validWarmStart(sp, cfg.WarmStart)
	for _, w := range warm {
		measure(w)
	}
	if len(warm) > 0 {
		current, _ = best()
	}

	order := groupOrder(sampled)
	rep.GroupOrder = order
	gaOpt := cfg.GA

	// Iterative auto-tuning over parameter groups. After the first pass,
	// further refinement passes re-tune each group in the context the other
	// groups settled into; earlier probes are memoized by the engine's
	// cache, so a pass that discovers nothing new is nearly free. The loop
	// ends when a full pass stops improving, the budget stops us, or the
	// safety cap is hit.
	const maxPasses = 4
	for pass := 0; pass < maxPasses; pass++ {
		improvedPass := false
		for _, gi := range order {
			if stop() {
				bestSet, bestMS := best()
				return bestSet, bestMS, nil
			}
			values := sampled.Values[gi]
			if len(values) <= 1 {
				continue
			}
			gaOpt.Seed = cfg.Seed + int64(gi)*104729 + int64(pass)*15485863
			gaOpt.Seeds = warmTupleSeeds(sampled, warm, gi)
			_, before := best()
			res := ga.Minimize(len(values), func(tupleIdx int) float64 {
				cand := current.Clone()
				if err := sampled.Apply(cand, gi, tupleIdx); err != nil {
					return math.Inf(1)
				}
				if sp.Validate(cand) != nil {
					return math.Inf(1)
				}
				return measure(cand)
			}, gaOpt)
			if res.BestIndex >= 0 && !math.IsInf(res.BestValue, 1) {
				if err := sampled.Apply(current, gi, res.BestIndex); err != nil {
					return nil, 0, err
				}
			}
			if _, now := best(); now < before {
				improvedPass = true
			}
		}
		// Adopt the global best as the context for the next pass: the
		// per-group winners may not compose, but the best measured full
		// setting is always a valid composition.
		current, _ = best()
		if !improvedPass {
			break
		}
	}
	bestSet, bestMS := best()
	return bestSet, bestMS, nil
}

// validWarmStart filters warm-start settings down to the ones this space
// accepts (right arity, passes validation), cloned, in order.
func validWarmStart(sp *space.Space, warm []space.Setting) []space.Setting {
	if len(warm) == 0 {
		return nil
	}
	out := make([]space.Setting, 0, len(warm))
	for _, w := range warm {
		if len(w) != sp.N() || sp.Validate(w) != nil {
			continue
		}
		out = append(out, w.Clone())
	}
	return out
}

// warmTupleSeeds maps warm settings onto group gi's re-indexed gene range:
// the GA's initial-population seeds. Settings whose tuple is absent from
// the sampled space (possible only when injection was skipped) drop out,
// and duplicates collapse in first-seen order.
func warmTupleSeeds(sampled *sampling.Sampled, warm []space.Setting, gi int) []int {
	if len(warm) == 0 {
		return nil
	}
	var seeds []int
	seen := map[int]struct{}{}
	for _, w := range warm {
		idx := sampled.TupleIndex(w, gi)
		if idx < 0 {
			continue
		}
		if _, dup := seen[idx]; dup {
			continue
		}
		seen[idx] = struct{}{}
		seeds = append(seeds, idx)
	}
	return seeds
}

// groupOrder returns group indices sorted by descending value-range size.
func groupOrder(sampled *sampling.Sampled) []int {
	order := make([]int, len(sampled.Groups))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(sampled.Values[order[a]]) > len(sampled.Values[order[b]])
	})
	return order
}
