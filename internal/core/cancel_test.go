package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

// countingObjective cancels the run context after n measurements.
type countingObjective struct {
	inner  *sim.Simulator
	n      int64
	after  int64
	cancel context.CancelFunc
}

func (c *countingObjective) Space() *space.Space { return c.inner.Space() }

func (c *countingObjective) Measure(s space.Setting) (float64, error) {
	if atomic.AddInt64(&c.n, 1) == c.after {
		c.cancel()
	}
	return c.inner.Measure(s)
}

// Run forwards offline dataset collection uncounted: the test cancels during
// the metered search phase, after the dataset exists.
func (c *countingObjective) Run(s space.Setting) (*sim.Result, error) { return c.inner.Run(s) }

func TestTuneCtxPreCancelled(t *testing.T) {
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := TuneCtx(ctx, s, nil, quickConfig(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A run cancelled before any measurement may have nothing to report, but
	// a non-nil report must be internally consistent.
	if rep != nil && rep.Best != nil {
		if verr := sp.Validate(rep.Best); verr != nil {
			t.Fatalf("partial best invalid: %v", verr)
		}
	}
}

func TestTuneCtxMidRunCancellationReturnsPartialReport(t *testing.T) {
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel mid-search: well after dataset collection (64 samples) so a
	// partial best exists, well before the search would finish naturally.
	obj := &countingObjective{inner: s, after: 100, cancel: cancel}
	rep, err := TuneCtx(ctx, obj, nil, quickConfig(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("mid-run cancellation must return a partial report")
	}
	if rep.Best == nil || rep.BestMS <= 0 {
		t.Fatalf("partial report carries no best: %+v", rep)
	}
	if verr := sp.Validate(rep.Best); verr != nil {
		t.Fatalf("partial best invalid: %v", verr)
	}
	if ms, merr := s.Measure(rep.Best); merr != nil || ms != rep.BestMS {
		t.Fatalf("partial best not reproducible: %v/%v vs %v", ms, merr, rep.BestMS)
	}
	if rep.Engine.Canceled == 0 {
		t.Fatalf("cancellation not surfaced on engine stats: %+v", rep.Engine)
	}
	// The partial report's timing spans must include the cancellation point
	// itself: a "canceled" span recording how far into the run the abort
	// landed, so interrupted-run telemetry accounts for the whole wall time.
	found := false
	for _, span := range rep.Spans {
		if span.Name == "canceled" {
			found = true
			if span.Count != 1 || span.Total <= 0 {
				t.Fatalf("canceled span malformed: %+v", span)
			}
		}
	}
	if !found {
		t.Fatalf("no %q span in partial report: %+v", "canceled", rep.Spans)
	}
	// The run stopped early: far fewer measurements than an uncancelled run.
	full, err := Tune(s, nil, quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine.Evaluations >= full.Engine.Evaluations {
		t.Fatalf("cancelled run measured %d, full run %d — did not stop early",
			rep.Engine.Evaluations, full.Engine.Evaluations)
	}
}
