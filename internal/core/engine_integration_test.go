package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

// TestTuneSelfCollectsNonStencilObjective: the pipeline no longer requires a
// *sim.Simulator — any objective implementing the Collector surface (here
// the GEMM workload) collects its own offline dataset when ds == nil.
func TestTuneSelfCollectsNonStencilObjective(t *testing.T) {
	w, err := gemm.New(1024, 1024, 1024, gpu.A100())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.Sampling.PoolSize = 256
	cfg.GA.MaxGenerations = 6
	cfg.EmitKernels = false
	rep, err := Tune(w, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best == nil || rep.BestMS <= 0 {
		t.Fatal("self-collection produced no result")
	}
	def, err := w.Measure(w.Space().Default())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestMS >= def {
		t.Fatalf("tuned %.3f not better than default %.3f", rep.BestMS, def)
	}
}

// TestTuneRejectsNonCollectingObjective: an objective that can only Measure
// must be given a dataset explicitly.
func TestTuneRejectsNonCollectingObjective(t *testing.T) {
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	// Strip the Runner surface by hiding the simulator behind a plain
	// Objective wrapper.
	if _, err := Tune(measureOnly{s}, nil, quickConfig(), nil); err == nil {
		t.Fatal("pipeline accepted a measure-only objective without a dataset")
	}
}

type measureOnly struct{ obj sim.Objective }

func (m measureOnly) Space() *space.Space                      { return m.obj.Space() }
func (m measureOnly) Measure(s space.Setting) (float64, error) { return m.obj.Measure(s) }

// TestReportCarriesEngineStats: the report exposes the engine's counters and
// the per-stage timing spans.
func TestReportCarriesEngineStats(t *testing.T) {
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	cfg := quickConfig()
	cfg.EmitKernels = false
	rep, err := Tune(s, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine.Evaluations == 0 {
		t.Fatal("engine stats missing from report")
	}
	if rep.Evaluations != rep.Engine.Evaluations {
		t.Fatalf("Evaluations %d != engine delta %d (fresh engine)",
			rep.Evaluations, rep.Engine.Evaluations)
	}
	want := map[string]bool{"dataset": false, "grouping": false, "sampling": false, "search": false}
	for _, sp := range rep.Spans {
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("missing %q span in %+v", name, rep.Spans)
		}
	}
}

// TestTuneSharesCallerEngine: passing an existing engine routes every
// pipeline measurement through it, so its stats accumulate there.
func TestTuneSharesCallerEngine(t *testing.T) {
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	eng := engine.New(s)
	cfg := quickConfig()
	cfg.EmitKernels = false
	rep, err := Tune(eng, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Evaluations == 0 {
		t.Fatal("caller engine saw no measurements")
	}
	if rep.Engine != eng.Stats() {
		t.Fatalf("report stats %+v != engine stats %+v", rep.Engine, eng.Stats())
	}
}
