// Package forest implements a regression random forest (bagged CART trees
// with feature sub-sampling, Breiman 2001). The Garvey'15 comparator trains
// one to predict the best memory-type configuration for a stencil from its
// static features before its per-group exhaustive search.
package forest

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Options configures training.
type Options struct {
	Trees       int     // number of bagged trees (default 50)
	MaxDepth    int     // tree depth cap (default 8)
	MinLeaf     int     // minimum samples per leaf (default 2)
	FeatureFrac float64 // fraction of features tried per split (default 1/3)
	Seed        int64
}

// DefaultOptions returns sensible small-data defaults.
func DefaultOptions() Options {
	return Options{Trees: 50, MaxDepth: 8, MinLeaf: 2, FeatureFrac: 1.0 / 3.0, Seed: 1}
}

// Forest is a trained regression forest.
type Forest struct {
	trees []*node
	nFeat int
}

type node struct {
	feature int
	thresh  float64
	value   float64 // leaf prediction
	lo, hi  *node
	leaf    bool
}

// Train fits a forest on rows x (each of equal length) against target y.
func Train(x [][]float64, y []float64, opt Options) (*Forest, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("forest: empty or mismatched training data")
	}
	nFeat := len(x[0])
	if nFeat == 0 {
		return nil, errors.New("forest: zero features")
	}
	for _, r := range x {
		if len(r) != nFeat {
			return nil, errors.New("forest: ragged feature rows")
		}
	}
	if opt.Trees <= 0 {
		opt.Trees = 50
	}
	if opt.MaxDepth <= 0 {
		opt.MaxDepth = 8
	}
	if opt.MinLeaf <= 0 {
		opt.MinLeaf = 2
	}
	if opt.FeatureFrac <= 0 || opt.FeatureFrac > 1 {
		opt.FeatureFrac = 1.0 / 3.0
	}
	mtry := int(math.Ceil(opt.FeatureFrac * float64(nFeat)))

	f := &Forest{nFeat: nFeat}
	rng := rand.New(rand.NewSource(opt.Seed))
	for t := 0; t < opt.Trees; t++ {
		// Bootstrap sample.
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		f.trees = append(f.trees, grow(x, y, idx, 0, opt, mtry, rng))
	}
	return f, nil
}

// grow recursively builds one CART tree.
func grow(x [][]float64, y []float64, idx []int, depth int, opt Options, mtry int, rng *rand.Rand) *node {
	mean := 0.0
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))

	if depth >= opt.MaxDepth || len(idx) < 2*opt.MinLeaf || pure(y, idx) {
		return &node{leaf: true, value: mean}
	}

	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)
	feats := rng.Perm(len(x[0]))[:mtry]
	for _, ft := range feats {
		vals := make([]float64, len(idx))
		for k, i := range idx {
			vals[k] = x[i][ft]
		}
		sort.Float64s(vals)
		for k := 1; k < len(vals); k++ {
			if vals[k] == vals[k-1] {
				continue
			}
			th := (vals[k] + vals[k-1]) / 2
			score := splitSSE(x, y, idx, ft, th, opt.MinLeaf)
			if score < bestScore {
				bestFeat, bestThresh, bestScore = ft, th, score
			}
		}
	}
	if bestFeat < 0 {
		return &node{leaf: true, value: mean}
	}

	var lo, hi []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			lo = append(lo, i)
		} else {
			hi = append(hi, i)
		}
	}
	if len(lo) < opt.MinLeaf || len(hi) < opt.MinLeaf {
		return &node{leaf: true, value: mean}
	}
	return &node{
		feature: bestFeat, thresh: bestThresh,
		lo: grow(x, y, lo, depth+1, opt, mtry, rng),
		hi: grow(x, y, hi, depth+1, opt, mtry, rng),
	}
}

func pure(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

// splitSSE returns the summed squared error of the two children, +Inf when a
// child would underflow MinLeaf.
func splitSSE(x [][]float64, y []float64, idx []int, ft int, th float64, minLeaf int) float64 {
	var nLo, nHi float64
	var sLo, sHi float64
	for _, i := range idx {
		if x[i][ft] <= th {
			nLo++
			sLo += y[i]
		} else {
			nHi++
			sHi += y[i]
		}
	}
	if int(nLo) < minLeaf || int(nHi) < minLeaf {
		return math.Inf(1)
	}
	mLo, mHi := sLo/nLo, sHi/nHi
	sse := 0.0
	for _, i := range idx {
		var d float64
		if x[i][ft] <= th {
			d = y[i] - mLo
		} else {
			d = y[i] - mHi
		}
		sse += d * d
	}
	return sse
}

// Predict returns the forest's mean prediction for one feature row.
func (f *Forest) Predict(row []float64) (float64, error) {
	if len(row) != f.nFeat {
		return 0, errors.New("forest: feature length mismatch")
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += eval(t, row)
	}
	return sum / float64(len(f.trees)), nil
}

func eval(n *node, row []float64) float64 {
	for !n.leaf {
		if row[n.feature] <= n.thresh {
			n = n.lo
		} else {
			n = n.hi
		}
	}
	return n.value
}
