package forest

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, DefaultOptions()); err == nil {
		t.Fatal("empty data should error")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, DefaultOptions()); err == nil {
		t.Fatal("mismatched lengths should error")
	}
	if _, err := Train([][]float64{{}}, []float64{1}, DefaultOptions()); err == nil {
		t.Fatal("zero features should error")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []float64{1, 2}, DefaultOptions()); err == nil {
		t.Fatal("ragged rows should error")
	}
}

func TestConstantTarget(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	y := []float64{5, 5, 5, 5}
	f, err := Train(x, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Predict([]float64{2, 3})
	if err != nil || math.Abs(p-5) > 1e-9 {
		t.Fatalf("Predict = %v, %v", p, err)
	}
}

func TestLearnsStepFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 10
		x = append(x, []float64{a, b})
		if a > 5 {
			y = append(y, 10)
		} else {
			y = append(y, 2)
		}
	}
	opt := DefaultOptions()
	f, err := Train(x, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := f.Predict([]float64{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := f.Predict([]float64{8, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-2) > 1 || math.Abs(hi-10) > 1 {
		t.Fatalf("step function not learned: lo=%v hi=%v", lo, hi)
	}
}

func TestLearnsInteraction(t *testing.T) {
	// y = a*b needs splits on both features.
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		a := rng.Float64() * 4
		b := rng.Float64() * 4
		x = append(x, []float64{a, b})
		y = append(y, a*b)
	}
	opt := DefaultOptions()
	opt.MaxDepth = 10
	opt.FeatureFrac = 1
	f, err := Train(x, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Mean absolute error over a probe grid must beat the constant
	// predictor by a wide margin.
	meanY := 4.0 // E[a*b] for U(0,4)² is 4
	var mae, constMAE float64
	n := 0
	for a := 0.25; a < 4; a += 0.75 {
		for b := 0.25; b < 4; b += 0.75 {
			p, err := f.Predict([]float64{a, b})
			if err != nil {
				t.Fatal(err)
			}
			mae += math.Abs(p - a*b)
			constMAE += math.Abs(meanY - a*b)
			n++
		}
	}
	if mae >= constMAE*0.5 {
		t.Fatalf("forest MAE %.3f not clearly better than constant %.3f", mae/float64(n), constMAE/float64(n))
	}
}

func TestPredictValidation(t *testing.T) {
	f, err := Train([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}, []float64{1, 2, 3, 4}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Predict([]float64{1}); err == nil {
		t.Fatal("wrong feature count should error")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {2, 2}, {6, 1}}
	y := []float64{1, 2, 3, 4, 1.5, 3.5}
	a, err := Train(x, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(x, y, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range x {
		pa, _ := a.Predict(probe)
		pb, _ := b.Predict(probe)
		if pa != pb {
			t.Fatal("same seed produced different forests")
		}
	}
}

func TestOptionDefaultsApplied(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	f, err := Train(x, y, Options{}) // all zero: defaults kick in
	if err != nil {
		t.Fatal(err)
	}
	if len(f.trees) != 50 {
		t.Fatalf("default tree count = %d, want 50", len(f.trees))
	}
}

func BenchmarkTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 128; i++ {
		row := make([]float64, 19)
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		x = append(x, row)
		y = append(y, rng.Float64())
	}
	opt := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, opt); err != nil {
			b.Fatal(err)
		}
	}
}
