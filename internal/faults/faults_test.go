package faults

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func newSim(t testing.TB) (*space.Space, *sim.Simulator) {
	t.Helper()
	sp, err := space.New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	return sp, sim.New(sp, gpu.A100())
}

func sampleSettings(sp *space.Space, n int, seed int64) []space.Setting {
	rng := rand.New(rand.NewSource(seed))
	out := make([]space.Setting, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, sp.Random(rng))
		if i%5 == 4 { // sprinkle in duplicates: batches dedupe by key
			out = append(out, out[len(out)-1].Clone())
		}
	}
	return out
}

func TestInjectorDeterministicForSeed(t *testing.T) {
	sp, s := newSim(t)
	in := sampleSettings(sp, 40, 3)
	cfg := Default()
	cfg.Seed = 11

	type obs struct {
		ms  float64
		err string
	}
	run := func() ([]obs, Counts) {
		inj := New(s, cfg)
		out := make([]obs, 0, 3*len(in))
		for attempt := 0; attempt < 3; attempt++ {
			for _, set := range in {
				ms, err := inj.Measure(set)
				o := obs{ms: ms}
				if err != nil {
					o.err = err.Error()
				}
				out = append(out, o)
			}
		}
		return out, inj.Counts()
	}
	a, ca := run()
	b, cb := run()
	if ca != cb {
		t.Fatalf("counts diverged: %+v vs %+v", ca, cb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("observation %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	if ca.Transient == 0 || ca.Permanent == 0 {
		t.Fatalf("default config did not exercise fault paths: %+v", ca)
	}
	// A different seed must pick a different fault schedule.
	cfg.Seed = 12
	c, _ := run()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestPermanentFailuresAreStablePerKey(t *testing.T) {
	sp, s := newSim(t)
	inj := New(s, Config{Seed: 5, PermanentRate: 0.3})
	var broken space.Setting
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200 && broken == nil; i++ {
		set := sp.Random(rng)
		if _, err := inj.Measure(set); err != nil {
			broken = set
		}
	}
	if broken == nil {
		t.Fatal("no permanently broken setting found at rate 0.3")
	}
	for i := 0; i < 5; i++ {
		_, err := inj.Measure(broken)
		var fe *Error
		if !errors.As(err, &fe) || fe.Kind != KindPermanent {
			t.Fatalf("attempt %d: %v, want permanent fault", i, err)
		}
		if fe.Transient() {
			t.Fatal("permanent fault carries the transient marker")
		}
		if engine.Classify(err) != engine.ClassPermanent {
			t.Fatalf("engine classified permanent fault as %v", engine.Classify(err))
		}
	}
}

func TestTransientCapAllowsEventualSuccess(t *testing.T) {
	sp, s := newSim(t)
	inj := New(s, Config{Seed: 2, TransientRate: 1, MaxTransientPerKey: 3})
	set := sp.Default()
	for i := 0; i < 3; i++ {
		_, err := inj.Measure(set)
		var fe *Error
		if !errors.As(err, &fe) || fe.Kind != KindTransient || !fe.Transient() {
			t.Fatalf("attempt %d: %v, want transient fault", i, err)
		}
		if engine.Classify(err) != engine.ClassTransient {
			t.Fatalf("engine classified transient fault as %v", engine.Classify(err))
		}
	}
	ms, err := inj.Measure(set)
	if err != nil || ms <= 0 {
		t.Fatalf("capped transient still failing: %v/%v", ms, err)
	}
}

func TestNoiseBoundedAndPositive(t *testing.T) {
	sp, s := newSim(t)
	cfg := Config{Seed: 4, NoiseFrac: 0.1, NoiseAddMS: 0.02}
	inj := New(s, cfg)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 50; i++ {
		set := sp.Random(rng)
		clean, err := s.Measure(set)
		if err != nil {
			continue
		}
		noisy, err := inj.Measure(set)
		if err != nil {
			t.Fatalf("noise-only config errored: %v", err)
		}
		lo := clean * (1 - cfg.NoiseFrac)
		hi := clean*(1+cfg.NoiseFrac) + cfg.NoiseAddMS
		if noisy <= 0 || noisy < lo-1e-12 || noisy > hi+1e-12 {
			t.Fatalf("noisy time %v outside [%v, %v] (clean %v)", noisy, lo, hi, clean)
		}
	}
}

func TestHangHonoursContext(t *testing.T) {
	sp, s := newSim(t)
	inj := New(s, Config{Seed: 1, HangRate: 1})
	set := sp.Default()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := inj.MeasureCtx(ctx, set)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang under deadline returned %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("hang outlived its context")
	}
	// Without a cancellable context the hang degrades to a transient error
	// instead of deadlocking.
	_, err = inj.Measure(set)
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindHang || !fe.Transient() {
		t.Fatalf("uninterruptible hang returned %v, want degraded transient", err)
	}
}

func TestSlowCallDelaysButSucceeds(t *testing.T) {
	sp, s := newSim(t)
	inj := New(s, Config{Seed: 3, SlowRate: 1, SlowDelay: 2 * time.Millisecond})
	start := time.Now()
	ms, err := inj.Measure(sp.Default())
	if err != nil || ms <= 0 {
		t.Fatalf("slow call = %v/%v", ms, err)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("slow call returned before its injected delay")
	}
	if c := inj.Counts(); c.Slow != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestArchitectureSurvivesWrapping(t *testing.T) {
	_, s := newSim(t)
	inj := New(s, Default())
	if arch := sim.ArchOf(inj); arch == nil || arch.Name != "A100" {
		t.Fatalf("arch = %v", arch)
	}
	if inj.Unwrap() != sim.Objective(s) {
		t.Fatal("Unwrap lost the inner objective")
	}
}

// hostileConfig exercises every fault path at rates high enough that a
// 60-setting batch hits all of them.
func hostileConfig() Config {
	return Config{
		Seed:               11,
		TransientRate:      0.25,
		MaxTransientPerKey: 2,
		PermanentRate:      0.10,
		NoiseFrac:          0.05,
		NoiseAddMS:         0.01,
		SlowRate:           0.10,
		SlowDelay:          100 * time.Microsecond,
		HangRate:           0.03,
	}
}

// TestEngineDeterministicAcrossWorkersUnderFaults is the pinned guarantee of
// DESIGN.md §5: with fault injection on, a batched engine run produces
// identical results, trajectory, stats and quarantine set at every worker
// count — faults change *what* happens, never *whether it is reproducible*.
func TestEngineDeterministicAcrossWorkersUnderFaults(t *testing.T) {
	sp, s := newSim(t)
	in := sampleSettings(sp, 60, 5)

	type outcome struct {
		res   []engine.BatchResult
		stats engine.Stats
		traj  []engine.Point
		quar  []string
		cnt   Counts
	}
	run := func(workers int) outcome {
		inj := New(s, hostileConfig())
		eng := engine.New(inj,
			engine.WithWorkers(workers),
			engine.WithSeed(7),
			engine.WithMeasureTimeout(20*time.Millisecond),
			engine.WithQuarantine(2),
		)
		res := eng.MeasureBatch(in)
		return outcome{res: res, stats: eng.Stats(), traj: eng.Trajectory(), quar: eng.Quarantined(), cnt: inj.Counts()}
	}

	ref := run(1)
	if ref.cnt.Transient == 0 || ref.cnt.Permanent == 0 || ref.cnt.Slow == 0 || ref.cnt.Hangs == 0 {
		t.Fatalf("hostile config did not exercise every fault path: %+v", ref.cnt)
	}
	if ref.stats.Retries == 0 || ref.stats.Invalid == 0 {
		t.Fatalf("engine saw no retries or permanent failures: %+v", ref.stats)
	}
	if ref.stats.Evaluations == 0 {
		t.Fatal("nothing measured successfully under faults")
	}

	for _, workers := range []int{4, 16} {
		got := run(workers)
		if got.stats != ref.stats {
			t.Fatalf("workers=%d stats diverged:\n  got  %+v\n  want %+v", workers, got.stats, ref.stats)
		}
		for i := range ref.res {
			sameErr := (got.res[i].Err == nil) == (ref.res[i].Err == nil)
			if sameErr && got.res[i].Err != nil {
				sameErr = got.res[i].Err.Error() == ref.res[i].Err.Error()
			}
			if got.res[i].MS != ref.res[i].MS || !sameErr {
				t.Fatalf("workers=%d item %d: %v/%v vs %v/%v",
					workers, i, got.res[i].MS, got.res[i].Err, ref.res[i].MS, ref.res[i].Err)
			}
		}
		if len(got.traj) != len(ref.traj) {
			t.Fatalf("workers=%d trajectory length %d vs %d", workers, len(got.traj), len(ref.traj))
		}
		for i := range ref.traj {
			if got.traj[i] != ref.traj[i] {
				t.Fatalf("workers=%d trajectory[%d] = %+v vs %+v", workers, i, got.traj[i], ref.traj[i])
			}
		}
		if len(got.quar) != len(ref.quar) {
			t.Fatalf("workers=%d quarantine %v vs %v", workers, got.quar, ref.quar)
		}
		for i := range ref.quar {
			if got.quar[i] != ref.quar[i] {
				t.Fatalf("workers=%d quarantine %v vs %v", workers, got.quar, ref.quar)
			}
		}
	}
}

// TestEngineSurvivesHostileObjective drives serial MeasureCtx traffic through
// the injector: transient faults retry, permanent faults cache and
// quarantine, and the run never panics or wedges.
func TestEngineSurvivesHostileObjective(t *testing.T) {
	sp, s := newSim(t)
	inj := New(s, hostileConfig())
	eng := engine.New(inj,
		engine.WithSeed(3),
		engine.WithMeasureTimeout(20*time.Millisecond),
	)
	rng := rand.New(rand.NewSource(17))
	var ok, failed int
	for i := 0; i < 120; i++ {
		if _, err := eng.Measure(sp.Random(rng)); err == nil {
			ok++
		} else {
			failed++
		}
	}
	if ok == 0 {
		t.Fatal("no measurement survived the hostile objective")
	}
	st := eng.Stats()
	if st.Transient == 0 || st.Retries == 0 {
		t.Fatalf("retry path not exercised: %+v", st)
	}
	if _, _, found := eng.Best(); !found {
		t.Fatal("no best setting despite successful measurements")
	}
}
