package faults

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/space"
)

// pairObj is a two-setting objective with known true times: `fast` is
// genuinely quicker than everything else by a gap smaller than the injected
// noise amplitude, so a single noisy measurement frequently mis-ranks the
// pair.
type pairObj struct {
	sp   *space.Space
	fast string
}

func (o *pairObj) Space() *space.Space { return o.sp }

func (o *pairObj) Measure(s space.Setting) (float64, error) {
	if s.Key() == o.fast {
		return 10.0, nil
	}
	return 10.4, nil
}

// TestWithRepeatsSuppressesTimingNoise validates the median-of-n
// aggregation against the injector's multiplicative timing noise: across a
// sweep of noise seeds, repeated measurement must mis-rank a close pair of
// settings strictly less often than single-shot measurement. Injection
// noise is a pure function of (seed, key, attempt), so the counts — and
// the test — are deterministic.
func TestWithRepeatsSuppressesTimingNoise(t *testing.T) {
	sp, _ := newSim(t)
	rng := rand.New(rand.NewSource(7))
	a := sp.Random(rng)
	b := sp.Random(rng)
	for b.Key() == a.Key() {
		b = sp.Random(rng)
	}
	obj := &pairObj{sp: sp, fast: a.Key()}

	misranks := func(repeats int) int {
		mis := 0
		for seed := uint64(0); seed < 60; seed++ {
			inj := New(obj, Config{Seed: seed, NoiseFrac: 0.06})
			eng := engine.New(inj, engine.WithRepeats(repeats))
			msA, err := eng.Measure(a)
			if err != nil {
				t.Fatal(err)
			}
			msB, err := eng.Measure(b)
			if err != nil {
				t.Fatal(err)
			}
			if msB < msA { // noise inverted the true ranking
				mis++
			}
		}
		return mis
	}

	mis1 := misranks(1)
	mis9 := misranks(9)
	if mis1 < 3 {
		t.Fatalf("noise too tame to validate against: single-shot mis-ranked only %d/60 seeds", mis1)
	}
	if mis9 >= mis1 {
		t.Fatalf("median-of-9 did not suppress noise: %d/60 mis-ranks vs %d/60 single-shot", mis9, mis1)
	}
	if 2*mis9 > mis1 {
		t.Fatalf("median-of-9 suppression too weak: %d/60 vs %d/60 single-shot", mis9, mis1)
	}
}
