// Package faults is a composable, deterministic fault-injecting wrapper
// around any sim.Objective — the adversarial testbed the evaluation engine
// is hardened against. Real auto-tuning runs are dominated by hostile
// measurements (failed compiles, crashed kernels, hung devices, noisy
// timers); the injector reproduces all of them, seeded, so the engine's
// retry/quarantine/deadline behaviour can be pinned by deterministic tests.
//
// Every injection decision is a pure function of (seed, setting key,
// per-key attempt number). The injector serializes only the per-key attempt
// counters, so concurrent measurement schedules — any engine worker count —
// observe exactly the same fault sequence per setting.
package faults

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stats"
)

// Kind is the category of one injected fault.
type Kind int

const (
	// KindTransient is a one-off measurement failure (flaky compile,
	// crashed run); a retry of the same setting may succeed.
	KindTransient Kind = iota
	// KindPermanent marks a setting that fails every time (deterministic
	// compile error): a fixed pseudo-random slice of the space.
	KindPermanent
	// KindHang is a measurement that never returns on its own; it blocks
	// until the caller's context expires. When the caller cannot be
	// interrupted (no deadline or cancellation), it degrades to a
	// transient error instead of deadlocking.
	KindHang
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindPermanent:
		return "permanent"
	case KindHang:
		return "hang"
	}
	return "unknown"
}

// Error is one injected failure. Transient and degraded-hang errors carry
// the engine's TransientError marker so they are retried; permanent errors
// do not, so the engine caches and quarantines them.
type Error struct {
	Kind    Kind
	Key     string
	Attempt int
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s failure (attempt %d)", e.Kind, e.Attempt)
}

// Transient implements engine.TransientError.
func (e *Error) Transient() bool { return e.Kind != KindPermanent }

// Config selects which faults to inject and how often. All rates are
// probabilities in [0, 1] evaluated independently per measurement attempt
// (permanent failures: per setting).
type Config struct {
	// Seed drives every injection decision.
	Seed uint64
	// TransientRate is the probability a given attempt fails transiently.
	TransientRate float64
	// MaxTransientPerKey caps injected transient failures per setting, so
	// retried settings eventually measure; 0 means unlimited.
	MaxTransientPerKey int
	// PermanentRate is the fraction of settings that always fail.
	PermanentRate float64
	// NoiseFrac is the ± relative amplitude of multiplicative timing noise.
	NoiseFrac float64
	// NoiseAddMS is the amplitude of additive timing noise, in milliseconds.
	NoiseAddMS float64
	// SlowRate is the probability an attempt is delayed by SlowDelay of
	// real wall-clock time before measuring.
	SlowRate float64
	// SlowDelay is the injected latency for slow calls.
	SlowDelay time.Duration
	// HangRate is the probability an attempt hangs until the context
	// expires.
	HangRate float64
}

// Default returns a moderately hostile testbed: frequent transient
// failures (capped so searches converge), a slice of permanently-broken
// settings, and 5% timing noise.
func Default() Config {
	return Config{
		TransientRate:      0.15,
		MaxTransientPerKey: 4,
		PermanentRate:      0.05,
		NoiseFrac:          0.05,
	}
}

// Counts is the injector's observation log, for asserting that a test
// actually exercised the fault paths it meant to.
type Counts struct {
	Calls     int
	Transient int
	Permanent int
	Hangs     int
	Slow      int
}

// Injector wraps an objective with seeded fault injection. It is safe for
// concurrent use.
type Injector struct {
	inner sim.Objective
	cfg   Config

	mu       sync.Mutex
	attempts map[string]int
	counts   Counts
}

// New wraps inner with the given fault configuration.
func New(inner sim.Objective, cfg Config) *Injector {
	return &Injector{inner: inner, cfg: cfg, attempts: map[string]int{}}
}

// Space implements sim.Objective.
func (in *Injector) Space() *space.Space { return in.inner.Space() }

// Architecture forwards the wrapped objective's GPU model so codegen
// survives fault wrapping.
func (in *Injector) Architecture() *gpu.Arch { return sim.ArchOf(in.inner) }

// Unwrap returns the inner objective.
func (in *Injector) Unwrap() sim.Objective { return in.inner }

// RestoreAttempts implements engine.AttemptRestorer: a resumed campaign
// feeds back the per-setting objective-call counts its journal recorded, so
// injection decisions — pure functions of (seed, key, attempt) — continue
// exactly where the crashed run stopped instead of restarting every
// setting's fault sequence from attempt zero. Counts are max-merged, so
// restoring over a warm injector never rewinds it.
func (in *Injector) RestoreAttempts(calls map[string]int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for k, n := range calls {
		if n > in.attempts[k] {
			in.attempts[k] = n
		}
	}
}

// Counts returns a snapshot of the injection counters.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// Measure implements sim.Objective. Without a context, hangs degrade to
// transient errors (nothing could ever interrupt them).
func (in *Injector) Measure(s space.Setting) (float64, error) {
	return in.MeasureCtx(context.Background(), s)
}

// Salts decorrelate the per-decision hash streams.
const (
	saltPermanent = 0xf0a1
	saltHang      = 0xf0a2
	saltTransient = 0xf0a3
	saltSlow      = 0xf0a4
	saltNoiseMul  = 0xf0a5
	saltNoiseAdd  = 0xf0a6
)

// MeasureCtx implements engine.CtxObjective: one measurement attempt with
// fault injection, honouring ctx for hangs and slow calls.
func (in *Injector) MeasureCtx(ctx context.Context, s space.Setting) (float64, error) {
	key := s.Key()
	in.mu.Lock()
	attempt := in.attempts[key]
	in.attempts[key]++
	in.counts.Calls++
	in.mu.Unlock()

	// Permanent failures depend on the key alone: the same slice of the
	// space is broken on every attempt, forever.
	if in.cfg.PermanentRate > 0 && in.u(key, 0, saltPermanent) < in.cfg.PermanentRate {
		in.count(func(c *Counts) { c.Permanent++ })
		return 0, &Error{Kind: KindPermanent, Key: key, Attempt: attempt}
	}
	if in.cfg.HangRate > 0 && in.u(key, attempt, saltHang) < in.cfg.HangRate {
		in.count(func(c *Counts) { c.Hangs++ })
		if ctx.Done() == nil {
			return 0, &Error{Kind: KindHang, Key: key, Attempt: attempt}
		}
		<-ctx.Done()
		return 0, ctx.Err()
	}
	if in.cfg.TransientRate > 0 &&
		(in.cfg.MaxTransientPerKey <= 0 || attempt < in.cfg.MaxTransientPerKey) &&
		in.u(key, attempt, saltTransient) < in.cfg.TransientRate {
		in.count(func(c *Counts) { c.Transient++ })
		return 0, &Error{Kind: KindTransient, Key: key, Attempt: attempt}
	}
	if in.cfg.SlowRate > 0 && in.cfg.SlowDelay > 0 && in.u(key, attempt, saltSlow) < in.cfg.SlowRate {
		in.count(func(c *Counts) { c.Slow++ })
		t := time.NewTimer(in.cfg.SlowDelay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return 0, ctx.Err()
		}
	}

	ms, err := in.inner.Measure(s)
	if err != nil {
		return 0, err
	}
	if in.cfg.NoiseFrac > 0 {
		ms *= 1 + in.cfg.NoiseFrac*(2*in.u(key, attempt, saltNoiseMul)-1)
	}
	if in.cfg.NoiseAddMS > 0 {
		ms += in.cfg.NoiseAddMS * in.u(key, attempt, saltNoiseAdd)
	}
	if ms <= 0 {
		ms = 1e-9 // noise must never fabricate a non-positive kernel time
	}
	return ms, nil
}

func (in *Injector) count(f func(*Counts)) {
	in.mu.Lock()
	//cstlint:allow lockcall(count's callers are all in this file and pass short counter-increment closures)
	f(&in.counts)
	in.mu.Unlock()
}

// u returns a deterministic uniform in [0, 1) for one injection decision:
// a pure function of (seed, key, attempt, salt).
func (in *Injector) u(key string, attempt int, salt uint64) float64 {
	h := stats.Mix64(in.cfg.Seed ^ salt)
	h = stats.Mix64(h ^ fnv64(key))
	h = stats.Mix64(h ^ uint64(attempt+1))
	return float64(h>>11) / float64(1<<53)
}

// fnv64 is FNV-1a over the setting key.
func fnv64(key string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

var (
	_ sim.Objective          = (*Injector)(nil)
	_ sim.ArchProvider       = (*Injector)(nil)
	_ engine.CtxObjective    = (*Injector)(nil)
	_ engine.TransientError  = (*Error)(nil)
	_ engine.AttemptRestorer = (*Injector)(nil)
)
