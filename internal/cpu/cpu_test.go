package cpu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/space"
	"repro/internal/stencil"
)

func workload(t testing.TB) *Workload {
	t.Helper()
	w, err := New(stencil.Helmholtz(), XeonE52680v4())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestArchPeak(t *testing.T) {
	a := XeonE52680v4()
	// 14 cores x 2.4 GHz x 4 lanes x 2 FMA ports x 2 flops ≈ 537 GFLOPS.
	if got := a.PeakFP64GFLOPS(); math.Abs(got-537.6) > 1 {
		t.Fatalf("peak = %v GFLOPS", got)
	}
}

func TestNewValidation(t *testing.T) {
	bad := stencil.J3D7PT()
	bad.FLOPs = 0
	if _, err := New(bad, XeonE52680v4()); err == nil {
		t.Fatal("invalid stencil should error")
	}
	if _, err := New(stencil.J3D7PT(), nil); err == nil {
		t.Fatal("nil arch should error")
	}
}

func TestDefaultMeasurable(t *testing.T) {
	w := workload(t)
	set := w.Space().Default()
	if err := w.Space().Validate(set); err != nil {
		t.Fatal(err)
	}
	ms, err := w.Measure(set)
	if err != nil {
		t.Fatal(err)
	}
	// helmholtz: 512³ x 2 arrays x 8B ≈ 2.1 GB at 76.8 GB/s ≥ 28 ms.
	if ms < 20 || ms > 2000 {
		t.Fatalf("default CPU sweep %.1f ms implausible", ms)
	}
}

func TestExplicitConstraints(t *testing.T) {
	w := workload(t)
	sp := w.Space()
	s := sp.Default()
	s[UnrollX] = 8
	s[TX] = 4
	if err := sp.Validate(s); err == nil {
		t.Fatal("UnrollX > TX accepted")
	}
	s = sp.Default()
	s[Vectorize] = space.On
	s[TX] = 2
	if err := sp.Validate(s); err == nil {
		t.Fatal("vector tile below SIMD width accepted")
	}
}

func TestRandomValid(t *testing.T) {
	w := workload(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		s := w.Space().Random(rng)
		if err := w.Space().Validate(s); err != nil {
			t.Fatalf("invalid random setting: %v", err)
		}
	}
}

func TestModelCouplings(t *testing.T) {
	w := workload(t)
	w.NoiseAmp = 0
	sp := w.Space()

	// More threads help up to the core count.
	one := sp.Default()
	one[Threads] = 1
	full := sp.Default()
	full[Threads] = 16
	t1, err := w.Measure(one)
	if err != nil {
		t.Fatal(err)
	}
	t16, err := w.Measure(full)
	if err != nil {
		t.Fatal(err)
	}
	if t16 >= t1 {
		t.Fatalf("16 threads (%.1f ms) should beat 1 thread (%.1f ms)", t16, t1)
	}

	// Vectorization helps a compute-leaning stencil.
	cw, err := New(stencil.RHS4Center(), XeonE52680v4())
	if err != nil {
		t.Fatal(err)
	}
	cw.NoiseAmp = 0
	scalar := cw.Space().Default()
	vec := scalar.Clone()
	vec[Vectorize] = space.On
	ts, _ := cw.Measure(scalar)
	tv, err := cw.Measure(vec)
	if err != nil {
		t.Fatal(err)
	}
	if tv >= ts {
		t.Fatalf("vectorization should help rhs4center: %.1f vs %.1f ms", tv, ts)
	}

	// Cache blocking: an L2-sized tile must beat a cache-busting tile on a
	// wide-halo stencil.
	hw, err := New(stencil.Hypterm(), XeonE52680v4())
	if err != nil {
		t.Fatal(err)
	}
	hw.NoiseAmp = 0
	good := hw.Space().Default()
	good[TX], good[TY], good[TZ] = 64, 8, 4
	bad := hw.Space().Default()
	bad[TX], bad[TY], bad[TZ] = 256, 256, 256
	tg, err := hw.Measure(good)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := hw.Measure(bad)
	if err != nil {
		t.Fatal(err)
	}
	if tg >= tb {
		t.Fatalf("cache blocking should help hypterm: blocked %.1f vs unblocked %.1f ms", tg, tb)
	}
}

func TestOversubscriptionPenalty(t *testing.T) {
	w := workload(t)
	w.NoiseAmp = 0
	sp := w.Space()
	full := sp.Default()
	full[Threads] = 16
	over := sp.Default()
	over[Threads] = 32
	tf, _ := w.Measure(full)
	to, err := w.Measure(over)
	if err != nil {
		t.Fatal(err)
	}
	if to <= tf {
		t.Fatalf("oversubscription should cost: 32thr %.2f vs 16thr %.2f ms", to, tf)
	}
}

// TestCsTunerTunesCPU: the pipeline tunes the CPU workload unchanged.
func TestCsTunerTunesCPU(t *testing.T) {
	w := workload(t)
	ds, err := dataset.Collect(w, rand.New(rand.NewSource(19)), 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Sampling.PoolSize = 512
	cfg.GA.MaxGenerations = 10
	cfg.EmitKernels = false
	rep, err := core.Tune(w, ds, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	def, err := w.Measure(w.Space().Default())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestMS >= def {
		t.Fatalf("csTuner did not beat the default OpenMP kernel: %.2f vs %.2f ms", rep.BestMS, def)
	}
	if err := w.Space().Validate(rep.Best); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsFinite(t *testing.T) {
	w := workload(t)
	r, err := w.Run(w.Space().Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Metrics) < 7 {
		t.Fatalf("only %d metrics", len(r.Metrics))
	}
	for k, v := range r.Metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("metric %s = %v", k, v)
		}
	}
}

func BenchmarkCPUMeasure(b *testing.B) {
	w, err := New(stencil.Helmholtz(), XeonE52680v4())
	if err != nil {
		b.Fatal(err)
	}
	set := w.Space().Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Measure(set); err != nil {
			b.Fatal(err)
		}
	}
}
