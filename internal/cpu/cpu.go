// Package cpu realizes the paper's remaining future-work claim (Sec. VII):
// "we would also like to extend csTuner to support other hardware such as
// CPU ... we only need to adjust the optimization space according to the
// target hardware and then parameterize the optimization space into tuning
// options."
//
// It models an OpenMP-style stencil kernel on a multicore CPU — the paper's
// own host processor, a Xeon E5-2680 v4 (Table II), is the default — over a
// custom optimization space (thread count, 3-D cache-blocking tiles, SIMD
// vectorization, inner unrolling) with an analytical roofline model, and
// exposes it through the same sim.Objective surface the GPU simulator uses,
// so the unmodified csTuner pipeline tunes it.
package cpu

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/stencil"
)

// Arch describes a multicore CPU at roofline fidelity.
type Arch struct {
	Name     string
	Cores    int
	ClockGHz float64
	// SIMDDoubles is the vector width in float64 lanes (AVX2 = 4).
	SIMDDoubles int
	// FMAPorts is the number of FMA pipes per core.
	FMAPorts int

	L1Bytes int // per core
	L2Bytes int // per core
	L3Bytes int // shared

	DRAMBandwidthGB float64
	// ThreadSpawnUS is the parallel-region fork/join overhead.
	ThreadSpawnUS float64
}

// XeonE52680v4 returns the paper's host CPU (Table II): 14 Broadwell cores
// at 2.4 GHz with AVX2.
func XeonE52680v4() *Arch {
	return &Arch{
		Name:            "Xeon E5-2680 v4",
		Cores:           14,
		ClockGHz:        2.4,
		SIMDDoubles:     4,
		FMAPorts:        2,
		L1Bytes:         32 << 10,
		L2Bytes:         256 << 10,
		L3Bytes:         35 << 20,
		DRAMBandwidthGB: 76.8,
		ThreadSpawnUS:   8,
	}
}

// PeakFP64GFLOPS returns the all-core double-precision peak.
func (a *Arch) PeakFP64GFLOPS() float64 {
	return float64(a.Cores) * a.ClockGHz * float64(a.SIMDDoubles) * float64(a.FMAPorts) * 2
}

// Parameter indices of the CPU optimization space.
const (
	Threads = iota // OpenMP threads
	TX             // cache-block tile extents
	TY
	TZ
	Vectorize // {1,2}: explicit SIMD vectorization of the x loop
	UnrollX   // inner-loop unroll factor
	NumParams
)

// Workload is one stencil on one CPU.
type Workload struct {
	Stencil *stencil.Stencil
	Arch    *Arch
	sp      *space.Space

	NoiseAmp float64
	Seed     uint64
}

// New builds the workload and its optimization space.
func New(st *stencil.Stencil, arch *Arch) (*Workload, error) {
	if st == nil {
		return nil, fmt.Errorf("cpu: nil stencil")
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	if arch == nil {
		return nil, fmt.Errorf("cpu: nil architecture")
	}
	w := &Workload{Stencil: st, Arch: arch, NoiseAmp: 0.02, Seed: 0xc0de}

	threadVals := stats.Pow2sUpTo(stats.NextPow2(2 * arch.Cores))
	params := []space.Param{
		{Name: "Threads", Kind: space.KindPow2, Values: threadVals},
		{Name: "TX", Kind: space.KindPow2, Values: stats.Pow2sUpTo(st.NX)},
		{Name: "TY", Kind: space.KindPow2, Values: stats.Pow2sUpTo(st.NY)},
		{Name: "TZ", Kind: space.KindPow2, Values: stats.Pow2sUpTo(st.NZ)},
		{Name: "Vectorize", Kind: space.KindBool, Values: []int{space.Off, space.On}},
		{Name: "UnrollX", Kind: space.KindPow2, Values: stats.Pow2sUpTo(8), Biased: true},
	}
	sp, err := space.NewCustom(params, w.validate, w.repair, w.defaultSetting)
	if err != nil {
		return nil, err
	}
	w.sp = sp
	return w, nil
}

// Space implements sim.Objective.
func (w *Workload) Space() *space.Space { return w.sp }

// defaultSetting: all cores, full-row x tiles, modest y/z blocking — the
// typical hand-written OpenMP starting point.
func (w *Workload) defaultSetting() space.Setting {
	tz := 4
	if tz > w.Stencil.NZ {
		tz = w.Stencil.NZ
	}
	return space.Setting{
		stats.NextPow2(w.Arch.Cores), lastPow2(w.Stencil.NX), minInt(16, w.Stencil.NY), tz,
		space.Off, 1,
	}
}

// lastPow2 returns the largest power of two <= v (v >= 1).
func lastPow2(v int) int {
	p := 1
	for p*2 <= v {
		p *= 2
	}
	return p
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// validate enforces the explicit constraints: the unroll factor cannot
// exceed the x tile, and a tile must hold at least one SIMD vector when
// vectorization is on.
func (w *Workload) validate(s space.Setting) error {
	if s[UnrollX] > s[TX] {
		return fmt.Errorf("%w: UnrollX %d exceeds TX %d", space.ErrInvalid, s[UnrollX], s[TX])
	}
	if s[Vectorize] == space.On && s[TX] < w.Arch.SIMDDoubles {
		return fmt.Errorf("%w: TX %d below SIMD width", space.ErrInvalid, s[TX])
	}
	return nil
}

func (w *Workload) repair(s space.Setting, rng space.RNG) {
	for s[UnrollX] > s[TX] {
		s[UnrollX] >>= 1
	}
	if s[Vectorize] == space.On && s[TX] < w.Arch.SIMDDoubles {
		s[Vectorize] = space.Off
	}
}

// Measure implements sim.Objective.
func (w *Workload) Measure(s space.Setting) (float64, error) {
	r, err := w.Run(s)
	if err != nil {
		return 0, err
	}
	return r.TimeMS, nil
}

// Run implements dataset.Runner: one sweep's time plus a metric report.
func (w *Workload) Run(s space.Setting) (*sim.Result, error) {
	if err := w.sp.Validate(s); err != nil {
		return nil, err
	}
	a := w.Arch
	st := w.Stencil

	threads := s[Threads]
	activeCores := float64(threads)
	oversub := 1.0
	if threads > a.Cores {
		activeCores = float64(a.Cores)
		// Context-switch and hyper-thread contention grow with the
		// oversubscription ratio.
		oversub = 1 + 0.1*float64(threads)/float64(a.Cores)
	}

	// ---- Compute term ----------------------------------------------------
	flops := float64(st.TotalFLOPs())
	simd := 1.0
	if s[Vectorize] == space.On {
		// Real stencil loops never reach the full SIMD factor: unaligned
		// halo loads and shuffles eat part of it; unrolling recovers some.
		simd = 0.55 * float64(a.SIMDDoubles) * (1 + 0.08*math.Log2(float64(s[UnrollX])))
		if simd > float64(a.SIMDDoubles) {
			simd = float64(a.SIMDDoubles)
		}
	} else {
		simd = 1 + 0.1*math.Log2(float64(s[UnrollX])) // scalar ILP only
	}
	scalarRate := activeCores * a.ClockGHz * float64(a.FMAPorts) * 2 // scalar FLOPs/ns
	computeNS := flops * oversub / (scalarRate * simd)

	// ---- Memory term -----------------------------------------------------
	// Cache blocking: a tile whose working set fits L2 reads each input
	// cell once per tile; the halo amplifies traffic as tiles shrink.
	tileCells := float64(s[TX] * s[TY] * s[TZ])
	tileBytes := tileCells * float64(st.Inputs+st.Outputs) * 8
	halo := st.HaloVolume(s[TX], s[TY], s[TZ])
	var amplification float64
	switch {
	case tileBytes <= float64(a.L2Bytes):
		amplification = halo // per-core L2 captures the tile
	case tileBytes*float64(threadsClamped(threads, a)) <= float64(a.L3Bytes):
		amplification = halo * 1.15 // spills to shared L3
	default:
		// The tile streams through cache: every tap re-reads DRAM.
		amplification = float64(st.UniqueOffsets()) / float64(st.Inputs+st.Outputs) * 2
		if amplification < halo {
			amplification = halo
		}
	}
	bytes := float64(st.BytesMoved()) * amplification
	memNS := bytes / a.DRAMBandwidthGB

	// ---- Parallel overhead -------------------------------------------------
	tiles := math.Ceil(float64(st.NX)/float64(s[TX])) *
		math.Ceil(float64(st.NY)/float64(s[TY])) *
		math.Ceil(float64(st.NZ)/float64(s[TZ]))
	schedNS := a.ThreadSpawnUS*1000 + tiles*40/activeCores // per-tile loop+sched cost
	if tiles < activeCores {
		// Too few tiles to feed every core.
		shortfall := activeCores / math.Max(tiles, 1)
		computeNS *= shortfall
		memNS *= math.Min(shortfall, 2)
	}

	// Oversubscription also thrashes the caches, so the memory path pays
	// the same contention factor.
	totalNS := math.Max(computeNS, memNS*oversub) + schedNS

	h := stats.Mix64(s.Hash() ^ w.Seed)
	u := float64(h>>11) / float64(1<<53)
	totalNS *= 1 + w.NoiseAmp*(2*u-1)

	timeMS := totalNS / 1e6
	return &sim.Result{
		TimeMS: timeMS,
		Metrics: map[string]float64{
			"cpu__time_duration":      totalNS,
			"cpu__threads":            float64(threads),
			"cpu__simd_factor":        simd,
			"cpu__traffic_bytes":      bytes,
			"cpu__traffic_amp":        amplification,
			"cpu__dram_pct":           clampPct(100 * bytes / totalNS / a.DRAMBandwidthGB),
			"cpu__flops_pct":          clampPct(100 * flops / totalNS / a.PeakFP64GFLOPS()),
			"cpu__tiles":              tiles,
			"cpu__sched_overhead_pct": clampPct(100 * schedNS / totalNS),
		},
	}, nil
}

func threadsClamped(threads int, a *Arch) int {
	if threads > a.Cores {
		return a.Cores
	}
	return threads
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}
