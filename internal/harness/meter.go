// Package harness runs the paper's evaluation (Sec. V): the motivation
// studies (Figs. 2–4), the iso-iteration and iso-time comparisons of the
// four auto-tuning methods (Figs. 8–10), the sampling-ratio sensitivity
// sweep (Fig. 11), the overhead breakdown (Fig. 12), and the two tables.
//
// Because the GPU is simulated, auto-tuning "time" is metered with a
// virtual clock: every measured setting is charged a compilation cost plus
// its kernel runs, every rejected setting a constraint-check cost. The
// iso-time protocol compares methods at equal virtual seconds, exactly as
// the paper compares them at equal wall-clock seconds on the testbed.
//
// The metering itself lives in internal/engine — the unified evaluation
// engine every tuner measures through; the harness "meter" is that engine
// configured with a cost model and a budget.
package harness

import (
	"repro/internal/engine"
	"repro/internal/sim"
)

// CostModel prices one evaluation on the virtual clock.
type CostModel = engine.CostModel

// DefaultCostModel approximates the paper's testbed: a few seconds of nvcc
// per variant dominates, with kernels re-run a handful of times.
func DefaultCostModel() CostModel { return engine.DefaultCostModel() }

// ErrBudget is returned by Meter.Measure once the budget is exhausted.
var ErrBudget = sim.ErrBudget

// Point is one trajectory sample: after spending CostS virtual seconds and
// Evals measurements, the best time seen so far was BestMS.
type Point = engine.Point

// Meter is the budgeted evaluation engine: virtual-cost accounting,
// memoizing measurement cache, best-so-far trajectory recording, and the
// observability counters. It implements sim.Objective and is safe for
// concurrent use (csTuner's GA measures from several goroutines).
type Meter = engine.Engine

// NewMeter wraps obj in an engine charging cost against budgetS virtual
// seconds (0 = unlimited).
func NewMeter(obj sim.Objective, cost CostModel, budgetS float64) *Meter {
	return engine.New(obj, engine.WithCost(cost), engine.WithBudget(budgetS))
}
