// Package harness runs the paper's evaluation (Sec. V): the motivation
// studies (Figs. 2–4), the iso-iteration and iso-time comparisons of the
// four auto-tuning methods (Figs. 8–10), the sampling-ratio sensitivity
// sweep (Fig. 11), the overhead breakdown (Fig. 12), and the two tables.
//
// Because the GPU is simulated, auto-tuning "time" is metered with a
// virtual clock: every measured setting is charged a compilation cost plus
// its kernel runs, every rejected setting a constraint-check cost. The
// iso-time protocol compares methods at equal virtual seconds, exactly as
// the paper compares them at equal wall-clock seconds on the testbed.
package harness

import (
	"sort"
	"sync"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
)

// CostModel prices one evaluation on the virtual clock.
type CostModel struct {
	// CompileS is charged per distinct measured setting (nvcc + load).
	CompileS float64
	// Reps is how many times the kernel runs per measurement; the run time
	// itself is the simulated kernel time.
	Reps int
	// CheckS is charged per rejected setting (constraint check only).
	CheckS float64
}

// DefaultCostModel approximates the paper's testbed: a few seconds of nvcc
// per variant dominates, with kernels re-run a handful of times.
func DefaultCostModel() CostModel {
	return CostModel{CompileS: 1.5, Reps: 3, CheckS: 0.005}
}

// ErrBudget is returned by Meter.Measure once the budget is exhausted.
var ErrBudget = sim.ErrBudget

// Point is one trajectory sample: after spending CostS virtual seconds and
// Evals measurements, the best time seen so far was BestMS.
type Point struct {
	CostS  float64
	Evals  int
	BestMS float64
}

// Meter wraps an objective with virtual-cost accounting and best-so-far
// trajectory recording. It implements sim.Objective and is safe for
// concurrent use (csTuner's GA measures from several goroutines).
type Meter struct {
	obj  sim.Objective
	cost CostModel

	// BudgetS stops the search once the virtual clock passes it; 0 means
	// unlimited (iso-iteration runs use evaluation counts instead).
	BudgetS float64

	mu      sync.Mutex
	spentS  float64
	evals   int
	best    float64
	bestSet space.Setting
	traj    []Point
}

// NewMeter wraps obj.
func NewMeter(obj sim.Objective, cost CostModel, budgetS float64) *Meter {
	return &Meter{obj: obj, cost: cost, BudgetS: budgetS, best: -1}
}

// Space implements sim.Objective.
func (m *Meter) Space() *space.Space { return m.obj.Space() }

// Architecture forwards the wrapped objective's GPU model, when it has one,
// so csTuner's code-generation stage works through the meter.
func (m *Meter) Architecture() *gpu.Arch {
	if ap, ok := m.obj.(interface{ Architecture() *gpu.Arch }); ok {
		return ap.Architecture()
	}
	return nil
}

// Measure implements sim.Objective with cost accounting.
func (m *Meter) Measure(s space.Setting) (float64, error) {
	m.mu.Lock()
	if m.BudgetS > 0 && m.spentS >= m.BudgetS {
		m.mu.Unlock()
		return 0, ErrBudget
	}
	m.mu.Unlock()

	ms, err := m.obj.Measure(s)

	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.spentS += m.cost.CheckS
		return 0, err
	}
	m.spentS += m.cost.CompileS + float64(m.cost.Reps)*ms/1000
	m.evals++
	if m.best < 0 || ms < m.best {
		m.best = ms
		m.bestSet = s.Clone()
	}
	m.traj = append(m.traj, Point{CostS: m.spentS, Evals: m.evals, BestMS: m.best})
	return ms, nil
}

// Exhausted reports whether the budget has been spent; tuners poll this as
// their stop function.
func (m *Meter) Exhausted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.BudgetS > 0 && m.spentS >= m.BudgetS
}

// SpentS returns the virtual seconds consumed so far.
func (m *Meter) SpentS() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spentS
}

// ChargeS adds out-of-band cost (e.g. csTuner's real pre-processing time)
// to the virtual clock.
func (m *Meter) ChargeS(s float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spentS += s
}

// Evals returns the number of successful measurements.
func (m *Meter) Evals() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evals
}

// Best returns the best observation, or ok=false when nothing measured.
func (m *Meter) Best() (space.Setting, float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.best < 0 {
		return nil, 0, false
	}
	return m.bestSet.Clone(), m.best, true
}

// BestAtEvals returns the best time after the first n measurements, or
// ok=false when fewer than one measurement happened.
func (m *Meter) BestAtEvals(n int) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.traj) == 0 || n < 1 {
		return 0, false
	}
	i := sort.Search(len(m.traj), func(k int) bool { return m.traj[k].Evals > n })
	if i == 0 {
		return 0, false
	}
	return m.traj[i-1].BestMS, true
}

// BestAtCost returns the best time once the virtual clock reached s seconds.
func (m *Meter) BestAtCost(s float64) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.traj) == 0 {
		return 0, false
	}
	i := sort.Search(len(m.traj), func(k int) bool { return m.traj[k].CostS > s })
	if i == 0 {
		return 0, false
	}
	return m.traj[i-1].BestMS, true
}

// Trajectory returns a copy of the recorded points.
func (m *Meter) Trajectory() []Point {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Point(nil), m.traj...)
}
