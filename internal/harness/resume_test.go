package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/journal"
	"repro/internal/stencil"
)

// killFaults is the adversarial testbed the crash matrix runs under:
// transient failures, permanently-broken settings and timing noise, all
// seeded so every run observes the same schedule.
func killFaults() *faults.Config {
	return &faults.Config{
		Seed:               9,
		TransientRate:      0.20,
		MaxTransientPerKey: 2,
		PermanentRate:      0.10,
		NoiseFrac:          0.05,
	}
}

func resumeFixture(t testing.TB) *Fixture {
	t.Helper()
	fx, err := NewFixture(stencil.Helmholtz(), gpu.A100(), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

// snapshotter records the journal's on-disk bytes after every durable
// record: each snapshot is one legal kill point (the file exactly as a
// crash immediately after that fsync would leave it).
type snapshotter struct {
	mu    sync.Mutex
	path  string
	snaps [][]byte
}

func (s *snapshotter) hook(j *journal.Journal) {
	s.path = j.Path()
	j.OnDurable = func(int) {
		data, err := os.ReadFile(s.path)
		if err != nil {
			panic(err)
		}
		s.mu.Lock()
		s.snaps = append(s.snaps, data)
		s.mu.Unlock()
	}
}

// runGolden runs one uninterrupted journaled campaign, returning its
// canonical result and the byte snapshot at every record boundary.
func runGolden(t *testing.T, fx *Fixture, cfg CampaignConfig) (*CampaignResult, [][]byte) {
	t.Helper()
	snap := &snapshotter{}
	cfg.JournalPath = filepath.Join(t.TempDir(), "golden.wal")
	cfg.OnJournal = snap.hook
	res, err := RunCampaign(context.Background(), fx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.snaps) == 0 {
		t.Fatal("golden campaign journaled nothing")
	}
	return res, snap.snaps
}

// resumeFrom writes one kill-point snapshot to a fresh path and resumes
// the campaign from it.
func resumeFrom(t *testing.T, fx *Fixture, cfg CampaignConfig, dir string, snap []byte) (*CampaignResult, error) {
	t.Helper()
	cfg.JournalPath = filepath.Join(dir, "resume.wal")
	cfg.OnJournal = nil
	if err := os.WriteFile(cfg.JournalPath, snap, 0o644); err != nil {
		t.Fatal(err)
	}
	return RunCampaign(context.Background(), fx, cfg)
}

// TestCampaignResumeKillMatrix is the acceptance matrix: a csTuner campaign
// under the fault testbed, killed at every record boundary the journal ever
// fsynced, must resume to a byte-identical canonical result — best setting,
// stats, trajectory and quarantine — at every worker count.
func TestCampaignResumeKillMatrix(t *testing.T) {
	fx := resumeFixture(t)
	base := CampaignConfig{
		Method:          "cstuner",
		BudgetS:         30,
		Seed:            5,
		Faults:          killFaults(),
		Quarantine:      1, // every permanently-broken setting lands in quarantine
		CheckpointEvery: 5,
	}
	golden, snaps := runGolden(t, fx, base)
	want := golden.Canonical()
	if !golden.Found {
		t.Fatal("golden campaign found no best")
	}
	if golden.Stats.Quarantined == 0 || golden.Stats.Transient == 0 {
		t.Fatalf("testbed too tame to prove anything: %+v", golden.Stats)
	}

	stride := 1
	if testing.Short() {
		stride = 5
	}
	for _, workers := range []int{1, 4, 16} {
		cfg := base
		cfg.Workers = workers
		for i := 0; i < len(snaps); i += stride {
			res, err := resumeFrom(t, fx, cfg, t.TempDir(), snaps[i])
			if err != nil {
				t.Fatalf("workers=%d kill=%d/%d: %v", workers, i, len(snaps), err)
			}
			if got := res.Canonical(); got != want {
				t.Fatalf("workers=%d kill=%d/%d: resumed result diverged\n got: %s\nwant: %s",
					workers, i, len(snaps), got, want)
			}
			if i > 0 && res.Replayed == 0 {
				t.Fatalf("workers=%d kill=%d: resume replayed nothing", workers, i)
			}
		}
	}
}

// TestCampaignResumeAllMethods kills each of the four tuners mid-run and
// checks the resumed canonical result against the uninterrupted one.
func TestCampaignResumeAllMethods(t *testing.T) {
	fx := resumeFixture(t)
	for _, method := range []string{"cstuner", "opentuner", "garvey", "artemis"} {
		t.Run(method, func(t *testing.T) {
			base := CampaignConfig{
				Method:  method,
				BudgetS: 25,
				Seed:    3,
				Faults:  killFaults(),
			}
			golden, snaps := runGolden(t, fx, base)
			want := golden.Canonical()
			res, err := resumeFrom(t, fx, base, t.TempDir(), snaps[len(snaps)/2])
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Canonical(); got != want {
				t.Fatalf("resumed %s diverged\n got: %s\nwant: %s", method, got, want)
			}
			if res.Replayed == 0 {
				t.Fatal("mid-run resume replayed nothing")
			}
		})
	}
}

// TestCampaignJournalOffUnchanged proves journaling is observationally
// inert: a fault-free campaign with a journal produces the same canonical
// result as one without.
func TestCampaignJournalOffUnchanged(t *testing.T) {
	fx := resumeFixture(t)
	base := CampaignConfig{Method: "cstuner", BudgetS: 20, Seed: 2}
	plain, err := RunCampaign(context.Background(), fx, base)
	if err != nil {
		t.Fatal(err)
	}
	journaled := base
	journaled.JournalPath = filepath.Join(t.TempDir(), "run.wal")
	withJr, err := RunCampaign(context.Background(), fx, journaled)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Canonical() != withJr.Canonical() {
		t.Fatalf("journaling changed the run\n off: %s\n  on: %s", plain.Canonical(), withJr.Canonical())
	}
}

// TestCampaignResumePrefixSweep hands the campaign every byte-length prefix
// (strided) of a finished journal — torn anywhere, not just at record
// boundaries. Each prefix must either resume to the golden result or fail
// with a clean corruption error; nothing in between, never a panic.
func TestCampaignResumePrefixSweep(t *testing.T) {
	fx := resumeFixture(t)
	base := CampaignConfig{
		Method:  "cstuner",
		BudgetS: 20,
		Seed:    4,
		Faults:  killFaults(),
	}
	golden, snaps := runGolden(t, fx, base)
	want := golden.Canonical()
	full := snaps[len(snaps)-1]

	stride := 41
	if testing.Short() {
		stride = 211
	}
	for n := 0; n <= len(full); n += stride {
		res, err := resumeFrom(t, fx, base, t.TempDir(), full[:n])
		if err != nil {
			if !errors.Is(err, journal.ErrCorrupt) {
				t.Fatalf("prefix %d/%d: unclean failure: %v", n, len(full), err)
			}
			continue
		}
		if got := res.Canonical(); got != want {
			t.Fatalf("prefix %d/%d: resumed result diverged\n got: %s\nwant: %s", n, len(full), got, want)
		}
	}
	// The complete file must resume, not error.
	res, err := resumeFrom(t, fx, base, t.TempDir(), full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Canonical() != want {
		t.Fatalf("full-journal resume diverged")
	}
}

// TestCampaignFingerprintMismatchRefused: a journal from a different
// campaign (other seed) must be refused with ErrFingerprint, not silently
// replayed into the wrong run.
func TestCampaignFingerprintMismatchRefused(t *testing.T) {
	fx := resumeFixture(t)
	base := CampaignConfig{Method: "garvey", BudgetS: 10, Seed: 6}
	_, snaps := runGolden(t, fx, base)

	other := base
	other.Seed = 7
	_, err := resumeFrom(t, fx, other, t.TempDir(), snaps[len(snaps)-1])
	if !errors.Is(err, journal.ErrFingerprint) {
		t.Fatalf("err = %v, want ErrFingerprint", err)
	}
}
