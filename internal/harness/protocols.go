package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

// Fixture bundles everything one stencil's experiments need.
type Fixture struct {
	Stencil *stencil.Stencil
	Space   *space.Space
	Sim     *sim.Simulator
	// DS is the shared offline stencil dataset (csTuner and Garvey read
	// it; metric collection is offline per paper Sec. V-F).
	DS *dataset.Dataset
}

// NewFixture builds the simulator and collects the offline dataset
// (dsSize samples; paper uses 128).
func NewFixture(st *stencil.Stencil, arch *gpu.Arch, dsSize int, seed int64) (*Fixture, error) {
	sp, err := space.New(st)
	if err != nil {
		return nil, err
	}
	s := sim.New(sp, arch)
	// Collection parallelizes through a throwaway engine: the rng is local,
	// so CollectBatch's overdraw is harmless, and the collection cache never
	// leaks into the metered tuning runs built on this fixture.
	ds, err := dataset.CollectBatch(engine.New(s), rand.New(rand.NewSource(seed)), dsSize, 0)
	if err != nil {
		return nil, err
	}
	return &Fixture{Stencil: st, Space: sp, Sim: s, DS: ds}, nil
}

// IsoIterationCurve runs one tuner once and returns best-so-far kernel time
// after each "iteration", where an iteration evaluates popSize settings
// (paper Sec. V-A2 equalizes all methods at the GA's population size).
// Missing points (method finished early, paper's "missing points mean the
// settings were evaluated completely") are NaN.
func IsoIterationCurve(ctx context.Context, t baselines.Tuner, fx *Fixture, iterations, popSize int, seed int64) ([]float64, error) {
	meter := NewMeter(fx.Sim, DefaultCostModel(), 0)
	evalCap := iterations * popSize
	stop := func() bool { return meter.Evals() >= evalCap }
	_, _, err := t.Tune(ctx, meter, fx.DS, seed, stop)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", t.Name(), err)
	}
	curve := make([]float64, iterations)
	for it := 1; it <= iterations; it++ {
		if best, ok := meter.BestAtEvals(it * popSize); ok {
			curve[it-1] = best
		} else if it > 1 && !math.IsNaN(curve[it-2]) {
			curve[it-1] = curve[it-2]
		} else {
			curve[it-1] = math.NaN()
		}
	}
	return curve, nil
}

// IsoTimeResult is one tuner's outcome under a fixed virtual-time budget.
type IsoTimeResult struct {
	BestMS float64
	Evals  int
	Curve  []float64 // best-so-far at each grid point of the time axis
	Grid   []float64 // the time axis (seconds)
}

// IsoTimeRun races one tuner against a virtual budget of budgetS seconds and
// samples its best-so-far trajectory on gridN uniform time points.
func IsoTimeRun(ctx context.Context, t baselines.Tuner, fx *Fixture, budgetS float64, gridN int, seed int64) (*IsoTimeResult, error) {
	meter := NewMeter(fx.Sim, DefaultCostModel(), budgetS)
	_, _, err := t.Tune(ctx, meter, fx.DS, seed, meter.Exhausted)
	// Budget-stop is the expected way for a run to end; only hard errors
	// with nothing measured are fatal.
	_, bestMS, ok := meter.Best()
	if !ok {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.Name(), err)
		}
		return nil, fmt.Errorf("%s: measured nothing within budget", t.Name())
	}
	res := &IsoTimeResult{Evals: meter.Evals(), BestMS: bestMS}
	if gridN > 0 {
		res.Grid = make([]float64, gridN)
		res.Curve = make([]float64, gridN)
		for i := 0; i < gridN; i++ {
			s := budgetS * float64(i+1) / float64(gridN)
			res.Grid[i] = s
			if v, ok := meter.BestAtCost(s); ok {
				res.Curve[i] = v
			} else {
				res.Curve[i] = math.NaN()
			}
		}
	}
	return res, nil
}

// MeanOverSeeds averages f(seed) over `repeats` seeds element-wise,
// ignoring NaNs per element ("to isolate the effects of randomness, we run
// each method 10 times and present the average results").
func MeanOverSeeds(repeats int, baseSeed int64, f func(seed int64) ([]float64, error)) ([]float64, error) {
	var sum []float64
	var count []int
	for r := 0; r < repeats; r++ {
		curve, err := f(baseSeed + int64(r)*1000003)
		if err != nil {
			return nil, err
		}
		if sum == nil {
			sum = make([]float64, len(curve))
			count = make([]int, len(curve))
		}
		for i, v := range curve {
			if !math.IsNaN(v) {
				sum[i] += v
				count[i]++
			}
		}
	}
	out := make([]float64, len(sum))
	for i := range sum {
		if count[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sum[i] / float64(count[i])
		}
	}
	return out, nil
}
