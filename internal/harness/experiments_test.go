package harness

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stencil"
)

// tinyOptions shrinks every protocol knob so the full figure generators run
// end-to-end in seconds.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Stencils = []*stencil.Stencil{stencil.J3D7PT()}
	o.DatasetSize = 48
	o.Repeats = 1
	o.Iterations = 3
	o.BudgetS = 20
	return o
}

func TestFig8EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions()
	o.ArtifactDir = t.TempDir()
	if err := Fig8(&buf, o); err != nil {
		t.Fatal(err)
	}
	// Artifact files must exist and be non-trivial.
	for _, name := range []string{"fig8_j3d7pt.svg", "fig8_j3d7pt.csv"} {
		fi, err := os.Stat(filepath.Join(o.ArtifactDir, name))
		if err != nil || fi.Size() < 100 {
			t.Fatalf("artifact %s missing or empty: %v", name, err)
		}
	}
	out := buf.String()
	for _, m := range []string{"cstuner", "garvey", "opentuner", "artemis"} {
		if !strings.Contains(out, m) {
			t.Fatalf("Fig8 output missing %s:\n%s", m, out)
		}
	}
	if !strings.Contains(out, "## Fig8 j3d7pt") {
		t.Fatal("missing stencil header")
	}
}

func TestFig9EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig9(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "## Fig9 j3d7pt") {
		t.Fatalf("Fig9 output malformed:\n%s", buf.String())
	}
}

func TestFig10EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig10(&buf, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Garvey normalizes to itself.
	if g := rows[0].Norm["garvey"]; math.Abs(g-1) > 1e-9 {
		t.Fatalf("garvey norm = %v, want 1", g)
	}
	for _, m := range []string{"cstuner", "opentuner", "artemis"} {
		v, ok := rows[0].Norm[m]
		if !ok || v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("norm[%s] = %v", m, v)
		}
	}
	if !strings.Contains(buf.String(), "mean csTuner speedup") {
		t.Fatal("missing summary line")
	}
}

func TestFig11EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig11(&buf, tinyOptions(), []float64{0.05, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	series, ok := rows["j3d7pt"]
	if !ok || len(series) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, v := range series {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("ratio series = %v", series)
		}
	}
}

func TestMotivationFiguresEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := MotivationFigures(&buf, tinyOptions(), 200); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig2 j3d7pt", "Fig3 j3d7pt", "Fig4 j3d7pt", "Fig2 mean", "paper:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("motivation output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Ablation(&buf, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // one stencil × four variants
		t.Fatalf("rows = %d", len(rows))
	}
	variants := map[string]bool{}
	for _, r := range rows {
		if r.BestMS <= 0 {
			t.Fatalf("variant %s has no result", r.Variant)
		}
		variants[r.Variant] = true
	}
	for _, want := range []string{"full", "no-grouping", "no-approximation", "wide-sampling"} {
		if !variants[want] {
			t.Fatalf("missing variant %s", want)
		}
	}
}

func TestQuickOptionsSane(t *testing.T) {
	o := QuickOptions()
	if len(o.Stencils) == 0 || o.Repeats < 1 || o.BudgetS <= 0 {
		t.Fatalf("QuickOptions degenerate: %+v", o)
	}
}
