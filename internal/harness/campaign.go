package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/baselines/artemis"
	"repro/internal/baselines/cstuner"
	"repro/internal/baselines/garvey"
	"repro/internal/baselines/opentuner"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/store"
	"repro/internal/vfs"
)

// CampaignConfig describes one resumable tuning campaign: a method racing a
// virtual budget on a fixture, optionally journaled to disk so a killed run
// can be resumed, and optionally hardened against an injected-fault testbed.
type CampaignConfig struct {
	// Method is one of "cstuner", "opentuner", "garvey", "artemis".
	Method string
	// BudgetS is the virtual auto-tuning budget in seconds (0 = unlimited —
	// only sensible for methods that terminate on their own).
	BudgetS float64
	// Seed drives the tuner, the engine's backoff jitter, and (via the
	// fingerprint) journal identity.
	Seed int64
	// Workers bounds the engine's batch worker pool (0 = engine default).
	// Campaign outcomes are identical at any worker count; Workers is
	// deliberately not part of the fingerprint, so a journal written at one
	// worker count resumes at another.
	Workers int
	// Repeats is the engine's median-of-n measurement aggregation (0/1 = one
	// call per attempt).
	Repeats int
	// Quarantine, when > 0, quarantines a setting after that many
	// definitively-failed episodes (engine.WithQuarantine).
	Quarantine int
	// JournalPath, when non-empty, makes the campaign crash-safe: episodes
	// are write-ahead logged there, and a journal already on disk is
	// resumed.
	JournalPath string
	// CheckpointEvery overrides the journal's compaction period in episodes
	// (0 = journal default; negative disables checkpoints).
	CheckpointEvery int
	// FS is the filesystem seam the journal performs every disk operation
	// through (nil = the real filesystem, vfs.OS). It sits alongside the
	// engine's Clock as an injectable environment edge: chaos tests plug a
	// vfs.FaultFS in to sweep disk faults across the campaign. FS never
	// enters the fingerprint — where the bytes land is environment, not
	// campaign identity.
	FS vfs.FS
	// Faults, when non-nil, wraps the simulator in the seeded fault
	// injector — the adversarial testbed the kill-matrix tests run under.
	Faults *faults.Config
	// OnJournal, when set, is invoked with the opened journal before any
	// measurement — the seam crash-matrix tests use to install snapshot
	// hooks. Production callers leave it nil.
	OnJournal func(*journal.Journal)
	// Wrap, when set, wraps the campaign's objective chain (simulator, then
	// fault injector when configured) in one more layer before the engine is
	// built on top. The campaign service uses it to insert its weighted-fair
	// measurement gate; the wrapper must forward Unwrap so journal replay can
	// still restore attempt counters down the chain. Wrap never enters the
	// campaign fingerprint: admission control changes when measurements run,
	// never what they return.
	Wrap func(sim.Objective) sim.Objective
	// Store, when non-nil, attaches the shared cross-campaign result store:
	// memo-cache misses consult it before measuring (free hits, zero budget)
	// and successful episodes publish back. Store presence never enters the
	// fingerprint — store hits are journaled as their own episode class, so
	// journals written with and without a store interoperate.
	Store *store.Store
	// WarmStart lists prior best settings seeding the search (cstuner only;
	// other methods ignore it). It enters the fingerprint via a digest of
	// the setting keys: warm seeds change which settings the search visits,
	// so a journal written warm must not replay into a cold run.
	WarmStart []space.Setting
}

// CampaignResult is the canonical outcome of one campaign: everything the
// resume acceptance criteria compare byte-for-byte. Wall-clock quantities
// (timing spans) are deliberately absent — they can never be identical
// across runs.
type CampaignResult struct {
	Best       space.Setting
	BestMS     float64
	Found      bool
	Stats      engine.Stats
	Trajectory []engine.Point
	Quarantine []string
	// Replayed counts episodes served from the journal instead of the
	// objective; informational, excluded from Canonical so an interrupted
	// and an uninterrupted run compare equal.
	Replayed int
}

// Canonical renders the run-semantic outcome as one deterministic string: a
// resumed campaign is correct exactly when its Canonical equals the
// uninterrupted run's.
func (r *CampaignResult) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "best=%v bestms=%.12g found=%v\n", r.Best, r.BestMS, r.Found)
	// Degradation counters are disk weather, not run semantics: a campaign
	// that rode out fsync trouble still computed the same result, and the
	// fault-point walker's byte-identical-resume invariant depends on that.
	// Zero them in a copy before rendering.
	st := r.Stats
	st.DirSyncErrs, st.StorePutDrops = 0, 0
	fmt.Fprintf(&b, "stats=%+v\n", st)
	fmt.Fprintf(&b, "quarantine=%v\n", r.Quarantine)
	for i, p := range r.Trajectory {
		fmt.Fprintf(&b, "traj[%d]=%.12g,%d,%.12g\n", i, p.CostS, p.Evals, p.BestMS)
	}
	return b.String()
}

// CampaignFingerprint identifies a campaign for journal compatibility. It
// is built from explicit scalar fields only — never from reflective struct
// dumps, which would drag pointers (e.g. function-valued config fields)
// into the identity.
func CampaignFingerprint(fx *Fixture, cfg CampaignConfig) string {
	fp := fmt.Sprintf("cstuner-campaign|v1|stencil=%s|arch=%s|method=%s|seed=%d|budget=%g|repeats=%d|quar=%d|ds=%d",
		fx.Stencil.Name, fx.Sim.Arch.Name, cfg.Method, cfg.Seed, cfg.BudgetS, cfg.Repeats, cfg.Quarantine, len(fx.DS.Samples))
	if f := cfg.Faults; f != nil {
		fp += fmt.Sprintf("|faults=%d,%g,%d,%g,%g,%g,%g,%v,%g",
			f.Seed, f.TransientRate, f.MaxTransientPerKey, f.PermanentRate,
			f.NoiseFrac, f.NoiseAddMS, f.SlowRate, f.SlowDelay, f.HangRate)
	}
	if len(cfg.WarmStart) > 0 {
		// Warm seeds steer which settings the search measures, so they are
		// campaign identity; digesting the keys keeps the fingerprint short.
		h := uint64(1469598103934665603)
		for _, w := range cfg.WarmStart {
			for _, b := range []byte(w.Key() + "\n") {
				h ^= uint64(b)
				h *= 1099511628211
			}
		}
		fp += fmt.Sprintf("|warm=%d,%016x", len(cfg.WarmStart), h)
	}
	return fp
}

// CampaignTuner builds the baselines.Tuner for a campaign method. csTuner's
// GA is pinned to a single sub-population: the island model measures from
// concurrent goroutines, whose accounting order is scheduling-dependent —
// harmless for the best-setting result, fatal for byte-identical resume.
// The other three methods measure sequentially as published.
func CampaignTuner(method string) (baselines.Tuner, error) {
	switch method {
	case "cstuner":
		t := cstuner.New()
		t.Cfg.GA.SubPopulations = 1
		t.Cfg.GA.PopSize = 32 // keep the paper's 32-individual population
		return t, nil
	case "opentuner":
		return opentuner.New(), nil
	case "garvey":
		return garvey.New(), nil
	case "artemis":
		return artemis.New(), nil
	}
	return nil, fmt.Errorf("harness: unknown campaign method %q", method)
}

// CampaignRun is one prepared campaign execution: the tuner, the engine
// (journal attached when the campaign is crash-safe) and the open journal
// handle. Prepare/Execute/Close splits the previously monolithic
// RunCampaign flow so a lifecycle owner (internal/campaign) can interpose
// state transitions around each stage: Prepare while the campaign is still
// Pending, Execute while it is Running, Close on any exit path.
type CampaignRun struct {
	fx  *Fixture
	cfg CampaignConfig
	t   baselines.Tuner
	eng *engine.Engine
	jr  *journal.Journal
}

// PrepareCampaign builds the tuner, opens (or resumes) the journal and
// constructs the engine — everything RunCampaign does before the first
// measurement. Errors here are pre-flight failures: an unknown method, a
// corrupt journal (journal.ErrCorrupt) or a journal written by a
// differently-configured campaign (journal.ErrFingerprint).
func PrepareCampaign(fx *Fixture, cfg CampaignConfig) (*CampaignRun, error) {
	t, err := CampaignTuner(cfg.Method)
	if err != nil {
		return nil, err
	}
	opts := []engine.Option{
		engine.WithCost(DefaultCostModel()),
		engine.WithBudget(cfg.BudgetS),
		engine.WithSeed(uint64(cfg.Seed)),
	}
	if cfg.Workers > 0 {
		opts = append(opts, engine.WithWorkers(cfg.Workers))
	}
	if cfg.Repeats > 1 {
		opts = append(opts, engine.WithRepeats(cfg.Repeats))
	}
	if cfg.Quarantine > 0 {
		opts = append(opts, engine.WithQuarantine(cfg.Quarantine))
	}
	if cfg.Store != nil {
		opts = append(opts, engine.WithStore(cfg.Store,
			store.Prefix(store.ArchFingerprint(fx.Sim.Arch), store.ShapeFingerprint(fx.Stencil))))
	}
	if len(cfg.WarmStart) > 0 {
		if ct, ok := t.(*cstuner.Tuner); ok {
			ct.Cfg.WarmStart = cfg.WarmStart
		}
	}
	var jr *journal.Journal
	if cfg.JournalPath != "" {
		jr, err = journal.OpenOrCreateFS(vfs.Or(cfg.FS), cfg.JournalPath, CampaignFingerprint(fx, cfg))
		if err != nil {
			return nil, err
		}
		if cfg.CheckpointEvery != 0 {
			jr.SetCheckpointEvery(cfg.CheckpointEvery)
		}
		if cfg.OnJournal != nil {
			cfg.OnJournal(jr)
		}
		opts = append(opts, engine.WithJournal(jr))
	}
	var obj sim.Objective = fx.Sim
	if cfg.Faults != nil {
		obj = faults.New(obj, *cfg.Faults)
	}
	if cfg.Wrap != nil {
		obj = cfg.Wrap(obj)
	}
	return &CampaignRun{fx: fx, cfg: cfg, t: t, eng: engine.New(obj, opts...), jr: jr}, nil
}

// Engine exposes the run's engine for progress polling (SpentS, Evals,
// Best) while Execute is in flight.
func (r *CampaignRun) Engine() *engine.Engine { return r.eng }

// Journal returns the open journal, or nil for an unjournaled campaign.
func (r *CampaignRun) Journal() *journal.Journal { return r.jr }

// Execute runs the tuner to completion (or cancellation) and returns the
// canonical result. A cancelled ctx surfaces as ctx.Err() alongside the
// partial result — the caller decides whether that is a pause, a cancel or
// a shutdown. A budget-stop with at least one measurement is the normal end
// of a campaign; an error with nothing measured is a hard failure.
func (r *CampaignRun) Execute(ctx context.Context) (*CampaignResult, error) {
	eng := r.eng
	_, _, tuneErr := r.t.Tune(ctx, eng, r.fx.DS, r.cfg.Seed, eng.Exhausted)
	if jerr := eng.JournalErr(); jerr != nil {
		return nil, jerr
	}
	res := &CampaignResult{
		Stats:      eng.Stats(),
		Trajectory: eng.Trajectory(),
		Quarantine: eng.Quarantined(),
		Replayed:   eng.Replayed(),
	}
	if set, ms, ok := eng.Best(); ok {
		res.Best, res.BestMS, res.Found = set, ms, true
		if err := ctx.Err(); err != nil {
			return res, err
		}
	} else if tuneErr != nil {
		return nil, fmt.Errorf("harness: campaign %s: %w", r.cfg.Method, tuneErr)
	}
	return res, nil
}

// Close releases the journal handle. Every append already returned was
// fsync'd before it returned, so Close has nothing to flush.
func (r *CampaignRun) Close() error {
	if r.jr == nil {
		return nil
	}
	return r.jr.Close()
}

// RunCampaign runs (or, when cfg.JournalPath holds a previous run's
// journal, resumes) one campaign to completion and returns its canonical
// result. Resume is deterministic re-execution: the tuner re-runs from the
// start, and the engine serves every episode the journal already paid for
// instead of measuring it, so the final result is byte-identical to the
// uninterrupted run's. It is Prepare + Execute + Close with the historical
// contract: a run cancelled after measuring something still returns its
// partial result with a nil error.
func RunCampaign(ctx context.Context, fx *Fixture, cfg CampaignConfig) (*CampaignResult, error) {
	r, err := PrepareCampaign(fx, cfg)
	if err != nil {
		return nil, err
	}
	//cstlint:allow errdrop(teardown close after the last fsynced frame; no caller can act on the error)
	defer r.Close()
	res, err := r.Execute(ctx)
	if res != nil && err != nil && errors.Is(err, ctx.Err()) {
		// Historical RunCampaign semantics: cancellation with a partial
		// result is not an error — the caller asked for the cut.
		return res, nil
	}
	return res, err
}
