package harness

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/kernel"
	"repro/internal/space"
	"repro/internal/store"
)

// Warm-start resolution: turning a shared result store's history into seed
// settings for a new campaign. Same-architecture bests are used directly —
// their stored times are exactly what the campaign would measure. Bests
// recorded on *other* architectures transfer through the analytical
// resource model: their stored times are meaningless here, so candidates
// are re-ranked by a hardware-normalized score (kernel.Build against the
// target arch) before seeding — the paper's cross-platform premise that
// good settings are shaped by data movement and occupancy, which the model
// captures, not by absolute clocks, which it must ignore.

// ResolveWarmKeys picks up to n warm-start setting keys for fx from the
// store. Same-arch entries come first (best stored time first); remaining
// slots fill with cross-arch candidates re-ranked by TransferScore on fx's
// architecture. The result is deterministic for a given store content and
// always non-nil, so callers can persist "resolved, found nothing" ([]) and
// never re-resolve against a store that has since grown.
func ResolveWarmKeys(st *store.Store, fx *Fixture, n int) []string {
	keys := []string{}
	if st == nil || n <= 0 {
		return keys
	}
	shape := store.ShapeFingerprint(fx.Stencil)
	arch := store.ArchFingerprint(fx.Sim.Arch)
	seen := map[string]struct{}{}
	add := func(settingKey string) bool {
		if _, dup := seen[settingKey]; dup {
			return len(keys) < n
		}
		s, err := space.ParseKey(settingKey)
		if err != nil || len(s) != fx.Space.N() || fx.Space.Validate(s) != nil {
			return len(keys) < n
		}
		seen[settingKey] = struct{}{}
		keys = append(keys, settingKey)
		return len(keys) < n
	}
	// Over-fetch: Best truncates before this side's validity filtering, so a
	// stale or foreign-space entry must not crowd a usable one out of the
	// slate.
	for _, e := range st.Best(shape, arch, 8*n) {
		if !add(e.Setting) {
			return keys
		}
	}
	// Cross-architecture transfer: pull a generous candidate slate (other
	// arches' rankings only loosely predict this one's), re-rank by the
	// analytical model on the target arch, and take the best.
	cand := st.Best(shape, "", 8*n)
	type scored struct {
		key   string
		score float64
	}
	var ranked []scored
	for _, e := range cand {
		if e.Arch == arch {
			continue
		}
		if _, dup := seen[e.Setting]; dup {
			continue
		}
		s, err := space.ParseKey(e.Setting)
		if err != nil || len(s) != fx.Space.N() {
			continue
		}
		sc, ok := TransferScore(fx, s)
		if !ok {
			continue
		}
		ranked = append(ranked, scored{key: e.Setting, score: sc})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score < ranked[j].score
		}
		return ranked[i].key < ranked[j].key
	})
	for _, r := range ranked {
		if !add(r.key) {
			break
		}
	}
	return keys
}

// TransferScore ranks a setting on fx's architecture without measuring it:
// lower is better. The score multiplies the model's per-point memory and
// instruction work by an occupancy penalty — a setting that keeps the
// target GPU busy while moving little data ranks first. Settings the
// target cannot build (register/shared-memory overflow) return ok=false.
func TransferScore(fx *Fixture, s space.Setting) (float64, bool) {
	if fx.Space.Validate(s) != nil {
		return 0, false
	}
	k, err := kernel.Build(fx.Space, s, fx.Sim.Arch)
	if err != nil {
		return 0, false
	}
	occ := k.Occ.Achieved
	if occ < 0.05 {
		occ = 0.05 // floor: near-zero occupancy would blow up the ratio
	}
	score := k.LoadsPerPoint * k.InstrPerPoint / occ
	if math.IsNaN(score) || math.IsInf(score, 0) {
		return 0, false
	}
	return score, true
}

// WarmStartReport is the outcome of a cold-vs-warm campaign comparison: the
// measurement counts at which each run first reached the cold run's best
// time, plus the warm seeds that were injected.
type WarmStartReport struct {
	ColdBestMS float64
	WarmBestMS float64
	// ColdEvalsToBest / WarmEvalsToBest count measured episodes up to and
	// including the one that first reached ColdBestMS.
	ColdEvalsToBest int
	WarmEvalsToBest int
	ColdEvals       int
	WarmEvals       int
	WarmKeys        []string
}

// WarmStartCompare runs cfg twice against fx: a cold campaign publishing
// into a fresh store at storeDir, then — after resolving up to n warm-start
// keys from that store — a warm campaign seeded with them but *without* the
// store, so every warm episode is genuinely measured and the comparison
// isolates the warm start from store-hit reuse. It reports how many measured
// episodes each run needed to reach the cold run's best.
func WarmStartCompare(ctx context.Context, fx *Fixture, cfg CampaignConfig, storeDir string, n int) (*WarmStartReport, error) {
	st, err := store.Open(storeDir)
	if err != nil {
		return nil, err
	}
	defer func() {
		_ = st.Close() // read-back is done; counters already snapshotted
	}()
	cold := cfg
	cold.Store = st
	coldRes, err := RunCampaign(ctx, fx, cold)
	if err != nil {
		return nil, err
	}
	if !coldRes.Found {
		return nil, fmt.Errorf("harness: cold campaign measured nothing")
	}
	if err := st.Flush(); err != nil {
		return nil, err
	}
	keys := ResolveWarmKeys(st, fx, n)
	warm := cfg
	warm.WarmStart = ParseWarmKeys(fx.Space, keys)
	warmRes, err := RunCampaign(ctx, fx, warm)
	if err != nil {
		return nil, err
	}
	return &WarmStartReport{
		ColdBestMS:      coldRes.BestMS,
		WarmBestMS:      warmRes.BestMS,
		ColdEvalsToBest: evalsToReach(coldRes.Trajectory, coldRes.BestMS),
		WarmEvalsToBest: evalsToReach(warmRes.Trajectory, coldRes.BestMS),
		ColdEvals:       coldRes.Stats.Evaluations,
		WarmEvals:       warmRes.Stats.Evaluations,
		WarmKeys:        keys,
	}, nil
}

// evalsToReach returns the measured-episode count at the first trajectory
// point whose best time is at or below target, or -1 if the run never got
// there.
func evalsToReach(traj []engine.Point, target float64) int {
	for _, p := range traj {
		if p.BestMS <= target+1e-12 {
			return p.Evals
		}
	}
	return -1
}

// ParseWarmKeys materializes persisted warm-start keys into settings,
// dropping any the space no longer accepts.
func ParseWarmKeys(sp *space.Space, keys []string) []space.Setting {
	if len(keys) == 0 {
		return nil
	}
	out := make([]space.Setting, 0, len(keys))
	for _, k := range keys {
		s, err := space.ParseKey(k)
		if err != nil || len(s) != sp.N() || sp.Validate(s) != nil {
			continue
		}
		out = append(out, s)
	}
	return out
}
