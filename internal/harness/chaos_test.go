package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/journal"
	"repro/internal/vfs"
)

// chaosConfig is the walker's campaign: small enough that the full fs-op
// enumeration stays walkable, checkpointing aggressively so compaction's
// temp-file + rename dance sits inside the swept window.
func chaosConfig() CampaignConfig {
	return CampaignConfig{
		Method:          "cstuner",
		BudgetS:         8,
		Seed:            5,
		CheckpointEvery: 3,
	}
}

// runOnFS runs one journaled chaos campaign through fsys (nil = the real
// filesystem) at path.
func runOnFS(fx *Fixture, fsys vfs.FS, path string, workers int) (*CampaignResult, error) {
	cfg := chaosConfig()
	cfg.Workers = workers
	cfg.JournalPath = path
	cfg.FS = fsys
	return RunCampaign(context.Background(), fx, cfg)
}

// recoverAndCheck is the walker invariant: after a faulted run, re-running
// on the real filesystem must either resume to the byte-identical golden
// canonical, or fail with a clean journal.ErrCorrupt — in which case
// quarantining the journal and starting fresh must reach the golden result.
// Anything else (a panic, a non-corruption error, a diverging result) is a
// poisoned recovery path.
func recoverAndCheck(t *testing.T, fx *Fixture, path string, workers int, want, ctx string) {
	t.Helper()
	res, err := runOnFS(fx, nil, path, workers)
	if err != nil {
		if !errors.Is(err, journal.ErrCorrupt) {
			t.Fatalf("%s: recovery failed uncleanly: %v", ctx, err)
		}
		// Clean quarantine: drop the untrusted journal, start over.
		_ = os.Remove(path)
		_ = os.Remove(path + ".tmp")
		res, err = runOnFS(fx, nil, path, workers)
		if err != nil {
			t.Fatalf("%s: fresh run after quarantine failed: %v", ctx, err)
		}
	}
	if got := res.Canonical(); got != want {
		t.Fatalf("%s: recovered result diverged\n got: %s\nwant: %s", ctx, got, want)
	}
}

// chaosFlavors are the disk-failure classes the walker injects, cycled
// across fault points so every op index is hit by one of them.
var chaosFlavors = []struct {
	name  string
	fault vfs.Fault
}{
	{"eio", vfs.Fault{Err: vfs.EIO()}},
	{"enospc", vfs.Fault{Err: vfs.ENoSpace()}},
	// Short fires only when the swept index lands on a write: half the
	// payload reaches the file before the error — the torn-frame case the
	// journal's CRC framing exists to survive.
	{"short", vfs.Fault{Op: vfs.OpWrite, Err: vfs.EIO(), Short: true}},
}

// TestCampaignFaultPointWalker enumerates every filesystem operation a
// journaled campaign performs, re-runs the campaign with a single injected
// fault at each operation in turn, and asserts the recovery invariant at
// every swept point: the journal left behind resumes byte-identically, or
// quarantines cleanly and a fresh run matches golden. Swept at worker
// counts 1, 4 and 16 — journal traffic is accounting-ordered, so the op
// enumeration is deterministic at any worker count.
func TestCampaignFaultPointWalker(t *testing.T) {
	fx := resumeFixture(t)

	counter := vfs.NewFaultFS(vfs.OS, 0)
	golden, err := runOnFS(fx, counter, filepath.Join(t.TempDir(), "golden.wal"), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := golden.Canonical()
	n := counter.Ops()
	if n < 20 {
		t.Fatalf("campaign performed only %d fs ops; nothing to walk", n)
	}
	t.Logf("walking %d fault points", n)

	var injectedTotal int64
	for _, wk := range []struct{ workers, stride int }{{1, 1}, {4, 3}, {16, 7}} {
		stride := wk.stride
		if testing.Short() {
			stride *= 5
		}
		for i := int64(0); i < n; i += int64(stride) {
			fl := chaosFlavors[int(i)%len(chaosFlavors)]
			f := fl.fault
			f.AtIndex = i
			ff := vfs.NewFaultFS(vfs.OS, 0, f)
			path := filepath.Join(t.TempDir(), "walk.wal")
			ctx := fmt.Sprintf("workers=%d op=%d fault=%s", wk.workers, i, fl.name)

			res, err := runOnFS(fx, ff, path, wk.workers)
			if err == nil {
				// The fault was tolerated (dir-fsync, best-effort cleanup):
				// the run itself must still be semantically golden.
				if got := res.Canonical(); got != want {
					t.Fatalf("%s: tolerated fault changed the result\n got: %s\nwant: %s", ctx, got, want)
				}
			}
			injectedTotal += ff.Injected()
			recoverAndCheck(t, fx, path, wk.workers, want, ctx)
		}
	}
	if injectedTotal == 0 {
		t.Fatal("walker injected nothing; the sweep proved nothing")
	}
}

// TestCampaignPowerLossSweep cuts the power at every fs op index: all
// buffered-but-unsynced bytes vanish (torn in half at keep=0.5 points), the
// run dies, and the machine "restarts" — a clean-FS re-run on the same
// journal must reach the byte-identical golden result or quarantine cleanly.
func TestCampaignPowerLossSweep(t *testing.T) {
	fx := resumeFixture(t)

	counter := vfs.NewFaultFS(vfs.OS, 0)
	golden, err := runOnFS(fx, counter, filepath.Join(t.TempDir(), "golden.wal"), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := golden.Canonical()
	n := counter.Ops()

	stride := int64(2)
	if testing.Short() {
		stride = 9
	}
	keeps := []float64{0, 0.5} // clean cut at the last fsync; torn in-flight frame
	for i := int64(0); i < n; i += stride {
		keep := keeps[int(i/stride)%len(keeps)]
		ff := vfs.NewFaultFS(vfs.OS, 0)
		ff.CutAt(i, keep)
		path := filepath.Join(t.TempDir(), "cut.wal")
		ctx := fmt.Sprintf("cut=%d keep=%g", i, keep)

		res, err := runOnFS(fx, ff, path, 1)
		if err == nil {
			// Power lost after the last semantically-relevant op (e.g. at the
			// final close): the completed run must still be golden.
			if got := res.Canonical(); got != want {
				t.Fatalf("%s: run outlived the cut with a different result", ctx)
			}
		} else if !errors.Is(err, vfs.ErrPowerCut) && !errors.Is(err, vfs.ErrInjected) {
			// The cut may surface wrapped in journal errors; anything that is
			// not rooted in the injected outage is a real bug.
			t.Fatalf("%s: run failed outside the power-cut model: %v", ctx, err)
		}
		recoverAndCheck(t, fx, path, 1, want, ctx)
	}
}
