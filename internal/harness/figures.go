package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/space"
	"repro/internal/stats"
)

// MotivationSample holds the random-sampling study shared by Figs. 2–4.
type MotivationSample struct {
	Stencil  string
	Times    []float64 // measured kernel times, one per valid sampled setting
	Settings []space.Setting
	BestMS   float64
}

// CollectMotivation randomly samples n valid settings of the fixture's
// stencil and measures them (paper Sec. III samples >20,000 per stencil;
// the sample size is a knob so tests stay fast). Measurement goes through a
// throwaway evaluation engine so the chunks run on its worker pool; the
// chunk-and-replay loop keeps sample selection identical to drawing and
// measuring one setting at a time.
func CollectMotivation(fx *Fixture, n int, seed int64) (*MotivationSample, error) {
	rng := rand.New(rand.NewSource(seed))
	eng := engine.New(fx.Sim)
	ms := &MotivationSample{Stencil: fx.Stencil.Name}
	seen := map[string]struct{}{}
	tries := 0
	maxTries := 1000 * n
	for len(ms.Times) < n && tries < maxTries {
		chunk := 2 * n
		if chunk > maxTries-tries {
			chunk = maxTries - tries
		}
		draws := make([]space.Setting, chunk)
		for i := range draws {
			draws[i] = fx.Space.Random(rng)
		}
		out := eng.MeasureBatch(draws) // memoized: repeated keys measure once
		for i, set := range draws {
			if len(ms.Times) == n {
				break
			}
			tries++
			if _, dup := seen[set.Key()]; dup {
				continue
			}
			if out[i].Err != nil {
				continue
			}
			seen[set.Key()] = struct{}{}
			ms.Times = append(ms.Times, out[i].MS)
			ms.Settings = append(ms.Settings, set)
			if ms.BestMS == 0 || out[i].MS < ms.BestMS {
				ms.BestMS = out[i].MS
			}
		}
	}
	if len(ms.Times) < n {
		return nil, fmt.Errorf("harness: sampled only %d/%d valid settings", len(ms.Times), n)
	}
	return ms, nil
}

// Fig2Bins returns the five-bin speedup-over-optimum distribution
// (fractions, bins [0,0.2) … [0.8,1.0]) of the sample — Figure 2.
func Fig2Bins(ms *MotivationSample) ([]float64, error) {
	speedups := make([]float64, len(ms.Times))
	for i, t := range ms.Times {
		speedups[i] = ms.BestMS / t
	}
	edges := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0000001}
	counts, err := stats.Histogram(speedups, edges)
	if err != nil {
		return nil, err
	}
	return stats.Normalize(counts), nil
}

// Fig3Bins returns the five-bin distribution of parameter-pair disagreement
// percentages — Figure 3. For every ordered parameter pair (Pi, Pj), each
// observed value v of Pi contributes a disagreement when the Pj value of
// the best sampled setting with Pi=v differs from the global optimum's Pj;
// the pair's percentage is the disagreeing fraction. Pairs are then binned
// into [0,0.2) … [0.8,1.0].
func Fig3Bins(ms *MotivationSample) ([]float64, float64, error) {
	bestIdx := 0
	for i, t := range ms.Times {
		if t < ms.Times[bestIdx] {
			bestIdx = i
		}
	}
	opt := ms.Settings[bestIdx]

	var pcts []float64
	n := space.NumParams
	for pi := 0; pi < n; pi++ {
		for pj := 0; pj < n; pj++ {
			if pi == pj {
				continue
			}
			bestByV := map[int]int{}
			for k := range ms.Settings {
				v := ms.Settings[k][pi]
				cur, ok := bestByV[v]
				if !ok || ms.Times[k] < ms.Times[cur] {
					bestByV[v] = k
				}
			}
			if len(bestByV) < 2 {
				continue
			}
			disagree := 0
			for _, k := range bestByV {
				if ms.Settings[k][pj] != opt[pj] {
					disagree++
				}
			}
			pcts = append(pcts, float64(disagree)/float64(len(bestByV)))
		}
	}
	edges := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0000001}
	counts, err := stats.Histogram(pcts, edges)
	if err != nil {
		return nil, 0, err
	}
	mean, err := stats.Mean(pcts)
	if err != nil {
		return nil, 0, err
	}
	return stats.Normalize(counts), mean, nil
}

// Fig4TopN returns the speedup of the n-th best sampled setting over the
// optimum for each requested n — Figure 4 (paper reports n = 10, 50, 100).
func Fig4TopN(ms *MotivationSample, ns []int) ([]float64, error) {
	sorted := append([]float64(nil), ms.Times...)
	sort.Float64s(sorted)
	out := make([]float64, len(ns))
	for i, n := range ns {
		if n < 1 || n > len(sorted) {
			return nil, fmt.Errorf("harness: top-%d outside sample of %d", n, len(sorted))
		}
		out[i] = sorted[0] / sorted[n-1]
	}
	return out, nil
}

// FormatBins renders a bin row like the paper's stacked bars.
func FormatBins(label string, bins []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s", label)
	names := []string{"[0,0.2)", "[0.2,0.4)", "[0.4,0.6)", "[0.6,0.8)", "[0.8,1.0]"}
	for i, v := range bins {
		fmt.Fprintf(&b, "  %s=%5.1f%%", names[i], 100*v)
	}
	return b.String()
}
