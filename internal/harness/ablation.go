package harness

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// AblationRow is one (stencil, variant) cell of the design-choice ablation.
type AblationRow struct {
	Stencil string
	Variant string
	BestMS  float64
}

// ablationVariants enumerates the pipeline variants DESIGN.md §8 calls out:
// the full system, Algorithm 1 disabled (singleton groups), the CV(top-n)
// approximation stop disabled, and a diluted 50% sampling ratio.
func ablationVariants() []struct {
	name   string
	mutate func(*core.Config)
} {
	return []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"full", func(cfg *core.Config) {}},
		{"no-grouping", func(cfg *core.Config) { cfg.MaxGroupSize = 1 }},
		{"no-approximation", func(cfg *core.Config) { cfg.GA.CVThreshold = 0 }},
		{"wide-sampling", func(cfg *core.Config) { cfg.Sampling.Ratio = 0.5 }},
	}
}

// Ablation runs every pipeline variant under the iso-time budget on every
// stencil, averaging over o.Repeats seeds, and prints one row per stencil.
func Ablation(w io.Writer, o Options) ([]AblationRow, error) {
	var rows []AblationRow
	variants := ablationVariants()
	for _, st := range o.Stencils {
		fx, err := NewFixture(st, o.Arch, o.DatasetSize, o.Seed)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "Ablation %-11s", st.Name)
		for _, v := range variants {
			curve, err := MeanOverSeeds(o.Repeats, o.Seed, func(seed int64) ([]float64, error) {
				cfg := core.DefaultConfig()
				cfg.DatasetSize = o.DatasetSize
				cfg.Seed = seed
				cfg.EmitKernels = false
				v.mutate(&cfg)
				meter := NewMeter(fx.Sim, DefaultCostModel(), o.BudgetS)
				rep, err := core.Tune(meter, fx.DS, cfg, meter.Exhausted)
				if err != nil {
					return nil, err
				}
				return []float64{rep.BestMS}, nil
			})
			if err != nil {
				return nil, fmt.Errorf("ablation %s/%s: %w", st.Name, v.name, err)
			}
			rows = append(rows, AblationRow{Stencil: st.Name, Variant: v.name, BestMS: curve[0]})
			fmt.Fprintf(w, "  %s=%.3f", v.name, curve[0])
		}
		fmt.Fprintln(w)
	}
	return rows, nil
}
