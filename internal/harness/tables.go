package harness

import (
	"fmt"
	"io"

	"repro/internal/space"
	"repro/internal/stencil"
)

// Table1 prints the parameterized optimization space (paper Table I) as
// realized for a given stencil — ranges that depend on the grid extent are
// shown with that stencil's bounds.
func Table1(w io.Writer, st *stencil.Stencil) error {
	sp, err := space.New(st)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Table I: parameterized optimization space (%s, %dx%dx%d)\n",
		st.Name, st.NX, st.NY, st.NZ)
	fmt.Fprintf(w, "%-16s %-6s %s\n", "Parameter", "Kind", "Range")
	for _, p := range sp.Params {
		kind := map[space.Kind]string{
			space.KindPow2: "pow2", space.KindBool: "bool", space.KindEnum: "enum",
		}[p.Kind]
		lo, hi := p.Values[0], p.Values[len(p.Values)-1]
		var rng string
		if p.Kind == space.KindPow2 {
			rng = fmt.Sprintf("[%d, %d] (%d values)", lo, hi, len(p.Values))
		} else {
			rng = fmt.Sprintf("%v", p.Values)
		}
		fmt.Fprintf(w, "%-16s %-6s %s\n", p.Name, kind, rng)
	}
	fmt.Fprintf(w, "unconstrained cartesian size: %.3g settings (paper: >100 million)\n",
		sp.SizeUpperBound())
	return nil
}

// Table3 prints the evaluated stencils (paper Table III).
func Table3(w io.Writer) {
	fmt.Fprintf(w, "## Table III: stencils used for evaluation\n")
	fmt.Fprintf(w, "%-11s %-15s %-6s %-8s %s\n", "Stencil", "Input Grid", "Order", "# FLOPs", "# I/O Arrays")
	for _, st := range stencil.Suite() {
		fmt.Fprintf(w, "%-11s %dx%dx%d     %-6d %-8d %d\n",
			st.Name, st.NX, st.NY, st.NZ, st.Order, st.FLOPs, st.Inputs+st.Outputs)
	}
}
