package harness

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"testing"

	"repro/internal/gpu"
	"repro/internal/space"
	"repro/internal/stencil"
	"repro/internal/store"
)

// The two-process test re-execs this test binary with these set; the child
// body (TestMain) runs one full campaign publishing into the shared store.
const (
	childStoreEnv = "CSHARNESS_TEST_STORE_DIR"
	childSeedEnv  = "CSHARNESS_TEST_SEED"
)

func TestMain(m *testing.M) {
	if dir := os.Getenv(childStoreEnv); dir != "" {
		runChildCampaign(dir, os.Getenv(childSeedEnv))
		return
	}
	os.Exit(m.Run())
}

// runChildCampaign is the child-process body: one campaign against the
// shared store directory, publishing every measured episode.
func runChildCampaign(dir, seedStr string) {
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: seed:", err)
		os.Exit(2)
	}
	st, err := store.Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: store:", err)
		os.Exit(2)
	}
	fx, err := NewFixture(stencil.Helmholtz(), gpu.A100(), 32, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: fixture:", err)
		os.Exit(2)
	}
	if _, err := RunCampaign(context.Background(), fx, CampaignConfig{
		Method:  "cstuner",
		BudgetS: 8,
		Seed:    seed,
		Store:   st,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "child: campaign:", err)
		os.Exit(2)
	}
	if err := st.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "child: close:", err)
		os.Exit(2)
	}
	os.Exit(0)
}

// TestTwoProcessCampaignsShareStore runs two real campaign processes against
// one store directory concurrently, then proves the directory is intact and
// usable: a third (in-process) campaign with one child's seed re-runs the
// same measurement sequence and must serve it from the store.
func TestTwoProcessCampaignsShareStore(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	var kids []*exec.Cmd
	for _, seed := range []string{"3", "4"} {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(), childStoreEnv+"="+dir, childSeedEnv+"="+seed)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		kids = append(kids, cmd)
	}
	for _, cmd := range kids {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("child campaign failed: %v", err)
		}
	}

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	if stats.Quarantined != nil || stats.SkippedRecords != 0 {
		t.Fatalf("shared store corrupted by concurrent campaigns: %+v", stats)
	}
	if stats.Keys == 0 || stats.Segments != 2 {
		t.Fatalf("stats = %+v, want records from 2 child segments", stats)
	}

	fx, err := NewFixture(stencil.Helmholtz(), gpu.A100(), 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCampaign(context.Background(), fx, CampaignConfig{
		Method:  "cstuner",
		BudgetS: 8,
		Seed:    3, // same identity as the first child: every episode is stored
		Store:   st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StoreHits == 0 {
		t.Fatalf("re-run against the shared store measured everything again: %+v", res.Stats)
	}
	// Store hits are free, so the re-run pushes past the cold run's budget
	// horizon into new settings — every re-measured episode it does pay for
	// must be genuinely new, i.e. a counted store miss.
	if res.Stats.Evaluations > res.Stats.StoreMisses {
		t.Fatalf("re-run re-measured stored settings: %+v", res.Stats)
	}
}

// TestWarmStartReachesColdBestWithFewerMeasurements is the PR's headline
// claim: a warm-started campaign (seeded from the store, but measuring
// everything itself) reaches the cold campaign's best kernel time with at
// least 30% fewer measured episodes.
func TestWarmStartReachesColdBestWithFewerMeasurements(t *testing.T) {
	fx := resumeFixture(t)
	rep, err := WarmStartCompare(context.Background(), fx, CampaignConfig{
		Method:  "cstuner",
		BudgetS: 20,
		Seed:    3,
	}, t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.WarmKeys) == 0 {
		t.Fatal("cold campaign left nothing to warm-start from")
	}
	if rep.WarmBestMS > rep.ColdBestMS+1e-12 {
		t.Fatalf("warm best %.9f worse than cold best %.9f", rep.WarmBestMS, rep.ColdBestMS)
	}
	if rep.ColdEvalsToBest <= 0 {
		t.Fatalf("cold run has no best-reaching point: %+v", rep)
	}
	if rep.WarmEvalsToBest < 0 {
		t.Fatalf("warm run never reached the cold best: %+v", rep)
	}
	if limit := 7 * rep.ColdEvalsToBest / 10; rep.WarmEvalsToBest > limit {
		t.Fatalf("warm start saved too little: warm reached the cold best at eval %d, cold at %d (need <= %d)",
			rep.WarmEvalsToBest, rep.ColdEvalsToBest, limit)
	}
}

// validSettings draws n distinct valid settings from the fixture's space.
func validSettings(t *testing.T, fx *Fixture, n int, seed int64) []space.Setting {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var out []space.Setting
	for len(out) < n {
		s := fx.Space.Random(rng)
		if k := s.Key(); !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// buildableSettings is validSettings restricted to settings the target
// architecture can actually build (TransferScore ok) — what a cross-arch
// candidate must be to survive re-ranking.
func buildableSettings(t *testing.T, fx *Fixture, n int, seed int64) []space.Setting {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var out []space.Setting
	for len(out) < n {
		s := fx.Space.Random(rng)
		k := s.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := TransferScore(fx, s); ok {
			out = append(out, s)
		}
	}
	return out
}

func TestResolveWarmKeysSameArchFirst(t *testing.T) {
	fx := resumeFixture(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	arch := store.ArchFingerprint(fx.Sim.Arch)
	shape := store.ShapeFingerprint(fx.Stencil)
	sets := validSettings(t, fx, 4, 77)

	st.Put(store.Key(arch, shape, sets[0].Key()), 3)
	st.Put(store.Key(arch, shape, sets[1].Key()), 1)
	st.Put(store.Key(arch, shape, sets[2].Key()), 2)
	st.Put(store.Key(arch, shape, "not a parseable setting"), 0.1) // must be skipped
	st.Put(store.Key(arch, "shape:other", sets[3].Key()), 0.1)     // other workload: ignored

	keys := ResolveWarmKeys(st, fx, 2)
	if len(keys) != 2 || keys[0] != sets[1].Key() || keys[1] != sets[2].Key() {
		t.Fatalf("keys = %v, want best two same-arch settings", keys)
	}

	// Never nil, even with nothing to offer: callers persist "resolved,
	// found nothing" and must be able to tell it from "never resolved".
	if got := ResolveWarmKeys(st, fx, 0); got == nil {
		t.Fatal("n=0 returned nil")
	}
	if got := ResolveWarmKeys(nil, fx, 4); got == nil || len(got) != 0 {
		t.Fatalf("nil store returned %v", got)
	}
}

func TestResolveWarmKeysCrossArchTransfer(t *testing.T) {
	fx := resumeFixture(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	arch := store.ArchFingerprint(fx.Sim.Arch)
	otherArch := store.ArchFingerprint(gpu.V100())
	if arch == otherArch {
		t.Fatal("test needs two distinct arch fingerprints")
	}
	shape := store.ShapeFingerprint(fx.Stencil)
	sets := buildableSettings(t, fx, 6, 78)

	// One same-arch entry; the rest recorded on another architecture with
	// stored times that must NOT be taken at face value.
	st.Put(store.Key(arch, shape, sets[0].Key()), 5)
	for i, s := range sets[1:] {
		st.Put(store.Key(otherArch, shape, s.Key()), float64(i)+1)
	}

	keys := ResolveWarmKeys(st, fx, 4)
	if len(keys) != 4 {
		t.Fatalf("keys = %v, want 4", keys)
	}
	if keys[0] != sets[0].Key() {
		t.Fatalf("same-arch entry must rank first: %v", keys)
	}
	// The cross-arch tail must be ordered by TransferScore, not stored ms.
	for i := 1; i < len(keys)-1; i++ {
		si, _ := space.ParseKey(keys[i])
		sj, _ := space.ParseKey(keys[i+1])
		sci, oki := TransferScore(fx, si)
		scj, okj := TransferScore(fx, sj)
		if !oki || !okj {
			t.Fatalf("resolved key does not score: %v", keys)
		}
		if sci > scj {
			t.Fatalf("cross-arch keys out of transfer-score order at %d: %v > %v", i, sci, scj)
		}
	}
	// Determinism: same store, same answer.
	again := ResolveWarmKeys(st, fx, 4)
	for i := range keys {
		if again[i] != keys[i] {
			t.Fatalf("resolution not deterministic: %v vs %v", keys, again)
		}
	}
}

func TestParseWarmKeys(t *testing.T) {
	fx := resumeFixture(t)
	sets := validSettings(t, fx, 2, 79)
	keys := []string{sets[0].Key(), "garbage", sets[1].Key()}
	got := ParseWarmKeys(fx.Space, keys)
	if len(got) != 2 || got[0].Key() != sets[0].Key() || got[1].Key() != sets[1].Key() {
		t.Fatalf("ParseWarmKeys = %v", got)
	}
	if ParseWarmKeys(fx.Space, nil) != nil {
		t.Fatal("empty keys must parse to nil")
	}
}

// TestWarmStartEntersFingerprint: warm seeds change the measurement
// sequence, so they must change the campaign fingerprint — and the store
// itself must not (journals stay interoperable across store configurations).
func TestWarmStartEntersFingerprint(t *testing.T) {
	fx := resumeFixture(t)
	base := CampaignConfig{Method: "cstuner", BudgetS: 10, Seed: 1}
	fpBase := CampaignFingerprint(fx, base)

	warm := base
	warm.WarmStart = []space.Setting{fx.Space.Default()}
	if fp := CampaignFingerprint(fx, warm); fp == fpBase {
		t.Fatal("warm seeds did not change the fingerprint")
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stored := base
	stored.Store = st
	if fp := CampaignFingerprint(fx, stored); fp != fpBase {
		t.Fatal("attaching a store changed the fingerprint; journals would stop interoperating")
	}
}
