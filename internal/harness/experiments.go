package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/baselines"
	"repro/internal/baselines/artemis"
	"repro/internal/baselines/cstuner"
	"repro/internal/baselines/garvey"
	"repro/internal/baselines/opentuner"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/plot"
	"repro/internal/stencil"
)

// Options scales the evaluation: the paper's full protocol (10 repeats,
// 100-second budgets, 8 stencils) versus quick smoke runs.
type Options struct {
	Stencils    []*stencil.Stencil
	Arch        *gpu.Arch
	DatasetSize int     // offline dataset samples (paper: 128)
	Repeats     int     // runs averaged per method (paper: 10)
	Iterations  int     // iso-iteration x-axis length (paper plots 10)
	PopSize     int     // settings per iteration (GA population, 2x16)
	BudgetS     float64 // iso-time budget in virtual seconds (paper: 100)
	Seed        int64
	// ArtifactDir, when non-empty, receives SVG and CSV renderings of each
	// figure (fig8_<stencil>.svg/.csv, ...) alongside the text output.
	ArtifactDir string
}

// DefaultOptions mirrors the paper's protocol.
func DefaultOptions() Options {
	return Options{
		Stencils:    stencil.Suite(),
		Arch:        gpu.A100(),
		DatasetSize: 128,
		Repeats:     10,
		Iterations:  10,
		PopSize:     32,
		BudgetS:     100,
		Seed:        1,
	}
}

// QuickOptions shrinks everything for tests and smoke runs.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Stencils = []*stencil.Stencil{stencil.J3D7PT(), stencil.Helmholtz()}
	o.DatasetSize = 64
	o.Repeats = 2
	o.BudgetS = 40
	return o
}

// Methods returns the four compared tuners, csTuner first (paper order).
func Methods() []baselines.Tuner {
	return []baselines.Tuner{cstuner.New(), garvey.New(), opentuner.New(), artemis.New()}
}

// quickMethods trims csTuner's pools so repeated harness runs stay fast
// while preserving the pipeline structure.
func methodsFor(o Options) []baselines.Tuner {
	ms := Methods()
	cs := ms[0].(*cstuner.Tuner)
	cs.Cfg.DatasetSize = o.DatasetSize
	if o.BudgetS < 100 {
		cs.Cfg.Sampling.PoolSize = 1024
	}
	return ms
}

// Fig8 runs the iso-iteration comparison and writes one block per stencil:
// rows are methods, columns the best-so-far kernel time (ms) after each
// iteration. NaN prints as "-" (the paper's missing points).
func Fig8(w io.Writer, o Options) error {
	methods := methodsFor(o)
	for _, st := range o.Stencils {
		fx, err := NewFixture(st, o.Arch, o.DatasetSize, o.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## Fig8 %s (best ms after k iterations of %d evals, mean of %d runs)\n",
			st.Name, o.PopSize, o.Repeats)
		series := map[string][]float64{}
		for _, m := range methods {
			curve, err := MeanOverSeeds(o.Repeats, o.Seed, func(seed int64) ([]float64, error) {
				return IsoIterationCurve(context.Background(), m, fx, o.Iterations, o.PopSize, seed)
			})
			if err != nil {
				return fmt.Errorf("fig8 %s/%s: %w", st.Name, m.Name(), err)
			}
			fmt.Fprintf(w, "%-10s %s\n", m.Name(), formatCurve(curve))
			series[m.Name()] = curve
		}
		if err := emitArtifacts(o, "fig8_"+st.Name, &plot.Chart{
			Title:  "Fig.8 " + st.Name + " (iso-iteration)",
			XLabel: "iterations", YLabel: "best kernel ms",
			Series: plot.SortedSeries(series),
		}); err != nil {
			return err
		}
	}
	return nil
}

// Fig9 runs the iso-time comparison: best-so-far kernel time on a uniform
// virtual-time grid up to the budget.
func Fig9(w io.Writer, o Options) error {
	methods := methodsFor(o)
	const gridN = 10
	for _, st := range o.Stencils {
		fx, err := NewFixture(st, o.Arch, o.DatasetSize, o.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## Fig9 %s (best ms over %gs budget, mean of %d runs)\n",
			st.Name, o.BudgetS, o.Repeats)
		series := map[string][]float64{}
		for _, m := range methods {
			curve, err := MeanOverSeeds(o.Repeats, o.Seed, func(seed int64) ([]float64, error) {
				res, err := IsoTimeRun(context.Background(), m, fx, o.BudgetS, gridN, seed)
				if err != nil {
					return nil, err
				}
				return res.Curve, nil
			})
			if err != nil {
				return fmt.Errorf("fig9 %s/%s: %w", st.Name, m.Name(), err)
			}
			fmt.Fprintf(w, "%-10s %s\n", m.Name(), formatCurve(curve))
			series[m.Name()] = curve
		}
		grid := make([]float64, gridN)
		for i := range grid {
			grid[i] = o.BudgetS * float64(i+1) / float64(gridN)
		}
		if err := emitArtifacts(o, "fig9_"+st.Name, &plot.Chart{
			Title:  "Fig.9 " + st.Name + " (iso-time)",
			XLabel: "seconds", YLabel: "best kernel ms",
			X:      grid,
			Series: plot.SortedSeries(series),
		}); err != nil {
			return err
		}
	}
	return nil
}

// Fig10Row is one stencil's iso-time performance normalized to Garvey.
type Fig10Row struct {
	Stencil string
	// Norm maps method name to Garvey-relative speedup (>1 = faster than
	// Garvey's best-found setting under the same budget).
	Norm map[string]float64
}

// Fig10 reproduces the V100 portability study: iso-time best performance of
// each method normalized to Garvey, plus the cross-stencil mean speedups of
// csTuner over the three baselines (paper: 1.7x / 1.2x / 1.2x).
func Fig10(w io.Writer, o Options) ([]Fig10Row, error) {
	o.Arch = gpu.V100() // re-collecting the dataset on the new hardware
	methods := methodsFor(o)
	var rows []Fig10Row
	sums := map[string]float64{}
	for _, st := range o.Stencils {
		fx, err := NewFixture(st, o.Arch, o.DatasetSize, o.Seed+77)
		if err != nil {
			return nil, err
		}
		best := map[string]float64{}
		for _, m := range methods {
			curve, err := MeanOverSeeds(o.Repeats, o.Seed, func(seed int64) ([]float64, error) {
				res, err := IsoTimeRun(context.Background(), m, fx, o.BudgetS, 0, seed)
				if err != nil {
					return nil, err
				}
				return []float64{res.BestMS}, nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig10 %s/%s: %w", st.Name, m.Name(), err)
			}
			best[m.Name()] = curve[0]
		}
		row := Fig10Row{Stencil: st.Name, Norm: map[string]float64{}}
		for name, ms := range best {
			row.Norm[name] = best["garvey"] / ms // higher = faster than Garvey
			sums[name] += row.Norm[name]
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "Fig10 %-11s", st.Name)
		for _, m := range methods {
			fmt.Fprintf(w, "  %s=%.2fx", m.Name(), row.Norm[m.Name()])
		}
		fmt.Fprintln(w)
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "Fig10 mean csTuner speedup: vs garvey %.2fx, vs opentuner %.2fx, vs artemis %.2fx\n",
		sums["cstuner"]/n, (sums["cstuner"]/n)/(sums["opentuner"]/n), (sums["cstuner"]/n)/(sums["artemis"]/n))
	return rows, nil
}

// Fig11 sweeps csTuner's sampling ratio (paper: 5%–50% stride 5%) under the
// iso-time budget and reports the best found time per ratio.
func Fig11(w io.Writer, o Options, ratios []float64) (map[string][]float64, error) {
	if len(ratios) == 0 {
		for r := 0.05; r <= 0.501; r += 0.05 {
			ratios = append(ratios, r)
		}
	}
	out := map[string][]float64{}
	for _, st := range o.Stencils {
		fx, err := NewFixture(st, o.Arch, o.DatasetSize, o.Seed)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(ratios))
		for i, ratio := range ratios {
			cs := cstuner.New()
			cs.Cfg.DatasetSize = o.DatasetSize
			cs.Cfg.Sampling.Ratio = ratio
			cs.Cfg.Sampling.PoolSize = 1024
			curve, err := MeanOverSeeds(o.Repeats, o.Seed, func(seed int64) ([]float64, error) {
				res, err := IsoTimeRun(context.Background(), cs, fx, o.BudgetS, 0, seed)
				if err != nil {
					return nil, err
				}
				return []float64{res.BestMS}, nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig11 %s ratio %.2f: %w", st.Name, ratio, err)
			}
			row[i] = curve[0]
		}
		out[st.Name] = row
		fmt.Fprintf(w, "Fig11 %-11s %s\n", st.Name, formatCurve(row))
	}
	if err := emitArtifacts(o, "fig11", &plot.Chart{
		Title:  "Fig.11 sampling-ratio sensitivity (iso-time)",
		XLabel: "sampling ratio", YLabel: "best kernel ms",
		X:      ratios,
		Series: plot.SortedSeries(out),
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig12Row is one stencil's pre-processing overhead breakdown.
type Fig12Row struct {
	Stencil  string
	Grouping time.Duration
	Sampling time.Duration
	Codegen  time.Duration
	SearchS  float64 // virtual search seconds
	// Ratio is total pre-processing over search time.
	Ratio float64
}

// Fig12 measures csTuner's pre-processing overhead (real wall-clock of
// grouping/sampling/codegen) against the search process (virtual seconds of
// compile+run), reproducing the 'negligible overhead' claim (~0.76% mean).
func Fig12(w io.Writer, o Options) ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, st := range o.Stencils {
		fx, err := NewFixture(st, o.Arch, o.DatasetSize, o.Seed)
		if err != nil {
			return nil, err
		}
		cs := cstuner.New()
		cs.Cfg.DatasetSize = o.DatasetSize
		cs.Cfg.EmitKernels = true
		// The meter forwards the simulator's architecture, so code
		// generation runs inside the pipeline while measurements are
		// charged to the virtual clock.
		meter := NewMeter(fx.Sim, DefaultCostModel(), o.BudgetS)
		rep, err := core.Tune(meter, fx.DS, cs.Cfg, meter.Exhausted)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", st.Name, err)
		}
		row := Fig12Row{
			Stencil:  st.Name,
			Grouping: rep.Overhead.Grouping,
			Sampling: rep.Overhead.Sampling,
			Codegen:  rep.Overhead.Codegen,
			SearchS:  meter.SpentS(),
		}
		row.Ratio = rep.Overhead.Total().Seconds() / row.SearchS
		rows = append(rows, row)
		fmt.Fprintf(w, "Fig12 %-11s grouping=%v sampling=%v codegen=%v search=%.1fs ratio=%.3f%%\n",
			st.Name, row.Grouping, row.Sampling, row.Codegen, row.SearchS, 100*row.Ratio)
	}
	mean := 0.0
	for _, r := range rows {
		mean += r.Ratio
	}
	fmt.Fprintf(w, "Fig12 mean pre-processing/search = %.3f%%\n", 100*mean/float64(len(rows)))
	return rows, nil
}

// MotivationFigures prints Figs. 2–4 for every stencil in one pass over a
// shared random sample.
func MotivationFigures(w io.Writer, o Options, sampleN int) error {
	if sampleN <= 0 {
		sampleN = 20000 // paper Sec. III
	}
	var f2avgGood, f2avgBad, f3avg float64
	var tops [3]float64
	for _, st := range o.Stencils {
		fx, err := NewFixture(st, o.Arch, o.DatasetSize, o.Seed)
		if err != nil {
			return err
		}
		msample, err := CollectMotivation(fx, sampleN, o.Seed+5)
		if err != nil {
			return err
		}
		bins, err := Fig2Bins(msample)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, FormatBins("Fig2 "+st.Name, bins))
		f2avgGood += bins[4]
		f2avgBad += bins[0]

		pbins, meanPct, err := Fig3Bins(msample)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, FormatBins("Fig3 "+st.Name, pbins))
		f3avg += meanPct

		top, err := Fig4TopN(msample, []int{10, 50, 100})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Fig4 %-11s top-10=%.1f%% top-50=%.1f%% top-100=%.1f%%\n",
			st.Name, 100*top[0], 100*top[1], 100*top[2])
		for i := range tops {
			tops[i] += top[i]
		}
	}
	n := float64(len(o.Stencils))
	fmt.Fprintf(w, "Fig2 mean: %.1f%% within 20%% of optimum, %.1f%% worse than 5x (paper: 5.1%% / 24.2%%)\n",
		100*f2avgGood/n, 100*f2avgBad/n)
	fmt.Fprintf(w, "Fig3 mean pair disagreement: %.1f%% (paper: 28.6%%)\n", 100*f3avg/n)
	fmt.Fprintf(w, "Fig4 mean: top-10=%.1f%% top-50=%.1f%% top-100=%.1f%% (paper: 96.7/92.4/90.1)\n",
		100*tops[0]/n, 100*tops[1]/n, 100*tops[2]/n)
	return nil
}

// emitArtifacts writes <name>.svg and <name>.csv into o.ArtifactDir when it
// is configured.
func emitArtifacts(o Options, name string, c *plot.Chart) error {
	if o.ArtifactDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.ArtifactDir, 0o755); err != nil {
		return fmt.Errorf("harness: artifacts: %w", err)
	}
	svg, err := os.Create(filepath.Join(o.ArtifactDir, name+".svg"))
	if err != nil {
		return err
	}
	if err := c.WriteSVG(svg); err != nil {
		_ = svg.Close() // write already failed; its error wins
		return err
	}
	if err := svg.Close(); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(o.ArtifactDir, name+".csv"))
	if err != nil {
		return err
	}
	if err := c.WriteCSV(csv); err != nil {
		_ = csv.Close() // write already failed; its error wins
		return err
	}
	return csv.Close()
}

// formatCurve renders a float series, NaN as "-".
func formatCurve(xs []float64) string {
	out := ""
	for i, v := range xs {
		if i > 0 {
			out += " "
		}
		if math.IsNaN(v) {
			out += "     -"
		} else {
			out += fmt.Sprintf("%6.2f", v)
		}
	}
	return out
}

// RankMethods returns method names ordered by their value in m (ascending).
func RankMethods(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool { return m[names[a]] < m[names[b]] })
	return names
}
