package harness

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/baselines/cstuner"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func fixture(t testing.TB) *Fixture {
	t.Helper()
	fx, err := NewFixture(stencil.Helmholtz(), gpu.A100(), 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func TestMeterAccounting(t *testing.T) {
	fx := fixture(t)
	cost := CostModel{CompileS: 2, Reps: 4, CheckS: 0.5}
	m := NewMeter(fx.Sim, cost, 0)

	set := fx.Space.Default()
	ms, err := m.Measure(set)
	if err != nil {
		t.Fatal(err)
	}
	wantCost := 2 + 4*ms/1000
	if got := m.SpentS(); math.Abs(got-wantCost) > 1e-12 {
		t.Fatalf("SpentS = %v, want %v", got, wantCost)
	}
	if m.Evals() != 1 {
		t.Fatalf("Evals = %d", m.Evals())
	}

	// Invalid setting: CheckS charged, no eval counted.
	bad := set.Clone()
	bad[space.SD] = 3
	if _, err := m.Measure(bad); err == nil {
		t.Fatal("invalid setting should error")
	}
	if got := m.SpentS(); math.Abs(got-wantCost-0.5) > 1e-12 {
		t.Fatalf("SpentS after reject = %v", got)
	}
	if m.Evals() != 1 {
		t.Fatal("reject counted as eval")
	}

	best, bms, ok := m.Best()
	if !ok || bms != ms || !best.Equal(set) {
		t.Fatalf("Best = %v/%v/%v", best, bms, ok)
	}
}

func TestMeterBudget(t *testing.T) {
	fx := fixture(t)
	m := NewMeter(fx.Sim, CostModel{CompileS: 10, Reps: 1}, 15)
	set := fx.Space.Default()
	if _, err := m.Measure(set); err != nil {
		t.Fatal(err)
	}
	if m.Exhausted() {
		t.Fatal("budget should survive one eval")
	}
	other := set.Clone()
	other[space.TBX] = 32
	if _, err := m.Measure(other); err != nil {
		t.Fatal(err)
	}
	if !m.Exhausted() {
		t.Fatalf("budget (%v spent of 15) should be exhausted", m.SpentS())
	}
	// A fresh setting is refused once the budget is spent...
	fresh := set.Clone()
	fresh[space.TBX] = 16
	if _, err := m.Measure(fresh); !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	// ...but re-probing an already-measured setting is a free cache hit —
	// real tuners never recompile a variant they already timed.
	spent := m.SpentS()
	if ms, err := m.Measure(set); err != nil || ms <= 0 {
		t.Fatalf("cached re-probe = %v/%v", ms, err)
	}
	if m.SpentS() != spent {
		t.Fatal("cache hit must not consume budget")
	}
	if hits := m.Stats().CacheHits; hits != 1 {
		t.Fatalf("CacheHits = %d, want 1", hits)
	}
}

func TestMeterTrajectoryQueries(t *testing.T) {
	fx := fixture(t)
	m := NewMeter(fx.Sim, CostModel{CompileS: 1, Reps: 0}, 0)
	sets := []space.Setting{fx.Space.Default()}
	a := fx.Space.Default()
	a[space.TBX] = 32
	b := fx.Space.Default()
	b[space.TBX] = 16
	sets = append(sets, a, b)
	for _, s := range sets {
		if _, err := m.Measure(s); err != nil {
			t.Fatal(err)
		}
	}
	traj := m.Trajectory()
	if len(traj) != 3 {
		t.Fatalf("trajectory has %d points", len(traj))
	}
	// Best-so-far must be non-increasing.
	for i := 1; i < len(traj); i++ {
		if traj[i].BestMS > traj[i-1].BestMS {
			t.Fatal("best-so-far increased")
		}
	}
	if v, ok := m.BestAtEvals(2); !ok || v != traj[1].BestMS {
		t.Fatalf("BestAtEvals(2) = %v/%v", v, ok)
	}
	if _, ok := m.BestAtEvals(0); ok {
		t.Fatal("BestAtEvals(0) should be empty")
	}
	if v, ok := m.BestAtCost(2.5); !ok || v != traj[1].BestMS {
		t.Fatalf("BestAtCost(2.5) = %v/%v", v, ok)
	}
	if _, ok := m.BestAtCost(0.5); ok {
		t.Fatal("BestAtCost before first point should be empty")
	}
}

func TestMeterForwardsArchitecture(t *testing.T) {
	fx := fixture(t)
	m := NewMeter(fx.Sim, DefaultCostModel(), 0)
	if m.Architecture() == nil || m.Architecture().Name != "A100" {
		t.Fatal("meter should forward the simulator's architecture")
	}
}

func TestIsoIterationCurveMonotone(t *testing.T) {
	fx := fixture(t)
	cs := cstuner.New()
	cs.Cfg.DatasetSize = 64
	cs.Cfg.Sampling.PoolSize = 512
	curve, err := IsoIterationCurve(context.Background(), cs, fx, 6, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 6 {
		t.Fatalf("curve length %d", len(curve))
	}
	for i, v := range curve {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("curve[%d] = %v", i, v)
		}
		if i > 0 && v > curve[i-1]+1e-12 {
			t.Fatal("iso-iteration curve must be non-increasing")
		}
	}
}

func TestIsoTimeRunRespectsBudget(t *testing.T) {
	fx := fixture(t)
	cs := cstuner.New()
	cs.Cfg.DatasetSize = 64
	cs.Cfg.Sampling.PoolSize = 512
	res, err := IsoTimeRun(context.Background(), cs, fx, 25, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMS <= 0 || res.Evals == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	// ~25s at 1.5s compile → roughly 16 evaluations, certainly < 30.
	if res.Evals > 30 {
		t.Fatalf("budget ignored: %d evals", res.Evals)
	}
	if len(res.Curve) != 5 || len(res.Grid) != 5 {
		t.Fatalf("grid size wrong: %d/%d", len(res.Curve), len(res.Grid))
	}
	for i := 1; i < len(res.Curve); i++ {
		if !math.IsNaN(res.Curve[i]) && !math.IsNaN(res.Curve[i-1]) && res.Curve[i] > res.Curve[i-1]+1e-12 {
			t.Fatal("iso-time curve must be non-increasing")
		}
	}
}

func TestMeanOverSeeds(t *testing.T) {
	calls := 0
	out, err := MeanOverSeeds(3, 1, func(seed int64) ([]float64, error) {
		calls++
		return []float64{float64(calls), math.NaN()}, nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
	if out[0] != 2 { // mean of 1,2,3
		t.Fatalf("mean = %v", out[0])
	}
	if !math.IsNaN(out[1]) {
		t.Fatal("all-NaN element should stay NaN")
	}
	if _, err := MeanOverSeeds(1, 1, func(int64) ([]float64, error) {
		return nil, errors.New("boom")
	}); err == nil {
		t.Fatal("errors must propagate")
	}
}

func TestCollectMotivationAndFigures(t *testing.T) {
	fx := fixture(t)
	ms, err := CollectMotivation(fx, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Times) != 300 || ms.BestMS <= 0 {
		t.Fatalf("sample: %d times best %v", len(ms.Times), ms.BestMS)
	}
	bins, err := Fig2Bins(ms)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range bins {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Fig2 bins sum to %v", sum)
	}
	// The paper's headline shape: the poor bin dominates the good bin.
	if bins[0] < bins[4] {
		t.Fatalf("expected poor-heavy distribution, got %v", bins)
	}

	pbins, mean, err := Fig3Bins(ms)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 || mean >= 1 {
		t.Fatalf("Fig3 mean disagreement = %v", mean)
	}
	sum = 0
	for _, v := range pbins {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Fig3 bins sum to %v", sum)
	}

	tops, err := Fig4TopN(ms, []int{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if tops[0] != 1 {
		t.Fatalf("top-1 speedup = %v, want 1", tops[0])
	}
	if tops[1] < tops[2] {
		t.Fatal("top-n speedup must decrease with n")
	}
	if _, err := Fig4TopN(ms, []int{0}); err == nil {
		t.Fatal("top-0 should error")
	}
	if _, err := Fig4TopN(ms, []int{301}); err == nil {
		t.Fatal("top beyond sample should error")
	}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, stencil.J3D7PT()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TBx", "usePrefetching", "pow2", "100 million"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	buf.Reset()
	Table3(&buf)
	out = buf.String()
	for _, want := range []string{"j3d7pt", "rhs4center", "666"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
}

func TestFig12OverheadSmall(t *testing.T) {
	o := QuickOptions()
	o.Stencils = []*stencil.Stencil{stencil.J3D7PT()}
	o.DatasetSize = 64
	o.BudgetS = 25
	var buf bytes.Buffer
	rows, err := Fig12(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Codegen <= 0 || r.Grouping <= 0 || r.Sampling <= 0 {
		t.Fatalf("missing overhead components: %+v", r)
	}
	if r.SearchS <= 0 {
		t.Fatal("no search time recorded")
	}
	// The paper's claim: pre-processing is a tiny fraction of search.
	if r.Ratio > 0.10 {
		t.Fatalf("pre-processing ratio %.3f implausibly high", r.Ratio)
	}
}

func TestMethodsList(t *testing.T) {
	ms := Methods()
	if len(ms) != 4 || ms[0].Name() != "cstuner" {
		t.Fatalf("Methods = %v", ms)
	}
	seen := map[string]bool{}
	for _, m := range ms {
		seen[m.Name()] = true
	}
	for _, want := range []string{"cstuner", "garvey", "opentuner", "artemis"} {
		if !seen[want] {
			t.Fatalf("missing method %s", want)
		}
	}
}

func TestRankMethods(t *testing.T) {
	order := RankMethods(map[string]float64{"a": 3, "b": 1, "c": 2})
	if order[0] != "b" || order[1] != "c" || order[2] != "a" {
		t.Fatalf("RankMethods = %v", order)
	}
}

var _ sim.Objective = (*Meter)(nil)
