// Package grouping implements csTuner's parameter-grouping stage (paper
// Sec. IV-C): quantify the pair-wise correlation of optimization parameters
// with the coefficient of variation, then aggregate strongly-correlated
// parameters with the deque-based Algorithm 1.
package grouping

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/deque"
	"repro/internal/space"
	"repro/internal/stats"
)

// PairCV is the correlation record of one unordered parameter pair.
type PairCV struct {
	A, B int     // parameter indices, A < B
	CV   float64 // lower = stronger correlation
}

// PairCVs computes the CV correlation for every unordered parameter pair
// from the performance dataset.
//
// For the ordered pair (Pi, Pj): sweep the values of Pi observed in the
// dataset; for each value v, take the Pj value of the best-performing sample
// with Pi = v ("the setting of P1 that achieves the best performance with P0
// fixed"); the CV of the log2-transformed best-Pj series quantifies how much
// the optimal Pj moves as Pi changes. Values of Pi absent from the dataset
// are skipped, exactly as the paper prescribes. The unordered pair takes the
// stronger (smaller) of its two directional CVs.
//
// log2 makes power-of-two parameters contribute on a continuous scale; the
// +1 offset keeps the mean strictly positive (every raw value is >= 1) so
// the CV is always defined.
func PairCVs(ds *dataset.Dataset, sp *space.Space) []PairCV {
	n := sp.N()
	out := make([]PairCV, 0, n*(n-1)/2)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			cvAB := directionalCV(ds, a, b)
			cvBA := directionalCV(ds, b, a)
			out = append(out, PairCV{A: a, B: b, CV: math.Min(cvAB, cvBA)})
		}
	}
	return out
}

// directionalCV returns the CV of best-Pj values as Pi sweeps, or +Inf when
// fewer than two Pi values are represented in the dataset.
func directionalCV(ds *dataset.Dataset, pi, pj int) float64 {
	// bestByValue[v] = index of the fastest sample with Pi == v.
	bestByValue := make(map[int]int)
	for idx := range ds.Samples {
		v := ds.Samples[idx].Setting[pi]
		cur, ok := bestByValue[v]
		if !ok || ds.Samples[idx].TimeMS < ds.Samples[cur].TimeMS {
			bestByValue[v] = idx
		}
	}
	if len(bestByValue) < 2 {
		return math.Inf(1)
	}
	// Iterate Pi values in sorted order: CV's floating-point sums depend on
	// operand order, so ranging the map directly would let Go's randomized
	// iteration order perturb the CV in the last bits — enough to reorder
	// near-tied pairs in Groups and change the final grouping between runs.
	piVals := make([]int, 0, len(bestByValue))
	for v := range bestByValue {
		piVals = append(piVals, v)
	}
	sort.Ints(piVals)
	series := make([]float64, 0, len(bestByValue))
	for _, v := range piVals {
		series = append(series, stats.Log2(float64(ds.Samples[bestByValue[v]].Setting[pj]))+1)
	}
	cv, err := stats.CV(series)
	if err != nil {
		// A zero mean cannot happen with the +1 offset; any other error
		// means an empty series, which the length guard already excludes.
		return math.Inf(1)
	}
	return cv
}

// Groups runs Algorithm 1: pairs are pushed into a deque in ascending CV
// order, then consumed alternately from the left (strongest remaining
// correlation — creates or extends groups) and the right (weakest remaining
// — its parameters become singleton groups if still ungrouped).
//
// The alternation is the algorithm's point: strong pairs aggregate early,
// while weak pairs retire their parameters as singletons before a mediocre
// correlation can attach them to an existing group. (The paper's printed
// pseudocode swaps the two branch bodies and contains obvious typos — e.g.
// "ftPara.append([ftPara])" — so this implements the stated intent.)
//
// maxGroupSize caps how many parameters a single group may absorb; the PMNF
// product term grows with group size, and the paper notes SOTA modeling
// tools support at most four parameters per multi-parameter term. <=0 means
// a cap of 4.
func Groups(pairs []PairCV, maxGroupSize int) [][]int {
	if maxGroupSize <= 0 {
		maxGroupSize = 4
	}
	sorted := append([]PairCV(nil), pairs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].CV < sorted[j].CV })

	dq := deque.New[PairCV](len(sorted))
	for _, p := range sorted {
		dq.PushBack(p)
	}

	var groups [][]int
	find := func(p int) int {
		for gi, g := range groups {
			for _, q := range g {
				if q == p {
					return gi
				}
			}
		}
		return -1
	}

	for i := 0; !dq.Empty(); i++ {
		if i%2 == 0 {
			// Strongest remaining pair: group it.
			pair, _ := dq.PopFront()
			ga, gb := find(pair.A), find(pair.B)
			switch {
			case ga < 0 && gb < 0:
				groups = append(groups, []int{pair.A, pair.B})
			case ga >= 0 && gb >= 0:
				// both already grouped: skip
			case ga >= 0:
				if len(groups[ga]) < maxGroupSize {
					groups[ga] = append(groups[ga], pair.B)
				} else {
					groups = append(groups, []int{pair.B})
				}
			default:
				if len(groups[gb]) < maxGroupSize {
					groups[gb] = append(groups[gb], pair.A)
				} else {
					groups = append(groups, []int{pair.A})
				}
			}
		} else {
			// Weakest remaining pair: retire its parameters as singletons.
			pair, _ := dq.PopBack()
			if find(pair.A) < 0 {
				groups = append(groups, []int{pair.A})
			}
			if find(pair.B) < 0 {
				groups = append(groups, []int{pair.B})
			}
		}
	}
	return groups
}

// Validate checks that groups form a partition of all n parameters.
func ValidateN(groups [][]int, n int) error {
	seen := make(map[int]bool, n)
	for _, g := range groups {
		if len(g) == 0 {
			return fmt.Errorf("grouping: empty group")
		}
		for _, p := range g {
			if p < 0 || p >= n {
				return fmt.Errorf("grouping: parameter index %d out of range", p)
			}
			if seen[p] {
				return fmt.Errorf("grouping: parameter %d appears twice", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != n {
		return fmt.Errorf("grouping: %d/%d parameters covered", len(seen), n)
	}
	return nil
}

// Validate checks a partition of the Table I stencil space.
func Validate(groups [][]int) error { return ValidateN(groups, space.NumParams) }

// Format renders groups with the Table I parameter names.
func Format(groups [][]int) string { return FormatWith(groups, space.ParamNames()) }

// FormatWith renders groups with caller-supplied parameter names.
func FormatWith(groups [][]int, names []string) string {
	out := ""
	for gi, g := range groups {
		if gi > 0 {
			out += " | "
		}
		for i, p := range g {
			if i > 0 {
				out += ","
			}
			out += names[p]
		}
	}
	return out
}
