package grouping

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

func testDataset(t *testing.T, n int) (*dataset.Dataset, *space.Space) {
	t.Helper()
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(11)), n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ds, sp
}

func TestPairCVsShape(t *testing.T) {
	ds, sp := testDataset(t, 64)
	pairs := PairCVs(ds, sp)
	want := space.NumParams * (space.NumParams - 1) / 2
	if len(pairs) != want {
		t.Fatalf("pair count = %d, want %d", len(pairs), want)
	}
	finite := 0
	for _, p := range pairs {
		if p.A >= p.B {
			t.Fatalf("pair (%d,%d) not ordered", p.A, p.B)
		}
		if p.CV < 0 {
			t.Fatalf("negative CV %v", p.CV)
		}
		if !math.IsInf(p.CV, 1) {
			finite++
		}
	}
	if finite < want/2 {
		t.Fatalf("only %d/%d pairs have finite CV", finite, want)
	}
}

func TestDirectionalCVInsufficientData(t *testing.T) {
	// A dataset where a parameter takes a single value must give +Inf.
	ds, sp := testDataset(t, 16)
	for i := range ds.Samples {
		ds.Samples[i].Setting[space.TBX] = 64 // force constant
	}
	pairs := PairCVs(ds, sp)
	for _, p := range pairs {
		if p.A == space.TBX || p.B == space.TBX {
			// min(inf, other-direction) — the other direction can still be
			// finite, so just assert nothing panicked and CVs are valid.
			if p.CV < 0 {
				t.Fatal("invalid CV")
			}
		}
	}
}

func TestGroupsPartition(t *testing.T) {
	ds, sp := testDataset(t, 64)
	pairs := PairCVs(ds, sp)
	groups := Groups(pairs, 4)
	if err := Validate(groups); err != nil {
		t.Fatalf("groups not a partition: %v", err)
	}
	for _, g := range groups {
		if len(g) > 4 {
			t.Fatalf("group exceeds cap: %v", g)
		}
	}
	if len(groups) < 5 {
		t.Fatalf("suspiciously few groups: %d", len(groups))
	}
}

func TestGroupsDefaultCap(t *testing.T) {
	ds, sp := testDataset(t, 32)
	groups := Groups(PairCVs(ds, sp), 0)
	for _, g := range groups {
		if len(g) > 4 {
			t.Fatalf("default cap exceeded: %v", g)
		}
	}
	if err := Validate(groups); err != nil {
		t.Fatal(err)
	}
}

func TestGroupsStrongPairsJoin(t *testing.T) {
	// Synthetic CVs: (0,1) and (1,2) strongly correlated, everything else
	// weak. 0,1,2 must land in one group.
	var pairs []PairCV
	n := space.NumParams
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			cv := 10.0
			if (a == 0 && b == 1) || (a == 1 && b == 2) {
				cv = 0.01
			}
			pairs = append(pairs, PairCV{A: a, B: b, CV: cv})
		}
	}
	groups := Groups(pairs, 4)
	if err := Validate(groups); err != nil {
		t.Fatal(err)
	}
	gi := -1
	for i, g := range groups {
		for _, p := range g {
			if p == 0 {
				gi = i
			}
		}
	}
	has := map[int]bool{}
	for _, p := range groups[gi] {
		has[p] = true
	}
	if !has[0] || !has[1] || !has[2] {
		t.Fatalf("parameters 0,1,2 should share a group, got %v", groups[gi])
	}
}

func TestGroupsWeakPairsStaySingletons(t *testing.T) {
	// All pairs equally weak: alternation should produce many singletons,
	// not one giant group.
	var pairs []PairCV
	n := space.NumParams
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			pairs = append(pairs, PairCV{A: a, B: b, CV: 5.0})
		}
	}
	groups := Groups(pairs, 4)
	if err := Validate(groups); err != nil {
		t.Fatal(err)
	}
	singles := 0
	for _, g := range groups {
		if len(g) == 1 {
			singles++
		}
	}
	if singles == 0 {
		t.Fatal("expected some singleton groups under uniform weak correlation")
	}
}

func TestValidateCatchesBadPartitions(t *testing.T) {
	if err := Validate([][]int{{0, 1}}); err == nil {
		t.Fatal("incomplete partition should fail")
	}
	all := make([]int, space.NumParams)
	for i := range all {
		all[i] = i
	}
	dup := append([][]int{}, []int{0}, all)
	if err := Validate(dup); err == nil {
		t.Fatal("duplicate coverage should fail")
	}
	if err := Validate([][]int{{}, all}); err == nil {
		t.Fatal("empty group should fail")
	}
	bad := append([][]int{}, []int{-1}, all[1:])
	if err := Validate(bad); err == nil {
		t.Fatal("out-of-range index should fail")
	}
}

func TestFormat(t *testing.T) {
	s := Format([][]int{{0, 1}, {2}})
	if !strings.Contains(s, "TBx,TBy") || !strings.Contains(s, "|") || !strings.Contains(s, "TBz") {
		t.Fatalf("Format = %q", s)
	}
}

func BenchmarkPairCVs(b *testing.B) {
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		b.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(1)), 128, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PairCVs(ds, sp)
	}
}
