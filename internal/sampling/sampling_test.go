package sampling

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/pmnf"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stencil"
)

// pipelineTo builds everything sampling needs from a real simulated dataset.
func pipelineTo(t *testing.T) (*dataset.Dataset, *space.Space, [][]int, []metrics.Selected, map[string]*pmnf.Model, *sim.Simulator) {
	t.Helper()
	sp, err := space.New(stencil.Helmholtz())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sp, gpu.A100())
	ds, err := dataset.Collect(s, rand.New(rand.NewSource(41)), 96, 0)
	if err != nil {
		t.Fatal(err)
	}
	groups := grouping.Groups(grouping.PairCVs(ds, sp), 4)
	if err := grouping.Validate(groups); err != nil {
		t.Fatal(err)
	}
	pairs, err := metrics.PairPCCs(ds, sim.MetricNames())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := metrics.Select(ds, metrics.Combine(pairs, 4))
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]*pmnf.Model{}
	for _, m := range sel {
		col, err := ds.MetricColumn(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		fit, err := pmnf.Fit(ds, groups, col, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		models[m.Name] = fit
	}
	return ds, sp, groups, sel, models, s
}

func TestBuildRespectsRatio(t *testing.T) {
	ds, sp, groups, sel, models, _ := pipelineTo(t)
	cfg := Config{Ratio: 0.1, PoolSize: 1000}
	rng := rand.New(rand.NewSource(5))
	s, err := Build(ds, sp, groups, sel, models, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	poolWithDS := 1000 + len(ds.Samples)
	if len(s.Settings) < poolWithDS/10-5 || len(s.Settings) > poolWithDS/10+20 {
		t.Fatalf("kept %d settings of ~%d pool at 10%%", len(s.Settings), poolWithDS)
	}
	// All kept settings are explicitly valid.
	for _, set := range s.Settings {
		if err := sp.Validate(set); err != nil {
			t.Fatalf("sampled invalid setting: %v", err)
		}
	}
}

// TestSamplingImprovesQuality is the stage's raison d'être: the mean measured
// time of the kept fraction must beat the mean of a random sample.
func TestSamplingImprovesQuality(t *testing.T) {
	ds, sp, groups, sel, models, simulator := pipelineTo(t)
	rng := rand.New(rand.NewSource(6))
	s, err := Build(ds, sp, groups, sel, models, rng, Config{Ratio: 0.1, PoolSize: 600})
	if err != nil {
		t.Fatal(err)
	}
	meanOf := func(sets []space.Setting) (float64, int) {
		total, n := 0.0, 0
		for _, set := range sets {
			if ms, err := simulator.Measure(set); err == nil {
				total += ms
				n++
			}
		}
		return total / float64(n), n
	}
	keptMean, kn := meanOf(s.Settings)
	var randomSets []space.Setting
	for i := 0; i < len(s.Settings); i++ {
		randomSets = append(randomSets, sp.Random(rng))
	}
	randMean, rn := meanOf(randomSets)
	if kn == 0 || rn == 0 {
		t.Fatal("no measurable settings")
	}
	if keptMean >= randMean {
		t.Fatalf("sampled settings (mean %.3f ms over %d) no better than random (mean %.3f ms over %d)",
			keptMean, kn, randMean, rn)
	}
}

func TestBuildArgumentValidation(t *testing.T) {
	ds, sp, groups, sel, models, _ := pipelineTo(t)
	rng := rand.New(rand.NewSource(7))
	if _, err := Build(ds, sp, groups, sel, models, rng, Config{Ratio: 0}); err == nil {
		t.Fatal("ratio 0 should error")
	}
	if _, err := Build(ds, sp, groups, sel, models, rng, Config{Ratio: 1.5}); err == nil {
		t.Fatal("ratio >1 should error")
	}
	if _, err := Build(ds, sp, groups, nil, models, rng, Config{Ratio: 0.1}); err == nil {
		t.Fatal("no selected metrics should error")
	}
	if _, err := Build(ds, sp, groups, sel, map[string]*pmnf.Model{}, rng, Config{Ratio: 0.1}); err == nil {
		t.Fatal("missing model should error")
	}
}

func TestReindexAndApply(t *testing.T) {
	sp, err := space.New(stencil.J3D7PT())
	if err != nil {
		t.Fatal(err)
	}
	a := sp.Default()
	b := sp.Default()
	b[space.TBX], b[space.TBY] = 128, 2
	c := sp.Default()
	c[space.TBX], c[space.TBY] = 32, 8
	groups := [][]int{{space.TBX, space.TBY}, {space.UseShared}}
	s := FromSettings([]space.Setting{a, b, c, a /*dup*/}, groups)

	if len(s.Values[0]) != 3 {
		t.Fatalf("group 0 has %d tuples, want 3 (dedup)", len(s.Values[0]))
	}
	if len(s.Values[1]) != 1 {
		t.Fatalf("group 1 has %d tuples, want 1", len(s.Values[1]))
	}
	// Tuples sorted ascending lexicographically.
	for i := 1; i < len(s.Values[0]); i++ {
		if !lessTuple(s.Values[0][i-1], s.Values[0][i]) {
			t.Fatal("tuples not sorted")
		}
	}
	// Apply writes the tuple into a setting.
	target := sp.Default()
	if err := s.Apply(target, 0, 1); err != nil {
		t.Fatal(err)
	}
	if target[space.TBX] != s.Values[0][1][0] || target[space.TBY] != s.Values[0][1][1] {
		t.Fatal("Apply wrote wrong values")
	}
	if err := s.Apply(target, 0, 99); err == nil {
		t.Fatal("out-of-range tuple should error")
	}
	if err := s.Apply(target, 5, 0); err == nil {
		t.Fatal("out-of-range group should error")
	}
}

func TestBest(t *testing.T) {
	sp, _ := space.New(stencil.J3D7PT())
	s := FromSettings(nil, [][]int{{0}})
	if _, err := s.Best(); err == nil {
		t.Fatal("empty sampled space should error")
	}
	s = FromSettings([]space.Setting{sp.Default()}, [][]int{{0}})
	b, err := s.Best()
	if err != nil || !b.Equal(sp.Default()) {
		t.Fatalf("Best = %v, %v", b, err)
	}
	// Best must be a copy.
	b[space.TBX] = 1
	if s.Settings[0][space.TBX] == 1 {
		t.Fatal("Best aliases stored setting")
	}
}

// TestIncludeAddsMissingSettings: Include must append exactly the settings
// whose keys are absent, clone them, and re-index so every included setting
// becomes reachable through the gene ranges.
func TestIncludeAddsMissingSettings(t *testing.T) {
	ds, sp, groups, sel, models, _ := pipelineTo(t)
	rng := rand.New(rand.NewSource(5))
	s, err := Build(ds, sp, groups, sel, models, rng, Config{Ratio: 0.1, PoolSize: 400})
	if err != nil {
		t.Fatal(err)
	}
	existing := s.Settings[0].Clone()
	fresh := sp.Default()
	// Nudge the default until its key is absent from the sampled set.
	present := map[string]bool{}
	for _, set := range s.Settings {
		present[set.Key()] = true
	}
	r := rand.New(rand.NewSource(99))
	for present[fresh.Key()] {
		fresh = sp.Random(r)
	}

	before := len(s.Settings)
	added := s.Include([]space.Setting{existing, fresh, fresh.Clone()})
	if added != 1 {
		t.Fatalf("Include added %d, want 1 (dup of existing and self-dup skipped)", added)
	}
	if len(s.Settings) != before+1 {
		t.Fatalf("settings grew by %d", len(s.Settings)-before)
	}
	// The included setting is cloned, not aliased.
	s.Settings[len(s.Settings)-1][0]++
	if s.Settings[len(s.Settings)-1][0] == fresh[0] {
		t.Fatal("Include aliased the caller's setting")
	}
	s.Settings[len(s.Settings)-1][0]--

	// Re-indexing makes every group tuple of the included setting reachable:
	// TupleIndex finds it and Apply round-trips it.
	for gi := range s.Groups {
		idx := s.TupleIndex(fresh, gi)
		if idx < 0 {
			t.Fatalf("group %d tuple of included setting not indexed", gi)
		}
		probe := sp.Default()
		if err := s.Apply(probe, gi, idx); err != nil {
			t.Fatal(err)
		}
		for _, p := range s.Groups[gi] {
			if probe[p] != fresh[p] {
				t.Fatalf("group %d round-trip mismatch at param %d", gi, p)
			}
		}
	}

	if s.Include(nil) != 0 {
		t.Fatal("Include(nil) must be a no-op")
	}
}

// TestTupleIndexMissAndBounds: absent tuples and out-of-range groups answer
// -1, never panic.
func TestTupleIndexMissAndBounds(t *testing.T) {
	ds, sp, groups, sel, models, _ := pipelineTo(t)
	rng := rand.New(rand.NewSource(5))
	s, err := Build(ds, sp, groups, sel, models, rng, Config{Ratio: 0.1, PoolSize: 400})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TupleIndex(sp.Default(), -1); got != -1 {
		t.Fatalf("gi=-1 -> %d", got)
	}
	if got := s.TupleIndex(sp.Default(), len(s.Groups)); got != -1 {
		t.Fatalf("gi out of range -> %d", got)
	}
	if got := s.TupleIndex(space.Setting{1}, 0); got != -1 {
		t.Fatalf("short setting -> %d", got)
	}
	// A tuple no sampled setting carries: values outside any real range.
	weird := sp.Default()
	for i := range weird {
		weird[i] = 1 << 20
	}
	for gi := range s.Groups {
		if got := s.TupleIndex(weird, gi); got != -1 {
			t.Fatalf("absent tuple indexed at group %d: %d", gi, got)
		}
	}
}
