// Package sampling implements csTuner's search-space sampling stage (paper
// Sec. IV-D/IV-E): the fitted PMNF models predict the selected GPU metrics
// for a large pool of candidate settings, settings whose predictions fall on
// the slow side of the metric thresholds are filtered out, and the surviving
// fraction (the sampling ratio) becomes the sampled search space. The valid
// value tuples of every parameter group are then re-indexed into dense
// integer ranges for the genetic algorithm's binary genes (paper Fig. 7).
package sampling

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/pmnf"
	"repro/internal/space"
	"repro/internal/stats"
)

// Config controls sampled-space construction.
type Config struct {
	// Ratio is the fraction of the candidate pool kept (paper default 10%).
	Ratio float64
	// PoolSize is the number of candidate settings scored (dataset samples
	// are always included on top). Default 4096.
	PoolSize int
	// Prefilter, when set, rejects candidates before scoring — csTuner
	// plugs in the implicit resource-constraint check here ("csTuner
	// checks the above constraints before generating the search codes so
	// that only non-spilled parameter settings are explored", Sec. IV-B).
	Prefilter func(space.Setting) bool
}

// DefaultConfig mirrors the paper's evaluation setup.
func DefaultConfig() Config { return Config{Ratio: 0.10, PoolSize: 4096} }

// Sampled is the narrowed search space.
type Sampled struct {
	// Settings are the surviving candidates, best predicted score first.
	Settings []space.Setting
	// Groups is the parameter grouping the space was built around.
	Groups [][]int
	// Values[g] lists the distinct value tuples of group g present in the
	// sampled space, sorted ascending — the re-indexed gene range [0, len).
	Values [][][]int
}

// Build scores a candidate pool with the per-metric PMNF models and keeps
// the best cfg.Ratio fraction.
//
// Each selected metric contributes sign(TimePCC)·zscore(prediction) to a
// setting's score: a metric positively correlated with time votes against
// settings predicted to raise it, and vice versa. Keeping the lowest-scored
// fraction is equivalent to the paper's per-metric thresholds with the
// thresholds set at the ratio quantile of the combined evidence.
func Build(ds *dataset.Dataset, sp *space.Space, groups [][]int,
	selected []metrics.Selected, models map[string]*pmnf.Model,
	rng space.RNG, cfg Config) (*Sampled, error) {

	if cfg.Ratio <= 0 || cfg.Ratio > 1 {
		return nil, fmt.Errorf("sampling: ratio %v outside (0,1]", cfg.Ratio)
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4096
	}
	if len(selected) == 0 {
		return nil, errors.New("sampling: no selected metrics")
	}
	for _, sel := range selected {
		if models[sel.Name] == nil {
			return nil, fmt.Errorf("sampling: no model for metric %q", sel.Name)
		}
	}

	// Candidate pool: the measured dataset settings plus fresh random
	// valid settings, deduplicated.
	pool := make([]space.Setting, 0, cfg.PoolSize+len(ds.Samples))
	seen := map[string]struct{}{}
	add := func(s space.Setting) {
		k := s.Key()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			pool = append(pool, s)
		}
	}
	for _, s := range ds.Samples {
		add(s.Setting) // measured settings passed every constraint already
	}
	for tries := 0; len(pool) < cfg.PoolSize+len(ds.Samples) && tries < 50*cfg.PoolSize; tries++ {
		cand := sp.Random(rng)
		if cfg.Prefilter != nil && !cfg.Prefilter(cand) {
			continue
		}
		add(cand)
	}

	// Score: z-scored model predictions, signed by time correlation.
	score := make([]float64, len(pool))
	for _, sel := range selected {
		m := models[sel.Name]
		preds := make([]float64, len(pool))
		for i, s := range pool {
			preds[i] = m.Predict(s)
		}
		mu, _ := stats.Mean(preds)
		sd, _ := stats.StdDev(preds)
		if sd == 0 {
			continue // uninformative model: no vote
		}
		// Each metric votes with the sign and the strength of its time
		// correlation: a near-perfect time proxy dominates, a weakly
		// correlated cache metric only nudges.
		weight := sel.TimePCC
		for i := range pool {
			score[i] += weight * (preds[i] - mu) / sd
		}
	}

	order := make([]int, len(pool))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return score[order[a]] < score[order[b]] })

	keep := int(math.Ceil(cfg.Ratio * float64(len(pool))))
	if keep < 1 {
		keep = 1
	}
	if keep > len(pool) {
		keep = len(pool)
	}
	out := &Sampled{Groups: groups}
	for _, i := range order[:keep] {
		out.Settings = append(out.Settings, pool[i])
	}
	out.reindex()
	return out, nil
}

// FromSettings builds a Sampled directly from explicit settings (tests and
// the degenerate no-model path use this).
func FromSettings(settings []space.Setting, groups [][]int) *Sampled {
	s := &Sampled{Settings: settings, Groups: groups}
	s.reindex()
	return s
}

// reindex computes Values: the sorted distinct tuples per group.
func (s *Sampled) reindex() {
	s.Values = make([][][]int, len(s.Groups))
	for gi, g := range s.Groups {
		seen := map[string][]int{}
		for _, set := range s.Settings {
			tuple := make([]int, len(g))
			for i, p := range g {
				tuple[i] = set[p]
			}
			seen[tupleKey(tuple)] = tuple
		}
		tuples := make([][]int, 0, len(seen))
		for _, t := range seen {
			tuples = append(tuples, t)
		}
		sort.Slice(tuples, func(a, b int) bool { return lessTuple(tuples[a], tuples[b]) })
		s.Values[gi] = tuples
	}
}

func tupleKey(t []int) string {
	k := ""
	for _, v := range t {
		k += fmt.Sprintf("%d,", v)
	}
	return k
}

func lessTuple(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Include appends settings absent from the sampled space (deduplicated by
// key, in the given order) and re-indexes the gene ranges. Warm-started
// campaigns use it to guarantee a prior campaign's best settings are
// reachable by the GA even when the model-based filter would have dropped
// them.
func (s *Sampled) Include(settings []space.Setting) int {
	if len(settings) == 0 {
		return 0
	}
	seen := make(map[string]struct{}, len(s.Settings))
	for _, set := range s.Settings {
		seen[set.Key()] = struct{}{}
	}
	added := 0
	for _, set := range settings {
		k := set.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		s.Settings = append(s.Settings, set.Clone())
		added++
	}
	if added > 0 {
		s.reindex()
	}
	return added
}

// TupleIndex returns the gene index of set's group-gi value tuple in the
// re-indexed range, or -1 when the tuple is not part of the sampled space.
func (s *Sampled) TupleIndex(set space.Setting, gi int) int {
	if gi < 0 || gi >= len(s.Groups) {
		return -1
	}
	g := s.Groups[gi]
	tuple := make([]int, len(g))
	for i, p := range g {
		if p < 0 || p >= len(set) {
			return -1
		}
		tuple[i] = set[p]
	}
	tuples := s.Values[gi]
	idx := sort.Search(len(tuples), func(k int) bool { return !lessTuple(tuples[k], tuple) })
	if idx < len(tuples) && !lessTuple(tuple, tuples[idx]) {
		return idx
	}
	return -1
}

// Apply writes group gi's tupleIdx-th value tuple into the setting in place.
func (s *Sampled) Apply(set space.Setting, gi, tupleIdx int) error {
	if gi < 0 || gi >= len(s.Groups) {
		return fmt.Errorf("sampling: group %d out of range", gi)
	}
	tuples := s.Values[gi]
	if tupleIdx < 0 || tupleIdx >= len(tuples) {
		return fmt.Errorf("sampling: tuple %d out of range for group %d (have %d)", tupleIdx, gi, len(tuples))
	}
	for i, p := range s.Groups[gi] {
		set[p] = tuples[tupleIdx][i]
	}
	return nil
}

// Best returns the first (best-predicted) setting of the sampled space.
func (s *Sampled) Best() (space.Setting, error) {
	if len(s.Settings) == 0 {
		return nil, errors.New("sampling: empty sampled space")
	}
	return s.Settings[0].Clone(), nil
}
