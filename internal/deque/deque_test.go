package deque

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var d Deque[int]
	if !d.Empty() || d.Len() != 0 {
		t.Fatalf("zero deque not empty: len=%d", d.Len())
	}
	d.PushBack(1)
	if v, ok := d.PopFront(); !ok || v != 1 {
		t.Fatalf("PopFront = %v,%v, want 1,true", v, ok)
	}
}

func TestPushPopFIFO(t *testing.T) {
	d := New[int](4)
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := d.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront #%d = %v,%v", i, v, ok)
		}
	}
	if !d.Empty() {
		t.Fatal("deque should be empty")
	}
}

func TestPushPopLIFO(t *testing.T) {
	d := New[string](0)
	d.PushBack("a")
	d.PushBack("b")
	d.PushBack("c")
	if v, _ := d.PopBack(); v != "c" {
		t.Fatalf("PopBack = %q, want c", v)
	}
	if v, _ := d.PopBack(); v != "b" {
		t.Fatalf("PopBack = %q, want b", v)
	}
	if v, _ := d.PopBack(); v != "a" {
		t.Fatalf("PopBack = %q, want a", v)
	}
	if _, ok := d.PopBack(); ok {
		t.Fatal("PopBack on empty should report false")
	}
}

func TestPushFront(t *testing.T) {
	d := New[int](0)
	for i := 0; i < 50; i++ {
		d.PushFront(i)
	}
	// Front is the last pushed value.
	for i := 49; i >= 0; i-- {
		v, ok := d.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront = %v,%v, want %d,true", v, ok, i)
		}
	}
}

func TestMixedEndsOrder(t *testing.T) {
	d := New[int](0)
	d.PushBack(2)
	d.PushFront(1)
	d.PushBack(3)
	d.PushFront(0)
	want := []int{0, 1, 2, 3}
	got := d.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFrontBackAt(t *testing.T) {
	d := New[int](0)
	if _, ok := d.Front(); ok {
		t.Fatal("Front on empty should report false")
	}
	if _, ok := d.Back(); ok {
		t.Fatal("Back on empty should report false")
	}
	for i := 10; i < 20; i++ {
		d.PushBack(i)
	}
	if v, _ := d.Front(); v != 10 {
		t.Fatalf("Front = %d, want 10", v)
	}
	if v, _ := d.Back(); v != 19 {
		t.Fatalf("Back = %d, want 19", v)
	}
	for i := 0; i < 10; i++ {
		if v := d.At(i); v != 10+i {
			t.Fatalf("At(%d) = %d, want %d", i, v, 10+i)
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range should panic")
		}
	}()
	d := New[int](0)
	d.PushBack(1)
	d.At(1)
}

func TestClearKeepsUsable(t *testing.T) {
	d := New[int](0)
	for i := 0; i < 30; i++ {
		d.PushBack(i)
	}
	d.Clear()
	if !d.Empty() {
		t.Fatal("Clear should empty the deque")
	}
	d.PushFront(7)
	if v, _ := d.Back(); v != 7 {
		t.Fatalf("Back after Clear = %d, want 7", v)
	}
}

func TestGrowShrinkWrapAround(t *testing.T) {
	d := New[int](0)
	// Force head to move so pushes wrap around the ring.
	for i := 0; i < 6; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 4; i++ {
		d.PopFront()
	}
	for i := 6; i < 200; i++ {
		d.PushBack(i)
	}
	for want := 4; want < 200; want++ {
		v, ok := d.PopFront()
		if !ok || v != want {
			t.Fatalf("PopFront = %v,%v, want %d,true", v, ok, want)
		}
	}
}

// TestQuickAgainstSlice drives the deque with a random operation sequence and
// checks it against a plain-slice reference implementation.
func TestQuickAgainstSlice(t *testing.T) {
	f := func(ops []uint8) bool {
		d := New[int](0)
		var ref []int
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0:
				d.PushBack(next)
				ref = append(ref, next)
				next++
			case 1:
				d.PushFront(next)
				ref = append([]int{next}, ref...)
				next++
			case 2:
				v, ok := d.PopFront()
				if len(ref) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			case 3:
				v, ok := d.PopBack()
				if len(ref) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != ref[len(ref)-1] {
						return false
					}
					ref = ref[:len(ref)-1]
				}
			}
			if d.Len() != len(ref) {
				return false
			}
		}
		got := d.Slice()
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPopBack(b *testing.B) {
	d := New[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBack(i)
		d.PopBack()
	}
}

func BenchmarkPushBackPopFront(b *testing.B) {
	d := New[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBack(i)
		d.PopFront()
	}
}
