package deque

import (
	"sync"
	"testing"
)

func TestStealableEnds(t *testing.T) {
	q := NewStealable[int](4)
	for i := 0; i < 6; i++ {
		q.Push(i)
	}
	if n := q.Len(); n != 6 {
		t.Fatalf("Len = %d, want 6", n)
	}
	// Owner drains FIFO from the front.
	if v, ok := q.PopFront(); !ok || v != 0 {
		t.Fatalf("PopFront = %d/%v, want 0", v, ok)
	}
	// Thieves take the most recently queued work from the back.
	if v, ok := q.StealBack(); !ok || v != 5 {
		t.Fatalf("StealBack = %d/%v, want 5", v, ok)
	}
	for want := 1; want <= 4; want++ {
		if v, ok := q.PopFront(); !ok || v != want {
			t.Fatalf("PopFront = %d/%v, want %d", v, ok, want)
		}
	}
	if _, ok := q.PopFront(); ok {
		t.Fatal("PopFront on empty queue reported ok")
	}
	if _, ok := q.StealBack(); ok {
		t.Fatal("StealBack on empty queue reported ok")
	}
}

// TestStealableConcurrentDrain races one front-popping owner against several
// back-stealing thieves: every queued item must be delivered exactly once.
// Run under -race this also pins the locking discipline.
func TestStealableConcurrentDrain(t *testing.T) {
	const n = 10000
	q := NewStealable[int](n)
	for i := 0; i < n; i++ {
		q.Push(i)
	}
	var mu sync.Mutex
	got := make([]int, n)
	var wg sync.WaitGroup
	drain := func(pop func() (int, bool)) {
		defer wg.Done()
		for {
			v, ok := pop()
			if !ok {
				return
			}
			mu.Lock()
			got[v]++
			mu.Unlock()
		}
	}
	wg.Add(4)
	go drain(q.PopFront)
	for g := 0; g < 3; g++ {
		go drain(q.StealBack)
	}
	wg.Wait()
	for i, c := range got {
		if c != 1 {
			t.Fatalf("item %d delivered %d times", i, c)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}
