// Package deque implements a generic double-ended queue backed by a growable
// ring buffer.
//
// The csTuner pipeline uses deques in two places: Algorithm 1 (parameter
// grouping) pops correlated parameter pairs alternately from the left and the
// right end, and Algorithm 2 (metric combination) pops metric pairs from the
// right end in descending correlation order.
package deque

// Deque is a double-ended queue of values of type T.
//
// The zero value is an empty deque ready to use. A Deque is not safe for
// concurrent use; guard it externally if shared across goroutines.
type Deque[T any] struct {
	buf   []T
	head  int // index of the first element
	count int
}

// minCapacity is the initial ring size allocated on the first push. It must
// be a power of two so that index wrapping can use a bitmask.
const minCapacity = 8

// New returns an empty deque with capacity for at least n elements.
func New[T any](n int) *Deque[T] {
	c := minCapacity
	for c < n {
		c <<= 1
	}
	return &Deque[T]{buf: make([]T, c)}
}

// Len reports the number of elements currently in the deque.
func (d *Deque[T]) Len() int { return d.count }

// Empty reports whether the deque holds no elements.
func (d *Deque[T]) Empty() bool { return d.count == 0 }

// PushBack appends v at the right end.
func (d *Deque[T]) PushBack(v T) {
	d.grow()
	d.buf[d.index(d.count)] = v
	d.count++
}

// PushFront prepends v at the left end.
func (d *Deque[T]) PushFront(v T) {
	d.grow()
	d.head = d.index(-1 + len(d.buf))
	d.buf[d.head] = v
	d.count++
}

// PopFront removes and returns the leftmost element. The second result is
// false when the deque is empty.
func (d *Deque[T]) PopFront() (T, bool) {
	var zero T
	if d.count == 0 {
		return zero, false
	}
	v := d.buf[d.head]
	d.buf[d.head] = zero // release reference for GC
	d.head = d.index(1)
	d.count--
	d.shrink()
	return v, true
}

// PopBack removes and returns the rightmost element. The second result is
// false when the deque is empty.
func (d *Deque[T]) PopBack() (T, bool) {
	var zero T
	if d.count == 0 {
		return zero, false
	}
	i := d.index(d.count - 1)
	v := d.buf[i]
	d.buf[i] = zero
	d.count--
	d.shrink()
	return v, true
}

// Front returns the leftmost element without removing it.
func (d *Deque[T]) Front() (T, bool) {
	var zero T
	if d.count == 0 {
		return zero, false
	}
	return d.buf[d.head], true
}

// Back returns the rightmost element without removing it.
func (d *Deque[T]) Back() (T, bool) {
	var zero T
	if d.count == 0 {
		return zero, false
	}
	return d.buf[d.index(d.count-1)], true
}

// At returns the i-th element from the front (0-based). It panics when i is
// out of range, mirroring slice indexing.
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.count {
		panic("deque: index out of range")
	}
	return d.buf[d.index(i)]
}

// Slice returns the elements in order from front to back as a fresh slice.
func (d *Deque[T]) Slice() []T {
	out := make([]T, d.count)
	for i := 0; i < d.count; i++ {
		out[i] = d.buf[d.index(i)]
	}
	return out
}

// Clear removes all elements but keeps the allocated capacity.
func (d *Deque[T]) Clear() {
	var zero T
	for i := 0; i < d.count; i++ {
		d.buf[d.index(i)] = zero
	}
	d.head = 0
	d.count = 0
}

// index maps a logical offset from the head to a physical buffer index.
func (d *Deque[T]) index(off int) int {
	return (d.head + off) & (len(d.buf) - 1)
}

// grow doubles the ring when full (or allocates it on first use).
func (d *Deque[T]) grow() {
	if len(d.buf) == 0 {
		d.buf = make([]T, minCapacity)
		return
	}
	if d.count < len(d.buf) {
		return
	}
	d.resize(len(d.buf) << 1)
}

// shrink halves the ring when it is at most a quarter full, bounding memory
// after large transients. The ring never drops below minCapacity.
func (d *Deque[T]) shrink() {
	if len(d.buf) > minCapacity && d.count<<2 <= len(d.buf) {
		d.resize(len(d.buf) >> 1)
	}
}

func (d *Deque[T]) resize(n int) {
	buf := make([]T, n)
	for i := 0; i < d.count; i++ {
		buf[i] = d.buf[d.index(i)]
	}
	d.buf = buf
	d.head = 0
}
