package deque

import "sync"

// Stealable wraps a Deque for work-stealing schedulers: one owner works its
// queue from the front (preserving the FIFO order its chunk was seeded in,
// which keeps neighbouring items together), while idle thieves take single
// items from the back — the end farthest from the owner, so a steal touches
// the coldest work and contends with the owner only on the final items.
//
// All operations are mutex-guarded rather than lock-free Chase-Lev: the
// engine's work items are whole measurement episodes (microseconds to
// seconds), so queue-op cost is noise, and a mutex keeps the structure
// trivially correct under the race detector.
type Stealable[T any] struct {
	mu sync.Mutex
	d  Deque[T]
}

// NewStealable returns an empty stealable queue with capacity for at least
// n elements.
func NewStealable[T any](n int) *Stealable[T] {
	return &Stealable[T]{d: *New[T](n)}
}

// Push appends v at the back (owner side of seeding; call before workers
// start or from the owner).
func (q *Stealable[T]) Push(v T) {
	q.mu.Lock()
	q.d.PushBack(v)
	q.mu.Unlock()
}

// PopFront removes and returns the front element — the owner's end.
func (q *Stealable[T]) PopFront() (T, bool) {
	q.mu.Lock()
	v, ok := q.d.PopFront()
	q.mu.Unlock()
	return v, ok
}

// StealBack removes and returns the back element — the thieves' end.
func (q *Stealable[T]) StealBack() (T, bool) {
	q.mu.Lock()
	v, ok := q.d.PopBack()
	q.mu.Unlock()
	return v, ok
}

// Len reports the number of queued elements.
func (q *Stealable[T]) Len() int {
	q.mu.Lock()
	n := q.d.Len()
	q.mu.Unlock()
	return n
}
