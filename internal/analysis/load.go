package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the package's import path (module-qualified for module
	// loads, root-relative for bare fixture trees).
	PkgPath string
	// Dir is the absolute directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages from a source tree with no toolchain dependency
// beyond the standard library: module packages are parsed and type-checked
// from source, standard-library imports resolve through go/importer's
// source importer (GOROOT/src), and everything is memoized on one shared
// FileSet so positions stay coherent across packages.
type Loader struct {
	// Root is the absolute directory holding the tree to load.
	Root string
	// ModulePath is the import path Root corresponds to ("repro" for this
	// module). Empty means a bare tree: import paths are directory paths
	// relative to Root — the layout analyzer fixtures use.
	ModulePath string
	// Fset is the shared position table for every parsed file.
	Fset *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool

	// parsed caches per-directory parse results, filled concurrently by the
	// pre-parse phase of LoadAll (token.FileSet is safe for concurrent
	// AddFile) and read sequentially during type-checking. Parsing is the
	// bulk of the loader's work, so this is where parallelism pays.
	parsedMu sync.Mutex
	parsed   map[string]parsedDir
}

// parsedDir is one directory's parse outcome.
type parsedDir struct {
	files []*ast.File
	err   error
}

// NewLoader returns a loader over root; modulePath may be empty for bare
// fixture trees.
func NewLoader(root, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:       root,
		ModulePath: modulePath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
		parsed:     map[string]parsedDir{},
	}
}

// skipDir reports whether a directory is outside the analyzed tree:
// testdata (analyzer fixtures are loaded explicitly, never as module
// packages), VCS metadata, and underscore/dot-prefixed trees, matching the
// go tool's matching rules.
func skipDir(name string) bool {
	return name == "testdata" || name == ".git" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadAll walks Root and loads every package directory (non-test .go files
// present), returning packages sorted by import path. With workers > 1 the
// tree's files are parsed concurrently before the (inherently sequential,
// dependency-ordered) type-checking pass consumes them.
func (l *Loader) LoadAll(workers int) ([]*Package, error) {
	var paths []string
	err := filepath.Walk(l.Root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		if path != l.Root && skipDir(fi.Name()) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.Root, path)
		if err != nil {
			return err
		}
		paths = append(paths, l.importPathFor(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if workers > 1 {
		l.preparse(paths, workers)
	}
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// preparse parses every listed package's files across a bounded worker
// pool, filling the parse cache Load consults. Parse errors are cached too
// and surface from Load in the same deterministic (path-sorted) order the
// sequential path reports them.
func (l *Loader) preparse(paths []string, workers int) {
	if workers > len(paths) {
		workers = len(paths)
	}
	var wg sync.WaitGroup
	ch := make(chan string)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for p := range ch {
				if dir := l.dirFor(p); dir != "" {
					files, err := l.parseDir(dir)
					l.parsedMu.Lock()
					l.parsed[dir] = parsedDir{files: files, err: err}
					l.parsedMu.Unlock()
				}
			}
		}()
	}
	for _, p := range paths {
		ch <- p
	}
	close(ch)
	wg.Wait()
}

// parseDir parses a directory's non-test Go files in name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return files, nil
}

// importPathFor maps a Root-relative directory to its import path.
func (l *Loader) importPathFor(rel string) string {
	rel = filepath.ToSlash(rel)
	if rel == "." {
		if l.ModulePath != "" {
			return l.ModulePath
		}
		return "."
	}
	if l.ModulePath != "" {
		return l.ModulePath + "/" + rel
	}
	return rel
}

// dirFor maps an import path inside the tree back to its directory, or ""
// when the path is not inside the tree.
func (l *Loader) dirFor(path string) string {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.Root
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.Root, filepath.FromSlash(rest))
		}
		return ""
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	if hasGoFiles(dir) {
		return dir
	}
	return ""
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// Load loads (or returns the memoized) package at the given import path.
// Only non-test files are loaded: the analyzers' contracts are scoped to
// production code, and external test packages would need a second
// type-checking universe for no findings they could contribute.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: import path %q is outside the loaded tree", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	l.parsedMu.Lock()
	pd, cached := l.parsed[dir]
	l.parsedMu.Unlock()
	if !cached {
		pd.files, pd.err = l.parseDir(dir)
	}
	if pd.err != nil {
		return nil, pd.err
	}
	files := pd.files

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{PkgPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// loaderImporter adapts the loader to types.Importer: tree-local imports
// load from source through the loader itself; everything else (the standard
// library) goes to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(path); dir != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
