package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder infers the repo's static lock-acquisition graph and reports
// potential deadlocks and contradictions of declared orderings.
//
// Every sync.Mutex/RWMutex acquisition is resolved to a lock *class*
// ("engine.mu" — the owning type, first rune lowered, dot, field name; see
// mutexClass). Per function, the shared interval machinery reconstructs the
// regions during which each class is held; a monomorphic call graph built
// from go/types resolution then propagates "locks this function may
// acquire" bottom-up, so an acquisition reached through any chain of direct
// calls while another class is held becomes an edge A -> B in the global
// acquisition graph, carrying the witness call chain that produced it.
//
// Findings:
//
//   - any cycle in the acquisition graph is a potential deadlock, reported
//     once per strongly-connected component with every edge's witness chain
//     printed;
//   - any edge that contradicts a declared //cstlint:lockorder a < b
//     directive (an acquisition of a while b is held) is an ordering
//     violation, reported at the outermost witness frame.
//
// Approximations (see DESIGN.md §15): the propagation is path-insensitive
// (a callee's acquisitions count even when its locked region is not on the
// executed path), function literals are opaque (a goroutine does not
// inherit its spawner's held set — correct — but a synchronously invoked
// closure's acquisitions are also not propagated — a false-negative
// boundary), interface method calls do not resolve to implementations, and
// read/write sides of one RWMutex collapse onto one class (writer-vs-reader
// cycles through one RWMutex are still deadlocks, so collapsing is
// conservative in the right direction).
var LockOrder = &GlobalAnalyzer{
	Name: "lockorder",
	Doc:  "infers the static lock-acquisition graph; reports cycles and declared-order contradictions",
	Run:  runLockOrder,
}

// loFunc is one analyzed function body.
type loFunc struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	// locks are the class-resolved direct acquisitions (evLock events).
	locks []loLock
	// intervals are the class-resolved held regions.
	intervals []loInterval
	// calls are the monomorphically resolved call sites, in position order.
	calls []loCall

	// acquires maps each class this function may lock — directly or through
	// any chain of resolved calls — to the first step toward it, for
	// witness-chain reconstruction.
	acquires map[string]loStep
}

type loLock struct {
	class string
	pos   token.Pos
}

type loInterval struct {
	from, to token.Pos
	class    string
	key      string
}

type loCall struct {
	pos    token.Pos
	callee *types.Func
}

// loStep is one hop of a witness chain: a direct lock site, or the call
// leading toward one.
type loStep struct {
	direct bool
	pos    token.Pos
	via    *types.Func
}

// loEdge is one acquisition-graph edge: to was acquired while from was held.
type loEdge struct {
	from, to string
	pos      token.Pos // witness position in the outermost frame
	chain    string    // rendered witness call chain
}

func runLockOrder(pass *GlobalPass) {
	funcs, order := loCollect(pass)
	loPropagate(funcs, order)
	edges := loEdges(pass, funcs, order)

	classes := map[string]bool{}
	for _, fn := range order {
		for _, lk := range funcs[fn].locks {
			classes[lk.class] = true
		}
	}

	// Declared-order contradictions: an edge b -> a where a < b is declared.
	for _, decl := range pass.Orders {
		if classes[decl.Before] && classes[decl.After] {
			decl.MarkUsed()
		}
		for _, e := range edges {
			if e.from == decl.After && e.to == decl.Before {
				pass.Reportf(e.pos,
					"%s acquired while %s is held, contradicting the declared order %s < %s (path: %s)",
					e.to, e.from, decl.Before, decl.After, e.chain)
			}
		}
	}

	loReportCycles(pass, edges)
}

// loCollect builds the per-function lock/call facts for every function in
// the tree, returning the deterministic processing order (packages sorted by
// path, files and declarations in source order).
func loCollect(pass *GlobalPass) (map[*types.Func]*loFunc, []*types.Func) {
	funcs := map[*types.Func]*loFunc{}
	var order []*types.Func
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				lf := &loFunc{obj: obj, decl: fd, pkg: pkg, acquires: map[string]loStep{}}
				events := collectLockEvents(pkg.Info, fd.Body)
				for _, ev := range events {
					if ev.kind != evLock {
						continue
					}
					if class := mutexClass(pkg.Info, ev.expr); class != "" {
						lf.locks = append(lf.locks, loLock{class: class, pos: ev.pos})
						if _, ok := lf.acquires[class]; !ok {
							lf.acquires[class] = loStep{direct: true, pos: ev.pos}
						}
					}
				}
				for _, iv := range pairIntervals(events, fd.Body.End()) {
					if iv.expr == nil {
						continue
					}
					if class := mutexClass(pkg.Info, iv.expr); class != "" {
						lf.intervals = append(lf.intervals, loInterval{from: iv.from, to: iv.to, class: class, key: iv.key})
					}
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if _, isLit := n.(*ast.FuncLit); isLit {
						return false // closures run at an unknown time; see doc
					}
					call, isCall := n.(*ast.CallExpr)
					if !isCall {
						return true
					}
					if fn, isFn := calleeObj(pkg.Info, call).(*types.Func); isFn {
						lf.calls = append(lf.calls, loCall{pos: call.Pos(), callee: fn})
					}
					return true
				})
				funcs[obj] = lf
				order = append(order, obj)
			}
		}
	}
	return funcs, order
}

// loPropagate computes each function's transitive may-acquire set as a
// fixpoint over the call graph. Recursion converges because the class
// universe is finite and sets only grow.
func loPropagate(funcs map[*types.Func]*loFunc, order []*types.Func) {
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			lf := funcs[fn]
			for _, c := range lf.calls {
				callee := funcs[c.callee]
				if callee == nil {
					continue
				}
				for class := range callee.acquires {
					if _, ok := lf.acquires[class]; !ok {
						lf.acquires[class] = loStep{pos: c.pos, via: c.callee}
						changed = true
					}
				}
			}
		}
	}
}

// loChain renders the witness call chain for acquiring class starting at
// lf's frame, following the per-function first-step pointers.
func loChain(pass *GlobalPass, funcs map[*types.Func]*loFunc, lf *loFunc, class string) string {
	var frames []string
	seen := map[*loFunc]bool{}
	for lf != nil && !seen[lf] {
		seen[lf] = true
		frames = append(frames, funcDisplay(lf.obj))
		step, ok := lf.acquires[class]
		if !ok || step.direct {
			if ok {
				p := pass.Fset.Position(step.pos)
				frames[len(frames)-1] += fmt.Sprintf(" (%s:%d)", shortFile(p.Filename), p.Line)
			}
			break
		}
		lf = funcs[step.via]
	}
	return strings.Join(frames, " -> ")
}

// shortFile trims a path to its last two segments for witness rendering.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// loEdges derives the acquisition-graph edges: for every held interval of
// class A, a nested direct acquisition of B, or a call whose callee may
// acquire B, yields A -> B. Edges are deduplicated on (A, B), keeping the
// first witness in deterministic order.
func loEdges(pass *GlobalPass, funcs map[*types.Func]*loFunc, order []*types.Func) []loEdge {
	var edges []loEdge
	seen := map[[2]string]bool{}
	add := func(from, to string, pos token.Pos, chain string) {
		if from == to {
			return // re-acquisition of one class is recursion, not ordering
		}
		k := [2]string{from, to}
		if seen[k] {
			return
		}
		seen[k] = true
		edges = append(edges, loEdge{from: from, to: to, pos: pos, chain: chain})
	}
	for _, fn := range order {
		lf := funcs[fn]
		if len(lf.intervals) == 0 {
			continue
		}
		for _, iv := range lf.intervals {
			for _, lk := range lf.locks {
				if lk.pos > iv.from && lk.pos < iv.to {
					p := pass.Fset.Position(lk.pos)
					add(iv.class, lk.class, lk.pos,
						fmt.Sprintf("%s (%s:%d)", funcDisplay(lf.obj), shortFile(p.Filename), p.Line))
				}
			}
			for _, c := range lf.calls {
				if c.pos <= iv.from || c.pos >= iv.to {
					continue
				}
				callee := funcs[c.callee]
				if callee == nil {
					continue
				}
				classes := make([]string, 0, len(callee.acquires))
				for class := range callee.acquires {
					classes = append(classes, class)
				}
				sort.Strings(classes)
				for _, class := range classes {
					chain := funcDisplay(lf.obj) + " -> " + loChain(pass, funcs, callee, class)
					add(iv.class, class, c.pos, chain)
				}
			}
		}
	}
	return edges
}

// loReportCycles finds cycles in the deduplicated edge graph and reports one
// finding per strongly-connected component, with every in-cycle edge's
// witness chain printed. The classic two-lock inversion (A -> B and B -> A)
// therefore prints both witness call chains in one diagnostic.
func loReportCycles(pass *GlobalPass, edges []loEdge) {
	adj := map[string][]loEdge{}
	nodes := map[string]bool{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
		nodes[e.from], nodes[e.to] = true, true
	}
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	comp := loSCC(sorted, adj)
	// Group nodes by component (in sorted node order, so member lists come
	// out sorted); a component with a cycle has >1 member (self-edges are
	// excluded at edge construction).
	members := map[int][]string{}
	for _, n := range sorted {
		members[comp[n]] = append(members[comp[n]], n)
	}
	compIDs := make([]int, 0, len(members))
	for c := range members {
		if len(members[c]) > 1 {
			compIDs = append(compIDs, c)
		}
	}
	sort.Ints(compIDs)
	for _, c := range compIDs {
		ms := members[c]
		inCycle := map[string]bool{}
		for _, n := range ms {
			inCycle[n] = true
		}
		var cyc []loEdge
		for _, e := range edges { // deterministic: discovery order
			if inCycle[e.from] && inCycle[e.to] && comp[e.from] == comp[e.to] {
				cyc = append(cyc, e)
			}
		}
		if len(cyc) == 0 {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "potential deadlock: lock-order cycle among %s;", strings.Join(ms, ", "))
		for i, e := range cyc {
			if i > 0 {
				b.WriteString(";")
			}
			fmt.Fprintf(&b, " %s -> %s via %s", e.from, e.to, e.chain)
		}
		pass.Reportf(cyc[0].pos, "%s", b.String())
	}
}

// loSCC is Tarjan's strongly-connected-components algorithm over the class
// graph, iterative-free (the graph is tiny) and deterministic: roots and
// neighbors are visited in sorted order, and component IDs are assigned in
// completion order.
func loSCC(nodes []string, adj map[string][]loEdge) map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, nComp := 0, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			w := e.to
			if _, visited := index[w]; !visited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for _, v := range nodes {
		if _, visited := index[v]; !visited {
			strongconnect(v)
		}
	}
	return comp
}
