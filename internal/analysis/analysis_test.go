package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe is the fixture expectation grammar: `// want analyzer "substr"` on
// the finding's line, or `// want-above analyzer "substr"` on the line below
// it (needed when the finding's line is itself a directive comment, which
// must end at its closing paren).
var wantRe = regexp.MustCompile(`// want(-above)? ([a-z]+) "([^"]+)"`)

type expectation struct {
	file     string // slash-separated, relative to the fixture root
	line     int
	analyzer string
	substr   string
	matched  bool
}

func (e *expectation) String() string {
	return fmt.Sprintf("%s:%d: [%s] ~%q", e.file, e.line, e.analyzer, e.substr)
}

func collectWants(t *testing.T, root string) []*expectation {
	t.Helper()
	var out []*expectation
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, ln := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(ln, -1) {
				line := i + 1
				if m[1] == "-above" {
					line--
				}
				out = append(out, &expectation{
					file: filepath.ToSlash(rel), line: line,
					analyzer: m[2], substr: m[3],
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAnalyzerFixtures runs the full suite over each analyzer's fixture tree
// and requires an exact match between findings and // want expectations: an
// unexpected finding fails, and so does an expectation nothing satisfied.
func TestAnalyzerFixtures(t *testing.T) {
	for _, name := range []string{"nodeterm", "maporder", "errdrop", "lockcall", "rawfs", "directive"} {
		t.Run(name, func(t *testing.T) {
			root, err := filepath.Abs(filepath.Join("testdata", "src", name))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{Root: root})
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, root)
			for _, d := range res.Diags {
				p := res.Fset.Position(d.Pos)
				rel, err := filepath.Rel(root, p.Filename)
				if err != nil {
					t.Fatal(err)
				}
				rel = filepath.ToSlash(rel)
				found := false
				for _, w := range wants {
					if !w.matched && w.file == rel && w.line == p.Line &&
						w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
						w.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected finding %s:%d: [%s] %s", rel, p.Line, d.Analyzer, d.Message)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("missing expected finding %s", w)
				}
			}
		})
	}
}

// TestDriverGolden pins the driver's formatted output — ordering, relative
// paths, and message text — against a committed golden file.
func TestDriverGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "golden", "src"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(res.Format(root), "\n") + "\n"
	wantBytes, err := os.ReadFile(filepath.Join("testdata", "golden", "want.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(wantBytes) {
		t.Errorf("driver output mismatch\n--- got ---\n%s--- want ---\n%s", got, wantBytes)
	}
}

// TestSyntheticViolation seeds a raw time.Now into a synthetic module's
// internal/core and proves the suite fails it — the acceptance check that a
// regression of the clock-seam discipline cannot land silently.
func TestSyntheticViolation(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "core")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`
	if err := os.WriteFile(filepath.Join(dir, "core.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Root: root, ModulePath: "synth"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("findings = %v, want exactly one", res.Format(root))
	}
	d := res.Diags[0]
	if d.Analyzer != "nodeterm" || !strings.Contains(d.Message, "time.Now") {
		t.Fatalf("finding = [%s] %s, want nodeterm about time.Now", d.Analyzer, d.Message)
	}
}

// TestRepoClean is the self-hosting check: the repo's own tree must produce
// zero findings, the same gate CI applies via `go run ./cmd/cstlint ./...`.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Root: root, ModulePath: "repro"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 0 {
		t.Errorf("repo is not lint-clean:\n%s", strings.Join(res.Format(root), "\n"))
	}
}
