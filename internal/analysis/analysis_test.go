package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe is the fixture expectation grammar: `// want analyzer "substr"` on
// the finding's line, or `// want-above analyzer "substr"` on the line below
// it (needed when the finding's line is itself a directive comment, which
// must end at its closing paren).
var wantRe = regexp.MustCompile(`// want(-above)? ([a-z]+) "([^"]+)"`)

type expectation struct {
	file     string // slash-separated, relative to the fixture root
	line     int
	analyzer string
	substr   string
	matched  bool
}

func (e *expectation) String() string {
	return fmt.Sprintf("%s:%d: [%s] ~%q", e.file, e.line, e.analyzer, e.substr)
}

func collectWants(t *testing.T, root string) []*expectation {
	t.Helper()
	var out []*expectation
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, ln := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(ln, -1) {
				line := i + 1
				if m[1] == "-above" {
					line--
				}
				out = append(out, &expectation{
					file: filepath.ToSlash(rel), line: line,
					analyzer: m[2], substr: m[3],
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAnalyzerFixtures runs the full suite over each analyzer's fixture tree
// and requires an exact match between findings and // want expectations: an
// unexpected finding fails, and so does an expectation nothing satisfied.
func TestAnalyzerFixtures(t *testing.T) {
	for _, name := range []string{"nodeterm", "maporder", "errdrop", "lockcall", "rawfs", "directive", "lockorder", "atomicmix", "goleak"} {
		t.Run(name, func(t *testing.T) {
			root, err := filepath.Abs(filepath.Join("testdata", "src", name))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{Root: root})
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, root)
			for _, d := range res.Diags {
				p := res.Fset.Position(d.Pos)
				rel, err := filepath.Rel(root, p.Filename)
				if err != nil {
					t.Fatal(err)
				}
				rel = filepath.ToSlash(rel)
				found := false
				for _, w := range wants {
					if !w.matched && w.file == rel && w.line == p.Line &&
						w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
						w.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected finding %s:%d: [%s] %s", rel, p.Line, d.Analyzer, d.Message)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("missing expected finding %s", w)
				}
			}
		})
	}
}

// TestDriverGolden pins the driver's formatted output — ordering, relative
// paths, and message text — against a committed golden file.
func TestDriverGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "golden", "src"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(res.Format(root), "\n") + "\n"
	wantBytes, err := os.ReadFile(filepath.Join("testdata", "golden", "want.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(wantBytes) {
		t.Errorf("driver output mismatch\n--- got ---\n%s--- want ---\n%s", got, wantBytes)
	}
}

// TestSyntheticViolation seeds a raw time.Now into a synthetic module's
// internal/core and proves the suite fails it — the acceptance check that a
// regression of the clock-seam discipline cannot land silently.
func TestSyntheticViolation(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "core")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`
	if err := os.WriteFile(filepath.Join(dir, "core.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Root: root, ModulePath: "synth"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("findings = %v, want exactly one", res.Format(root))
	}
	d := res.Diags[0]
	if d.Analyzer != "nodeterm" || !strings.Contains(d.Message, "time.Now") {
		t.Fatalf("finding = [%s] %s, want nodeterm about time.Now", d.Analyzer, d.Message)
	}
}

// TestCycleWitnessChains pins the shape of a lock-order cycle finding: the
// classic two-lock inversion is reported once, with both directions' witness
// call chains printed in the one diagnostic.
func TestCycleWitnessChains(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "lockorder"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	var cycle string
	for _, d := range res.Diags {
		if d.Analyzer == "lockorder" && strings.Contains(d.Message, "potential deadlock") {
			if cycle != "" {
				t.Fatalf("second cycle finding: %s", d.Message)
			}
			cycle = d.Message
		}
	}
	if cycle == "" {
		t.Fatal("no cycle finding on the lockorder fixture")
	}
	for _, want := range []string{
		"lock-order cycle among alpha.mu, beta.mu",
		"alpha.mu -> beta.mu via lo.lockAB -> lo.lockB",
		"beta.mu -> alpha.mu via lo.lockBA",
	} {
		if !strings.Contains(cycle, want) {
			t.Errorf("cycle finding missing %q:\n%s", want, cycle)
		}
	}
}

// TestParallelDeterminism proves the worker pool is invisible in the output:
// the same tree analyzed sequentially and with the pool saturated formats
// byte-identically.
func TestParallelDeterminism(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "lockorder"))
	if err != nil {
		t.Fatal(err)
	}
	format := func(workers int) string {
		res, err := Run(Config{Root: root, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(res.Format(root), "\n")
	}
	seq := format(1)
	for i := 0; i < 3; i++ {
		if par := format(8); par != seq {
			t.Fatalf("parallel output differs from sequential\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
		}
	}
}

// TestTypeCheckError drives the driver over a package that does not
// type-check and requires a positioned error, the condition under which
// cstlint exits 2.
func TestTypeCheckError(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "broken")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package broken

func f() int { return "not an int" }
`
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Run(Config{Root: root, ModulePath: "synth"})
	if err == nil {
		t.Fatal("Run succeeded on a package that does not type-check")
	}
	msg := err.Error()
	if !strings.Contains(msg, "broken.go:3") {
		t.Errorf("error %q does not carry the failing position broken.go:3", msg)
	}
	if !strings.Contains(msg, "type-checking") {
		t.Errorf("error %q does not say it is a type-checking failure", msg)
	}
}

// TestBaselineSuppression covers both baseline paths: known findings are
// suppressed (exit-0 path) and a finding absent from the baseline survives
// (fail-on-new path). Matching is line-number-free, so a baseline keyed on
// an old line still matches after unrelated edits move the finding.
func TestBaselineSuppression(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "golden", "src"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) < 2 {
		t.Fatalf("golden tree produced %d findings, need at least 2", len(res.Diags))
	}

	// Full baseline (with comment/blank noise): everything suppressed.
	lines := res.BaselineLines(root)
	full := ParseBaseline([]byte("# header\n\n" + strings.Join(lines, "\n") + "\n"))
	if full.Len() != len(lines) {
		t.Fatalf("baseline parsed %d entries, want %d", full.Len(), len(lines))
	}
	kept, suppressed := res.ApplyBaseline(full, root)
	if len(kept.Diags) != 0 || suppressed != len(res.Diags) {
		t.Errorf("full baseline kept %d findings (suppressed %d), want 0 kept", len(kept.Diags), suppressed)
	}

	// Partial baseline: the omitted finding must survive.
	partial := ParseBaseline([]byte(strings.Join(lines[1:], "\n")))
	kept, suppressed = res.ApplyBaseline(partial, root)
	if len(kept.Diags) != 1 || suppressed != len(res.Diags)-1 {
		t.Fatalf("partial baseline kept %d findings (suppressed %d), want exactly 1 kept", len(kept.Diags), suppressed)
	}
	if got := kept.BaselineLines(root)[0]; got != lines[0] {
		t.Errorf("surviving finding = %q, want the omitted %q", got, lines[0])
	}
}

// TestFormatJSON pins the -json rendering: an array of objects with file,
// line, analyzer and message fields, and [] (not null) when clean.
func TestFormatJSON(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "golden", "src"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.FormatJSON(root)
	if err != nil {
		t.Fatal(err)
	}
	var got []JSONDiagnostic
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("output is not a JSON array of diagnostics: %v\n%s", err, data)
	}
	if len(got) != len(res.Diags) {
		t.Fatalf("JSON has %d findings, text has %d", len(got), len(res.Diags))
	}
	for _, d := range got {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
	empty := &Result{Fset: res.Fset}
	data, err = empty.FormatJSON(root)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "[]" {
		t.Errorf("empty result renders %q, want []", data)
	}
}

// TestRepoClean is the self-hosting check: the repo's own tree must produce
// zero findings, the same gate CI applies via `go run ./cmd/cstlint ./...`.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Root: root, ModulePath: "repro"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 0 {
		t.Errorf("repo is not lint-clean:\n%s", strings.Join(res.Format(root), "\n"))
	}
}
