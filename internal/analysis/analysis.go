// Package analysis is the repo-native static-analysis suite behind
// cmd/cstlint. The reproduction's value rests on invariants no test can
// exhaustively check — results byte-identical across worker counts and
// resumes, every measurement charged before state mutates, generated kernels
// consistent with the priced resource model — so this package proves the
// code-level preconditions of those invariants statically, on every commit:
//
//   - nodeterm: no raw wall-clock or global-RNG reads in result-affecting
//     packages (the engine.Clock seam is the one sanctioned path);
//   - maporder: no map iteration whose order can leak into results, output
//     or measurements;
//   - errdrop: no silently discarded error returns from internal/os/io
//     calls (an explicit `_ =` is the visible opt-out);
//   - lockcall: no objective measurements or user callbacks invoked while
//     an engine mutex is held;
//   - rawfs: no direct os/ioutil filesystem calls in the durable-storage
//     packages (internal/journal, internal/store, internal/campaign) —
//     every disk touch goes through the internal/vfs seam so the chaos
//     walker can inject faults at it;
//   - goleak: every spawned goroutine is joined, watching a cancel signal,
//     or handing its result to the spawner, and an in-scope context flows
//     into context-aware callees instead of being dropped;
//   - lockorder (whole-program): the static lock-acquisition graph is
//     acyclic and consistent with declared //cstlint:lockorder orderings;
//   - atomicmix (whole-program): fields accessed via sync/atomic anywhere
//     are never read or written plainly elsewhere;
//   - directive: every //cstlint:allow and //cstlint:lockorder annotation
//     is well-formed, names a real analyzer, and still applies to something.
//
// The driver is pure stdlib (go/parser, go/ast, go/types, go/token): it
// loads every package in the module from source (parsing in parallel across
// a bounded worker pool), type-checks it, runs the per-package suite on each
// package concurrently and the whole-program suite over all of them, applies
// allow directives, and reports findings as "file:line: [analyzer] message"
// — byte-identically at any worker count. A committed baseline file can
// subtract accepted findings (see baseline.go) so only new findings fail.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding: an analyzer's claim about a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one named check. Run inspects the pass's package and reports
// findings through pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	// ResultAffecting marks packages whose behaviour reaches tuning results
	// (the driver's scope predicate; nodeterm only fires inside it).
	ResultAffecting bool
	// ModulePath scopes errdrop's "own module" test ("repro" for real runs,
	// "repro" again for fixtures via their stub tree).
	ModulePath string

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of expr, or nil when unknown.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(expr)
}

// calleeObj resolves the object a call expression invokes: the *types.Func
// of a direct function or method call, the *types.Var of a call through a
// function-typed variable or field, a *types.Builtin for append and friends,
// or nil when the callee is not a simple reference (e.g. an immediately
// invoked function literal or a conversion).
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// pkgPath returns the import path of the package obj belongs to, or "" for
// universe-scope objects (builtins, error).
func pkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isPkgFunc reports whether call invokes the package-level function
// path.name (methods excluded).
func isPkgFunc(info *types.Info, call *ast.CallExpr, path string, names ...string) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || pkgPath(fn) != path {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// returnsError reports whether the callee's signature includes a result of
// type error.
func returnsError(obj types.Object) bool {
	sig, ok := obj.Type().Underlying().(*types.Signature)
	if !ok {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// hasMethod reports whether t (or *t) has a method or embedded field named
// name — used to recognize objective-shaped receivers.
func hasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	return obj != nil
}

// GlobalAnalyzer is one whole-program check: unlike an Analyzer, which sees
// one package at a time, its Run observes every loaded package at once and
// can follow the cross-package call graph (lockorder's held-lock
// propagation, atomicmix's atomic-field registry).
type GlobalAnalyzer struct {
	Name string
	Doc  string
	Run  func(*GlobalPass)
}

// GlobalPass is one whole-program analyzer execution over the full tree.
type GlobalPass struct {
	Analyzer *GlobalAnalyzer
	// Pkgs is every loaded package, sorted by import path.
	Pkgs []*Package
	Fset *token.FileSet
	// Orders is the declared lock-order set parsed from
	// //cstlint:lockorder directives across the whole tree.
	Orders []*OrderDecl

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *GlobalPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// DefaultAnalyzers returns the per-package suite in reporting order. The
// directive validator is not in the list: it runs inside the driver, after
// suppression, because it must observe which allows were used.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{NoDeterm, MapOrder, ErrDrop, LockCall, RawFS, GoLeak}
}

// DefaultGlobalAnalyzers returns the whole-program suite run after the
// per-package analyzers.
func DefaultGlobalAnalyzers() []*GlobalAnalyzer {
	return []*GlobalAnalyzer{LockOrder, AtomicMix}
}
