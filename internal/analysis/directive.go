package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// DirectivePrefix introduces every cstlint control comment.
const DirectivePrefix = "//cstlint:"

// allowRe is the allow-directive grammar: //cstlint:allow name(reason).
// The reason is mandatory — an unexplained suppression is itself a finding.
var allowRe = regexp.MustCompile(`^//cstlint:allow\s+([A-Za-z][A-Za-z0-9_]*)\((.*)\)\s*$`)

// orderRe is the lock-order declaration grammar: //cstlint:lockorder a < b,
// where a and b are lock class names as lockorder renders them
// ("engine.mu", "cacheShard.mu"). It declares that a is always acquired
// before b; lockorder reports any observed acquisition edge contradicting
// it.
var orderRe = regexp.MustCompile(`^//cstlint:lockorder\s+([A-Za-z_][A-Za-z0-9_]*\.[A-Za-z_][A-Za-z0-9_]*)\s*<\s*([A-Za-z_][A-Za-z0-9_]*\.[A-Za-z_][A-Za-z0-9_]*)\s*$`)

const (
	dirAllow = iota
	dirOrder
)

// directive is one parsed //cstlint: comment.
type directive struct {
	pos      token.Pos
	file     string
	line     int
	kind     int
	analyzer string // allow: the suppressed analyzer
	reason   string
	before   string // lockorder: the class acquired first
	after    string // lockorder: the class acquired second
	malform  string // non-empty when the comment failed to parse
	used     bool
}

// OrderDecl is one declared lock ordering, surfaced to the lockorder
// analyzer through GlobalPass.Orders.
type OrderDecl struct {
	// Before must always be acquired before After.
	Before, After string
	Pos           token.Pos

	d *directive
}

// MarkUsed records that the declaration matched real lock classes, so the
// directive validator does not report it stale.
func (o *OrderDecl) MarkUsed() { o.d.used = true }

// parseDirectives extracts every cstlint control comment from the package's
// files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				p := fset.Position(c.Pos())
				d := &directive{pos: c.Pos(), file: p.Filename, line: p.Line}
				if strings.HasPrefix(text, "//cstlint:lockorder") {
					d.kind = dirOrder
					if m := orderRe.FindStringSubmatch(text); m == nil {
						d.malform = "directive must match //cstlint:lockorder class.field < class.field"
					} else {
						d.before, d.after = m[1], m[2]
					}
					out = append(out, d)
					continue
				}
				m := allowRe.FindStringSubmatch(text)
				switch {
				case m == nil:
					d.malform = "directive must match //cstlint:allow analyzer(reason)"
				case strings.TrimSpace(m[2]) == "":
					d.analyzer = m[1]
					d.malform = "allow directive needs a non-empty reason"
				default:
					d.analyzer = m[1]
					d.reason = strings.TrimSpace(m[2])
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// orderDecls projects the well-formed lockorder directives out of dirs.
func orderDecls(dirs []*directive) []*OrderDecl {
	var out []*OrderDecl
	for _, d := range dirs {
		if d.kind == dirOrder && d.malform == "" {
			out = append(out, &OrderDecl{Before: d.before, After: d.after, Pos: d.pos, d: d})
		}
	}
	return out
}

// applyDirectives removes diagnostics suppressed by a well-formed allow
// directive for the same analyzer on the diagnostic's line or the line
// directly above it (so a directive can trail the statement or sit on its
// own line before it), marking each directive that suppressed something.
func applyDirectives(fset *token.FileSet, diags []Diagnostic, dirs []*directive) []Diagnostic {
	kept := diags[:0]
	for _, dg := range diags {
		p := fset.Position(dg.Pos)
		suppressed := false
		for _, d := range dirs {
			if d.kind != dirAllow || d.malform != "" || d.analyzer != dg.Analyzer || d.file != p.Filename {
				continue
			}
			if d.line == p.Line || d.line == p.Line-1 {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, dg)
		}
	}
	return kept
}

// DirectiveName is the reserved analyzer name for directive-validation
// findings; it cannot itself be allow-suppressed.
const DirectiveName = "directive"

// directiveFindings validates the package's directives after suppression:
// malformed comments, unknown analyzer names, and stale allows that no
// longer suppress anything are all findings. Stale allows matter as much as
// the real analyzers — a dead suppression is a silent hole the next true
// finding falls through. A lockorder declaration is stale when no mutex in
// the tree matches one of its classes (the code it ordered is gone or was
// renamed).
func directiveFindings(dirs []*directive, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range dirs {
		switch {
		case d.malform != "":
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: DirectiveName, Message: d.malform})
		case d.kind == dirOrder:
			if !d.used {
				out = append(out, Diagnostic{Pos: d.pos, Analyzer: DirectiveName,
					Message: "stale lockorder declaration: no mutex matches class " + d.before + " or " + d.after + "; update or delete the directive"})
			}
		case !known[d.analyzer]:
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: DirectiveName,
				Message: "allow names unknown analyzer \"" + d.analyzer + "\""})
		case !d.used:
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: DirectiveName,
				Message: "stale allow: no " + d.analyzer + " finding is suppressed here; delete the directive"})
		}
	}
	return out
}
