package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// DirectivePrefix introduces every cstlint control comment.
const DirectivePrefix = "//cstlint:"

// allowRe is the allow-directive grammar: //cstlint:allow name(reason).
// The reason is mandatory — an unexplained suppression is itself a finding.
var allowRe = regexp.MustCompile(`^//cstlint:allow\s+([A-Za-z][A-Za-z0-9_]*)\((.*)\)\s*$`)

// directive is one parsed //cstlint: comment.
type directive struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
	malform  string // non-empty when the comment failed to parse
	used     bool
}

// parseDirectives extracts every cstlint control comment from the package's
// files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				p := fset.Position(c.Pos())
				d := &directive{pos: c.Pos(), file: p.Filename, line: p.Line}
				m := allowRe.FindStringSubmatch(text)
				switch {
				case m == nil:
					d.malform = "directive must match //cstlint:allow analyzer(reason)"
				case strings.TrimSpace(m[2]) == "":
					d.analyzer = m[1]
					d.malform = "allow directive needs a non-empty reason"
				default:
					d.analyzer = m[1]
					d.reason = strings.TrimSpace(m[2])
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applyDirectives removes diagnostics suppressed by a well-formed allow
// directive for the same analyzer on the diagnostic's line or the line
// directly above it (so a directive can trail the statement or sit on its
// own line before it), marking each directive that suppressed something.
func applyDirectives(fset *token.FileSet, diags []Diagnostic, dirs []*directive) []Diagnostic {
	kept := diags[:0]
	for _, dg := range diags {
		p := fset.Position(dg.Pos)
		suppressed := false
		for _, d := range dirs {
			if d.malform != "" || d.analyzer != dg.Analyzer || d.file != p.Filename {
				continue
			}
			if d.line == p.Line || d.line == p.Line-1 {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, dg)
		}
	}
	return kept
}

// DirectiveName is the reserved analyzer name for directive-validation
// findings; it cannot itself be allow-suppressed.
const DirectiveName = "directive"

// directiveFindings validates the package's directives after suppression:
// malformed comments, unknown analyzer names, and stale allows that no
// longer suppress anything are all findings. Stale allows matter as much as
// the real analyzers — a dead suppression is a silent hole the next true
// finding falls through.
func directiveFindings(dirs []*directive, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range dirs {
		switch {
		case d.malform != "":
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: DirectiveName, Message: d.malform})
		case !known[d.analyzer]:
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: DirectiveName,
				Message: "allow names unknown analyzer \"" + d.analyzer + "\""})
		case !d.used:
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: DirectiveName,
				Message: "stale allow: no " + d.analyzer + " finding is suppressed here; delete the directive"})
		}
	}
	return out
}
