package analysis

import (
	"go/ast"
	"strings"
)

// RawFS flags direct filesystem calls — package-level os functions that touch
// the disk, and anything in the legacy io/ioutil — inside the durable-storage
// packages (internal/journal, internal/store, internal/campaign). Those
// packages must route every disk touch through the internal/vfs seam so the
// fault-point walker can enumerate and inject at each operation; a raw os
// call is a hole the chaos tests cannot see into. Non-filesystem os calls
// (os.Getpid, os.Getenv), constants (os.O_CREATE) and variables
// (os.ErrNotExist) are fine, as is any use outside the scoped packages.
var RawFS = &Analyzer{
	Name: "rawfs",
	Doc:  "flags direct os/ioutil filesystem calls in the durable-storage packages (use internal/vfs)",
	Run:  runRawFS,
}

// rawFSScopes are the package-path suffixes under rawfs jurisdiction: the
// packages whose disk traffic the fault-point walker must be able to
// enumerate. Matched against the full import path ("repro/internal/store")
// and bare fixture paths ("internal/store").
var rawFSScopes = []string{
	"internal/journal",
	"internal/store",
	"internal/campaign",
}

// osFSFuncs are the package-level os functions that touch the filesystem.
// Process/env functions (Getpid, Getenv, Exit, …) are deliberately absent.
var osFSFuncs = map[string]bool{
	"Chdir":      true,
	"Chmod":      true,
	"Chown":      true,
	"Chtimes":    true,
	"Create":     true,
	"CreateTemp": true,
	"Lchown":     true,
	"Link":       true,
	"Lstat":      true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"MkdirTemp":  true,
	"Open":       true,
	"OpenFile":   true,
	"ReadDir":    true,
	"ReadFile":   true,
	"Readlink":   true,
	"Remove":     true,
	"RemoveAll":  true,
	"Rename":     true,
	"Stat":       true,
	"Symlink":    true,
	"Truncate":   true,
	"WriteFile":  true,
}

// rawFSScoped reports whether pkgPath is one of the durable-storage packages.
func rawFSScoped(pkgPath string) bool {
	for _, s := range rawFSScopes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

func runRawFS(pass *Pass) {
	if !rawFSScoped(pass.Pkg.PkgPath) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(info, call)
			switch pkgPath(obj) {
			case "os":
				// Package-level fs functions only. os.File methods are not
				// re-flagged: the handle could only have come from an os.Open
				// call, which is already a finding.
				if !isPkgFunc(info, call, "os", obj.Name()) || !osFSFuncs[obj.Name()] {
					return true
				}
			case "io/ioutil":
				// Everything left in io/ioutil is either a filesystem touch or
				// deprecated in favour of io/os; neither belongs here.
			default:
				return true
			}
			pass.Reportf(call.Pos(),
				"calls %s directly; durable-storage packages must go through internal/vfs so faults stay injectable",
				calleeName(call, obj))
			return true
		})
	}
}
