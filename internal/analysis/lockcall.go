package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCall flags objective measurements and user callbacks invoked while an
// engine mutex is held. An objective's Measure can block for a full kernel
// benchmark; running one under a lock serializes every other worker behind a
// GPU-length critical section, and invoking a user callback under a lock
// invites deadlock the moment the callback re-enters the engine. Locked
// regions are computed per function from sync.Mutex/RWMutex Lock/Unlock
// pairs (including defer-Unlock), and functions following the repo's
// *Locked naming convention are treated as locked over their whole body.
var LockCall = &Analyzer{
	Name: "lockcall",
	Doc:  "flags objective measurements and user callbacks made while a mutex is held",
	Run:  runLockCall,
}

func runLockCall(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runLockCallFunc(pass, info, fd)
		}
	}
}

// lockInterval is one source region during which the named mutex is held.
type lockInterval struct {
	from, to token.Pos
	key      string // rendered mutex expression, e.g. "e.mu"
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
)

type lockEvent struct {
	pos  token.Pos
	key  string
	kind int
}

func runLockCallFunc(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	intervals := lockedIntervals(info, fd)
	if len(intervals) == 0 {
		return
	}
	params := paramObjects(info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures run at an unknown time, not under this frame's locks
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		what := riskyCall(pass, info, call, params)
		if what == "" {
			return true
		}
		for _, iv := range intervals {
			if call.Pos() > iv.from && call.Pos() < iv.to {
				pass.Reportf(call.Pos(),
					"%s invoked while %s is held; release the lock around long-running or re-entrant calls", what, iv.key)
				return true
			}
		}
		return true
	})
}

// lockedIntervals reconstructs the regions of fd's body during which a mutex
// is held, from the position-ordered sequence of Lock/Unlock events. A
// *Locked-suffixed function is one region spanning its whole body — the
// repo's convention for "caller holds the lock".
func lockedIntervals(info *types.Info, fd *ast.FuncDecl) []lockInterval {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return []lockInterval{{
			from: fd.Body.Pos(), to: fd.Body.End(),
			key: "the receiver's lock (the *Locked naming convention)",
		}}
	}
	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if key, kind, ok := syncCall(info, st.Call); ok && kind == evUnlock {
				events = append(events, lockEvent{pos: st.Pos(), key: key, kind: evDeferUnlock})
			}
			return false
		case *ast.CallExpr:
			if key, kind, ok := syncCall(info, st); ok {
				events = append(events, lockEvent{pos: st.Pos(), key: key, kind: kind})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string][]token.Pos{}
	var out []lockInterval
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			held[ev.key] = append(held[ev.key], ev.pos)
		case evUnlock, evDeferUnlock:
			stack := held[ev.key]
			if len(stack) == 0 {
				continue // unlock of a lock taken by the caller; no interval here
			}
			from := stack[len(stack)-1]
			held[ev.key] = stack[:len(stack)-1]
			to := ev.pos
			if ev.kind == evDeferUnlock {
				to = fd.Body.End() // deferred unlock holds to function exit
			}
			out = append(out, lockInterval{from: from, to: to, key: ev.key})
		}
	}
	keys := make([]string, 0, len(held))
	for key := range held {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, from := range held[key] {
			out = append(out, lockInterval{from: from, to: fd.Body.End(), key: key})
		}
	}
	return out
}

// syncCall classifies a call as a sync.Mutex/RWMutex lock or unlock,
// returning the rendered mutex expression as the interval key.
func syncCall(info *types.Info, call *ast.CallExpr) (key string, kind int, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || pkgPath(fn) != "sync" {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), evLock, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), evUnlock, true
	}
	return "", 0, false
}

// paramObjects collects fd's parameter objects so calls through func-typed
// parameters (caller-supplied callbacks) can be recognized.
func paramObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// riskyCall classifies a call that must not run under a lock: an objective
// measurement (the Measure* family, or Run/RunBatch on an objective-shaped
// receiver) or a user callback (a call through a func-typed struct field or
// function parameter — values the engine does not control). Local closures
// are not flagged: they are this function's own code and visible in review.
func riskyCall(pass *Pass, info *types.Info, call *ast.CallExpr, params map[types.Object]bool) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return ""
			}
			if objectiveMethods[obj.Name()] {
				return "objective " + types.ExprString(fun)
			}
			if (obj.Name() == "Run" || obj.Name() == "RunBatch") && hasMethod(pass.TypeOf(fun.X), "Space") {
				return "objective " + types.ExprString(fun)
			}
		case *types.Var:
			if obj.IsField() && isFuncTyped(obj) {
				return "callback field " + types.ExprString(fun)
			}
		}
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Var); ok && params[obj] && isFuncTyped(obj) {
			return "callback parameter " + fun.Name
		}
	}
	return ""
}

func isFuncTyped(v *types.Var) bool {
	_, ok := v.Type().Underlying().(*types.Signature)
	return ok
}
