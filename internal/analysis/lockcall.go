package analysis

import (
	"go/ast"
	"go/types"
)

// LockCall flags objective measurements and user callbacks invoked while an
// engine mutex is held. An objective's Measure can block for a full kernel
// benchmark; running one under a lock serializes every other worker behind a
// GPU-length critical section, and invoking a user callback under a lock
// invites deadlock the moment the callback re-enters the engine. Locked
// regions are computed per function from sync.Mutex/RWMutex events —
// Lock/Unlock, RLock/RUnlock (paired independently of the write side), and
// TryLock/TryRLock (assumed to succeed), including defer-Unlock — by the
// shared interval machinery in lockutil.go, and functions following the
// repo's *Locked naming convention are treated as locked over their whole
// body.
var LockCall = &Analyzer{
	Name: "lockcall",
	Doc:  "flags objective measurements and user callbacks made while a mutex is held",
	Run:  runLockCall,
}

func runLockCall(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runLockCallFunc(pass, info, fd)
		}
	}
}

func runLockCallFunc(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	intervals := lockedIntervals(info, fd)
	if len(intervals) == 0 {
		return
	}
	params := paramObjects(info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures run at an unknown time, not under this frame's locks
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		what := riskyCall(pass, info, call, params)
		if what == "" {
			return true
		}
		for _, iv := range intervals {
			if call.Pos() > iv.from && call.Pos() < iv.to {
				pass.Reportf(call.Pos(),
					"%s invoked while %s is held; release the lock around long-running or re-entrant calls", what, iv.key)
				return true
			}
		}
		return true
	})
}

// lockedIntervals reconstructs the regions of fd's body during which a mutex
// is held. A *Locked-suffixed function is one region spanning its whole body
// — the repo's convention for "caller holds the lock".
func lockedIntervals(info *types.Info, fd *ast.FuncDecl) []lockInterval {
	if isLockedConvention(fd) {
		return []lockInterval{{
			from: fd.Body.Pos(), to: fd.Body.End(),
			key: "the receiver's lock (the *Locked naming convention)",
		}}
	}
	return pairIntervals(collectLockEvents(info, fd.Body), fd.Body.End())
}

// paramObjects collects fd's parameter objects so calls through func-typed
// parameters (caller-supplied callbacks) can be recognized.
func paramObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// riskyCall classifies a call that must not run under a lock: an objective
// measurement (the Measure* family, or Run/RunBatch on an objective-shaped
// receiver) or a user callback (a call through a func-typed struct field or
// function parameter — values the engine does not control). Local closures
// are not flagged: they are this function's own code and visible in review.
func riskyCall(pass *Pass, info *types.Info, call *ast.CallExpr, params map[types.Object]bool) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return ""
			}
			if objectiveMethods[obj.Name()] {
				return "objective " + types.ExprString(fun)
			}
			if (obj.Name() == "Run" || obj.Name() == "RunBatch") && hasMethod(pass.TypeOf(fun.X), "Space") {
				return "objective " + types.ExprString(fun)
			}
		case *types.Var:
			if obj.IsField() && isFuncTyped(obj) {
				return "callback field " + types.ExprString(fun)
			}
		}
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Var); ok && params[obj] && isFuncTyped(obj) {
			return "callback parameter " + fun.Name
		}
	}
	return ""
}

func isFuncTyped(v *types.Var) bool {
	_, ok := v.Type().Underlying().(*types.Signature)
	return ok
}
