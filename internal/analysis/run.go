package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Config controls one driver run.
type Config struct {
	// Root is the absolute directory of the tree to lint.
	Root string
	// ModulePath is the module's import path; empty for bare fixture trees.
	ModulePath string
	// ResultAffecting overrides the scope predicate for nodeterm. Nil means
	// the default: any package with an "internal" path segment.
	ResultAffecting func(pkgPath string) bool
	// Analyzers overrides the per-package suite; nil means DefaultAnalyzers.
	Analyzers []*Analyzer
	// Globals overrides the whole-program suite; nil means
	// DefaultGlobalAnalyzers.
	Globals []*GlobalAnalyzer
	// Workers bounds the worker pool for file parsing and per-package
	// analysis. 0 means GOMAXPROCS capped at 8; 1 forces sequential
	// execution. Output is byte-identical at any worker count: diagnostics
	// are gathered per package and position-sorted at the end.
	Workers int
}

// Result is one driver run's output.
type Result struct {
	Fset  *token.FileSet
	Diags []Diagnostic
}

// Run loads every package under cfg.Root, runs the per-package analyzer
// suite on each (in parallel across Workers), runs the whole-program
// analyzers, applies allow directives, validates the directives themselves,
// and returns the position-sorted findings.
func Run(cfg Config) (*Result, error) {
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = DefaultAnalyzers()
	}
	globals := cfg.Globals
	if globals == nil {
		globals = DefaultGlobalAnalyzers()
	}
	ra := cfg.ResultAffecting
	if ra == nil {
		ra = func(pkgPath string) bool {
			return strings.Contains("/"+pkgPath+"/", "/internal/")
		}
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, g := range globals {
		known[g.Name] = true
	}

	l := NewLoader(cfg.Root, cfg.ModulePath)
	pkgs, err := l.LoadAll(workers)
	if err != nil {
		return nil, err
	}

	// Per-package phase: each package's analysis is independent and
	// read-only on the shared type information, so packages fan out across
	// the pool. Results land in per-index slots — merge order (and the final
	// position sort) make output independent of scheduling.
	type pkgOut struct {
		diags []Diagnostic
		dirs  []*directive
	}
	outs := make([]pkgOut, len(pkgs))
	runPkg := func(i int) {
		pkg := pkgs[i]
		var diags []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer:        a,
				Pkg:             pkg,
				ResultAffecting: ra(pkg.PkgPath),
				ModulePath:      cfg.ModulePath,
				diags:           &diags,
			})
		}
		outs[i] = pkgOut{diags: diags, dirs: parseDirectives(l.Fset, pkg.Files)}
	}
	if workers <= 1 || len(pkgs) <= 1 {
		for i := range pkgs {
			runPkg(i)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		n := workers
		if n > len(pkgs) {
			n = len(pkgs)
		}
		wg.Add(n)
		for w := 0; w < n; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					runPkg(i)
				}
			}()
		}
		for i := range pkgs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var all []Diagnostic
	var dirs []*directive
	for i := range outs {
		all = append(all, outs[i].diags...)
		dirs = append(dirs, outs[i].dirs...)
	}

	// Whole-program phase: sequential — the global analyzers see every
	// package at once and are cheap relative to loading.
	orders := orderDecls(dirs)
	for _, g := range globals {
		g.Run(&GlobalPass{
			Analyzer: g,
			Pkgs:     pkgs,
			Fset:     l.Fset,
			Orders:   orders,
			diags:    &all,
		})
	}

	all = applyDirectives(l.Fset, all, dirs)
	all = append(all, directiveFindings(dirs, known)...)

	sort.Slice(all, func(i, j int) bool {
		pi, pj := l.Fset.Position(all[i].Pos), l.Fset.Position(all[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return &Result{Fset: l.Fset, Diags: all}, nil
}

// relFile renders a finding's file path relative to base when possible.
func relFile(file, base string) string {
	if base != "" {
		if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}

// Format renders the findings as "file:line: [analyzer] message" lines, with
// file paths relative to base when possible.
func (r *Result) Format(base string) []string {
	out := make([]string, 0, len(r.Diags))
	for _, d := range r.Diags {
		p := r.Fset.Position(d.Pos)
		out = append(out, fmt.Sprintf("%s:%d: [%s] %s", relFile(p.Filename, base), p.Line, d.Analyzer, d.Message))
	}
	return out
}
