package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Config controls one driver run.
type Config struct {
	// Root is the absolute directory of the tree to lint.
	Root string
	// ModulePath is the module's import path; empty for bare fixture trees.
	ModulePath string
	// ResultAffecting overrides the scope predicate for nodeterm. Nil means
	// the default: any package with an "internal" path segment.
	ResultAffecting func(pkgPath string) bool
	// Analyzers overrides the suite; nil means DefaultAnalyzers.
	Analyzers []*Analyzer
}

// Result is one driver run's output.
type Result struct {
	Fset  *token.FileSet
	Diags []Diagnostic
}

// Run loads every package under cfg.Root, runs the analyzer suite on each,
// applies allow directives, validates the directives themselves, and returns
// the position-sorted findings.
func Run(cfg Config) (*Result, error) {
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = DefaultAnalyzers()
	}
	ra := cfg.ResultAffecting
	if ra == nil {
		ra = func(pkgPath string) bool {
			return strings.Contains("/"+pkgPath+"/", "/internal/")
		}
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	l := NewLoader(cfg.Root, cfg.ModulePath)
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}

	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer:        a,
				Pkg:             pkg,
				ResultAffecting: ra(pkg.PkgPath),
				ModulePath:      cfg.ModulePath,
				diags:           &diags,
			})
		}
		dirs := parseDirectives(l.Fset, pkg.Files)
		diags = applyDirectives(l.Fset, diags, dirs)
		diags = append(diags, directiveFindings(dirs, known)...)
		all = append(all, diags...)
	}

	sort.Slice(all, func(i, j int) bool {
		pi, pj := l.Fset.Position(all[i].Pos), l.Fset.Position(all[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return &Result{Fset: l.Fset, Diags: all}, nil
}

// Format renders the findings as "file:line: [analyzer] message" lines, with
// file paths relative to base when possible.
func (r *Result) Format(base string) []string {
	out := make([]string, 0, len(r.Diags))
	for _, d := range r.Diags {
		p := r.Fset.Position(d.Pos)
		file := p.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		out = append(out, fmt.Sprintf("%s:%d: [%s] %s", filepath.ToSlash(file), p.Line, d.Analyzer, d.Message))
	}
	return out
}
