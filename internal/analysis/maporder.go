package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` loops over maps whose bodies let Go's randomized
// iteration order escape: appending to a slice, writing to an output stream,
// or invoking an objective measurement. Any of these turns map order into
// result order, which breaks byte-identical golden reports and deterministic
// journal replay. The sanctioned idioms are (a) iterate, collect keys, sort,
// then loop the sorted slice, (b) append inside the loop and sort the slice
// afterwards in the same function — the analyzer recognizes that pattern —
// or (c) an explicit //cstlint:allow maporder(reason) when order provably
// cannot matter (pure counting, max-merging, map-to-map copies).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration whose order can leak into results or output",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runMapOrderFunc(pass, info, fd)
		}
	}
}

func runMapOrderFunc(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if msg, pos := orderLeak(pass, info, fd, rs); msg != "" {
			pass.Reportf(pos, "map iteration order %s; sort keys first or annotate //cstlint:allow maporder(reason)", msg)
		}
		return true
	})
}

// orderLeak inspects a map-range body for sinks that make iteration order
// observable. It returns a description of the first leak found ("" when the
// loop is order-safe) and the position to report.
func orderLeak(pass *Pass, info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt) (msg string, pos token.Pos) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if msg != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isAppendCall(info, call):
			target := appendTarget(call)
			if target == "" || !sortedAfter(info, fd, rs, target) {
				msg, pos = "reaches "+target+" via append and the slice is never sorted", rs.For
				if target == "" {
					msg = "reaches a slice via append"
				}
			}
		case isOutputCall(info, call):
			msg, pos = "reaches program output", rs.For
		case isObjectiveCall(pass, info, call):
			msg, pos = "decides objective measurement order", rs.For
		}
		return true
	})
	return msg, pos
}

func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	b, ok := calleeObj(info, call).(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendTarget renders the expression append's result is (conventionally)
// assigned back to — the first argument — so sortedAfter can match it
// against later sort calls textually. ExprString is stable enough for the
// `s = append(s, x)` / `m.Field = append(m.Field, x)` shapes the repo uses.
func appendTarget(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	return types.ExprString(call.Args[0])
}

// sortedAfter reports whether target appears as an argument of a sort.* or
// slices.Sort* call after the range loop ends, within the same function —
// the append-then-sort idiom that launders map order back out.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn, ok := calleeObj(info, call).(*types.Func)
		if !ok {
			return true
		}
		if p := pkgPath(fn); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				found = true
			}
		}
		return true
	})
	return found
}

// isOutputCall recognizes writes to program output: fmt's Print/Fprint
// families and Write/WriteString/WriteByte/WriteRune methods (io.Writer,
// bufio, strings.Builder — anything stream-shaped).
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok {
		return false
	}
	if pkgPath(fn) == "fmt" {
		switch fn.Name() {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return true
		}
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// objectiveMethods are the measurement entry points of sim.Objective and the
// engine; calling one per map-range iteration orders measurements by map
// order.
var objectiveMethods = map[string]bool{
	"Measure": true, "MeasureCtx": true, "MeasureBatch": true, "MeasureBatchCtx": true,
}

// isObjectiveCall recognizes objective measurements: the Measure* method
// family on any receiver, plus Run/RunBatch on objective-shaped receivers
// (those that also have a Space method).
func isObjectiveCall(pass *Pass, info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if objectiveMethods[fn.Name()] {
		return true
	}
	if fn.Name() == "Run" || fn.Name() == "RunBatch" {
		return hasMethod(pass.TypeOf(sel.X), "Space")
	}
	return false
}
