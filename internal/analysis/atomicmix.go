package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMix flags plain (non-atomic) accesses to struct fields that are
// accessed atomically anywhere in the program — the bug class -race only
// catches when the schedule happens to interleave the two access modes.
//
// Two field categories are tracked across the whole tree:
//
//   - address-taken function-form fields: any field passed by address to a
//     sync/atomic package function (atomic.AddInt64(&s.f, …),
//     atomic.LoadUint32(&s.f), CompareAndSwap…) is registered as
//     atomic-only; every other direct read, write or address-of of the same
//     field is a finding;
//   - typed atomic fields (atomic.Int64, atomic.Pointer[T], atomic.Value,
//     …): method calls (s.f.Load()) and address-of (&s.f — the sharing
//     idiom) are the sanctioned accesses; copying or overwriting the value
//     itself is a finding (the copy's state is torn loose from the original
//     and go vet's copylocks does not see every route).
//
// Initialization scope is exempt: accesses inside a constructor (a
// package-level function whose name starts with New/new/make/Make) or an
// init function, and fields set in composite literals, are single-goroutine
// by convention. Indirect aliasing (a plain pointer to the field captured
// outside an atomic call) is a documented false-negative boundary.
var AtomicMix = &GlobalAnalyzer{
	Name: "atomicmix",
	Doc:  "flags plain reads/writes of struct fields that are elsewhere accessed via sync/atomic",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *GlobalPass) {
	// Pass 1: register function-form atomic fields and mark their sanctioned
	// &field argument nodes across the whole tree.
	atomicFields := map[*types.Var]bool{}
	sanctioned := map[ast.Node]bool{}
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, ok := calleeObj(info, call).(*types.Func)
				if !ok || pkgPath(fn) != "sync/atomic" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods on typed atomics register nothing
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
						atomicFields[v] = true
						sanctioned[sel] = true
					}
				}
				return true
			})
		}
	}

	// Pass 2: find plain accesses. Walk with a parent stack so each selector
	// can be judged by its immediate context.
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v, ok := info.Uses[sel.Sel].(*types.Var)
				if !ok || !v.IsField() || sanctioned[sel] {
					return true
				}
				parent := parentOf(stack)
				if inConstructorScope(stack) {
					return true
				}
				if atomicFields[v] {
					// The selector may itself be the prefix of a deeper
					// selector (s.f.g) — only the exact field access counts.
					if p, isSel := parent.(*ast.SelectorExpr); isSel && p.X == sel {
						return true
					}
					pass.Reportf(sel.Pos(),
						"field %s is accessed via sync/atomic elsewhere; this plain access races with it — use the atomic API (or move it into a New*/init constructor)",
						fieldDisplay(v))
					return true
				}
				if isTypedAtomic(v.Type()) {
					switch p := parent.(type) {
					case *ast.SelectorExpr:
						if p.X == sel {
							return true // s.f.Load() / deeper selection: sanctioned
						}
					case *ast.UnaryExpr:
						if p.Op.String() == "&" {
							return true // &s.f: the sharing idiom
						}
					case *ast.KeyValueExpr:
						if p.Key == sel {
							return true // composite-literal field name, not an access
						}
					}
					pass.Reportf(sel.Pos(),
						"field %s has atomic type %s; copying or reassigning the value bypasses its atomicity — call its methods or share &%s",
						fieldDisplay(v), v.Type().String(), sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// parentOf returns the node enclosing the top of the stack, or nil.
func parentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

// inConstructorScope reports whether the innermost enclosing function
// declaration is a constructor (New*/new*/make*/Make*) or init, or the
// access sits inside a composite literal — initialization contexts where a
// not-yet-shared value is plainly writable by convention.
func inConstructorScope(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.CompositeLit:
			return true
		case *ast.FuncDecl:
			name := n.Name.Name
			for _, prefix := range []string{"New", "new", "Make", "make"} {
				if strings.HasPrefix(name, prefix) {
					return true
				}
			}
			return name == "init"
		}
	}
	return false
}

// isTypedAtomic reports whether t is one of sync/atomic's value types
// (atomic.Int64, atomic.Pointer[T], atomic.Value, …).
func isTypedAtomic(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldDisplay renders a field as Type.name for findings.
func fieldDisplay(v *types.Var) string {
	// The field's owner is not directly reachable from the Var; render the
	// package-qualified field name, which is unambiguous enough in findings.
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}
