package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// This file is the lock machinery shared by lockcall (calls under a held
// mutex) and lockorder (the whole-program acquisition graph): classifying
// sync.Mutex/RWMutex method calls into lock/unlock events, pairing events
// into held intervals, and resolving a locked expression to its stable
// "class" name (the identity the acquisition graph and the
// //cstlint:lockorder directives speak in).

const (
	evLock = iota
	evUnlock
	evDeferUnlock
)

// lockEvent is one sync.Mutex/RWMutex Lock/Unlock-family call.
type lockEvent struct {
	pos  token.Pos
	key  string   // rendered mutex expression, read locks suffixed " (read)"
	expr ast.Expr // the locked expression itself, for class resolution
	read bool
	kind int
}

// syncLockCall classifies a call as a mutex acquisition or release. Write
// and read sides pair independently — "mu" and "mu (read)" are distinct
// interval keys, so an RLock is only ever closed by an RUnlock (and vice
// versa), and TryLock/TryRLock open an interval exactly like their blocking
// counterparts (the analyzer assumes the acquisition succeeded; the paired
// Unlock closes it).
func syncLockCall(info *types.Info, call *ast.CallExpr) (lockEvent, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return lockEvent{}, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || pkgPath(fn) != "sync" {
		return lockEvent{}, false
	}
	ev := lockEvent{pos: call.Pos(), expr: sel.X}
	switch fn.Name() {
	case "Lock", "TryLock":
		ev.kind, ev.key = evLock, types.ExprString(sel.X)
	case "RLock", "TryRLock":
		ev.kind, ev.read = evLock, true
		ev.key = types.ExprString(sel.X) + " (read)"
	case "Unlock":
		ev.kind, ev.key = evUnlock, types.ExprString(sel.X)
	case "RUnlock":
		ev.kind, ev.read = evUnlock, true
		ev.key = types.ExprString(sel.X) + " (read)"
	default:
		return lockEvent{}, false
	}
	return ev, true
}

// collectLockEvents gathers body's lock events in position order. Function
// literals are skipped — a closure runs at an unknown time, not under this
// frame's locks — except that a directly deferred Unlock/RUnlock is
// recognized as holding to function exit.
func collectLockEvents(info *types.Info, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if ev, ok := syncLockCall(info, st.Call); ok && ev.kind == evUnlock {
				ev.pos, ev.kind = st.Pos(), evDeferUnlock
				events = append(events, ev)
			}
			return false
		case *ast.CallExpr:
			if ev, ok := syncLockCall(info, st); ok {
				events = append(events, ev)
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// lockInterval is one source region during which the keyed mutex is held.
type lockInterval struct {
	from, to token.Pos
	key      string   // rendered mutex expression, e.g. "e.mu"
	expr     ast.Expr // locked expression of the opening event (nil for *Locked)
}

// pairIntervals reconstructs held regions from position-ordered events: each
// unlock closes the most recent open acquisition of the same key, a deferred
// unlock holds to bodyEnd, and acquisitions never released in this function
// (the lock escapes to a caller or another method) are held to bodyEnd.
func pairIntervals(events []lockEvent, bodyEnd token.Pos) []lockInterval {
	held := map[string][]lockEvent{}
	var out []lockInterval
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			held[ev.key] = append(held[ev.key], ev)
		case evUnlock, evDeferUnlock:
			stack := held[ev.key]
			if len(stack) == 0 {
				continue // unlock of a lock taken by the caller; no interval here
			}
			open := stack[len(stack)-1]
			held[ev.key] = stack[:len(stack)-1]
			to := ev.pos
			if ev.kind == evDeferUnlock {
				to = bodyEnd // deferred unlock holds to function exit
			}
			out = append(out, lockInterval{from: open.pos, to: to, key: ev.key, expr: open.expr})
		}
	}
	keys := make([]string, 0, len(held))
	for key := range held {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, open := range held[key] {
			out = append(out, lockInterval{from: open.pos, to: bodyEnd, key: key, expr: open.expr})
		}
	}
	return out
}

// lowerFirst lower-cases the first rune: the class-name rendering that makes
// "Engine" read as "engine" in directives and findings.
func lowerFirst(s string) string {
	r, size := utf8.DecodeRuneInString(s)
	if r == utf8.RuneError {
		return s
	}
	return string(unicode.ToLower(r)) + s[size:]
}

// namedTypeName resolves t (through pointers) to its named type's name, or
// "" when t is unnamed.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// mutexClass names the lock behind expr for the acquisition graph:
//
//   - a mutex field gives "<type>.<field>" with the owning type's first
//     rune lowered ("Engine.mu" reads as "engine.mu"), which is also the
//     grammar //cstlint:lockorder directives use;
//   - a package-level mutex var gives "<pkg>.<var>";
//   - a struct embedding sync.Mutex locked through its promoted method
//     gives "<type>.Mutex";
//   - locals, parameters and anything else give "" — unclassified locks
//     take part in lockcall's interval tracking but not in the global
//     graph (a local mutex cannot be re-acquired by a callee).
//
// Two types with the same name in different packages collapse onto one
// class; the repo's type names are distinct, and a collision only ever
// merges orderings (conservative for cycle detection).
func mutexClass(info *types.Info, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	switch x := expr.(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			if name := namedTypeName(info.TypeOf(x.X)); name != "" {
				return lowerFirst(name) + "." + v.Name()
			}
			return ""
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && !v.IsField() {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
			return ""
		}
	}
	// A promoted Lock on a struct embedding sync.Mutex: expr is the struct.
	if name := namedTypeName(info.TypeOf(expr)); name != "" && name != "Mutex" && name != "RWMutex" {
		return lowerFirst(name) + ".Mutex"
	}
	return ""
}

// funcDisplay renders fn for witness chains: "pkg.Func" or
// "pkg.(*Recv).Method".
func funcDisplay(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t, star = p.Elem(), "*"
		}
		if n, isNamed := t.(*types.Named); isNamed {
			return pkg + "(" + star + n.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// isLockedConvention reports whether fd follows the repo's *Locked naming
// convention: the caller holds the receiver's lock over the whole body.
func isLockedConvention(fd *ast.FuncDecl) bool {
	return strings.HasSuffix(fd.Name.Name, "Locked")
}
