package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags error returns silently discarded from calls into this
// module, os, or io — the call sites where a swallowed error means a corrupt
// journal, a missing artifact, or a phantom measurement. A discard is
// "silent" when the call is a bare expression statement (or defer/go
// statement); the sanctioned opt-out is an explicit `_ = f()` assignment,
// which stays greppable and visibly deliberate. Third-party/stdlib calls
// outside os and io (fmt.Println, strings.Builder writes) are not flagged:
// the suite polices the repo's own failure surface, not Go at large.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags silently discarded error returns from module-internal, os, and io calls",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, how = asCall(st.X), "discards"
			case *ast.DeferStmt:
				call, how = st.Call, "defers and discards"
			case *ast.GoStmt:
				call, how = st.Call, "discards (in a goroutine)"
			default:
				return true
			}
			if call == nil {
				return true
			}
			obj := calleeObj(info, call)
			if obj == nil || !returnsError(obj) || !pass.errScoped(obj) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s the error returned by %s; handle it or assign it to _ explicitly", how, calleeName(call, obj))
			return true
		})
	}
}

func asCall(x ast.Expr) *ast.CallExpr {
	call, _ := ast.Unparen(x).(*ast.CallExpr)
	return call
}

// errScoped reports whether the callee is inside errdrop's jurisdiction:
// this module (any package under ModulePath, including the package being
// analyzed), os, or io.
func (p *Pass) errScoped(obj types.Object) bool {
	path := pkgPath(obj)
	switch {
	case path == "os" || path == "io":
		return true
	case path == p.Pkg.PkgPath:
		return true
	case p.ModulePath != "" &&
		(path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/")):
		return true
	}
	return false
}

// calleeName renders the call target the way the source spells it, for the
// diagnostic message.
func calleeName(call *ast.CallExpr, obj types.Object) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X) + "." + obj.Name()
	}
	return obj.Name()
}
