package analysis

import (
	"go/ast"
	"go/types"
)

// NoDeterm flags nondeterminism sources in result-affecting packages: raw
// wall-clock reads (time.Now, time.Since, time.Until) and global or
// visibly-unseeded math/rand use. Determinism is load-bearing here — journal
// replay re-executes a campaign and expects the identical measurement
// sequence (DESIGN.md §6), and golden tests pin results byte-for-byte — so
// wall-clock reads must route through the one injectable seam, engine.Clock.
// Referencing time.Now as a *value* (installing it as a Clock default) is
// the sanctioned pattern and is not flagged; calling it is.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "flags wall-clock and global/unseeded math/rand calls in result-affecting packages",
	Run:  runNoDeterm,
}

// randSourceCtors are the seeded-source constructors whose direct call as
// the rand.New argument makes the seed evident at the call site.
var randSourceCtors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func runNoDeterm(pass *Pass) {
	if !pass.ResultAffecting {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(info, call, "time", "Now", "Since", "Until") {
				obj := calleeObj(info, call)
				pass.Reportf(call.Pos(),
					"time.%s called in a result-affecting package; read wall time through the engine.Clock seam (engine.Now / engine.Time)", obj.Name())
				return true
			}
			for _, randPath := range []string{"math/rand", "math/rand/v2"} {
				obj := calleeObj(info, call)
				fn, ok := obj.(*types.Func)
				if !ok || pkgPath(fn) != randPath {
					continue
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					continue // methods on a seeded *rand.Rand are fine
				}
				switch {
				case fn.Name() == "New":
					if !seededSourceArg(info, call, randPath) {
						pass.Reportf(call.Pos(),
							"rand.New whose source is not a direct rand.NewSource(seed) call; seed provenance must be evident at the construction site")
					}
				case randSourceCtors[fn.Name()] || fn.Name() == "NewZipf":
					// Source constructors carry the seed; fine on their own.
				default:
					pass.Reportf(call.Pos(),
						"global math/rand.%s call shares process-wide state; draw from a seeded rand.New(rand.NewSource(seed)) instead", fn.Name())
				}
			}
			return true
		})
	}
}

// seededSourceArg reports whether the rand.New call's argument is a direct
// seeded-source constructor call from the same rand package.
func seededSourceArg(info *types.Info, call *ast.CallExpr, randPath string) bool {
	if len(call.Args) != 1 {
		return false
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeObj(info, inner)
	fn, ok := obj.(*types.Func)
	if !ok || pkgPath(fn) != randPath {
		return false
	}
	return randSourceCtors[fn.Name()]
}
