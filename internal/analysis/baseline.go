package analysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"strings"
)

// This file is the baseline + JSON surface of the driver, the landing
// mechanism for new analyzers: a committed baseline file suppresses known
// findings so a stricter check can gate CI before the tree is fully clean,
// while any finding *not* in the baseline still fails. Baseline entries are
// line-number-free — "file: [analyzer] message" — so unrelated edits that
// shift code do not churn the file; identical findings are counted, so a
// baseline with N copies of one entry admits exactly N occurrences.

// JSONDiagnostic is one finding in -json output.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// FormatJSON renders the findings as an indented JSON array (empty
// findings render as []), with file paths relative to base when possible.
func (r *Result) FormatJSON(base string) ([]byte, error) {
	out := make([]JSONDiagnostic, 0, len(r.Diags))
	for _, d := range r.Diags {
		p := r.Fset.Position(d.Pos)
		out = append(out, JSONDiagnostic{
			File:     relFile(p.Filename, base),
			Line:     p.Line,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// Baseline is a multiset of accepted findings.
type Baseline struct {
	counts map[string]int
}

// baselineKey is the line-number-free identity of one finding.
func baselineKey(file, analyzer, message string) string {
	return file + ": [" + analyzer + "] " + message
}

// ParseBaseline reads baseline content: one finding key per line, blank
// lines and #-comments ignored.
func ParseBaseline(data []byte) *Baseline {
	b := &Baseline{counts: map[string]int{}}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.counts[line]++
	}
	return b
}

// LoadBaseline reads a baseline file from disk.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseBaseline(data), nil
}

// Len returns the number of baseline entries (counting duplicates).
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}

// ApplyBaseline returns a Result holding only the findings not admitted by
// the baseline, plus how many were suppressed. Findings are keyed with
// paths relative to base — the same rendering BaselineLines writes — so a
// baseline travels with the repo, not the machine.
func (r *Result) ApplyBaseline(b *Baseline, base string) (*Result, int) {
	remaining := map[string]int{}
	for k, c := range b.counts {
		remaining[k] = c
	}
	kept := make([]Diagnostic, 0, len(r.Diags))
	suppressed := 0
	for _, d := range r.Diags {
		p := r.Fset.Position(d.Pos)
		k := baselineKey(relFile(p.Filename, base), d.Analyzer, d.Message)
		if remaining[k] > 0 {
			remaining[k]--
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return &Result{Fset: r.Fset, Diags: kept}, suppressed
}

// BaselineLines renders the findings in baseline format (one key per
// occurrence, already position-sorted by Run).
func (r *Result) BaselineLines(base string) []string {
	out := make([]string, 0, len(r.Diags))
	for _, d := range r.Diags {
		p := r.Fset.Position(d.Pos)
		out = append(out, baselineKey(relFile(p.Filename, base), d.Analyzer, d.Message))
	}
	return out
}
