// Package lo is the lockorder fixture: a cycle between alpha.mu and
// beta.mu, contradictions of declared orders (direct and through a call
// chain), and properly ordered/suppressed negatives. Each case uses its own
// lock pair — a contradiction plus a correct use of the same pair would be
// a real cycle, not the case under test.
package lo

import "sync"

//cstlint:lockorder gamma.mu < delta.mu
//cstlint:lockorder eps.mu < zeta.mu
//cstlint:lockorder kappa.mu < lambda.mu
//cstlint:lockorder theta.mu < omega.mu

type alpha struct{ mu sync.Mutex }

type beta struct{ mu sync.Mutex }

// lockAB acquires alpha.mu then (via lockB) beta.mu: the A -> B half of the
// cycle. The component finding lands on the first in-cycle edge's witness —
// this call site.
func lockAB(a *alpha, b *beta) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockB(b) // want lockorder "potential deadlock: lock-order cycle among alpha.mu, beta.mu"
}

func lockB(b *beta) {
	b.mu.Lock()
	defer b.mu.Unlock()
}

// lockBA acquires beta.mu then alpha.mu directly: the B -> A half.
func lockBA(a *alpha, b *beta) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
}

type gamma struct{ mu sync.Mutex }

type delta struct{ mu sync.Mutex }

// wrongOrder acquires gamma.mu while delta.mu is held although gamma.mu is
// declared to come first.
func wrongOrder(g *gamma, d *delta) {
	d.mu.Lock()
	defer d.mu.Unlock()
	g.mu.Lock() // want lockorder "contradicting the declared order gamma.mu < delta.mu"
	defer g.mu.Unlock()
}

// disjoint takes the same pair without nesting — no edges, no finding.
func disjoint(g *gamma, d *delta) {
	d.mu.Lock()
	d.mu.Unlock()
	g.mu.Lock()
	g.mu.Unlock()
}

type eps struct{ mu sync.Mutex }

type zeta struct{ mu sync.Mutex }

// viaChain holds zeta.mu across a call that eventually takes eps.mu — the
// contradiction is only visible through the call graph.
func viaChain(e *eps, z *zeta) {
	z.mu.Lock()
	defer z.mu.Unlock()
	helperOne(e) // want lockorder "contradicting the declared order eps.mu < zeta.mu"
}

func helperOne(e *eps) {
	helperTwo(e)
}

func helperTwo(e *eps) {
	e.mu.Lock()
	defer e.mu.Unlock()
}

type kappa struct{ mu sync.Mutex }

type lambda struct{ mu sync.Mutex }

// rightOrder nests in the declared order: an edge, but no finding.
func rightOrder(k *kappa, l *lambda) {
	k.mu.Lock()
	defer k.mu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
}

type theta struct{ mu sync.Mutex }

type omega struct{ mu sync.Mutex }

// suppressed contradicts the theta/omega order but carries an allow.
func suppressed(t *theta, i *omega) {
	i.mu.Lock()
	defer i.mu.Unlock()
	t.mu.Lock() //cstlint:allow lockorder(fixture: intentional inversion under test)
	defer t.mu.Unlock()
}
