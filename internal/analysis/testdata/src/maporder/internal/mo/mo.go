// Package mo is the maporder fixture: map-range loops whose bodies leak
// iteration order into slices, output, and objective measurements, plus the
// sanctioned sorted/annotated escapes.
package mo

import (
	"fmt"
	"io"
	"sort"
)

type obj struct{}

func (obj) Measure(k int) (float64, error) { return 0, nil }

func AppendUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m { // want maporder "never sorted"
		out = append(out, v)
	}
	return out
}

func PrintLoop(w io.Writer, m map[string]int) {
	for k, v := range m { // want maporder "reaches program output"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func MeasureLoop(o obj, m map[string]int) {
	for _, v := range m { // want maporder "objective measurement order"
		_, _ = o.Measure(v)
	}
}

// SortedAfter is the sanctioned append-then-sort idiom: the later sort
// launders iteration order back out.
func SortedAfter(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Invert writes map-to-map: no ordered sink, no finding.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func Suppressed(m map[string]int) []int {
	var out []int
	//cstlint:allow maporder(fixture demonstrates suppression)
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
