// Package app is a nodeterm fixture: a result-affecting package (its import
// path has an internal segment) exercising every wall-clock and RNG rule.
package app

import (
	"math/rand"
	"time"
)

// Clock mirrors the production seam: holding time.Now as a *value* is the
// sanctioned pattern and must not be flagged.
var Clock func() time.Time = time.Now

func Stamp() int64 {
	return time.Now().UnixNano() // want nodeterm "time.Now called"
}

func Age(t time.Time) time.Duration {
	return time.Since(t) // want nodeterm "time.Since called"
}

func Roll() int {
	return rand.Intn(6) // want nodeterm "math/rand.Intn"
}

func HiddenSeed() *rand.Rand {
	src := rand.NewSource(42)
	return rand.New(src) // want nodeterm "seed provenance"
}

// SeededRNG is the sanctioned construction: the seed is evident at the site.
func SeededRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SeededDraw draws from an explicitly seeded generator: methods are fine.
func SeededDraw(r *rand.Rand) int {
	return r.Intn(6)
}

func Suppressed() time.Time {
	//cstlint:allow nodeterm(fixture demonstrates suppression)
	return time.Now()
}
