// Package tool is the nodeterm negative fixture: no internal path segment,
// so it is not result-affecting and wall-clock reads are unrestricted.
package tool

import "time"

func Stamp() time.Time { return time.Now() }
