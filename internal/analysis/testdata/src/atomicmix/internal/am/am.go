// Package am is the atomicmix fixture: fields accessed via sync/atomic in
// both forms (function-form on a plain int64, typed atomic values) mixed
// with plain accesses, plus the sanctioned constructor / sharing idioms.
package am

import "sync/atomic"

type counter struct {
	hits  int64        // accessed via atomic.AddInt64 — function form
	gauge atomic.Int64 // typed atomic
	name  string       // never atomic: plain access is fine
}

// NewCounter is constructor scope: plain writes are sanctioned.
func NewCounter(name string) *counter {
	c := &counter{name: name}
	c.hits = 0
	return c
}

// bump is the sanctioned function-form access that registers hits.
func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

// badRead reads hits without the atomic API.
func (c *counter) badRead() int64 {
	return c.hits // want atomicmix "field am.hits is accessed via sync/atomic elsewhere"
}

// badWrite resets hits with a plain store.
func (c *counter) badWrite() {
	c.hits = 0 // want atomicmix "field am.hits is accessed via sync/atomic elsewhere"
}

// badCopy copies the typed atomic by value, tearing it loose.
func (c *counter) badCopy() atomic.Int64 {
	return c.gauge // want atomicmix "copying or reassigning the value bypasses its atomicity"
}

// okLoad uses the typed atomic's methods.
func (c *counter) okLoad() int64 {
	return c.gauge.Load()
}

// share passes the typed atomic by address — the sanctioned sharing idiom.
func (c *counter) share() *atomic.Int64 {
	return &c.gauge
}

// okName reads the never-atomic field plainly.
func (c *counter) okName() string {
	return c.name
}

// suppressed carries an allow for a deliberate racy fast-path read.
func (c *counter) suppressed() int64 {
	return c.hits //cstlint:allow atomicmix(fixture: deliberate racy read under test)
}
