// Package dv is the directive-validation fixture. A want-above comment
// pins the expected finding to the directive's own line — the directive
// grammar requires the comment to end at the closing paren, so the
// expectation cannot share its line.
package dv

import "os"

//cstlint:allow errdrop
// want-above directive "must match"

//cstlint:allow errdrop()
// want-above directive "non-empty reason"

//cstlint:allow nosuchanalyzer(reason)
// want-above directive "unknown analyzer"

//cstlint:allow errdrop(this suppresses nothing)
// want-above directive "stale allow"

// Used holds the one live allow: it suppresses a real finding, so the
// directive validator stays silent about it.
func Used(path string) {
	//cstlint:allow errdrop(fixture demonstrates a live allow)
	os.Remove(path)
}
