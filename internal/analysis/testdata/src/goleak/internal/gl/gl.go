// Package gl is the goleak fixture: goroutines with and without a join or
// cancellation path, and context-accepting functions that do or do not pass
// their context along.
package gl

import (
	"context"
	"sync"
)

// leak spawns a goroutine nothing can stop or wait for.
func leak() {
	go func() { // want goleak "goroutine is neither joined"
		work()
	}()
}

// leakNamed hands the callee nothing it could govern its lifetime with.
func leakNamed() {
	go work() // want goleak "no context, channel or WaitGroup handed to it"
}

func work() {}

// joined is governed: the goroutine calls wg.Done.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// watcher is governed: the goroutine selects on ctx.Done.
func watcher(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		}
	}()
}

// handoff is governed: the spawner receives the goroutine's send.
func handoff() error {
	errc := make(chan error, 1)
	go func() {
		errc <- run()
	}()
	return <-errc
}

func run() error { return nil }

// governedNamed hands the callee a stop channel.
func governedNamed(stop chan struct{}) {
	go pump(stop)
}

func pump(stop chan struct{}) {
	<-stop
}

// suppressed is a deliberate fire-and-forget with an allow.
func suppressed() {
	go work() //cstlint:allow goleak(fixture: fire-and-forget under test)
}

// dropCtx ignores its context although a Ctx sibling exists.
func dropCtx(ctx context.Context, s *store) {
	s.Flush() // want goleak "drops the in-scope context"
}

// backgroundCtx calls a Ctx-suffixed callee with a fresh background context.
func backgroundCtx(ctx context.Context, s *store) {
	s.FlushCtx(context.Background()) // want goleak "called with context.Background/TODO although a context parameter is in scope"
}

// propagates passes the in-scope context: no finding.
func propagates(ctx context.Context, s *store) {
	s.FlushCtx(ctx)
}

// derived passes a context derived from the parameter: no finding.
func derived(ctx context.Context, s *store) {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	s.FlushCtx(c)
}

type store struct{}

func (s *store) Flush() {}

func (s *store) FlushCtx(ctx context.Context) {}
