// Package other sits outside rawfs jurisdiction (not journal/store/campaign):
// the very calls flagged next door are fine here.
package other

import "os"

func Fine(path string) error {
	return os.Remove(path)
}

func AlsoFine(path string) ([]byte, error) {
	return os.ReadFile(path)
}
