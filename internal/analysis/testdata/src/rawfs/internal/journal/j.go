// Package journal is the rawfs fixture: direct os/ioutil filesystem calls
// inside a durable-storage package path, non-filesystem os negatives, and
// the suppression escape. Positives are written in error-handled form so
// errdrop stays quiet except where a want says otherwise.
package journal

import (
	"io/ioutil"
	"os"
)

func WriteState(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want rawfs "os.WriteFile"
}

func OpenSegment(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644) // want rawfs "os.OpenFile"
}

// DropAndFlag composes with errdrop: a bare fs call is both a seam bypass
// and a swallowed error.
func DropAndFlag(path string) {
	os.Remove(path) // want rawfs "os.Remove" // want errdrop "os.Remove"
}

func Legacy(path string) ([]byte, error) {
	return ioutil.ReadFile(path) // want rawfs "ioutil.ReadFile"
}

// NotFS: process-scoped os calls are outside rawfs.
func NotFS() (int, string) {
	return os.Getpid(), os.Getenv("HOME")
}

// ConstantsAndVars: os names that are not calls never fire.
func ConstantsAndVars(err error) bool {
	_ = os.O_RDWR
	return err == os.ErrNotExist
}

func Suppressed(path string) error {
	//cstlint:allow rawfs(fixture demonstrates suppression)
	return os.Rename(path, path+".bak")
}
