// Package ed is the errdrop fixture: silently discarded error returns from
// same-package, os, and io calls, plus the sanctioned `_ =` opt-out and
// out-of-jurisdiction negatives.
package ed

import (
	"fmt"
	"os"
)

func helper() error { return nil }

func DropSamePackage() {
	helper() // want errdrop "discards the error returned by helper"
}

func DropOS(path string) {
	os.Remove(path) // want errdrop "os.Remove"
}

func DeferDrop(f *os.File) {
	defer f.Close() // want errdrop "defers and discards"
}

func GoDrop() {
	go helper() // want errdrop "goroutine" // want goleak "outlive its owner"
}

// ExplicitDiscard is the sanctioned opt-out: visible and greppable.
func ExplicitDiscard(path string) {
	_ = os.Remove(path)
}

// NotScoped: fmt returns an error too, but it is outside errdrop's
// jurisdiction (module, os, io only).
func NotScoped() {
	fmt.Println("x")
}

func Suppressed(path string) {
	//cstlint:allow errdrop(fixture demonstrates suppression)
	os.Remove(path)
}
