// Package lc is the lockcall fixture: objective measurements and user
// callbacks invoked inside Lock/Unlock regions, defer-Unlock regions, and
// *Locked-convention functions, plus after-unlock and local-closure
// negatives.
package lc

import "sync"

type span struct{}

type obj struct{}

func (obj) Measure(k int) (float64, error) { return 0, nil }
func (obj) Space() *span                   { return nil }
func (obj) Run(k int) error                { return nil }

type engine struct {
	mu       sync.Mutex
	o        obj
	callback func(int)
}

func (e *engine) UnderLock(k int) {
	e.mu.Lock()
	_, _ = e.o.Measure(k) // want lockcall "objective e.o.Measure"
	e.mu.Unlock()
}

func (e *engine) DeferUnlock(k int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_ = e.o.Run(k) // want lockcall "objective e.o.Run"
}

func (e *engine) CallbackUnderLock(k int) {
	e.mu.Lock()
	e.callback(k) // want lockcall "callback field e.callback"
	e.mu.Unlock()
}

func (e *engine) ParamUnderLock(f func() error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_ = f() // want lockcall "callback parameter f"
}

func (e *engine) bestLocked(k int) float64 {
	v, _ := e.o.Measure(k) // want lockcall "objective e.o.Measure"
	return v
}

// AfterUnlock measures outside the critical section: no finding.
func (e *engine) AfterUnlock(k int) {
	e.mu.Lock()
	e.mu.Unlock()
	_, _ = e.o.Measure(k)
}

// LocalClosure calls this function's own code under the lock: not flagged.
func (e *engine) LocalClosure(k int) {
	add := func(int) {}
	e.mu.Lock()
	add(k)
	e.mu.Unlock()
}

func (e *engine) Suppressed(k int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//cstlint:allow lockcall(fixture demonstrates suppression)
	e.callback(k)
}

type store struct {
	rw sync.RWMutex
	o  obj
}

// TryLockHeld measures inside a TryLock success branch: the analyzer
// assumes the acquisition succeeds, so this is a locked region.
func (s *store) TryLockHeld(k int) {
	if s.rw.TryLock() {
		defer s.rw.Unlock()
		_, _ = s.o.Measure(k) // want lockcall "objective s.o.Measure"
	}
}

// ReadHeld measures under the read side; the interval is keyed separately
// from the write side.
func (s *store) ReadHeld(k int) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_, _ = s.o.Measure(k) // want lockcall "while s.rw (read) is held"
}

// ReadReleased pairs RLock with RUnlock correctly: a write-side Unlock must
// not close a read interval, and the measurement runs lock-free.
func (s *store) ReadReleased(k int) {
	s.rw.RLock()
	s.rw.RUnlock()
	_, _ = s.o.Measure(k)
}
