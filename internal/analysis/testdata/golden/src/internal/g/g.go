// Package g is the driver golden fixture: two findings from two analyzers,
// pinning output order and formatting.
package g

import (
	"os"
	"time"
)

func Stamp() int64 {
	return time.Now().UnixNano()
}

func Drop(path string) {
	os.Remove(path)
}
