package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoLeak enforces the goroutine-lifecycle discipline the service and engine
// rely on: every spawned goroutine must be joined or cancellable before its
// owner returns, and a context handed to a function must flow into the
// context-aware callees it invokes.
//
// A `go` statement is accepted when the goroutine is provably governed:
//
//   - joined: its body calls Done() on a sync.WaitGroup (the spawner's
//     Wait/Add pairing is the repo convention the torture suite exercises);
//   - watching: its body contains a select statement or a channel receive —
//     it can observe a context.Done or stop channel it was handed;
//   - hand-off: its body sends on a channel that the spawning function
//     itself receives from (the `errc <- srv.ListenAndServe()` idiom);
//   - for `go f(…)` on a named function: any argument of context, channel
//     or *sync.WaitGroup type makes the callee governable, and an in-package
//     callee whose body is joined/watching by the rules above is accepted.
//
// Anything else is a leak candidate: nothing can stop it and nothing waits
// for it.
//
// Separately, inside any function that takes a context.Context parameter,
// a call that drops that context is flagged:
//
//   - a *Ctx-suffixed callee invoked with context.Background()/TODO()
//     instead of the in-scope context;
//   - a callee with a *Ctx-suffixed sibling (method M where MCtx exists on
//     the same type, or package function f where fCtx exists) invoked with
//     no context-typed argument at all.
//
// Calls passing the context itself, a derived context (anything
// context-typed), or any expression mentioning the context parameter are
// accepted.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "flags unjoined/uncancellable goroutines and context-dropping calls",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStmts(pass, info, fd)
			checkCtxFlow(pass, info, fd)
		}
	}
}

// checkGoStmts applies the goroutine-lifecycle rules to every go statement
// in fd.
func checkGoStmts(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			if goroutineGoverned(info, lit.Body, fd.Body) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine is neither joined (no WaitGroup Done) nor cancellable (no select/receive) nor handed off on a channel the spawner drains; it can outlive its owner")
			return true
		}
		// Named callee: governable when handed a context, channel or
		// WaitGroup, or when its in-package body is itself governed.
		for _, arg := range g.Call.Args {
			if isGovernanceArg(info.TypeOf(arg)) {
				return true
			}
		}
		if callee, ok := calleeObj(info, g.Call).(*types.Func); ok {
			if body := funcBodyIn(pass.Pkg, callee); body != nil && goroutineGoverned(info, body, fd.Body) {
				return true
			}
		}
		pass.Reportf(g.Pos(),
			"goroutine runs a function with no context, channel or WaitGroup handed to it and no join/watch in its body; it can outlive its owner")
		return true
	})
}

// goroutineGoverned reports whether a goroutine body is joined, watching, or
// hands its result to the spawner.
func goroutineGoverned(info *types.Info, body *ast.BlockStmt, spawner *ast.BlockStmt) bool {
	governed := false
	var sendTargets []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SelectStmt:
			governed = true
		case *ast.UnaryExpr:
			if st.Op.String() == "<-" {
				governed = true // receive: can block on / observe a signal
			}
		case *ast.SendStmt:
			if obj := chanObject(info, st.Chan); obj != nil {
				sendTargets = append(sendTargets, obj)
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok &&
					fn.Name() == "Done" && pkgPath(fn) == "sync" {
					governed = true // wg.Done: joined by the spawner's Wait
				}
			}
		}
		return !governed
	})
	if governed {
		return true
	}
	if len(sendTargets) == 0 {
		return false
	}
	// Hand-off: the spawner receives from a channel the goroutine sends on.
	received := false
	ast.Inspect(spawner, func(n ast.Node) bool {
		un, ok := n.(*ast.UnaryExpr)
		if !ok || un.Op.String() != "<-" {
			return true
		}
		if obj := chanObject(info, un.X); obj != nil {
			for _, t := range sendTargets {
				if t == obj {
					received = true
				}
			}
		}
		return !received
	})
	return received
}

// chanObject resolves a channel expression to its variable object, when it
// is a simple identifier or selector.
func chanObject(info *types.Info, expr ast.Expr) types.Object {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// isGovernanceArg reports whether an argument of this type lets the callee
// govern its own lifetime: a context, any channel, or a WaitGroup pointer.
func isGovernanceArg(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) {
		return true
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		if n, ok := p.Elem().(*types.Named); ok {
			return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// funcBodyIn returns fn's body when it is declared in pkg, else nil.
func funcBodyIn(pkg *Package, fn *types.Func) *ast.BlockStmt {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && pkg.Info.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// checkCtxFlow flags calls inside a context-accepting function that drop
// the context.
func checkCtxFlow(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	ctxParams := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && name.Name != "_" && isContextType(obj.Type()) {
					ctxParams[obj] = true
				}
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := calleeObj(info, call).(*types.Func)
		if !ok {
			return true
		}
		hasCtxTyped := false
		mentionsParam := false
		hasBackground := false
		for _, arg := range call.Args {
			if t := info.TypeOf(arg); t != nil && isContextType(t) {
				hasCtxTyped = true
				if isBackgroundCall(info, arg) {
					hasBackground = true
				}
			}
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && ctxParams[info.Uses[id]] {
					mentionsParam = true
				}
				return !mentionsParam
			})
		}
		if mentionsParam {
			return true
		}
		name := fn.Name()
		switch {
		case strings.HasSuffix(name, "Ctx") && hasBackground:
			pass.Reportf(call.Pos(),
				"%s called with context.Background/TODO although a context parameter is in scope; pass the caller's context", name)
		case !strings.HasSuffix(name, "Ctx") && !hasCtxTyped && hasCtxSibling(fn):
			pass.Reportf(call.Pos(),
				"%s drops the in-scope context; %sCtx exists — pass the caller's context through it", name, name)
		}
		return true
	})
}

// isBackgroundCall reports whether expr is a direct context.Background() or
// context.TODO() call.
func isBackgroundCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isPkgFunc(info, call, "context", "Background", "TODO")
}

// hasCtxSibling reports whether fn has a context-aware variant: a method
// named <fn>Ctx on the same receiver type, or a package-level function
// <fn>Ctx in the same package, whose first parameter is a context.
func hasCtxSibling(fn *types.Func) bool {
	want := fn.Name() + "Ctx"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	var sibling types.Object
	if recv := sig.Recv(); recv != nil {
		sibling, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
	} else if fn.Pkg() != nil {
		sibling = fn.Pkg().Scope().Lookup(want)
	}
	sfn, ok := sibling.(*types.Func)
	if !ok {
		return false
	}
	ssig, ok := sfn.Type().(*types.Signature)
	if !ok || ssig.Params().Len() == 0 {
		return false
	}
	return isContextType(ssig.Params().At(0).Type())
}
