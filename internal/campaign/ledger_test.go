package campaign

import (
	"errors"
	"testing"
)

// checkInvariant asserts the ledger invariant SpentS + ReservedS <= BudgetS
// for every metered tenant.
func checkInvariant(t *testing.T, l *Ledgers) {
	t.Helper()
	for _, s := range l.Snapshots() {
		if s.BudgetS > 0 && s.SpentS+s.ReservedS > s.BudgetS+1e-9 {
			t.Fatalf("tenant %s overspent: spent %g + reserved %g > budget %g",
				s.Tenant, s.SpentS, s.ReservedS, s.BudgetS)
		}
	}
}

func TestLedgerReserveSettle(t *testing.T) {
	l := NewLedgers(10)
	if err := l.Reserve("a", 4, false); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve("a", 4, false); err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, l)
	if err := l.Reserve("a", 4, false); !errors.Is(err, ErrTenantBudget) {
		t.Fatalf("third reservation should exhaust the budget, got %v", err)
	}
	// Settling at under-spend refunds headroom for a new admission.
	l.Settle("a", 4, 1.5)
	checkInvariant(t, l)
	if err := l.Reserve("a", 4, false); err != nil {
		t.Fatalf("refunded headroom refused: %v", err)
	}
	snap := l.Snapshot("a")
	if snap.SpentS != 1.5 || snap.ReservedS != 8 {
		t.Fatalf("snapshot %+v, want spent 1.5 reserved 8", snap)
	}
}

func TestLedgerSettleCapsAtReservation(t *testing.T) {
	l := NewLedgers(10)
	if err := l.Reserve("a", 5, false); err != nil {
		t.Fatal(err)
	}
	// The engine may overshoot a campaign budget by one episode; the tenant
	// ledger must never see more than the reservation.
	l.Settle("a", 5, 7.2)
	snap := l.Snapshot("a")
	if snap.SpentS != 5 {
		t.Fatalf("settled spend %g, want capped at reservation 5", snap.SpentS)
	}
	checkInvariant(t, l)
}

func TestLedgerForceBypassesAdmission(t *testing.T) {
	l := NewLedgers(3)
	if err := l.Reserve("a", 100, true); err != nil {
		t.Fatalf("forced restart re-admission refused: %v", err)
	}
	if err := l.Reserve("a", 1, false); !errors.Is(err, ErrTenantBudget) {
		t.Fatalf("unforced reservation should now be refused, got %v", err)
	}
}

func TestLedgerUnmeteredTenant(t *testing.T) {
	l := NewLedgers(0)
	for i := 0; i < 50; i++ {
		if err := l.Reserve("free", 1000, false); err != nil {
			t.Fatalf("unmetered tenant refused: %v", err)
		}
	}
	l.SetBudget("free", 1)
	if err := l.Reserve("free", 1, false); !errors.Is(err, ErrTenantBudget) {
		t.Fatalf("newly-metered tenant should be refused, got %v", err)
	}
}

func TestLedgerRestoreSpent(t *testing.T) {
	l := NewLedgers(10)
	l.RestoreSpent("a", 6)
	if err := l.Reserve("a", 5, false); !errors.Is(err, ErrTenantBudget) {
		t.Fatalf("restored spend should count against admissions, got %v", err)
	}
	if err := l.Reserve("a", 3, false); err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, l)
}

func TestLedgerSnapshotsSorted(t *testing.T) {
	l := NewLedgers(0)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		l.RestoreSpent(name, 1)
	}
	snaps := l.Snapshots()
	if len(snaps) != 3 || snaps[0].Tenant != "alpha" || snaps[1].Tenant != "mid" || snaps[2].Tenant != "zeta" {
		t.Fatalf("snapshots not name-sorted: %+v", snaps)
	}
}
