package campaign

import (
	"errors"
	"testing"
	"time"
)

// fakeClock returns a Clock ticking one second per call, so transition
// timestamps are deterministic and strictly increasing.
func fakeClock() func() time.Time {
	var n int64
	return func() time.Time {
		n++
		return time.Unix(n, 0)
	}
}

func TestLifecycleTransitions(t *testing.T) {
	cases := []struct {
		name string
		path []State
		ok   bool
	}{
		{"run-complete", []State{StateRunning, StateCompleted}, true},
		{"run-fail", []State{StateRunning, StateFailed}, true},
		{"run-cancel", []State{StateRunning, StateCanceled}, true},
		{"run-pause-run-complete", []State{StateRunning, StatePaused, StateRunning, StateCompleted}, true},
		{"pause-cancel", []State{StateRunning, StatePaused, StateCanceled}, true},
		{"pending-cancel", []State{StateCanceled}, true},
		{"pending-fail", []State{StateFailed}, true},
		{"pending-complete", []State{StateCompleted}, false},
		{"pending-pause", []State{StatePaused}, false},
		{"double-complete", []State{StateRunning, StateCompleted, StateCompleted}, false},
		{"cancel-then-run", []State{StateCanceled, StateRunning}, false},
		{"complete-then-cancel", []State{StateRunning, StateCompleted, StateCanceled}, false},
		{"fail-then-pause", []State{StateRunning, StateFailed, StatePaused}, false},
		{"run-run", []State{StateRunning, StateRunning}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lc := NewLifecycle(fakeClock())
			var err error
			for _, s := range tc.path {
				if err = lc.To(s, "t"); err != nil {
					break
				}
			}
			if tc.ok && err != nil {
				t.Fatalf("path %v: unexpected %v", tc.path, err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatalf("path %v: expected ErrTransition", tc.path)
				}
				if !errors.Is(err, ErrTransition) {
					t.Fatalf("path %v: got %v, want ErrTransition", tc.path, err)
				}
			}
		})
	}
}

func TestLifecycleHistory(t *testing.T) {
	lc := NewLifecycle(fakeClock())
	for _, s := range []State{StateRunning, StatePaused, StateRunning, StateCompleted} {
		if err := lc.To(s, "because"); err != nil {
			t.Fatal(err)
		}
	}
	hist := lc.History()
	if len(hist) != 5 { // initial →pending entry plus four transitions
		t.Fatalf("history length %d, want 5", len(hist))
	}
	var last int64
	for i, tr := range hist {
		if tr.AtUnixNano <= last {
			t.Fatalf("transition %d timestamp %d not increasing past %d", i, tr.AtUnixNano, last)
		}
		last = tr.AtUnixNano
	}
	if hist[0].To != StatePending || hist[4].To != StateCompleted {
		t.Fatalf("history endpoints wrong: %+v", hist)
	}
	if !lc.State().Terminal() {
		t.Fatal("completed lifecycle not terminal")
	}
}

func TestRestoreLifecycleMapsRunningToPending(t *testing.T) {
	lc := NewLifecycle(fakeClock())
	if err := lc.To(StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreLifecycle(fakeClock(), lc.State(), lc.History())
	if err != nil {
		t.Fatal(err)
	}
	if restored.State() != StatePending {
		t.Fatalf("restored state %s, want pending (interrupted runs re-queue)", restored.State())
	}
	if restored.Reason() == "" {
		t.Fatal("interruption reason not recorded")
	}
	// Terminal states restore verbatim.
	if err := lc.To(StateCompleted, ""); err != nil {
		t.Fatal(err)
	}
	restored, err = RestoreLifecycle(fakeClock(), lc.State(), lc.History())
	if err != nil {
		t.Fatal(err)
	}
	if restored.State() != StateCompleted {
		t.Fatalf("restored state %s, want completed", restored.State())
	}
}

func TestRestoreLifecycleRejectsGarbage(t *testing.T) {
	if _, err := RestoreLifecycle(fakeClock(), State("bogus"), nil); err == nil {
		t.Fatal("bogus state restored without error")
	}
}

func TestStateValidity(t *testing.T) {
	for _, s := range []State{StatePending, StateRunning, StatePaused, StateCompleted, StateFailed, StateCanceled} {
		if !s.Valid() {
			t.Errorf("state %s reported invalid", s)
		}
	}
	if State("nope").Valid() {
		t.Error("invalid state reported valid")
	}
	for _, s := range []State{StateCompleted, StateFailed, StateCanceled} {
		if !s.Terminal() {
			t.Errorf("state %s should be terminal", s)
		}
	}
	for _, s := range []State{StatePending, StateRunning, StatePaused} {
		if s.Terminal() {
			t.Errorf("state %s should not be terminal", s)
		}
	}
}
