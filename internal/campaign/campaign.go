package campaign

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Campaign is one tuning campaign owned by the registry: a durable spec, a
// lifecycle state machine, a journal-backed directory, and (while running)
// a live engine for progress polling.
type Campaign struct {
	// ID is the registry-assigned identifier, also the directory name.
	ID string
	// Spec is the durable description (Spec.Fingerprint is filled by the
	// first run; everything else is immutable after submit).
	Spec Spec

	dir string
	lc  *Lifecycle
	// fs is the registry's filesystem seam; dirSyncErrs points at the
	// registry-wide directory-fsync failure counter every atomic persist
	// feeds.
	fs          vfs.FS
	dirSyncErrs *atomic.Int64

	mu        sync.Mutex
	cancel    context.CancelFunc // non-nil while a runner owns the campaign
	intent    State              // StatePaused or StateCanceled when an interrupt was requested
	eng       *engine.Engine     // live engine while running
	result    *harness.CampaignResult
	canonical string
	settledS  float64 // spend settled against the tenant ledger (terminal states)
}

func (c *Campaign) specPath() string    { return filepath.Join(c.dir, "spec.json") }
func (c *Campaign) statePath() string   { return filepath.Join(c.dir, "state.json") }
func (c *Campaign) resultPath() string  { return filepath.Join(c.dir, "result.json") }
func (c *Campaign) journalPath() string { return filepath.Join(c.dir, "journal.wal") }

// State returns the campaign's current lifecycle state.
func (c *Campaign) State() State { return c.lc.State() }

// persistState writes state.json atomically: the lifecycle position plus
// the settled spend, everything a restart needs beyond spec and journal.
func (c *Campaign) persistState() error {
	c.mu.Lock()
	settled := c.settledS
	c.mu.Unlock()
	return writeJSONAtomic(c.fs, c.statePath(), persistedState{
		State:       c.lc.State(),
		SettledS:    settled,
		Transitions: c.lc.History(),
	}, c.dirSyncErrs)
}

// persistSpec writes spec.json atomically.
func (c *Campaign) persistSpec() error {
	return writeJSONAtomic(c.fs, c.specPath(), c.Spec, c.dirSyncErrs)
}

// persistedResult is the result.json payload: the canonical string the
// resume acceptance criteria compare byte-for-byte, alongside the full
// structured result.
type persistedResult struct {
	Canonical string                  `json:"canonical"`
	Result    *harness.CampaignResult `json:"result"`
}

// persistResult writes result.json atomically.
func (c *Campaign) persistResult(res *harness.CampaignResult) error {
	return writeJSONAtomic(c.fs, c.resultPath(), persistedResult{Canonical: res.Canonical(), Result: res}, c.dirSyncErrs)
}

// loadResult restores a completed campaign's result from result.json.
func (c *Campaign) loadResult() error {
	var pr persistedResult
	if err := readJSON(c.fs, c.resultPath(), &pr); err != nil {
		return err
	}
	c.mu.Lock()
	c.result, c.canonical = pr.Result, pr.Canonical
	c.mu.Unlock()
	return nil
}

// config maps the spec onto the harness campaign configuration. wrap is the
// fairness gate (nil for ungated runs).
func (c *Campaign) config(wrap func(sim.Objective) sim.Objective) harness.CampaignConfig {
	cfg := harness.CampaignConfig{
		Method:          c.Spec.Method,
		BudgetS:         c.Spec.BudgetS,
		Seed:            c.Spec.Seed,
		Workers:         c.Spec.Workers,
		Repeats:         c.Spec.Repeats,
		Quarantine:      c.Spec.Quarantine,
		CheckpointEvery: c.Spec.CheckpointEvery,
		JournalPath:     c.journalPath(),
		FS:              c.fs,
	}
	if wrap != nil {
		cfg.Wrap = wrap
	}
	return cfg
}

// Status is one campaign's externally-visible snapshot: spec identity,
// lifecycle position, live progress while running, and the canonical result
// once completed.
type Status struct {
	ID      string  `json:"id"`
	Tenant  string  `json:"tenant"`
	Method  string  `json:"method"`
	Stencil string  `json:"stencil"`
	Arch    string  `json:"arch"`
	Weight  float64 `json:"weight"`
	BudgetS float64 `json:"budget_s"`
	Seed    int64   `json:"seed"`

	State  State  `json:"state"`
	Reason string `json:"reason,omitempty"`

	// SpentS and Evals are live engine progress while running, final
	// numbers once terminal. Replayed counts journal-served episodes.
	SpentS   float64 `json:"spent_s"`
	Evals    int     `json:"evals"`
	Replayed int     `json:"replayed"`

	// StoreHits/StoreMisses count cross-campaign result-store traffic;
	// WarmStartSeeds counts prior bests injected into this run's search.
	// All zero when the registry runs without a store.
	StoreHits      int `json:"store_hits,omitempty"`
	StoreMisses    int `json:"store_misses,omitempty"`
	WarmStartSeeds int `json:"warm_start_seeds,omitempty"`

	Found     bool         `json:"found"`
	BestKey   string       `json:"best_key,omitempty"`
	BestMS    float64      `json:"best_ms,omitempty"`
	Canonical string       `json:"canonical,omitempty"`
	History   []Transition `json:"history"`
}

// Status snapshots the campaign.
func (c *Campaign) Status() Status {
	st := Status{
		ID:      c.ID,
		Tenant:  c.Spec.Tenant,
		Method:  c.Spec.Method,
		Stencil: c.Spec.Stencil,
		Arch:    c.Spec.Arch,
		Weight:  c.Spec.Weight,
		BudgetS: c.Spec.BudgetS,
		Seed:    c.Spec.Seed,
		State:   c.lc.State(),
		Reason:  c.lc.Reason(),
		History: c.lc.History(),
	}
	c.mu.Lock()
	eng, res, canonical := c.eng, c.result, c.canonical
	c.mu.Unlock()
	switch {
	case res != nil:
		st.SpentS = res.Stats.SpentS
		st.Evals = res.Stats.Evaluations
		st.Replayed = res.Replayed
		st.StoreHits = res.Stats.StoreHits
		st.StoreMisses = res.Stats.StoreMisses
		st.WarmStartSeeds = res.Stats.WarmStartSeeds
		st.Found = res.Found
		if res.Found {
			st.BestKey = res.Best.Key()
			st.BestMS = res.BestMS
		}
		st.Canonical = canonical
	case eng != nil:
		st.SpentS = eng.SpentS()
		st.Evals = eng.Evals()
		st.Replayed = eng.Replayed()
		es := eng.Stats()
		st.StoreHits = es.StoreHits
		st.StoreMisses = es.StoreMisses
		st.WarmStartSeeds = es.WarmStartSeeds
		if set, ms, ok := eng.Best(); ok {
			st.Found, st.BestKey, st.BestMS = true, set.Key(), ms
		}
	}
	return st
}

// Result returns the completed campaign's result and canonical string, or
// ok=false while the campaign has not completed.
func (c *Campaign) Result() (*harness.CampaignResult, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.result == nil {
		return nil, "", false
	}
	return c.result, c.canonical, true
}
