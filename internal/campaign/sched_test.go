package campaign

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerVTimeAdvancesByInverseWeight(t *testing.T) {
	s := NewScheduler(4)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := s.Acquire(ctx, "heavy", 4); err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	if err := s.Acquire(ctx, "light", 1); err != nil {
		t.Fatal(err)
	}
	s.Release()
	vt := s.VTimes()
	if vt["heavy"] != 1 { // 4 grants × 1/4
		t.Fatalf("heavy vtime %g, want 1", vt["heavy"])
	}
	if vt["light"] != 2 { // joined at min vtime (1) + one grant at weight 1
		t.Fatalf("light vtime %g, want 2", vt["light"])
	}
}

func TestSchedulerWeightedShares(t *testing.T) {
	s := NewScheduler(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const totalGrants = 600
	var granted atomic.Int64
	counts := map[string]*atomic.Int64{"heavy": {}, "light": {}}
	weights := map[string]float64{"heavy": 3, "light": 1}

	// Every worker performs one uncounted warmup acquire before the barrier,
	// so both tenants are registered and backlogged from the first counted
	// grant onward (the regime WFQ reasons about) — otherwise the whole
	// counted phase can finish before the other tenant's goroutines are even
	// scheduled.
	start := make(chan struct{})
	var armed, wg sync.WaitGroup
	for tenant, w := range weights {
		for i := 0; i < 4; i++ {
			armed.Add(1)
			wg.Add(1)
			go func(tenant string, w float64) {
				defer wg.Done()
				if err := s.Acquire(ctx, tenant, w); err != nil {
					t.Errorf("%s warmup: %v", tenant, err)
					armed.Done()
					return
				}
				s.Release()
				armed.Done()
				<-start
				for {
					if err := s.Acquire(ctx, tenant, w); err != nil {
						return
					}
					// Hold the slot across a yield, like a real measurement
					// holds it for its duration: the other workers pile into
					// the waiting set and the grant order is decided by
					// virtual time, not by goroutine scheduling. Without
					// saturation WFQ has nothing to arbitrate.
					runtime.Gosched()
					n := granted.Add(1)
					counts[tenant].Add(1)
					s.Release()
					if n >= totalGrants {
						cancel()
						return
					}
				}
			}(tenant, w)
		}
	}
	armed.Wait()
	close(start)
	wg.Wait()

	heavy, light := counts["heavy"].Load(), counts["light"].Load()
	if heavy+light < totalGrants {
		t.Fatalf("only %d grants made, want >= %d", heavy+light, totalGrants)
	}
	// WFQ with both tenants continuously backlogged keeps vtimes aligned, so
	// grants divide ~3:1. Allow generous slack for scheduling noise.
	ratio := float64(heavy) / float64(light)
	if ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("grant ratio heavy/light = %.2f (heavy=%d light=%d), want ≈3", ratio, heavy, light)
	}
}

func TestSchedulerNoStarvation(t *testing.T) {
	s := NewScheduler(1)
	ctx := context.Background()
	const perTenant = 40
	tenants := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	done := make([]atomic.Int64, len(tenants))
	for i, tenant := range tenants {
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			for n := 0; n < perTenant; n++ {
				if err := s.Acquire(ctx, tenant, 1); err != nil {
					t.Errorf("tenant %s: %v", tenant, err)
					return
				}
				done[i].Add(1)
				s.Release()
			}
		}(i, tenant)
	}
	fin := make(chan struct{})
	go func() { wg.Wait(); close(fin) }()
	select {
	case <-fin:
	case <-time.After(30 * time.Second):
		t.Fatal("scheduler starved a tenant (timeout)")
	}
	for i, tenant := range tenants {
		if got := done[i].Load(); got != perTenant {
			t.Errorf("tenant %s finished %d of %d", tenant, got, perTenant)
		}
	}
}

func TestSchedulerLatecomerJoinsAtFrontier(t *testing.T) {
	s := NewScheduler(1)
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if err := s.Acquire(ctx, "incumbent", 1); err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	// A latecomer must not owe 100 grants of catch-up debt — nor get 100
	// grants of monopoly. It starts at the incumbent's frontier.
	if err := s.Acquire(ctx, "late", 1); err != nil {
		t.Fatal(err)
	}
	s.Release()
	vt := s.VTimes()
	if vt["late"] != vt["incumbent"]+1 {
		t.Fatalf("latecomer vtime %g, want incumbent %g + 1", vt["late"], vt["incumbent"])
	}
}

func TestSchedulerAcquireHonorsCancel(t *testing.T) {
	s := NewScheduler(1)
	if err := s.Acquire(context.Background(), "holder", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(ctx, "blocked", 1) }()
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Acquire never returned")
	}
	s.Release()
}

func TestNilSchedulerIsUngated(t *testing.T) {
	var s *Scheduler
	if err := s.Acquire(context.Background(), "x", 1); err != nil {
		t.Fatal(err)
	}
	s.Release()
}
