package campaign

import (
	"strings"
	"testing"

	"repro/internal/vfs"
)

// TestRegistryJournalFaultFailsOnlyCampaign breaks exactly one campaign's
// journal (every fsync on c000001/journal.wal returns EIO) and proves the
// blast radius: that campaign fails with the journal error in its reason,
// the sibling campaign runs to completion untouched, and the registry
// itself stays healthy — a journal failure is campaign-scoped, never a
// daemon-wide degradation.
func TestRegistryJournalFaultFailsOnlyCampaign(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.OS, 0,
		vfs.Fault{Op: vfs.OpSync, Path: "c000001/journal.wal", Err: vfs.EIO(), Rate: 1})
	reg := openTestRegistry(t, t.TempDir(), Options{Slots: 2, FS: fsys})

	doomed, err := reg.Submit(testSpec("acme", 1))
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := reg.Submit(testSpec("fresh", 2))
	if err != nil {
		t.Fatal(err)
	}

	waitState(t, reg, doomed.ID, StateFailed)
	waitState(t, reg, healthy.ID, StateCompleted)

	st := doomed.Status()
	if !strings.Contains(st.Reason, "journal") {
		t.Fatalf("failed campaign's reason does not name the journal: %q", st.Reason)
	}

	h := reg.Health()
	if h.ByState[StateFailed] != 1 || h.ByState[StateCompleted] != 1 {
		t.Fatalf("health state counts wrong: %+v", h)
	}
	if h.Degraded {
		t.Fatalf("a campaign-scoped journal fault degraded the whole registry: %+v", h)
	}

	// The doomed tenant's reservation was settled back on failure: a fresh
	// submission from the same tenant is admitted and completes.
	retry, err := reg.Submit(testSpec("acme", 3))
	if err != nil {
		t.Fatalf("registry refused work after an isolated journal fault: %v", err)
	}
	waitState(t, reg, retry.ID, StateCompleted)
}
