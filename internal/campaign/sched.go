package campaign

import (
	"context"
	"sync"

	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/space"
)

// Scheduler is the weighted-fair measurement gate: every live measurement a
// campaign makes first acquires one of a bounded number of slots, and slots
// are granted to the waiting tenant with the lowest virtual time — a
// classic weighted-fair-queueing discipline where each granted measurement
// advances the tenant's virtual time by 1/weight. The effect is that
// MeasureBatch work from hundreds of concurrent campaigns interleaves at
// measurement granularity, with tenants progressing in proportion to their
// weights, instead of campaigns draining FIFO.
//
// Fairness never touches results: a campaign's measurement outcomes,
// accounting and journal are a pure function of its own spec (the engine's
// determinism guarantee), so the scheduler only decides *when* measurements
// run. Journal replay on resume bypasses the objective entirely and
// therefore never waits on a slot — resumed campaigns re-cover their paid
// prefix at full speed.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	slots   int
	inUse   int
	vtime   map[string]float64 // per-tenant virtual time, monotone
	waiting map[string]int     // tenants with goroutines blocked in Acquire
}

// NewScheduler returns a scheduler with the given number of concurrent
// measurement slots; n < 1 is clamped to 1.
func NewScheduler(slots int) *Scheduler {
	if slots < 1 {
		slots = 1
	}
	s := &Scheduler{slots: slots, vtime: map[string]float64{}, waiting: map[string]int{}}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire blocks until the tenant is granted a measurement slot or ctx is
// done. weight scales the tenant's share; values <= 0 behave as 1.
func (s *Scheduler) Acquire(ctx context.Context, tenant string, weight float64) error {
	if s == nil {
		return nil
	}
	if weight <= 0 {
		weight = 1
	}
	if done := ctx.Done(); done != nil {
		// cond.Wait cannot select on ctx; a watcher converts cancellation
		// into a broadcast. It exits with Acquire via stop.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				s.cond.Broadcast()
			case <-stop:
			}
		}()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.vtime[tenant]; !ok {
		// A newly-arriving tenant starts at the current minimum virtual
		// time, not at zero: otherwise a latecomer would monopolize the
		// slots until it "caught up" with tenants that were simply first.
		s.vtime[tenant] = s.minVTimeLocked()
	}
	s.waiting[tenant]++
	defer func() {
		s.waiting[tenant]--
		if s.waiting[tenant] == 0 {
			delete(s.waiting, tenant)
		}
		// The eligible-tenant frontier may have moved; wake the others.
		s.cond.Broadcast()
	}()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.inUse < s.slots && s.eligibleLocked(tenant) {
			s.inUse++
			s.vtime[tenant] += 1 / weight
			return nil
		}
		s.cond.Wait()
	}
}

// Release returns a slot acquired by Acquire.
func (s *Scheduler) Release() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.inUse--
	s.mu.Unlock()
	s.cond.Broadcast()
}

// minVTimeLocked returns the minimum virtual time across known tenants, or
// 0 when none exist. Callers hold s.mu.
func (s *Scheduler) minVTimeLocked() float64 {
	first := true
	min := 0.0
	for _, v := range s.vtime {
		if first || v < min {
			min, first = v, false
		}
	}
	return min
}

// eligibleLocked reports whether tenant holds the minimum virtual time
// among currently-waiting tenants. Ties are eligible together — the slot
// count, not the comparison, bounds concurrency. Callers hold s.mu.
func (s *Scheduler) eligibleLocked(tenant string) bool {
	vt := s.vtime[tenant]
	for other := range s.waiting {
		if other == tenant {
			continue
		}
		if s.vtime[other] < vt {
			return false
		}
	}
	return true
}

// VTimes returns a copy of the per-tenant virtual-time table (diagnostics).
func (s *Scheduler) VTimes() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.vtime))
	for k, v := range s.vtime {
		out[k] = v
	}
	return out
}

// gate wraps a campaign's objective chain so every live measurement passes
// through the weighted-fair scheduler. It forwards the optional surfaces
// the engine probes for — context-aware measurement, metric runs, the
// architecture provider, and Unwrap (so journal replay can restore attempt
// counters in a wrapped fault injector).
type gate struct {
	inner  sim.Objective
	sched  *Scheduler
	ctx    context.Context
	tenant string
	weight float64
}

// Gate returns a Wrap function (harness.CampaignConfig.Wrap) that routes
// the campaign's live measurements through sched under the tenant's weight.
// ctx is the campaign's run context: a cancelled campaign stops waiting for
// slots immediately.
func Gate(ctx context.Context, sched *Scheduler, tenant string, weight float64) func(sim.Objective) sim.Objective {
	return func(obj sim.Objective) sim.Objective {
		return &gate{inner: obj, sched: sched, ctx: ctx, tenant: tenant, weight: weight}
	}
}

func (g *gate) Space() *space.Space { return g.inner.Space() }

func (g *gate) Measure(s space.Setting) (float64, error) {
	if err := g.sched.Acquire(g.ctx, g.tenant, g.weight); err != nil {
		return 0, err
	}
	defer g.sched.Release()
	return g.inner.Measure(s)
}

// MeasureCtx implements engine.CtxObjective so the engine's run context
// reaches both the slot wait and a context-aware inner objective.
func (g *gate) MeasureCtx(ctx context.Context, s space.Setting) (float64, error) {
	if err := g.sched.Acquire(ctx, g.tenant, g.weight); err != nil {
		return 0, err
	}
	defer g.sched.Release()
	if co, ok := g.inner.(engine.CtxObjective); ok {
		return co.MeasureCtx(ctx, s)
	}
	return g.inner.Measure(s)
}

// Run forwards metric-producing runs (offline dataset collection is
// unmetered and ungated by design — it is a one-time step, paper Sec. V-F).
func (g *gate) Run(s space.Setting) (*sim.Result, error) {
	if r, ok := g.inner.(engine.Runner); ok {
		return r.Run(s)
	}
	return nil, engine.ErrNoRunner
}

// Architecture forwards the GPU model so codegen survives the gate.
func (g *gate) Architecture() *gpu.Arch {
	if ap, ok := g.inner.(sim.ArchProvider); ok {
		return ap.Architecture()
	}
	return nil
}

// Unwrap exposes the inner objective (engine.AttemptRestorer discovery).
func (g *gate) Unwrap() sim.Objective { return g.inner }

var (
	_ sim.Objective       = (*gate)(nil)
	_ sim.ArchProvider    = (*gate)(nil)
	_ engine.CtxObjective = (*gate)(nil)
)
