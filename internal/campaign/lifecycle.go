// Package campaign turns the single-shot tuning library into a long-running
// multi-tenant campaign service substrate: an explicit lifecycle state
// machine (extracted from the previously ad-hoc harness.RunCampaign flow), a
// registry that owns one journal directory per campaign and survives
// kill -9 by deterministically resuming interrupted campaigns through the
// journal replay path, per-tenant virtual-budget ledgers, and a
// weighted-fair scheduler that interleaves measurement work across every
// active campaign instead of running them FIFO. internal/service fronts
// this package with HTTP; cmd/cstunerd is the daemon.
package campaign

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
)

// State is one campaign lifecycle state.
type State string

// The campaign lifecycle:
//
//	Pending ──▶ Running ──▶ Completed
//	   │          │  ▲────┐
//	   │          ├──▶ Paused ──▶ Canceled
//	   │          ├──▶ Failed
//	   │          └──▶ Canceled
//	   └──▶ Canceled / Failed
//
// Completed, Failed and Canceled are terminal. Paused is the deliberate
// crash: the run context is cancelled, the journal keeps every episode
// already paid for, and resuming re-executes the campaign with the journal
// answering for the prefix (byte-identical, per DESIGN.md §6).
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StatePaused    State = "paused"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Valid reports whether s is a known lifecycle state.
func (s State) Valid() bool {
	switch s {
	case StatePending, StateRunning, StatePaused, StateCompleted, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Terminal reports whether s is a terminal state.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCanceled
}

// legal is the transition relation; anything absent is refused with
// ErrTransition.
var legal = map[State]map[State]bool{
	StatePending: {StateRunning: true, StateCanceled: true, StateFailed: true},
	StateRunning: {StatePaused: true, StateCompleted: true, StateFailed: true, StateCanceled: true},
	StatePaused:  {StateRunning: true, StateCanceled: true, StateFailed: true},
}

// ErrTransition is returned for an illegal lifecycle transition (e.g.
// cancelling an already-terminal campaign).
var ErrTransition = errors.New("campaign: illegal lifecycle transition")

// Transition is one recorded lifecycle edge with its wall-clock stamp (read
// through the injected engine.Clock, so tests pin it exactly).
type Transition struct {
	From       State  `json:"from"`
	To         State  `json:"to"`
	AtUnixNano int64  `json:"at_unix_nano"`
	Reason     string `json:"reason,omitempty"`
}

// Lifecycle is one campaign's state machine: current state, the reason it
// got there, and the full stamped transition history. It is safe for
// concurrent use.
type Lifecycle struct {
	mu    sync.Mutex
	clock engine.Clock
	state State
	hist  []Transition
}

// NewLifecycle returns a lifecycle in StatePending. A nil clock defaults to
// the real wall clock (the sanctioned value-reference of time.Now).
func NewLifecycle(clock engine.Clock) *Lifecycle {
	if clock == nil {
		clock = time.Now // value use: the sanctioned wall-clock seam (engine.Clock)
	}
	l := &Lifecycle{clock: clock, state: StatePending}
	l.hist = append(l.hist, Transition{From: "", To: StatePending, AtUnixNano: clock().UnixNano()})
	return l
}

// RestoreLifecycle rebuilds a lifecycle from persisted state: the recorded
// history is kept verbatim and the current state trusted. A persisted
// StateRunning means the owning process died mid-run, so it is restored as
// StatePending (the registry re-runs it through journal replay) with the
// restoration stamped into the history.
func RestoreLifecycle(clock engine.Clock, state State, hist []Transition) (*Lifecycle, error) {
	if clock == nil {
		clock = time.Now // value use: the sanctioned wall-clock seam (engine.Clock)
	}
	if !state.Valid() {
		return nil, fmt.Errorf("campaign: restore: unknown state %q", state)
	}
	l := &Lifecycle{clock: clock, state: state, hist: append([]Transition(nil), hist...)}
	if state == StateRunning {
		l.state = StatePending
		l.hist = append(l.hist, Transition{
			From: StateRunning, To: StatePending,
			AtUnixNano: clock().UnixNano(),
			Reason:     "interrupted by process death; queued for deterministic resume",
		})
	}
	return l, nil
}

// State returns the current state.
func (l *Lifecycle) State() State {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state
}

// Reason returns the reason attached to the most recent transition.
func (l *Lifecycle) Reason() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.hist) == 0 {
		return ""
	}
	return l.hist[len(l.hist)-1].Reason
}

// To transitions to state s, stamping the edge. Illegal transitions return
// ErrTransition (wrapped with the attempted edge) and change nothing.
func (l *Lifecycle) To(s State, reason string) error {
	now := l.clock() // read outside the lock: the clock is an injected callback
	l.mu.Lock()
	defer l.mu.Unlock()
	if !legal[l.state][s] {
		return fmt.Errorf("%w: %s → %s", ErrTransition, l.state, s)
	}
	l.hist = append(l.hist, Transition{From: l.state, To: s, AtUnixNano: now.UnixNano(), Reason: reason})
	l.state = s
	return nil
}

// History returns a copy of the stamped transition history.
func (l *Lifecycle) History() []Transition {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Transition(nil), l.hist...)
}

// EnteredAt returns the stamp of the most recent entry into state s.
func (l *Lifecycle) EnteredAt(s State) (time.Time, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.hist) - 1; i >= 0; i-- {
		if l.hist[i].To == s {
			return time.Unix(0, l.hist[i].AtUnixNano), true
		}
	}
	return time.Time{}, false
}
