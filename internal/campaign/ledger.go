package campaign

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrTenantBudget is returned when admitting a campaign would take a
// tenant's reservations past its virtual budget.
var ErrTenantBudget = errors.New("campaign: tenant budget exhausted")

// LedgerSnapshot is one tenant's budget position. All quantities are
// virtual seconds on the engine's cost model, the same unit campaign
// budgets use. BudgetS == 0 means the tenant is unmetered.
type LedgerSnapshot struct {
	Tenant    string  `json:"tenant"`
	BudgetS   float64 `json:"budget_s"`
	ReservedS float64 `json:"reserved_s"`
	SpentS    float64 `json:"spent_s"`
}

// RemainingS returns the admittable headroom (meaningless for unmetered
// tenants).
func (s LedgerSnapshot) RemainingS() float64 { return s.BudgetS - s.ReservedS - s.SpentS }

type tenantAcct struct {
	budgetS   float64
	hasBudget bool
	reservedS float64
	spentS    float64
}

// Ledgers is the per-tenant virtual-budget accounting layer on top of the
// engine's per-campaign budgets. Admission is by reservation: submitting a
// campaign reserves its full budget, and completion settles the reservation
// into actual spend (capped at the reservation — the engine may overshoot a
// campaign budget by at most one episode's cost, and that overshoot is
// accounted to the campaign, never to the tenant). The ledger invariant,
// which the stress tests assert continuously, is therefore
//
//	SpentS + ReservedS <= BudgetS
//
// for every metered tenant, at every instant.
type Ledgers struct {
	mu             sync.Mutex
	defaultBudgetS float64 // 0 = unmetered by default
	acct           map[string]*tenantAcct
}

// NewLedgers returns a ledger set whose tenants default to defaultBudgetS
// virtual seconds each (0 = unmetered).
func NewLedgers(defaultBudgetS float64) *Ledgers {
	return &Ledgers{defaultBudgetS: defaultBudgetS, acct: map[string]*tenantAcct{}}
}

func (l *Ledgers) tenantLocked(tenant string) *tenantAcct {
	a := l.acct[tenant]
	if a == nil {
		a = &tenantAcct{budgetS: l.defaultBudgetS, hasBudget: l.defaultBudgetS > 0}
		l.acct[tenant] = a
	}
	return a
}

// SetBudget overrides one tenant's budget; 0 makes the tenant unmetered.
// Shrinking a budget below the tenant's current position is allowed — it
// refuses future admissions but never claws back admitted work.
func (l *Ledgers) SetBudget(tenant string, budgetS float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.tenantLocked(tenant)
	a.budgetS = budgetS
	a.hasBudget = budgetS > 0
}

// Reserve admits a campaign of budgetS against the tenant's ledger, or
// refuses with ErrTenantBudget. force bypasses the check — the registry
// uses it on restart to re-admit campaigns that were admitted before the
// crash (a restart must never orphan admitted work).
func (l *Ledgers) Reserve(tenant string, budgetS float64, force bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.tenantLocked(tenant)
	if !force && a.hasBudget && a.reservedS+a.spentS+budgetS > a.budgetS {
		return fmt.Errorf("%w: tenant %q has %.3gs of %.3gs uncommitted, campaign wants %.3gs",
			ErrTenantBudget, tenant, a.budgetS-a.reservedS-a.spentS, a.budgetS, budgetS)
	}
	a.reservedS += budgetS
	return nil
}

// Settle converts a reservation into actual spend: the reservation is
// released in full and min(spentS, reservedS) is charged. Campaigns that
// end early (cancelled, failed, tiny searches) refund their headroom here.
func (l *Ledgers) Settle(tenant string, reservedS, spentS float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.tenantLocked(tenant)
	a.reservedS -= reservedS
	if a.reservedS < 0 {
		a.reservedS = 0
	}
	if spentS > reservedS {
		spentS = reservedS
	}
	if spentS > 0 {
		a.spentS += spentS
	}
}

// RestoreSpent re-applies settled spend recorded before a restart.
func (l *Ledgers) RestoreSpent(tenant string, spentS float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if spentS > 0 {
		l.tenantLocked(tenant).spentS += spentS
	}
}

// Snapshot returns one tenant's position.
func (l *Ledgers) Snapshot(tenant string) LedgerSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.tenantLocked(tenant)
	return LedgerSnapshot{Tenant: tenant, BudgetS: a.budgetS, ReservedS: a.reservedS, SpentS: a.spentS}
}

// Snapshots returns every known tenant's position, sorted by tenant name so
// the listing order never leaks map iteration order.
func (l *Ledgers) Snapshots() []LedgerSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.acct))
	for name := range l.acct {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]LedgerSnapshot, 0, len(names))
	for _, name := range names {
		a := l.acct[name]
		out = append(out, LedgerSnapshot{Tenant: name, BudgetS: a.budgetS, ReservedS: a.reservedS, SpentS: a.spentS})
	}
	return out
}
