package campaign

import (
	"testing"
)

// TestRegistryStoreSharedAcrossCampaigns: with the shared store enabled, a
// second campaign over the same workload serves prior measurements as free
// store hits, and every episode it does pay for is a counted store miss
// (i.e. genuinely new work).
func TestRegistryStoreSharedAcrossCampaigns(t *testing.T) {
	reg := openTestRegistry(t, t.TempDir(), Options{Slots: 2, EnableStore: true})

	a, err := reg.Submit(testSpec("acme", 7))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, reg, a.ID, StateCompleted)
	sa := a.Status()
	if sa.StoreMisses == 0 || sa.StoreHits != 0 {
		t.Fatalf("cold campaign store counters = hits %d misses %d", sa.StoreHits, sa.StoreMisses)
	}

	b, err := reg.Submit(testSpec("acme", 7)) // identical workload and seed
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, reg, b.ID, StateCompleted)
	sb := b.Status()
	if sb.StoreHits == 0 {
		t.Fatalf("second campaign re-measured everything: %+v", sb)
	}
	// Store hits are free, so the second run can explore past the first
	// run's budget horizon — but each paid episode must be new.
	if sb.Evals > sb.StoreMisses {
		t.Fatalf("second campaign paid for stored settings: evals %d > misses %d", sb.Evals, sb.StoreMisses)
	}

	stats, enabled := reg.StoreStats()
	if !enabled || stats.Keys == 0 || stats.WriteErr != "" {
		t.Fatalf("registry store stats = %+v enabled=%v", stats, enabled)
	}
}

// TestRegistryStoreDisabledReportsDisabled: without EnableStore the registry
// holds no store, campaigns never touch one, and StoreStats says so.
func TestRegistryStoreDisabledReportsDisabled(t *testing.T) {
	reg := openTestRegistry(t, t.TempDir(), Options{Slots: 2})
	if reg.Store() != nil {
		t.Fatal("store open without EnableStore")
	}
	if _, enabled := reg.StoreStats(); enabled {
		t.Fatal("StoreStats reports enabled without a store")
	}
	c, err := reg.Submit(testSpec("acme", 7))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, reg, c.ID, StateCompleted)
	if s := c.Status(); s.StoreHits != 0 || s.StoreMisses != 0 || s.WarmStartSeeds != 0 {
		t.Fatalf("storeless campaign has store counters: %+v", s)
	}
}

// TestRegistryWarmStartResolvesOnceAndPersists: a warm-started campaign
// resolves its seed keys from the store exactly once, freezes them into the
// persisted spec, and a registry restart neither loses nor re-resolves them.
func TestRegistryWarmStartResolvesOnceAndPersists(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(dir, Options{Slots: 2, EnableStore: true})
	if err != nil {
		t.Fatal(err)
	}

	coldSpec := testSpec("acme", 11)
	coldSpec.Method = "cstuner"
	coldSpec.DatasetSize = 32 // the cstuner pipeline needs enough samples to fit PMNF models
	cold, err := reg.Submit(coldSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, reg, cold.ID, StateCompleted)

	// Warm seeds feed the cstuner search (sampling set + GA population);
	// other methods ignore them, so the seed counter pin needs this one.
	warmSpec := testSpec("acme", 12)
	warmSpec.Method = "cstuner"
	warmSpec.DatasetSize = 32
	warmSpec.WarmStart = 4
	warm, err := reg.Submit(warmSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, reg, warm.ID, StateCompleted)
	if warm.Spec.WarmKeys == nil {
		t.Fatal("warm campaign completed without resolving WarmKeys")
	}
	if len(warm.Spec.WarmKeys) == 0 {
		t.Fatal("store held bests but resolution found none")
	}
	if s := warm.Status(); s.WarmStartSeeds == 0 {
		t.Fatalf("no seeds reached the search: %+v", s)
	}
	keys := append([]string(nil), warm.Spec.WarmKeys...)
	fp := warm.Spec.Fingerprint
	if fp == "" {
		t.Fatal("completed campaign has no fingerprint")
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: persisted keys (and the fingerprint that froze them) survive
	// verbatim — the grown store must not change a finished identity.
	reg2 := openTestRegistry(t, dir, Options{Slots: 2, EnableStore: true, DisableAutostart: true})
	warm2, err := reg2.Get(warm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if warm2.Spec.Fingerprint != fp {
		t.Fatalf("fingerprint changed across restart: %q vs %q", warm2.Spec.Fingerprint, fp)
	}
	if len(warm2.Spec.WarmKeys) != len(keys) {
		t.Fatalf("warm keys changed across restart: %v vs %v", warm2.Spec.WarmKeys, keys)
	}
	for i := range keys {
		if warm2.Spec.WarmKeys[i] != keys[i] {
			t.Fatalf("warm keys changed across restart: %v vs %v", warm2.Spec.WarmKeys, keys)
		}
	}
}

// TestSpecValidateWarmFields: warm_start must be non-negative and warm_keys
// are registry-owned — submissions carrying them are rejected.
func TestSpecValidateWarmFields(t *testing.T) {
	reg := openTestRegistry(t, t.TempDir(), Options{Slots: 1, DisableAutostart: true})

	neg := testSpec("acme", 1)
	neg.WarmStart = -1
	if _, err := reg.Submit(neg); err == nil {
		t.Fatal("negative warm_start accepted")
	}

	keyed := testSpec("acme", 1)
	keyed.WarmKeys = []string{"anything"}
	if _, err := reg.Submit(keyed); err == nil {
		t.Fatal("submitted warm_keys accepted")
	}
}

// TestScanSkipsStoreDir: the shared store's directory lives under the
// registry root, and the restart scan must not mistake it for a campaign —
// with the store enabled, and on a later restart of the same root with the
// store disabled (the directory is still there; it must not come back as a
// phantom failed campaign).
func TestScanSkipsStoreDir(t *testing.T) {
	dir := t.TempDir()
	reg := openTestRegistry(t, dir, Options{Slots: 2, EnableStore: true})
	c, err := reg.Submit(testSpec("acme", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, reg, c.ID, StateCompleted)
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	for _, enable := range []bool{true, false} {
		reg2 := openTestRegistry(t, dir, Options{Slots: 2, EnableStore: enable, DisableAutostart: true})
		h := reg2.Health()
		if h.Campaigns != 1 || h.ByState[StateFailed] != 0 {
			t.Fatalf("EnableStore=%v: store dir loaded as a campaign: %+v", enable, h)
		}
		if _, err := reg2.Get("store"); err == nil {
			t.Fatalf("EnableStore=%v: registry serves the store dir as campaign %q", enable, "store")
		}
		if err := reg2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
