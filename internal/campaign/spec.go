package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/stencil"
	"repro/internal/vfs"
)

// Spec is the durable description of one campaign: everything needed to run
// it — and, because every field is deterministic, to *re*-run it
// byte-identically after a crash. It is persisted as spec.json in the
// campaign's directory at submit time.
type Spec struct {
	// Tenant owns the campaign; budgets and fairness are tenant-scoped.
	Tenant string `json:"tenant"`
	// Weight is the tenant's fair-share weight for this campaign's
	// measurements (<= 0 defaults to 1).
	Weight float64 `json:"weight,omitempty"`
	// Method is one of "cstuner", "opentuner", "garvey", "artemis".
	Method string `json:"method"`
	// Stencil and Arch name the workload (stencil.ByName / gpu.ByName).
	Stencil string `json:"stencil"`
	Arch    string `json:"arch"`
	// DatasetSize is the offline dataset sample count (default 64).
	DatasetSize int `json:"dataset_size,omitempty"`
	// BudgetS is the campaign's virtual tuning budget in seconds; it is
	// also the amount reserved against the tenant's ledger. Required.
	BudgetS float64 `json:"budget_s"`
	// Seed drives the tuner and the engine's deterministic jitter.
	Seed int64 `json:"seed"`
	// Workers, Repeats, Quarantine and CheckpointEvery forward to
	// harness.CampaignConfig (all optional).
	Workers         int `json:"workers,omitempty"`
	Repeats         int `json:"repeats,omitempty"`
	Quarantine      int `json:"quarantine,omitempty"`
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// WarmStart requests up to that many warm-start seeds from the shared
	// result store (0 = cold start). Ignored when the registry has no store.
	WarmStart int `json:"warm_start,omitempty"`
	// WarmKeys are the resolved warm-start setting keys. They are resolved
	// exactly once — on the campaign's first run, before the fingerprint is
	// computed — and persisted, so a restart re-runs with the same seeds
	// even though the shared store has grown since. Never set by the
	// submitter.
	WarmKeys []string `json:"warm_keys,omitempty"`
	// Fingerprint is the journal identity computed on the campaign's first
	// run (harness.CampaignFingerprint) and persisted so a restart can
	// validate the on-disk journal without rebuilding the fixture. Empty
	// until the first run reaches its fixture.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Validate checks the spec against the known methods, stencils and
// architectures, and normalizes defaults in place.
func (s *Spec) Validate() error {
	if s.Tenant == "" {
		return errors.New("campaign: spec needs a tenant")
	}
	if _, err := harness.CampaignTuner(s.Method); err != nil {
		return err
	}
	if stencil.ByName(s.Stencil) == nil {
		return fmt.Errorf("campaign: unknown stencil %q", s.Stencil)
	}
	if _, err := gpu.ByName(s.Arch); err != nil {
		return err
	}
	if s.BudgetS <= 0 {
		return errors.New("campaign: spec needs a positive budget_s (the tenant ledger reserves it)")
	}
	if s.DatasetSize <= 0 {
		s.DatasetSize = 64
	}
	if s.WarmStart < 0 {
		return errors.New("campaign: warm_start must be >= 0")
	}
	if len(s.WarmKeys) > 0 {
		// WarmKeys are resolved by the first run, never submitted: accepting
		// caller-supplied keys would bypass resolution (and the fingerprint
		// discipline built on it). Validate runs at submit time only —
		// restart loads persisted specs, warm keys included, unvalidated.
		return errors.New("campaign: warm_keys are resolved by the registry, not submitted")
	}
	if s.Weight <= 0 {
		s.Weight = 1
	}
	return nil
}

// persistedState is the state.json payload: the lifecycle position plus the
// settled tenant spend, written atomically on every transition so a restart
// reconstructs both the state machine and the ledger.
type persistedState struct {
	State State `json:"state"`
	// SettledS is the virtual spend settled against the tenant ledger when
	// the campaign reached a terminal state (capped at the reservation).
	SettledS    float64      `json:"settled_s,omitempty"`
	Transitions []Transition `json:"transitions"`
}

// writeFileAtomic writes data to path via the temp-file + rename + dir-sync
// dance, so a kill -9 at any instant leaves either the old intact file or
// the new intact file, never a torn hybrid. A directory-fsync failure after
// the rename does not fail the write (the bytes are durable in the file);
// it bumps dirSyncErrs (when non-nil) so the degradation is visible instead
// of silently dropped.
func writeFileAtomic(fsys vfs.FS, path string, data []byte, dirSyncErrs *atomic.Int64) error {
	fsys = vfs.Or(fsys) // nil-tolerant: hand-built campaigns default to the real fs
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: write %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		// Leftover-tmp cleanup is best-effort everywhere in this helper: the
		// next atomic write reopens it with O_TRUNC, and loads never read
		// *.tmp names.
		_ = fsys.Remove(tmp)
		return fmt.Errorf("campaign: write %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("campaign: sync %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("campaign: close %s: %w", filepath.Base(path), err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("campaign: rename %s: %w", filepath.Base(path), err)
	}
	if err := vfs.SyncDirOf(fsys, path); err != nil && dirSyncErrs != nil {
		dirSyncErrs.Add(1)
	}
	return nil
}

// writeJSONAtomic marshals v and writes it atomically to path.
func writeJSONAtomic(fsys vfs.FS, path string, v any, dirSyncErrs *atomic.Int64) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: marshal %s: %w", filepath.Base(path), err)
	}
	return writeFileAtomic(fsys, path, append(data, '\n'), dirSyncErrs)
}

// readJSON reads and unmarshals path into v.
func readJSON(fsys vfs.FS, path string, v any) error {
	data, err := vfs.Or(fsys).ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("campaign: parse %s: %w", filepath.Base(path), err)
	}
	return nil
}
