package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/journal"
)

// testSpec is a small, fast campaign: random search on helmholtz/a100 with
// a 16-sample dataset and a few virtual seconds of budget.
func testSpec(tenant string, seed int64) Spec {
	return Spec{
		Tenant:      tenant,
		Method:      "opentuner",
		Stencil:     "helmholtz",
		Arch:        "a100",
		DatasetSize: 16,
		BudgetS:     4,
		Seed:        seed,
	}
}

func openTestRegistry(t *testing.T, dir string, opts Options) *Registry {
	t.Helper()
	reg, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := reg.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return reg
}

// waitState polls until the campaign reaches want (or any terminal state if
// want is terminal and the campaign lands elsewhere — reported as a fatal).
func waitState(t *testing.T, reg *Registry, id string, want State) {
	t.Helper()
	c, err := reg.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		s := c.State()
		if s == want {
			return
		}
		if s.Terminal() {
			t.Fatalf("campaign %s landed in %s (reason %q), want %s", id, s, c.lc.Reason(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("campaign %s stuck in %s, want %s", id, c.State(), want)
}

// goldenCanonical runs spec uninterrupted in its own registry and returns
// the canonical result string.
func goldenCanonical(t *testing.T, spec Spec) string {
	t.Helper()
	reg := openTestRegistry(t, t.TempDir(), Options{Slots: 2})
	c, err := reg.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, reg, c.ID, StateCompleted)
	_, canonical, ok := c.Result()
	if !ok || canonical == "" {
		t.Fatal("completed campaign has no canonical result")
	}
	return canonical
}

func TestRegistrySubmitToCompletionDeterministic(t *testing.T) {
	spec := testSpec("acme", 1)
	first := goldenCanonical(t, spec)
	second := goldenCanonical(t, spec)
	if first != second {
		t.Fatalf("same spec, different canonicals:\n%s\n%s", first, second)
	}
}

func TestRegistryRestartResumesInterrupted(t *testing.T) {
	spec := testSpec("acme", 2)
	spec.BudgetS = 400 // ~100ms of wall time: room to interrupt mid-run
	golden := goldenCanonical(t, spec)

	dir := t.TempDir()
	reg, err := Open(dir, Options{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := reg.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id := c.ID
	time.Sleep(60 * time.Millisecond) // let some episodes reach the journal
	interrupted := c.State() == StateRunning
	// Simulated crash: Close cancels runners without any state transition,
	// exactly like process death after the last fsync.
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := openTestRegistry(t, dir, Options{Slots: 1})
	c2, err := reg2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, reg2, id, StateCompleted)
	st := c2.Status()
	if interrupted && st.Replayed == 0 {
		t.Error("interrupted campaign resumed without replaying any journaled episode")
	}
	_, canonical, ok := c2.Result()
	if !ok {
		t.Fatal("resumed campaign has no result")
	}
	if canonical != golden {
		t.Fatalf("resumed canonical differs from uninterrupted run:\n%s\n%s", canonical, golden)
	}
	checkInvariant(t, reg2.Ledgers())
}

func TestRegistryPauseResume(t *testing.T) {
	spec := testSpec("acme", 3)
	spec.BudgetS = 400
	golden := goldenCanonical(t, spec)

	reg := openTestRegistry(t, t.TempDir(), Options{Slots: 1})
	c, err := reg.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	if err := reg.Pause(c.ID); err != nil {
		if c.State() == StateCompleted {
			t.Skip("campaign completed before the pause landed")
		}
		t.Fatal(err)
	}
	waitState(t, reg, c.ID, StatePaused)
	if err := reg.ResumeCampaign(c.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, reg, c.ID, StateCompleted)
	_, canonical, _ := c.Result()
	if canonical != golden {
		t.Fatalf("pause/resume changed the result:\n%s\n%s", canonical, golden)
	}
	// Resuming a completed campaign is an illegal transition.
	if err := reg.ResumeCampaign(c.ID); !errors.Is(err, ErrTransition) {
		t.Fatalf("resume of completed campaign: got %v, want ErrTransition", err)
	}
}

func TestRegistryCancelAndDoubleCancel(t *testing.T) {
	reg := openTestRegistry(t, t.TempDir(), Options{Slots: 1})
	spec := testSpec("acme", 4)
	spec.BudgetS = 50 // long enough that cancel lands while running
	c, err := reg.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := reg.Cancel(c.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, reg, c.ID, StateCanceled)
	if err := reg.Cancel(c.ID); !errors.Is(err, ErrTransition) {
		t.Fatalf("double cancel: got %v, want ErrTransition", err)
	}
	checkInvariant(t, reg.Ledgers())
}

func TestRegistryCancelPending(t *testing.T) {
	reg := openTestRegistry(t, t.TempDir(), Options{Slots: 1, DisableAutostart: true})
	c, err := reg.Submit(testSpec("acme", 5))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.State(); got != StatePending {
		t.Fatalf("autostart disabled but campaign is %s", got)
	}
	if err := reg.Cancel(c.ID); err != nil {
		t.Fatal(err)
	}
	if got := c.State(); got != StateCanceled {
		t.Fatalf("state %s, want canceled", got)
	}
	// The reservation must be fully refunded.
	snap := reg.Ledgers().Snapshot("acme")
	if snap.ReservedS != 0 || snap.SpentS != 0 {
		t.Fatalf("cancelled pending campaign left ledger %+v", snap)
	}
}

func TestRegistryUnknownCampaign(t *testing.T) {
	reg := openTestRegistry(t, t.TempDir(), Options{})
	if _, err := reg.Get("c999999"); !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("got %v, want ErrUnknownCampaign", err)
	}
	if err := reg.Cancel("nope"); !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("got %v, want ErrUnknownCampaign", err)
	}
}

func TestRegistryTenantAdmissionControl(t *testing.T) {
	reg := openTestRegistry(t, t.TempDir(), Options{TenantBudgetS: 10, DisableAutostart: true})
	spec := testSpec("budgeted", 6) // BudgetS 4
	if _, err := reg.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Submit(spec); !errors.Is(err, ErrTenantBudget) {
		t.Fatalf("third campaign should exhaust the tenant budget, got %v", err)
	}
	// Another tenant is unaffected.
	other := testSpec("other", 6)
	if _, err := reg.Submit(other); err != nil {
		t.Fatalf("tenant isolation broken: %v", err)
	}
	checkInvariant(t, reg.Ledgers())
}

func TestRegistryValidationErrors(t *testing.T) {
	reg := openTestRegistry(t, t.TempDir(), Options{DisableAutostart: true})
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no-tenant", func(s *Spec) { s.Tenant = "" }},
		{"bad-method", func(s *Spec) { s.Method = "simulated-annealing" }},
		{"bad-stencil", func(s *Spec) { s.Stencil = "heat9000" }},
		{"bad-arch", func(s *Spec) { s.Arch = "h100" }},
		{"no-budget", func(s *Spec) { s.BudgetS = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := testSpec("acme", 1)
			tc.mut(&spec)
			if _, err := reg.Submit(spec); err == nil {
				t.Fatal("invalid spec admitted")
			}
		})
	}
}

// TestRegistryStartupHygiene is the quarantine table: a campaign directory
// whose journal is corrupt or from a different fingerprint must come up
// Failed with the journal renamed to .bad — and must not stop sibling
// campaigns from loading.
func TestRegistryStartupHygiene(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string, spec *Spec)
		wantBad bool
	}{
		{
			name: "corrupt-journal",
			corrupt: func(t *testing.T, dir string, spec *Spec) {
				if err := os.WriteFile(filepath.Join(dir, "journal.wal"), []byte("not a journal at all"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantBad: true,
		},
		{
			name: "fingerprint-mismatch",
			corrupt: func(t *testing.T, dir string, spec *Spec) {
				jr, err := journal.OpenOrCreate(filepath.Join(dir, "journal.wal"), "someone-else-entirely|v1")
				if err != nil {
					t.Fatal(err)
				}
				if err := jr.Close(); err != nil {
					t.Fatal(err)
				}
				spec.Fingerprint = "the-expected-campaign|v1"
			},
			wantBad: true,
		},
		{
			name: "unreadable-spec",
			corrupt: func(t *testing.T, dir string, spec *Spec) {
				if err := os.WriteFile(filepath.Join(dir, "spec.json"), []byte("{truncated"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantBad: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			dir := filepath.Join(root, "c000001")
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			spec := testSpec("acme", 7)
			c := &Campaign{ID: "c000001", Spec: spec, dir: dir, lc: NewLifecycle(nil)}
			if err := c.lc.To(StateRunning, ""); err != nil {
				t.Fatal(err)
			}
			if err := c.persistSpec(); err != nil {
				t.Fatal(err)
			}
			if err := c.persistState(); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, dir, &c.Spec)
			if err := c.persistSpec(); err != nil { // corrupt may have set Fingerprint
				t.Fatal(err)
			}
			if tc.name == "unreadable-spec" { // re-corrupt after the persist above
				tc.corrupt(t, dir, &c.Spec)
			}

			// A healthy sibling proves one bad campaign never aborts the scan.
			sib := &Campaign{ID: "c000002", Spec: testSpec("acme", 8), dir: filepath.Join(root, "c000002"), lc: NewLifecycle(nil)}
			if err := os.MkdirAll(sib.dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := sib.persistSpec(); err != nil {
				t.Fatal(err)
			}
			if err := sib.persistState(); err != nil {
				t.Fatal(err)
			}

			reg := openTestRegistry(t, root, Options{DisableAutostart: true})
			bad, err := reg.Get("c000001")
			if err != nil {
				t.Fatal(err)
			}
			if bad.State() != StateFailed {
				t.Fatalf("bad campaign state %s, want failed", bad.State())
			}
			if bad.lc.Reason() == "" {
				t.Fatal("quarantine reason not recorded")
			}
			if tc.wantBad {
				if _, err := os.Stat(filepath.Join(dir, "journal.wal.bad")); err != nil {
					t.Fatalf("journal not renamed to .bad: %v", err)
				}
				if _, err := os.Stat(filepath.Join(dir, "journal.wal")); !errors.Is(err, os.ErrNotExist) {
					t.Fatalf("original journal still present: %v", err)
				}
			}
			// The persisted state must agree after a second restart.
			if err := reg.Close(); err != nil {
				t.Fatal(err)
			}
			reg2 := openTestRegistry(t, root, Options{DisableAutostart: true})
			bad2, err := reg2.Get("c000001")
			if err != nil {
				t.Fatal(err)
			}
			if bad2.State() != StateFailed {
				t.Fatalf("state after second restart %s, want failed", bad2.State())
			}
			if sib2, err := reg2.Get("c000002"); err != nil || sib2.State() != StatePending {
				t.Fatalf("healthy sibling did not survive the scan: %v (state %v)", err, sib2.State())
			}
		})
	}
}

func TestRegistryListFiltersByTenant(t *testing.T) {
	reg := openTestRegistry(t, t.TempDir(), Options{DisableAutostart: true})
	for i, tenant := range []string{"a", "b", "a", "c"} {
		if _, err := reg.Submit(testSpec(tenant, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(reg.List("")); got != 4 {
		t.Fatalf("unfiltered list has %d campaigns, want 4", got)
	}
	got := reg.List("a")
	if len(got) != 2 {
		t.Fatalf("tenant a list has %d campaigns, want 2", len(got))
	}
	for _, st := range got {
		if st.Tenant != "a" {
			t.Fatalf("tenant filter leaked %q", st.Tenant)
		}
	}
}

func TestRegistrySubmitAfterCloseRefused(t *testing.T) {
	reg, err := Open(t.TempDir(), Options{DisableAutostart: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Submit(testSpec("acme", 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}
