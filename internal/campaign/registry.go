package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/stencil"
	"repro/internal/store"
	"repro/internal/vfs"
)

// Registry errors surfaced to the serving layer.
var (
	// ErrUnknownCampaign is returned for an id the registry does not hold.
	ErrUnknownCampaign = errors.New("campaign: unknown campaign")
	// ErrClosed is returned by operations on a closed registry.
	ErrClosed = errors.New("campaign: registry closed")
)

// The registry lock always nests outside any individual campaign's lock:
// registry methods look a campaign up under Registry.mu and then take
// Campaign.mu; campaign methods never reach back into the registry.
//
//cstlint:lockorder registry.mu < campaign.mu

// Options configures a registry.
type Options struct {
	// Clock is the wall-clock source for lifecycle stamps (nil = real time).
	Clock engine.Clock
	// Slots bounds concurrent live measurements across all campaigns
	// (the weighted-fair scheduler's capacity). 0 defaults to 2×GOMAXPROCS
	// via NewScheduler's caller, capped sensibly by Open.
	Slots int
	// TenantBudgetS is the default per-tenant virtual budget (0 = tenants
	// are unmetered unless SetTenantBudget is called).
	TenantBudgetS float64
	// Autostart, default true via Open, runs pending campaigns immediately.
	// Tests set DisableAutostart to drive campaigns by hand.
	DisableAutostart bool
	// EnableStore opens the shared cross-campaign result store under
	// <root>/store: every campaign consults it before measuring, publishes
	// successes back, and may warm-start from it (Spec.WarmStart). The
	// directory layout is multi-process safe — several registries may share
	// one root.
	EnableStore bool
	// StoreDir overrides the store location (default <root>/store); implies
	// EnableStore. Lets several registry roots share one store.
	StoreDir string
	// FS is the filesystem seam for every durable operation the registry,
	// its campaigns' journals, and the shared store perform (nil = the real
	// filesystem, vfs.OS). Chaos tests inject a vfs.FaultFS here.
	FS vfs.FS
}

// Registry owns every campaign under one root directory: one subdirectory
// per campaign holding spec.json, state.json, journal.wal and (once
// completed) result.json. Open scans the root, quarantines campaigns whose
// journal cannot be trusted, reconstructs tenant ledgers, and resumes every
// campaign that was pending or running when the previous process died —
// through the deterministic journal replay path, so the registry as a whole
// survives kill -9 with no lost work beyond unaccounted episodes.
type Registry struct {
	root     string
	fs       vfs.FS
	clock    engine.Clock
	sched    *Scheduler
	ledgers  *Ledgers
	opts     Options
	store    *store.Store // shared result store; nil when disabled
	storeDir string       // the store's directory; scan must not load it as a campaign

	// dirSyncErrs counts directory-fsync failures across the registry's own
	// persistence (spec/state/result writes, quarantine renames) — durable
	// data whose directory entry may not survive a power loss. Surfaced by
	// Health.
	dirSyncErrs atomic.Int64

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // submission order (directory scan order on restart)
	seq       int
	closed    bool

	fixMu    sync.Mutex
	fixtures map[fixtureKey]*fixtureEntry
}

type fixtureKey struct {
	stencil, arch string
	dsSize        int
	seed          int64
}

type fixtureEntry struct {
	once sync.Once
	fx   *harness.Fixture
	err  error
}

// Open creates (or reopens) the registry rooted at dir, scans existing
// campaign directories, reconstructs ledgers, and — unless autostart is
// disabled — resumes interrupted campaigns.
func Open(dir string, opts Options) (*Registry, error) {
	fsys := vfs.Or(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: open registry: %w", err)
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now // value use: the sanctioned wall-clock seam (engine.Clock)
	}
	slots := opts.Slots
	if slots <= 0 {
		slots = 8
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Registry{
		root:       dir,
		fs:         fsys,
		clock:      clock,
		sched:      NewScheduler(slots),
		ledgers:    NewLedgers(opts.TenantBudgetS),
		opts:       opts,
		baseCtx:    ctx,
		baseCancel: cancel,
		campaigns:  map[string]*Campaign{},
		fixtures:   map[fixtureKey]*fixtureEntry{},
	}
	if opts.EnableStore || opts.StoreDir != "" {
		sdir := opts.StoreDir
		if sdir == "" {
			sdir = filepath.Join(dir, "store")
		}
		st, err := store.OpenFS(fsys, sdir)
		if err != nil {
			cancel()
			return nil, err
		}
		r.store = st
		r.storeDir = sdir
	}
	if err := r.scan(); err != nil {
		cancel()
		if r.store != nil {
			_ = r.store.Close()
		}
		return nil, err
	}
	if !opts.DisableAutostart {
		r.StartPending()
	}
	return r, nil
}

// Ledgers exposes the tenant budget ledgers (the service layer reads
// snapshots and sets budgets through it).
func (r *Registry) Ledgers() *Ledgers { return r.ledgers }

// Scheduler exposes the fairness scheduler (diagnostics).
func (r *Registry) Scheduler() *Scheduler { return r.sched }

// Store exposes the shared result store; nil when disabled.
func (r *Registry) Store() *store.Store { return r.store }

// StoreStats snapshots the shared store's counters; enabled=false when the
// registry was opened without a store.
func (r *Registry) StoreStats() (store.Stats, bool) {
	if r.store == nil {
		return store.Stats{}, false
	}
	return r.store.Stats(), true
}

// scan loads every campaign directory under the root. A campaign whose
// journal is corrupt or was written under a different fingerprint is
// quarantined — journal renamed to journal.wal.bad, state Failed with the
// reason recorded — and the scan continues; one bad campaign never aborts
// registry startup.
func (r *Registry) scan() error {
	entries, err := r.fs.ReadDir(r.root)
	if err != nil {
		return fmt.Errorf("campaign: scan: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		// The shared result store lives under the root too (default
		// <root>/store); its directory is not a campaign. Skip the reserved
		// name even when the store is disabled this run — a root that once
		// ran with a store must not resurrect it as a failed campaign.
		if e.Name() == "store" || (r.storeDir != "" && filepath.Join(r.root, e.Name()) == r.storeDir) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names) // deterministic load order; ids sort as submission order
	for _, name := range names {
		c, err := r.load(name)
		if err != nil {
			return err
		}
		r.campaigns[c.ID] = c
		r.order = append(r.order, c.ID)
		if n := idSeq(c.ID); n > r.seq {
			r.seq = n
		}
	}
	return nil
}

// idSeq parses the numeric sequence out of a campaign id ("c000042" → 42);
// 0 for foreign names.
func idSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "c%06d", &n); err != nil {
		return 0
	}
	return n
}

// load reconstructs one campaign from its directory. Load failures are
// quarantined into a Failed campaign rather than propagated: startup
// hygiene demands the registry come up with every loadable campaign intact.
func (r *Registry) load(id string) (*Campaign, error) {
	c := &Campaign{ID: id, dir: filepath.Join(r.root, id), fs: r.fs, dirSyncErrs: &r.dirSyncErrs}

	if err := readJSON(r.fs, c.specPath(), &c.Spec); err != nil {
		c.lc = NewLifecycle(r.clock)
		r.failLoaded(c, fmt.Sprintf("unreadable spec.json: %v", err))
		return c, nil
	}

	var ps persistedState
	switch err := readJSON(r.fs, c.statePath(), &ps); {
	case err == nil:
		lc, lerr := RestoreLifecycle(r.clock, ps.State, ps.Transitions)
		if lerr != nil {
			c.lc = NewLifecycle(r.clock)
			r.failLoaded(c, fmt.Sprintf("unreadable state.json: %v", lerr))
			return c, nil
		}
		c.lc = lc
		c.settledS = ps.SettledS
	case errors.Is(err, os.ErrNotExist):
		// Crash between mkdir and the first state write: a fresh pending
		// campaign.
		c.lc = NewLifecycle(r.clock)
	default:
		c.lc = NewLifecycle(r.clock)
		r.failLoaded(c, fmt.Sprintf("unreadable state.json: %v", err))
		return c, nil
	}

	// Startup hygiene: validate the journal before trusting the campaign.
	// ErrCorrupt (untrustable header) and ErrFingerprint (journal from a
	// differently-configured campaign) quarantine this one campaign; torn
	// tails are not errors — journal.Open truncates and recovers them.
	if !c.lc.State().Terminal() {
		if _, statErr := r.fs.Stat(c.journalPath()); statErr == nil {
			jr, jerr := journal.OpenFS(r.fs, c.journalPath(), c.Spec.Fingerprint)
			switch {
			case jerr == nil:
				_ = jr.Close() // validation-only open; nothing was written
			case errors.Is(jerr, journal.ErrCorrupt), errors.Is(jerr, journal.ErrFingerprint):
				r.quarantineJournal(c, jerr)
				return c, nil
			default:
				r.failLoaded(c, fmt.Sprintf("journal unreadable: %v", jerr))
				return c, nil
			}
		}
	}

	// Ledger reconstruction: terminal campaigns re-apply their settled
	// spend; live ones re-reserve their full budget (forced — they were
	// admitted before the crash, and a restart never orphans admitted work).
	switch c.lc.State() {
	case StateCompleted:
		if err := c.loadResult(); err != nil {
			r.failLoaded(c, fmt.Sprintf("completed campaign without readable result.json: %v", err))
			return c, nil
		}
		r.ledgers.RestoreSpent(c.Spec.Tenant, c.settledS)
	case StateFailed, StateCanceled:
		r.ledgers.RestoreSpent(c.Spec.Tenant, c.settledS)
	default:
		_ = r.ledgers.Reserve(c.Spec.Tenant, c.Spec.BudgetS, true) // forced: cannot fail
	}
	return c, nil
}

// failLoaded forces a loaded campaign into StateFailed with the reason and
// persists the state (best-effort — the load itself must not fail).
func (r *Registry) failLoaded(c *Campaign, reason string) {
	if err := c.lc.To(StateFailed, reason); err != nil {
		// Terminal already (e.g. a Failed campaign whose journal rotted
		// later): the recorded state stands.
		return
	}
	// Best-effort persistence: the disk is already misbehaving for this
	// campaign, and the in-memory Failed state and reason still stand.
	_ = c.persistState()
}

// quarantineJournal renames the untrusted journal to journal.wal.bad and
// fails the campaign with the precise reason, preserving the bytes for
// post-mortem. The registry keeps serving every other campaign.
func (r *Registry) quarantineJournal(c *Campaign, cause error) {
	bad := c.journalPath() + ".bad"
	if err := r.fs.Rename(c.journalPath(), bad); err != nil {
		r.failLoaded(c, fmt.Sprintf("journal quarantine failed: %v (original error: %v)", err, cause))
		return
	}
	r.syncDir(bad)
	r.failLoaded(c, fmt.Sprintf("journal quarantined to %s: %v", filepath.Base(bad), cause))
}

// syncDir fsyncs path's directory so a rename or create is durable.
// Best-effort — the data already hit its file — but counted, never silent.
func (r *Registry) syncDir(path string) {
	if err := vfs.SyncDirOf(r.fs, path); err != nil {
		r.dirSyncErrs.Add(1)
	}
}

// DirSyncErrs returns the count of directory-fsync failures across the
// registry's persistence operations.
func (r *Registry) DirSyncErrs() int64 { return r.dirSyncErrs.Load() }

// Health is the registry's per-subsystem health snapshot — the body behind
// the service's /v1/healthz.
type Health struct {
	// Campaigns counts registered campaigns; ByState breaks them down.
	Campaigns int           `json:"campaigns"`
	ByState   map[State]int `json:"by_state,omitempty"`
	// Store is the shared result store's mode: "ok", "degraded" (sticky
	// write failure — hits keep serving and misses keep measuring, but new
	// results stop persisting) or "disabled".
	Store         string `json:"store"`
	StoreWriteErr string `json:"store_write_err,omitempty"`
	StorePutDrops int    `json:"store_put_drops,omitempty"`
	// DirSyncErrs counts directory-fsync failures across registry
	// persistence (spec/state/result writes, quarantine renames).
	DirSyncErrs int64 `json:"dir_sync_errs,omitempty"`
	// Degraded is true when any durable subsystem is below full fidelity.
	// The daemon keeps serving either way — that is the point.
	Degraded bool `json:"degraded"`
}

// Health snapshots per-subsystem health. The registry stays up through
// storage trouble: a degraded store or a failed campaign never takes the
// process down, and this snapshot is how operators find out.
func (r *Registry) Health() Health {
	h := Health{Store: "disabled", ByState: map[State]int{}}
	r.mu.Lock()
	h.Campaigns = len(r.campaigns)
	for _, c := range r.campaigns {
		h.ByState[c.lc.State()]++ // pure counting: map order cannot leak
	}
	r.mu.Unlock()
	if r.store != nil {
		st := r.store.Stats()
		h.Store = "ok"
		if st.WriteErr != "" {
			h.Store = "degraded"
			h.StoreWriteErr = st.WriteErr
		}
		h.StorePutDrops = st.PutDrops
	}
	h.DirSyncErrs = r.dirSyncErrs.Load()
	h.Degraded = h.Store == "degraded" || h.DirSyncErrs > 0
	return h
}

// fixture returns the (cached) fixture for a spec. Fixtures are immutable
// after construction and safe for concurrent use, so campaigns with the
// same (stencil, arch, dataset, seed) share one.
func (r *Registry) fixture(spec Spec) (*harness.Fixture, error) {
	key := fixtureKey{stencil: spec.Stencil, arch: spec.Arch, dsSize: spec.DatasetSize, seed: spec.Seed}
	r.fixMu.Lock()
	e := r.fixtures[key]
	if e == nil {
		e = &fixtureEntry{}
		r.fixtures[key] = e
	}
	r.fixMu.Unlock()
	e.once.Do(func() {
		st := stencil.ByName(spec.Stencil)
		if st == nil {
			e.err = fmt.Errorf("campaign: unknown stencil %q", spec.Stencil)
			return
		}
		arch, err := gpu.ByName(spec.Arch)
		if err != nil {
			e.err = err
			return
		}
		e.fx, e.err = harness.NewFixture(st, arch, spec.DatasetSize, spec.Seed)
	})
	return e.fx, e.err
}

// Submit validates and admits a new campaign: the tenant ledger reserves
// its budget, the campaign directory and spec are persisted, and (unless
// autostart is disabled) a runner starts it immediately.
func (r *Registry) Submit(spec Spec) (*Campaign, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec.Fingerprint = "" // assigned by the first run, never by the caller
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if err := r.ledgers.Reserve(spec.Tenant, spec.BudgetS, false); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	r.seq++
	id := fmt.Sprintf("c%06d", r.seq)
	c := &Campaign{
		ID: id, Spec: spec, dir: filepath.Join(r.root, id),
		lc: NewLifecycle(r.clock), fs: r.fs, dirSyncErrs: &r.dirSyncErrs,
	}
	r.campaigns[id] = c
	r.order = append(r.order, id)
	r.mu.Unlock()

	if err := r.fs.MkdirAll(c.dir, 0o755); err != nil {
		r.evict(c)
		return nil, fmt.Errorf("campaign: mkdir: %w", err)
	}
	r.syncDir(filepath.Join(c.dir, "spec.json")) // durably record the new directory in the root
	if err := c.persistSpec(); err != nil {
		r.evict(c)
		return nil, err
	}
	if err := c.persistState(); err != nil {
		r.evict(c)
		return nil, err
	}
	if !r.opts.DisableAutostart {
		r.start(c)
	}
	return c, nil
}

// evict rolls back a failed admission: the reservation is released and the
// campaign disappears from the registry.
func (r *Registry) evict(c *Campaign) {
	r.ledgers.Settle(c.Spec.Tenant, c.Spec.BudgetS, 0)
	r.mu.Lock()
	delete(r.campaigns, c.ID)
	for i, oid := range r.order {
		if oid == c.ID {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
}

// StartPending starts a runner for every pending campaign (used by Open's
// autostart and by tests that submit with autostart disabled).
func (r *Registry) StartPending() {
	r.mu.Lock()
	var pending []*Campaign
	for _, id := range r.order {
		c := r.campaigns[id]
		if c.lc.State() == StatePending {
			pending = append(pending, c)
		}
	}
	r.mu.Unlock()
	for _, c := range pending {
		r.start(c)
	}
}

// start transitions a pending or paused campaign to Running and spawns its
// runner goroutine. Lost races (someone else started it) are no-ops.
func (r *Registry) start(c *Campaign) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(r.baseCtx)
	c.mu.Lock()
	if c.cancel != nil { // already owned by a runner
		c.mu.Unlock()
		r.mu.Unlock()
		cancel()
		return
	}
	c.cancel = cancel
	c.intent = ""
	c.mu.Unlock()
	if err := c.lc.To(StateRunning, ""); err != nil {
		c.mu.Lock()
		c.cancel, c.intent = nil, ""
		c.mu.Unlock()
		r.mu.Unlock()
		cancel()
		return
	}
	r.wg.Add(1)
	r.mu.Unlock()
	// Persistence trouble is not fatal to the run: the journal still makes
	// the campaign resumable, at worst from Pending.
	_ = c.persistState()
	go func() {
		defer r.wg.Done()
		defer cancel()
		r.run(ctx, c)
	}()
}

// run executes one campaign to an outcome and settles the lifecycle,
// persistence and ledger for it. It owns c.cancel until it returns.
func (r *Registry) run(ctx context.Context, c *Campaign) {
	finishInterrupt := func() {
		c.mu.Lock()
		intent := c.intent
		c.intent = ""
		c.cancel, c.intent = nil, ""
		c.mu.Unlock()
		switch intent {
		case StateCanceled:
			r.settleTerminal(c, StateCanceled, "canceled by request")
		case StatePaused:
			if err := c.lc.To(StatePaused, "paused by request"); err == nil {
				_ = c.persistState() // best-effort; journal already holds the episodes
			}
		default:
			// Registry shutdown: no transition — the persisted Running
			// state is exactly what makes the next Open resume this
			// campaign.
		}
	}

	fx, err := r.fixture(c.Spec)
	if err != nil {
		c.mu.Lock()
		c.cancel, c.intent = nil, ""
		c.mu.Unlock()
		r.settleTerminal(c, StateFailed, fmt.Sprintf("fixture: %v", err))
		return
	}

	cfg := c.config(Gate(ctx, r.sched, c.Spec.Tenant, c.Spec.Weight))
	if r.store != nil {
		cfg.Store = r.store
		if c.Spec.WarmStart > 0 && c.Spec.Fingerprint == "" && c.Spec.WarmKeys == nil {
			// Resolve warm seeds exactly once, before the fingerprint below
			// freezes them into the campaign identity. ResolveWarmKeys
			// returns a non-nil slice even when the store has nothing, so an
			// empty resolution persists as "resolved, cold" and is never
			// retried against a store that has since grown.
			c.Spec.WarmKeys = harness.ResolveWarmKeys(r.store, fx, c.Spec.WarmStart)
		}
		cfg.WarmStart = harness.ParseWarmKeys(fx.Space, c.Spec.WarmKeys)
	}
	fp := harness.CampaignFingerprint(fx, cfg)
	if c.Spec.Fingerprint == "" {
		c.Spec.Fingerprint = fp
		_ = c.persistSpec() // journal identity is still enforced by the journal itself
	}

	cr, err := harness.PrepareCampaign(fx, cfg)
	if err != nil {
		c.mu.Lock()
		c.cancel, c.intent = nil, ""
		c.mu.Unlock()
		if errors.Is(err, journal.ErrCorrupt) || errors.Is(err, journal.ErrFingerprint) {
			r.quarantineJournal(c, err)
			r.settleTerminalLedgerOnly(c)
			return
		}
		r.settleTerminal(c, StateFailed, fmt.Sprintf("prepare: %v", err))
		return
	}
	c.mu.Lock()
	c.eng = cr.Engine()
	c.mu.Unlock()

	res, err := cr.Execute(ctx)
	_ = cr.Close() // teardown after the last fsynced frame; nothing can act on the error
	c.mu.Lock()
	c.eng = nil
	c.mu.Unlock()

	if ctx.Err() != nil {
		finishInterrupt()
		return
	}
	c.mu.Lock()
	c.cancel, c.intent = nil, ""
	c.mu.Unlock()
	if err != nil {
		r.settleTerminal(c, StateFailed, fmt.Sprintf("execute: %v", err))
		return
	}
	c.mu.Lock()
	c.result, c.canonical = res, res.Canonical()
	c.mu.Unlock()
	if perr := c.persistResult(res); perr != nil {
		r.settleTerminal(c, StateFailed, fmt.Sprintf("persist result: %v", perr))
		return
	}
	if r.store != nil {
		// Make this campaign's published measurements visible to concurrent
		// processes sharing the store directory. Best-effort: the store is a
		// cache, and a flush failure must not fail a completed campaign.
		_ = r.store.Flush()
	}
	r.settleTerminalWithSpend(c, StateCompleted, "", res.Stats.SpentS)
}

// settleTerminal moves c to a terminal state, settles the tenant ledger
// (charging the engine's actual spend when a live engine or result is
// available, else zero), and persists the state.
func (r *Registry) settleTerminal(c *Campaign, s State, reason string) {
	spent := 0.0
	c.mu.Lock()
	if c.result != nil {
		spent = c.result.Stats.SpentS
	} else if c.eng != nil {
		spent = c.eng.SpentS()
	}
	c.mu.Unlock()
	r.settleTerminalWithSpend(c, s, reason, spent)
}

// settleTerminalWithSpend is settleTerminal with an explicit spend.
func (r *Registry) settleTerminalWithSpend(c *Campaign, s State, reason string, spentS float64) {
	if err := c.lc.To(s, reason); err != nil {
		return // already terminal; ledger settled by whoever got there first
	}
	settled := spentS
	if settled > c.Spec.BudgetS {
		settled = c.Spec.BudgetS
	}
	if settled < 0 {
		settled = 0
	}
	c.mu.Lock()
	c.settledS = settled
	c.mu.Unlock()
	r.ledgers.Settle(c.Spec.Tenant, c.Spec.BudgetS, settled)
	_ = c.persistState() // in-memory state stands; a restart re-settles from the journal
}

// settleTerminalLedgerOnly releases the ledger reservation for a campaign
// whose terminal transition already happened (quarantine path).
func (r *Registry) settleTerminalLedgerOnly(c *Campaign) {
	c.mu.Lock()
	already := c.settledS
	c.mu.Unlock()
	if already == 0 {
		r.ledgers.Settle(c.Spec.Tenant, c.Spec.BudgetS, 0)
	}
}

// Get returns the campaign by id.
func (r *Registry) Get(id string) (*Campaign, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.campaigns[id]
	if c == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCampaign, id)
	}
	return c, nil
}

// List returns campaign statuses in submission order, optionally filtered
// by tenant ("" = all).
func (r *Registry) List(tenant string) []Status {
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	camps := make([]*Campaign, 0, len(ids))
	for _, id := range ids {
		camps = append(camps, r.campaigns[id])
	}
	r.mu.Unlock()
	out := make([]Status, 0, len(camps))
	for _, c := range camps {
		if tenant != "" && c.Spec.Tenant != tenant {
			continue
		}
		out = append(out, c.Status())
	}
	return out
}

// Cancel requests cancellation of a campaign. A pending or running campaign
// is interrupted and lands in StateCanceled; a paused one cancels directly.
// Cancelling a terminal campaign — or re-cancelling one whose cancellation
// is already in flight — returns ErrTransition.
func (r *Registry) Cancel(id string) error { return r.interrupt(id, StateCanceled) }

// Pause requests a pause: the run context is cancelled, the journal keeps
// every paid-for episode, and ResumeCampaign later re-runs through replay.
func (r *Registry) Pause(id string) error { return r.interrupt(id, StatePaused) }

func (r *Registry) interrupt(id string, want State) error {
	c, err := r.Get(id)
	if err != nil {
		return err
	}
	c.mu.Lock()
	cancel, intent := c.cancel, c.intent
	if cancel != nil && intent == "" {
		c.intent = want
	}
	c.mu.Unlock()

	if cancel != nil {
		if intent != "" {
			return fmt.Errorf("%w: %s already requested", ErrTransition, intent)
		}
		cancel()
		return nil
	}
	// No runner owns the campaign: transition directly (paused → canceled
	// is the meaningful case; everything illegal is refused here).
	if want == StateCanceled {
		state := c.lc.State()
		if state == StatePaused || state == StatePending {
			r.settleTerminal(c, StateCanceled, "canceled by request")
			return nil
		}
	}
	return fmt.Errorf("%w: %s → %s", ErrTransition, c.lc.State(), want)
}

// ResumeCampaign restarts a paused campaign through the journal replay
// path: the runner re-executes the campaign from the start and the engine
// serves every journaled episode back before any live measurement runs.
// Resuming anything else returns ErrTransition.
func (r *Registry) ResumeCampaign(id string) error {
	c, err := r.Get(id)
	if err != nil {
		return err
	}
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return ErrClosed
	}
	c.mu.Lock()
	owned := c.cancel != nil
	c.mu.Unlock()
	if owned || c.lc.State() != StatePaused {
		return fmt.Errorf("%w: %s → %s", ErrTransition, c.lc.State(), StateRunning)
	}
	r.start(c)
	return nil
}

// Close gracefully shuts the registry down: new submissions are refused,
// every running campaign's context is cancelled (in-flight episodes abort
// as ClassCanceled — never journaled, so at most unaccounted work is
// re-measured on resume), runner goroutines are drained, and every journal
// was already fsync'd by its last append. Campaign state files keep their
// Running state on disk, which is precisely what makes the next Open resume
// them.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.baseCancel()
	r.wg.Wait()
	if r.store != nil {
		// After the runner drain: no campaign can publish anymore.
		return r.store.Close()
	}
	return nil
}
