package stencil

import (
	"math"
	"testing"
)

func TestSuiteMatchesTableIII(t *testing.T) {
	want := []struct {
		name     string
		n        int
		order    int
		flops    int
		ioArrays int
	}{
		{"j3d7pt", 512, 1, 10, 2},
		{"j3d27pt", 512, 1, 32, 2},
		{"helmholtz", 512, 2, 17, 2},
		{"cheby", 512, 1, 38, 5},
		{"hypterm", 320, 4, 358, 13},
		{"addsgd4", 320, 2, 373, 10},
		{"addsgd6", 320, 3, 626, 10},
		{"rhs4center", 320, 2, 666, 8},
	}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite size = %d, want %d", len(suite), len(want))
	}
	for i, w := range want {
		s := suite[i]
		if s.Name != w.name {
			t.Errorf("suite[%d].Name = %s, want %s", i, s.Name, w.name)
		}
		if s.NX != w.n || s.NY != w.n || s.NZ != w.n {
			t.Errorf("%s grid = %dx%dx%d, want %d³", s.Name, s.NX, s.NY, s.NZ, w.n)
		}
		if s.Order != w.order {
			t.Errorf("%s order = %d, want %d", s.Name, s.Order, w.order)
		}
		if s.FLOPs != w.flops {
			t.Errorf("%s FLOPs = %d, want %d", s.Name, s.FLOPs, w.flops)
		}
		if got := s.Inputs + s.Outputs; got != w.ioArrays {
			t.Errorf("%s IO arrays = %d, want %d", s.Name, got, w.ioArrays)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", s.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if s := ByName("cheby"); s == nil || s.Name != "cheby" {
		t.Fatalf("ByName(cheby) = %v", s)
	}
	if s := ByName("nope"); s != nil {
		t.Fatalf("ByName(nope) = %v, want nil", s)
	}
}

func TestValidateRejectsBadStencils(t *testing.T) {
	base := J3D7PT()
	cases := []struct {
		name   string
		mutate func(*Stencil)
	}{
		{"empty name", func(s *Stencil) { s.Name = "" }},
		{"zero grid", func(s *Stencil) { s.NX = 0 }},
		{"negative order", func(s *Stencil) { s.Order = -1 }},
		{"no inputs", func(s *Stencil) { s.Inputs = 0 }},
		{"no outputs", func(s *Stencil) { s.Outputs = 0 }},
		{"no taps", func(s *Stencil) { s.Taps = nil }},
		{"zero flops", func(s *Stencil) { s.FLOPs = 0 }},
		{"tap array out of range", func(s *Stencil) { s.Taps[0].Array = 5 }},
		{"tap offset beyond order", func(s *Stencil) { s.Taps[1].DX = 3 }},
	}
	for _, c := range cases {
		s := *base
		s.Taps = append([]Tap(nil), base.Taps...)
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid stencil", c.name)
		}
	}
}

func TestStarBoxTapCounts(t *testing.T) {
	if got := len(StarTaps(1, 0)); got != 7 {
		t.Errorf("StarTaps(1) = %d taps, want 7", got)
	}
	if got := len(StarTaps(4, 0)); got != 25 {
		t.Errorf("StarTaps(4) = %d taps, want 25", got)
	}
	if got := len(BoxTaps(1, 0)); got != 27 {
		t.Errorf("BoxTaps(1) = %d taps, want 27", got)
	}
	if got := len(BoxTaps(2, 0)); got != 125 {
		t.Errorf("BoxTaps(2) = %d taps, want 125", got)
	}
}

func TestStarTapsCoeffSum(t *testing.T) {
	// Smoothing kernels must sum to 1 so iterated application is stable.
	for order := 1; order <= 4; order++ {
		sum := 0.0
		for _, tp := range StarTaps(order, 0) {
			sum += tp.Coeff
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("StarTaps(%d) coeff sum = %v, want 1", order, sum)
		}
	}
	sum := 0.0
	for _, tp := range BoxTaps(2, 0) {
		sum += tp.Coeff
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("BoxTaps(2) coeff sum = %v, want 1", sum)
	}
}

func TestDimAndPoints(t *testing.T) {
	s := Hypterm()
	if s.Dim(1) != 320 || s.Dim(2) != 320 || s.Dim(3) != 320 {
		t.Fatal("Dim mismatch")
	}
	if s.Points() != 320*320*320 {
		t.Fatalf("Points = %d", s.Points())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dim(0) should panic")
		}
	}()
	s.Dim(0)
}

func TestWorkAndIntensity(t *testing.T) {
	s := J3D7PT()
	if got := s.TotalFLOPs(); got != 512*512*512*10 {
		t.Fatalf("TotalFLOPs = %d", got)
	}
	if got := s.BytesMoved(); got != 512*512*512*2*8 {
		t.Fatalf("BytesMoved = %d", got)
	}
	ai := s.ArithmeticIntensity()
	if math.Abs(ai-10.0/16.0) > 1e-12 {
		t.Fatalf("AI = %v", ai)
	}
	// High-FLOP stencils must have much higher intensity — that is what
	// drives the compute/memory-bound split in the simulator.
	if RHS4Center().ArithmeticIntensity() <= 4*ai {
		t.Fatal("rhs4center should be far more compute-intense than j3d7pt")
	}
}

func TestUniqueOffsets(t *testing.T) {
	if got := J3D7PT().UniqueOffsets(); got != 7 {
		t.Fatalf("j3d7pt unique offsets = %d", got)
	}
	// Duplicated taps collapse.
	s := J3D7PT()
	s.Taps = append(s.Taps, s.Taps[0])
	if got := s.UniqueOffsets(); got != 7 {
		t.Fatalf("unique offsets with dup = %d", got)
	}
}

func TestHaloVolume(t *testing.T) {
	s := Helmholtz() // order 2
	hv := s.HaloVolume(8, 8, 1)
	want := float64(12*12*5) / float64(8*8*1)
	if math.Abs(hv-want) > 1e-12 {
		t.Fatalf("HaloVolume = %v, want %v", hv, want)
	}
	if s.HaloVolume(0, 8, 8) != 1 {
		t.Fatal("degenerate tile should report 1")
	}
	// Larger tiles amortize halos better.
	if s.HaloVolume(16, 16, 4) >= s.HaloVolume(4, 4, 1) {
		t.Fatal("larger tile should have smaller halo factor")
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := NewGrid(4, 5, 6, 2)
	g.Set(0, 0, 0, 3.5)
	g.Set(3, 4, 5, -1.25)
	g.Set(-2, -2, -2, 9) // halo corner
	if g.At(0, 0, 0) != 3.5 || g.At(3, 4, 5) != -1.25 || g.At(-2, -2, -2) != 9 {
		t.Fatal("grid get/set round trip failed")
	}
}

func TestGridCloneIndependent(t *testing.T) {
	g := NewGrid(3, 3, 3, 1)
	g.Set(1, 1, 1, 7)
	c := g.Clone()
	c.Set(1, 1, 1, 8)
	if g.At(1, 1, 1) != 7 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestGridMaxAbsDiff(t *testing.T) {
	g := NewGrid(3, 3, 3, 0)
	h := NewGrid(3, 3, 3, 0)
	h.Set(2, 2, 2, 0.5)
	d, err := g.MaxAbsDiff(h)
	if err != nil || d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v,%v", d, err)
	}
	bad := NewGrid(2, 3, 3, 0)
	if _, err := g.MaxAbsDiff(bad); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestNewGridPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(0,...) should panic")
		}
	}()
	NewGrid(0, 1, 1, 0)
}

func TestApplyMatchesManualSweep(t *testing.T) {
	s := Shrink(Helmholtz(), 10, 9, 8)
	in, out := MakeGrids(s, s.NX, s.NY, s.NZ)
	if err := Apply(s, in, out, 3); err != nil {
		t.Fatal(err)
	}
	// Spot-check a handful of points against a direct tap evaluation.
	pts := [][3]int{{0, 0, 0}, {9, 8, 7}, {5, 4, 3}, {1, 7, 2}}
	for _, p := range pts {
		want := 0.0
		for _, tp := range s.Taps {
			want += tp.Coeff * in[tp.Array].At(p[0]+tp.DX, p[1]+tp.DY, p[2]+tp.DZ)
		}
		if got := out[0].At(p[0], p[1], p[2]); math.Abs(got-want) > 1e-13 {
			t.Fatalf("Apply at %v = %v, want %v", p, got, want)
		}
	}
}

func TestApplyWorkerCountInvariance(t *testing.T) {
	s := Shrink(Cheby(), 12, 11, 10)
	in, out1 := MakeGrids(s, s.NX, s.NY, s.NZ)
	_, out2 := MakeGrids(s, s.NX, s.NY, s.NZ)
	if err := Apply(s, in, out1, 1); err != nil {
		t.Fatal(err)
	}
	if err := Apply(s, in, out2, 7); err != nil {
		t.Fatal(err)
	}
	d, err := out1[0].MaxAbsDiff(out2[0])
	if err != nil || d != 0 {
		t.Fatalf("worker count changed results: diff=%v err=%v", d, err)
	}
}

func TestApplyMultiOutputStagger(t *testing.T) {
	s := Shrink(AddSGD4(), 8, 8, 8)
	in, out := MakeGrids(s, 8, 8, 8)
	if err := Apply(s, in, out, 0); err != nil {
		t.Fatal(err)
	}
	// Output k must equal output 0 scaled by OutputScale(k).
	for k := 1; k < s.Outputs; k++ {
		for _, p := range [][3]int{{0, 0, 0}, {7, 7, 7}, {3, 2, 1}} {
			want := out[0].At(p[0], p[1], p[2]) * OutputScale(k)
			got := out[k].At(p[0], p[1], p[2])
			if math.Abs(got-want) > 1e-13 {
				t.Fatalf("output %d at %v = %v, want %v", k, p, got, want)
			}
		}
	}
}

func TestApplyErrors(t *testing.T) {
	s := Shrink(J3D7PT(), 8, 8, 8)
	in, out := MakeGrids(s, 8, 8, 8)
	if err := Apply(s, nil, out, 1); err == nil {
		t.Fatal("missing inputs should error")
	}
	if err := Apply(s, in, nil, 1); err == nil {
		t.Fatal("missing outputs should error")
	}
	// Wrong extent.
	badIn := []*Grid{NewGrid(4, 8, 8, 1)}
	if err := Apply(s, badIn, out, 1); err == nil {
		t.Fatal("wrong extent should error")
	}
	// Insufficient halo.
	noHalo := []*Grid{NewGrid(8, 8, 8, 0)}
	if err := Apply(s, noHalo, out, 1); err == nil {
		t.Fatal("halo < order should error")
	}
	bad := *s
	bad.FLOPs = 0
	if err := Apply(&bad, in, out, 1); err == nil {
		t.Fatal("invalid stencil should error")
	}
}

func TestShrinkDoesNotAliasTaps(t *testing.T) {
	s := J3D7PT()
	c := Shrink(s, 8, 8, 8)
	c.Taps[0].Coeff = 99
	if s.Taps[0].Coeff == 99 {
		t.Fatal("Shrink aliases the tap slice")
	}
}

func BenchmarkApplyJ3D7PT32(b *testing.B) {
	s := Shrink(J3D7PT(), 32, 32, 32)
	in, out := MakeGrids(s, 32, 32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Apply(s, in, out, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyRHS4Center16(b *testing.B) {
	s := Shrink(RHS4Center(), 16, 16, 16)
	in, out := MakeGrids(s, 16, 16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Apply(s, in, out, 0); err != nil {
			b.Fatal(err)
		}
	}
}
