// Package stencil defines complex stencil computations — the workloads
// csTuner tunes — as first-class values: the access pattern (taps), stencil
// order, floating-point cost, grid extent, and I/O array layout.
//
// The package ships the eight 3-D double-precision benchmark stencils of the
// paper's Table III (taken originally from Rawat et al., PPoPP'18) and a
// goroutine-parallel CPU reference executor used to validate transformed
// kernel iteration orders against the naive sweep.
package stencil

import (
	"errors"
	"fmt"
)

// Tap is one access of a stencil: read input array Array at offset
// (DX, DY, DZ) from the centre point, scaled by Coeff.
type Tap struct {
	Array      int     // input array index in [0, Inputs)
	DX, DY, DZ int     // offsets; |offset| <= Order along each axis
	Coeff      float64 // multiplicative coefficient
}

// Stencil describes one stencil computation over a 3-D grid. X is the
// innermost (unit-stride) dimension, matching the CUDA layout the paper
// targets.
type Stencil struct {
	Name string

	// NX, NY, NZ are the interior grid extents M1, M2, M3 (Table III).
	NX, NY, NZ int

	// Order is the stencil order: the largest |offset| along any axis.
	Order int

	// FLOPs is the number of double-precision floating point operations a
	// single output point costs (Table III).
	FLOPs int

	// Inputs and Outputs are the number of distinct input and output
	// arrays; Inputs+Outputs is the "# I/O Arrays" column of Table III.
	Inputs  int
	Outputs int

	// Taps lists every read performed per output point. Reference and
	// transformed executors compute
	//   out[k][p] = sum_{t in Taps} t.Coeff * in[t.Array][p + t.offset]
	// for every output array k (output arrays share the tap pattern; real
	// codes differ per array but the data-movement shape is identical).
	Taps []Tap

	// Coeffs is the number of scalar coefficients, the candidate payload
	// for constant memory.
	Coeffs int
}

// Validate checks internal consistency of the stencil description.
func (s *Stencil) Validate() error {
	if s.Name == "" {
		return errors.New("stencil: empty name")
	}
	if s.NX <= 0 || s.NY <= 0 || s.NZ <= 0 {
		return fmt.Errorf("stencil %s: non-positive grid %dx%dx%d", s.Name, s.NX, s.NY, s.NZ)
	}
	if s.Order < 0 {
		return fmt.Errorf("stencil %s: negative order %d", s.Name, s.Order)
	}
	if s.Inputs < 1 || s.Outputs < 1 {
		return fmt.Errorf("stencil %s: needs at least one input and one output array", s.Name)
	}
	if len(s.Taps) == 0 {
		return fmt.Errorf("stencil %s: no taps", s.Name)
	}
	if s.FLOPs <= 0 {
		return fmt.Errorf("stencil %s: non-positive FLOPs %d", s.Name, s.FLOPs)
	}
	for i, t := range s.Taps {
		if t.Array < 0 || t.Array >= s.Inputs {
			return fmt.Errorf("stencil %s: tap %d references array %d outside [0,%d)", s.Name, i, t.Array, s.Inputs)
		}
		if abs(t.DX) > s.Order || abs(t.DY) > s.Order || abs(t.DZ) > s.Order {
			return fmt.Errorf("stencil %s: tap %d offset (%d,%d,%d) exceeds order %d",
				s.Name, i, t.DX, t.DY, t.DZ, s.Order)
		}
	}
	return nil
}

// Dim returns the grid extent of the given axis (1=X, 2=Y, 3=Z), matching
// the paper's M_n notation where M_SD bounds the concurrent-streaming tiles.
func (s *Stencil) Dim(axis int) int {
	switch axis {
	case 1:
		return s.NX
	case 2:
		return s.NY
	case 3:
		return s.NZ
	}
	panic(fmt.Sprintf("stencil: invalid axis %d", axis))
}

// Points returns the number of interior output points of the grid.
func (s *Stencil) Points() int64 {
	return int64(s.NX) * int64(s.NY) * int64(s.NZ)
}

// TotalFLOPs returns the double-precision work of one full sweep across all
// output arrays.
func (s *Stencil) TotalFLOPs() int64 {
	return s.Points() * int64(s.FLOPs) * int64(s.Outputs)
}

// BytesMoved returns the compulsory (perfect-cache) data movement of one
// sweep in bytes: each input array read once, each output written once.
func (s *Stencil) BytesMoved() int64 {
	const fp64 = 8
	return s.Points() * int64(s.Inputs+s.Outputs) * fp64
}

// ArithmeticIntensity returns FLOPs per compulsory byte, the roofline
// abscissa used by the simulator to position a stencil between memory- and
// compute-bound regimes.
func (s *Stencil) ArithmeticIntensity() float64 {
	return float64(s.TotalFLOPs()) / float64(s.BytesMoved())
}

// UniqueOffsets returns the number of distinct (Array, DX, DY, DZ) reads,
// i.e. the per-point load count before any reuse optimization.
func (s *Stencil) UniqueOffsets() int {
	type key struct{ a, x, y, z int }
	seen := make(map[key]struct{}, len(s.Taps))
	for _, t := range s.Taps {
		seen[key{t.Array, t.DX, t.DY, t.DZ}] = struct{}{}
	}
	return len(seen)
}

// HaloVolume returns the halo read amplification factor for a tile of shape
// tx × ty × tz: (tile+2·order volume)/(tile volume). Shared-memory staging
// pays this factor once per tile.
func (s *Stencil) HaloVolume(tx, ty, tz int) float64 {
	if tx <= 0 || ty <= 0 || tz <= 0 {
		return 1
	}
	h := 2 * s.Order
	inner := float64(tx) * float64(ty) * float64(tz)
	outer := float64(tx+h) * float64(ty+h) * float64(tz+h)
	return outer / inner
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// String implements fmt.Stringer with the Table III row format.
func (s *Stencil) String() string {
	return fmt.Sprintf("%s %dx%dx%d order=%d flops=%d io=%d",
		s.Name, s.NX, s.NY, s.NZ, s.Order, s.FLOPs, s.Inputs+s.Outputs)
}
