package stencil

import (
	"fmt"
	"runtime"
	"sync"
)

// Apply performs one naive sweep of the stencil over the given input grids,
// writing every output grid, parallelized over Z-slabs with worker
// goroutines. It is the correctness oracle against which transformed kernel
// iteration orders are validated.
//
// Inputs must supply at least s.Inputs grids and outputs at least s.Outputs;
// all grids must share the stencil's extent and carry a halo >= s.Order.
// workers <= 0 selects GOMAXPROCS.
func Apply(s *Stencil, inputs, outputs []*Grid, workers int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if len(inputs) < s.Inputs {
		return fmt.Errorf("stencil %s: need %d input grids, got %d", s.Name, s.Inputs, len(inputs))
	}
	if len(outputs) < s.Outputs {
		return fmt.Errorf("stencil %s: need %d output grids, got %d", s.Name, s.Outputs, len(outputs))
	}
	for i, g := range append(append([]*Grid{}, inputs[:s.Inputs]...), outputs[:s.Outputs]...) {
		if g.NX != s.NX || g.NY != s.NY || g.NZ != s.NZ {
			return fmt.Errorf("stencil %s: grid %d extent %dx%dx%d does not match stencil %dx%dx%d",
				s.Name, i, g.NX, g.NY, g.NZ, s.NX, s.NY, s.NZ)
		}
		if g.Halo < s.Order {
			return fmt.Errorf("stencil %s: grid %d halo %d < order %d", s.Name, i, g.Halo, s.Order)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > s.NZ {
		workers = s.NZ
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		z0 := w * s.NZ / workers
		z1 := (w + 1) * s.NZ / workers
		wg.Add(1)
		go func(z0, z1 int) {
			defer wg.Done()
			sweepSlab(s, inputs, outputs, z0, z1)
		}(z0, z1)
	}
	wg.Wait()
	return nil
}

// sweepSlab computes outputs for z in [z0, z1).
func sweepSlab(s *Stencil, inputs, outputs []*Grid, z0, z1 int) {
	for z := z0; z < z1; z++ {
		for y := 0; y < s.NY; y++ {
			for x := 0; x < s.NX; x++ {
				v := PointValue(s, inputs, x, y, z)
				for k := 0; k < s.Outputs; k++ {
					// Output arrays share the tap pattern; stagger them by a
					// per-array scale so multi-output kernels are detectable.
					outputs[k].Set(x, y, z, v*outputScale(k))
				}
			}
		}
	}
}

// PointValue computes the stencil value at one interior point. Transformed
// executors (blocked, merged, streamed orders) call this same kernel so that
// any numeric divergence isolates an iteration-space bug, not arithmetic.
func PointValue(s *Stencil, inputs []*Grid, x, y, z int) float64 {
	v := 0.0
	for _, t := range s.Taps {
		v += t.Coeff * inputs[t.Array].At(x+t.DX, y+t.DY, z+t.DZ)
	}
	return v
}

// outputScale staggers multiple output arrays of one stencil.
func outputScale(k int) float64 { return 1.0 + 0.5*float64(k) }

// OutputScale is exported for transformed executors in other packages.
func OutputScale(k int) float64 { return outputScale(k) }

// MakeGrids allocates input and output grids for s at a reduced extent
// (nx, ny, nz) — tests use small grids while keeping the tap pattern — with
// deterministic input contents. Passing the stencil's own extents gives the
// full-size problem.
func MakeGrids(s *Stencil, nx, ny, nz int) (inputs, outputs []*Grid) {
	inputs = make([]*Grid, s.Inputs)
	for a := range inputs {
		g := NewGrid(nx, ny, nz, s.Order)
		a := a
		g.FillFunc(func(x, y, z int) float64 {
			return float64((x*7+y*13+z*31+a*101)%97)/97.0 + 0.5
		})
		inputs[a] = g
	}
	outputs = make([]*Grid, s.Outputs)
	for k := range outputs {
		outputs[k] = NewGrid(nx, ny, nz, s.Order)
	}
	return inputs, outputs
}

// Shrink returns a copy of s with the grid extent reduced to nx×ny×nz,
// used by tests and by iteration-order validation on small problems.
func Shrink(s *Stencil, nx, ny, nz int) *Stencil {
	c := *s
	c.NX, c.NY, c.NZ = nx, ny, nz
	c.Taps = append([]Tap(nil), s.Taps...)
	return &c
}
