package stencil

import "fmt"

// Iterate performs `steps` Jacobi-style sweeps of the stencil with buffer
// swapping: each step reads the previous step's output of array 0 as the
// next step's input 0 (the classic time loop of the physical simulations the
// paper's intro motivates). Auxiliary input arrays (indices >= 1) stay
// fixed across steps. It returns the grid holding the final result.
//
// The stencil's first output array must correspond to its first input array
// for the swap to make sense; halo cells of the evolving field are refreshed
// with a copy-boundary condition (nearest interior value) before every step
// so the sweep always reads defined data.
func Iterate(s *Stencil, inputs, outputs []*Grid, steps, workers int) (*Grid, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("stencil %s: non-positive step count %d", s.Name, steps)
	}
	cur := inputs[0]
	next := outputs[0]
	scratch := append([]*Grid(nil), inputs...)
	for step := 0; step < steps; step++ {
		refreshHalo(cur, s.Order)
		scratch[0] = cur
		if err := Apply(s, scratch, outputs, workers); err != nil {
			return nil, err
		}
		cur, next = outputs[0], cur
		outputs[0] = next
	}
	return cur, nil
}

// refreshHalo fills the halo of g by clamping to the nearest interior cell —
// a copy (Neumann-like) boundary condition sufficient for iteration tests.
func refreshHalo(g *Grid, order int) {
	if order == 0 || g.Halo == 0 {
		return
	}
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	h := g.Halo
	for z := -h; z < g.NZ+h; z++ {
		for y := -h; y < g.NY+h; y++ {
			for x := -h; x < g.NX+h; x++ {
				if x >= 0 && x < g.NX && y >= 0 && y < g.NY && z >= 0 && z < g.NZ {
					continue
				}
				g.Set(x, y, z, g.At(
					clamp(x, 0, g.NX-1),
					clamp(y, 0, g.NY-1),
					clamp(z, 0, g.NZ-1),
				))
			}
		}
	}
}
