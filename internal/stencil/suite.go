package stencil

// This file constructs the eight benchmark stencils of Table III. The grid
// extents, stencil order, per-point FLOPs and I/O array counts match the
// paper exactly; the tap patterns are faithful reconstructions of the
// corresponding SW4 / ExpCNS kernels' access shapes (star or box of the
// given order across the given number of arrays), which is what both the
// reference executor and the GPU model consume.

// StarTaps returns the classic axis-aligned star of the given order reading
// from array a: the centre plus `order` points in both directions along each
// axis. Coefficients form a convergent smoothing kernel so iterated
// reference sweeps stay numerically tame.
func StarTaps(order, a int) []Tap {
	taps := []Tap{{Array: a, Coeff: 0.5}}
	n := 6 * order
	w := 0.5 / float64(n)
	for d := 1; d <= order; d++ {
		taps = append(taps,
			Tap{Array: a, DX: +d, Coeff: w}, Tap{Array: a, DX: -d, Coeff: w},
			Tap{Array: a, DY: +d, Coeff: w}, Tap{Array: a, DY: -d, Coeff: w},
			Tap{Array: a, DZ: +d, Coeff: w}, Tap{Array: a, DZ: -d, Coeff: w},
		)
	}
	return taps
}

// BoxTaps returns the dense (2·order+1)³ box of the given order reading
// from array a, with uniform averaged coefficients.
func BoxTaps(order, a int) []Tap {
	side := 2*order + 1
	n := side * side * side
	w := 1.0 / float64(n)
	taps := make([]Tap, 0, n)
	for z := -order; z <= order; z++ {
		for y := -order; y <= order; y++ {
			for x := -order; x <= order; x++ {
				taps = append(taps, Tap{Array: a, DX: x, DY: y, DZ: z, Coeff: w})
			}
		}
	}
	return taps
}

// CenterTap returns a single centre-point read of array a.
func CenterTap(a int, c float64) []Tap {
	return []Tap{{Array: a, Coeff: c}}
}

// concat joins tap groups.
func concat(groups ...[]Tap) []Tap {
	var out []Tap
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// J3D7PT is the 7-point order-1 Jacobi stencil (512³, 10 FLOPs, 2 arrays).
func J3D7PT() *Stencil {
	return &Stencil{
		Name: "j3d7pt", NX: 512, NY: 512, NZ: 512,
		Order: 1, FLOPs: 10, Inputs: 1, Outputs: 1,
		Taps: StarTaps(1, 0), Coeffs: 2,
	}
}

// J3D27PT is the 27-point order-1 box Jacobi stencil (512³, 32 FLOPs, 2 arrays).
func J3D27PT() *Stencil {
	return &Stencil{
		Name: "j3d27pt", NX: 512, NY: 512, NZ: 512,
		Order: 1, FLOPs: 32, Inputs: 1, Outputs: 1,
		Taps: BoxTaps(1, 0), Coeffs: 4,
	}
}

// Helmholtz is the order-2 Helmholtz operator (512³, 17 FLOPs, 2 arrays).
func Helmholtz() *Stencil {
	return &Stencil{
		Name: "helmholtz", NX: 512, NY: 512, NZ: 512,
		Order: 2, FLOPs: 17, Inputs: 1, Outputs: 1,
		Taps: StarTaps(2, 0), Coeffs: 5,
	}
}

// Cheby is the Chebyshev smoother (512³, order 1, 38 FLOPs, 5 arrays:
// 4 inputs — current, previous, rhs, diagonal — and 1 output).
func Cheby() *Stencil {
	return &Stencil{
		Name: "cheby", NX: 512, NY: 512, NZ: 512,
		Order: 1, FLOPs: 38, Inputs: 4, Outputs: 1,
		Taps: concat(
			StarTaps(1, 0),    // laplacian of the current iterate
			CenterTap(1, 0.3), // previous iterate
			CenterTap(2, 0.2), // right-hand side
			CenterTap(3, 0.1), // inverse diagonal
		),
		Coeffs: 6,
	}
}

// Hypterm is the compressible Navier-Stokes hyperbolic term from ExpCNS
// (320³, order 4, 358 FLOPs, 13 arrays: 12 inputs, 1 output here mapped as
// 9 inputs with wide stars + 3 centre reads + output).
func Hypterm() *Stencil {
	taps := concat(
		StarTaps(4, 0), StarTaps(4, 1), StarTaps(4, 2), StarTaps(4, 3), // momenta/energy fluxes
		CenterTap(4, 0.15), CenterTap(5, 0.15), CenterTap(6, 0.1),
		CenterTap(7, 0.1), CenterTap(8, 0.1), CenterTap(9, 0.1),
		CenterTap(10, 0.05), CenterTap(11, 0.05),
	)
	return &Stencil{
		Name: "hypterm", NX: 320, NY: 320, NZ: 320,
		Order: 4, FLOPs: 358, Inputs: 12, Outputs: 1,
		Taps: taps, Coeffs: 16,
	}
}

// AddSGD4 is the 4th-order SW4 seismic stress update (320³, order 2,
// 373 FLOPs, 10 arrays: 7 inputs, 3 outputs).
func AddSGD4() *Stencil {
	taps := concat(
		StarTaps(2, 0), StarTaps(2, 1), StarTaps(2, 2), // displacement components
		CenterTap(3, 0.2), CenterTap(4, 0.2), CenterTap(5, 0.1), CenterTap(6, 0.1),
	)
	return &Stencil{
		Name: "addsgd4", NX: 320, NY: 320, NZ: 320,
		Order: 2, FLOPs: 373, Inputs: 7, Outputs: 3,
		Taps: taps, Coeffs: 24,
	}
}

// AddSGD6 is the 6th-order SW4 seismic stress update (320³, order 3,
// 626 FLOPs, 10 arrays: 7 inputs, 3 outputs).
func AddSGD6() *Stencil {
	taps := concat(
		StarTaps(3, 0), StarTaps(3, 1), StarTaps(3, 2),
		CenterTap(3, 0.2), CenterTap(4, 0.2), CenterTap(5, 0.1), CenterTap(6, 0.1),
	)
	return &Stencil{
		Name: "addsgd6", NX: 320, NY: 320, NZ: 320,
		Order: 3, FLOPs: 626, Inputs: 7, Outputs: 3,
		Taps: taps, Coeffs: 36,
	}
}

// RHS4Center is the SW4 4th-order right-hand-side interior kernel (320³,
// order 2, 666 FLOPs, 8 arrays: 5 inputs, 3 outputs).
func RHS4Center() *Stencil {
	taps := concat(
		BoxTaps(2, 0), // mixed-derivative cross terms read a dense order-2 box
		StarTaps(2, 1), StarTaps(2, 2),
		CenterTap(3, 0.2), CenterTap(4, 0.2),
	)
	return &Stencil{
		Name: "rhs4center", NX: 320, NY: 320, NZ: 320,
		Order: 2, FLOPs: 666, Inputs: 5, Outputs: 3,
		Taps: taps, Coeffs: 40,
	}
}

// Suite returns the eight Table III stencils in paper order.
func Suite() []*Stencil {
	return []*Stencil{
		J3D7PT(), J3D27PT(), Helmholtz(), Cheby(),
		Hypterm(), AddSGD4(), AddSGD6(), RHS4Center(),
	}
}

// ByName returns the suite stencil with the given name, or nil.
func ByName(name string) *Stencil {
	for _, s := range Suite() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
