package stencil

import (
	"math"
	"testing"
)

func TestIterateMatchesManualLoop(t *testing.T) {
	s := Shrink(J3D7PT(), 12, 12, 12)
	in, out := MakeGrids(s, 12, 12, 12)
	ref := in[0].Clone()

	final, err := Iterate(s, in, out, 3, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Manual reference: three sweeps with explicit swapping.
	cur := ref
	nxt := NewGrid(12, 12, 12, s.Order)
	for step := 0; step < 3; step++ {
		refreshHalo(cur, s.Order)
		if err := Apply(s, []*Grid{cur}, []*Grid{nxt}, 1); err != nil {
			t.Fatal(err)
		}
		cur, nxt = nxt, cur
	}
	d, err := final.MaxAbsDiff(cur)
	if err != nil || d > 1e-13 {
		t.Fatalf("Iterate diverges from manual loop by %v (%v)", d, err)
	}
}

func TestIterateSmoothing(t *testing.T) {
	// The star kernel is an averaging operator with coefficient sum 1:
	// iterating must contract the field's spread monotonically.
	s := Shrink(J3D27PT(), 16, 16, 16)
	in, out := MakeGrids(s, 16, 16, 16)

	spread := func(g *Grid) float64 {
		min, max := math.Inf(1), math.Inf(-1)
		for z := 0; z < g.NZ; z++ {
			for y := 0; y < g.NY; y++ {
				for x := 0; x < g.NX; x++ {
					v := g.At(x, y, z)
					if v < min {
						min = v
					}
					if v > max {
						max = v
					}
				}
			}
		}
		return max - min
	}
	before := spread(in[0])
	final, err := Iterate(s, in, out, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	after := spread(final)
	if after >= before*0.8 {
		t.Fatalf("smoothing did not contract: %v -> %v", before, after)
	}
}

func TestIterateValidation(t *testing.T) {
	s := Shrink(J3D7PT(), 8, 8, 8)
	in, out := MakeGrids(s, 8, 8, 8)
	if _, err := Iterate(s, in, out, 0, 1); err == nil {
		t.Fatal("zero steps should error")
	}
}

func TestRefreshHaloClamps(t *testing.T) {
	g := NewGrid(3, 3, 3, 1)
	g.FillFunc(func(x, y, z int) float64 { return 0 })
	g.Set(0, 0, 0, 5)
	refreshHalo(g, 1)
	if g.At(-1, -1, -1) != 5 {
		t.Fatalf("halo corner = %v, want clamped 5", g.At(-1, -1, -1))
	}
	if g.At(3, 1, 1) != g.At(2, 1, 1) {
		t.Fatal("face halo not clamped to nearest interior")
	}
}
