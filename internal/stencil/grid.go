package stencil

import "fmt"

// Grid is a 3-D double-precision field with a halo region of fixed width on
// every face. Interior coordinates run over [0,NX)×[0,NY)×[0,NZ); halo cells
// are addressed with negative or >=N coordinates down to -Halo / up to
// N+Halo-1. Storage is a single contiguous allocation, X fastest, matching
// the row-major CUDA layout the paper's kernels use.
type Grid struct {
	NX, NY, NZ int
	Halo       int
	data       []float64
	sx, sy     int // strides: sx = 1 implied, sy = padded NX, sz = sy*padded NY
}

// NewGrid allocates a zeroed grid of the given interior extent and halo.
func NewGrid(nx, ny, nz, halo int) *Grid {
	if nx <= 0 || ny <= 0 || nz <= 0 || halo < 0 {
		panic(fmt.Sprintf("stencil: invalid grid %dx%dx%d halo %d", nx, ny, nz, halo))
	}
	px, py, pz := nx+2*halo, ny+2*halo, nz+2*halo
	return &Grid{
		NX: nx, NY: ny, NZ: nz, Halo: halo,
		data: make([]float64, px*py*pz),
		sx:   px, sy: px * py,
	}
}

// idx maps interior coordinates (halo-extended) to the flat index.
func (g *Grid) idx(x, y, z int) int {
	return (z+g.Halo)*g.sy + (y+g.Halo)*g.sx + (x + g.Halo)
}

// At returns the value at (x, y, z); halo coordinates are legal within the
// halo width.
func (g *Grid) At(x, y, z int) float64 { return g.data[g.idx(x, y, z)] }

// Set stores v at (x, y, z).
func (g *Grid) Set(x, y, z int, v float64) { g.data[g.idx(x, y, z)] = v }

// FillFunc initializes every cell, including the halo, from f over
// halo-extended coordinates.
func (g *Grid) FillFunc(f func(x, y, z int) float64) {
	for z := -g.Halo; z < g.NZ+g.Halo; z++ {
		for y := -g.Halo; y < g.NY+g.Halo; y++ {
			for x := -g.Halo; x < g.NX+g.Halo; x++ {
				g.data[g.idx(x, y, z)] = f(x, y, z)
			}
		}
	}
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	ng := *g
	ng.data = append([]float64(nil), g.data...)
	return &ng
}

// MaxAbsDiff returns the largest absolute difference over the interiors of
// g and h, which must have identical extents.
func (g *Grid) MaxAbsDiff(h *Grid) (float64, error) {
	if g.NX != h.NX || g.NY != h.NY || g.NZ != h.NZ {
		return 0, fmt.Errorf("stencil: grid shape mismatch %dx%dx%d vs %dx%dx%d",
			g.NX, g.NY, g.NZ, h.NX, h.NY, h.NZ)
	}
	var max float64
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				d := g.At(x, y, z) - h.At(x, y, z)
				if d < 0 {
					d = -d
				}
				if d > max {
					max = d
				}
			}
		}
	}
	return max, nil
}
