package gpu

import (
	"math"
	"testing"
)

func TestArchHeadlineNumbers(t *testing.T) {
	a := A100()
	// A100 peak FP64 (non-tensor) is ~9.7 TFLOPS.
	if got := a.PeakFP64GFLOPS(); math.Abs(got-9746) > 100 {
		t.Fatalf("A100 FP64 peak = %.0f GFLOPS, want ~9700", got)
	}
	v := V100()
	// V100 peak FP64 is ~7.8 TFLOPS.
	if got := v.PeakFP64GFLOPS(); math.Abs(got-7834) > 100 {
		t.Fatalf("V100 FP64 peak = %.0f GFLOPS, want ~7800", got)
	}
	if a.SMs != 108 || v.SMs != 80 {
		t.Fatal("SM counts wrong")
	}
	if a.DRAMBandwidthGB <= v.DRAMBandwidthGB {
		t.Fatal("A100 must have higher DRAM bandwidth than V100")
	}
	if a.L2Bytes <= v.L2Bytes {
		t.Fatal("A100 must have a larger L2")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"a100", "A100", "v100", "V100"} {
		a, err := ByName(n)
		if err != nil || a == nil {
			t.Fatalf("ByName(%s) = %v, %v", n, a, err)
		}
	}
	if _, err := ByName("h100"); err == nil {
		t.Fatal("unknown arch should error")
	}
}

func TestOccupancyFullBlocks(t *testing.T) {
	a := A100()
	// 256 threads, 32 regs, no shared: limited by threads (2048/256 = 8).
	occ, err := a.ComputeOccupancy(256, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 8 {
		t.Fatalf("BlocksPerSM = %d, want 8", occ.BlocksPerSM)
	}
	if occ.WarpsPerSM != 64 || occ.Achieved != 1.0 {
		t.Fatalf("WarpsPerSM = %d achieved %v, want 64/1.0", occ.WarpsPerSM, occ.Achieved)
	}
	if occ.Limiter != "threads" {
		t.Fatalf("limiter = %s, want threads", occ.Limiter)
	}
}

func TestOccupancyRegisterLimited(t *testing.T) {
	a := A100()
	// 1024 threads × 128 regs = 131072 regs > 65536 per SM: register limited,
	// and in fact zero blocks fit.
	if _, err := a.ComputeOccupancy(1024, 128, 0); err == nil {
		t.Fatal("expected zero-block config to error")
	}
	// 256 threads × 64 regs: regsPerWarp = 2048, per block 8 warps → 16384.
	// 65536/16384 = 4 blocks; thread limit would allow 8.
	occ, err := a.ComputeOccupancy(256, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 4 || occ.Limiter != "registers" {
		t.Fatalf("BlocksPerSM = %d limiter %s, want 4/registers", occ.BlocksPerSM, occ.Limiter)
	}
}

func TestOccupancySharedLimited(t *testing.T) {
	a := V100()
	// 49152B shared per block on V100 (96KB/SM): only 2 blocks fit.
	occ, err := a.ComputeOccupancy(128, 32, 49152)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 2 || occ.Limiter != "shared" {
		t.Fatalf("BlocksPerSM = %d limiter %s, want 2/shared", occ.BlocksPerSM, occ.Limiter)
	}
}

func TestOccupancyBlockCountLimited(t *testing.T) {
	a := A100()
	// Tiny 32-thread blocks: thread limit allows 64 blocks but hardware caps at 32.
	occ, err := a.ComputeOccupancy(32, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 32 || occ.Limiter != "blocks" {
		t.Fatalf("BlocksPerSM = %d limiter %s, want 32/blocks", occ.BlocksPerSM, occ.Limiter)
	}
	// 32 blocks × 1 warp = 32 warps of 64 → 50% occupancy.
	if occ.Achieved != 0.5 {
		t.Fatalf("achieved = %v, want 0.5", occ.Achieved)
	}
}

func TestOccupancyErrors(t *testing.T) {
	a := A100()
	if _, err := a.ComputeOccupancy(0, 32, 0); err == nil {
		t.Fatal("zero threads should error")
	}
	if _, err := a.ComputeOccupancy(2048, 32, 0); err == nil {
		t.Fatal(">1024 threads should error")
	}
	if _, err := a.ComputeOccupancy(256, 300, 0); err == nil {
		t.Fatal(">255 registers should error")
	}
	if _, err := a.ComputeOccupancy(256, 32, -1); err == nil {
		t.Fatal("negative shared should error")
	}
	if _, err := a.ComputeOccupancy(256, 32, a.SharedMemPerBlock+1); err == nil {
		t.Fatal("over-max shared should error")
	}
	// Zero/negative registers are clamped to 1, not an error.
	if _, err := a.ComputeOccupancy(256, 0, 0); err != nil {
		t.Fatalf("regs=0 should clamp: %v", err)
	}
}

func TestOccupancyMonotoneInRegisters(t *testing.T) {
	a := A100()
	prev := 1 << 30
	for regs := 16; regs <= 128; regs *= 2 {
		occ, err := a.ComputeOccupancy(128, regs, 0)
		if err != nil {
			t.Fatalf("regs=%d: %v", regs, err)
		}
		if occ.BlocksPerSM > prev {
			t.Fatalf("occupancy increased with register pressure at regs=%d", regs)
		}
		prev = occ.BlocksPerSM
	}
}

func TestOccupancyPartialWarp(t *testing.T) {
	a := A100()
	// 48 threads round up to 2 warps per block.
	occ, err := a.ComputeOccupancy(48, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.WarpsPerBlock != 2 {
		t.Fatalf("WarpsPerBlock = %d, want 2", occ.WarpsPerBlock)
	}
}

func BenchmarkComputeOccupancy(b *testing.B) {
	a := A100()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.ComputeOccupancy(256, 64, 8192); err != nil {
			b.Fatal(err)
		}
	}
}
